// An interactive help session you can drive from a terminal: the screen
// renders after every command, and a tiny gesture language stands in for the
// three-button mouse. This is the closest a pipe-based terminal gets to the
// real thing — every command maps 1:1 onto a mouse gesture.
//
//   ./build/examples/interactive << 'EOF'
//   exec headers
//   point 2 sean
//   exec messages
//   quit
//   EOF
//
// Commands:
//   point <text>        button-1 click on the first occurrence of <text>
//   sweep <n> <text>    button-1 sweep over n cells starting at <text>
//   exec <text>         button-2 click on the word <text> (wherever it is)
//   exec2 <n> <text>    button-2 sweep over n cells starting at <text>
//   type <text...>      type the rest of the line (use \n for newline)
//   tab <col> <idx>     button-1 on a window tab
//   run <command...>    execute command text directly (as if swept)
//   render | render+    print the screen (annotated with «»/‹› for render+)
//   counters            print the gesture counters
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/base/strings.h"
#include "src/tools/demo.h"

using namespace help;

namespace {

std::string Unescape(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == 'n') {
      out += '\n';
      i++;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

int main() {
  PaperDemo demo;
  Help& h = demo.help();
  std::printf("%s", h.Render().c_str());
  std::printf("-- interactive help: point/sweep/exec/type/run/render/quit --\n");

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    std::string rest;
    std::getline(in, rest);
    std::string_view arg = TrimSpace(rest);

    if (cmd == "quit" || h.exited()) {
      break;
    }
    if (cmd == "render" || cmd == "render+") {
      std::printf("%s", h.Render(cmd == "render+").c_str());
      continue;
    }
    if (cmd == "counters") {
      const auto& c = h.counters();
      std::printf("presses=%d keystrokes=%d commands=%d windows=%d\n",
                  c.button_presses, c.keystrokes, c.commands_executed,
                  c.windows_created);
      continue;
    }
    if (cmd == "point") {
      Point p = h.FindOnScreen(arg);
      if (p.x < 0) {
        std::printf("?not on screen: %s\n", std::string(arg).c_str());
        continue;
      }
      h.MouseClick(p);
    } else if (cmd == "sweep" || cmd == "exec2") {
      std::istringstream args{std::string(arg)};
      int n = 0;
      std::string text;
      args >> n;
      std::getline(args, text);
      Point p = h.FindOnScreen(TrimSpace(text));
      if (p.x < 0) {
        std::printf("?not on screen\n");
        continue;
      }
      if (cmd == "sweep") {
        h.MouseSelect(p, {p.x + n, p.y});
      } else {
        h.MouseExec(p, {p.x + n, p.y});
      }
    } else if (cmd == "exec") {
      Point p = h.FindOnScreen(arg);
      if (p.x < 0) {
        std::printf("?not on screen: %s\n", std::string(arg).c_str());
        continue;
      }
      h.MouseExecWord(p);
    } else if (cmd == "type") {
      h.Type(Unescape(arg));
    } else if (cmd == "tab") {
      std::istringstream args{std::string(arg)};
      int col = 0;
      int idx = 0;
      args >> col >> idx;
      h.ClickWindowTab(col, idx);
    } else if (cmd == "run") {
      Window* ctx = h.current_sub() != nullptr ? h.current_sub()->window : nullptr;
      Status s = h.ExecuteText(arg, ctx);
      if (!s.ok()) {
        std::printf("?%s\n", s.message().c_str());
      }
    } else {
      std::printf("?unknown command %s\n", cmd.c_str());
      continue;
    }
    std::printf("%s", h.Render().c_str());
  }
  const auto& c = h.counters();
  std::printf("session: %d presses, %d keystrokes\n", c.button_presses, c.keystrokes);
  return 0;
}
