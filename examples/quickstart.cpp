// Quickstart: build a world, open and edit files, execute commands, and
// render the screen — the public API in a dozen calls.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/help.h"

using namespace help;

int main() {
  // One Help instance owns everything: the in-memory Plan 9-style file
  // system, the shell and userland, the window system, and /mnt/help.
  Help h;

  // Populate some files. The Vfs is the single source of truth.
  h.vfs().MkdirAll("/home/you/notes");
  h.vfs().WriteFile("/home/you/notes/todo",
                    "things to do\n"
                    "- read the 1991 help paper\n"
                    "- try a three-button mouse\n");
  h.vfs().WriteFile("/home/you/notes/done", "nothing yet\n");

  // Open a directory: the tag gets the name with a final slash, the body
  // lists the contents.
  h.ExecuteText("Open /home/you/notes", nullptr);
  std::printf("--- after opening the directory ---\n%s\n", h.Render().c_str());

  // Point (button 1) at "todo" in the listing, then execute Open (button 2):
  // the directory context from the window's tag resolves the relative name.
  Window* dir = h.WindowForFile("/home/you/notes/");
  Point p = h.FindInWindow(dir, "todo");
  h.MouseClick(p);
  h.ExecuteText("Open", dir);
  Window* todo = h.WindowForFile("/home/you/notes/todo");
  std::printf("opened %s\n", todo->TagFilename().c_str());

  // Edit: select a range, type over it. Typing never executes — newline is
  // just a character.
  todo->body().sel = {0, 12};  // "things to do"
  h.SetCurrent(&todo->body());
  h.Type("TODAY");
  std::printf("tag now shows the dirty marker: %s\n",
              todo->tag().text->Utf8().c_str());

  // Put! writes the body back to the file named in the tag.
  h.ExecuteText("Put!", todo);
  std::printf("on disk: %s",
              h.vfs().ReadFile("/home/you/notes/todo").value().c_str());

  // Execute an external command; its output lands in the Errors window. The
  // command runs in the window's directory, so relative names just work.
  h.ExecuteText("grep -n mouse todo", todo);
  std::printf("\nErrors window:\n%s\n",
              h.errors_window()->body().text->Utf8().c_str());

  // Programs get the same power through files: every window is a numbered
  // directory under /mnt/help.
  std::printf("index of windows:\n%s\n",
              h.vfs().ReadFile("/mnt/help/index").value().c_str());

  // Cut / Paste through the cut buffer, exposed at /mnt/help/snarf too.
  todo->body().sel = {0, 5};
  h.SetCurrent(&todo->body());
  h.ExecuteText("Cut", todo);
  std::printf("snarf buffer: %s\n",
              h.vfs().ReadFile("/mnt/help/snarf").value().c_str());
  h.ExecuteText("Undo", todo);  // extension: undo puts it back
  std::printf("after Undo, body starts: %.5s...\n",
              todo->body().text->Utf8().c_str());

  std::printf("\nfinal screen:\n%s", h.Render(/*annotated=*/true).c_str());
  return 0;
}
