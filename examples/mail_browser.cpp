// The mail tool as an interactive-style application: list headers, read a
// message, reply (send), delete — each action one or two mouse gestures,
// every "menu" just a window on a plain file.
#include <cstdio>

#include "src/tools/demo.h"

using namespace help;

int main() {
  PaperDemo demo;
  Help& h = demo.help();
  demo.Fig04_Boot();

  // headers: middle-click the word in /help/mail/stf.
  Window* stf = demo.FindWindowTagged("/help/mail/stf");
  h.MouseExecWord(demo.Locate(stf, "headers"));
  Window* headers = demo.FindWindowTagged("/mail/box/rob/mbox");
  std::printf("--- headers ---\n%s\n", headers->body().text->Utf8().c_str());

  // Read message 6 (howard's): point anywhere in its header line, then
  // middle-click messages.
  h.MouseClick(demo.Locate(headers, "6 howard"));
  h.MouseExecWord(demo.Locate(stf, "messages"));
  Window* msg = demo.FindWindowTagged("From howard");
  std::printf("--- message ---\n%s\n", msg->body().text->Utf8().c_str());

  // Reply: select the text to send (sweep with button 1), Snarf it into the
  // cut buffer, then execute send.
  Window* scratch = h.CreateWindow("reply Close!");
  h.SetCurrent(&scratch->body());
  h.Type("sure - 12:30 at the usual place?\n");
  scratch->body().sel = {0, scratch->body().text->size()};
  h.SetCurrent(&scratch->body());
  h.ExecuteText("Snarf", scratch);
  h.MouseExecWord(demo.Locate(stf, "send"));
  std::printf("--- mbox tail after send ---\n");
  std::string mbox = h.vfs().ReadFile("/mail/box/rob/mbox").value();
  std::printf("%s\n", mbox.substr(mbox.rfind("From rob")).c_str());

  // Delete howard's message and re-read the headers.
  h.MouseClick(demo.Locate(headers, "6 howard"));
  h.MouseExecWord(demo.Locate(stf, "delete"));
  h.MouseExecWord(demo.Locate(stf, "reread"));
  Window* updated = demo.FindWindowTagged("/mail/box/rob/mbox");
  std::printf("--- headers after delete ---\n%s\n",
              updated->body().text->Utf8().c_str());

  std::printf("gestures for the whole mail session: %d presses, %d keystrokes\n",
              h.counters().button_presses, h.counters().keystrokes);
  std::printf("(the keystrokes are the reply text itself — composing is the one\n"
              "thing that legitimately needs the keyboard)\n");
  return 0;
}
