// "We would not need to write any user interface software."
//
// This example builds a brand-new GUI application at runtime as a ten-line
// shell script — a word-count tool that opens a window reporting statistics
// about whatever window the user is pointing at — then drives it with two
// mouse gestures. It also shows a second client doing the same kind of work
// over the 9P protocol, the way an external process would.
#include <cstdio>

#include "src/base/strings.h"
#include "src/fs/server.h"
#include "src/tools/demo.h"

using namespace help;

int main() {
  PaperDemo demo;
  Help& h = demo.help();
  demo.Fig04_Boot();

  // --- 1. A new tool, no UI code: just a script over /mnt/help -------------
  h.vfs().MkdirAll("/help/stats");
  h.vfs().WriteFile("/help/stats/stf", "count\n");
  // help/parse reads $helpsel; the file named in the pointed-at window's tag
  // supplies the data; a fresh window (placed automatically) shows the result.
  h.vfs().WriteFile(
      "/help/stats/count",
      "eval `{help/parse -c}\n"
      "x=`{cat /mnt/help/new/ctl}\n"
      "{\n"
      "echo tag $file^': statistics Close!'\n"
      "} > /mnt/help/$x/ctl\n"
      "wc $file > /mnt/help/$x/bodyapp\n");

  // Load the new tool the same way boot loads the built-in ones.
  h.OpenFile("/help/stats/stf", "/", nullptr, 1);

  // --- 2. Use it: point at a file window, middle-click `count` --------------
  h.ExecuteText("Open /usr/rob/src/help/exec.c", nullptr);
  Window* execc = h.WindowForFile("/usr/rob/src/help/exec.c");
  h.MouseClick(demo.Locate(execc, "lookup"));
  Window* stats_stf = h.WindowForFile("/help/stats/stf");
  h.MouseExecWord(demo.Locate(stats_stf, "count"));

  Window* out = demo.FindWindowTagged(": statistics");
  std::printf("the new tool's window (built from a 6-line script):\n");
  std::printf("tag:  %s\n", out->tag().text->Utf8().c_str());
  std::printf("body: %s\n", out->body().text->Utf8().c_str());

  // --- 3. The same interface, from an external process over 9P --------------
  NinepServer server(&h.vfs());
  NinepClient client(server.Transport());
  client.Connect("external-tool");
  // Create a window purely over the protocol...
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  std::string winid(TrimSpace(ctl.value()));
  // ...label it and fill it with data gathered over the same connection.
  client.WriteFile("/mnt/help/" + winid + "/ctl", "tag remote-report Close!");
  auto index = client.ReadFile("/mnt/help/index");
  client.AppendFile("/mnt/help/" + winid + "/bodyapp",
                    "windows on this screen:\n" + index.value());
  Window* remote = h.page().FindById(static_cast<int>(ParseInt(winid)));
  std::printf("\nwindow %s created over 9P; body:\n%s\n", winid.c_str(),
              remote->body().text->Utf8().c_str());
  std::printf("9P messages used: %llu\n",
              static_cast<unsigned long long>(client.rpcs()));

  std::printf("\nfinal screen:\n%s", h.Render().c_str());
  return 0;
}
