// The paper's debugging walkthrough as a runnable application: read Sean's
// crash report, trace the broken process, browse the source with the
// C browser, fix the bug, and recompile — all with the mouse.
//
//   ./build/examples/debug_session          # final screen + step costs
//   ./build/examples/debug_session -v       # screen after every figure
#include <cstdio>
#include <cstring>

#include "src/tools/demo.h"

using namespace help;

int main(int argc, char** argv) {
  bool verbose = argc > 1 && std::strcmp(argv[1], "-v") == 0;
  PaperDemo demo;

  struct Step {
    const char* title;
    std::string (PaperDemo::*fn)();
  };
  const Step steps[] = {
      {"Figure 4: the screen after booting", &PaperDemo::Fig04_Boot},
      {"Figure 5: read the mail headers", &PaperDemo::Fig05_Headers},
      {"Figure 6: open Sean's message", &PaperDemo::Fig06_Messages},
      {"Figure 7: stack trace of the broken process", &PaperDemo::Fig07_Stack},
      {"Figure 8: open text.c:32 from the trace", &PaperDemo::Fig08_OpenTextC},
      {"Figure 9: close text.c, open exec.c:252", &PaperDemo::Fig09_CloseAndOpenExecC},
      {"Figure 10: all uses of the variable n", &PaperDemo::Fig10_Uses},
      {"Figure 11: the write of n at exec.c:213", &PaperDemo::Fig11_OpenHelpCAndExec213},
      {"Figure 12: Cut, Put!, mk", &PaperDemo::Fig12_CutPutMk},
  };

  std::string screen;
  for (const Step& s : steps) {
    screen = (demo.*(s.fn))();
    if (verbose) {
      std::printf("\n===== %s =====\n%s", s.title, screen.c_str());
    }
  }
  if (!verbose) {
    std::printf("%s", screen.c_str());
  }

  std::printf("\nstep costs:\n");
  for (const auto& st : demo.stats()) {
    std::printf("  %-46s %2d presses %2d keys\n", st.name.c_str(), st.presses,
                st.keystrokes);
  }
  const auto& c = demo.help().counters();
  std::printf("\nthe bug is fixed and the program rebuilt: %d button presses, "
              "%d keystrokes.\n",
              c.button_presses, c.keystrokes);
  std::printf("\"Through this entire demo I haven't yet touched the keyboard.\"\n");
  return c.keystrokes == 0 ? 0 : 1;
}
