// Claim C-3: "As each new window is created, however, it is filled with text
// that points to new and old text, and a kind of exponential connectivity
// results. After a few minutes the screen is filled with active data.
// Compare Figure 4 to Figure 11 to see snapshots of this process."
//
// We measure "active data" directly: after each walkthrough step, scan every
// visible window and count the tokens that are live — file names that
// resolve in that window's directory context, executable command words, and
// file:line addresses.
#include <set>

#include "bench/figutil.h"
#include "src/base/strings.h"
#include "src/text/address.h"

using namespace help;

namespace {

struct Liveness {
  int files = 0;     // tokens resolving to files/dirs in context
  int commands = 0;  // built-ins, tag commands, resolvable externals
  int addresses = 0; // name:line coordinates
  int total() const { return files + commands + addresses; }
};

bool IsBuiltinWord(const std::string& w) {
  static const std::set<std::string> kB = {"Open", "Cut",  "Paste", "Snarf",
                                           "New",  "Write", "Pattern", "Text",
                                           "Exit", "Undo", "Redo"};
  return kB.count(w) != 0 || (!w.empty() && w.back() == '!');
}

Liveness Measure(Help& h) {
  Liveness live;
  for (Window* w : h.AllWindows()) {
    if (w->hidden()) {
      continue;
    }
    std::string dir = w->ContextDir();
    for (Subwindow* sub : {&w->tag(), &w->body()}) {
      // Only the visible region counts — this is about the screen.
      std::string visible =
          sub->text->Utf8Range(sub->frame.origin(), sub->frame.end());
      for (const std::string& tok : Tokenize(visible)) {
        FileAddress fa = SplitFileAddress(tok);
        if (!fa.addr.empty() && h.vfs().Walk(JoinPath(dir, fa.file)).ok()) {
          live.addresses++;
        } else if (IsBuiltinWord(tok)) {
          live.commands++;
        } else if (h.vfs().Walk(JoinPath(dir, tok)).ok() && tok != "/") {
          live.files++;
        } else if (!h.shell().ResolveCommand(tok, dir).empty()) {
          live.commands++;
        }
      }
    }
  }
  return live;
}

}  // namespace

int main() {
  PrintHeader("Claims: connectivity growth",
              "live (actionable) tokens on screen after each step");
  PaperDemo demo;
  std::printf("%-44s %7s %9s %10s %7s\n", "step", "files", "commands", "addresses",
              "TOTAL");
  int first_total = -1;
  int last_total = 0;
  auto report = [&](const char* name) {
    Liveness l = Measure(demo.help());
    std::printf("%-44s %7d %9d %10d %7d\n", name, l.files, l.commands, l.addresses,
                l.total());
    if (first_total < 0) {
      first_total = l.total();
    }
    last_total = l.total();
  };
  demo.Fig04_Boot();
  report("fig4: boot");
  demo.Fig05_Headers();
  report("fig5: headers");
  demo.Fig06_Messages();
  report("fig6: messages");
  demo.Fig07_Stack();
  report("fig7: stack");
  demo.Fig08_OpenTextC();
  report("fig8: open text.c:32");
  demo.Fig09_CloseAndOpenExecC();
  report("fig9: open exec.c:252");
  demo.Fig10_Uses();
  report("fig10: uses n");
  demo.Fig11_OpenHelpCAndExec213();
  report("fig11: open help.c:35 + exec.c:213");

  std::printf("\npaper claim: active data grows markedly from Figure 4 to Figure 11\n");
  std::printf("measured: %d -> %d live tokens (%.1fx)  -> %s\n", first_total, last_total,
              first_total > 0 ? static_cast<double>(last_total) / first_total : 0.0,
              last_total > first_total ? "MATCH (monotone growth)" : "MISMATCH");
  return 0;
}
