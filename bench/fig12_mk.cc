// Figure 12: after the program is compiled (Cut, Put!, mk)
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 12", "after the program is compiled (Cut, Put!, mk)");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 12);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
