// P-4: shell performance — parse, evaluate, pipeline, glob.
#include <benchmark/benchmark.h>

#include "src/shell/coreutils.h"
#include "src/shell/shell.h"

namespace help {
namespace {

struct World {
  World() : shell(&vfs, &registry, &procs) {
    RegisterCoreutils(&vfs, &registry);
    for (int i = 0; i < 40; i++) {
      vfs.WriteFile("/src/f" + std::to_string(i) + ".c", "int x;\n");
    }
    vfs.WriteFile("/lines", [] {
      std::string s;
      for (int i = 0; i < 500; i++) {
        s += "line " + std::to_string(i) + "\n";
      }
      return s;
    }());
  }
  Vfs vfs;
  CommandRegistry registry;
  ProcTable procs;
  Shell shell;
};

void BM_ShellParseDeclScript(benchmark::State& state) {
  const char* decl =
      "eval `{help/parse -c}\n"
      "x=`{cat /mnt/help/new/ctl}\n"
      "{\n"
      "echo tag $dir/^' decl Close!'\n"
      "} > /mnt/help/$x/ctl\n"
      "cpp $cppflags $file |\n"
      "help/rcc -w -g -i$id -n$line -f$file |\n"
      "sed 1q > /mnt/help/$x/bodyapp\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseShell(decl));
  }
}
BENCHMARK(BM_ShellParseDeclScript);

void BM_ShellEchoEval(benchmark::State& state) {
  World w;
  Env env;
  for (auto _ : state) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    benchmark::DoNotOptimize(w.shell.Run("echo a b c", &env, "/", {}, io));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShellEchoEval);

void BM_ShellPipeline(benchmark::State& state) {
  World w;
  Env env;
  for (auto _ : state) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    benchmark::DoNotOptimize(
        w.shell.Run("cat /lines | grep 7 | sort | sed 3q", &env, "/", {}, io));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShellPipeline);

void BM_ShellGlob(benchmark::State& state) {
  World w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GlobExpand(w.vfs, "/src", "*.c"));
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_ShellGlob);

void BM_ShellCommandSubstitution(benchmark::State& state) {
  World w;
  Env env;
  for (auto _ : state) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    benchmark::DoNotOptimize(
        w.shell.Run("x=`{echo one two three}; echo $x$x", &env, "/", {}, io));
  }
}
BENCHMARK(BM_ShellCommandSubstitution);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
