// P-4: shell performance — parse, compile, and the bytecode VM against the
// tree-walking evaluator it replaced.
//
// The *Vm benches run the production path: scripts resolve through the
// process-wide compiled-script cache and execute as bytecode. The paired
// *TreeWalk benches flip Shell::SetVmEnabled(false), reproducing the
// pre-VM behavior — every run re-reads, re-parses, and re-walks the AST.
//
// Passing --json (stripped before google-benchmark parses flags) appends one
// JSON object as the last line of stdout, including a `speedups` map computed
// from each Vm/TreeWalk pair — the CI bench-smoke artifact consumes it, and
// the ≥3x cached-script acceptance gate reads `speedups.decl`.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/shell/compile.h"
#include "src/shell/coreutils.h"
#include "src/shell/mk.h"
#include "src/shell/scriptcache.h"
#include "src/shell/shell.h"

namespace help {
namespace {

// A decl-shaped tool script: positional args, flag accumulation, matches,
// list assignments. Deliberately long — the tree-walker pays the whole
// re-read + re-parse on every invocation, the VM a signature check.
std::string DeclScript() {
  std::string s = "file=$1\nflags=(-w -g)\n";
  // Dispatch on file type, decl-style: one arm per suffix the tool knows,
  // of which a single one fires for any given file.
  for (int i = 0; i < 32; i++) {
    s += StrFormat(
        "if(~ $file *.x%d){flags=($flags -DX%d); out%d=(alpha beta gamma "
        "$file); echo selecting x%d rules for $file^' ('^$#flags^' flags)'}\n",
        i, i, i, i);
  }
  s += "if(~ $file *.c){flags=($flags -c)}\n";
  s += "echo $flags\n";
  return s;
}

struct World {
  World() : shell(&vfs, &registry, &procs) {
    RegisterCoreutils(&vfs, &registry);
    RegisterMk(&vfs, &registry);
    for (int i = 0; i < 40; i++) {
      vfs.WriteFile("/src/f" + std::to_string(i) + ".c", "int x;\n");
    }
    vfs.WriteFile("/lines", [] {
      std::string s;
      for (int i = 0; i < 500; i++) {
        s += "line " + std::to_string(i) + "\n";
      }
      return s;
    }());
    vfs.WriteFile("/bin/decl", DeclScript());
    // Phony targets: the recipes never create their target files, so every
    // mk run rebuilds all of them and replays every recipe line.
    vfs.WriteFile("/mkfile",
                  "all: t0 t1 t2 t3\n"
                  "t0:\n\techo built $target\n"
                  "t1:\n\techo built $target\n"
                  "t2:\n\techo built $target\n"
                  "t3:\n\techo built $target\n");
  }
  Vfs vfs;
  CommandRegistry registry;
  ProcTable procs;
  Shell shell;
};

void RunSrc(World& w, const char* src) {
  Env env;
  std::string out;
  std::string err;
  Io io;
  io.out = &out;
  io.err = &err;
  benchmark::DoNotOptimize(w.shell.Run(src, &env, "/", {}, io));
}

// Each pair shares one World across iterations: the VM side exercises a warm
// compile cache (the steady state of a repeatedly-plumbed tool), the
// tree-walk side the old always-reparse behavior on identical state.
void RunPair(benchmark::State& state, const char* src, bool vm) {
  World w;
  ShellScriptCache::Global().Clear();
  Shell::SetVmEnabled(vm);
  for (auto _ : state) {
    RunSrc(w, src);
  }
  Shell::SetVmEnabled(true);
  state.SetItemsProcessed(state.iterations());
}

// decl: a 50-line tool script invoked by path, the paper's central workload —
// every Open/plumb of a C file runs one of these.
void BM_ShellDeclVm(benchmark::State& state) {
  RunPair(state, "decl /src/f3.c", true);
}
BENCHMARK(BM_ShellDeclVm);
void BM_ShellDeclTreeWalk(benchmark::State& state) {
  RunPair(state, "decl /src/f3.c", false);
}
BENCHMARK(BM_ShellDeclTreeWalk);

// mk: four always-stale phony targets; each recipe line routes through
// Shell::Run and hence (on the VM side) the source-keyed cache layer.
void BM_ShellMkVm(benchmark::State& state) { RunPair(state, "mk all", true); }
BENCHMARK(BM_ShellMkVm);
void BM_ShellMkTreeWalk(benchmark::State& state) {
  RunPair(state, "mk all", false);
}
BENCHMARK(BM_ShellMkTreeWalk);

// pipeline: dominated by the coreutils themselves — the honest case where
// the VM can only win back parse time.
constexpr const char* kPipeline = "cat /lines | grep 7 | sort | sed 3q";
void BM_ShellPipelineVm(benchmark::State& state) {
  RunPair(state, kPipeline, true);
}
BENCHMARK(BM_ShellPipelineVm);
void BM_ShellPipelineTreeWalk(benchmark::State& state) {
  RunPair(state, kPipeline, false);
}
BENCHMARK(BM_ShellPipelineTreeWalk);

// glob: a for loop over 40 expanded paths.
constexpr const char* kGlobFor = "for(f in /src/*.c){echo $f}";
void BM_ShellGlobForVm(benchmark::State& state) {
  RunPair(state, kGlobFor, true);
}
BENCHMARK(BM_ShellGlobForVm);
void BM_ShellGlobForTreeWalk(benchmark::State& state) {
  RunPair(state, kGlobFor, false);
}
BENCHMARK(BM_ShellGlobForTreeWalk);

// --- pipeline stages in isolation ------------------------------------------

void BM_ShellParseDeclScript(benchmark::State& state) {
  std::string decl = DeclScript();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseShell(decl));
  }
}
BENCHMARK(BM_ShellParseDeclScript);

void BM_ShellCompileDeclScript(benchmark::State& state) {
  std::string decl = DeclScript();
  auto ast = ParseShell(decl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileShell(*ast.value()));
  }
}
BENCHMARK(BM_ShellCompileDeclScript);

void BM_ShellCacheHit(benchmark::State& state) {
  std::string decl = DeclScript();
  ShellScriptCache::Global().Clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShellScriptCache::Global().Get(decl).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShellCacheHit);

void BM_ShellGlob(benchmark::State& state) {
  World w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GlobExpand(w.vfs, "/src", "*.c"));
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_ShellGlob);

// Console output as usual, plus a collected (name, per-iteration time,
// items/sec) record per run for the trailing JSON line (perf_regexp idiom).
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time;  // adjusted per-iteration, in the run's time unit
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      Entry e;
      e.name = run.benchmark_name();
      e.real_time = run.GetAdjustedRealTime();
      auto it = run.counters.find("items_per_second");
      e.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

double TimeOf(const std::vector<JsonLineReporter::Entry>& entries,
              const char* name) {
  for (const auto& e : entries) {
    if (e.name == name) {
      return e.real_time;
    }
  }
  return 0.0;
}

}  // namespace
}  // namespace help

int main(int argc, char** argv) {
  bool json = false;
  // Strip --json before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  help::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json) {
    std::string runs;
    for (const auto& e : reporter.entries()) {
      if (!runs.empty()) {
        runs += ",";
      }
      runs += help::StrFormat(
          "{\"name\":\"%s\",\"real_time\":%.1f,\"items_per_second\":%.1f}",
          e.name.c_str(), e.real_time, e.items_per_second);
    }
    // VM-vs-tree-walk speedups for whichever pairs ran (0 when a side was
    // filtered out).
    struct Pair {
      const char* key;
      const char* vm;
      const char* treewalk;
    };
    const Pair kPairs[] = {
        {"decl", "BM_ShellDeclVm", "BM_ShellDeclTreeWalk"},
        {"mk", "BM_ShellMkVm", "BM_ShellMkTreeWalk"},
        {"pipeline", "BM_ShellPipelineVm", "BM_ShellPipelineTreeWalk"},
        {"glob", "BM_ShellGlobForVm", "BM_ShellGlobForTreeWalk"},
    };
    std::string speedups;
    for (const Pair& p : kPairs) {
      double v = help::TimeOf(reporter.entries(), p.vm);
      double t = help::TimeOf(reporter.entries(), p.treewalk);
      if (!speedups.empty()) {
        speedups += ",";
      }
      speedups += help::StrFormat("\"%s\":%.1f", p.key, v > 0.0 ? t / v : 0.0);
    }
    std::printf("{\"bench\":\"perf_shell\",\"runs\":[%s],\"speedups\":{%s}}\n",
                runs.c_str(), speedups.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
