// Claim C-1: the paper's gesture-count claims, measured against the real
// implementation:
//   - "two button clicks" to open dat.h from help.c        (Figure 3 path)
//   - "with only three button clicks one may fetch to the screen the
//      declaration" (point, decl, then Open its output — or two clicks with
//      the decl.o loop-closing extension)
//   - "a total of three clicks of the middle button" for cut-write-compile
//   - "Through this entire demo I haven't yet touched the keyboard"
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Claims: gestures", "paper-quoted interaction costs, measured");

  // --- whole walkthrough ---
  {
    PaperDemo demo;
    demo.RunAll();
    PrintStats(demo);
    const auto& c = demo.help().counters();
    std::printf("\nwhole demo: %d button presses, %d keystrokes\n", c.button_presses,
                c.keystrokes);
    std::printf("paper claim: zero keystrokes       measured: %d  -> %s\n",
                c.keystrokes, c.keystrokes == 0 ? "MATCH" : "MISMATCH");
    std::printf("paper claim: fig8 = 2 clicks       measured: %d  -> %s\n",
                demo.stats()[4].presses,
                demo.stats()[4].presses == 2 ? "MATCH" : "MISMATCH");
    std::printf("paper claim: fix+compile = 3 middle clicks  measured: %d -> %s\n",
                demo.stats()[8].presses,
                demo.stats()[8].presses == 3 ? "MATCH" : "MISMATCH");
  }

  // --- the decl claim ---
  {
    PaperDemo demo;
    demo.Fig04_Boot();
    Help& h = demo.help();
    h.ResetCounters();
    h.ExecuteText("Open /usr/rob/src/help/exec.c:252", nullptr);
    h.ResetCounters();
    Window* execc = h.WindowForFile("/usr/rob/src/help/exec.c");
    Point p = demo.Locate(execc, "(uchar*)n");
    h.MouseClick({p.x + 8, p.y});                                // click 1: the variable
    h.MouseExecWord(demo.Locate(demo.FindWindowTagged("/help/cbr/stf"), "decl"));
    Window* out = demo.FindWindowTagged(" decl Close!");         // click 2: decl
    Point loc = demo.Locate(out, "dat.h:136");
    h.MouseClick(loc);                                           // click 3: point at it
    h.MouseExecWord(demo.Locate(demo.FindWindowTagged("/help/edit/stf"), "Open"));
    bool opened = h.WindowForFile("/usr/rob/src/help/dat.h") != nullptr;
    std::printf("\ndecl: declaration fetched to screen with %d clicks (opened: %s)\n",
                h.counters().button_presses, opened ? "yes" : "no");
    std::printf("paper claim: \"only three button clicks\" for decl itself; the\n"
                "final Open is the loop the paper proposes closing — see next.\n");
  }

  // --- the decl.o extension ---
  {
    PaperDemo demo;
    demo.Fig04_Boot();
    Help& h = demo.help();
    h.ExecuteText("Open /usr/rob/src/help/exec.c:252", nullptr);
    h.ResetCounters();
    Window* execc = h.WindowForFile("/usr/rob/src/help/exec.c");
    Point p = demo.Locate(execc, "(uchar*)n");
    h.MouseClick({p.x + 8, p.y});
    h.MouseExecWord(demo.Locate(demo.FindWindowTagged("/help/cbr/stf"), "decl.o"));
    Window* dat = h.WindowForFile("/usr/rob/src/help/dat.h");
    std::printf("\ndecl.o (extension, loop closed): declaration opened and selected\n"
                "with %d clicks (window: %s, selected: %s)\n",
                h.counters().button_presses, dat != nullptr ? "yes" : "no",
                dat != nullptr && !dat->body().sel.null() ? "yes" : "no");
  }
  return 0;
}
