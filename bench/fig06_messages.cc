// Figure 6: after applying messages to the header line of Sean's mail
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 6", "after applying messages to the header line of Sean's mail");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 6);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
