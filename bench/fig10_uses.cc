// Figure 10: after finding all uses of n
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 10", "after finding all uses of n");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 10);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
