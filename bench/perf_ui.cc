// P-6: user-interface path performance — frame layout, hit testing, the full
// click-to-execute pipeline, rendering. The paper's bar: the interface must
// "feel good … dynamic and responsive"; every figure here is a per-gesture
// cost that must sit far under perceptual thresholds.
#include <benchmark/benchmark.h>

#include "src/tools/demo.h"

namespace help {
namespace {

void BM_FrameFill(benchmark::State& state) {
  std::string content;
  for (int i = 0; i < state.range(0); i++) {
    content += "a line of body text that is reasonably long, like source code\n";
  }
  Text t(content);
  Frame f;
  f.SetRect({0, 0, 60, 40});
  for (auto _ : state) {
    f.Fill(t, 0);
    benchmark::DoNotOptimize(f.end());
  }
}
BENCHMARK(BM_FrameFill)->Range(64, 4096);

void BM_PointToOffset(benchmark::State& state) {
  Text t(std::string(4000, 'x'));
  Frame f;
  f.SetRect({0, 0, 60, 40});
  f.Fill(t, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.PointToOffset({30, 20}));
  }
}
BENCHMARK(BM_PointToOffset);

void BM_FullScreenRender(benchmark::State& state) {
  PaperDemo demo;
  demo.Fig04_Boot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(demo.help().Render());
  }
}
BENCHMARK(BM_FullScreenRender);

void BM_MouseSelectGesture(benchmark::State& state) {
  PaperDemo demo;
  demo.Fig04_Boot();
  Help& h = demo.help();
  Window* stf = demo.FindWindowTagged("/help/edit/stf");
  Rect r = stf->rect();
  for (auto _ : state) {
    h.MouseSelect({r.x0, r.y0 + 1}, {r.x0 + 4, r.y0 + 1});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MouseSelectGesture);

void BM_OpenCloseWindow(benchmark::State& state) {
  PaperDemo demo;
  demo.Fig04_Boot();
  Help& h = demo.help();
  for (auto _ : state) {
    auto w = h.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
    h.CloseWindow(w.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenCloseWindow);

void BM_ExecuteBuiltinCut(benchmark::State& state) {
  PaperDemo demo;
  demo.Fig04_Boot();
  Help& h = demo.help();
  auto w = h.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  for (auto _ : state) {
    w.value()->body().sel = {0, 4};
    h.SetCurrent(&w.value()->body());
    h.ExecuteText("Cut", w.value());
    h.ExecuteText("Paste", w.value());
  }
}
BENCHMARK(BM_ExecuteBuiltinCut);

void BM_ExecuteExternalEcho(benchmark::State& state) {
  // Full middle-click-to-Errors-window pipeline for an external command.
  PaperDemo demo;
  demo.Fig04_Boot();
  Help& h = demo.help();
  for (auto _ : state) {
    h.ExecuteText("echo responsiveness", nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteExternalEcho);

void BM_PlacementHeuristic(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Page page(100, 50, 2);
    std::vector<std::shared_ptr<Text>> bodies;
    state.ResumeTiming();
    for (int i = 0; i < 10; i++) {
      auto body = std::make_shared<Text>("some\nbody\ntext\n");
      bodies.push_back(body);
      page.Create(i + 1, std::make_shared<Text>("tag"), body, 0);
    }
    benchmark::DoNotOptimize(page.col(0).windows().size());
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_PlacementHeuristic);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
