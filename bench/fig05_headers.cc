// Figure 5: after executing mail/headers
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 5", "after executing mail/headers");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 5);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
