// Figure 2: "Executing Cut by sweeping the word while holding down the
// middle mouse button. The text being selected for execution is underlined."
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 2", "executing Cut by sweeping with button 2");
  PaperDemo demo(104, 44);
  Help& h = demo.help();

  h.ExecuteText("Open /usr/rob/lib/profile", nullptr);
  Window* profile = h.WindowForFile("/usr/rob/lib/profile");

  // Button 1: select a piece of text in the profile (a real sweep).
  Point sel = demo.Locate(profile, "fn x");
  h.MouseSelect(sel, {sel.x + 24, sel.y});
  std::printf("before: the selection (reverse video) in the profile window\n");

  // Button 2: sweep the word Cut in the edit tool. The annotated render with
  // show_last_exec underlines the swept command text, as the figure shows.
  Window* edit = demo.FindWindowTagged("/help/edit/stf");
  Point cut = demo.Locate(edit, "Cut");
  h.MouseExec(cut, {cut.x + 3, cut.y});
  PrintScreen(h.Render(/*annotated=*/true, /*show_last_exec=*/true));

  std::printf("cut buffer now holds: %s\n", h.snarf().c_str());
  std::printf("profile window is dirty: tag = %s\n",
              profile->tag().text->Utf8().c_str());
  std::printf("gestures: %d presses, %d keystrokes "
              "(select + execute Cut: no menus, no widgets)\n",
              h.counters().button_presses, h.counters().keystrokes);
  return 0;
}
