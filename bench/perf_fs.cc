// P-3: file-system + protocol performance — VFS ops and full 9P round trips.
#include <benchmark/benchmark.h>

#include "src/fs/server.h"
#include "src/fs/vfs.h"

namespace help {
namespace {

void BM_VfsWalk(benchmark::State& state) {
  Vfs vfs;
  vfs.MkdirAll("/usr/rob/src/help/deep/nest");
  vfs.WriteFile("/usr/rob/src/help/deep/nest/f.c", "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(vfs.Walk("/usr/rob/src/help/deep/nest/f.c"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VfsWalk);

void BM_VfsWriteRead(benchmark::State& state) {
  Vfs vfs;
  std::string payload(static_cast<size_t>(state.range(0)), 'b');
  for (auto _ : state) {
    vfs.WriteFile("/f", payload);
    benchmark::DoNotOptimize(vfs.ReadFile("/f"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_VfsWriteRead)->Range(256, 65536);

void BM_VfsReadDir(benchmark::State& state) {
  Vfs vfs;
  for (int i = 0; i < state.range(0); i++) {
    vfs.WriteFile("/dir/f" + std::to_string(i), "");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vfs.ReadDir("/dir"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VfsReadDir)->Range(16, 1024);

void BM_NinepCodecRoundTrip(benchmark::State& state) {
  Fcall f;
  f.type = MsgType::kTwrite;
  f.tag = 1;
  f.fid = 9;
  f.offset = 4096;
  f.data = std::string(static_cast<size_t>(state.range(0)), 'd');
  for (auto _ : state) {
    std::string bytes = EncodeFcall(f);
    benchmark::DoNotOptimize(DecodeFcall(bytes));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NinepCodecRoundTrip)->Range(64, 65536);

void BM_NinepReadFileRpc(benchmark::State& state) {
  // Full client->server->client path: walk, open, read(s), clunk.
  Vfs vfs;
  vfs.WriteFile("/data", std::string(static_cast<size_t>(state.range(0)), 'z'));
  NinepServer server(&vfs);
  NinepClient client(server.Transport());
  client.Connect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.ReadFile("/data"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NinepReadFileRpc)->Range(256, 262144);

void BM_NinepWriteFileRpc(benchmark::State& state) {
  Vfs vfs;
  NinepServer server(&vfs);
  NinepClient client(server.Transport());
  client.Connect();
  std::string payload(static_cast<size_t>(state.range(0)), 'w');
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.WriteFile("/out", payload).ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NinepWriteFileRpc)->Range(256, 65536);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
