// P-2: regexp engine performance — compile, search, the Pike VM's linearity,
// and the zero-copy streaming search layer against its materialized baseline.
//
// The *Stream benches run over a Text's gap-buffer spans with the literal
// fast path enabled (the production path); the paired *Materialized benches
// reproduce the pre-streaming behavior — copy the whole document out of the
// gap buffer, then run the plain Pike VM over it with the fast path disabled.
//
// Passing --json (stripped before google-benchmark parses flags) appends one
// JSON object as the last line of stdout, including a `speedups` map computed
// from each Stream/Materialized pair — the CI bench-smoke artifact consumes
// it, and the ≥10x literal-search acceptance gate reads `speedups.literal`.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/regexp/cache.h"
#include "src/regexp/regexp.h"
#include "src/text/search.h"
#include "src/text/text.h"

namespace help {
namespace {

RuneString MakeText(int n) {
  RuneString t;
  const char* words[] = {"the", "quick", "textinsert", "strlen", "window", "n"};
  for (int i = 0; i < n; i++) {
    for (char c : std::string(words[i % 6])) {
      t.push_back(static_cast<Rune>(c));
    }
    t.push_back(i % 11 == 0 ? '\n' : ' ');
  }
  return t;
}

// A ~1.6M-rune document with a unique needle near the end, so a literal
// search must cross essentially the whole body. The gap is parked mid-file —
// the adversarial position for span-aware scanning.
constexpr int kBigWords = 200000;
constexpr const char* kNeedle = "needle_so_rare";

const Text& BigDoc() {
  static const Text* doc = [] {
    RuneString body = MakeText(kBigWords);
    body += RunesFromUtf8(kNeedle);
    body += RunesFromUtf8("\ntail line\n");
    Text* t = new Text;
    t->SetAll(Utf8FromRunes(body));
    t->InsertNoUndo(body.size() / 2, U"x");  // park the gap mid-document
    t->DeleteNoUndo(body.size() / 2, 1);
    return t;
  }();
  return *doc;
}

const Regexp& CompiledOrDie(const char* pattern) {
  static std::vector<std::shared_ptr<const Regexp>>* keep =
      new std::vector<std::shared_ptr<const Regexp>>;
  auto re = RegexpCache::Global().Get(pattern);
  if (!re.ok()) {
    std::fprintf(stderr, "bad pattern %s\n", pattern);
    std::abort();
  }
  keep->push_back(re.value());
  return *keep->back();
}

void BM_RegexpCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto re = Regexp::Compile("(a|b)*c[d-f]+g?");
    benchmark::DoNotOptimize(re.ok());
  }
}
BENCHMARK(BM_RegexpCompile);

void BM_RegexpCacheGet(benchmark::State& state) {
  // The Look/plumb shape: the same pattern re-resolved on every gesture.
  RegexpCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("(a|b)*c[d-f]+g?").ok());
  }
}
BENCHMARK(BM_RegexpCacheGet);

// --- Stream vs materialized pairs over the ~1.6M-rune document -------------

void RunStream(benchmark::State& state, const char* pattern) {
  const Text& t = BigDoc();
  const Regexp& re = CompiledOrDie(pattern);
  for (auto _ : state) {
    auto m = StreamSearch(t, re, 0);
    benchmark::DoNotOptimize(m.has_value());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(t.size()));
}

void RunMaterialized(benchmark::State& state, const char* pattern) {
  const Text& t = BigDoc();
  const Regexp& re = CompiledOrDie(pattern);
  Regexp::SetLiteralFastPathEnabled(false);
  for (auto _ : state) {
    RuneString copy = t.ReadAll();  // what every search paid before streaming
    auto m = re.Search(RuneStringView(copy), 0);
    benchmark::DoNotOptimize(m.has_value());
  }
  Regexp::SetLiteralFastPathEnabled(true);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(t.size()));
}

void BM_LiteralStream(benchmark::State& state) { RunStream(state, kNeedle); }
BENCHMARK(BM_LiteralStream);
void BM_LiteralMaterialized(benchmark::State& state) {
  RunMaterialized(state, kNeedle);
}
BENCHMARK(BM_LiteralMaterialized);

// A required prefix but no literal-only bypass: BMH skips to candidates, the
// VM finishes each one.
void BM_RegexpStream(benchmark::State& state) {
  RunStream(state, "needle_(so|very)_rare");
}
BENCHMARK(BM_RegexpStream);
void BM_RegexpMaterialized(benchmark::State& state) {
  RunMaterialized(state, "needle_(so|very)_rare");
}
BENCHMARK(BM_RegexpMaterialized);

// ^-anchored: the streaming side enumerates line starts and prechecks the
// literal; the materialized side feeds every rune through the VM.
void BM_AnchoredStream(benchmark::State& state) {
  RunStream(state, "^tail");
}
BENCHMARK(BM_AnchoredStream);
void BM_AnchoredMaterialized(benchmark::State& state) {
  RunMaterialized(state, "^tail");
}
BENCHMARK(BM_AnchoredMaterialized);

void BM_RegexpClassSearch(benchmark::State& state) {
  auto re = Regexp::Compile("[0-9][0-9]*");
  RuneString text = MakeText(static_cast<int>(state.range(0)));
  text += RunesFromUtf8("176153");
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.value().Search(RuneStringView(text)));
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_RegexpClassSearch)->Range(256, 16384);

void BM_RegexpPathological(benchmark::State& state) {
  // a?a?a?...aaa... — exponential for backtrackers, linear for the Pike VM.
  int n = static_cast<int>(state.range(0));
  std::string pattern;
  for (int i = 0; i < n; i++) {
    pattern += "a?";
  }
  pattern += std::string(static_cast<size_t>(n), 'a');
  auto re = Regexp::Compile(pattern);
  RuneString text(static_cast<size_t>(n), 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.value().Search(RuneStringView(text)));
  }
}
BENCHMARK(BM_RegexpPathological)->DenseRange(8, 24, 8);

// Console output as usual, plus a collected (name, per-iteration time,
// items/sec) record per run for the trailing JSON line (perf_text idiom).
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time;  // adjusted per-iteration, in the run's time unit
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      Entry e;
      e.name = run.benchmark_name();
      e.real_time = run.GetAdjustedRealTime();
      auto it = run.counters.find("items_per_second");
      e.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

double TimeOf(const std::vector<JsonLineReporter::Entry>& entries,
              const char* name) {
  for (const auto& e : entries) {
    if (e.name == name) {
      return e.real_time;
    }
  }
  return 0.0;
}

}  // namespace
}  // namespace help

int main(int argc, char** argv) {
  bool json = false;
  // Strip --json before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  help::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json) {
    std::string runs;
    for (const auto& e : reporter.entries()) {
      if (!runs.empty()) {
        runs += ",";
      }
      runs += help::StrFormat(
          "{\"name\":\"%s\",\"real_time\":%.1f,\"items_per_second\":%.1f}",
          e.name.c_str(), e.real_time, e.items_per_second);
    }
    // Stream-vs-materialized speedups for whichever pairs ran (0 when a side
    // was filtered out).
    struct Pair {
      const char* key;
      const char* stream;
      const char* materialized;
    };
    const Pair kPairs[] = {
        {"literal", "BM_LiteralStream", "BM_LiteralMaterialized"},
        {"regexp", "BM_RegexpStream", "BM_RegexpMaterialized"},
        {"anchored", "BM_AnchoredStream", "BM_AnchoredMaterialized"},
    };
    std::string speedups;
    for (const Pair& p : kPairs) {
      double s = help::TimeOf(reporter.entries(), p.stream);
      double m = help::TimeOf(reporter.entries(), p.materialized);
      if (!speedups.empty()) {
        speedups += ",";
      }
      speedups += help::StrFormat("\"%s\":%.1f", p.key, s > 0.0 ? m / s : 0.0);
    }
    std::printf("{\"bench\":\"perf_regexp\",\"runs\":[%s],\"speedups\":{%s}}\n",
                runs.c_str(), speedups.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
