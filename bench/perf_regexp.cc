// P-2: regexp engine performance — compile, search, the Pike VM's linearity.
#include <benchmark/benchmark.h>

#include "src/regexp/regexp.h"

namespace help {
namespace {

RuneString MakeText(int n) {
  RuneString t;
  const char* words[] = {"the", "quick", "textinsert", "strlen", "window", "n"};
  for (int i = 0; i < n; i++) {
    for (char c : std::string(words[i % 6])) {
      t.push_back(static_cast<Rune>(c));
    }
    t.push_back(i % 11 == 0 ? '\n' : ' ');
  }
  return t;
}

void BM_RegexpCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto re = Regexp::Compile("(a|b)*c[d-f]+g?");
    benchmark::DoNotOptimize(re.ok());
  }
}
BENCHMARK(BM_RegexpCompile);

void BM_RegexpLiteralSearch(benchmark::State& state) {
  auto re = Regexp::Compile("strlen");
  RuneString text = MakeText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.value().Search(text));
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_RegexpLiteralSearch)->Range(256, 16384);

void BM_RegexpClassSearch(benchmark::State& state) {
  auto re = Regexp::Compile("[0-9][0-9]*");
  RuneString text = MakeText(static_cast<int>(state.range(0)));
  text += RunesFromUtf8("176153");
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.value().Search(text));
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_RegexpClassSearch)->Range(256, 16384);

void BM_RegexpPathological(benchmark::State& state) {
  // a?a?a?...aaa... — exponential for backtrackers, linear for the Pike VM.
  int n = static_cast<int>(state.range(0));
  std::string pattern;
  for (int i = 0; i < n; i++) {
    pattern += "a?";
  }
  pattern += std::string(static_cast<size_t>(n), 'a');
  auto re = Regexp::Compile(pattern);
  RuneString text(static_cast<size_t>(n), 'a');
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.value().Search(text));
  }
}
BENCHMARK(BM_RegexpPathological)->DenseRange(8, 24, 8);

void BM_RegexpAnchoredLineScan(benchmark::State& state) {
  // The Pattern command's shape: ^-anchored search across a window body.
  auto re = Regexp::Compile("^textinsert");
  RuneString text = MakeText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.value().Search(text));
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_RegexpAnchoredLineScan)->Range(1024, 16384);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
