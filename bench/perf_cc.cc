// P-5: C front-end performance — lexing, preprocessing, whole-corpus
// browsing (the `uses` query path).
#include <benchmark/benchmark.h>

#include "src/cc/browser.h"
#include "src/cc/clex.h"
#include "src/cc/cpp.h"
#include "src/tools/tools.h"

namespace help {
namespace {

struct Corpus {
  Corpus() {
    InstallTools(&h);
    BuildPaperWorld(&h);
  }
  Help h;
};

Corpus* corpus() {
  static Corpus* c = new Corpus();
  return c;
}

void BM_CLexExecC(benchmark::State& state) {
  std::string src = corpus()->h.vfs().ReadFile("/usr/rob/src/help/exec.c").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CLex(src, "exec.c"));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_CLexExecC);

void BM_CppExpandTranslationUnit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Preprocess(corpus()->h.vfs(), "/usr/rob/src/help/exec.c"));
  }
}
BENCHMARK(BM_CppExpandTranslationUnit);

void BM_BrowserParseTranslationUnit(benchmark::State& state) {
  auto pp = Preprocess(corpus()->h.vfs(), "/usr/rob/src/help/exec.c");
  for (auto _ : state) {
    CBrowser b;
    benchmark::DoNotOptimize(b.AddTranslationUnit(pp.value(), "exec.c"));
  }
}
BENCHMARK(BM_BrowserParseTranslationUnit);

void BM_BrowserWholeProgramUses(benchmark::State& state) {
  // The fig10 query: parse all 13 sources, resolve n, list its uses.
  static const char* kFiles[] = {"clik.c", "ctrl.c", "errs.c", "exec.c", "file.c",
                                 "help.c", "page.c", "pick.c", "proc.c", "scrl.c",
                                 "text.c", "util.c", "xtrn.c"};
  for (auto _ : state) {
    CBrowser b;
    for (const char* f : kFiles) {
      b.AddFile(corpus()->h.vfs(), std::string("/usr/rob/src/help/") + f);
    }
    const CSymbol* n = b.ResolveAt("n", "/usr/rob/src/help/exec.c", 252);
    benchmark::DoNotOptimize(b.UsesOf(n->id));
  }
  state.SetItemsProcessed(state.iterations() * 13);
}
BENCHMARK(BM_BrowserWholeProgramUses);

void BM_BrowserResolveAt(benchmark::State& state) {
  CBrowser b;
  static const char* kFiles[] = {"errs.c", "exec.c", "help.c", "text.c"};
  for (const char* f : kFiles) {
    b.AddFile(corpus()->h.vfs(), std::string("/usr/rob/src/help/") + f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.ResolveAt("n", "/usr/rob/src/help/exec.c", 252));
  }
}
BENCHMARK(BM_BrowserResolveAt);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
