// Figure 7: after applying db/stack to the broken process
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 7", "after applying db/stack to the broken process");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 7);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
