// P-7: multi-client 9P throughput. N concurrent client threads, each with
// its own Session, hammer walk/open/read/write against one Help instance's
// /mnt/help tree over the full encode → dispatch → decode byte path.
// Reports ops/sec and p50/p99 latency straight from the server's own
// metrics layer (the same numbers /mnt/help/stats serves).
//
//   usage: perf_ninep [threads] [ops-per-thread] [flags]
//
//   --read-heavy   90% body reads / 10% bodyapp appends over pre-opened fids
//                  (the PR 4 shared-read scaling workload) instead of the
//                  default mixed walk/open/read/write workload
//   --serialized   force every dispatch through the exclusive lock (the
//                  PR 1 serialized baseline, for A/B comparison)
//   --sweep        run thread counts 1,2,4,8 instead of one run
//   --json         emit one JSON object as the last line of stdout
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/server.h"

namespace help {
namespace {

struct Totals {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> failures{0};
};

// Deterministic per-thread offsets: the benches must not depend on rand().
struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
};

// The PR 1 mixed workload: index read / bodyapp append / body read /
// walk-open-read-clunk, one window per client.
void MixedLoop(Help* h, int id, int ops, Totals* totals) {
  NinepServer& srv = h->ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  if (!client.Connect(StrFormat("bench%d", id)).ok()) {
    totals->failures++;
    return;
  }
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  if (!ctl.ok()) {
    totals->failures++;
    return;
  }
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  uint64_t done = 0;
  for (int i = 0; i < ops; i++) {
    bool ok = true;
    switch (i % 4) {
      case 0:
        ok = client.ReadFile("/mnt/help/index").ok();
        break;
      case 1:
        ok = client.AppendFile(base + "/bodyapp", "line\n").ok();
        break;
      case 2:
        ok = client.ReadFile(base + "/body").ok();
        break;
      case 3: {
        auto fid = client.WalkFid(base + "/tag");
        ok = fid.ok() && client.OpenFid(fid.value(), kOread).ok() &&
             client.ReadFid(fid.value(), 0, 256).ok() &&
             client.Clunk(fid.value()).ok();
        break;
      }
    }
    if (ok) {
      done++;
    } else {
      totals->failures++;
    }
  }
  totals->ops += done;
  srv.CloseSession(sid);
}

// The PR 4 read-scaling workload: every client keeps a read-only body fid and
// a write-only bodyapp fid open, seeds the body, then issues 90% single-Tread
// range reads at pseudo-random offsets and 10% single-Twrite appends. This is
// the shape the paper's interface produces — browsers and scripts polling
// window bodies — boiled down to raw dispatches.
void ReadHeavyLoop(Help* h, int id, int ops, Totals* totals) {
  NinepServer& srv = h->ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  if (!client.Connect(StrFormat("bench%d", id)).ok()) {
    totals->failures++;
    return;
  }
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  if (!ctl.ok()) {
    totals->failures++;
    return;
  }
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  // Seed ~32KB of body so range reads have something to return.
  std::string seed;
  for (int i = 0; i < 640; i++) {
    seed += "a line of body text about like this one here, window body\n";
  }
  if (!client.WriteFile(base + "/bodyapp", seed).ok()) {
    totals->failures++;
    return;
  }
  auto body = client.WalkFid(base + "/body");
  auto app = client.WalkFid(base + "/bodyapp");
  if (!body.ok() || !app.ok() || !client.OpenFid(body.value(), kOread).ok() ||
      !client.OpenFid(app.value(), kOwrite).ok()) {
    totals->failures++;
    return;
  }
  Lcg rng(static_cast<uint32_t>(id) + 7);
  uint64_t done = 0;
  for (int i = 0; i < ops; i++) {
    bool ok;
    if (i % 10 == 9) {
      ok = client.WriteFid(app.value(), 0, "appended line\n").ok();
    } else {
      ok = client.ReadFid(body.value(), rng.Next() % seed.size(), 512).ok();
    }
    if (ok) {
      done++;
    } else {
      totals->failures++;
    }
  }
  client.Clunk(body.value());
  client.Clunk(app.value());
  totals->ops += done;
  srv.CloseSession(sid);
}

struct RunResult {
  int threads = 0;
  uint64_t client_ops = 0;
  uint64_t failures = 0;
  uint64_t msgs = 0;
  double secs = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t shared_reads = 0;
  uint64_t read_retries = 0;
  double ops_per_sec() const { return static_cast<double>(client_ops) / secs; }
  double msgs_per_sec() const { return static_cast<double>(msgs) / secs; }
};

RunResult RunOnce(int threads, int ops, bool read_heavy, bool serialized) {
  Help::Options opt;
  opt.install_userland = false;  // just the file service, no coreutils needed
  Help h(opt);
  h.ninep().set_force_exclusive(serialized);
  h.ninep().metrics().Reset();  // registry entries are process-global
  Totals totals;

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back(read_heavy ? ReadHeavyLoop : MixedLoop, &h, t, ops,
                         &totals);
  }
  for (std::thread& w : workers) {
    w.join();
  }

  const NinepMetrics& m = h.ninep().metrics();
  RunResult r;
  r.threads = threads;
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count();
  r.client_ops = totals.ops.load();
  r.failures = totals.failures.load();
  r.msgs = m.total_ops();
  r.p50_us = m.OverallPercentileUs(50);
  r.p99_us = m.OverallPercentileUs(99);
  r.shared_reads = m.shared_reads();
  r.read_retries = m.read_retries();
  return r;
}

void PrintHuman(const RunResult& r, const char* workload, bool serialized) {
  std::printf("clients            %d  (%s%s)\n", r.threads, workload,
              serialized ? ", serialized baseline" : "");
  std::printf("client ops         %llu (%llu failed)\n",
              static_cast<unsigned long long>(r.client_ops),
              static_cast<unsigned long long>(r.failures));
  std::printf("9P messages        %llu\n", static_cast<unsigned long long>(r.msgs));
  std::printf("elapsed            %.3f s\n", r.secs);
  std::printf("throughput         %.0f client-ops/s, %.0f msgs/s\n",
              r.ops_per_sec(), r.msgs_per_sec());
  std::printf("latency p50/p99    %llu us / %llu us (all ops)\n",
              static_cast<unsigned long long>(r.p50_us),
              static_cast<unsigned long long>(r.p99_us));
  std::printf("shared reads       %llu (%llu retried exclusively)\n",
              static_cast<unsigned long long>(r.shared_reads),
              static_cast<unsigned long long>(r.read_retries));
}

std::string JsonOf(const RunResult& r) {
  return StrFormat(
      "{\"threads\":%d,\"client_ops\":%llu,\"failures\":%llu,\"msgs\":%llu,"
      "\"elapsed_s\":%.3f,\"ops_per_sec\":%.1f,\"msgs_per_sec\":%.1f,"
      "\"p50_us\":%llu,\"p99_us\":%llu,\"shared_reads\":%llu,"
      "\"read_retries\":%llu}",
      r.threads, static_cast<unsigned long long>(r.client_ops),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.msgs), r.secs, r.ops_per_sec(),
      r.msgs_per_sec(), static_cast<unsigned long long>(r.p50_us),
      static_cast<unsigned long long>(r.p99_us),
      static_cast<unsigned long long>(r.shared_reads),
      static_cast<unsigned long long>(r.read_retries));
}

int Main(int argc, char** argv) {
  int threads = 8;
  int ops = 2000;
  bool read_heavy = false;
  bool serialized = false;
  bool json = false;
  bool sweep = false;
  int positional = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--read-heavy") == 0) {
      read_heavy = true;
    } else if (std::strcmp(argv[i], "--serialized") == 0) {
      serialized = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: perf_ninep [threads] [ops-per-thread] "
                   "[--read-heavy] [--serialized] [--sweep] [--json]\n");
      return 2;
    } else if (positional == 0) {
      threads = std::atoi(argv[i]);
      positional++;
    } else {
      ops = std::atoi(argv[i]);
      positional++;
    }
  }
  if (threads < 1 || ops < 1) {
    std::fprintf(stderr, "perf_ninep: threads and ops must be >= 1\n");
    return 2;
  }

  const char* workload = read_heavy ? "read-heavy" : "mixed";
  uint64_t failures = 0;
  std::vector<RunResult> results;
  std::vector<int> counts = sweep ? std::vector<int>{1, 2, 4, 8}
                                  : std::vector<int>{threads};
  for (int n : counts) {
    RunResult r = RunOnce(n, ops, read_heavy, serialized);
    failures += r.failures;
    if (!json) {
      PrintHuman(r, workload, serialized);
      if (sweep) {
        std::printf("\n");
      }
    }
    results.push_back(r);
  }

  if (json) {
    // One JSON object, the last line of stdout (the machine-readable
    // contract for the BENCH_* trajectory files and the CI artifact).
    std::string runs;
    for (const RunResult& r : results) {
      if (!runs.empty()) {
        runs += ",";
      }
      runs += JsonOf(r);
    }
    std::printf(
        "{\"bench\":\"perf_ninep\",\"workload\":\"%s\",\"serialized\":%s,"
        "\"ops_per_thread\":%d,\"runs\":[%s]}\n",
        workload, serialized ? "true" : "false", ops, runs.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace help

int main(int argc, char** argv) { return help::Main(argc, argv); }
