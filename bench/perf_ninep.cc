// P-7: multi-client 9P throughput. N concurrent client threads, each with
// its own Session, hammer walk/open/read/write against one Help instance's
// /mnt/help tree over the full encode → dispatch → decode byte path.
// Reports ops/sec and p50/p99 latency straight from the server's own
// metrics layer (the same numbers /mnt/help/stats serves).
//
//   usage: perf_ninep [threads] [ops-per-thread]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/server.h"

namespace help {
namespace {

struct Totals {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> failures{0};
};

void ClientLoop(Help* h, int id, int ops, Totals* totals) {
  NinepServer& srv = h->ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  if (!client.Connect(StrFormat("bench%d", id)).ok()) {
    totals->failures++;
    return;
  }
  // One window per client, built over the wire; then a steady mix of
  // walks, opens, reads, and writes against it and the shared index.
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  if (!ctl.ok()) {
    totals->failures++;
    return;
  }
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  uint64_t done = 0;
  for (int i = 0; i < ops; i++) {
    bool ok = true;
    switch (i % 4) {
      case 0:
        ok = client.ReadFile("/mnt/help/index").ok();
        break;
      case 1:
        ok = client.AppendFile(base + "/bodyapp", "line\n").ok();
        break;
      case 2:
        ok = client.ReadFile(base + "/body").ok();
        break;
      case 3: {
        auto fid = client.WalkFid(base + "/tag");
        ok = fid.ok() && client.OpenFid(fid.value(), kOread).ok() &&
             client.ReadFid(fid.value(), 0, 256).ok() &&
             client.Clunk(fid.value()).ok();
        break;
      }
    }
    if (ok) {
      done++;
    } else {
      totals->failures++;
    }
  }
  totals->ops += done;
  srv.CloseSession(sid);
}

int Main(int argc, char** argv) {
  int threads = argc > 1 ? std::atoi(argv[1]) : 8;
  int ops = argc > 2 ? std::atoi(argv[2]) : 2000;
  if (threads < 1 || ops < 1) {
    std::fprintf(stderr, "usage: perf_ninep [threads] [ops-per-thread]\n");
    return 2;
  }

  Help::Options opt;
  opt.install_userland = false;  // just the file service, no coreutils needed
  Help h(opt);
  Totals totals;

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back(ClientLoop, &h, t, ops, &totals);
  }
  for (std::thread& w : workers) {
    w.join();
  }
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();

  const NinepMetrics& m = h.ninep().metrics();
  uint64_t rpcs = m.total_ops();
  std::printf("clients            %d\n", threads);
  std::printf("client ops         %llu (%llu failed)\n",
              static_cast<unsigned long long>(totals.ops.load()),
              static_cast<unsigned long long>(totals.failures.load()));
  std::printf("9P messages        %llu\n", static_cast<unsigned long long>(rpcs));
  std::printf("elapsed            %.3f s\n", secs);
  std::printf("throughput         %.0f client-ops/s, %.0f msgs/s\n",
              static_cast<double>(totals.ops.load()) / secs,
              static_cast<double>(rpcs) / secs);
  std::printf("latency p50/p99    %llu us / %llu us (all ops)\n",
              static_cast<unsigned long long>(m.OverallPercentileUs(50)),
              static_cast<unsigned long long>(m.OverallPercentileUs(99)));
  for (NinepOp op : {NinepOp::kWalk, NinepOp::kOpen, NinepOp::kRead, NinepOp::kWrite,
                     NinepOp::kClunk}) {
    std::printf("  %-7s %10llu ops   p50 %llu us   p99 %llu us\n", NinepOpName(op),
                static_cast<unsigned long long>(m.count(op)),
                static_cast<unsigned long long>(m.LatencyPercentileUs(op, 50)),
                static_cast<unsigned long long>(m.LatencyPercentileUs(op, 99)));
  }
  std::printf("bytes in/out       %llu / %llu\n",
              static_cast<unsigned long long>(m.bytes_in()),
              static_cast<unsigned long long>(m.bytes_out()));
  return totals.failures.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace help

int main(int argc, char** argv) { return help::Main(argc, argv); }
