// P-7: multi-client 9P throughput. N concurrent client threads, each with
// its own Session, hammer walk/open/read/write against one Help instance's
// /mnt/help tree over the full encode → dispatch → decode byte path.
// Reports ops/sec and p50/p99 latency straight from the server's own
// metrics layer (the same numbers /mnt/help/stats serves).
//
//   usage: perf_ninep [threads] [ops-per-thread] [flags]
//
//   --read-heavy   90% body reads / 10% bodyapp appends over pre-opened fids
//                  (the PR 4 shared-read scaling workload) instead of the
//                  default mixed walk/open/read/write workload
//   --serialized   force every dispatch through the exclusive lock (the
//                  PR 1 serialized baseline, for A/B comparison)
//   --sweep        run thread counts 1,2,4,8 instead of one run
//   --json         emit one JSON object as the last line of stdout
//   --socket       the PR 7 C10K workload: positionals become [conns]
//                  [ops-per-conn] (default 1000 x 20). Serves over a
//                  Unix-domain socket through the epoll listener; driver
//                  threads hold every connection open concurrently — each
//                  its own session and pre-opened body fid — and round-robin
//                  range reads across them. Exits nonzero on any protocol
//                  error.
//   --shard        the PR 10 dispatch-shard pairs: positionals become
//                  [clients] [ops-per-client] (default 4 x 1500). Each
//                  client streams bodyapp appends over its own Unix-socket
//                  connection, once with every client on its own window and
//                  once with all clients on one window, each run sharded
//                  and with set_disable_sharding — four runs whose speedup
//                  map (sharded vs unsharded) the CI bench gate checks.
//                  Appended to --sweep as well.
//   --trace FILE   run with request tracing enabled and write the captured
//                  ring as Chrome trace-event JSON to FILE when the runs
//                  finish (open it in chrome://tracing or Perfetto; each
//                  request's phases chain on one rid across the named
//                  net.loop / net.worker threads)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"
#include "src/obs/trace.h"

namespace help {
namespace {

struct Totals {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> failures{0};
};

// Deterministic per-thread offsets: the benches must not depend on rand().
struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
};

// The PR 1 mixed workload: index read / bodyapp append / body read /
// walk-open-read-clunk, one window per client.
void MixedLoop(Help* h, int id, int ops, Totals* totals) {
  NinepServer& srv = h->ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  if (!client.Connect(StrFormat("bench%d", id)).ok()) {
    totals->failures++;
    return;
  }
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  if (!ctl.ok()) {
    totals->failures++;
    return;
  }
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  uint64_t done = 0;
  for (int i = 0; i < ops; i++) {
    bool ok = true;
    switch (i % 4) {
      case 0:
        ok = client.ReadFile("/mnt/help/index").ok();
        break;
      case 1:
        ok = client.AppendFile(base + "/bodyapp", "line\n").ok();
        break;
      case 2:
        ok = client.ReadFile(base + "/body").ok();
        break;
      case 3: {
        auto fid = client.WalkFid(base + "/tag");
        ok = fid.ok() && client.OpenFid(fid.value(), kOread).ok() &&
             client.ReadFid(fid.value(), 0, 256).ok() &&
             client.Clunk(fid.value()).ok();
        break;
      }
    }
    if (ok) {
      done++;
    } else {
      totals->failures++;
    }
  }
  totals->ops += done;
  srv.CloseSession(sid);
}

// The PR 4 read-scaling workload: every client keeps a read-only body fid and
// a write-only bodyapp fid open, seeds the body, then issues 90% single-Tread
// range reads at pseudo-random offsets and 10% single-Twrite appends. This is
// the shape the paper's interface produces — browsers and scripts polling
// window bodies — boiled down to raw dispatches.
void ReadHeavyLoop(Help* h, int id, int ops, Totals* totals) {
  NinepServer& srv = h->ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  if (!client.Connect(StrFormat("bench%d", id)).ok()) {
    totals->failures++;
    return;
  }
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  if (!ctl.ok()) {
    totals->failures++;
    return;
  }
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  // Seed ~32KB of body so range reads have something to return.
  std::string seed;
  for (int i = 0; i < 640; i++) {
    seed += "a line of body text about like this one here, window body\n";
  }
  if (!client.WriteFile(base + "/bodyapp", seed).ok()) {
    totals->failures++;
    return;
  }
  auto body = client.WalkFid(base + "/body");
  auto app = client.WalkFid(base + "/bodyapp");
  if (!body.ok() || !app.ok() || !client.OpenFid(body.value(), kOread).ok() ||
      !client.OpenFid(app.value(), kOwrite).ok()) {
    totals->failures++;
    return;
  }
  Lcg rng(static_cast<uint32_t>(id) + 7);
  uint64_t done = 0;
  for (int i = 0; i < ops; i++) {
    bool ok;
    if (i % 10 == 9) {
      ok = client.WriteFid(app.value(), 0, "appended line\n").ok();
    } else {
      ok = client.ReadFid(body.value(), rng.Next() % seed.size(), 512).ok();
    }
    if (ok) {
      done++;
    } else {
      totals->failures++;
    }
  }
  client.Clunk(body.value());
  client.Clunk(app.value());
  totals->ops += done;
  srv.CloseSession(sid);
}

struct RunResult {
  int threads = 0;
  uint64_t client_ops = 0;
  uint64_t failures = 0;
  uint64_t msgs = 0;
  double secs = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t shared_reads = 0;
  uint64_t read_retries = 0;
  uint64_t conns = 0;       // --socket: concurrent socket connections held
  uint64_t peak_conns = 0;  // --socket: listener's live gauge at full load
  // PR 9 pipeline pairs: which config this run measured, plus the zero-copy
  // accounting. staged_body_delta is ninep.bytes_staged growth across the
  // timed read phase alone — the CI gate pins it to 0 for zero-copy runs
  // (setup traffic like new/ctl reads stages by design).
  std::string label;
  uint64_t bytes_zero_copy = 0;
  uint64_t bytes_staged = 0;
  uint64_t staged_body_delta = 0;
  uint64_t ooo_completions = 0;
  uint64_t writev_calls = 0;
  // PR 10 dispatch-shard accounting (the lock.* stats rows).
  uint64_t lock_window_acquires = 0;
  uint64_t lock_epoch_exclusive = 0;
  uint64_t lock_shard_wait_p99us = 0;
  double ops_per_sec() const { return static_cast<double>(client_ops) / secs; }
  double msgs_per_sec() const { return static_cast<double>(msgs) / secs; }
};

// One socket connection's client state, held open for the whole run.
struct SocketConn {
  std::unique_ptr<SocketTransport> tr;
  std::unique_ptr<NinepClient> client;
  uint32_t fid = kNoFid;
  bool ok = false;
};

// The C10K workload: `conns` concurrent Unix-socket connections against one
// listener, every one live for the whole run. A small driver-thread pool
// multiplexes them (1000 blocking client threads would bench the host
// scheduler, not the server); concurrency on the server side is real — every
// connection is accepted, polled, and dispatched independently.
RunResult RunSocketOnce(int conns, int ops) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  h.ninep().metrics().Reset();  // registry entries are process-global
  NinepListener::Options lopt;
  lopt.workers = 4;
  NinepListener lis(&h.ninep(), lopt);
  std::string path = StrFormat("perf_ninep.%d.sock", getpid());
  RunResult r;
  r.conns = static_cast<uint64_t>(conns);
  if (!lis.ListenUnix(path).ok() || !lis.Start().ok()) {
    r.failures = 1;
    return r;
  }
  RaiseFdLimit(static_cast<uint64_t>(conns) * 2 + 256);

  // Seed one window body for everyone to read (range reads go down the PR 4
  // shared dispatch path, so the connections genuinely run concurrently).
  std::string base;
  constexpr size_t kBodyBytes = 32 * 1024;
  {
    auto tr = SocketTransport::ConnectUnix(path);
    if (!tr.ok()) {
      r.failures = 1;
      return r;
    }
    NinepClient seeder(tr.value()->AsTransport());
    std::string seed;
    while (seed.size() < kBodyBytes) {
      seed += "a line of body text about like this one here, window body\n";
    }
    auto ctl = seeder.Connect("seeder").ok()
                   ? seeder.ReadFile("/mnt/help/new/ctl")
                   : Result<std::string>(Status::Error("connect failed"));
    if (!ctl.ok()) {
      r.failures = 1;
      return r;
    }
    base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
    if (!seeder.WriteFile(base + "/bodyapp", seed).ok()) {
      r.failures = 1;
      return r;
    }
  }

  const int drivers = conns < 16 ? conns : 16;
  r.threads = drivers;
  std::vector<SocketConn> table(static_cast<size_t>(conns));
  std::atomic<uint64_t> failures{0};

  // Phase 1: establish every connection — handshake plus a pre-opened
  // read-only body fid — and keep all of them open.
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(drivers));
    for (int d = 0; d < drivers; d++) {
      pool.emplace_back([&, d] {
        for (int i = d; i < conns; i += drivers) {
          SocketConn& c = table[static_cast<size_t>(i)];
          auto tr = SocketTransport::ConnectUnix(path);
          if (!tr.ok()) {
            failures++;
            continue;
          }
          c.tr = tr.take();
          c.client = std::make_unique<NinepClient>(c.tr->AsTransport());
          if (!c.client->Connect(StrFormat("c10k%d", i)).ok()) {
            failures++;
            continue;
          }
          auto fid = c.client->WalkFid(base + "/body");
          if (!fid.ok() || !c.client->OpenFid(fid.value(), kOread).ok()) {
            failures++;
            continue;
          }
          c.fid = fid.value();
          c.ok = true;
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  r.peak_conns = lis.active_conns();  // every connection is live right now

  // Phase 2: round-robin range reads over every open connection.
  std::atomic<uint64_t> total_ok{0};
  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(drivers));
    for (int d = 0; d < drivers; d++) {
      pool.emplace_back([&, d] {
        Lcg rng(static_cast<uint32_t>(d) + 31);
        uint64_t ok = 0;
        for (int op = 0; op < ops; op++) {
          for (int i = d; i < conns; i += drivers) {
            SocketConn& c = table[static_cast<size_t>(i)];
            if (!c.ok) {
              continue;
            }
            uint64_t off = rng.Next() % (kBodyBytes / 2);
            auto data = c.client->ReadFid(c.fid, off, 512);
            if (data.ok() && !data.value().empty()) {
              ok++;
            } else {
              failures++;
            }
          }
        }
        total_ok += ok;
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count();

  const NinepMetrics& m = h.ninep().metrics();
  r.client_ops = total_ok.load();
  r.failures = failures.load();
  r.msgs = m.total_ops();
  r.p50_us = m.OverallPercentileUs(50);
  r.p99_us = m.OverallPercentileUs(99);
  r.shared_reads = m.shared_reads();
  r.read_retries = m.read_retries();
  table.clear();  // closes every client socket
  lis.Stop();
  return r;
}

// PR 9 pipeline pair runs: one Unix-socket connection, `ops` random 512-byte
// body reads. `pipelined` issues them through ReadFidPipelined with a
// 16-deep window against the out-of-order scheduler; the baseline caps the
// connection at one worker (the pre-PR 9 in-order path) and a window of 1
// (one RTT per read). `zero_copy` toggles the scatter-gather Rread path vs.
// the staged escape hatch. On one CPU the pipelined win is syscall and
// wakeup amortization — the client keeps the window full while the listener
// drains coalesced replies with one writev per wakeup.
RunResult RunPipelineOnce(const char* label, bool pipelined, bool zero_copy,
                          int ops) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  h.ninep().metrics().Reset();  // registry entries are process-global
  h.ninep().set_disable_zero_copy(!zero_copy);
  ListenerOptions lopt;
  lopt.workers = 4;
  lopt.max_conn_workers = pipelined ? 0 : 1;
  NinepListener lis(&h.ninep(), lopt);
  std::string path = StrFormat("perf_pipe.%d.sock", getpid());
  RunResult r;
  r.label = label;
  r.threads = 1;
  if (!lis.ListenUnix(path).ok() || !lis.Start().ok()) {
    r.failures = 1;
    return r;
  }

  auto tr = SocketTransport::ConnectUnix(path);
  if (!tr.ok()) {
    r.failures = 1;
    return r;
  }
  NinepClient client(tr.value()->AsTransport());
  auto strp = tr.take();
  client.set_pipe_io(strp->AsPipeIo());
  constexpr size_t kBodyBytes = 32 * 1024;
  std::string base;
  uint32_t fid = kNoFid;
  {
    std::string seed;
    while (seed.size() < kBodyBytes) {
      seed += "a line of body text about like this one here, window body\n";
    }
    auto ctl = client.Connect("pipe").ok()
                   ? client.ReadFile("/mnt/help/new/ctl")
                   : Result<std::string>(Status::Error("connect failed"));
    if (!ctl.ok()) {
      r.failures = 1;
      return r;
    }
    base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
    if (!client.WriteFile(base + "/bodyapp", seed).ok()) {
      r.failures = 1;
      return r;
    }
    auto f = client.WalkFid(base + "/body");
    if (!f.ok() || !client.OpenFid(f.value(), kOread).ok()) {
      r.failures = 1;
      return r;
    }
    fid = f.value();
  }

  const NinepMetrics& m = h.ninep().metrics();
  const uint64_t staged0 = m.bytes_staged();
  const int window = pipelined ? 16 : 1;
  Lcg rng(97);
  auto start = std::chrono::steady_clock::now();
  int done = 0;
  while (done < ops) {
    std::vector<NinepClient::ReadRange> ranges;
    while (static_cast<int>(ranges.size()) < window &&
           done + static_cast<int>(ranges.size()) < ops) {
      ranges.push_back({rng.Next() % (kBodyBytes / 2), 512});
    }
    auto got = client.ReadFidPipelined(fid, ranges, window);
    if (!got.ok()) {
      r.failures++;
      break;
    }
    done += static_cast<int>(ranges.size());
  }
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count();
  r.client_ops = static_cast<uint64_t>(done);
  r.msgs = m.total_ops();
  r.p50_us = m.OverallPercentileUs(50);
  r.p99_us = m.OverallPercentileUs(99);
  r.shared_reads = m.shared_reads();
  r.read_retries = m.read_retries();
  r.staged_body_delta = m.bytes_staged() - staged0;
  r.bytes_zero_copy = m.bytes_zero_copy();
  r.bytes_staged = m.bytes_staged();
  r.ooo_completions = m.ooo_completions();
  r.writev_calls = m.net_writev_calls();
  strp.reset();  // close the socket before the listener stops
  lis.Stop();
  return r;
}

// PR 10 shard pair runs: `clients` socket connections, each streaming `ops`
// small appends through an open bodyapp fid — the pure mutation workload the
// per-window dispatch shards exist for. multi_window gives every client its
// own window, so sharded dispatch can run the writes in parallel under one
// shared epoch lock; single-window aims every client at ONE window — the
// contended shape where sharding must not regress. `sharded` toggles the
// set_disable_sharding escape hatch, making each pair a differential oracle;
// the speedups map in --json is what the CI bench-smoke gate reads.
RunResult RunShardOnce(const char* label, int clients, int ops, bool sharded,
                       bool multi_window) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  h.ninep().metrics().Reset();  // registry entries are process-global
  h.ninep().set_disable_sharding(!sharded);
  ListenerOptions lopt;
  lopt.workers = clients < 8 ? clients : 8;
  NinepListener lis(&h.ninep(), lopt);
  std::string path = StrFormat("perf_shard.%d.sock", getpid());
  RunResult r;
  r.label = label;
  r.threads = clients;
  if (!lis.ListenUnix(path).ok() || !lis.Start().ok()) {
    r.failures = 1;
    return r;
  }

  // Setup outside the timed phase: the windows, one connection per client,
  // and a pre-opened write fid on each client's target window.
  std::vector<std::string> bases;
  {
    auto tr = SocketTransport::ConnectUnix(path);
    if (!tr.ok()) {
      r.failures = 1;
      return r;
    }
    NinepClient seeder(tr.value()->AsTransport());
    if (!seeder.Connect("seeder").ok()) {
      r.failures = 1;
      return r;
    }
    int nwin = multi_window ? clients : 1;
    for (int w = 0; w < nwin; w++) {
      auto ctl = seeder.ReadFile("/mnt/help/new/ctl");
      if (!ctl.ok()) {
        r.failures = 1;
        return r;
      }
      bases.push_back("/mnt/help/" + std::string(TrimSpace(ctl.value())));
    }
  }
  std::vector<std::unique_ptr<SocketTransport>> socks(
      static_cast<size_t>(clients));
  std::vector<std::unique_ptr<NinepClient>> conns(
      static_cast<size_t>(clients));
  std::vector<uint32_t> fids(static_cast<size_t>(clients), kNoFid);
  for (int i = 0; i < clients; i++) {
    auto tr = SocketTransport::ConnectUnix(path);
    if (!tr.ok()) {
      r.failures = 1;
      return r;
    }
    socks[static_cast<size_t>(i)] = tr.take();
    conns[static_cast<size_t>(i)] = std::make_unique<NinepClient>(
        socks[static_cast<size_t>(i)]->AsTransport());
    NinepClient& c = *conns[static_cast<size_t>(i)];
    const std::string& base = bases[multi_window ? static_cast<size_t>(i) : 0];
    auto fid = c.Connect(StrFormat("shard%d", i)).ok()
                   ? c.WalkFid(base + "/bodyapp")
                   : Result<uint32_t>(Status::Error("connect failed"));
    if (!fid.ok() || !c.OpenFid(fid.value(), kOwrite).ok()) {
      r.failures = 1;
      return r;
    }
    fids[static_cast<size_t>(i)] = fid.value();
  }

  std::atomic<uint64_t> total_ok{0};
  std::atomic<uint64_t> failures{0};
  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(clients));
    for (int i = 0; i < clients; i++) {
      pool.emplace_back([&, i] {
        NinepClient& c = *conns[static_cast<size_t>(i)];
        uint64_t ok = 0;
        for (int op = 0; op < ops; op++) {
          if (c.WriteFid(fids[static_cast<size_t>(i)], 0,
                         "a line of appended body text\n")
                  .ok()) {
            ok++;
          } else {
            failures++;
          }
        }
        total_ok += ok;
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count();

  const NinepMetrics& m = h.ninep().metrics();
  r.client_ops = total_ok.load();
  r.failures += failures.load();
  r.msgs = m.total_ops();
  r.p50_us = m.OverallPercentileUs(50);
  r.p99_us = m.OverallPercentileUs(99);
  r.shared_reads = m.shared_reads();
  r.read_retries = m.read_retries();
  r.lock_window_acquires = m.lock_window_acquires();
  r.lock_epoch_exclusive = m.lock_epoch_exclusive();
  r.lock_shard_wait_p99us = m.lock_shard_wait_p99us();
  conns.clear();
  socks.clear();  // close every client socket before the listener stops
  lis.Stop();
  return r;
}

RunResult RunOnce(int threads, int ops, bool read_heavy, bool serialized) {
  Help::Options opt;
  opt.install_userland = false;  // just the file service, no coreutils needed
  Help h(opt);
  h.ninep().set_force_exclusive(serialized);
  h.ninep().metrics().Reset();  // registry entries are process-global
  Totals totals;

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back(read_heavy ? ReadHeavyLoop : MixedLoop, &h, t, ops,
                         &totals);
  }
  for (std::thread& w : workers) {
    w.join();
  }

  const NinepMetrics& m = h.ninep().metrics();
  RunResult r;
  r.threads = threads;
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count();
  r.client_ops = totals.ops.load();
  r.failures = totals.failures.load();
  r.msgs = m.total_ops();
  r.p50_us = m.OverallPercentileUs(50);
  r.p99_us = m.OverallPercentileUs(99);
  r.shared_reads = m.shared_reads();
  r.read_retries = m.read_retries();
  return r;
}

void PrintHuman(const RunResult& r, const char* workload, bool serialized) {
  if (!r.label.empty()) {
    std::printf("config             %s\n", r.label.c_str());
  }
  if (r.conns > 0) {
    std::printf("connections        %llu concurrent (%llu live at peak), "
                "%d driver threads\n",
                static_cast<unsigned long long>(r.conns),
                static_cast<unsigned long long>(r.peak_conns), r.threads);
  }
  std::printf("clients            %d  (%s%s)\n", r.threads, workload,
              serialized ? ", serialized baseline" : "");
  std::printf("client ops         %llu (%llu failed)\n",
              static_cast<unsigned long long>(r.client_ops),
              static_cast<unsigned long long>(r.failures));
  std::printf("9P messages        %llu\n", static_cast<unsigned long long>(r.msgs));
  std::printf("elapsed            %.3f s\n", r.secs);
  std::printf("throughput         %.0f client-ops/s, %.0f msgs/s\n",
              r.ops_per_sec(), r.msgs_per_sec());
  std::printf("latency p50/p99    %llu us / %llu us (all ops)\n",
              static_cast<unsigned long long>(r.p50_us),
              static_cast<unsigned long long>(r.p99_us));
  std::printf("shared reads       %llu (%llu retried exclusively)\n",
              static_cast<unsigned long long>(r.shared_reads),
              static_cast<unsigned long long>(r.read_retries));
  if (!r.label.empty()) {
    std::printf("zero-copy bytes    %llu (%llu staged, %llu staged during "
                "reads)\n",
                static_cast<unsigned long long>(r.bytes_zero_copy),
                static_cast<unsigned long long>(r.bytes_staged),
                static_cast<unsigned long long>(r.staged_body_delta));
    std::printf("ooo completions    %llu, writev calls %llu\n",
                static_cast<unsigned long long>(r.ooo_completions),
                static_cast<unsigned long long>(r.writev_calls));
    std::printf("lock acquires      %llu window, %llu epoch-exclusive, "
                "shard wait p99 %llu us\n",
                static_cast<unsigned long long>(r.lock_window_acquires),
                static_cast<unsigned long long>(r.lock_epoch_exclusive),
                static_cast<unsigned long long>(r.lock_shard_wait_p99us));
  }
}

std::string JsonOf(const RunResult& r) {
  std::string json = StrFormat(
      "{\"threads\":%d,\"client_ops\":%llu,\"failures\":%llu,\"msgs\":%llu,"
      "\"elapsed_s\":%.3f,\"ops_per_sec\":%.1f,\"msgs_per_sec\":%.1f,"
      "\"p50_us\":%llu,\"p99_us\":%llu,\"shared_reads\":%llu,"
      "\"read_retries\":%llu",
      r.threads, static_cast<unsigned long long>(r.client_ops),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.msgs), r.secs, r.ops_per_sec(),
      r.msgs_per_sec(), static_cast<unsigned long long>(r.p50_us),
      static_cast<unsigned long long>(r.p99_us),
      static_cast<unsigned long long>(r.shared_reads),
      static_cast<unsigned long long>(r.read_retries));
  if (r.conns > 0) {
    json += StrFormat(",\"conns\":%llu,\"peak_conns\":%llu",
                      static_cast<unsigned long long>(r.conns),
                      static_cast<unsigned long long>(r.peak_conns));
  }
  if (!r.label.empty()) {
    json += StrFormat(
        ",\"label\":\"%s\",\"bytes_zero_copy\":%llu,\"bytes_staged\":%llu,"
        "\"staged_body_delta\":%llu,\"ooo_completions\":%llu,"
        "\"writev_calls\":%llu",
        r.label.c_str(), static_cast<unsigned long long>(r.bytes_zero_copy),
        static_cast<unsigned long long>(r.bytes_staged),
        static_cast<unsigned long long>(r.staged_body_delta),
        static_cast<unsigned long long>(r.ooo_completions),
        static_cast<unsigned long long>(r.writev_calls));
    json += StrFormat(
        ",\"lock_window_acquires\":%llu,\"lock_epoch_exclusive\":%llu,"
        "\"lock_shard_wait_p99us\":%llu",
        static_cast<unsigned long long>(r.lock_window_acquires),
        static_cast<unsigned long long>(r.lock_epoch_exclusive),
        static_cast<unsigned long long>(r.lock_shard_wait_p99us));
  }
  return json + "}";
}

int Main(int argc, char** argv) {
  int threads = 8;
  int ops = 2000;
  bool read_heavy = false;
  bool serialized = false;
  bool json = false;
  bool sweep = false;
  bool socket = false;
  bool pipeline = false;
  bool shard = false;
  std::string trace_path;
  int positional = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--read-heavy") == 0) {
      read_heavy = true;
    } else if (std::strcmp(argv[i], "--serialized") == 0) {
      serialized = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      socket = true;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      pipeline = true;
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      shard = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: perf_ninep [threads] [ops-per-thread] "
                   "[--read-heavy] [--serialized] [--sweep] [--json]\n"
                   "       perf_ninep --socket [conns] [ops-per-conn] "
                   "[--json] [--trace FILE]\n"
                   "       perf_ninep --pipeline [_] [ops] [--json]\n"
                   "       perf_ninep --shard [clients] [ops-per-client] "
                   "[--json]\n");
      return 2;
    } else if (positional == 0) {
      threads = std::atoi(argv[i]);
      positional++;
    } else {
      ops = std::atoi(argv[i]);
      positional++;
    }
  }
  if (socket) {
    // The positionals mean [conns] [ops-per-conn] here; defaults prove the
    // acceptance bar (1000 concurrent connections, zero protocol errors).
    if (positional == 0) {
      threads = 1000;
    }
    if (positional < 2) {
      ops = 20;
    }
  }
  if (threads < 1 || ops < 1) {
    std::fprintf(stderr, "perf_ninep: threads and ops must be >= 1\n");
    return 2;
  }

  if (!trace_path.empty()) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().Enable();
  }

  const char* workload = socket     ? "socket"
                         : pipeline ? "pipeline"
                         : shard    ? "shard"
                         : read_heavy ? "read-heavy"
                                      : "mixed";
  uint64_t failures = 0;
  std::vector<RunResult> results;
  if (!pipeline && !shard) {
    std::vector<int> counts = sweep && !socket ? std::vector<int>{1, 2, 4, 8}
                                               : std::vector<int>{threads};
    for (int n : counts) {
      RunResult r = socket ? RunSocketOnce(n, ops)
                           : RunOnce(n, ops, read_heavy, serialized);
      failures += r.failures;
      if (!json) {
        PrintHuman(r, workload, serialized);
        if (sweep) {
          std::printf("\n");
        }
      }
      results.push_back(r);
    }
  }
  // The PR 9 comparison pairs: zero-copy vs staged on the pipelined path,
  // and pipelined vs the pre-PR 9 in-order baseline. `--pipeline` runs just
  // these; a non-socket `--sweep` appends them after the thread sweep.
  if (pipeline || (sweep && !socket)) {
    int pops = pipeline && positional >= 2 ? ops : 4000;
    struct Cfg {
      const char* label;
      bool pipelined;
      bool zero_copy;
    };
    const Cfg cfgs[] = {
        {"pipelined_zero_copy", true, true},
        {"pipelined_staged", true, false},
        {"inorder_zero_copy", false, true},
        {"inorder_staged", false, false},
    };
    for (const Cfg& cfg : cfgs) {
      RunResult r = RunPipelineOnce(cfg.label, cfg.pipelined, cfg.zero_copy,
                                    pops);
      failures += r.failures;
      if (!json) {
        PrintHuman(r, "pipeline", false);
        std::printf("\n");
      }
      results.push_back(r);
    }
  }
  // The PR 10 dispatch-shard pairs: N clients appending over sockets, each
  // config run sharded and with the set_disable_sharding escape hatch.
  // `--shard` runs just these; a non-socket `--sweep` appends them too. The
  // speedups land in the top-level JSON for the CI gate: multi_window must
  // clear 1.3x, single_window must stay within 5% of the unsharded baseline.
  double shard_multi_speedup = 0;
  double shard_single_speedup = 0;
  bool shard_ran = false;
  if (shard || (sweep && !socket)) {
    int sclients = shard && positional >= 1 ? threads : 4;
    int sops = shard && positional >= 2 ? ops : 1500;
    struct ShardCfg {
      const char* label;
      bool sharded;
      bool multi_window;
    };
    const ShardCfg cfgs[] = {
        {"shard_multiwin_sharded", true, true},
        {"shard_multiwin_nosharding", false, true},
        {"shard_singlewin_sharded", true, false},
        {"shard_singlewin_nosharding", false, false},
    };
    std::vector<RunResult> pair;
    for (const ShardCfg& cfg : cfgs) {
      RunResult r = RunShardOnce(cfg.label, sclients, sops, cfg.sharded,
                                 cfg.multi_window);
      failures += r.failures;
      if (!json) {
        PrintHuman(r, "shard", false);
        std::printf("\n");
      }
      results.push_back(r);
      pair.push_back(r);
    }
    if (pair.size() == 4 && pair[1].ops_per_sec() > 0 &&
        pair[3].ops_per_sec() > 0) {
      shard_multi_speedup = pair[0].ops_per_sec() / pair[1].ops_per_sec();
      shard_single_speedup = pair[2].ops_per_sec() / pair[3].ops_per_sec();
      shard_ran = true;
      if (!json) {
        std::printf("shard speedups     multi-window %.2fx, single-window "
                    "%.2fx (sharded vs disable_sharding, %u cores)\n",
                    shard_multi_speedup, shard_single_speedup,
                    std::thread::hardware_concurrency());
      }
    }
  }

  if (!trace_path.empty()) {
    obs::Tracer::Global().Disable();
    std::string trace = obs::Tracer::Global().RenderChromeJson();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_ninep: cannot write %s\n", trace_path.c_str());
      failures++;
    } else {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "perf_ninep: wrote %zu-byte Chrome trace to %s\n",
                   trace.size(), trace_path.c_str());
    }
  }

  if (json) {
    // One JSON object, the last line of stdout (the machine-readable
    // contract for the BENCH_* trajectory files and the CI artifact).
    std::string runs;
    for (const RunResult& r : results) {
      if (!runs.empty()) {
        runs += ",";
      }
      runs += JsonOf(r);
    }
    std::string speedups;
    if (shard_ran) {
      // cores rides along so the CI gate can tell a real regression from a
      // runner with no parallelism: speedup thresholds only mean anything
      // when the sharded writers can actually run on distinct CPUs.
      speedups = StrFormat(
          ",\"shard_speedups\":{\"multi_window\":%.3f,\"single_window\":%.3f,"
          "\"cores\":%u}",
          shard_multi_speedup, shard_single_speedup,
          std::thread::hardware_concurrency());
    }
    std::printf(
        "{\"bench\":\"perf_ninep\",\"workload\":\"%s\",\"serialized\":%s,"
        "\"ops_per_thread\":%d,\"runs\":[%s]%s}\n",
        workload, serialized ? "true" : "false", ops, runs.c_str(),
        speedups.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace help

int main(int argc, char** argv) { return help::Main(argc, argv); }
