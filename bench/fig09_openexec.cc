// Figure 9: Close! on text.c, then Opening exec.c at line 252
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 9", "Close! on text.c, then Opening exec.c at line 252");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 9);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
