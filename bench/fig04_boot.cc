// Figure 4: the screen after booting: tools loaded in the right column
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 4", "the screen after booting: tools loaded in the right column");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 4);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
