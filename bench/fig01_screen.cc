// Figure 1: "A small help screen showing two columns of windows. The current
// selection is the black line in the bottom left window. The directory
// /usr/rob/src/help has been Opened and, from there, the source files
// /usr/rob/src/help/errs.c and file.c."
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 1", "a small help screen mid-session");
  PaperDemo demo(104, 44);
  Help& h = demo.help();

  // The mail window in the top left (the UKUUG note).
  Window* mail = h.CreateWindow("/com/cs.bbk.ac.uk/mick Close!", 0);
  mail->body().text->SetAll(
      "Subject: UNIX in song & verse\n"
      "Rob,\n"
      "The UKUUG are collecting old-time\n"
      "verses about UNIX before they\n"
      "disappear from the minds of those\n");
  mail->Relayout();

  // Open the directory, then errs.c and file.c from it by pointing.
  h.ExecuteText("Open /usr/rob/src/help", nullptr);
  Window* dir = h.WindowForFile("/usr/rob/src/help/");
  Point p = demo.Locate(dir, "errs.c");
  h.MouseClick(p);
  h.ExecuteText("Open", dir);
  p = demo.Locate(dir, "file.c");
  h.MouseClick(p);
  h.ExecuteText("Open", dir);

  // The current selection: a line in the bottom-left window (file.c).
  Window* filec = h.WindowForFile("/usr/rob/src/help/file.c");
  if (filec != nullptr) {
    size_t start = filec->body().text->Utf8().find(" * string routines");
    if (start != std::string::npos) {
      filec->body().sel = {start, start + 18};
      h.SetCurrent(&filec->body());
    }
  }

  PrintScreen(h.Render(/*annotated=*/true));
  std::printf("windows on screen: %zu; button presses used: %d; keystrokes: %d\n",
              h.AllWindows().size(), h.counters().button_presses,
              h.counters().keystrokes);
  std::printf("paper: two columns, tag+body windows, tab towers at the left edge,\n"
              "current selection in reverse video («…»), others outlined (‹…›).\n");
  return 0;
}
