// Claim C-2: minimalism vs a conventional interface. The help column is
// *measured* by driving the real system; the conventional column is the
// gesture-cost model of a click-to-type window system with pop-up menus and
// a typing shell (src/baseline). The shape that must hold: help wins every
// task, mostly by eliminating keystrokes ("no retyping").
#include "bench/figutil.h"
#include "src/baseline/baseline.h"

using namespace help;

namespace {

struct Row {
  const char* task;
  int help_presses;
  int help_keys;
  int conv_presses;
  int conv_keys;
};

void PrintRow(const Row& r) {
  std::printf("%-34s %8d %8d   %8d %8d\n", r.task, r.help_presses, r.help_keys,
              r.conv_presses, r.conv_keys);
}

}  // namespace

int main() {
  PrintHeader("Claims: baseline comparison",
              "same tasks under help (measured) vs a conventional UI (modeled)");
  std::printf("%-34s %8s %8s   %8s %8s\n", "task", "help/prs", "help/key", "conv/prs",
              "conv/key");

  std::vector<Row> rows;

  // Task 1: open a file whose name is on screen (dat.h from help.c).
  {
    PaperDemo demo;
    Help& h = demo.help();
    h.ExecuteText("Open /usr/rob/src/help/help.c", nullptr);
    h.ResetCounters();
    Window* helpc = h.WindowForFile("/usr/rob/src/help/help.c");
    Point p = demo.Locate(helpc, "dat.h");
    h.MouseClick(p);
    h.MouseExecWord(demo.Locate(demo.FindWindowTagged("/help/edit/stf"), "Open"));
    ConventionalUI conv;
    conv.OpenVisibleFile("/usr/rob/src/help/dat.h");
    rows.push_back({"open file named on screen", h.counters().button_presses,
                    h.counters().keystrokes, conv.cost().button_presses,
                    conv.cost().keystrokes});
  }

  // Task 2: cut a selection.
  {
    PaperDemo demo;
    Help& h = demo.help();
    h.ExecuteText("Open /usr/rob/lib/profile", nullptr);
    Window* w = h.WindowForFile("/usr/rob/lib/profile");
    h.ResetCounters();
    Rect r = w->rect();
    h.MouseSelect({r.x0 + 1, r.y0 + 1}, {r.x0 + 11, r.y0 + 1});
    h.ChordCut();  // B1 still down + B2
    ConventionalUI conv;
    conv.SelectText("a line");
    conv.CutSelection();
    rows.push_back({"select + cut", h.counters().button_presses,
                    h.counters().keystrokes, conv.cost().button_presses,
                    conv.cost().keystrokes});
  }

  // Task 3: stack trace of the broken process.
  {
    PaperDemo demo;
    demo.Fig04_Boot();
    demo.Fig05_Headers();
    demo.Fig06_Messages();
    Help& h = demo.help();
    h.ResetCounters();
    demo.Fig07_Stack();
    ConventionalUI conv;
    conv.DebuggerStack(176153, "/usr/rob/src/help/help");
    rows.push_back({"stack trace of broken process", h.counters().button_presses,
                    h.counters().keystrokes, conv.cost().button_presses,
                    conv.cost().keystrokes});
  }

  // Task 4: find uses of a variable.
  {
    PaperDemo demo;
    demo.Fig04_Boot();
    Help& h = demo.help();
    h.ExecuteText("Open /usr/rob/src/help/exec.c:252", nullptr);
    h.ResetCounters();
    Window* execc = h.WindowForFile("/usr/rob/src/help/exec.c");
    Point p = demo.Locate(execc, "(uchar*)n");
    h.MouseClick({p.x + 8, p.y});
    Point u = demo.Locate(demo.FindWindowTagged("/help/cbr/stf"), "uses *.c");
    h.MouseExec(u, {u.x + 8, u.y});
    ConventionalUI conv;
    conv.GrepUses("n", "/usr/rob/src/help/*.c");
    rows.push_back({"find uses of a variable", h.counters().button_presses,
                    h.counters().keystrokes, conv.cost().button_presses,
                    conv.cost().keystrokes});
  }

  // Task 5: save and rebuild.
  {
    PaperDemo demo;
    demo.RunAll();
    // take the measured fig12 step (Cut, Put!, mk)
    const auto& st = demo.stats()[8];
    ConventionalUI conv;
    conv.CutSelection();
    conv.SaveFile();
    conv.Rebuild("mk");
    rows.push_back({"fix + save + rebuild", st.presses, st.keystrokes,
                    conv.cost().button_presses, conv.cost().keystrokes});
  }

  // Task 6: read a particular mail message.
  {
    PaperDemo demo;
    demo.Fig04_Boot();
    demo.Fig05_Headers();
    Help& h = demo.help();
    h.ResetCounters();
    demo.Fig06_Messages();
    ConventionalUI conv;
    conv.ReadMail(2);
    rows.push_back({"read one mail message", h.counters().button_presses,
                    h.counters().keystrokes, conv.cost().button_presses,
                    conv.cost().keystrokes});
  }

  int hp = 0;
  int hk = 0;
  int cp = 0;
  int ck = 0;
  for (const Row& r : rows) {
    PrintRow(r);
    hp += r.help_presses;
    hk += r.help_keys;
    cp += r.conv_presses;
    ck += r.conv_keys;
  }
  std::printf("%-34s %8d %8d   %8d %8d\n", "TOTAL", hp, hk, cp, ck);
  std::printf("\nshape check: help eliminates %d keystrokes entirely (%d -> %d) at a\n"
              "cost of %d extra button presses (%d -> %d); total gestures %d vs %d.\n",
              ck - hk, ck, hk, hp - cp, cp, hp, hp + hk, cp + ck);
  std::printf("%s\n", (hk == 0 && hp + hk < cp + ck)
                          ? "MATCH: help needs no typing and fewer gestures overall"
                          : "MISMATCH");
  return 0;
}
