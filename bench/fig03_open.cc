// Figure 3: "Opening files. After typing the full path name of help.c, the
// selection is automatically the null string at the end of the file name, so
// just click Open to open that file: the defaults grab the whole name. Next,
// after pointing into dat.h, Open will get /usr/rob/src/help/dat.h."
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 3", "opening files: typed path vs pointing");
  PaperDemo demo(104, 44);
  Help& h = demo.help();

  // Type the full path into a scratch window, then click Open: the null
  // selection at the end of the name expands to the whole file name.
  Window* scratch = h.CreateWindow("scratch Close!");
  h.SetCurrent(&scratch->body());
  h.Type("/usr/rob/src/help/help.c");
  Window* edit = demo.FindWindowTagged("/help/edit/stf");
  h.MouseExecWord(demo.Locate(edit, "Open"));
  int typed_presses = h.counters().button_presses;
  int typed_keys = h.counters().keystrokes;
  std::printf("typed route: %d keystrokes + %d button press(es)\n", typed_keys,
              typed_presses);

  // Now the other way: point into "dat.h" inside the help.c window and Open.
  // The directory comes from the tag (the rule of automation).
  Window* helpc = h.WindowForFile("/usr/rob/src/help/help.c");
  Point p = demo.Locate(helpc, "dat.h");
  h.MouseClick({p.x + 2, p.y});  // anywhere in the name will do
  h.MouseExecWord(demo.Locate(edit, "Open"));
  int point_presses = h.counters().button_presses - typed_presses;
  int point_keys = h.counters().keystrokes - typed_keys;
  std::printf("pointing route: %d keystrokes + %d button presses (\"two button "
              "clicks\")\n",
              point_keys, point_presses);

  PrintScreen(h.Render(true));
  std::printf("dat.h window open: %s\n",
              h.WindowForFile("/usr/rob/src/help/dat.h") != nullptr ? "yes" : "NO");
  return 0;
}
