// Shared scaffolding for the figure benches: each binary regenerates one of
// the paper's figures by driving the real system and printing the rendered
// screen plus the gestures it cost.
#ifndef BENCH_FIGUTIL_H_
#define BENCH_FIGUTIL_H_

#include <cstdio>
#include <string>

#include "src/tools/demo.h"

namespace help {

inline void PrintHeader(const char* id, const char* caption) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, caption);
  std::printf("================================================================\n");
}

inline void PrintScreen(const std::string& screen) {
  std::printf("%s", screen.c_str());
  std::printf("----------------------------------------------------------------\n");
}

inline void PrintStats(const PaperDemo& demo) {
  for (const auto& st : demo.stats()) {
    std::printf("  %-44s  %d button presses, %d keystrokes\n", st.name.c_str(),
                st.presses, st.keystrokes);
  }
}

// Runs the walkthrough up to (and including) step `n` (5..12); returns the
// screen after step n.
inline std::string RunThrough(PaperDemo& demo, int n) {
  std::string screen = demo.Fig04_Boot();
  if (n >= 5) screen = demo.Fig05_Headers();
  if (n >= 6) screen = demo.Fig06_Messages();
  if (n >= 7) screen = demo.Fig07_Stack();
  if (n >= 8) screen = demo.Fig08_OpenTextC();
  if (n >= 9) screen = demo.Fig09_CloseAndOpenExecC();
  if (n >= 10) screen = demo.Fig10_Uses();
  if (n >= 11) screen = demo.Fig11_OpenHelpCAndExec213();
  if (n >= 12) screen = demo.Fig12_CutPutMk();
  return screen;
}

}  // namespace help

#endif  // BENCH_FIGUTIL_H_
