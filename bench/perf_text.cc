// P-1: text-substrate performance — gap buffer edits, line bookkeeping, undo,
// and the 1M-line before/after comparison for the incremental line index.
//
// Passing --json (before any --benchmark_* flags are parsed out) appends one
// JSON object as the last line of stdout — the machine-readable contract the
// BENCH_* trajectory files and the CI bench-smoke artifact consume.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/text/address.h"
#include "src/text/gapbuffer.h"
#include "src/text/text.h"

namespace help {
namespace {

void BM_GapBufferAppend(benchmark::State& state) {
  for (auto _ : state) {
    GapBuffer g;
    for (int i = 0; i < state.range(0); i++) {
      g.Insert(g.size(), U"x");
    }
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GapBufferAppend)->Range(256, 16384);

void BM_GapBufferInsertAtPoint(benchmark::State& state) {
  // The editor's hot path: repeated inserts at the same spot (typing).
  GapBuffer g(RuneString(static_cast<size_t>(state.range(0)), 'a'));
  size_t point = static_cast<size_t>(state.range(0)) / 2;
  for (auto _ : state) {
    g.Insert(point, U"t");
    point++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GapBufferInsertAtPoint)->Range(1024, 65536);

void BM_GapBufferScatterInsert(benchmark::State& state) {
  // Worst case: alternating far-apart inserts force gap moves.
  GapBuffer g(RuneString(static_cast<size_t>(state.range(0)), 'a'));
  bool front = true;
  for (auto _ : state) {
    g.Insert(front ? 0 : g.size(), U"t");
    front = !front;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GapBufferScatterInsert)->Range(1024, 65536);

std::string MakeLines(int n) {
  std::string s;
  for (int i = 0; i < n; i++) {
    s += "a line of source text, about like this one here\n";
  }
  return s;
}

void BM_TextLineStart(benchmark::State& state) {
  Text t(MakeLines(static_cast<int>(state.range(0))));
  size_t line = static_cast<size_t>(state.range(0)) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.LineStart(line));
  }
}
BENCHMARK(BM_TextLineStart)->Range(64, 4096);

// --- 1M-line document: indexed queries vs the pre-index scan -----------------
//
// The *_Scan benchmarks preserve the pre-LineIndex implementation verbatim
// (an O(n) rune walk per query); the *_Indexed ones go through Text's line
// index. Running the binary prints both, so the before/after ratio for the
// production-scale case is always visible in the same report.

constexpr int kBigLines = 1'000'000;

std::string MakeShortLines(int n) {
  std::string s;
  s.reserve(static_cast<size_t>(n) * 10);
  for (int i = 0; i < n; i++) {
    s += "line text\n";
  }
  return s;
}

const Text& BigText() {
  static const Text* t = new Text(MakeShortLines(kBigLines));
  return *t;
}

// Pre-index implementations (what Text::LineAt / Text::LineStart used to do).
size_t ScanLineAt(const Text& t, size_t pos) {
  size_t sz = t.size();
  pos = std::min(pos, sz);
  size_t line = 1;
  for (size_t i = 0; i < pos; i++) {
    if (t.At(i) == '\n') {
      line++;
    }
  }
  return line;
}

size_t ScanLineStart(const Text& t, size_t line) {
  if (line <= 1) {
    return 0;
  }
  size_t sz = t.size();
  size_t cur = 1;
  for (size_t i = 0; i < sz; i++) {
    if (t.At(i) == '\n') {
      cur++;
      if (cur == line) {
        return i + 1;
      }
    }
  }
  size_t i = sz;
  while (i > 0 && t.At(i - 1) != '\n') {
    i--;
  }
  return i;
}

struct Lcg {
  uint32_t state = 12345;
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
};

void BM_BigLineAtRandom_Scan(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanLineAt(t, rng.Next() % t.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigLineAtRandom_Scan);

void BM_BigLineAtRandom_Indexed(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.LineAt(rng.Next() % t.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigLineAtRandom_Indexed);

void BM_BigLineStartRandom_Scan(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanLineStart(t, 1 + rng.Next() % kBigLines));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigLineStartRandom_Scan);

void BM_BigLineStartRandom_Indexed(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.LineStart(1 + rng.Next() % kBigLines));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigLineStartRandom_Indexed);

// `name:line` address resolution on the big body (the Open errs.c:27 path).
void BM_BigAddressResolve(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  for (auto _ : state) {
    std::string addr = std::to_string(1 + rng.Next() % kBigLines);
    auto s = EvalAddress(t, addr);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigAddressResolve);

// Appending to a 1M-line body (the Errors-window / bodyapp path): the index
// must keep per-append cost independent of document size.
void BM_BigAppendLine(benchmark::State& state) {
  static Text* t = new Text(MakeShortLines(kBigLines));
  for (auto _ : state) {
    t->InsertNoUndo(t->size(), U"appended error line\n");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigAppendLine);

// The 9P body-read window: indexed byte-range read vs encode-everything.
void BM_BigBodyReadWindow_Scan(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  for (auto _ : state) {
    std::string all = t.Utf8();
    benchmark::DoNotOptimize(all.substr(rng.Next() % all.size(), 8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigBodyReadWindow_Scan);

void BM_BigBodyReadWindow_Indexed(benchmark::State& state) {
  const Text& t = BigText();
  Lcg rng;
  uint64_t total = t.Utf8Bytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Utf8Substr(rng.Next() % total, 8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BigBodyReadWindow_Indexed);

void BM_TextUndoRedoCycle(benchmark::State& state) {
  Text t(MakeLines(100));
  for (auto _ : state) {
    t.BeginChange();
    t.Insert(0, U"edit ");
    t.Undo(nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextUndoRedoCycle);

void BM_TextExpandFilename(benchmark::State& state) {
  Text t("see /usr/rob/src/help/exec.c:213 for the bug\n");
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.ExpandFilename(10));
  }
}
BENCHMARK(BM_TextExpandFilename);

// Console output as usual, plus a collected (name, per-iteration time,
// items/sec) record per run for the trailing JSON line.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time;  // adjusted per-iteration, in the run's time unit
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      Entry e;
      e.name = run.benchmark_name();
      e.real_time = run.GetAdjustedRealTime();
      auto it = run.counters.find("items_per_second");
      e.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace
}  // namespace help

int main(int argc, char** argv) {
  bool json = false;
  // Strip --json before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  help::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json) {
    std::string runs;
    for (const auto& e : reporter.entries()) {
      if (!runs.empty()) {
        runs += ",";
      }
      runs += help::StrFormat(
          "{\"name\":\"%s\",\"real_time\":%.1f,\"items_per_second\":%.1f}",
          e.name.c_str(), e.real_time, e.items_per_second);
    }
    std::printf("{\"bench\":\"perf_text\",\"runs\":[%s]}\n", runs.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
