// P-1: text-substrate performance — gap buffer edits, line bookkeeping, undo.
#include <benchmark/benchmark.h>

#include "src/text/gapbuffer.h"
#include "src/text/text.h"

namespace help {
namespace {

void BM_GapBufferAppend(benchmark::State& state) {
  for (auto _ : state) {
    GapBuffer g;
    for (int i = 0; i < state.range(0); i++) {
      g.Insert(g.size(), U"x");
    }
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GapBufferAppend)->Range(256, 16384);

void BM_GapBufferInsertAtPoint(benchmark::State& state) {
  // The editor's hot path: repeated inserts at the same spot (typing).
  GapBuffer g(RuneString(static_cast<size_t>(state.range(0)), 'a'));
  size_t point = static_cast<size_t>(state.range(0)) / 2;
  for (auto _ : state) {
    g.Insert(point, U"t");
    point++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GapBufferInsertAtPoint)->Range(1024, 65536);

void BM_GapBufferScatterInsert(benchmark::State& state) {
  // Worst case: alternating far-apart inserts force gap moves.
  GapBuffer g(RuneString(static_cast<size_t>(state.range(0)), 'a'));
  bool front = true;
  for (auto _ : state) {
    g.Insert(front ? 0 : g.size(), U"t");
    front = !front;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GapBufferScatterInsert)->Range(1024, 65536);

std::string MakeLines(int n) {
  std::string s;
  for (int i = 0; i < n; i++) {
    s += "a line of source text, about like this one here\n";
  }
  return s;
}

void BM_TextLineStart(benchmark::State& state) {
  Text t(MakeLines(static_cast<int>(state.range(0))));
  size_t line = static_cast<size_t>(state.range(0)) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.LineStart(line));
  }
}
BENCHMARK(BM_TextLineStart)->Range(64, 4096);

void BM_TextUndoRedoCycle(benchmark::State& state) {
  Text t(MakeLines(100));
  for (auto _ : state) {
    t.BeginChange();
    t.Insert(0, U"edit ");
    t.Undo(nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextUndoRedoCycle);

void BM_TextExpandFilename(benchmark::State& state) {
  Text t("see /usr/rob/src/help/exec.c:213 for the bug\n");
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.ExpandFilename(10));
  }
}
BENCHMARK(BM_TextExpandFilename);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
