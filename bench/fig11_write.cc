// Figure 11: the writing of n: help.c:35, then exec.c:213
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 11", "the writing of n: help.c:35, then exec.c:213");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 11);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
