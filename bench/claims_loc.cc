// Claim C-5: "It is also smaller: 4300 lines of C." — an accounting of this
// reproduction's size, broken down by subsystem, with the help-proper core
// (the analogue of the paper's 4300 lines: editor + window system + UI +
// file server, excluding the substrates Plan 9 provided for free) called out.
#include <filesystem>
#include <fstream>

#include "bench/figutil.h"

#ifndef HELP_SOURCE_DIR
#define HELP_SOURCE_DIR "."
#endif

namespace {

long CountLines(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  long lines = 0;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      lines++;
    }
  }
  return lines;
}

}  // namespace

int main() {
  help::PrintHeader("Claims: size accounting", "paper: help was 4300 lines of C");
  std::filesystem::path src = std::filesystem::path(HELP_SOURCE_DIR) / "src";
  if (!std::filesystem::exists(src)) {
    std::printf("source tree not found at %s; run from the repository\n",
                HELP_SOURCE_DIR);
    return 1;
  }
  long core = 0;
  long total = 0;
  static const char* kCore[] = {"core", "wm", "draw"};  // help proper
  std::printf("%-12s %8s  %s\n", "subsystem", "lines", "role");
  struct RowInfo {
    const char* name;
    const char* role;
  };
  for (const RowInfo& row : std::initializer_list<RowInfo>{
           {"core", "help itself: UI semantics + /mnt/help file server"},
           {"wm", "help itself: columns, windows, placement"},
           {"draw", "help itself: frames and the cell screen"},
           {"text", "substrate: buffers, undo, addresses (libframe-era C had this)"},
           {"regexp", "substrate: Plan 9 libregexp equivalent"},
           {"fs", "substrate: the Plan 9 kernel namespace + 9P"},
           {"shell", "substrate: rc + userland + mk"},
           {"cc", "substrate: rcc, the code-generator-less compiler"},
           {"proc", "substrate: processes + adb"},
           {"tools", "the /help tool suites + paper corpus + demo driver"},
           {"base", "runes, strings, status"},
           {"baseline", "the conventional-UI comparison model"}}) {
    long n = CountLines(src / row.name);
    total += n;
    for (const char* c : kCore) {
      if (std::string(c) == row.name) {
        core += n;
      }
    }
    std::printf("%-12s %8ld  %s\n", row.name, n, row.role);
  }
  std::printf("%-12s %8ld\n", "TOTAL src/", total);
  std::printf("\nhelp proper (core+wm+draw): %ld lines of C++ vs the paper's 4300 of C\n",
              core);
  std::printf("the rest reimplements what Plan 9 gave the original for free.\n");
  return 0;
}
