// P-3: observability cost — what the tracing subsystem charges the hot paths.
//
// Three groups:
//   1. Primitive costs: a Span / instant / counter with tracing disabled
//      (the price every instrumented call site pays, always) and enabled
//      (the price of actually capturing).
//   2. The perf_text hot path (big-document appends, the BM_BigAppendLine
//      shape) with tracing off vs on — the acceptance gate is that the
//      *off* variant stays within 3% of the uninstrumented baseline, which
//      is visible by comparing BM_TextAppend_TracingOff here against
//      BM_BigAppendLine in perf_text on the same machine.
//   3. The perf_ninep hot path (full byte path: walk/open/read/clunk over
//      the wire) off vs on.
//
//   4. The socket read path (a real NinepListener + unix socket, the PR 8
//      request-tracing instrumentation live on every frame) off vs on — the
//      acceptance gate is TracingOn within 5% of TracingOff.
//
// Run: ./build/bench/perf_obs  — compare *_TracingOff vs *_TracingOn rows.
// Passing --json appends one machine-readable line with every run, for the
// CI bench-smoke artifact.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/ninep.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"
#include "src/obs/trace.h"
#include "src/text/text.h"

namespace help {
namespace {

using obs::EventKind;
using obs::Registry;
using obs::Tracer;

// --- 1. Primitive costs ------------------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  Tracer::Global().Disable();
  for (auto _ : state) {
    OBS_SPAN("perfobs.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  Tracer::Global().Enable();
  for (auto _ : state) {
    OBS_SPAN("perfobs.span");
    benchmark::ClobberMemory();
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

void BM_InstantDisabled(benchmark::State& state) {
  Tracer::Global().Disable();
  for (auto _ : state) {
    OBS_INSTANT("perfobs.instant", 1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstantDisabled);

void BM_InstantEnabled(benchmark::State& state) {
  Tracer::Global().Enable();
  for (auto _ : state) {
    OBS_INSTANT("perfobs.instant", 1);
    benchmark::ClobberMemory();
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstantEnabled);

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    OBS_COUNT("perfobs.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram* h = Registry::Global().GetHistogram("perfobs.hist");
  uint64_t v = 0;
  for (auto _ : state) {
    h->Record(v++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// --- 2. The text hot path, off vs on -----------------------------------------

std::string MakeShortLines(int n) {
  std::string s;
  s.reserve(static_cast<size_t>(n) * 10);
  for (int i = 0; i < n; i++) {
    s += "line text\n";
  }
  return s;
}

constexpr int kBigLines = 1'000'000;

// Same shape as perf_text's BM_BigAppendLine: appends to a 1M-line document
// through Text::InsertNoUndo — the instrumented DoInsert funnel.
void BM_TextAppend_TracingOff(benchmark::State& state) {
  Tracer::Global().Disable();
  static Text* t = new Text(MakeShortLines(kBigLines));
  for (auto _ : state) {
    t->InsertNoUndo(t->size(), U"appended error line\n");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextAppend_TracingOff);

void BM_TextAppend_TracingOn(benchmark::State& state) {
  Tracer::Global().Enable();
  static Text* t = new Text(MakeShortLines(kBigLines));
  for (auto _ : state) {
    t->InsertNoUndo(t->size(), U"appended error line\n");
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextAppend_TracingOn);

// --- 3. The 9P byte path, off vs on ------------------------------------------

// One full wire round: walk + open + read + clunk of /mnt/help/index, through
// decode/dispatch/encode with all their spans.
void NinepRound(NinepClient& client) {
  auto r = client.ReadFile("/mnt/help/index");
  benchmark::DoNotOptimize(r.ok());
}

void BM_NinepReadFile_TracingOff(benchmark::State& state) {
  Tracer::Global().Disable();
  Help h(Help::Options{.install_userland = false});
  NinepServer::SessionId sid = h.ninep().OpenSession();
  NinepClient client(h.ninep().TransportFor(sid));
  if (!client.Connect("perf").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    NinepRound(client);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NinepReadFile_TracingOff);

void BM_NinepReadFile_TracingOn(benchmark::State& state) {
  Help h(Help::Options{.install_userland = false});
  NinepServer::SessionId sid = h.ninep().OpenSession();
  NinepClient client(h.ninep().TransportFor(sid));
  if (!client.Connect("perf").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Tracer::Global().Enable();
  for (auto _ : state) {
    NinepRound(client);
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NinepReadFile_TracingOn);

// --- 4. The socket read path, off vs on --------------------------------------

// The same wire round through a real listener: frame reassembly, the inbox
// hop to a worker, dispatch, and the outbox flush — i.e. every point where
// PR 8 stamps a request id and measures a phase. TracingOn must stay within
// 5% of TracingOff (the per-frame cost with capture off is a few relaxed
// loads; with capture on, a handful of ring writes per request).
void SocketRound(benchmark::State& state, bool tracing) {
  Help h(Help::Options{.install_userland = false});
  NinepListener lis(&h.ninep());
  std::string path = StrFormat("perf_obs.%d.sock", getpid());
  if (!lis.ListenUnix(path).ok() || !lis.Start().ok()) {
    state.SkipWithError("listen failed");
    return;
  }
  auto tr = SocketTransport::ConnectUnix(path);
  if (!tr.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  NinepClient client(tr.value()->AsTransport());
  if (!client.Connect("perf").ok()) {
    state.SkipWithError("handshake failed");
    return;
  }
  if (tracing) {
    Tracer::Global().Enable();
  }
  for (auto _ : state) {
    NinepRound(client);
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
  lis.Stop();
  ::unlink(path.c_str());
}

void BM_SocketReadFile_TracingOff(benchmark::State& state) {
  SocketRound(state, /*tracing=*/false);
}
BENCHMARK(BM_SocketReadFile_TracingOff);

void BM_SocketReadFile_TracingOn(benchmark::State& state) {
  SocketRound(state, /*tracing=*/true);
}
BENCHMARK(BM_SocketReadFile_TracingOn);

// Console output as usual, plus a collected (name, per-iteration time,
// items/sec) record per run for the trailing JSON line (same shape as
// perf_text's).
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time;
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      Entry e;
      e.name = run.benchmark_name();
      e.real_time = run.GetAdjustedRealTime();
      auto it = run.counters.find("items_per_second");
      e.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace
}  // namespace help

int main(int argc, char** argv) {
  bool json = false;
  // Strip --json before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  help::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json) {
    std::string runs;
    for (const auto& e : reporter.entries()) {
      if (!runs.empty()) {
        runs += ",";
      }
      runs += help::StrFormat(
          "{\"name\":\"%s\",\"real_time\":%.1f,\"items_per_second\":%.1f}",
          e.name.c_str(), e.real_time, e.items_per_second);
    }
    std::printf("{\"bench\":\"perf_obs\",\"runs\":[%s]}\n", runs.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
