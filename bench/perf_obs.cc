// P-3: observability cost — what the tracing subsystem charges the hot paths.
//
// Three groups:
//   1. Primitive costs: a Span / instant / counter with tracing disabled
//      (the price every instrumented call site pays, always) and enabled
//      (the price of actually capturing).
//   2. The perf_text hot path (big-document appends, the BM_BigAppendLine
//      shape) with tracing off vs on — the acceptance gate is that the
//      *off* variant stays within 3% of the uninstrumented baseline, which
//      is visible by comparing BM_TextAppend_TracingOff here against
//      BM_BigAppendLine in perf_text on the same machine.
//   3. The perf_ninep hot path (full byte path: walk/open/read/clunk over
//      the wire) off vs on.
//
// Run: ./build/bench/perf_obs  — compare *_TracingOff vs *_TracingOn rows.
#include <benchmark/benchmark.h>

#include <string>

#include "src/core/help.h"
#include "src/fs/ninep.h"
#include "src/fs/server.h"
#include "src/obs/trace.h"
#include "src/text/text.h"

namespace help {
namespace {

using obs::EventKind;
using obs::Registry;
using obs::Tracer;

// --- 1. Primitive costs ------------------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  Tracer::Global().Disable();
  for (auto _ : state) {
    OBS_SPAN("perfobs.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  Tracer::Global().Enable();
  for (auto _ : state) {
    OBS_SPAN("perfobs.span");
    benchmark::ClobberMemory();
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

void BM_InstantDisabled(benchmark::State& state) {
  Tracer::Global().Disable();
  for (auto _ : state) {
    OBS_INSTANT("perfobs.instant", 1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstantDisabled);

void BM_InstantEnabled(benchmark::State& state) {
  Tracer::Global().Enable();
  for (auto _ : state) {
    OBS_INSTANT("perfobs.instant", 1);
    benchmark::ClobberMemory();
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstantEnabled);

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    OBS_COUNT("perfobs.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram* h = Registry::Global().GetHistogram("perfobs.hist");
  uint64_t v = 0;
  for (auto _ : state) {
    h->Record(v++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// --- 2. The text hot path, off vs on -----------------------------------------

std::string MakeShortLines(int n) {
  std::string s;
  s.reserve(static_cast<size_t>(n) * 10);
  for (int i = 0; i < n; i++) {
    s += "line text\n";
  }
  return s;
}

constexpr int kBigLines = 1'000'000;

// Same shape as perf_text's BM_BigAppendLine: appends to a 1M-line document
// through Text::InsertNoUndo — the instrumented DoInsert funnel.
void BM_TextAppend_TracingOff(benchmark::State& state) {
  Tracer::Global().Disable();
  static Text* t = new Text(MakeShortLines(kBigLines));
  for (auto _ : state) {
    t->InsertNoUndo(t->size(), U"appended error line\n");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextAppend_TracingOff);

void BM_TextAppend_TracingOn(benchmark::State& state) {
  Tracer::Global().Enable();
  static Text* t = new Text(MakeShortLines(kBigLines));
  for (auto _ : state) {
    t->InsertNoUndo(t->size(), U"appended error line\n");
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextAppend_TracingOn);

// --- 3. The 9P byte path, off vs on ------------------------------------------

// One full wire round: walk + open + read + clunk of /mnt/help/index, through
// decode/dispatch/encode with all their spans.
void NinepRound(NinepClient& client) {
  auto r = client.ReadFile("/mnt/help/index");
  benchmark::DoNotOptimize(r.ok());
}

void BM_NinepReadFile_TracingOff(benchmark::State& state) {
  Tracer::Global().Disable();
  Help h(Help::Options{.install_userland = false});
  NinepServer::SessionId sid = h.ninep().OpenSession();
  NinepClient client(h.ninep().TransportFor(sid));
  if (!client.Connect("perf").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    NinepRound(client);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NinepReadFile_TracingOff);

void BM_NinepReadFile_TracingOn(benchmark::State& state) {
  Help h(Help::Options{.install_userland = false});
  NinepServer::SessionId sid = h.ninep().OpenSession();
  NinepClient client(h.ninep().TransportFor(sid));
  if (!client.Connect("perf").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Tracer::Global().Enable();
  for (auto _ : state) {
    NinepRound(client);
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NinepReadFile_TracingOn);

}  // namespace
}  // namespace help

BENCHMARK_MAIN();
