// Claim C-4: "If instead I had run the regular Unix command
//     grep n /usr/rob/src/help/*.c
// I would have had to wade through every occurrence of the letter n in the
// program." The C browser resolves scope; grep matches letters.
#include "bench/figutil.h"
#include "src/base/strings.h"

using namespace help;

int main() {
  PrintHeader("Claims: uses vs grep", "language-aware browsing vs textual search");
  PaperDemo demo;
  demo.Fig04_Boot();
  Help& h = demo.help();

  // The language-aware answer.
  h.ExecuteText("Open /usr/rob/src/help/exec.c:252", nullptr);
  Window* execc = h.WindowForFile("/usr/rob/src/help/exec.c");
  Point p = demo.Locate(execc, "(uchar*)n");
  h.MouseClick({p.x + 8, p.y});
  Point u = demo.Locate(demo.FindWindowTagged("/help/cbr/stf"), "uses *.c");
  h.MouseExec(u, {u.x + 8, u.y});
  Window* out = demo.FindWindowTagged(" uses Close!");
  std::string uses_out = out != nullptr ? out->body().text->Utf8() : "";
  int uses_lines = 0;
  for (char c : uses_out) {
    if (c == '\n') {
      uses_lines++;
    }
  }
  std::printf("uses n  (the C browser):\n%s", uses_out.c_str());

  // The paper's counter-example, run through the same shell.
  std::string grep_out;
  std::string err;
  Io io;
  io.out = &grep_out;
  io.err = &err;
  Env env;
  h.shell().Run("grep -c n /usr/rob/src/help/*.c | grep -v :0", &env, "/", {}, io);
  std::printf("\ngrep -c n *.c (lines containing the letter n, per file):\n%s",
              grep_out.c_str());
  std::string total_out;
  Io io2;
  io2.out = &total_out;
  io2.err = &err;
  h.shell().Run("grep n /usr/rob/src/help/*.c | wc -l", &env, "/", {}, io2);
  int grep_lines = static_cast<int>(ParseInt(TrimSpace(total_out)));

  std::printf("\nresults: uses reports %d true references; grep reports %d lines\n",
              uses_lines, grep_lines);
  std::printf("noise factor: %.1fx  -> %s\n",
              uses_lines > 0 ? static_cast<double>(grep_lines) / uses_lines : 0.0,
              grep_lines > 5 * uses_lines
                  ? "MATCH (grep output is an order of magnitude noisier)"
                  : "MISMATCH");
  std::printf("and every one of the %d uses lines is scope-correct: the locals named\n"
              "n in textinsert, errs and findopen1 are correctly excluded.\n",
              uses_lines);
  return 0;
}
