// Claim C-6 / ablation: "I believe the heuristic for placing windows is good
// enough because I don't notice it." We quantify: run randomized sessions of
// window creations and removals under (a) the paper's three-rule heuristic
// and (b) a naive always-bottom-quarter placement, and compare how much of
// the screen stays useful.
//
// Metrics after every operation, averaged:
//   tag-visible   fraction of windows whose tag is on screen (the paper's
//                 own goal: "help attempts to make at least the tag visible")
//   text-rows     body rows of real text on screen
//   hidden        windows covered completely
#include <cstdio>
#include <memory>
#include <vector>

#include "src/wm/wm.h"

using namespace help;

namespace {

struct Metrics {
  double tag_visible = 0;
  double text_rows = 0;
  double hidden = 0;
  long samples = 0;
};

void Sample(const Column& col, size_t nwindows, Metrics* m) {
  if (nwindows == 0) {
    return;
  }
  int visible = 0;
  int hidden = 0;
  int rows = 0;
  for (const Window* w : col.windows()) {
    if (w->hidden()) {
      hidden++;
      continue;
    }
    visible++;
    rows += w->UsedBottom() - w->rect().y0 - 1;
  }
  m->tag_visible += static_cast<double>(visible) / static_cast<double>(nwindows);
  m->text_rows += rows;
  m->hidden += hidden;
  m->samples++;
}

// The naive ablation: every new window takes the bottom quarter, full stop.
void NaivePlace(Column* col, Window* w) {
  Rect content = col->ContentRect();
  int h = std::max(4, content.height() / 4);
  int y0 = std::max(content.y0, content.y1 - h);
  for (Window* v : col->windows()) {
    if (v == w || v->hidden()) {
      continue;
    }
    if (v->rect().y0 >= y0) {
      v->Hide();
    } else if (v->rect().y1 > y0) {
      v->SetRect({content.x0, v->rect().y0, content.x1, y0});
    }
  }
  // Column::AddAt performs drop-style placement; emulate raw assignment.
  col->AddAt(w, y0);
}

Metrics RunSession(bool paper_heuristic, uint32_t seed, int ops) {
  Column col;
  col.SetRect({0, 1, 60, 50});
  std::vector<std::unique_ptr<Window>> owned;
  Metrics m;
  auto next = [&seed] {
    seed = seed * 1664525 + 1013904223;
    return seed >> 8;
  };
  int id = 1;
  for (int i = 0; i < ops; i++) {
    bool create = owned.empty() || next() % 4 != 0;  // 3:1 create:remove
    if (create) {
      int body_lines = 2 + static_cast<int>(next() % 30);
      std::string content;
      for (int k = 0; k < body_lines; k++) {
        content += "line of text number " + std::to_string(k) + "\n";
      }
      auto w = std::make_unique<Window>(id++, std::make_shared<Text>("tag Close!"),
                                        std::make_shared<Text>(content));
      if (paper_heuristic) {
        col.Place(w.get());
      } else {
        NaivePlace(&col, w.get());
      }
      owned.push_back(std::move(w));
    } else {
      size_t victim = next() % owned.size();
      col.Remove(owned[victim].get());
      owned.erase(owned.begin() + static_cast<long>(victim));
    }
    Sample(col, owned.size(), &m);
  }
  return m;
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("Ablation: the paper's placement heuristic vs naive bottom-quarter\n");
  std::printf("================================================================\n");
  constexpr int kOps = 200;
  constexpr int kSeeds = 20;
  Metrics paper;
  Metrics naive;
  for (int s = 1; s <= kSeeds; s++) {
    Metrics a = RunSession(true, static_cast<uint32_t>(s) * 977u, kOps);
    Metrics b = RunSession(false, static_cast<uint32_t>(s) * 977u, kOps);
    paper.tag_visible += a.tag_visible;
    paper.text_rows += a.text_rows;
    paper.hidden += a.hidden;
    paper.samples += a.samples;
    naive.tag_visible += b.tag_visible;
    naive.text_rows += b.text_rows;
    naive.hidden += b.hidden;
    naive.samples += b.samples;
  }
  auto avg = [](double v, long n) { return n > 0 ? v / static_cast<double>(n) : 0.0; };
  std::printf("%-26s %14s %14s\n", "metric (avg per op)", "paper rules", "naive");
  std::printf("%-26s %14.3f %14.3f\n", "tag-visible fraction",
              avg(paper.tag_visible, paper.samples), avg(naive.tag_visible, naive.samples));
  std::printf("%-26s %14.1f %14.1f\n", "text rows on screen",
              avg(paper.text_rows, paper.samples), avg(naive.text_rows, naive.samples));
  std::printf("%-26s %14.2f %14.2f\n", "windows fully hidden",
              avg(paper.hidden, paper.samples), avg(naive.hidden, naive.samples));
  bool match = avg(paper.tag_visible, paper.samples) > avg(naive.tag_visible, naive.samples) &&
               avg(paper.text_rows, paper.samples) > avg(naive.text_rows, naive.samples);
  std::printf("\n%s: the three-rule heuristic keeps more tags and more text visible\n",
              match ? "MATCH" : "MISMATCH");
  return match ? 0 : 1;
}
