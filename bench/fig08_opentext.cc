// Figure 8: after Opening text.c at line 32
#include "bench/figutil.h"

using namespace help;

int main() {
  PrintHeader("Figure 8", "after Opening text.c at line 32");
  PaperDemo demo;
  std::string screen = RunThrough(demo, 8);
  PrintScreen(screen);
  PrintStats(demo);
  std::printf("total: %d button presses, %d keystrokes\n",
              demo.help().counters().button_presses,
              demo.help().counters().keystrokes);
  return 0;
}
