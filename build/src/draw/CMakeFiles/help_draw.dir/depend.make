# Empty dependencies file for help_draw.
# This may be replaced when dependencies are built.
