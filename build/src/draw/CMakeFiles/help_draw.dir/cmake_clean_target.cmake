file(REMOVE_RECURSE
  "libhelp_draw.a"
)
