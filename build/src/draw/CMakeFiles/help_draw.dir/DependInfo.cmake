
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/draw/frame.cc" "src/draw/CMakeFiles/help_draw.dir/frame.cc.o" "gcc" "src/draw/CMakeFiles/help_draw.dir/frame.cc.o.d"
  "/root/repo/src/draw/screen.cc" "src/draw/CMakeFiles/help_draw.dir/screen.cc.o" "gcc" "src/draw/CMakeFiles/help_draw.dir/screen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/help_base.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/help_text.dir/DependInfo.cmake"
  "/root/repo/build/src/regexp/CMakeFiles/help_regexp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
