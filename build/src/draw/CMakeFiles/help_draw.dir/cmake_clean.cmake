file(REMOVE_RECURSE
  "CMakeFiles/help_draw.dir/frame.cc.o"
  "CMakeFiles/help_draw.dir/frame.cc.o.d"
  "CMakeFiles/help_draw.dir/screen.cc.o"
  "CMakeFiles/help_draw.dir/screen.cc.o.d"
  "libhelp_draw.a"
  "libhelp_draw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
