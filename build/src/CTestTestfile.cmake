# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("regexp")
subdirs("text")
subdirs("fs")
subdirs("proc")
subdirs("shell")
subdirs("cc")
subdirs("draw")
subdirs("wm")
subdirs("core")
subdirs("tools")
subdirs("baseline")
