file(REMOVE_RECURSE
  "CMakeFiles/help_proc.dir/env.cc.o"
  "CMakeFiles/help_proc.dir/env.cc.o.d"
  "CMakeFiles/help_proc.dir/proc.cc.o"
  "CMakeFiles/help_proc.dir/proc.cc.o.d"
  "libhelp_proc.a"
  "libhelp_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
