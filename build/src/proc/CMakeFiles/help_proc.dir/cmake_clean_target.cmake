file(REMOVE_RECURSE
  "libhelp_proc.a"
)
