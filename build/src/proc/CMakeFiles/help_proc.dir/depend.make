# Empty dependencies file for help_proc.
# This may be replaced when dependencies are built.
