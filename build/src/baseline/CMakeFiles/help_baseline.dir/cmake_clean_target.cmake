file(REMOVE_RECURSE
  "libhelp_baseline.a"
)
