# Empty compiler generated dependencies file for help_baseline.
# This may be replaced when dependencies are built.
