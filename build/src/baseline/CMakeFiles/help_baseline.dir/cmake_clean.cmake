file(REMOVE_RECURSE
  "CMakeFiles/help_baseline.dir/baseline.cc.o"
  "CMakeFiles/help_baseline.dir/baseline.cc.o.d"
  "libhelp_baseline.a"
  "libhelp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
