file(REMOVE_RECURSE
  "libhelp_regexp.a"
)
