file(REMOVE_RECURSE
  "CMakeFiles/help_regexp.dir/regexp.cc.o"
  "CMakeFiles/help_regexp.dir/regexp.cc.o.d"
  "libhelp_regexp.a"
  "libhelp_regexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_regexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
