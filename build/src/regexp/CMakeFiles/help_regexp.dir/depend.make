# Empty dependencies file for help_regexp.
# This may be replaced when dependencies are built.
