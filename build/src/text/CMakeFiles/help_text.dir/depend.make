# Empty dependencies file for help_text.
# This may be replaced when dependencies are built.
