
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/address.cc" "src/text/CMakeFiles/help_text.dir/address.cc.o" "gcc" "src/text/CMakeFiles/help_text.dir/address.cc.o.d"
  "/root/repo/src/text/gapbuffer.cc" "src/text/CMakeFiles/help_text.dir/gapbuffer.cc.o" "gcc" "src/text/CMakeFiles/help_text.dir/gapbuffer.cc.o.d"
  "/root/repo/src/text/text.cc" "src/text/CMakeFiles/help_text.dir/text.cc.o" "gcc" "src/text/CMakeFiles/help_text.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/help_base.dir/DependInfo.cmake"
  "/root/repo/build/src/regexp/CMakeFiles/help_regexp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
