file(REMOVE_RECURSE
  "CMakeFiles/help_text.dir/address.cc.o"
  "CMakeFiles/help_text.dir/address.cc.o.d"
  "CMakeFiles/help_text.dir/gapbuffer.cc.o"
  "CMakeFiles/help_text.dir/gapbuffer.cc.o.d"
  "CMakeFiles/help_text.dir/text.cc.o"
  "CMakeFiles/help_text.dir/text.cc.o.d"
  "libhelp_text.a"
  "libhelp_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
