file(REMOVE_RECURSE
  "libhelp_text.a"
)
