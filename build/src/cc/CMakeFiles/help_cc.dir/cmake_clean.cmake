file(REMOVE_RECURSE
  "CMakeFiles/help_cc.dir/browser.cc.o"
  "CMakeFiles/help_cc.dir/browser.cc.o.d"
  "CMakeFiles/help_cc.dir/clex.cc.o"
  "CMakeFiles/help_cc.dir/clex.cc.o.d"
  "CMakeFiles/help_cc.dir/cpp.cc.o"
  "CMakeFiles/help_cc.dir/cpp.cc.o.d"
  "CMakeFiles/help_cc.dir/ctools.cc.o"
  "CMakeFiles/help_cc.dir/ctools.cc.o.d"
  "libhelp_cc.a"
  "libhelp_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
