
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/browser.cc" "src/cc/CMakeFiles/help_cc.dir/browser.cc.o" "gcc" "src/cc/CMakeFiles/help_cc.dir/browser.cc.o.d"
  "/root/repo/src/cc/clex.cc" "src/cc/CMakeFiles/help_cc.dir/clex.cc.o" "gcc" "src/cc/CMakeFiles/help_cc.dir/clex.cc.o.d"
  "/root/repo/src/cc/cpp.cc" "src/cc/CMakeFiles/help_cc.dir/cpp.cc.o" "gcc" "src/cc/CMakeFiles/help_cc.dir/cpp.cc.o.d"
  "/root/repo/src/cc/ctools.cc" "src/cc/CMakeFiles/help_cc.dir/ctools.cc.o" "gcc" "src/cc/CMakeFiles/help_cc.dir/ctools.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/help_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/help_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/help_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/help_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/regexp/CMakeFiles/help_regexp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
