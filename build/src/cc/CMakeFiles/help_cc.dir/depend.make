# Empty dependencies file for help_cc.
# This may be replaced when dependencies are built.
