file(REMOVE_RECURSE
  "libhelp_cc.a"
)
