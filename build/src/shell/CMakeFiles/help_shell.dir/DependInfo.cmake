
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shell/coreutils.cc" "src/shell/CMakeFiles/help_shell.dir/coreutils.cc.o" "gcc" "src/shell/CMakeFiles/help_shell.dir/coreutils.cc.o.d"
  "/root/repo/src/shell/eval.cc" "src/shell/CMakeFiles/help_shell.dir/eval.cc.o" "gcc" "src/shell/CMakeFiles/help_shell.dir/eval.cc.o.d"
  "/root/repo/src/shell/mk.cc" "src/shell/CMakeFiles/help_shell.dir/mk.cc.o" "gcc" "src/shell/CMakeFiles/help_shell.dir/mk.cc.o.d"
  "/root/repo/src/shell/parse.cc" "src/shell/CMakeFiles/help_shell.dir/parse.cc.o" "gcc" "src/shell/CMakeFiles/help_shell.dir/parse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/help_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/help_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/help_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/regexp/CMakeFiles/help_regexp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
