# Empty dependencies file for help_shell.
# This may be replaced when dependencies are built.
