file(REMOVE_RECURSE
  "CMakeFiles/help_shell.dir/coreutils.cc.o"
  "CMakeFiles/help_shell.dir/coreutils.cc.o.d"
  "CMakeFiles/help_shell.dir/eval.cc.o"
  "CMakeFiles/help_shell.dir/eval.cc.o.d"
  "CMakeFiles/help_shell.dir/mk.cc.o"
  "CMakeFiles/help_shell.dir/mk.cc.o.d"
  "CMakeFiles/help_shell.dir/parse.cc.o"
  "CMakeFiles/help_shell.dir/parse.cc.o.d"
  "libhelp_shell.a"
  "libhelp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
