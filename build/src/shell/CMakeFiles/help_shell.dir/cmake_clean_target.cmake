file(REMOVE_RECURSE
  "libhelp_shell.a"
)
