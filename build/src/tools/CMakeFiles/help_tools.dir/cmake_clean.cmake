file(REMOVE_RECURSE
  "CMakeFiles/help_tools.dir/corpus.cc.o"
  "CMakeFiles/help_tools.dir/corpus.cc.o.d"
  "CMakeFiles/help_tools.dir/demo.cc.o"
  "CMakeFiles/help_tools.dir/demo.cc.o.d"
  "CMakeFiles/help_tools.dir/mail.cc.o"
  "CMakeFiles/help_tools.dir/mail.cc.o.d"
  "CMakeFiles/help_tools.dir/parsebuf.cc.o"
  "CMakeFiles/help_tools.dir/parsebuf.cc.o.d"
  "CMakeFiles/help_tools.dir/scripts.cc.o"
  "CMakeFiles/help_tools.dir/scripts.cc.o.d"
  "libhelp_tools.a"
  "libhelp_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
