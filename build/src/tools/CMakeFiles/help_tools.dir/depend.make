# Empty dependencies file for help_tools.
# This may be replaced when dependencies are built.
