file(REMOVE_RECURSE
  "libhelp_tools.a"
)
