file(REMOVE_RECURSE
  "libhelp_core.a"
)
