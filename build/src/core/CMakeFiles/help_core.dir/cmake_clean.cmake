file(REMOVE_RECURSE
  "CMakeFiles/help_core.dir/events.cc.o"
  "CMakeFiles/help_core.dir/events.cc.o.d"
  "CMakeFiles/help_core.dir/fileserver.cc.o"
  "CMakeFiles/help_core.dir/fileserver.cc.o.d"
  "CMakeFiles/help_core.dir/help.cc.o"
  "CMakeFiles/help_core.dir/help.cc.o.d"
  "libhelp_core.a"
  "libhelp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
