# Empty compiler generated dependencies file for help_core.
# This may be replaced when dependencies are built.
