file(REMOVE_RECURSE
  "CMakeFiles/help_wm.dir/column.cc.o"
  "CMakeFiles/help_wm.dir/column.cc.o.d"
  "CMakeFiles/help_wm.dir/page.cc.o"
  "CMakeFiles/help_wm.dir/page.cc.o.d"
  "CMakeFiles/help_wm.dir/window.cc.o"
  "CMakeFiles/help_wm.dir/window.cc.o.d"
  "libhelp_wm.a"
  "libhelp_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
