# Empty dependencies file for help_wm.
# This may be replaced when dependencies are built.
