file(REMOVE_RECURSE
  "libhelp_wm.a"
)
