file(REMOVE_RECURSE
  "CMakeFiles/help_base.dir/rune.cc.o"
  "CMakeFiles/help_base.dir/rune.cc.o.d"
  "CMakeFiles/help_base.dir/strings.cc.o"
  "CMakeFiles/help_base.dir/strings.cc.o.d"
  "libhelp_base.a"
  "libhelp_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
