# Empty compiler generated dependencies file for help_base.
# This may be replaced when dependencies are built.
