file(REMOVE_RECURSE
  "libhelp_base.a"
)
