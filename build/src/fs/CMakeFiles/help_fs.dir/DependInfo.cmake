
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/ninep.cc" "src/fs/CMakeFiles/help_fs.dir/ninep.cc.o" "gcc" "src/fs/CMakeFiles/help_fs.dir/ninep.cc.o.d"
  "/root/repo/src/fs/path.cc" "src/fs/CMakeFiles/help_fs.dir/path.cc.o" "gcc" "src/fs/CMakeFiles/help_fs.dir/path.cc.o.d"
  "/root/repo/src/fs/vfs.cc" "src/fs/CMakeFiles/help_fs.dir/vfs.cc.o" "gcc" "src/fs/CMakeFiles/help_fs.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/help_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
