file(REMOVE_RECURSE
  "libhelp_fs.a"
)
