file(REMOVE_RECURSE
  "CMakeFiles/help_fs.dir/ninep.cc.o"
  "CMakeFiles/help_fs.dir/ninep.cc.o.d"
  "CMakeFiles/help_fs.dir/path.cc.o"
  "CMakeFiles/help_fs.dir/path.cc.o.d"
  "CMakeFiles/help_fs.dir/vfs.cc.o"
  "CMakeFiles/help_fs.dir/vfs.cc.o.d"
  "libhelp_fs.a"
  "libhelp_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
