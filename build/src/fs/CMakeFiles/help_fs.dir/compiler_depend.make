# Empty compiler generated dependencies file for help_fs.
# This may be replaced when dependencies are built.
