# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/rune_test[1]_include.cmake")
include("/root/repo/build/tests/strings_test[1]_include.cmake")
include("/root/repo/build/tests/regexp_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/ninep_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
include("/root/repo/build/tests/coreutils_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/draw_test[1]_include.cmake")
include("/root/repo/build/tests/wm_test[1]_include.cmake")
include("/root/repo/build/tests/help_test[1]_include.cmake")
include("/root/repo/build/tests/fileserver_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/demo_test[1]_include.cmake")
include("/root/repo/build/tests/scrollbar_test[1]_include.cmake")
include("/root/repo/build/tests/send_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/clone_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/shell_control_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/paper_example_test[1]_include.cmake")
