# Empty compiler generated dependencies file for draw_test.
# This may be replaced when dependencies are built.
