file(REMOVE_RECURSE
  "CMakeFiles/draw_test.dir/draw_test.cc.o"
  "CMakeFiles/draw_test.dir/draw_test.cc.o.d"
  "draw_test"
  "draw_test.pdb"
  "draw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
