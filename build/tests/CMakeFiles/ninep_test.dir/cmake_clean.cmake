file(REMOVE_RECURSE
  "CMakeFiles/ninep_test.dir/ninep_test.cc.o"
  "CMakeFiles/ninep_test.dir/ninep_test.cc.o.d"
  "ninep_test"
  "ninep_test.pdb"
  "ninep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ninep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
