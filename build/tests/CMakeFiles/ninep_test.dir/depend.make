# Empty dependencies file for ninep_test.
# This may be replaced when dependencies are built.
