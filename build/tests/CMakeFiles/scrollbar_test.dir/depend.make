# Empty dependencies file for scrollbar_test.
# This may be replaced when dependencies are built.
