file(REMOVE_RECURSE
  "CMakeFiles/scrollbar_test.dir/scrollbar_test.cc.o"
  "CMakeFiles/scrollbar_test.dir/scrollbar_test.cc.o.d"
  "scrollbar_test"
  "scrollbar_test.pdb"
  "scrollbar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrollbar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
