# Empty dependencies file for demo_test.
# This may be replaced when dependencies are built.
