# Empty dependencies file for rune_test.
# This may be replaced when dependencies are built.
