file(REMOVE_RECURSE
  "CMakeFiles/rune_test.dir/rune_test.cc.o"
  "CMakeFiles/rune_test.dir/rune_test.cc.o.d"
  "rune_test"
  "rune_test.pdb"
  "rune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
