file(REMOVE_RECURSE
  "CMakeFiles/shell_control_test.dir/shell_control_test.cc.o"
  "CMakeFiles/shell_control_test.dir/shell_control_test.cc.o.d"
  "shell_control_test"
  "shell_control_test.pdb"
  "shell_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
