# Empty compiler generated dependencies file for shell_control_test.
# This may be replaced when dependencies are built.
