file(REMOVE_RECURSE
  "CMakeFiles/coreutils_test.dir/coreutils_test.cc.o"
  "CMakeFiles/coreutils_test.dir/coreutils_test.cc.o.d"
  "coreutils_test"
  "coreutils_test.pdb"
  "coreutils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreutils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
