# Empty compiler generated dependencies file for coreutils_test.
# This may be replaced when dependencies are built.
