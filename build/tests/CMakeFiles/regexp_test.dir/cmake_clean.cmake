file(REMOVE_RECURSE
  "CMakeFiles/regexp_test.dir/regexp_test.cc.o"
  "CMakeFiles/regexp_test.dir/regexp_test.cc.o.d"
  "regexp_test"
  "regexp_test.pdb"
  "regexp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regexp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
