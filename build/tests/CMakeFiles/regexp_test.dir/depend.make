# Empty dependencies file for regexp_test.
# This may be replaced when dependencies are built.
