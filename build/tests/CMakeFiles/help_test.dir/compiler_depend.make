# Empty compiler generated dependencies file for help_test.
# This may be replaced when dependencies are built.
