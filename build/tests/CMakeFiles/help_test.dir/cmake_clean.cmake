file(REMOVE_RECURSE
  "CMakeFiles/help_test.dir/help_test.cc.o"
  "CMakeFiles/help_test.dir/help_test.cc.o.d"
  "help_test"
  "help_test.pdb"
  "help_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/help_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
