# Empty compiler generated dependencies file for send_test.
# This may be replaced when dependencies are built.
