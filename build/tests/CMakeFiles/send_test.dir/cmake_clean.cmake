file(REMOVE_RECURSE
  "CMakeFiles/send_test.dir/send_test.cc.o"
  "CMakeFiles/send_test.dir/send_test.cc.o.d"
  "send_test"
  "send_test.pdb"
  "send_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/send_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
