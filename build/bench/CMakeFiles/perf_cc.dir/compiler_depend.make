# Empty compiler generated dependencies file for perf_cc.
# This may be replaced when dependencies are built.
