file(REMOVE_RECURSE
  "CMakeFiles/perf_cc.dir/perf_cc.cc.o"
  "CMakeFiles/perf_cc.dir/perf_cc.cc.o.d"
  "perf_cc"
  "perf_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
