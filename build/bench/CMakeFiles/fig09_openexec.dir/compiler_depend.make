# Empty compiler generated dependencies file for fig09_openexec.
# This may be replaced when dependencies are built.
