file(REMOVE_RECURSE
  "CMakeFiles/fig09_openexec.dir/fig09_openexec.cc.o"
  "CMakeFiles/fig09_openexec.dir/fig09_openexec.cc.o.d"
  "fig09_openexec"
  "fig09_openexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_openexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
