# Empty compiler generated dependencies file for fig08_opentext.
# This may be replaced when dependencies are built.
