file(REMOVE_RECURSE
  "CMakeFiles/fig08_opentext.dir/fig08_opentext.cc.o"
  "CMakeFiles/fig08_opentext.dir/fig08_opentext.cc.o.d"
  "fig08_opentext"
  "fig08_opentext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_opentext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
