file(REMOVE_RECURSE
  "CMakeFiles/fig05_headers.dir/fig05_headers.cc.o"
  "CMakeFiles/fig05_headers.dir/fig05_headers.cc.o.d"
  "fig05_headers"
  "fig05_headers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
