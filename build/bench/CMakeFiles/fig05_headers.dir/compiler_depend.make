# Empty compiler generated dependencies file for fig05_headers.
# This may be replaced when dependencies are built.
