file(REMOVE_RECURSE
  "CMakeFiles/fig06_messages.dir/fig06_messages.cc.o"
  "CMakeFiles/fig06_messages.dir/fig06_messages.cc.o.d"
  "fig06_messages"
  "fig06_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
