
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_messages.cc" "bench/CMakeFiles/fig06_messages.dir/fig06_messages.cc.o" "gcc" "bench/CMakeFiles/fig06_messages.dir/fig06_messages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/help_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/help_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/help_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/help_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/help_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/help_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/help_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/draw/CMakeFiles/help_draw.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/help_text.dir/DependInfo.cmake"
  "/root/repo/build/src/regexp/CMakeFiles/help_regexp.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/help_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
