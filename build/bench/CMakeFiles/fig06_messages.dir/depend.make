# Empty dependencies file for fig06_messages.
# This may be replaced when dependencies are built.
