# Empty compiler generated dependencies file for perf_text.
# This may be replaced when dependencies are built.
