# Empty compiler generated dependencies file for claims_uses_vs_grep.
# This may be replaced when dependencies are built.
