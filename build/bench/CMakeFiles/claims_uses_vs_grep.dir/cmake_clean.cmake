file(REMOVE_RECURSE
  "CMakeFiles/claims_uses_vs_grep.dir/claims_uses_vs_grep.cc.o"
  "CMakeFiles/claims_uses_vs_grep.dir/claims_uses_vs_grep.cc.o.d"
  "claims_uses_vs_grep"
  "claims_uses_vs_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_uses_vs_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
