file(REMOVE_RECURSE
  "CMakeFiles/claims_baseline.dir/claims_baseline.cc.o"
  "CMakeFiles/claims_baseline.dir/claims_baseline.cc.o.d"
  "claims_baseline"
  "claims_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
