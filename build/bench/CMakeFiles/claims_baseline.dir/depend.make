# Empty dependencies file for claims_baseline.
# This may be replaced when dependencies are built.
