# Empty dependencies file for perf_fs.
# This may be replaced when dependencies are built.
