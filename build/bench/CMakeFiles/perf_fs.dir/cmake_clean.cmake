file(REMOVE_RECURSE
  "CMakeFiles/perf_fs.dir/perf_fs.cc.o"
  "CMakeFiles/perf_fs.dir/perf_fs.cc.o.d"
  "perf_fs"
  "perf_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
