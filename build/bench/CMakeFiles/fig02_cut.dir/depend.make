# Empty dependencies file for fig02_cut.
# This may be replaced when dependencies are built.
