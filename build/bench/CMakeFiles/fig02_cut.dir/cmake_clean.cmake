file(REMOVE_RECURSE
  "CMakeFiles/fig02_cut.dir/fig02_cut.cc.o"
  "CMakeFiles/fig02_cut.dir/fig02_cut.cc.o.d"
  "fig02_cut"
  "fig02_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
