file(REMOVE_RECURSE
  "CMakeFiles/fig04_boot.dir/fig04_boot.cc.o"
  "CMakeFiles/fig04_boot.dir/fig04_boot.cc.o.d"
  "fig04_boot"
  "fig04_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
