# Empty compiler generated dependencies file for fig04_boot.
# This may be replaced when dependencies are built.
