file(REMOVE_RECURSE
  "CMakeFiles/fig11_write.dir/fig11_write.cc.o"
  "CMakeFiles/fig11_write.dir/fig11_write.cc.o.d"
  "fig11_write"
  "fig11_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
