# Empty dependencies file for fig11_write.
# This may be replaced when dependencies are built.
