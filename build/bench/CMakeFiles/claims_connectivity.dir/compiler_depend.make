# Empty compiler generated dependencies file for claims_connectivity.
# This may be replaced when dependencies are built.
