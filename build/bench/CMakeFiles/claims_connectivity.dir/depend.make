# Empty dependencies file for claims_connectivity.
# This may be replaced when dependencies are built.
