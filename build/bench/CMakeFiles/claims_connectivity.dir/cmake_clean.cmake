file(REMOVE_RECURSE
  "CMakeFiles/claims_connectivity.dir/claims_connectivity.cc.o"
  "CMakeFiles/claims_connectivity.dir/claims_connectivity.cc.o.d"
  "claims_connectivity"
  "claims_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
