# Empty dependencies file for fig07_stack.
# This may be replaced when dependencies are built.
