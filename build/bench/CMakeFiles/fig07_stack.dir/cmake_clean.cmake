file(REMOVE_RECURSE
  "CMakeFiles/fig07_stack.dir/fig07_stack.cc.o"
  "CMakeFiles/fig07_stack.dir/fig07_stack.cc.o.d"
  "fig07_stack"
  "fig07_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
