# Empty compiler generated dependencies file for claims_gestures.
# This may be replaced when dependencies are built.
