file(REMOVE_RECURSE
  "CMakeFiles/claims_gestures.dir/claims_gestures.cc.o"
  "CMakeFiles/claims_gestures.dir/claims_gestures.cc.o.d"
  "claims_gestures"
  "claims_gestures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_gestures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
