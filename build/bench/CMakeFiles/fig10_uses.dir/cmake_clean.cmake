file(REMOVE_RECURSE
  "CMakeFiles/fig10_uses.dir/fig10_uses.cc.o"
  "CMakeFiles/fig10_uses.dir/fig10_uses.cc.o.d"
  "fig10_uses"
  "fig10_uses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_uses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
