# Empty compiler generated dependencies file for fig10_uses.
# This may be replaced when dependencies are built.
