file(REMOVE_RECURSE
  "CMakeFiles/perf_regexp.dir/perf_regexp.cc.o"
  "CMakeFiles/perf_regexp.dir/perf_regexp.cc.o.d"
  "perf_regexp"
  "perf_regexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_regexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
