# Empty compiler generated dependencies file for perf_regexp.
# This may be replaced when dependencies are built.
