file(REMOVE_RECURSE
  "CMakeFiles/claims_loc.dir/claims_loc.cc.o"
  "CMakeFiles/claims_loc.dir/claims_loc.cc.o.d"
  "claims_loc"
  "claims_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
