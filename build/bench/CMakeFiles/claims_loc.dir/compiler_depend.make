# Empty compiler generated dependencies file for claims_loc.
# This may be replaced when dependencies are built.
