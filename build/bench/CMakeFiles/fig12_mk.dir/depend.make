# Empty dependencies file for fig12_mk.
# This may be replaced when dependencies are built.
