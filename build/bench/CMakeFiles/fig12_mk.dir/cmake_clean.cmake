file(REMOVE_RECURSE
  "CMakeFiles/fig12_mk.dir/fig12_mk.cc.o"
  "CMakeFiles/fig12_mk.dir/fig12_mk.cc.o.d"
  "fig12_mk"
  "fig12_mk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
