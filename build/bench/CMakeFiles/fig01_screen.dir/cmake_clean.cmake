file(REMOVE_RECURSE
  "CMakeFiles/fig01_screen.dir/fig01_screen.cc.o"
  "CMakeFiles/fig01_screen.dir/fig01_screen.cc.o.d"
  "fig01_screen"
  "fig01_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
