# Empty dependencies file for fig01_screen.
# This may be replaced when dependencies are built.
