file(REMOVE_RECURSE
  "CMakeFiles/fig03_open.dir/fig03_open.cc.o"
  "CMakeFiles/fig03_open.dir/fig03_open.cc.o.d"
  "fig03_open"
  "fig03_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
