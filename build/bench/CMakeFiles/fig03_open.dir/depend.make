# Empty dependencies file for fig03_open.
# This may be replaced when dependencies are built.
