file(REMOVE_RECURSE
  "CMakeFiles/perf_shell.dir/perf_shell.cc.o"
  "CMakeFiles/perf_shell.dir/perf_shell.cc.o.d"
  "perf_shell"
  "perf_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
