# Empty compiler generated dependencies file for perf_shell.
# This may be replaced when dependencies are built.
