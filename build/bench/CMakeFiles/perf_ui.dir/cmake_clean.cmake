file(REMOVE_RECURSE
  "CMakeFiles/perf_ui.dir/perf_ui.cc.o"
  "CMakeFiles/perf_ui.dir/perf_ui.cc.o.d"
  "perf_ui"
  "perf_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
