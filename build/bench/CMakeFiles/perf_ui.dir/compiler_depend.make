# Empty compiler generated dependencies file for perf_ui.
# This may be replaced when dependencies are built.
