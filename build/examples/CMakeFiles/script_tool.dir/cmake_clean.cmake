file(REMOVE_RECURSE
  "CMakeFiles/script_tool.dir/script_tool.cpp.o"
  "CMakeFiles/script_tool.dir/script_tool.cpp.o.d"
  "script_tool"
  "script_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
