# Empty compiler generated dependencies file for script_tool.
# This may be replaced when dependencies are built.
