# Empty dependencies file for mail_browser.
# This may be replaced when dependencies are built.
