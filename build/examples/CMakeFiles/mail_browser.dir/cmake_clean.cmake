file(REMOVE_RECURSE
  "CMakeFiles/mail_browser.dir/mail_browser.cpp.o"
  "CMakeFiles/mail_browser.dir/mail_browser.cpp.o.d"
  "mail_browser"
  "mail_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
