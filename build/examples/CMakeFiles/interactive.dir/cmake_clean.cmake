file(REMOVE_RECURSE
  "CMakeFiles/interactive.dir/interactive.cpp.o"
  "CMakeFiles/interactive.dir/interactive.cpp.o.d"
  "interactive"
  "interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
