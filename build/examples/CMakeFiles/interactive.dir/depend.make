# Empty dependencies file for interactive.
# This may be replaced when dependencies are built.
