// Error handling without exceptions: fallible operations return Status (or
// Result<T> when they produce a value). Error strings follow Plan 9
// conventions ("file does not exist", "permission denied") because they are
// surfaced to users through the Errors window and through 9P Rerror messages.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace help {

class Status {
 public:
  Status() = default;  // ok
  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return !message_.has_value(); }
  // Error text; empty for ok statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

  bool operator==(const Status& other) const { return message_ == other.message_; }

 private:
  std::optional<std::string> message_;
};

// Canonical Plan 9 style error statuses used across the file system and core.
inline Status ErrNotExist(std::string_view name) {
  return Status::Error(std::string(name) + ": file does not exist");
}
inline Status ErrNotDir(std::string_view name) {
  return Status::Error(std::string(name) + ": not a directory");
}
inline Status ErrIsDir(std::string_view name) {
  return Status::Error(std::string(name) + ": is a directory");
}
inline Status ErrExists(std::string_view name) {
  return Status::Error(std::string(name) + ": file already exists");
}
inline Status ErrPerm(std::string_view name) {
  return Status::Error(std::string(name) + ": permission denied");
}
inline Status ErrBadUse(std::string_view what) {
  return Status::Error(std::string(what));
}

// Result<T>: either a value or an error Status. Accessors assert on misuse.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from ok Status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  T take() {
    assert(ok());
    return std::move(std::get<T>(v_));
  }
  Status status() const { return ok() ? Status::Ok() : std::get<Status>(v_); }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : std::get<Status>(v_).message();
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace help

#endif  // SRC_BASE_STATUS_H_
