// Small string utilities shared across modules. Kept deliberately minimal;
// anything text-semantic (word boundaries, addresses) lives with the text
// substrate instead.
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace help {

// Splits on any run of characters from `seps` (like Plan 9 tokenize).
std::vector<std::string> Tokenize(std::string_view s, std::string_view seps = " \t\n\r");

// Splits on every occurrence of `sep` (empty fields preserved).
std::vector<std::string> Split(std::string_view s, char sep);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view TrimSpace(std::string_view s);

bool HasPrefix(std::string_view s, std::string_view prefix);
bool HasSuffix(std::string_view s, std::string_view suffix);

// Parses a non-negative decimal integer; returns -1 if `s` is not all digits.
long ParseInt(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace help

#endif  // SRC_BASE_STRINGS_H_
