#include "src/base/strings.h"

#include <cstdarg>
#include <limits>
#include <cstdio>

namespace help {

std::vector<std::string> Tokenize(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && seps.find(s[i]) != std::string_view::npos) {
      i++;
    }
    size_t start = i;
    while (i < s.size() && seps.find(s[i]) == std::string_view::npos) {
      i++;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); i++) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

long ParseInt(std::string_view s) {
  if (s.empty()) {
    return -1;
  }
  constexpr long kMax = std::numeric_limits<long>::max();
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return -1;
    }
    int digit = c - '0';
    if (v > (kMax - digit) / 10) {
      return -1;  // overflow
    }
    v = v * 10 + digit;
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

}  // namespace help
