// Rune handling: help operates on text as sequences of runes (Unicode code
// points), mirroring Plan 9's rune model. Text offsets throughout the system
// are rune offsets, never byte offsets; UTF-8 appears only at the edges
// (file contents, protocol payloads).
#ifndef SRC_BASE_RUNE_H_
#define SRC_BASE_RUNE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace help {

using Rune = char32_t;
// A string of runes. Offsets into RuneString are the canonical text addresses.
using RuneString = std::u32string;
using RuneStringView = std::u32string_view;

inline constexpr Rune kRuneError = 0xFFFD;  // replacement character
inline constexpr Rune kRuneMax = 0x10FFFF;

// Decodes one rune from the front of `utf8`. Returns the rune and stores the
// number of bytes consumed in `*size` (always >= 1, even on error, so a
// malformed stream still makes progress).
Rune DecodeRune(std::string_view utf8, int* size);

// Appends the UTF-8 encoding of `r` to `out`. Invalid runes encode as U+FFFD.
void EncodeRune(Rune r, std::string* out);

// A zero-copy view of rune text stored as (at most) two contiguous spans.
// This is exactly the shape a gap buffer exposes — everything before the gap
// and everything after it — so searches and encoders can stream over the
// storage without materializing a full-document copy. A plain contiguous
// string is the degenerate case with an empty second span.
struct RuneSpans {
  RuneStringView a;  // runes [0, a.size())
  RuneStringView b;  // runes [a.size(), a.size()+b.size())

  static constexpr size_t npos = static_cast<size_t>(-1);

  constexpr RuneSpans() = default;
  constexpr RuneSpans(RuneStringView first, RuneStringView second = {})
      : a(first), b(second) {}

  constexpr size_t size() const { return a.size() + b.size(); }
  constexpr bool empty() const { return a.empty() && b.empty(); }
  constexpr Rune operator[](size_t i) const {
    return i < a.size() ? a[i] : b[i - a.size()];
  }

  // Subview of [pos, pos+n), clamped to the end.
  constexpr RuneSpans Slice(size_t pos, size_t n) const {
    pos = std::min(pos, size());
    n = std::min(n, size() - pos);
    size_t end = pos + n;
    if (end <= a.size()) {
      return RuneSpans(a.substr(pos, n));
    }
    if (pos >= a.size()) {
      return RuneSpans(b.substr(pos - a.size(), n));
    }
    return RuneSpans(a.substr(pos), b.substr(0, end - a.size()));
  }

  // Offset of the first occurrence of `r` at or after `pos`, or npos. Each
  // half delegates to the contiguous string_view search.
  size_t Find(Rune r, size_t pos = 0) const {
    if (pos < a.size()) {
      size_t i = a.find(r, pos);
      if (i != RuneStringView::npos) {
        return i;
      }
      pos = a.size();
    }
    size_t i = b.find(r, pos - a.size());
    return i == RuneStringView::npos ? npos : a.size() + i;
  }
};

// Offset of the first occurrence of `needle` at or after `start`, or
// RuneSpans::npos. Boyer-Moore-Horspool with a byte-masked skip table, so a
// multi-rune needle advances ~needle.size() runes per probe; needles may
// straddle the span boundary.
size_t FindRunes(const RuneSpans& text, RuneStringView needle, size_t start = 0);

// Whole-string conversions.
RuneString RunesFromUtf8(std::string_view utf8);
std::string Utf8FromRunes(RuneStringView runes);
// Encodes both spans in order (no intermediate rune copy).
std::string Utf8FromRunes(const RuneSpans& spans);
// Appending form: encodes both spans in order onto the end of `*out` — the
// single transcode step of the zero-copy read path (gap-buffer spans straight
// into a reply payload, no intermediate staging string).
void AppendUtf8FromRunes(const RuneSpans& spans, std::string* out);

// Number of runes in a UTF-8 string.
size_t RuneLen(std::string_view utf8);

// Character classes used by help's selection heuristics.
// IsWordRune: runes that form "words" for the middle-button click expansion
// (alphanumerics plus the punctuation that appears inside identifiers).
bool IsWordRune(Rune r);
// IsFilenameRune: runes allowed inside the automatic file-name expansion,
// including '/', '.', ':', '-' so that `help.c:27` and paths expand whole.
bool IsFilenameRune(Rune r);
bool IsSpaceRune(Rune r);
bool IsDigitRune(Rune r);

}  // namespace help

#endif  // SRC_BASE_RUNE_H_
