// Rune handling: help operates on text as sequences of runes (Unicode code
// points), mirroring Plan 9's rune model. Text offsets throughout the system
// are rune offsets, never byte offsets; UTF-8 appears only at the edges
// (file contents, protocol payloads).
#ifndef SRC_BASE_RUNE_H_
#define SRC_BASE_RUNE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace help {

using Rune = char32_t;
// A string of runes. Offsets into RuneString are the canonical text addresses.
using RuneString = std::u32string;
using RuneStringView = std::u32string_view;

inline constexpr Rune kRuneError = 0xFFFD;  // replacement character
inline constexpr Rune kRuneMax = 0x10FFFF;

// Decodes one rune from the front of `utf8`. Returns the rune and stores the
// number of bytes consumed in `*size` (always >= 1, even on error, so a
// malformed stream still makes progress).
Rune DecodeRune(std::string_view utf8, int* size);

// Appends the UTF-8 encoding of `r` to `out`. Invalid runes encode as U+FFFD.
void EncodeRune(Rune r, std::string* out);

// Whole-string conversions.
RuneString RunesFromUtf8(std::string_view utf8);
std::string Utf8FromRunes(RuneStringView runes);

// Number of runes in a UTF-8 string.
size_t RuneLen(std::string_view utf8);

// Character classes used by help's selection heuristics.
// IsWordRune: runes that form "words" for the middle-button click expansion
// (alphanumerics plus the punctuation that appears inside identifiers).
bool IsWordRune(Rune r);
// IsFilenameRune: runes allowed inside the automatic file-name expansion,
// including '/', '.', ':', '-' so that `help.c:27` and paths expand whole.
bool IsFilenameRune(Rune r);
bool IsSpaceRune(Rune r);
bool IsDigitRune(Rune r);

}  // namespace help

#endif  // SRC_BASE_RUNE_H_
