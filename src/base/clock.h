// Deterministic clock: the whole system (file mtimes, mail timestamps, mk's
// out-of-date checks) runs on a logical tick counter so that tests and the
// figure benches are exactly reproducible. One tick ~ one second.
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <cstdint>

namespace help {

class Clock {
 public:
  // Returns the current logical time without advancing it.
  uint64_t Now() const { return now_; }
  // Advances the clock and returns the new time. Every mutating file
  // operation calls Tick() so that "modified after" relations are total.
  uint64_t Tick() { return ++now_; }
  void Set(uint64_t t) { now_ = t; }

 private:
  uint64_t now_ = 671803200;  // Tue Apr 16 1991, the day of Sean's mail
};

}  // namespace help

#endif  // SRC_BASE_CLOCK_H_
