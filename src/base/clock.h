// Deterministic clock: the whole system (file mtimes, mail timestamps, mk's
// out-of-date checks) runs on a logical tick counter so that tests and the
// figure benches are exactly reproducible. One tick ~ one second.
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace help {

class Clock {
 public:
  // Returns the current logical time without advancing it. Internally a
  // relaxed atomic: trace events are stamped with the tick from worker
  // threads while the owning thread advances it, and no ordering beyond the
  // tick value itself is implied (trace readers order by sequence number).
  uint64_t Now() const { return now_.load(std::memory_order_relaxed); }
  // Advances the clock and returns the new time. Every mutating file
  // operation calls Tick() so that "modified after" relations are total.
  uint64_t Tick() { return now_.fetch_add(1, std::memory_order_relaxed) + 1; }
  void Set(uint64_t t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_{671803200};  // Tue Apr 16 1991, Sean's mail
};

}  // namespace help

#endif  // SRC_BASE_CLOCK_H_
