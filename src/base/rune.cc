#include "src/base/rune.h"

namespace help {

Rune DecodeRune(std::string_view utf8, int* size) {
  *size = 1;
  if (utf8.empty()) {
    return kRuneError;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(utf8.data());
  unsigned char c0 = p[0];
  if (c0 < 0x80) {
    return c0;
  }
  int need;
  Rune r;
  if ((c0 & 0xE0) == 0xC0) {
    need = 1;
    r = c0 & 0x1F;
  } else if ((c0 & 0xF0) == 0xE0) {
    need = 2;
    r = c0 & 0x0F;
  } else if ((c0 & 0xF8) == 0xF0) {
    need = 3;
    r = c0 & 0x07;
  } else {
    return kRuneError;  // stray continuation or invalid lead byte
  }
  if (utf8.size() < static_cast<size_t>(need) + 1) {
    return kRuneError;
  }
  for (int i = 1; i <= need; i++) {
    if ((p[i] & 0xC0) != 0x80) {
      return kRuneError;
    }
    r = (r << 6) | (p[i] & 0x3F);
  }
  // Reject overlong encodings and out-of-range values.
  static constexpr Rune kMinForLen[4] = {0, 0x80, 0x800, 0x10000};
  if (r < kMinForLen[need] || r > kRuneMax || (r >= 0xD800 && r <= 0xDFFF)) {
    return kRuneError;
  }
  *size = need + 1;
  return r;
}

void EncodeRune(Rune r, std::string* out) {
  if (r > kRuneMax || (r >= 0xD800 && r <= 0xDFFF)) {
    r = kRuneError;
  }
  if (r < 0x80) {
    out->push_back(static_cast<char>(r));
  } else if (r < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (r >> 6)));
    out->push_back(static_cast<char>(0x80 | (r & 0x3F)));
  } else if (r < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (r >> 12)));
    out->push_back(static_cast<char>(0x80 | ((r >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (r & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (r >> 18)));
    out->push_back(static_cast<char>(0x80 | ((r >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((r >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (r & 0x3F)));
  }
}

RuneString RunesFromUtf8(std::string_view utf8) {
  RuneString out;
  out.reserve(utf8.size());
  while (!utf8.empty()) {
    int size;
    out.push_back(DecodeRune(utf8, &size));
    utf8.remove_prefix(size);
  }
  return out;
}

std::string Utf8FromRunes(RuneStringView runes) {
  std::string out;
  out.reserve(runes.size());
  for (Rune r : runes) {
    EncodeRune(r, &out);
  }
  return out;
}

std::string Utf8FromRunes(const RuneSpans& spans) {
  std::string out;
  AppendUtf8FromRunes(spans, &out);
  return out;
}

void AppendUtf8FromRunes(const RuneSpans& spans, std::string* out) {
  out->reserve(out->size() + spans.size());
  for (Rune r : spans.a) {
    EncodeRune(r, out);
  }
  for (Rune r : spans.b) {
    EncodeRune(r, out);
  }
}

size_t FindRunes(const RuneSpans& text, RuneStringView needle, size_t start) {
  const size_t n = text.size();
  const size_t m = needle.size();
  if (m == 0) {
    return start <= n ? start : RuneSpans::npos;
  }
  if (m > n || start > n - m) {
    return RuneSpans::npos;
  }
  if (m == 1) {
    return text.Find(needle[0], start);
  }
  // Skip table keyed on the low byte of the rune. Assigning in ascending
  // needle order leaves each slot with the smallest (safest) shift among the
  // runes sharing that byte.
  unsigned char skip[256];
  const unsigned char max_skip =
      static_cast<unsigned char>(std::min<size_t>(m, 255));
  std::fill(skip, skip + 256, max_skip);
  for (size_t i = 0; i + 1 < m; i++) {
    skip[needle[i] & 0xFF] =
        static_cast<unsigned char>(std::min<size_t>(m - 1 - i, 255));
  }
  const Rune last = needle[m - 1];
  size_t i = start;
  while (i + m <= n) {
    Rune c = text[i + m - 1];
    if (c == last) {
      size_t j = 0;
      while (j + 1 < m && text[i + j] == needle[j]) {
        j++;
      }
      if (j + 1 == m) {
        return i;
      }
    }
    i += skip[c & 0xFF];
  }
  return RuneSpans::npos;
}

size_t RuneLen(std::string_view utf8) {
  size_t n = 0;
  while (!utf8.empty()) {
    int size;
    DecodeRune(utf8, &size);
    utf8.remove_prefix(size);
    n++;
  }
  return n;
}

bool IsWordRune(Rune r) {
  if ((r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
    return true;
  }
  switch (r) {
    case '_':
    case '.':
    case '-':
    case '+':
    case '/':
    case '*':
    case '!':  // tag commands such as Close! must select whole
      return true;
    default:
      return r >= 0x80;  // any non-ASCII rune counts as word-forming
  }
}

bool IsFilenameRune(Rune r) {
  if (IsWordRune(r)) {
    return true;
  }
  switch (r) {
    case ':':  // file:line addressing
    case '#':
    case '$':
    case '%':
    case ',':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsSpaceRune(Rune r) { return r == ' ' || r == '\t' || r == '\n' || r == '\r'; }

bool IsDigitRune(Rune r) { return r >= '0' && r <= '9'; }

}  // namespace help
