// Environment variables, rc style: every variable is a list of strings.
// $helpsel (the selection context help passes to tools) and the decl
// script's $file/$id/$line all live here.
#ifndef SRC_PROC_ENV_H_
#define SRC_PROC_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace help {

class Env {
 public:
  // Opaque per-environment extension slot (the shell stores its function
  // table here so `fn` definitions clone with the environment).
  std::shared_ptr<void> ext;

  void Set(std::string name, std::vector<std::string> value) {
    vars_[std::move(name)] = std::move(value);
  }
  void SetString(std::string name, std::string value) {
    vars_[std::move(name)] = {std::move(value)};
  }
  void Unset(const std::string& name) { vars_.erase(name); }

  // The list value; empty list if unset.
  std::vector<std::string> Get(const std::string& name) const {
    auto it = vars_.find(name);
    return it == vars_.end() ? std::vector<std::string>() : it->second;
  }
  // Elements joined with spaces ($"var in rc).
  std::string GetString(const std::string& name) const;
  bool Has(const std::string& name) const { return vars_.count(name) != 0; }

  // Copy-on-spawn: child processes get a snapshot.
  Env Clone() const { return *this; }

 private:
  std::map<std::string, std::vector<std::string>> vars_;
};

}  // namespace help

#endif  // SRC_PROC_ENV_H_
