#include "src/proc/env.h"

namespace help {

std::string Env::GetString(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return "";
  }
  std::string out;
  for (size_t i = 0; i < it->second.size(); i++) {
    if (i > 0) {
      out += ' ';
    }
    out += it->second[i];
  }
  return out;
}

}  // namespace help
