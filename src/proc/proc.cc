#include "src/proc/proc.h"

#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace help {

namespace {

const char* StateName(ProcState s) {
  switch (s) {
    case ProcState::kRunning:
      return "Running";
    case ProcState::kBroken:
      return "Broken";
    case ProcState::kSleeping:
      return "Sleeping";
  }
  return "Unknown";
}

std::string FormatValues(const std::vector<NamedValue>& vals) {
  std::string out;
  for (size_t i = 0; i < vals.size(); i++) {
    if (i > 0) {
      out += ", ";
    }
    out += StrFormat("%s=0x%llx", vals[i].name.c_str(),
                     static_cast<unsigned long long>(vals[i].value));
  }
  return out;
}

}  // namespace

void ProcTable::Add(ProcImage image, Vfs* vfs) {
  OBS_SPAN("proc.add");
  OBS_COUNT("proc.images", 1);
  int pid = image.pid;
  if (vfs != nullptr) {
    std::string dir = StrFormat("/proc/%d", pid);
    vfs->MkdirAll(dir);
    vfs->WriteFile(dir + "/status",
                   StrFormat("%-10s %-10s %s\n", BasePath(image.program).c_str(),
                             StateName(image.state), image.note.c_str()));
    vfs->WriteFile(dir + "/note", image.note + "\n");
  }
  procs_[pid] = std::move(image);
}

const ProcImage* ProcTable::Find(int pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second;
}

ProcImage* ProcTable::FindMutable(int pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second;
}

std::vector<const ProcImage*> ProcTable::All() const {
  std::vector<const ProcImage*> out;
  for (const auto& [pid, p] : procs_) {
    out.push_back(&p);
  }
  return out;
}

std::vector<const ProcImage*> ProcTable::Broken() const {
  std::vector<const ProcImage*> out;
  for (const auto& [pid, p] : procs_) {
    if (p.state == ProcState::kBroken) {
      out.push_back(&p);
    }
  }
  return out;
}

ProcImage MakePaperCrashImage() {
  ProcImage p;
  p.pid = 176153;
  p.program = "/usr/rob/src/help/help";
  p.srcdir = "/usr/rob/src/help";
  p.state = ProcState::kBroken;
  p.note = "user TLB miss (load or fetch)";
  p.regs = {0x18df4, 0x3f4e8, 0xfb0c, 0x0};
  p.fault_insn = "MOVW 0(R3),R5";
  p.stack = {
      {"strchr", 0x68, "/sys/src/libc/mips/strchr.s", 34, {{"c", 0x3c}, {"s", 0}}, {}},
      {"strlen", 0x1c, "/sys/src/libc/port/strlen.c", 7, {{"s", 0}}, {}},
      {"textinsert",
       0x30,
       "text.c",
       32,
       {{"sel", 1}, {"t", 0x40e60}, {"s", 0}, {"q0", 0xd}, {"full", 1}},
       {}},
      {"errs", 0xe8, "errs.c", 34, {{"s", 0}}, {{"n", 0x3d7cc}}},
      {"Xdie2", 0x14, "exec.c", 252, {}, {{"p", 0x40d88}}},
      {"lookup", 0xc4, "exec.c", 101, {{"s", 0x40be8}}, {}},
      {"execute", 0x50, "exec.c", 207, {{"t", 0x3ebbc}, {"p0", 2}, {"p1", 2}},
       {{"i", 0x1f}, {"n", 0xc5bf}}},
      {"control", 0x430, "ctrl.c", 331, {}, {}},
      {"control",
       0,
       "ctrl.c",
       320,
       {},
       {{"t", 0x3ebbc}, {"op", 0}, {"n", 0x10}, {"p", 0x10}, {"dclick", 0x10}, {"p0", 2},
        {"obut", 0}}},
  };
  p.kstack = {"syssleep+0x24", "sleep+0x68", "trap+0x1fc"};
  return p;
}

std::string AdbStack(const ProcImage& p) {
  std::string out;
  out += "last exception: " + p.note;
  // Strip the "user " prefix adb doesn't print.
  size_t user = out.find("user ");
  if (user != std::string::npos) {
    out.erase(user, 5);
  }
  out += "\n";
  if (p.stack.empty()) {
    return out;
  }
  // Innermost frame: faulting pc with source coordinate and instruction.
  const StackFrame& top = p.stack.front();
  out += StrFormat("%s:%d %s+0x%llx?\t%s\n", top.file.c_str(), top.line, top.func.c_str(),
                   static_cast<unsigned long long>(top.offset), p.fault_insn.c_str());
  // Remaining frames: "callee(args) called from caller+off file:line", with
  // the caller's locals indented beneath (this is the Figure 7 layout).
  for (size_t i = 0; i + 1 < p.stack.size(); i++) {
    const StackFrame& callee = p.stack[i];
    const StackFrame& caller = p.stack[i + 1];
    if (caller.offset != 0) {
      out += StrFormat("%s(%s) called from %s+0x%llx %s:%d\n", callee.func.c_str(),
                       FormatValues(callee.args).c_str(), caller.func.c_str(),
                       static_cast<unsigned long long>(caller.offset), caller.file.c_str(),
                       caller.line);
    } else {
      out += StrFormat("%s(%s) called from %s %s:%d\n", callee.func.c_str(),
                       FormatValues(callee.args).c_str(), caller.func.c_str(),
                       caller.file.c_str(), caller.line);
    }
    for (const NamedValue& local : caller.locals) {
      out += StrFormat("\t%s = 0x%llx\n", local.name.c_str(),
                       static_cast<unsigned long long>(local.value));
    }
  }
  return out;
}

std::string AdbRegs(const ProcImage& p) {
  return StrFormat("pc\t0x%llx\nsp\t0x%llx\nstatus\t0x%llx\nbadvaddr\t0x%llx\n",
                   static_cast<unsigned long long>(p.regs.pc),
                   static_cast<unsigned long long>(p.regs.sp),
                   static_cast<unsigned long long>(p.regs.status),
                   static_cast<unsigned long long>(p.regs.badvaddr));
}

std::string AdbPc(const ProcImage& p) {
  if (p.stack.empty()) {
    return StrFormat("0x%llx\n", static_cast<unsigned long long>(p.regs.pc));
  }
  const StackFrame& top = p.stack.front();
  return StrFormat("0x%llx %s+0x%llx %s:%d\n", static_cast<unsigned long long>(p.regs.pc),
                   top.func.c_str(), static_cast<unsigned long long>(top.offset),
                   top.file.c_str(), top.line);
}

std::string AdbPs(const ProcTable& t) {
  std::string out;
  for (const ProcImage* p : t.All()) {
    out += StrFormat("%8d %-10s %s\n", p->pid, StateName(p->state),
                     BasePath(p->program).c_str());
  }
  return out;
}

std::string AdbBroke(const ProcTable& t) {
  std::string out;
  for (const ProcImage* p : t.Broken()) {
    out += StrFormat("%d %s\n", p->pid, BasePath(p->program).c_str());
  }
  return out;
}

std::string AdbKstack(const ProcImage& p) {
  std::string out;
  for (const std::string& f : p.kstack) {
    out += f + "\n";
  }
  return out;
}

}  // namespace help
