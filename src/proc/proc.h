// Simulated process substrate. The paper's debugging walkthrough relies on a
// Plan 9 property: "a new version of help has crashed and a broken process
// lies about waiting to be examined". We model a process table whose entries
// carry symbolized call stacks, registers and a crash note, and expose them
// at /proc/<pid>/ in the VFS — enough for the /help/db tool scripts to
// package `adb` exactly as the paper describes.
#ifndef SRC_PROC_PROC_H_
#define SRC_PROC_PROC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/fs/vfs.h"

namespace help {

struct NamedValue {
  std::string name;
  uint64_t value = 0;
};

// One activation record. `offset` is the pc offset within `func`; for the
// innermost frame that is the faulting instruction, for outer frames it is
// the call instruction, whose source coordinate is `file:line`.
struct StackFrame {
  std::string func;
  uint64_t offset = 0;
  std::string file;
  int line = 0;
  std::vector<NamedValue> args;    // this function's arguments
  std::vector<NamedValue> locals;  // this function's locals adb prints
};

struct Registers {
  uint64_t pc = 0;
  uint64_t sp = 0;
  uint64_t status = 0;
  uint64_t badvaddr = 0;
};

enum class ProcState { kRunning, kBroken, kSleeping };

struct ProcImage {
  int pid = 0;
  std::string program;  // binary path, e.g. /usr/rob/src/help/help
  std::string srcdir;   // where its sources live (db tool window tag)
  ProcState state = ProcState::kRunning;
  std::string note;     // crash note, e.g. "user TLB miss (load or fetch)"
  Registers regs;
  // Innermost first. frame[0].func is where the pc stopped; its `file:line`
  // is the faulting source coordinate.
  std::vector<StackFrame> stack;
  // Faulting instruction display, e.g. "MOVW 0(R3),R5".
  std::string fault_insn;
  // Kernel stack, for the kstack/nextkstack scripts.
  std::vector<std::string> kstack;
};

class ProcTable {
 public:
  // Adds a process and publishes /proc/<pid>/{status,note} in `vfs`
  // (pass nullptr to skip publication).
  void Add(ProcImage image, Vfs* vfs);

  const ProcImage* Find(int pid) const;
  ProcImage* FindMutable(int pid);
  std::vector<const ProcImage*> All() const;
  std::vector<const ProcImage*> Broken() const;

 private:
  std::map<int, ProcImage> procs_;
};

// Builds the exact crashed-help process from the paper (pid 176153, user TLB
// miss in strchr via strlen ← textinsert ← errs ← Xdie2 ← lookup ← execute ←
// control) and registers it. Used by tests, figures and the debug example.
ProcImage MakePaperCrashImage();

// --- adb: the primitive debugger the db scripts package --------------------

// Formats a stack trace in adb style (Figure 7): innermost frame first with
// the faulting instruction, then "callee(args) called from caller+off file:line"
// lines with caller locals indented beneath.
std::string AdbStack(const ProcImage& p);

// "registers" output: pc/sp/status/badvaddr.
std::string AdbRegs(const ProcImage& p);

// One-line pc report: "0x18df4 strchr+0x68 /sys/src/libc/mips/strchr.s:34".
std::string AdbPc(const ProcImage& p);

// ps-style listing of all processes.
std::string AdbPs(const ProcTable& t);

// pids of broken processes, one per line (the `broke` script).
std::string AdbBroke(const ProcTable& t);

std::string AdbKstack(const ProcImage& p);

}  // namespace help

#endif  // SRC_PROC_PROC_H_
