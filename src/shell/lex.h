// Table-driven character classification for the shell's lexer. The parser
// used to decide "is this a word character?" with a per-character switch over
// sixteen punctuation cases; every byte of every script paid that branch tree
// on each of the several predicates the scanner asks. Following the
// charFlags_ idiom (SNIPPETS.md 1-2), all of the scanner's character classes
// are folded into one 256-entry table of bit flags built once at startup, so
// each predicate is a single indexed load and mask.
#ifndef SRC_SHELL_LEX_H_
#define SRC_SHELL_LEX_H_

#include <cstdint>
#include <string_view>

namespace help {

// One bit per character class the scanner distinguishes. A byte can be in
// several classes ('*' is a word char, a variable char, and a glob char).
enum ShellCharFlag : uint16_t {
  kShBlank = 1 << 0,      // space, tab, \r: skipped between tokens
  kShNewline = 1 << 1,    // \n: line separator (not a blank)
  kShWordChar = 1 << 2,   // may appear inside a bare word
  kShWordStart = 1 << 3,  // may begin a word: word chars plus ' $ ` ^
  kShVarChar = 1 << 4,    // may appear in a $name reference: alnum _ *
  kShNameChar = 1 << 5,   // assignment / loop-variable names: alnum _
  kShGlobChar = 1 << 6,   // * ? [ : triggers glob expansion
  kShSeparator = 1 << 7,  // ; and \n: command separators
  kShComment = 1 << 8,    // #
  kShQuote = 1 << 9,      // '
};

// The flag table. NUL and bytes >= 128 classify as word characters, exactly
// as the old switch's default case did (UTF-8 continuation bytes ride along
// inside words).
class ShellLang {
 public:
  static const ShellLang& Get();

  uint16_t Flags(char c) const { return flags_[static_cast<unsigned char>(c)]; }
  bool Is(char c, uint16_t mask) const { return (Flags(c) & mask) != 0; }

 private:
  ShellLang();
  uint16_t flags_[256];
};

inline bool ShellIs(char c, uint16_t mask) { return ShellLang::Get().Is(c, mask); }

// Does `s` contain any glob metacharacter (*, ?, [)? Shared by the word
// expanders in both evaluators.
bool ShellHasGlobChars(std::string_view s);

}  // namespace help

#endif  // SRC_SHELL_LEX_H_
