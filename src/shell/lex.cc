#include "src/shell/lex.h"

namespace help {

const ShellLang& ShellLang::Get() {
  static const ShellLang* lang = new ShellLang();
  return *lang;
}

ShellLang::ShellLang() {
  for (auto& f : flags_) {
    f = 0;
  }

  // Word characters: everything except rc's metacharacters. This mirrors the
  // old IsWordChar switch, whose default case admitted NUL and high bytes.
  for (int i = 0; i < 256; i++) {
    flags_[i] |= kShWordChar;
  }
  for (unsigned char c : {' ', '\t', '\n', '\r', ';', '|', '{', '}', '<', '>',
                          '\'', '`', '$', '^', '#', '(', ')'}) {
    flags_[c] &= static_cast<uint16_t>(~kShWordChar);
  }

  // Blanks (newline is a separator, never a blank).
  flags_[static_cast<unsigned char>(' ')] |= kShBlank;
  flags_[static_cast<unsigned char>('\t')] |= kShBlank;
  flags_[static_cast<unsigned char>('\r')] |= kShBlank;
  flags_[static_cast<unsigned char>('\n')] |= kShNewline | kShSeparator;
  flags_[static_cast<unsigned char>(';')] |= kShSeparator;
  flags_[static_cast<unsigned char>('#')] |= kShComment;
  flags_[static_cast<unsigned char>('\'')] |= kShQuote;

  // Variable-reference and assignment-name characters.
  for (unsigned char c = '0'; c <= '9'; c++) {
    flags_[c] |= kShVarChar | kShNameChar;
  }
  for (unsigned char c = 'a'; c <= 'z'; c++) {
    flags_[c] |= kShVarChar | kShNameChar;
  }
  for (unsigned char c = 'A'; c <= 'Z'; c++) {
    flags_[c] |= kShVarChar | kShNameChar;
  }
  flags_[static_cast<unsigned char>('_')] |= kShVarChar | kShNameChar;
  flags_[static_cast<unsigned char>('*')] |= kShVarChar;

  // Glob metacharacters.
  flags_[static_cast<unsigned char>('*')] |= kShGlobChar;
  flags_[static_cast<unsigned char>('?')] |= kShGlobChar;
  flags_[static_cast<unsigned char>('[')] |= kShGlobChar;

  // A word can start with a word char or with one of the expansion sigils.
  for (int i = 0; i < 256; i++) {
    if ((flags_[i] & kShWordChar) != 0) {
      flags_[i] |= kShWordStart;
    }
  }
  for (unsigned char c : {'\'', '$', '`', '^'}) {
    flags_[c] |= kShWordStart;
  }
}

bool ShellHasGlobChars(std::string_view s) {
  const ShellLang& lang = ShellLang::Get();
  for (char c : s) {
    if (lang.Is(c, kShGlobChar)) {
      return true;
    }
  }
  return false;
}

}  // namespace help
