// An rc-like shell [Duff90], the command language of help's world. It is
// complete enough to run the paper's `decl` browser script verbatim:
//
//   eval `{help/parse -c}
//   x=`{cat /mnt/help/new/ctl}
//   {
//     echo a
//     echo $dir/^'Close!'
//     help/buf
//   } > /mnt/help/$x/ctl
//   cpp $cppflags $file |
//     help/rcc -w -g -i$id -n$line |
//     sed 1q
//   > /mnt/help/$x/bodyapp
//
// Supported: words with single-quote quoting and ^ concatenation, $var list
// expansion ($*, $1..$9, $#var, $status), `{...} command substitution,
// pipelines, { ... } blocks, ; and newline separators, > >> < redirection,
// name=value and name=(list) assignment, glob expansion against the VFS,
// comments, control flow (if / if not / for / while / switch-case / fn),
// and the builtins cd, eval, exit, echo, ~ (match), ! (negate).
//
// All I/O is in-memory: commands read a stdin string and append to stdout/
// stderr strings. Pipelines run left-to-right, fully materialized — help's
// model (the paper routes command output to the Errors window wholesale)
// never needs streaming concurrency.
#ifndef SRC_SHELL_SHELL_H_
#define SRC_SHELL_SHELL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/vfs.h"
#include "src/proc/env.h"
#include "src/proc/proc.h"

namespace help {

// --- AST --------------------------------------------------------------------

struct ShellScript;

struct WordFrag {
  enum class Kind { kLit, kQuoted, kVar, kBackquote };
  Kind kind = Kind::kLit;
  std::string text;                     // kLit/kQuoted: text; kVar: variable name
  std::shared_ptr<ShellScript> script;  // kBackquote
};

struct Word {
  std::vector<WordFrag> frags;
};

struct Redir {
  enum class Kind { kIn, kOut, kAppend };
  Kind kind;
  Word target;
};

struct CaseClause {
  std::vector<Word> patterns;
  std::shared_ptr<ShellScript> body;
};

struct ShellCmd {
  // A command is a simple command (zero or more leading NAME=value
  // assignments followed by words), a { block }, or one of rc's control
  // structures.
  enum class Kind { kSimple, kBlock, kIf, kIfNot, kFor, kWhile, kSwitch, kFnDef };
  Kind kind = Kind::kSimple;

  std::vector<std::pair<std::string, std::vector<Word>>> assigns;
  std::vector<Word> words;
  std::shared_ptr<ShellScript> block;     // kBlock
  std::vector<Redir> redirs;

  // Control flow.
  std::shared_ptr<ShellScript> cond;      // kIf/kWhile condition
  std::shared_ptr<ShellScript> body;      // kIf/kIfNot/kFor/kWhile body, kFnDef body
  std::string var;                        // kFor loop variable, kFnDef name
  std::vector<Word> for_list;             // kFor values ($* when empty and !for_in)
  bool for_in = false;                    // kFor had an explicit `in` list
  Word subject;                           // kSwitch subject
  std::vector<CaseClause> cases;          // kSwitch clauses
};

struct Pipeline {
  std::vector<ShellCmd> cmds;
};

struct ShellScript {
  std::vector<Pipeline> lines;
};

// Parses a script; reports rc-style syntax errors.
Result<std::shared_ptr<ShellScript>> ParseShell(std::string_view src);

// --- Execution --------------------------------------------------------------

struct Io {
  std::string in;              // stdin contents
  std::string* out = nullptr;  // appended to
  std::string* err = nullptr;  // appended to
};

class CommandRegistry;

// Everything a running command can touch.
struct ExecContext {
  Vfs* vfs = nullptr;
  CommandRegistry* registry = nullptr;
  ProcTable* procs = nullptr;  // may be null where irrelevant
  Env* env = nullptr;          // the invoking shell's environment
  std::string cwd = "/";
  int depth = 0;  // script-recursion guard
};

// A native command: argv[0] is the resolved path it was invoked as.
using NativeCommand =
    std::function<int(ExecContext& ctx, const std::vector<std::string>& argv, Io& io)>;

// Shell functions (rc `fn name { ... }`), stored in the environment so they
// clone into subshells the way variables do.
class FunctionTable {
 public:
  void Define(std::string name, std::shared_ptr<ShellScript> body) {
    fns_[std::move(name)] = std::move(body);
  }
  std::shared_ptr<ShellScript> Find(const std::string& name) const {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, std::shared_ptr<ShellScript>> fns_;
};

// Maps VFS paths of executables to native implementations. Files not in the
// registry but present in the VFS execute as shell scripts (that is how the
// whole /help tool tree works).
class CommandRegistry {
 public:
  // Registers `fn` at `path`, creating a marker file in `vfs` so the binary
  // is visible to ls and to help's directory listings.
  void Register(Vfs* vfs, std::string_view path, NativeCommand fn);
  const NativeCommand* Find(std::string_view path) const;

 private:
  std::map<std::string, NativeCommand, std::less<>> commands_;
};

class Shell {
 public:
  Shell(Vfs* vfs, CommandRegistry* registry, ProcTable* procs)
      : vfs_(vfs), registry_(registry), procs_(procs) {}

  // Runs `src` with positional arguments `args` ($1.., $*) in `env`+`cwd`.
  // Returns the script's exit status, or an error for syntax failures.
  Result<int> Run(std::string_view src, Env* env, std::string cwd,
                  const std::vector<std::string>& args, Io& io, int depth = 0);

  // Executes an already-expanded argv (no shell syntax) — the path help's
  // core uses to run external commands. Resolution order: explicit slash →
  // as-is relative to cwd; otherwise cwd, then /bin.
  int RunArgv(ExecContext& ctx, const std::vector<std::string>& argv, Io& io);

  // Resolves a command name to a VFS path using the rules above; empty if
  // not found anywhere.
  std::string ResolveCommand(std::string_view name, std::string_view cwd) const;

  Vfs* vfs() { return vfs_; }
  CommandRegistry* registry() { return registry_; }
  ProcTable* procs() { return procs_; }

  // Process-wide A/B toggle between the bytecode VM (the default) and the
  // original tree-walking evaluator. The tree-walker is kept as the oracle
  // for differential testing (tests/shell_property_test.cc) and as an escape
  // hatch; both produce bit-identical observable behavior.
  static void SetVmEnabled(bool on);
  static bool VmEnabled();

 private:
  Vfs* vfs_;
  CommandRegistry* registry_;
  ProcTable* procs_;
};

// Glob matching (exported for tests): does `name` match `pattern`?
// Supports *, ?, and [ranges].
bool GlobMatch(std::string_view pattern, std::string_view name);

// Expands glob `pattern` (absolute or cwd-relative) against the VFS; returns
// matches in sorted order, or the pattern itself when nothing matches (rc's
// behaviour).
std::vector<std::string> GlobExpand(const Vfs& vfs, std::string_view cwd,
                                    std::string_view pattern);

}  // namespace help

#endif  // SRC_SHELL_SHELL_H_
