// The shell's compile stage: lowers a parsed ShellScript to a compact
// bytecode Program executed by the VM in src/shell/vm.h. The tree-walking
// evaluator in eval.cc re-traverses the AST (and, upstream, re-parses the
// source) on every execution; a Program is built once, cached process-wide
// (src/shell/scriptcache.h), and replayed as a flat instruction stream.
//
// Execution model the opcodes assume (see vm.cc for the interpreter):
//   - an operand stack of rc values — lists of strings — assembled by the
//     word ops (push/concat/glob/collect);
//   - one script body per Chunk; control flow (if/while/for/blocks/case
//     bodies, backquote substitutions, fn bodies) references sub-chunks by
//     index, exactly mirroring rc's "a body is a script" structure;
//   - pipeline/stage/command ops that reconfigure the in-memory Io plumbing
//     the way eval.cc's RunPipeline/RunCmd do, so behavior stays
//     bit-identical with the tree-walker.
#ifndef SRC_SHELL_COMPILE_H_
#define SRC_SHELL_COMPILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/shell/shell.h"

namespace help {

enum class ShOp : uint8_t {
  // Word assembly (operand stack of string lists).
  kPushLit,       // a: string index       push {str[a]}
  kPushVar,       // a: string index       push $name (the env list)
  kPushVarCount,  // a: string index       push {len($name)}  ($#name)
  kBackquote,     // a: chunk index        run chunk, push tokenized stdout
  kConcat,        //                       pop b, a; push rc-distributed a^b
  kGlob,          //                       pop; glob-expand unquoted fields
  kCollect,       // a: n                  pop n lists; push their concatenation
  // Assignments and simple commands.
  kAssignScoped,  // a: string index       pop value; save old value; set
  kAssignPerm,    // a: string index       pop value; set
  kRunSimple,     // a: #scoped saves      pop argv; dispatch; restore saves
  kSetStatus,     // a: value              status register := a
  // Pipelines, stages, and redirections.
  kPipelineBegin,  //                      carry := copy of current stdin
  kStageBegin,     // a: 1 if last stage   stage io over carry
  kStageEnd,       //                      carry := stage buffer
  kPipelineEnd,    //                      set $status; stop chunk if exited
  kCmdBegin,       //                      open a redirection frame
  kRedir,          // a: Redir::Kind, b: fail pc   pop single-word target
  kCmdEnd,         //                      flush > / >> target, close frame
  // Control flow.
  kRunChunk,       // a: chunk index       blocks and case bodies
  kIf,             // a: cond chunk, b: body chunk
  kIfNot,          // a: body chunk
  kWhile,          // a: cond chunk, b: body chunk
  kFor,            // a: string index (var), b: body chunk; pop value list
  kSwitchSubject,  //                      pop; latch joined subject
  kCaseMatch,      // a: target pc         pop patterns; jump on glob match
  kJump,           // a: target pc
  kFnDef,          // a: string index (name), b: fn entry index
};

struct ShInstr {
  ShOp op;
  uint32_t a = 0;
  uint32_t b = 0;
};

// One compiled script body. Chunk 0 of a Program is the outermost script.
struct Chunk {
  std::vector<ShInstr> code;
};

// An immutable compiled script: chunks plus the constant pool (strings, fn
// bodies). Programs are shared across threads via shared_ptr<const Program>
// from the script cache and carry no mutable state.
class Program {
 public:
  const Chunk& chunk(uint32_t i) const { return chunks_[i]; }
  const std::string& str(uint32_t i) const { return strings_[i]; }
  size_t chunk_count() const { return chunks_.size(); }

  // fn bodies keep their AST so definitions interoperate with the
  // tree-walking evaluator's FunctionTable, plus the pre-compiled chunk the
  // VM jumps to when a function defined by this program is called.
  struct Fn {
    std::shared_ptr<ShellScript> ast;
    uint32_t chunk = 0;
  };
  const Fn& fn(uint32_t i) const { return fns_[i]; }
  // nullptr when `body` was not compiled as part of this program (a function
  // defined by another script or by the tree-walker).
  const Fn* FindFn(const ShellScript* body) const;

  size_t TotalOps() const;
  // Human-readable listing of every chunk, for debugging and tests.
  std::string Disassemble() const;

 private:
  friend class ShellCompiler;
  std::vector<Chunk> chunks_;
  std::vector<std::string> strings_;
  std::vector<Fn> fns_;
  std::map<const ShellScript*, uint32_t> fn_index_;
};

// Lowers a parsed script. Never fails: the parser has already validated the
// tree (the compiler only reshapes it).
std::shared_ptr<const Program> CompileShell(const ShellScript& script);

// Parse + compile in one step; bumps the shell.compile counter.
Result<std::shared_ptr<const Program>> CompileShellSource(std::string_view src);

}  // namespace help

#endif  // SRC_SHELL_COMPILE_H_
