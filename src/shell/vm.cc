// The bytecode interpreter. Every case here mirrors a specific behavior of
// the tree-walking evaluator in eval.cc — including its quirks (the scoped
// assignment that leaks when argv expands to nothing, forward-order restore
// of scoped saves, the lenient empty-list concatenation) — because the
// property suite diffs the two evaluators on randomized scripts.
#include "src/shell/vm.h"

#include "src/base/strings.h"
#include "src/obs/trace.h"
#include "src/shell/lex.h"
#include "src/shell/scriptcache.h"

namespace help {

Result<int> Vm::Run(const Program& prog, Io& io) {
  auto r = RunChunk(prog, 0, io);
  if (ops_ != 0) {
    OBS_COUNT("shell.vm_ops", ops_);
    ops_ = 0;
  }
  return r;
}

Result<int> Vm::RunChunk(const Program& prog, uint32_t ci, Io& io) {
  // The tree-walker's RunScript checks the exit flag before every line, so a
  // script entered after `exit` runs nothing and reports status 0.
  if (exited_) {
    return 0;
  }
  const std::vector<ShInstr>& code = prog.chunk(ci).code;

  // All interpreter state is chunk-local; nested RunChunk calls (blocks,
  // backquotes, control-flow bodies) get their own frame, exactly like the
  // tree-walker's nested RunScript activations.
  std::vector<std::vector<std::string>> stack;  // rc values: lists of strings
  std::vector<std::pair<std::string, std::vector<std::string>>> saves;
  std::string switch_value;
  int reg = 0;            // status of the most recent command
  int script_status = 0;  // status of the last completed line

  // Io plumbing. A pipeline stage writes to stage_buf which becomes the next
  // stage's stdin; a redirection frame runs the command over a copy of the
  // current io with stdout swapped to redirect_buf.
  std::string carry;
  bool stage_active = false;
  Io stage_io;
  std::string stage_buf;
  bool cmd_active = false;
  Io cmd_io;
  std::string redirect_buf;
  bool has_out = false;
  bool append = false;
  std::string out_path;

  auto cur = [&]() -> Io& { return cmd_active ? cmd_io : stage_active ? stage_io : io; };
  auto pop = [&]() {
    std::vector<std::string> v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  size_t pc = 0;
  while (pc < code.size()) {
    const ShInstr& in = code[pc++];
    ops_++;
    switch (in.op) {
      case ShOp::kPushLit:
        stack.push_back({prog.str(in.a)});
        break;
      case ShOp::kPushVar:
        stack.push_back(env_->Get(prog.str(in.a)));
        break;
      case ShOp::kPushVarCount:
        stack.push_back({StrFormat("%zu", env_->Get(prog.str(in.a)).size())});
        break;
      case ShOp::kBackquote: {
        std::string captured;
        std::string sub_err;  // command substitution swallows stderr
        Io sub;
        sub.out = &captured;
        sub.err = &sub_err;
        auto r = RunChunk(prog, in.a, sub);
        if (!r.ok()) {
          return r.status();
        }
        stack.push_back(Tokenize(captured));
        break;
      }
      case ShOp::kConcat: {
        std::vector<std::string> part = pop();
        std::vector<std::string> acc = pop();
        if (part.empty() || acc.empty()) {
          // Lenient empty-side concatenation, as in ExpandWord.
          if (acc.empty()) {
            acc = std::move(part);
          }
          stack.push_back(std::move(acc));
          break;
        }
        std::vector<std::string> merged;
        if (acc.size() == 1) {
          for (const std::string& p : part) {
            merged.push_back(acc[0] + p);
          }
        } else if (part.size() == 1) {
          for (const std::string& a : acc) {
            merged.push_back(a + part[0]);
          }
        } else if (acc.size() == part.size()) {
          for (size_t i = 0; i < acc.size(); i++) {
            merged.push_back(acc[i] + part[i]);
          }
        } else {
          return Status::Error("rc: mismatched list lengths in concatenation");
        }
        stack.push_back(std::move(merged));
        break;
      }
      case ShOp::kGlob: {
        std::vector<std::string> fields = pop();
        std::vector<std::string> out;
        for (std::string& field : fields) {
          if (ShellHasGlobChars(field)) {
            for (std::string& m : GlobExpand(*shell_->vfs(), cwd_, field)) {
              out.push_back(std::move(m));
            }
          } else {
            out.push_back(std::move(field));
          }
        }
        stack.push_back(std::move(out));
        break;
      }
      case ShOp::kCollect: {
        std::vector<std::string> out;
        size_t base = stack.size() - in.a;
        for (size_t i = base; i < stack.size(); i++) {
          for (std::string& s : stack[i]) {
            out.push_back(std::move(s));
          }
        }
        stack.resize(base);
        stack.push_back(std::move(out));
        break;
      }
      case ShOp::kAssignScoped: {
        std::vector<std::string> value = pop();
        const std::string& name = prog.str(in.a);
        saves.emplace_back(name, env_->Get(name));
        env_->Set(name, std::move(value));
        break;
      }
      case ShOp::kAssignPerm:
        env_->Set(prog.str(in.a), pop());
        break;
      case ShOp::kRunSimple: {
        std::vector<std::string> argv = pop();
        if (argv.empty()) {
          // The tree-walker returns before restoring scoped saves when the
          // argv expands away; the assignments leak, and so must ours.
          saves.clear();
          reg = 0;
          break;
        }
        auto r = Dispatch(prog, argv, cur());
        // Scoped saves restore even when dispatch failed, as in RunCmdCore.
        for (auto& [name, value] : saves) {
          env_->Set(name, std::move(value));
        }
        saves.clear();
        if (!r.ok()) {
          return r;
        }
        reg = r.value();
        break;
      }
      case ShOp::kSetStatus:
        reg = static_cast<int>(in.a);
        break;
      case ShOp::kPipelineBegin:
        carry = io.in;
        break;
      case ShOp::kStageBegin:
        stage_io.in = std::move(carry);
        carry.clear();
        stage_buf.clear();
        stage_io.out = in.a != 0 ? io.out : &stage_buf;
        stage_io.err = io.err;
        stage_active = true;
        break;
      case ShOp::kStageEnd:
        carry = std::move(stage_buf);
        stage_buf.clear();
        stage_active = false;
        break;
      case ShOp::kPipelineEnd:
        script_status = reg;
        env_->SetString("status", StrFormat("%d", script_status));
        if (exited_) {
          return script_status;
        }
        break;
      case ShOp::kCmdBegin:
        cmd_io = cur();
        redirect_buf.clear();
        has_out = false;
        append = false;
        out_path.clear();
        cmd_active = true;
        break;
      case ShOp::kRedir: {
        std::vector<std::string> target = pop();
        if (target.size() != 1) {
          return Status::Error("rc: redirection target is not a single word");
        }
        std::string path = JoinPath(cwd_, target[0]);
        switch (static_cast<Redir::Kind>(in.a)) {
          case Redir::Kind::kIn: {
            auto data = shell_->vfs()->ReadFile(path);
            if (!data.ok()) {
              *cmd_io.err += data.message() + "\n";
              reg = 1;
              cmd_active = false;  // skip the core and any `>` flush
              pc = in.b;
              break;
            }
            cmd_io.in = data.take();
            break;
          }
          case Redir::Kind::kOut:
            has_out = true;
            append = false;
            out_path = path;
            cmd_io.out = &redirect_buf;
            break;
          case Redir::Kind::kAppend:
            has_out = true;
            append = true;
            out_path = path;
            cmd_io.out = &redirect_buf;
            break;
        }
        break;
      }
      case ShOp::kCmdEnd:
        cmd_active = false;
        if (has_out) {
          Status ws = append ? shell_->vfs()->AppendFile(out_path, redirect_buf)
                             : shell_->vfs()->WriteFile(out_path, redirect_buf);
          if (!ws.ok()) {
            *cur().err += ws.message() + "\n";
            reg = 1;
          }
        }
        break;
      case ShOp::kRunChunk: {
        auto r = RunChunk(prog, in.a, cur());
        if (!r.ok()) {
          return r;
        }
        reg = r.value();
        break;
      }
      case ShOp::kIf: {
        Io cio = cur();  // condition shares out/err but owns a copy of stdin
        auto c = RunChunk(prog, in.a, cio);
        if (!c.ok()) {
          return c;
        }
        last_if_taken_ = c.value() == 0;
        if (last_if_taken_) {
          auto b = RunChunk(prog, in.b, cur());
          if (!b.ok()) {
            return b;
          }
          reg = b.value();
        } else {
          reg = 0;
        }
        break;
      }
      case ShOp::kIfNot: {
        if (last_if_taken_) {
          reg = 0;
          break;
        }
        auto b = RunChunk(prog, in.a, cur());
        if (!b.ok()) {
          return b;
        }
        reg = b.value();
        break;
      }
      case ShOp::kWhile: {
        int status = 0;
        bool done = false;
        for (int guard = 0; guard < 100000; guard++) {
          Io cio = cur();
          auto c = RunChunk(prog, in.a, cio);
          if (!c.ok()) {
            return c;
          }
          if (c.value() != 0 || exited_) {
            done = true;
            break;
          }
          auto b = RunChunk(prog, in.b, cur());
          if (!b.ok()) {
            return b;
          }
          status = b.value();
        }
        if (!done) {
          return Status::Error("rc: while loop ran away");
        }
        reg = status;
        break;
      }
      case ShOp::kFor: {
        std::vector<std::string> values = pop();
        int status = 0;
        for (const std::string& value : values) {
          env_->SetString(prog.str(in.a), value);
          auto b = RunChunk(prog, in.b, cur());
          if (!b.ok()) {
            return b;
          }
          status = b.value();
          if (exited_) {
            break;
          }
        }
        reg = status;
        break;
      }
      case ShOp::kSwitchSubject:
        switch_value = Join(pop(), " ");
        break;
      case ShOp::kCaseMatch: {
        std::vector<std::string> pats = pop();
        for (const std::string& pat : pats) {
          if (GlobMatch(pat, switch_value)) {
            pc = in.a;
            break;
          }
        }
        break;
      }
      case ShOp::kJump:
        pc = in.a;
        break;
      case ShOp::kFnDef: {
        // Copy-on-write function table, as in the tree-walker's kFnDef.
        auto table = std::static_pointer_cast<FunctionTable>(env_->ext);
        auto copy = table != nullptr ? std::make_shared<FunctionTable>(*table)
                                     : std::make_shared<FunctionTable>();
        copy->Define(prog.str(in.a), prog.fn(in.b).ast);
        env_->ext = copy;
        reg = 0;
        break;
      }
    }
  }
  return script_status;
}

Result<int> Vm::Dispatch(const Program& prog, std::vector<std::string>& argv, Io& io) {
  const std::string& name = argv[0];
  if (name == "!") {
    if (argv.size() < 2) {
      return 1;
    }
    std::vector<std::string> rest(argv.begin() + 1, argv.end());
    auto r = Dispatch(prog, rest, io);
    if (!r.ok()) {
      return r;
    }
    return r.value() == 0 ? 1 : 0;
  }
  if (name == "~") {
    if (argv.size() < 2) {
      return 1;
    }
    for (size_t i = 2; i < argv.size(); i++) {
      if (GlobMatch(argv[i], argv[1])) {
        return 0;
      }
    }
    return 1;
  }
  if (auto table = std::static_pointer_cast<FunctionTable>(env_->ext)) {
    if (auto fn = table->Find(name)) {
      return CallFunction(prog, fn, argv, io);
    }
  }
  if (name == "cd") {
    if (argv.size() > 1) {
      std::string to = JoinPath(cwd_, argv[1]);
      auto node = shell_->vfs()->Walk(to);
      if (!node.ok() || !node.value()->dir()) {
        *io.err += "cd: " + to + ": bad directory\n";
        return 1;
      }
      cwd_ = to;
    } else {
      cwd_ = "/";
    }
    return 0;
  }
  if (name == "echo") {
    std::string line;
    size_t start = 1;
    bool nl = true;
    if (argv.size() > 1 && argv[1] == "-n") {
      nl = false;
      start = 2;
    }
    for (size_t i = start; i < argv.size(); i++) {
      if (i > start) {
        line += ' ';
      }
      line += argv[i];
    }
    if (nl) {
      line += '\n';
    }
    *io.out += line;
    return 0;
  }
  if (name == "eval") {
    std::string src;
    for (size_t i = 1; i < argv.size(); i++) {
      if (i > 1) {
        src += ' ';
      }
      src += argv[i];
    }
    // eval'd strings go through the compile cache too — `eval `{help/parse
    // -c}` re-runs the same text on every browse.
    auto compiled = ShellScriptCache::Global().Get(src);
    if (!compiled.ok()) {
      *io.err += compiled.message() + "\n";
      return 1;
    }
    std::shared_ptr<const Program> p = compiled.take();
    return RunChunk(*p, 0, io);
  }
  if (name == "exit") {
    exited_ = true;
    return argv.size() > 1 ? static_cast<int>(ParseInt(argv[1])) : 0;
  }
  ExecContext ctx;
  ctx.vfs = shell_->vfs();
  ctx.registry = shell_->registry();
  ctx.procs = shell_->procs();
  ctx.env = env_;
  ctx.cwd = cwd_;
  ctx.depth = depth_;
  return shell_->RunArgv(ctx, argv, io);
}

Result<int> Vm::CallFunction(const Program& prog, const std::shared_ptr<ShellScript>& body,
                             const std::vector<std::string>& argv, Io& io) {
  std::vector<std::string> saved_star = env_->Get("*");
  std::vector<std::vector<std::string>> saved_pos;
  for (int i = 1; i <= 9; i++) {
    saved_pos.push_back(env_->Get(StrFormat("%d", i)));
  }
  std::vector<std::string> args(argv.begin() + 1, argv.end());
  env_->Set("*", args);
  for (size_t i = 0; i < 9; i++) {
    if (i < args.size()) {
      env_->SetString(StrFormat("%zu", i + 1), args[i]);
    } else {
      env_->Unset(StrFormat("%zu", i + 1));
    }
  }

  Result<int> r = [&]() -> Result<int> {
    if (const Program::Fn* f = prog.FindFn(body.get())) {
      // Defined by the running program: jump straight to its compiled chunk.
      return RunChunk(prog, f->chunk, io);
    }
    // Defined elsewhere (an eval'd string, a parent shell, the tree-walker):
    // compile on first call and memoize for the rest of this run.
    auto it = foreign_fns_.find(body.get());
    std::shared_ptr<const Program> fp;
    if (it != foreign_fns_.end()) {
      fp = it->second.second;
    } else {
      fp = CompileShell(*body);
      foreign_fns_[body.get()] = {body, fp};
    }
    return RunChunk(*fp, 0, io);
  }();

  env_->Set("*", std::move(saved_star));
  for (int i = 1; i <= 9; i++) {
    env_->Set(StrFormat("%d", i), std::move(saved_pos[static_cast<size_t>(i - 1)]));
  }
  return r;
}

}  // namespace help
