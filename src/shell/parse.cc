// Shell parser: recursive descent over a table-driven scanner. Character
// classes come from the ShellLang flag table (src/shell/lex.h) instead of
// per-character switches, mirroring rc's grammar closely enough for the tool
// scripts in /help.
#include "src/shell/lex.h"
#include "src/shell/shell.h"

namespace help {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  Result<std::shared_ptr<ShellScript>> Parse() {
    auto script = ParseScript(/*in_block=*/false);
    if (!script.ok()) {
      return script;
    }
    if (!AtEnd()) {
      return Err("unexpected '" + std::string(1, Peek()) + "'");
    }
    return script;
  }

 private:
  // --- scanning helpers ---
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char PeekAt(size_t k) const { return pos_ + k < src_.size() ? src_[pos_ + k] : '\0'; }
  void Advance() { pos_++; }

  void SkipBlanks() {  // spaces/tabs and comments, not newlines
    while (!AtEnd()) {
      uint16_t f = ShellLang::Get().Flags(Peek());
      if ((f & kShBlank) != 0) {
        Advance();
      } else if ((f & kShComment) != 0) {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else {
        break;
      }
    }
  }

  void SkipBlanksAndNewlines() {
    while (true) {
      SkipBlanks();
      if (!AtEnd() && Peek() == '\n') {
        Advance();
      } else {
        break;
      }
    }
  }

  Status Err(std::string msg) const { return Status::Error("rc: " + std::move(msg)); }

  // --- grammar ---

  Result<std::shared_ptr<ShellScript>> ParseScript(bool in_block) {
    auto script = std::make_shared<ShellScript>();
    while (true) {
      SkipBlanksAndNewlines();
      if (AtEnd()) {
        if (in_block) {
          return Err("missing '}'");
        }
        break;
      }
      if (Peek() == '}') {
        if (!in_block) {
          return Err("unexpected '}'");
        }
        break;  // caller consumes
      }
      auto line = ParsePipeline();
      if (!line.ok()) {
        return line.status();
      }
      script->lines.push_back(line.take());
      SkipBlanks();
      if (!AtEnd() && (Peek() == '\n' || Peek() == ';')) {
        Advance();
      }
    }
    return script;
  }

  Result<Pipeline> ParsePipeline() {
    Pipeline p;
    while (true) {
      auto cmd = ParseCmd();
      if (!cmd.ok()) {
        return cmd.status();
      }
      p.cmds.push_back(cmd.take());
      SkipBlanks();
      if (!AtEnd() && Peek() == '|') {
        Advance();
        SkipBlanksAndNewlines();  // a pipe at end of line continues it
        continue;
      }
      break;
    }
    return p;
  }

  // True when the upcoming bare word is exactly `kw` (a control keyword in
  // command position).
  bool AtKeyword(std::string_view kw) {
    size_t k = 0;
    for (; k < kw.size(); k++) {
      if (PeekAt(k) != kw[k]) {
        return false;
      }
    }
    char after = PeekAt(k);
    return !ShellIs(after, kShWordChar) || after == '\0';
  }

  // Parses '(' script ')' — the condition of if/while.
  Result<std::shared_ptr<ShellScript>> ParseParenScript() {
    SkipBlanks();
    if (AtEnd() || Peek() != '(') {
      return Err("expected '('");
    }
    Advance();
    auto script = std::make_shared<ShellScript>();
    while (true) {
      SkipBlanksAndNewlines();
      if (AtEnd()) {
        return Err("missing ')'");
      }
      if (Peek() == ')') {
        Advance();
        break;
      }
      auto line = ParsePipeline();
      if (!line.ok()) {
        return line.status();
      }
      script->lines.push_back(line.take());
      SkipBlanks();
      if (!AtEnd() && (Peek() == ';' || Peek() == '\n')) {
        Advance();
      }
    }
    return script;
  }

  // Parses the body of a control structure: a single command (possibly a
  // block or another control structure), wrapped as a one-line script.
  Result<std::shared_ptr<ShellScript>> ParseBodyCmd() {
    SkipBlanksAndNewlines();
    auto pipeline = ParsePipeline();
    if (!pipeline.ok()) {
      return pipeline.status();
    }
    auto script = std::make_shared<ShellScript>();
    script->lines.push_back(pipeline.take());
    return script;
  }

  Result<ShellCmd> ParseControl() {
    ShellCmd cmd;
    if (AtKeyword("if")) {
      pos_ += 2;
      SkipBlanks();
      if (AtKeyword("not")) {
        pos_ += 3;
        cmd.kind = ShellCmd::Kind::kIfNot;
        auto body = ParseBodyCmd();
        if (!body.ok()) {
          return body.status();
        }
        cmd.body = body.take();
        return cmd;
      }
      cmd.kind = ShellCmd::Kind::kIf;
      auto cond = ParseParenScript();
      if (!cond.ok()) {
        return cond.status();
      }
      cmd.cond = cond.take();
      auto body = ParseBodyCmd();
      if (!body.ok()) {
        return body.status();
      }
      cmd.body = body.take();
      return cmd;
    }
    if (AtKeyword("while")) {
      pos_ += 5;
      cmd.kind = ShellCmd::Kind::kWhile;
      auto cond = ParseParenScript();
      if (!cond.ok()) {
        return cond.status();
      }
      cmd.cond = cond.take();
      auto body = ParseBodyCmd();
      if (!body.ok()) {
        return body.status();
      }
      cmd.body = body.take();
      return cmd;
    }
    if (AtKeyword("for")) {
      pos_ += 3;
      cmd.kind = ShellCmd::Kind::kFor;
      SkipBlanks();
      if (AtEnd() || Peek() != '(') {
        return Err("for: expected '('");
      }
      Advance();
      SkipBlanks();
      std::string var;
      while (!AtEnd() && ShellIs(Peek(), kShNameChar)) {
        var.push_back(Peek());
        Advance();
      }
      if (var.empty()) {
        return Err("for: missing variable");
      }
      cmd.var = var;
      SkipBlanks();
      if (AtKeyword("in")) {
        pos_ += 2;
        cmd.for_in = true;
        while (true) {
          SkipBlanks();
          if (AtEnd()) {
            return Err("for: missing ')'");
          }
          if (Peek() == ')') {
            break;
          }
          auto w = ParseWord();
          if (!w.ok()) {
            return w.status();
          }
          cmd.for_list.push_back(w.take());
        }
      }
      SkipBlanks();
      if (AtEnd() || Peek() != ')') {
        return Err("for: missing ')'");
      }
      Advance();
      auto body = ParseBodyCmd();
      if (!body.ok()) {
        return body.status();
      }
      cmd.body = body.take();
      return cmd;
    }
    if (AtKeyword("switch")) {
      pos_ += 6;
      cmd.kind = ShellCmd::Kind::kSwitch;
      SkipBlanks();
      if (AtEnd() || Peek() != '(') {
        return Err("switch: expected '('");
      }
      Advance();
      SkipBlanks();
      auto subject = ParseWord();
      if (!subject.ok()) {
        return subject.status();
      }
      cmd.subject = subject.take();
      SkipBlanks();
      if (AtEnd() || Peek() != ')') {
        return Err("switch: missing ')'");
      }
      Advance();
      SkipBlanksAndNewlines();
      if (AtEnd() || Peek() != '{') {
        return Err("switch: expected '{'");
      }
      Advance();
      // Clauses: `case pat...` followed by commands until the next case/'}'.
      while (true) {
        SkipBlanksAndNewlines();
        if (AtEnd()) {
          return Err("switch: missing '}'");
        }
        if (Peek() == '}') {
          Advance();
          break;
        }
        if (!AtKeyword("case")) {
          return Err("switch: expected 'case'");
        }
        pos_ += 4;
        CaseClause clause;
        while (true) {
          SkipBlanks();
          if (AtEnd()) {
            return Err("switch: unterminated case");
          }
          if (Peek() == '\n' || Peek() == ';') {
            Advance();
            break;
          }
          auto w = ParseWord();
          if (!w.ok()) {
            return w.status();
          }
          clause.patterns.push_back(w.take());
        }
        clause.body = std::make_shared<ShellScript>();
        while (true) {
          SkipBlanksAndNewlines();
          if (AtEnd() || Peek() == '}' || AtKeyword("case")) {
            break;
          }
          auto line = ParsePipeline();
          if (!line.ok()) {
            return line.status();
          }
          clause.body->lines.push_back(line.take());
          SkipBlanks();
          if (!AtEnd() && (Peek() == '\n' || Peek() == ';')) {
            Advance();
          }
        }
        cmd.cases.push_back(std::move(clause));
      }
      return cmd;
    }
    if (AtKeyword("fn")) {
      pos_ += 2;
      cmd.kind = ShellCmd::Kind::kFnDef;
      SkipBlanks();
      std::string name;
      while (!AtEnd() && ShellIs(Peek(), kShWordChar)) {
        name.push_back(Peek());
        Advance();
      }
      if (name.empty()) {
        return Err("fn: missing name");
      }
      cmd.var = name;
      SkipBlanksAndNewlines();
      if (AtEnd() || Peek() != '{') {
        return Err("fn: expected '{'");
      }
      Advance();
      auto body = ParseScript(/*in_block=*/true);
      if (!body.ok()) {
        return body.status();
      }
      if (AtEnd() || Peek() != '}') {
        return Err("fn: missing '}'");
      }
      Advance();
      cmd.body = body.take();
      return cmd;
    }
    return Err("not a control structure");
  }

  bool AtControlKeyword() {
    return AtKeyword("if") || AtKeyword("for") || AtKeyword("while") ||
           AtKeyword("switch") || AtKeyword("fn");
  }

  Result<ShellCmd> ParseCmd() {
    ShellCmd cmd;
    SkipBlanks();
    if (AtEnd()) {
      return Err("missing command");
    }
    if (AtControlKeyword()) {
      return ParseControl();
    }
    if (Peek() == '{') {
      Advance();
      auto block = ParseScript(/*in_block=*/true);
      if (!block.ok()) {
        return block.status();
      }
      if (AtEnd() || Peek() != '}') {
        return Err("missing '}'");
      }
      Advance();
      cmd.block = block.take();
    } else {
      // Leading assignments: NAME '=' with no intervening space, repeated.
      while (true) {
        SkipBlanks();
        size_t save = pos_;
        std::string name;
        while (!AtEnd() && ShellIs(Peek(), kShNameChar)) {
          name.push_back(Peek());
          Advance();
        }
        if (name.empty() || AtEnd() || Peek() != '=') {
          pos_ = save;
          break;
        }
        Advance();  // '='
        std::vector<Word> value;
        if (!AtEnd() && Peek() == '(') {
          // rc list literal: name=(w1 w2 ...).
          Advance();
          while (true) {
            SkipBlanks();
            if (AtEnd()) {
              return Err("missing ')' in list");
            }
            if (Peek() == ')') {
              Advance();
              break;
            }
            auto v = ParseWord();
            if (!v.ok()) {
              return v.status();
            }
            value.push_back(v.take());
          }
        } else if (!AtEnd() && IsWordStart(Peek())) {
          auto v = ParseWord();
          if (!v.ok()) {
            return v.status();
          }
          value.push_back(v.take());
        }
        cmd.assigns.emplace_back(std::move(name), std::move(value));
      }
      while (true) {
        SkipBlanks();
        if (AtEnd() || !IsWordStart(Peek())) {
          break;
        }
        auto word = ParseWord();
        if (!word.ok()) {
          return word.status();
        }
        cmd.words.push_back(word.take());
      }
      if (cmd.words.empty() && cmd.assigns.empty()) {
        return Err(AtEnd() ? "missing command" : std::string("unexpected '") + Peek() + "'");
      }
    }
    if (cmd.block != nullptr) {
      cmd.kind = ShellCmd::Kind::kBlock;
    }
    // Redirections after the command or block.
    while (true) {
      SkipBlanks();
      if (AtEnd()) {
        break;
      }
      Redir::Kind kind;
      if (Peek() == '>') {
        Advance();
        if (!AtEnd() && Peek() == '>') {
          Advance();
          kind = Redir::Kind::kAppend;
        } else {
          kind = Redir::Kind::kOut;
        }
      } else if (Peek() == '<') {
        Advance();
        kind = Redir::Kind::kIn;
      } else {
        break;
      }
      SkipBlanks();
      if (AtEnd() || !IsWordStart(Peek())) {
        return Err("missing redirection target");
      }
      auto target = ParseWord();
      if (!target.ok()) {
        return target.status();
      }
      cmd.redirs.push_back({kind, target.take()});
    }
    return cmd;
  }

  static bool IsWordStart(char c) { return ShellIs(c, kShWordStart); }

  Result<Word> ParseWord() {
    Word w;
    while (!AtEnd()) {
      char c = Peek();
      if (ShellIs(c, kShWordChar)) {
        WordFrag f;
        f.kind = WordFrag::Kind::kLit;
        while (!AtEnd() && ShellIs(Peek(), kShWordChar)) {
          f.text.push_back(Peek());
          Advance();
        }
        w.frags.push_back(std::move(f));
      } else if (c == '^') {
        Advance();  // explicit concatenation: just keep appending frags
      } else if (c == '\'') {
        Advance();
        WordFrag f;
        f.kind = WordFrag::Kind::kQuoted;
        while (true) {
          if (AtEnd()) {
            return Err("missing closing quote");
          }
          if (Peek() == '\'') {
            Advance();
            if (!AtEnd() && Peek() == '\'') {  // '' inside quotes = literal '
              f.text.push_back('\'');
              Advance();
              continue;
            }
            break;
          }
          f.text.push_back(Peek());
          Advance();
        }
        w.frags.push_back(std::move(f));
      } else if (c == '$') {
        Advance();
        WordFrag f;
        f.kind = WordFrag::Kind::kVar;
        if (!AtEnd() && Peek() == '#') {  // $#var: element count
          f.text.push_back('#');
          Advance();
        }
        if (AtEnd() || !ShellIs(Peek(), kShVarChar)) {
          return Err("bad variable reference");
        }
        if (Peek() == '*') {
          f.text.push_back('*');
          Advance();
        } else {
          while (!AtEnd() && ShellIs(Peek(), kShVarChar) && Peek() != '*') {
            f.text.push_back(Peek());
            Advance();
          }
        }
        w.frags.push_back(std::move(f));
      } else if (c == '`') {
        Advance();
        if (AtEnd() || Peek() != '{') {
          return Err("expected '{' after '`'");
        }
        Advance();
        auto script = ParseScript(/*in_block=*/true);
        if (!script.ok()) {
          return script.status();
        }
        if (AtEnd() || Peek() != '}') {
          return Err("missing '}' in command substitution");
        }
        Advance();
        WordFrag f;
        f.kind = WordFrag::Kind::kBackquote;
        f.script = script.take();
        w.frags.push_back(std::move(f));
      } else {
        break;
      }
    }
    if (w.frags.empty()) {
      return Err("empty word");
    }
    return w;
  }

  std::string_view src_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<ShellScript>> ParseShell(std::string_view src) {
  return Parser(src).Parse();
}

}  // namespace help
