#include "src/shell/compile.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace help {

namespace {

// Glob expansion is decided at compile time per word: a word with any quoted
// fragment never globs, matching the tree-walker's std::any_of check.
bool AnyQuoted(const Word& w) {
  return std::any_of(w.frags.begin(), w.frags.end(), [](const WordFrag& f) {
    return f.kind == WordFrag::Kind::kQuoted;
  });
}

}  // namespace

const Program::Fn* Program::FindFn(const ShellScript* body) const {
  auto it = fn_index_.find(body);
  return it == fn_index_.end() ? nullptr : &fns_[it->second];
}

size_t Program::TotalOps() const {
  size_t n = 0;
  for (const Chunk& c : chunks_) {
    n += c.code.size();
  }
  return n;
}

class ShellCompiler {
 public:
  explicit ShellCompiler(Program* p) : p_(p) {}

  uint32_t AddScript(const ShellScript& s) {
    uint32_t idx = static_cast<uint32_t>(p_->chunks_.size());
    p_->chunks_.emplace_back();
    std::vector<ShInstr> code;
    for (const Pipeline& line : s.lines) {
      Pipe(code, line);
    }
    p_->chunks_[idx].code = std::move(code);
    return idx;
  }

 private:
  uint32_t Str(std::string_view s) {
    auto it = string_index_.find(s);
    if (it != string_index_.end()) {
      return it->second;
    }
    uint32_t idx = static_cast<uint32_t>(p_->strings_.size());
    p_->strings_.emplace_back(s);
    string_index_.emplace(std::string(s), idx);
    return idx;
  }

  static void Emit(std::vector<ShInstr>& code, ShOp op, uint32_t a = 0, uint32_t b = 0) {
    code.push_back({op, a, b});
  }

  // Lowers one word: push each fragment's list, folding with kConcat
  // (left-associative, exactly the tree-walker's accumulation order), then
  // glob when asked for and statically unquoted.
  void Lower(std::vector<ShInstr>& code, const Word& w, bool glob) {
    bool first = true;
    for (const WordFrag& f : w.frags) {
      switch (f.kind) {
        case WordFrag::Kind::kLit:
        case WordFrag::Kind::kQuoted:
          Emit(code, ShOp::kPushLit, Str(f.text));
          break;
        case WordFrag::Kind::kVar:
          if (!f.text.empty() && f.text[0] == '#') {
            Emit(code, ShOp::kPushVarCount, Str(f.text.substr(1)));
          } else {
            Emit(code, ShOp::kPushVar, Str(f.text));
          }
          break;
        case WordFrag::Kind::kBackquote:
          Emit(code, ShOp::kBackquote, AddScript(*f.script));
          break;
      }
      if (!first) {
        Emit(code, ShOp::kConcat);
      }
      first = false;
    }
    if (glob && !AnyQuoted(w)) {
      Emit(code, ShOp::kGlob);
    }
  }

  void Pipe(std::vector<ShInstr>& code, const Pipeline& p) {
    // Single-stage pipelines (the common case) skip the stage plumbing: the
    // command runs over the chunk's own io, which is observably identical.
    if (p.cmds.size() == 1) {
      Cmd(code, p.cmds[0]);
    } else {
      Emit(code, ShOp::kPipelineBegin);
      for (size_t i = 0; i < p.cmds.size(); i++) {
        Emit(code, ShOp::kStageBegin, i + 1 == p.cmds.size() ? 1 : 0);
        Cmd(code, p.cmds[i]);
        Emit(code, ShOp::kStageEnd);
      }
    }
    Emit(code, ShOp::kPipelineEnd);
  }

  void Cmd(std::vector<ShInstr>& code, const ShellCmd& cmd) {
    // Redirections evaluate before the core runs (their targets' side
    // effects — backquotes — fire first, as in the tree-walker). A failed
    // `<` jumps past the whole command, skipping the `>` flush.
    bool framed = !cmd.redirs.empty();
    std::vector<size_t> fail_sites;
    if (framed) {
      Emit(code, ShOp::kCmdBegin);
      for (const Redir& r : cmd.redirs) {
        Lower(code, r.target, /*glob=*/false);
        fail_sites.push_back(code.size());
        Emit(code, ShOp::kRedir, static_cast<uint32_t>(r.kind));
      }
    }
    Core(code, cmd);
    if (framed) {
      Emit(code, ShOp::kCmdEnd);
      for (size_t site : fail_sites) {
        code[site].b = static_cast<uint32_t>(code.size());
      }
    }
  }

  void Core(std::vector<ShInstr>& code, const ShellCmd& cmd) {
    switch (cmd.kind) {
      case ShellCmd::Kind::kBlock:
        Emit(code, ShOp::kRunChunk, AddScript(*cmd.block));
        return;
      case ShellCmd::Kind::kIf:
        Emit(code, ShOp::kIf, AddScript(*cmd.cond), AddScript(*cmd.body));
        return;
      case ShellCmd::Kind::kIfNot:
        Emit(code, ShOp::kIfNot, AddScript(*cmd.body));
        return;
      case ShellCmd::Kind::kWhile:
        Emit(code, ShOp::kWhile, AddScript(*cmd.cond), AddScript(*cmd.body));
        return;
      case ShellCmd::Kind::kFor:
        if (cmd.for_in) {
          for (const Word& w : cmd.for_list) {
            Lower(code, w, /*glob=*/true);
          }
          Emit(code, ShOp::kCollect, static_cast<uint32_t>(cmd.for_list.size()));
        } else {
          Emit(code, ShOp::kPushVar, Str("*"));
        }
        Emit(code, ShOp::kFor, Str(cmd.var), AddScript(*cmd.body));
        return;
      case ShellCmd::Kind::kSwitch: {
        Lower(code, cmd.subject, /*glob=*/false);
        Emit(code, ShOp::kSwitchSubject);
        // Patterns expand lazily, clause by clause, word by word: a match
        // jumps to its clause body and skips every later expansion, so
        // side effects in unreached patterns never fire.
        std::vector<std::vector<size_t>> clause_sites(cmd.cases.size());
        std::vector<size_t> end_sites;
        for (size_t ci = 0; ci < cmd.cases.size(); ci++) {
          for (const Word& pw : cmd.cases[ci].patterns) {
            Lower(code, pw, /*glob=*/false);
            clause_sites[ci].push_back(code.size());
            Emit(code, ShOp::kCaseMatch);
          }
        }
        Emit(code, ShOp::kSetStatus, 0);  // no clause matched
        end_sites.push_back(code.size());
        Emit(code, ShOp::kJump);
        for (size_t ci = 0; ci < cmd.cases.size(); ci++) {
          for (size_t site : clause_sites[ci]) {
            code[site].a = static_cast<uint32_t>(code.size());
          }
          Emit(code, ShOp::kRunChunk, AddScript(*cmd.cases[ci].body));
          end_sites.push_back(code.size());
          Emit(code, ShOp::kJump);
        }
        for (size_t site : end_sites) {
          code[site].a = static_cast<uint32_t>(code.size());
        }
        return;
      }
      case ShellCmd::Kind::kFnDef: {
        // Compile the body first: a nested fn definition inside it appends
        // its own entry to fns_, so this function's index is only stable
        // after the recursion returns.
        uint32_t body = AddScript(*cmd.body);
        uint32_t fi = static_cast<uint32_t>(p_->fns_.size());
        p_->fns_.push_back({cmd.body, body});
        p_->fn_index_[cmd.body.get()] = fi;
        Emit(code, ShOp::kFnDef, Str(cmd.var), fi);
        return;
      }
      case ShellCmd::Kind::kSimple:
        break;
    }
    for (const auto& [name, words] : cmd.assigns) {
      for (const Word& w : words) {
        Lower(code, w, /*glob=*/false);
      }
      Emit(code, ShOp::kCollect, static_cast<uint32_t>(words.size()));
      Emit(code, cmd.words.empty() ? ShOp::kAssignPerm : ShOp::kAssignScoped, Str(name));
    }
    if (cmd.words.empty()) {
      Emit(code, ShOp::kSetStatus, 0);
      return;
    }
    for (const Word& w : cmd.words) {
      Lower(code, w, /*glob=*/true);
    }
    Emit(code, ShOp::kCollect, static_cast<uint32_t>(cmd.words.size()));
    Emit(code, ShOp::kRunSimple, static_cast<uint32_t>(cmd.assigns.size()));
  }

  Program* p_;
  // Owning keys: a view into strings_ would dangle when the vector
  // reallocates and short strings' SSO bytes move with it.
  std::map<std::string, uint32_t, std::less<>> string_index_;
};

std::shared_ptr<const Program> CompileShell(const ShellScript& script) {
  auto p = std::make_shared<Program>();
  ShellCompiler(p.get()).AddScript(script);
  return p;
}

Result<std::shared_ptr<const Program>> CompileShellSource(std::string_view src) {
  auto parsed = ParseShell(src);
  if (!parsed.ok()) {
    return parsed.status();
  }
  OBS_COUNT("shell.compile", 1);
  return CompileShell(*parsed.value());
}

namespace {

struct OpInfo {
  const char* name;
  // which operands are meaningful, for the disassembler: s = string index,
  // c = chunk index, n = number, p = pc, f = fn index, '-' = unused.
  char a;
  char b;
};

OpInfo InfoOf(ShOp op) {
  switch (op) {
    case ShOp::kPushLit: return {"push-lit", 's', '-'};
    case ShOp::kPushVar: return {"push-var", 's', '-'};
    case ShOp::kPushVarCount: return {"push-var-count", 's', '-'};
    case ShOp::kBackquote: return {"backquote", 'c', '-'};
    case ShOp::kConcat: return {"concat", '-', '-'};
    case ShOp::kGlob: return {"glob", '-', '-'};
    case ShOp::kCollect: return {"collect", 'n', '-'};
    case ShOp::kAssignScoped: return {"assign-scoped", 's', '-'};
    case ShOp::kAssignPerm: return {"assign-perm", 's', '-'};
    case ShOp::kRunSimple: return {"run-simple", 'n', '-'};
    case ShOp::kSetStatus: return {"set-status", 'n', '-'};
    case ShOp::kPipelineBegin: return {"pipeline-begin", '-', '-'};
    case ShOp::kStageBegin: return {"stage-begin", 'n', '-'};
    case ShOp::kStageEnd: return {"stage-end", '-', '-'};
    case ShOp::kPipelineEnd: return {"pipeline-end", '-', '-'};
    case ShOp::kCmdBegin: return {"cmd-begin", '-', '-'};
    case ShOp::kRedir: return {"redir", 'n', 'p'};
    case ShOp::kCmdEnd: return {"cmd-end", '-', '-'};
    case ShOp::kRunChunk: return {"run-chunk", 'c', '-'};
    case ShOp::kIf: return {"if", 'c', 'c'};
    case ShOp::kIfNot: return {"if-not", 'c', '-'};
    case ShOp::kWhile: return {"while", 'c', 'c'};
    case ShOp::kFor: return {"for", 's', 'c'};
    case ShOp::kSwitchSubject: return {"switch-subject", '-', '-'};
    case ShOp::kCaseMatch: return {"case-match", 'p', '-'};
    case ShOp::kJump: return {"jump", 'p', '-'};
    case ShOp::kFnDef: return {"fn-def", 's', 'f'};
  }
  return {"?", '-', '-'};
}

void AppendOperand(std::string* out, const Program& p, char kind, uint32_t v) {
  switch (kind) {
    case 's':
      *out += StrFormat(" \"%s\"", p.str(v).c_str());
      break;
    case 'c':
      *out += StrFormat(" chunk:%u", v);
      break;
    case 'p':
      *out += StrFormat(" ->%u", v);
      break;
    case 'f':
      *out += StrFormat(" fn:%u(chunk:%u)", v, p.fn(v).chunk);
      break;
    case 'n':
      *out += StrFormat(" %u", v);
      break;
    default:
      break;
  }
}

}  // namespace

std::string Program::Disassemble() const {
  std::string out;
  for (size_t ci = 0; ci < chunks_.size(); ci++) {
    out += StrFormat("chunk %zu:\n", ci);
    const std::vector<ShInstr>& code = chunks_[ci].code;
    for (size_t pc = 0; pc < code.size(); pc++) {
      OpInfo info = InfoOf(code[pc].op);
      out += StrFormat("  %4zu  %-14s", pc, info.name);
      AppendOperand(&out, *this, info.a, code[pc].a);
      AppendOperand(&out, *this, info.b, code[pc].b);
      out += "\n";
    }
  }
  return out;
}

}  // namespace help
