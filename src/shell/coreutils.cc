#include "src/shell/coreutils.h"

#include <algorithm>
#include <memory>

#include "src/base/strings.h"
#include "src/regexp/regexp.h"

namespace help {

namespace {

// Reads the named files (cwd-relative) or, with no names, stdin.
Result<std::string> GatherInput(ExecContext& ctx, const std::vector<std::string>& argv,
                                size_t first, const Io& io) {
  if (first >= argv.size()) {
    return io.in;
  }
  std::string all;
  for (size_t i = first; i < argv.size(); i++) {
    auto data = ctx.vfs->ReadFile(JoinPath(ctx.cwd, argv[i]));
    if (!data.ok()) {
      return data.status();
    }
    all += data.take();
  }
  return all;
}

std::vector<std::string> Lines(std::string_view text) {
  std::vector<std::string> out = Split(text, '\n');
  if (!out.empty() && out.back().empty()) {
    out.pop_back();  // trailing newline does not make an extra line
  }
  return out;
}

int Cat(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  auto data = GatherInput(ctx, argv, 1, io);
  if (!data.ok()) {
    *io.err += "cat: " + data.message() + "\n";
    return 1;
  }
  *io.out += data.take();
  return 0;
}

int Cp(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (argv.size() != 3) {
    *io.err += "usage: cp from to\n";
    return 1;
  }
  auto data = ctx.vfs->ReadFile(JoinPath(ctx.cwd, argv[1]));
  if (!data.ok()) {
    *io.err += "cp: " + data.message() + "\n";
    return 1;
  }
  std::string dst = JoinPath(ctx.cwd, argv[2]);
  auto dnode = ctx.vfs->Walk(dst);
  if (dnode.ok() && dnode.value()->dir()) {
    dst = JoinPath(dst, BasePath(argv[1]));
  }
  Status s = ctx.vfs->WriteFile(dst, data.value());
  if (!s.ok()) {
    *io.err += "cp: " + s.message() + "\n";
    return 1;
  }
  return 0;
}

int Mv(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  int rc = Cp(ctx, argv, io);
  if (rc != 0) {
    return rc;
  }
  Status s = ctx.vfs->Remove(JoinPath(ctx.cwd, argv[1]));
  if (!s.ok()) {
    *io.err += "mv: " + s.message() + "\n";
    return 1;
  }
  return 0;
}

int Ls(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  bool longform = false;
  std::vector<std::string> paths;
  for (size_t i = 1; i < argv.size(); i++) {
    if (argv[i] == "-l") {
      longform = true;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    paths.push_back(ctx.cwd);
  }
  int rc = 0;
  for (const std::string& p : paths) {
    std::string full = JoinPath(ctx.cwd, p);
    auto st = ctx.vfs->Stat(full);
    if (!st.ok()) {
      *io.err += "ls: " + st.message() + "\n";
      rc = 1;
      continue;
    }
    std::vector<StatInfo> entries;
    if (st.value().dir) {
      auto dir = ctx.vfs->ReadDir(full);
      if (!dir.ok()) {
        *io.err += "ls: " + dir.message() + "\n";
        rc = 1;
        continue;
      }
      entries = dir.take();
      for (StatInfo& e : entries) {
        e.name = full == "/" ? "/" + e.name : full + "/" + e.name;
      }
    } else {
      StatInfo e = st.take();
      e.name = full;
      entries.push_back(e);
    }
    for (const StatInfo& e : entries) {
      if (longform) {
        *io.out += StrFormat("%c %8llu %s %s\n", e.dir ? 'd' : '-',
                             static_cast<unsigned long long>(e.length),
                             FormatDate(e.mtime).c_str(), e.name.c_str());
      } else {
        *io.out += e.name + (e.dir ? "/" : "") + "\n";
      }
    }
  }
  return rc;
}

int Grep(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  bool number = false;
  bool count = false;
  bool invert = false;
  size_t i = 1;
  for (; i < argv.size() && !argv[i].empty() && argv[i][0] == '-'; i++) {
    for (char c : argv[i].substr(1)) {
      if (c == 'n') {
        number = true;
      } else if (c == 'c') {
        count = true;
      } else if (c == 'v') {
        invert = true;
      } else {
        *io.err += StrFormat("grep: bad flag -%c\n", c);
        return 2;
      }
    }
  }
  if (i >= argv.size()) {
    *io.err += "usage: grep [-ncv] pattern [files]\n";
    return 2;
  }
  auto re = Regexp::Compile(argv[i]);
  if (!re.ok()) {
    *io.err += "grep: " + re.message() + "\n";
    return 2;
  }
  i++;
  bool many = argv.size() - i > 1;
  bool any = false;
  auto scan = [&](std::string_view label, std::string_view content) {
    long nmatch = 0;
    // One decode of the whole input instead of one RuneString per line; each
    // line is a zero-copy view and the literal fast path / Pike VM run over
    // it directly. Only matched lines are re-encoded for output.
    RuneString all = RunesFromUtf8(content);
    RuneStringView doc(all);
    size_t pos = 0;
    size_t ln = 0;
    while (pos < doc.size()) {
      size_t eol = doc.find('\n', pos);
      if (eol == RuneStringView::npos) {
        eol = doc.size();
      }
      RuneStringView line = doc.substr(pos, eol - pos);
      ln++;
      pos = eol + 1;
      bool hit = re.value().Search(line).has_value();
      if (hit == invert) {
        continue;
      }
      any = true;
      nmatch++;
      if (count) {
        continue;
      }
      if (many) {
        *io.out += std::string(label) + ":";
      }
      if (number) {
        *io.out += StrFormat("%zu: ", ln);
      }
      *io.out += Utf8FromRunes(line) + "\n";
    }
    if (count) {
      if (many) {
        *io.out += std::string(label) + ":";
      }
      *io.out += StrFormat("%ld\n", nmatch);
    }
  };
  if (i >= argv.size()) {
    scan("(stdin)", io.in);
  } else {
    for (; i < argv.size(); i++) {
      auto data = ctx.vfs->ReadFile(JoinPath(ctx.cwd, argv[i]));
      if (!data.ok()) {
        *io.err += "grep: " + data.message() + "\n";
        return 2;
      }
      scan(argv[i], data.value());
    }
  }
  return any ? 0 : 1;
}

// sed subset: "Nq" (quit after N lines) and "s/re/repl/[g]" — all the paper's
// scripts use is `sed 1q`.
int Sed(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (argv.size() < 2) {
    *io.err += "usage: sed script [files]\n";
    return 1;
  }
  const std::string& script = argv[1];
  auto data = GatherInput(ctx, argv, 2, io);
  if (!data.ok()) {
    *io.err += "sed: " + data.message() + "\n";
    return 1;
  }
  // Nq form.
  if (!script.empty() && script.back() == 'q') {
    std::vector<std::string> lines = Lines(data.value());
    long n = ParseInt(std::string_view(script).substr(0, script.size() - 1));
    if (n < 0) {
      *io.err += "sed: bad script\n";
      return 1;
    }
    for (long k = 0; k < n && k < static_cast<long>(lines.size()); k++) {
      *io.out += lines[static_cast<size_t>(k)] + "\n";
    }
    return 0;
  }
  // s/re/repl/[g] form.
  if (script.size() >= 4 && script[0] == 's') {
    char delim = script[1];
    std::vector<std::string> parts = Split(std::string_view(script).substr(2), delim);
    if (parts.size() < 2) {
      *io.err += "sed: bad substitution\n";
      return 1;
    }
    bool global = parts.size() > 2 && parts[2] == "g";
    auto re = Regexp::Compile(parts[0]);
    if (!re.ok()) {
      *io.err += "sed: " + re.message() + "\n";
      return 1;
    }
    // As in grep: decode the input once and substitute over zero-copy line
    // views instead of materializing a RuneString per line.
    RuneString repl = RunesFromUtf8(parts[1]);
    RuneString all = RunesFromUtf8(data.value());
    RuneStringView doc(all);
    size_t lpos = 0;
    while (lpos < doc.size()) {
      size_t eol = doc.find('\n', lpos);
      if (eol == RuneStringView::npos) {
        eol = doc.size();
      }
      RuneStringView runes = doc.substr(lpos, eol - lpos);
      lpos = eol + 1;
      RuneString result;
      size_t pos = 0;
      while (pos <= runes.size()) {
        auto m = re.value().Search(runes, pos);
        if (!m) {
          break;
        }
        result.append(runes.substr(pos, m->begin - pos));
        result += repl;
        pos = m->end > m->begin ? m->end : m->end + 1;
        if (!global) {
          break;
        }
      }
      if (pos <= runes.size()) {
        result.append(runes.substr(pos));
      }
      *io.out += Utf8FromRunes(result) + "\n";
    }
    return 0;
  }
  *io.err += "sed: unsupported script\n";
  return 1;
}

int Wc(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  bool lines_only = argv.size() > 1 && argv[1] == "-l";
  auto data = GatherInput(ctx, argv, lines_only ? 2 : 1, io);
  if (!data.ok()) {
    *io.err += "wc: " + data.message() + "\n";
    return 1;
  }
  const std::string& text = data.value();
  size_t nl = static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  if (lines_only) {
    *io.out += StrFormat("%zu\n", nl);
  } else {
    size_t words = Tokenize(text).size();
    *io.out += StrFormat("%7zu %7zu %7zu\n", nl, words, text.size());
  }
  return 0;
}

int Sort(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  bool reverse = argv.size() > 1 && argv[1] == "-r";
  auto data = GatherInput(ctx, argv, reverse ? 2 : 1, io);
  if (!data.ok()) {
    *io.err += "sort: " + data.message() + "\n";
    return 1;
  }
  std::vector<std::string> lines = Lines(data.value());
  std::sort(lines.begin(), lines.end());
  if (reverse) {
    std::reverse(lines.begin(), lines.end());
  }
  for (const std::string& l : lines) {
    *io.out += l + "\n";
  }
  return 0;
}

int Uniq(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  auto data = GatherInput(ctx, argv, 1, io);
  if (!data.ok()) {
    *io.err += "uniq: " + data.message() + "\n";
    return 1;
  }
  std::vector<std::string> lines = Lines(data.value());
  const std::string* prev = nullptr;
  for (const std::string& l : lines) {
    if (prev == nullptr || l != *prev) {
      *io.out += l + "\n";
    }
    prev = &l;
  }
  return 0;
}

int HeadTail(bool head, ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  long n = 10;
  size_t first = 1;
  if (argv.size() > 2 && argv[1] == "-n") {
    n = ParseInt(argv[2]);
    first = 3;
  }
  auto data = GatherInput(ctx, argv, first, io);
  if (!data.ok()) {
    *io.err += data.message() + "\n";
    return 1;
  }
  std::vector<std::string> lines = Lines(data.value());
  size_t count = std::min<size_t>(static_cast<size_t>(std::max(0L, n)), lines.size());
  size_t start = head ? 0 : lines.size() - count;
  for (size_t k = 0; k < count; k++) {
    *io.out += lines[start + k] + "\n";
  }
  return 0;
}

int Touch(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  for (size_t i = 1; i < argv.size(); i++) {
    std::string path = JoinPath(ctx.cwd, argv[i]);
    auto node = ctx.vfs->Walk(path);
    if (node.ok()) {
      node.value()->Touch(ctx.vfs->clock()->Tick());
    } else {
      Status s = ctx.vfs->WriteFile(path, "");
      if (!s.ok()) {
        *io.err += "touch: " + s.message() + "\n";
        return 1;
      }
    }
  }
  return 0;
}

int Mkdir(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  for (size_t i = 1; i < argv.size(); i++) {
    Status s = ctx.vfs->MkdirAll(JoinPath(ctx.cwd, argv[i]));
    if (!s.ok()) {
      *io.err += "mkdir: " + s.message() + "\n";
      return 1;
    }
  }
  return 0;
}

int Rm(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  int rc = 0;
  for (size_t i = 1; i < argv.size(); i++) {
    if (argv[i] == "-f") {
      continue;
    }
    Status s = ctx.vfs->Remove(JoinPath(ctx.cwd, argv[i]));
    if (!s.ok()) {
      bool force = argv[1] == "-f";
      if (!force) {
        *io.err += "rm: " + s.message() + "\n";
        rc = 1;
      }
    }
  }
  return rc;
}

int Basename(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (argv.size() < 2) {
    *io.err += "usage: basename path\n";
    return 1;
  }
  *io.out += BasePath(argv[1]) + "\n";
  return 0;
}

int Dirname(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (argv.size() < 2) {
    *io.err += "usage: dirname path\n";
    return 1;
  }
  *io.out += DirPath(argv[1]) + "\n";
  return 0;
}

int DateCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  *io.out += FormatDate(ctx.vfs->clock()->Now()) + "\n";
  return 0;
}

int Ps(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (ctx.procs == nullptr) {
    *io.err += "ps: no process table\n";
    return 1;
  }
  *io.out += AdbPs(*ctx.procs);
  return 0;
}

// adb: `adb broke` lists broken processes; `adb <pid> <cmd>` examines one.
int Adb(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (ctx.procs == nullptr) {
    *io.err += "adb: no process table\n";
    return 1;
  }
  if (argv.size() >= 2 && argv[1] == "broke") {
    *io.out += AdbBroke(*ctx.procs);
    return 0;
  }
  if (argv.size() < 3) {
    *io.err += "usage: adb pid stack|regs|pc|kstack\n";
    return 1;
  }
  long pid = ParseInt(argv[1]);
  const ProcImage* p = pid >= 0 ? ctx.procs->Find(static_cast<int>(pid)) : nullptr;
  if (p == nullptr) {
    *io.err += "adb: no such process " + argv[1] + "\n";
    return 1;
  }
  const std::string& cmd = argv[2];
  if (cmd == "stack") {
    *io.out += AdbStack(*p);
  } else if (cmd == "regs") {
    *io.out += AdbRegs(*p);
  } else if (cmd == "pc") {
    *io.out += AdbPc(*p);
  } else if (cmd == "kstack") {
    *io.out += AdbKstack(*p);
  } else if (cmd == "srcdir") {
    // Where the binary's sources live, from its symbol table — the db tool
    // uses this as the new window's directory context.
    *io.out += p->srcdir + "\n";
  } else {
    *io.err += "adb: unknown command " + cmd + "\n";
    return 1;
  }
  return 0;
}

int Fortune(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  static const char* kFortunes[] = {
      "A year spent in artificial intelligence is enough to make one believe in God.\n",
      "If a program is useless, it will have to be documented.\n",
      "The UKUUG are collecting old-time verses about UNIX.\n",
      "Minimalism, uniformity, and universality have merit.\n",
  };
  uint64_t i = ctx.vfs->clock()->Tick() % (sizeof(kFortunes) / sizeof(kFortunes[0]));
  *io.out += kFortunes[i];
  return 0;
}

int News(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  auto data = ctx.vfs->ReadFile("/lib/news");
  *io.out += data.ok() ? data.value() : std::string("no news is good news\n");
  return 0;
}

int True(ExecContext&, const std::vector<std::string>&, Io&) { return 0; }
int False(ExecContext&, const std::vector<std::string>&, Io&) { return 1; }

}  // namespace

std::string FormatDate(uint64_t unix_seconds) {
  // Civil-time conversion (proleptic Gregorian), no libc dependency so the
  // deterministic clock renders identically everywhere.
  uint64_t days = unix_seconds / 86400;
  uint64_t rem = unix_seconds % 86400;
  int hour = static_cast<int>(rem / 3600);
  int min = static_cast<int>((rem % 3600) / 60);
  int sec = static_cast<int>(rem % 60);
  // 1970-01-01 was a Thursday.
  static const char* kDow[] = {"Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"};
  const char* dow = kDow[days % 7];
  // Days -> y/m/d.
  int64_t z = static_cast<int64_t>(days) + 719468;
  int64_t era = z / 146097;
  int64_t doe = z - era * 146097;
  int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = yoe + era * 400;
  int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  int64_t mp = (5 * doy + 2) / 153;
  int64_t d = doy - (153 * mp + 2) / 5 + 1;
  int64_t m = mp + (mp < 10 ? 3 : -9);
  if (m <= 2) {
    y++;
  }
  static const char* kMon[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  return StrFormat("%s %s %lld %02d:%02d:%02d EDT %lld", dow, kMon[m - 1],
                   static_cast<long long>(d), hour, min, sec, static_cast<long long>(y));
}

void RegisterCoreutils(Vfs* vfs, CommandRegistry* registry) {
  registry->Register(vfs, "/bin/cat", Cat);
  registry->Register(vfs, "/bin/cp", Cp);
  registry->Register(vfs, "/bin/mv", Mv);
  registry->Register(vfs, "/bin/ls", Ls);
  registry->Register(vfs, "/bin/lc", Ls);  // Plan 9 habit
  registry->Register(vfs, "/bin/grep", Grep);
  registry->Register(vfs, "/bin/sed", Sed);
  registry->Register(vfs, "/bin/wc", Wc);
  registry->Register(vfs, "/bin/sort", Sort);
  registry->Register(vfs, "/bin/uniq", Uniq);
  registry->Register(vfs, "/bin/head",
                     [](ExecContext& c, const std::vector<std::string>& a, Io& i) {
                       return HeadTail(true, c, a, i);
                     });
  registry->Register(vfs, "/bin/tail",
                     [](ExecContext& c, const std::vector<std::string>& a, Io& i) {
                       return HeadTail(false, c, a, i);
                     });
  registry->Register(vfs, "/bin/touch", Touch);
  registry->Register(vfs, "/bin/mkdir", Mkdir);
  registry->Register(vfs, "/bin/rm", Rm);
  registry->Register(vfs, "/bin/basename", Basename);
  registry->Register(vfs, "/bin/dirname", Dirname);
  registry->Register(vfs, "/bin/date", DateCmd);
  registry->Register(vfs, "/bin/ps", Ps);
  registry->Register(vfs, "/bin/adb", Adb);
  registry->Register(vfs, "/bin/fortune", Fortune);
  registry->Register(vfs, "/bin/news", News);
  registry->Register(vfs, "/bin/true", True);
  registry->Register(vfs, "/bin/false", False);
  // bind: Plan 9 namespace surgery. The VFS has a single namespace, so this
  // is a successful no-op shim — profiles run unmodified.
  registry->Register(vfs, "/bin/bind",
                     [](ExecContext&, const std::vector<std::string>&, Io&) { return 0; });
  // echo is a shell builtin, but scripts sometimes invoke /bin/echo directly.
  registry->Register(vfs, "/bin/echo",
                     [](ExecContext& c, const std::vector<std::string>& a, Io& i) {
                       std::string line;
                       for (size_t k = 1; k < a.size(); k++) {
                         if (k > 1) {
                           line += ' ';
                         }
                         line += a[k];
                       }
                       *i.out += line + "\n";
                       return 0;
                     });
}

}  // namespace help
