// mk: Plan 9's make. Reads `mkfile` in the current directory, compares
// modification times in the VFS, and runs recipes through the shell.
//
// Also implements the paper's future-work proposal — "a tool that ... sees
// what source files have been modified and builds the targets that depend on
// them" — as `mk -r` (reverse mk): instead of being told a target, it scans
// the dependency graph for targets stale with respect to modified sources
// and rebuilds exactly those.
#ifndef SRC_SHELL_MK_H_
#define SRC_SHELL_MK_H_

#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/shell/shell.h"

namespace help {

struct MkRule {
  std::string target;
  std::vector<std::string> deps;
  std::vector<std::string> recipe;  // shell lines
};

struct Mkfile {
  std::vector<MkRule> rules;
  std::map<std::string, std::string> vars;

  const MkRule* Find(std::string_view target) const;
};

// Parses mkfile text (tabs introduce recipe lines; NAME=value defines a
// variable; $NAME substitutes).
Result<Mkfile> ParseMkfile(std::string_view src);

// Registers /bin/mk.
void RegisterMk(Vfs* vfs, CommandRegistry* registry);

}  // namespace help

#endif  // SRC_SHELL_MK_H_
