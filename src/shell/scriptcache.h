// A process-wide LRU cache of compiled shell scripts, the analogue of the
// RegexpCache for rc programs. Everything the system executes — `decl`-style
// tool scripts, `mk` recipe lines, ctl commands — used to be re-parsed and
// re-walked on every run; with the cache, a script parses and compiles once
// per edit and thereafter replays as bytecode.
//
// Two keying layers share one LRU:
//   - source-keyed: the script text itself (content-addressed, always safe);
//   - file-keyed: (vfs id, path), validated by the node's qid path, version,
//     mtime, and length — the "path+mtime" fast path that lets a repeated
//     `help/decl` or `mk` run skip even the ReadFile. A signature mismatch
//     falls through to the source layer, so an edit that restores previous
//     contents still hits.
// Compilation runs outside the lock (two racers just compile twice), and
// errors are never cached. Hits/misses surface as
// shell.compile_cache_{hit,miss} in /mnt/help/metrics.
#ifndef SRC_SHELL_SCRIPTCACHE_H_
#define SRC_SHELL_SCRIPTCACHE_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/fs/vfs.h"
#include "src/shell/compile.h"

namespace help {

class ShellScriptCache {
 public:
  static constexpr size_t kCapacity = 128;

  static ShellScriptCache& Global();

  // Compiled program for `src`, compiling and caching on a miss.
  Result<std::shared_ptr<const Program>> Get(std::string_view src);

  // Compiled program for the script file at `path` in `vfs`. On a signature
  // hit the file is not even read; otherwise behaves like ReadFile + Get and
  // records the file's signature for next time.
  Result<std::shared_ptr<const Program>> GetFile(Vfs& vfs, std::string_view path);

  void Clear();
  size_t size() const;

 private:
  struct FileSig {
    uint64_t qid_path = 0;
    uint32_t vers = 0;
    uint64_t mtime = 0;
    uint64_t length = 0;
    bool operator==(const FileSig& o) const {
      return qid_path == o.qid_path && vers == o.vers && mtime == o.mtime &&
             length == o.length;
    }
  };
  struct Entry {
    std::string key;
    FileSig sig;  // file-keyed entries only
    std::shared_ptr<const Program> program;
  };

  std::shared_ptr<const Program> Lookup(std::string_view key, const FileSig* want);
  void Insert(std::string key, const FileSig* sig, std::shared_ptr<const Program> program);

  // MRU at the front; the map holds list iterators, both only touched under
  // mu_ (shell runs arrive from the UI thread and from 9P ctl dispatch).
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_;
};

}  // namespace help

#endif  // SRC_SHELL_SCRIPTCACHE_H_
