// Shell evaluator: word expansion, pipelines, redirection, builtins, and
// external dispatch (native commands or nested shell scripts). The
// tree-walking Evaluator below is the original engine and the semantic
// oracle; Shell::Run/RunArgv normally route through the bytecode VM
// (src/shell/vm.h) fed by the compiled-script cache, falling back here when
// SetVmEnabled(false).
#include <algorithm>
#include <atomic>

#include "src/base/strings.h"
#include "src/shell/scriptcache.h"
#include "src/shell/shell.h"
#include "src/shell/vm.h"

namespace help {

namespace {

constexpr int kMaxDepth = 32;
constexpr int kNotFound = 127;

std::atomic<bool> g_vm_enabled{true};

bool HasGlobChars(std::string_view s) {
  return s.find_first_of("*?[") != std::string_view::npos;
}

}  // namespace

// --- Glob -------------------------------------------------------------------

bool GlobMatch(std::string_view pattern, std::string_view name) {
  size_t pi = 0;
  size_t ni = 0;
  size_t star_pi = std::string_view::npos;
  size_t star_ni = 0;
  while (ni < name.size()) {
    if (pi < pattern.size()) {
      char pc = pattern[pi];
      if (pc == '*') {
        star_pi = pi++;
        star_ni = ni;
        continue;
      }
      if (pc == '?') {
        pi++;
        ni++;
        continue;
      }
      if (pc == '[') {
        size_t close = pattern.find(']', pi + 1);
        if (close != std::string_view::npos) {
          bool neg = pi + 1 < pattern.size() && pattern[pi + 1] == '^';
          size_t ci = pi + (neg ? 2 : 1);
          bool hit = false;
          while (ci < close) {
            if (ci + 2 < close && pattern[ci + 1] == '-') {
              if (name[ni] >= pattern[ci] && name[ni] <= pattern[ci + 2]) {
                hit = true;
              }
              ci += 3;
            } else {
              if (name[ni] == pattern[ci]) {
                hit = true;
              }
              ci++;
            }
          }
          if (hit != neg) {
            pi = close + 1;
            ni++;
            continue;
          }
        } else if (pc == name[ni]) {  // unclosed '[': literal
          pi++;
          ni++;
          continue;
        }
      } else if (pc == name[ni]) {
        pi++;
        ni++;
        continue;
      }
    }
    if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      ni = ++star_ni;
      continue;
    }
    return false;
  }
  while (pi < pattern.size() && pattern[pi] == '*') {
    pi++;
  }
  return pi == pattern.size();
}

std::vector<std::string> GlobExpand(const Vfs& vfs, std::string_view cwd,
                                    std::string_view pattern) {
  std::string full = JoinPath(cwd, pattern);
  std::vector<std::string> elems = PathElements(full);
  std::vector<std::string> current = {"/"};
  for (const std::string& elem : elems) {
    std::vector<std::string> next;
    if (!HasGlobChars(elem)) {
      for (const std::string& dir : current) {
        std::string candidate = JoinPath(dir, elem);
        if (vfs.Walk(candidate).ok()) {
          next.push_back(candidate);
        }
      }
    } else {
      for (const std::string& dir : current) {
        auto entries = vfs.ReadDir(dir);
        if (!entries.ok()) {
          continue;
        }
        for (const StatInfo& st : entries.value()) {
          if (GlobMatch(elem, st.name)) {
            next.push_back(JoinPath(dir, st.name));
          }
        }
      }
    }
    current = std::move(next);
    if (current.empty()) {
      break;
    }
  }
  if (current.empty()) {
    return {std::string(pattern)};  // rc: unmatched patterns pass through
  }
  std::sort(current.begin(), current.end());
  return current;
}

// --- Registry ----------------------------------------------------------------

void CommandRegistry::Register(Vfs* vfs, std::string_view path, NativeCommand fn) {
  std::string clean = CleanPath(path);
  commands_[clean] = std::move(fn);
  if (vfs != nullptr && !vfs->Walk(clean).ok()) {
    vfs->MkdirAll(DirPath(clean));
    vfs->WriteFile(clean, "#!native " + clean + "\n");
  }
}

const NativeCommand* CommandRegistry::Find(std::string_view path) const {
  auto it = commands_.find(CleanPath(path));
  return it == commands_.end() ? nullptr : &it->second;
}

// --- Evaluator ---------------------------------------------------------------

namespace {

class Evaluator {
 public:
  Evaluator(Shell* shell, Env* env, std::string cwd, int depth)
      : shell_(shell), env_(env), cwd_(std::move(cwd)), depth_(depth) {}

  Result<int> RunScript(const ShellScript& script, Io& io) {
    int status = 0;
    for (const Pipeline& line : script.lines) {
      if (exited_) {
        break;
      }
      auto r = RunPipeline(line, io);
      if (!r.ok()) {
        return r;
      }
      status = r.value();
      env_->SetString("status", StrFormat("%d", status));
    }
    return status;
  }

 private:
  Result<int> RunPipeline(const Pipeline& p, Io& io) {
    std::string carry = io.in;
    int status = 0;
    for (size_t i = 0; i < p.cmds.size(); i++) {
      bool last = i + 1 == p.cmds.size();
      std::string stage_out;
      Io stage;
      stage.in = std::move(carry);
      stage.out = last ? io.out : &stage_out;
      stage.err = io.err;
      auto r = RunCmd(p.cmds[i], stage);
      if (!r.ok()) {
        return r;
      }
      status = r.value();
      carry = std::move(stage_out);
    }
    return status;
  }

  Result<int> RunCmd(const ShellCmd& cmd, Io& io) {
    // Apply redirections around the core execution.
    std::string redirected_out;
    bool has_out = false;
    std::string out_path;
    bool append = false;
    for (const Redir& r : cmd.redirs) {
      auto target = ExpandWord(r.target);
      if (!target.ok()) {
        return target.status();
      }
      if (target.value().size() != 1) {
        return Status::Error("rc: redirection target is not a single word");
      }
      std::string path = JoinPath(cwd_, target.value()[0]);
      switch (r.kind) {
        case Redir::Kind::kIn: {
          auto data = shell_->vfs()->ReadFile(path);
          if (!data.ok()) {
            *io.err += data.message() + "\n";
            return 1;
          }
          io.in = data.take();
          break;
        }
        case Redir::Kind::kOut:
          has_out = true;
          append = false;
          out_path = path;
          break;
        case Redir::Kind::kAppend:
          has_out = true;
          append = true;
          out_path = path;
          break;
      }
    }
    Io inner = io;
    if (has_out) {
      inner.out = &redirected_out;
    }

    auto status = RunCmdCore(cmd, inner);
    if (!status.ok()) {
      return status;
    }
    if (has_out) {
      Status ws = append ? shell_->vfs()->AppendFile(out_path, redirected_out)
                         : shell_->vfs()->WriteFile(out_path, redirected_out);
      if (!ws.ok()) {
        *io.err += ws.message() + "\n";
        return 1;
      }
    }
    return status;
  }

  Result<int> RunCmdCore(const ShellCmd& cmd, Io& io) {
    switch (cmd.kind) {
      case ShellCmd::Kind::kBlock:
        return RunScript(*cmd.block, io);
      case ShellCmd::Kind::kIf: {
        Io cio = io;
        auto c = RunScript(*cmd.cond, cio);
        if (!c.ok()) {
          return c;
        }
        last_if_taken_ = c.value() == 0;
        if (!last_if_taken_) {
          return 0;
        }
        return RunScript(*cmd.body, io);
      }
      case ShellCmd::Kind::kIfNot:
        if (last_if_taken_) {
          return 0;
        }
        return RunScript(*cmd.body, io);
      case ShellCmd::Kind::kWhile: {
        int status = 0;
        for (int guard = 0; guard < 100000; guard++) {
          Io cio = io;
          auto c = RunScript(*cmd.cond, cio);
          if (!c.ok()) {
            return c;
          }
          if (c.value() != 0 || exited_) {
            return status;
          }
          auto b = RunScript(*cmd.body, io);
          if (!b.ok()) {
            return b;
          }
          status = b.value();
        }
        return Status::Error("rc: while loop ran away");
      }
      case ShellCmd::Kind::kFor: {
        std::vector<std::string> values;
        if (cmd.for_in) {
          for (const Word& w : cmd.for_list) {
            auto v = ExpandWord(w);
            if (!v.ok()) {
              return v.status();
            }
            bool quoted = std::any_of(w.frags.begin(), w.frags.end(), [](const WordFrag& f) {
              return f.kind == WordFrag::Kind::kQuoted;
            });
            for (std::string& field : v.value()) {
              if (!quoted && HasGlobChars(field)) {
                for (std::string& m : GlobExpand(*shell_->vfs(), cwd_, field)) {
                  values.push_back(std::move(m));
                }
              } else {
                values.push_back(std::move(field));
              }
            }
          }
        } else {
          values = env_->Get("*");
        }
        int status = 0;
        for (const std::string& value : values) {
          env_->SetString(cmd.var, value);
          auto b = RunScript(*cmd.body, io);
          if (!b.ok()) {
            return b;
          }
          status = b.value();
          if (exited_) {
            break;
          }
        }
        return status;
      }
      case ShellCmd::Kind::kSwitch: {
        auto subject = ExpandWord(cmd.subject);
        if (!subject.ok()) {
          return subject.status();
        }
        std::string value = Join(subject.value(), " ");
        for (const CaseClause& clause : cmd.cases) {
          for (const Word& pw : clause.patterns) {
            auto pats = ExpandWord(pw);
            if (!pats.ok()) {
              return pats.status();
            }
            for (const std::string& pat : pats.value()) {
              if (GlobMatch(pat, value)) {
                return RunScript(*clause.body, io);
              }
            }
          }
        }
        return 0;
      }
      case ShellCmd::Kind::kFnDef: {
        // Copy-on-write so a child shell's definitions stay local.
        auto table = std::static_pointer_cast<FunctionTable>(env_->ext);
        auto copy = table != nullptr ? std::make_shared<FunctionTable>(*table)
                                     : std::make_shared<FunctionTable>();
        copy->Define(cmd.var, cmd.body);
        env_->ext = copy;
        return 0;
      }
      case ShellCmd::Kind::kSimple:
        break;
    }
    // Assignments: permanent when there is no command word, scoped to the
    // command otherwise (restored afterwards).
    std::vector<std::pair<std::string, std::vector<std::string>>> saved;
    for (const auto& [name, words] : cmd.assigns) {
      std::vector<std::string> value;
      for (const Word& word : words) {
        auto v = ExpandWord(word);
        if (!v.ok()) {
          return v.status();
        }
        for (std::string& field : v.value()) {
          value.push_back(std::move(field));
        }
      }
      if (!cmd.words.empty()) {
        saved.emplace_back(name, env_->Get(name));
      }
      env_->Set(name, std::move(value));
    }
    if (cmd.words.empty()) {
      return 0;
    }
    // Simple command: expand all words, then glob.
    std::vector<std::string> argv;
    for (const Word& w : cmd.words) {
      auto fields = ExpandWord(w);
      if (!fields.ok()) {
        return fields.status();
      }
      bool quoted = std::any_of(w.frags.begin(), w.frags.end(), [](const WordFrag& f) {
        return f.kind == WordFrag::Kind::kQuoted;
      });
      for (std::string& field : fields.value()) {
        if (!quoted && HasGlobChars(field)) {
          for (std::string& m : GlobExpand(*shell_->vfs(), cwd_, field)) {
            argv.push_back(std::move(m));
          }
        } else {
          argv.push_back(std::move(field));
        }
      }
    }
    if (argv.empty()) {
      return 0;
    }
    auto result = Builtin(argv, io);
    for (auto& [name, value] : saved) {
      env_->Set(name, std::move(value));
    }
    return result;
  }

  Result<int> Builtin(std::vector<std::string>& argv, Io& io) {
    const std::string& name = argv[0];
    if (name == "!") {
      // Negation: run the rest and invert the status.
      if (argv.size() < 2) {
        return 1;
      }
      std::vector<std::string> rest(argv.begin() + 1, argv.end());
      auto r = Builtin(rest, io);
      if (!r.ok()) {
        return r;
      }
      return r.value() == 0 ? 1 : 0;
    }
    if (name == "~") {
      // rc's match builtin: `~ subject pattern...` succeeds when any glob
      // pattern matches the subject.
      if (argv.size() < 2) {
        return 1;
      }
      for (size_t i = 2; i < argv.size(); i++) {
        if (GlobMatch(argv[i], argv[1])) {
          return 0;
        }
      }
      return 1;
    }
    if (auto table = std::static_pointer_cast<FunctionTable>(env_->ext)) {
      if (auto fn = table->Find(name)) {
        // Functions run in the caller's environment with their own
        // positional parameters (saved and restored around the call).
        std::vector<std::string> saved_star = env_->Get("*");
        std::vector<std::vector<std::string>> saved_pos;
        for (int i = 1; i <= 9; i++) {
          saved_pos.push_back(env_->Get(StrFormat("%d", i)));
        }
        std::vector<std::string> args(argv.begin() + 1, argv.end());
        env_->Set("*", args);
        for (size_t i = 0; i < 9; i++) {
          if (i < args.size()) {
            env_->SetString(StrFormat("%zu", i + 1), args[i]);
          } else {
            env_->Unset(StrFormat("%zu", i + 1));
          }
        }
        auto r = RunScript(*fn, io);
        env_->Set("*", std::move(saved_star));
        for (int i = 1; i <= 9; i++) {
          env_->Set(StrFormat("%d", i), std::move(saved_pos[static_cast<size_t>(i - 1)]));
        }
        return r;
      }
    }
    if (name == "cd") {
      if (argv.size() > 1) {
        std::string to = JoinPath(cwd_, argv[1]);
        auto node = shell_->vfs()->Walk(to);
        if (!node.ok() || !node.value()->dir()) {
          *io.err += "cd: " + to + ": bad directory\n";
          return 1;
        }
        cwd_ = to;
      } else {
        cwd_ = "/";
      }
      return 0;
    }
    if (name == "echo") {
      std::string line;
      size_t start = 1;
      bool nl = true;
      if (argv.size() > 1 && argv[1] == "-n") {
        nl = false;
        start = 2;
      }
      for (size_t i = start; i < argv.size(); i++) {
        if (i > start) {
          line += ' ';
        }
        line += argv[i];
      }
      if (nl) {
        line += '\n';
      }
      *io.out += line;
      return 0;
    }
    if (name == "eval") {
      std::string src;
      for (size_t i = 1; i < argv.size(); i++) {
        if (i > 1) {
          src += ' ';
        }
        src += argv[i];
      }
      auto parsed = ParseShell(src);
      if (!parsed.ok()) {
        *io.err += parsed.message() + "\n";
        return 1;
      }
      return RunScript(*parsed.value(), io);
    }
    if (name == "exit") {
      exited_ = true;
      return argv.size() > 1 ? static_cast<int>(ParseInt(argv[1])) : 0;
    }
    // External.
    ExecContext ctx;
    ctx.vfs = shell_->vfs();
    ctx.registry = shell_->registry();
    ctx.procs = shell_->procs();
    ctx.env = env_;
    ctx.cwd = cwd_;
    ctx.depth = depth_;
    return shell_->RunArgv(ctx, argv, io);
  }

  // Expands a word to a field list: per-fragment lists combined by rc's
  // distribution rule (singleton × list distributes; equal lengths pair).
  Result<std::vector<std::string>> ExpandWord(const Word& w) {
    std::vector<std::string> acc;
    bool acc_init = false;
    for (const WordFrag& f : w.frags) {
      std::vector<std::string> part;
      switch (f.kind) {
        case WordFrag::Kind::kLit:
        case WordFrag::Kind::kQuoted:
          part = {f.text};
          break;
        case WordFrag::Kind::kVar: {
          if (!f.text.empty() && f.text[0] == '#') {
            part = {StrFormat("%zu", env_->Get(f.text.substr(1)).size())};
          } else {
            part = env_->Get(f.text);
          }
          break;
        }
        case WordFrag::Kind::kBackquote: {
          std::string captured;
          Io sub;
          sub.out = &captured;
          std::string sub_err;
          sub.err = &sub_err;
          auto r = RunScript(*f.script, sub);
          if (!r.ok()) {
            return r.status();
          }
          part = Tokenize(captured);
          break;
        }
      }
      if (!acc_init) {
        acc = std::move(part);
        acc_init = true;
        continue;
      }
      // Distribution rule.
      if (part.empty() || acc.empty()) {
        // Concatenation with an empty list yields the other side unchanged
        // when one side is empty (rc errors; being lenient is friendlier
        // for window tags with empty fields).
        if (acc.empty()) {
          acc = std::move(part);
        }
        continue;
      }
      std::vector<std::string> merged;
      if (acc.size() == 1) {
        for (const std::string& p : part) {
          merged.push_back(acc[0] + p);
        }
      } else if (part.size() == 1) {
        for (const std::string& a : acc) {
          merged.push_back(a + part[0]);
        }
      } else if (acc.size() == part.size()) {
        for (size_t i = 0; i < acc.size(); i++) {
          merged.push_back(acc[i] + part[i]);
        }
      } else {
        return Status::Error("rc: mismatched list lengths in concatenation");
      }
      acc = std::move(merged);
    }
    return acc;
  }

  Shell* shell_;
  Env* env_;
  std::string cwd_;
  int depth_;
  bool exited_ = false;
  bool last_if_taken_ = false;
};

}  // namespace

void Shell::SetVmEnabled(bool on) { g_vm_enabled.store(on, std::memory_order_relaxed); }

bool Shell::VmEnabled() { return g_vm_enabled.load(std::memory_order_relaxed); }

Result<int> Shell::Run(std::string_view src, Env* env, std::string cwd,
                       const std::vector<std::string>& args, Io& io, int depth) {
  if (depth > kMaxDepth) {
    return Status::Error("rc: script recursion too deep");
  }
  if (VmEnabled()) {
    auto compiled = ShellScriptCache::Global().Get(src);
    if (!compiled.ok()) {
      return compiled.status();
    }
    env->Set("*", args);
    for (size_t i = 0; i < args.size() && i < 9; i++) {
      env->SetString(StrFormat("%zu", i + 1), args[i]);
    }
    std::shared_ptr<const Program> prog = compiled.take();
    Vm vm(this, env, std::move(cwd), depth);
    return vm.Run(*prog, io);
  }
  auto parsed = ParseShell(src);
  if (!parsed.ok()) {
    return parsed.status();
  }
  // Positional parameters.
  env->Set("*", args);
  for (size_t i = 0; i < args.size() && i < 9; i++) {
    env->SetString(StrFormat("%zu", i + 1), args[i]);
  }
  Evaluator ev(this, env, std::move(cwd), depth);
  return ev.RunScript(*parsed.value(), io);
}

std::string Shell::ResolveCommand(std::string_view name, std::string_view cwd) const {
  if (IsAbsPath(name)) {
    std::string path = CleanPath(name);
    auto node = vfs_->Walk(path);
    return node.ok() && !node.value()->dir() ? path : std::string();
  }
  // Relative names (with or without internal slashes, so the tool-suite
  // convention `help/rcc` works from any directory): current directory
  // first, then the standard directory of program binaries.
  for (std::string_view dir : {cwd, std::string_view("/bin")}) {
    std::string path = JoinPath(dir, name);
    auto node = vfs_->Walk(path);
    if (node.ok() && !node.value()->dir()) {
      return path;
    }
  }
  return std::string();
}

int Shell::RunArgv(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (argv.empty()) {
    return 0;
  }
  std::string path = ResolveCommand(argv[0], ctx.cwd);
  if (path.empty()) {
    *io.err += argv[0] + ": file does not exist\n";
    return kNotFound;
  }
  std::vector<std::string> resolved = argv;
  resolved[0] = path;
  if (const NativeCommand* native = registry_->Find(path)) {
    return (*native)(ctx, resolved, io);
  }
  // Shell script: run its file contents with $1.. bound to the arguments.
  if (VmEnabled()) {
    if (ctx.depth + 1 > kMaxDepth) {
      // Keep the tree-walker's error ordering: an unreadable script reports
      // its read error even past the recursion limit.
      auto src = vfs_->ReadFile(path);
      *io.err += (src.ok() ? "rc: script recursion too deep" : src.message()) + "\n";
      return 1;
    }
    // The file-keyed cache lets a repeated tool run skip the read and parse.
    auto compiled = ShellScriptCache::Global().GetFile(*vfs_, path);
    if (!compiled.ok()) {
      *io.err += compiled.message() + "\n";
      return 1;
    }
    Env child = ctx.env != nullptr ? ctx.env->Clone() : Env();
    std::vector<std::string> args(argv.begin() + 1, argv.end());
    child.Set("*", args);
    for (size_t i = 0; i < args.size() && i < 9; i++) {
      child.SetString(StrFormat("%zu", i + 1), args[i]);
    }
    std::shared_ptr<const Program> prog = compiled.take();
    Vm vm(this, &child, ctx.cwd, ctx.depth + 1);
    auto r = vm.Run(*prog, io);
    if (!r.ok()) {
      *io.err += r.message() + "\n";
      return 1;
    }
    return r.value();
  }
  auto src = vfs_->ReadFile(path);
  if (!src.ok()) {
    *io.err += src.message() + "\n";
    return 1;
  }
  Env child = ctx.env != nullptr ? ctx.env->Clone() : Env();
  std::vector<std::string> args(argv.begin() + 1, argv.end());
  auto r = Run(src.value(), &child, ctx.cwd, args, io, ctx.depth + 1);
  if (!r.ok()) {
    *io.err += r.message() + "\n";
    return 1;
  }
  return r.value();
}

}  // namespace help
