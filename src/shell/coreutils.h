// The Plan 9-ish userland: native commands installed under /bin in the VFS.
// These are what "execute any external Plan 9 command" runs, and what the
// /help tool scripts compose. Each is a small pure function over the
// in-memory file system and the in-memory stdin/stdout/stderr strings.
#ifndef SRC_SHELL_COREUTILS_H_
#define SRC_SHELL_COREUTILS_H_

#include <cstdint>
#include <string>

#include "src/shell/shell.h"

namespace help {

// Registers: cat cp mv ls grep sed wc date sort uniq head tail touch mkdir rm
// echo fortune news ps adb sleep true false basename dirname.
void RegisterCoreutils(Vfs* vfs, CommandRegistry* registry);

// Formats a Unix timestamp like Plan 9 date(1): "Tue Apr 16 19:30:00 EDT 1991".
std::string FormatDate(uint64_t unix_seconds);

}  // namespace help

#endif  // SRC_SHELL_COREUTILS_H_
