#include "src/shell/scriptcache.h"

#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace help {

ShellScriptCache& ShellScriptCache::Global() {
  static ShellScriptCache* cache = new ShellScriptCache();
  return *cache;
}

std::shared_ptr<const Program> ShellScriptCache::Lookup(std::string_view key,
                                                        const FileSig* want) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  if (want != nullptr && !(it->second->sig == *want)) {
    // The file changed since this entry was recorded; drop it. The compile
    // may still be rescued by the source layer if the contents round-tripped.
    lru_.erase(it->second);
    index_.erase(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  return it->second->program;
}

void ShellScriptCache::Insert(std::string key, const FileSig* sig,
                              std::shared_ptr<const Program> program) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racer beat us to it (or a file entry is being refreshed): update in
    // place and bump.
    it->second->program = std::move(program);
    if (sig != nullptr) {
      it->second->sig = *sig;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{std::move(key), sig != nullptr ? *sig : FileSig(),
                        std::move(program)});
  index_[lru_.front().key] = lru_.begin();
  while (lru_.size() > kCapacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

Result<std::shared_ptr<const Program>> ShellScriptCache::Get(std::string_view src) {
  std::string key = "s:" + std::string(src);
  if (auto p = Lookup(key, nullptr)) {
    OBS_COUNT("shell.compile_cache_hit", 1);
    return p;
  }
  // Compile outside the lock: parsing + lowering is the expensive part, and
  // two threads racing on the same script just compile it twice.
  auto prog = CompileShellSource(src);
  if (!prog.ok()) {
    return prog.status();  // errors are never cached
  }
  OBS_COUNT("shell.compile_cache_miss", 1);
  Insert(std::move(key), nullptr, prog.value());
  return prog;
}

Result<std::shared_ptr<const Program>> ShellScriptCache::GetFile(Vfs& vfs,
                                                                 std::string_view path) {
  std::string fkey;
  FileSig sig;
  auto st = vfs.Stat(path);
  if (st.ok() && !st.value().dir) {
    fkey = StrFormat("f:%llu:", static_cast<unsigned long long>(vfs.id())) +
           std::string(path);
    sig = FileSig{st.value().qid.path, st.value().qid.vers, st.value().mtime,
                  st.value().length};
    if (auto p = Lookup(fkey, &sig)) {
      OBS_COUNT("shell.compile_cache_hit", 1);
      return p;
    }
  }
  auto data = vfs.ReadFile(path);
  if (!data.ok()) {
    return data.status();
  }
  auto prog = Get(data.value());
  if (prog.ok() && !fkey.empty()) {
    Insert(std::move(fkey), &sig, prog.value());
  }
  return prog;
}

void ShellScriptCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t ShellScriptCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace help
