#include "src/shell/mk.h"

#include <set>

#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace help {

const MkRule* Mkfile::Find(std::string_view target) const {
  for (const MkRule& r : rules) {
    if (r.target == target) {
      return &r;
    }
  }
  return nullptr;
}

namespace {

// $NAME and ${NAME} substitution.
std::string SubstVars(std::string_view s, const std::map<std::string, std::string>& vars) {
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '$') {
      out += s[i++];
      continue;
    }
    i++;
    std::string name;
    if (i < s.size() && s[i] == '{') {
      i++;
      while (i < s.size() && s[i] != '}') {
        name += s[i++];
      }
      if (i < s.size()) {
        i++;
      }
    } else {
      while (i < s.size() && (isalnum(static_cast<unsigned char>(s[i])) != 0 || s[i] == '_')) {
        name += s[i++];
      }
    }
    auto it = vars.find(name);
    if (it != vars.end()) {
      out += it->second;
    } else {
      out += "$" + name;  // leave shell variables for the recipe's shell
    }
  }
  return out;
}

}  // namespace

Result<Mkfile> ParseMkfile(std::string_view src) {
  Mkfile mk;
  MkRule* current = nullptr;
  for (const std::string& raw : Split(src, '\n')) {
    if (!raw.empty() && raw[0] == '\t') {
      if (current == nullptr) {
        return Status::Error("mk: recipe line outside rule");
      }
      current->recipe.push_back(SubstVars(raw.substr(1), mk.vars));
      continue;
    }
    std::string_view line = TrimSpace(raw);
    if (line.empty() || line[0] == '#') {
      current = nullptr;
      continue;
    }
    size_t colon = line.find(':');
    size_t eq = line.find('=');
    if (eq != std::string_view::npos && (colon == std::string_view::npos || eq < colon)) {
      std::string name(TrimSpace(line.substr(0, eq)));
      mk.vars[name] = SubstVars(TrimSpace(line.substr(eq + 1)), mk.vars);
      current = nullptr;
      continue;
    }
    if (colon == std::string_view::npos) {
      return Status::Error("mk: expected 'target: deps' line: " + std::string(line));
    }
    MkRule rule;
    rule.target = SubstVars(TrimSpace(line.substr(0, colon)), mk.vars);
    for (const std::string& dep : Tokenize(SubstVars(line.substr(colon + 1), mk.vars))) {
      rule.deps.push_back(dep);
    }
    mk.rules.push_back(std::move(rule));
    current = &mk.rules.back();
  }
  return mk;
}

namespace {

class MkRun {
 public:
  MkRun(ExecContext& ctx, const Mkfile& mk, Io& io) : ctx_(ctx), mk_(mk), io_(io) {}

  // Returns the effective mtime of `name` after (re)building it if needed;
  // 0 means "does not exist and has no rule".
  Result<uint64_t> Build(const std::string& name, int depth) {
    if (depth > 64) {
      return Status::Error("mk: dependency cycle at " + name);
    }
    const MkRule* rule = mk_.Find(name);
    uint64_t self = Mtime(name);
    if (rule == nullptr) {
      if (self == 0) {
        return Status::Error("mk: don't know how to make " + name);
      }
      return self;
    }
    uint64_t newest_dep = 0;
    for (const std::string& dep : rule->deps) {
      auto t = Build(dep, depth + 1);
      if (!t.ok()) {
        return t;
      }
      newest_dep = std::max(newest_dep, t.value());
    }
    if (self == 0 || newest_dep > self) {
      Status s = RunRecipe(*rule);
      if (!s.ok()) {
        return s;
      }
      built_.insert(name);
      self = Mtime(name);
      if (self == 0) {
        // Phony target: pretend it is as fresh as its newest dependency.
        self = newest_dep;
      }
    }
    return self;
  }

  // The reverse mode (`mk -r`): rebuild every stale target in the file.
  Status BuildAllStale() {
    for (const MkRule& rule : mk_.rules) {
      auto t = Build(rule.target, 0);
      if (!t.ok()) {
        return t.status();
      }
    }
    return Status::Ok();
  }

  size_t built_count() const { return built_.size(); }

 private:
  uint64_t Mtime(const std::string& name) const {
    auto st = ctx_.vfs->Stat(JoinPath(ctx_.cwd, name));
    return st.ok() ? st.value().mtime : 0;
  }

  Status RunRecipe(const MkRule& rule) {
    Shell sh(ctx_.vfs, ctx_.registry, ctx_.procs);
    for (const std::string& line : rule.recipe) {
      *io_.out += line + "\n";  // mk echoes recipe lines as it runs them
      // Recipe lines route through Shell::Run and hence the compiled-script
      // cache: a rebuild of N targets sharing recipe text compiles once.
      OBS_COUNT("shell.mk_recipe", 1);
      Env env = ctx_.env != nullptr ? ctx_.env->Clone() : Env();
      env.SetString("target", rule.target);
      env.Set("prereq", rule.deps);
      Io rio;
      rio.out = io_.out;
      rio.err = io_.err;
      auto r = sh.Run(line, &env, ctx_.cwd, {}, rio, ctx_.depth + 1);
      if (!r.ok()) {
        return r.status();
      }
      if (r.value() != 0) {
        return Status::Error(StrFormat("mk: %s: exit status %d", rule.target.c_str(),
                                       r.value()));
      }
    }
    return Status::Ok();
  }

  ExecContext& ctx_;
  const Mkfile& mk_;
  Io& io_;
  std::set<std::string> built_;
};

int MkCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  bool reverse = false;
  std::vector<std::string> targets;
  for (size_t i = 1; i < argv.size(); i++) {
    if (argv[i] == "-r") {
      reverse = true;
    } else {
      targets.push_back(argv[i]);
    }
  }
  auto src = ctx.vfs->ReadFile(JoinPath(ctx.cwd, "mkfile"));
  if (!src.ok()) {
    *io.err += "mk: no mkfile in " + ctx.cwd + "\n";
    return 1;
  }
  auto mkfile = ParseMkfile(src.value());
  if (!mkfile.ok()) {
    *io.err += mkfile.message() + "\n";
    return 1;
  }
  MkRun run(ctx, mkfile.value(), io);
  if (reverse) {
    Status s = run.BuildAllStale();
    if (!s.ok()) {
      *io.err += s.message() + "\n";
      return 1;
    }
    if (run.built_count() == 0) {
      *io.out += "mk: everything is up to date\n";
    }
    return 0;
  }
  if (targets.empty()) {
    if (mkfile.value().rules.empty()) {
      *io.err += "mk: nothing to make\n";
      return 1;
    }
    targets.push_back(mkfile.value().rules[0].target);
  }
  for (const std::string& t : targets) {
    auto r = run.Build(t, 0);
    if (!r.ok()) {
      *io.err += r.message() + "\n";
      return 1;
    }
  }
  if (run.built_count() == 0) {
    *io.out += "mk: '" + targets[0] + "' is up to date\n";
  }
  return 0;
}

}  // namespace

void RegisterMk(Vfs* vfs, CommandRegistry* registry) {
  registry->Register(vfs, "/bin/mk", MkCmd);
}

}  // namespace help
