// The shell's bytecode interpreter: executes Programs produced by the
// compile stage (src/shell/compile.h) over an explicit operand stack of rc
// values (lists of strings). One Vm instance corresponds to one tree-walking
// Evaluator instance: it owns the same run-scoped state (cwd, the exit flag,
// the `if not` latch) and reuses the same Vfs/CommandRegistry/ProcTable
// plumbing, so the two evaluators are observably interchangeable — the
// differential property suite (tests/shell_property_test.cc) holds them to
// bit-identical stdout/stderr/status/namespace.
#ifndef SRC_SHELL_VM_H_
#define SRC_SHELL_VM_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/shell/compile.h"
#include "src/shell/shell.h"

namespace help {

class Vm {
 public:
  Vm(Shell* shell, Env* env, std::string cwd, int depth)
      : shell_(shell), env_(env), cwd_(std::move(cwd)), depth_(depth) {}

  // Executes the program's root chunk. Flushes the shell.vm_ops counter on
  // return. The caller keeps `prog` alive (a cache shared_ptr).
  Result<int> Run(const Program& prog, Io& io);

 private:
  Result<int> RunChunk(const Program& prog, uint32_t ci, Io& io);
  // Builtin/function/external dispatch for an expanded argv — the VM's
  // mirror of the tree-walker's Builtin().
  Result<int> Dispatch(const Program& prog, std::vector<std::string>& argv, Io& io);
  Result<int> CallFunction(const Program& prog, const std::shared_ptr<ShellScript>& body,
                           const std::vector<std::string>& argv, Io& io);

  Shell* shell_;
  Env* env_;
  std::string cwd_;
  int depth_;
  bool exited_ = false;
  bool last_if_taken_ = false;
  uint64_t ops_ = 0;

  // Bodies of functions defined by *other* programs (an eval'd string, a
  // parent shell, the tree-walker): compiled on first call, memoized for the
  // life of this run. The value holds the AST shared_ptr so the raw-pointer
  // key can never dangle or alias.
  std::map<const ShellScript*,
           std::pair<std::shared_ptr<ShellScript>, std::shared_ptr<const Program>>>
      foreign_fns_;
};

}  // namespace help

#endif  // SRC_SHELL_VM_H_
