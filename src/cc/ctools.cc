#include "src/cc/ctools.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/cc/browser.h"
#include "src/cc/clex.h"
#include "src/cc/cpp.h"

namespace help {

namespace {

int CppCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  std::string file;
  for (size_t i = 1; i < argv.size(); i++) {
    if (!argv[i].empty() && argv[i][0] == '-') {
      continue;  // -D/-I etc. accepted and ignored
    }
    file = argv[i];
  }
  if (file.empty()) {
    *io.out += io.in;  // filter mode: pass stdin through
    return 0;
  }
  auto pp = Preprocess(*ctx.vfs, JoinPath(ctx.cwd, file));
  if (!pp.ok()) {
    *io.err += "cpp: " + pp.message() + "\n";
    return 1;
  }
  *io.out += pp.take();
  return 0;
}

struct RccArgs {
  std::string id;
  int line = 0;
  std::string file;          // -f: the file containing the marked identifier
  std::string src_name;      // -s: function whose definition is wanted
  bool uses = false;         // -u
  std::vector<std::string> files;
};

RccArgs ParseRccArgs(const std::vector<std::string>& argv) {
  RccArgs a;
  for (size_t i = 1; i < argv.size(); i++) {
    const std::string& s = argv[i];
    if (HasPrefix(s, "-i")) {
      a.id = s.substr(2);
    } else if (HasPrefix(s, "-n")) {
      a.line = static_cast<int>(ParseInt(s.substr(2)));
    } else if (HasPrefix(s, "-f")) {
      a.file = s.substr(2);
    } else if (HasPrefix(s, "-s")) {
      a.src_name = s.substr(2);
    } else if (s == "-u") {
      a.uses = true;
    } else if (HasPrefix(s, "-")) {
      // -w -g and friends: accepted for compatibility, ignored.
    } else {
      a.files.push_back(s);
    }
  }
  return a;
}

// Prints a source coordinate the way the paper's windows show them: paths
// under `dir` are relative; files reached only via #include get a "./".
std::string DisplayPath(const std::string& file, const std::string& dir,
                        const std::vector<std::string>& named_files) {
  std::string rel = file;
  std::string prefix = dir == "/" ? dir : dir + "/";
  if (HasPrefix(rel, prefix)) {
    rel = rel.substr(prefix.size());
  }
  for (const std::string& f : named_files) {
    if (BasePath(f) == BasePath(rel)) {
      return rel;
    }
  }
  if (rel.find('/') == std::string::npos) {
    return "./" + rel;
  }
  return rel;
}

int RccCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  RccArgs a = ParseRccArgs(argv);
  CBrowser browser;

  std::string anchor_file;  // full path of -f target
  if (!a.file.empty()) {
    anchor_file = JoinPath(ctx.cwd, a.file);
  }

  if (!a.files.empty()) {
    for (const std::string& f : a.files) {
      Status s = browser.AddFile(*ctx.vfs, JoinPath(ctx.cwd, f));
      if (!s.ok()) {
        *io.err += "rcc: " + s.message() + "\n";
        return 1;
      }
    }
    // The anchor file must be parsed too, or the marked identifier is
    // unresolvable.
    if (!anchor_file.empty()) {
      bool parsed = std::any_of(a.files.begin(), a.files.end(), [&](const std::string& f) {
        return JoinPath(ctx.cwd, f) == anchor_file;
      });
      if (!parsed) {
        Status s = browser.AddFile(*ctx.vfs, anchor_file);
        if (!s.ok()) {
          *io.err += "rcc: " + s.message() + "\n";
          return 1;
        }
      }
    }
  } else if (!io.in.empty()) {
    // Preprocessed translation unit on stdin (the decl pipeline).
    Status s = browser.AddTranslationUnit(io.in, anchor_file.empty() ? "<stdin>"
                                                                     : anchor_file);
    if (!s.ok()) {
      *io.err += "rcc: " + s.message() + "\n";
      return 1;
    }
  } else {
    *io.err += "usage: rcc [-u] [-sname] -iID -nLINE -fFILE [files...]\n";
    return 1;
  }

  std::string dir = anchor_file.empty() ? ctx.cwd : DirPath(anchor_file);

  if (!a.src_name.empty()) {
    const CSymbol* f = browser.FindFunc(a.src_name);
    if (f == nullptr) {
      *io.err += "rcc: no definition of " + a.src_name + "\n";
      return 1;
    }
    *io.out += StrFormat("%s:%d\n", DisplayPath(f->file, dir, a.files).c_str(), f->line);
    return 0;
  }

  if (a.id.empty()) {
    *io.err += "rcc: no identifier marked (-i)\n";
    return 1;
  }
  const CSymbol* sym = browser.ResolveAt(a.id, anchor_file, a.line);
  if (sym == nullptr) {
    *io.err += "rcc: cannot resolve " + a.id + "\n";
    return 1;
  }
  if (a.uses) {
    for (const CUse& u : browser.UsesOf(sym->id)) {
      *io.out += StrFormat("%s:%d\n", DisplayPath(u.file, dir, a.files).c_str(), u.line);
    }
    return 0;
  }
  // Declaration query: one line, "file:line identifier".
  *io.out += StrFormat("%s:%d %s\n", DisplayPath(sym->file, dir, a.files).c_str(),
                       sym->line, sym->name.c_str());
  return 0;
}

// vc: "compile" a C file — lex/preprocess it for real (reporting genuine
// syntax-level errors) and stamp <stem>.v.
int VcCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  std::string file;
  for (size_t i = 1; i < argv.size(); i++) {
    if (!HasPrefix(argv[i], "-")) {
      file = argv[i];
    }
  }
  if (file.empty()) {
    *io.err += "usage: vc [-w] file.c\n";
    return 1;
  }
  std::string full = JoinPath(ctx.cwd, file);
  auto pp = Preprocess(*ctx.vfs, full);
  if (!pp.ok()) {
    *io.err += "vc: " + pp.message() + "\n";
    return 1;
  }
  auto toks = CLex(pp.value(), full);
  if (!toks.ok()) {
    *io.err += "vc: " + toks.message() + "\n";
    return 1;
  }
  // Balanced-delimiter check: the cheapest real syntax diagnostic.
  int brace = 0;
  int paren = 0;
  for (const CToken& t : toks.value()) {
    if (t.kind != CTok::kPunct) {
      continue;
    }
    if (t.text == "{") {
      brace++;
    } else if (t.text == "}") {
      brace--;
    } else if (t.text == "(") {
      paren++;
    } else if (t.text == ")") {
      paren--;
    }
    if (brace < 0 || paren < 0) {
      *io.err += StrFormat("vc: %s:%d: unbalanced '%s'\n", t.file.c_str(), t.line,
                           t.text.c_str());
      return 1;
    }
  }
  if (brace != 0 || paren != 0) {
    *io.err += "vc: " + file + ": unbalanced braces at end of file\n";
    return 1;
  }
  std::string stem = file;
  if (HasSuffix(stem, ".c")) {
    stem = stem.substr(0, stem.size() - 2);
  }
  std::string obj = JoinPath(ctx.cwd, stem + ".v");
  Status s = ctx.vfs->WriteFile(obj, StrFormat("object %s ntokens %zu\n", file.c_str(),
                                               toks.value().size()));
  if (!s.ok()) {
    *io.err += "vc: " + s.message() + "\n";
    return 1;
  }
  return 0;
}

// vl: "link" — verify objects exist, stamp the output binary.
int VlCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  std::string out = "v.out";
  std::vector<std::string> objs;
  for (size_t i = 1; i < argv.size(); i++) {
    if (argv[i] == "-o" && i + 1 < argv.size()) {
      out = argv[++i];
    } else if (HasPrefix(argv[i], "-l") || HasPrefix(argv[i], "-")) {
      continue;  // libraries and flags: accepted
    } else {
      objs.push_back(argv[i]);
    }
  }
  std::string manifest = "#!binary\n";
  for (const std::string& o : objs) {
    auto st = ctx.vfs->Stat(JoinPath(ctx.cwd, o));
    if (!st.ok()) {
      *io.err += "vl: cannot open " + o + "\n";
      return 1;
    }
    manifest += o + "\n";
  }
  Status s = ctx.vfs->WriteFile(JoinPath(ctx.cwd, out), manifest);
  if (!s.ok()) {
    *io.err += "vl: " + s.message() + "\n";
    return 1;
  }
  return 0;
}

}  // namespace

void RegisterCompilerTools(Vfs* vfs, CommandRegistry* registry) {
  registry->Register(vfs, "/bin/cpp", CppCmd);
  registry->Register(vfs, "/bin/help/rcc", RccCmd);
  registry->Register(vfs, "/bin/vc", VcCmd);
  registry->Register(vfs, "/bin/vl", VlCmd);
}

}  // namespace help
