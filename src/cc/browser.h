// The C browser: "a special version of the compiler [that] has no code
// generator: it parses the program and manages the symbol table". It powers
// /help/cbr's `decl` and `uses` (and `src`), giving language-aware answers
// where grep would report "every occurrence of the letter n in the program".
//
// The parser is a scope-tracking declaration reader for 1991 ANSI C: it
// learns typedefs, records declarations of globals, functions, parameters
// and block-locals, and resolves every identifier occurrence in executable
// code to the symbol it denotes under C scoping rules. It is deliberately
// not a full expression parser — browsing needs name resolution, not types.
#ifndef SRC_CC_BROWSER_H_
#define SRC_CC_BROWSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/vfs.h"

namespace help {

enum class CSymKind {
  kTypedef,
  kStructTag,
  kEnumConst,
  kFunc,
  kGlobalVar,
  kParam,
  kLocal,
  kField,
  kImplicit,  // referenced but never declared in parsed text (libc, etc.)
};

struct CSymbol {
  int id = -1;
  std::string name;
  CSymKind kind = CSymKind::kImplicit;
  std::string file;  // declaration coordinate
  int line = 0;
  int col = 0;
  int func = -1;  // enclosing function symbol for params/locals, else -1
  bool is_definition = false;  // for kFunc: definition vs prototype
};

struct CUse {
  int sym = -1;
  std::string file;
  int line = 0;
  int col = 0;
  bool is_decl = false;
};

class CBrowser {
 public:
  // Parses preprocessed text (with #line markers) as one translation unit.
  Status AddTranslationUnit(std::string_view text, std::string_view filename);

  // Convenience: preprocess `path` from `vfs`, then add it.
  Status AddFile(const Vfs& vfs, std::string_view path);

  const std::vector<CSymbol>& symbols() const { return symbols_; }
  const std::vector<CUse>& all_uses() const { return uses_; }

  // Resolves the identifier occurrence nearest to `file`:`line` with the
  // given name (an occurrence on that exact line is preferred; the column is
  // unknown to callers since help passes only line context). Null if the
  // name never occurs there.
  const CSymbol* ResolveAt(std::string_view name, std::string_view file, int line) const;

  // All occurrences (declaration + uses) of symbol `id`, in file/line order.
  std::vector<CUse> UsesOf(int id) const;

  // Function definition lookup (the cbr `src` command).
  const CSymbol* FindFunc(std::string_view name) const;
  // File-scope lookup by name (globals, typedefs, functions).
  const CSymbol* FindGlobal(std::string_view name) const;

  const CSymbol* Sym(int id) const {
    return id >= 0 && id < static_cast<int>(symbols_.size()) ? &symbols_[id] : nullptr;
  }

 private:
  friend class CParser;

  // Returns an existing symbol with identical identity or registers a new
  // one. File-scope symbols deduplicate on (name, kind, file, line) so that
  // headers parsed in several translation units yield one symbol.
  int Intern(const CSymbol& s);
  void RecordUse(int sym, const std::string& file, int line, int col, bool is_decl);

  std::vector<CSymbol> symbols_;
  std::vector<CUse> uses_;
  std::map<std::string, int> file_scope_;  // name -> symbol id (globals/typedefs/funcs)
  std::set<std::string> typedefs_;         // known type names, shared across TUs
  std::set<std::string> use_keys_;         // dedup of (sym,file,line,col)
};

}  // namespace help

#endif  // SRC_CC_BROWSER_H_
