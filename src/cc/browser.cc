#include "src/cc/browser.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/cc/clex.h"
#include "src/cc/cpp.h"

namespace help {

namespace {

bool IsSpecifierKeyword(std::string_view s) {
  static const std::set<std::string, std::less<>> kSpec = {
      "void",   "char",     "short",  "int",    "long",  "float",
      "double", "signed",   "unsigned", "struct", "union", "enum",
      "const",  "volatile", "static", "extern", "register", "auto"};
  return kSpec.count(s) != 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parser.

class CParser {
 public:
  CParser(CBrowser* browser, std::vector<CToken> toks)
      : b_(browser), toks_(std::move(toks)) {}

  Status Parse() {
    while (!AtEof()) {
      size_t before = pos_;
      ParseTopLevel();
      if (pos_ == before) {
        Next();  // never stall
      }
    }
    return Status::Ok();
  }

 private:
  // --- token helpers ---
  const CToken& Cur() const { return toks_[pos_]; }
  const CToken& Ahead(size_t k) const {
    size_t i = std::min(pos_ + k, toks_.size() - 1);
    return toks_[i];
  }
  bool AtEof() const { return Cur().kind == CTok::kEof; }
  void Next() {
    if (!AtEof()) {
      pos_++;
    }
  }
  bool IsPunct(std::string_view p) const {
    return Cur().kind == CTok::kPunct && Cur().text == p;
  }
  bool IsKw(std::string_view k) const {
    return Cur().kind == CTok::kKeyword && Cur().text == k;
  }
  void SkipTo(std::string_view p) {  // error recovery
    int depth = 0;
    while (!AtEof()) {
      if (depth == 0 && IsPunct(p)) {
        Next();
        return;
      }
      if (IsPunct("{") || IsPunct("(") || IsPunct("[")) {
        depth++;
      } else if (IsPunct("}") || IsPunct(")") || IsPunct("]")) {
        depth--;
      }
      Next();
    }
  }

  bool AtTypeStart() const {
    if (Cur().kind == CTok::kKeyword) {
      return IsSpecifierKeyword(Cur().text) || Cur().text == "typedef";
    }
    if (Cur().kind == CTok::kIdent && b_->typedefs_.count(Cur().text) != 0) {
      // A typedef name starts a declaration only if what follows looks like
      // a declarator ("Page *q;", "Rune r;"), not an expression ("Page + 1").
      const CToken& nx = Ahead(1);
      if (nx.kind == CTok::kIdent) {
        return true;
      }
      if (nx.kind == CTok::kPunct && (nx.text == "*" || nx.text == "(")) {
        // "T *x" is a declaration at statement start; "T * x" as expression
        // is vanishingly rare in real code — accept as declaration.
        return true;
      }
      return false;
    }
    return false;
  }

  // --- scopes ---
  void PushScope() { scopes_.emplace_back(); }
  void PopScope() {
    if (!scopes_.empty()) {
      scopes_.pop_back();
    }
  }
  void Bind(const std::string& name, int sym) {
    if (!scopes_.empty()) {
      scopes_.back()[name] = sym;
    }
  }
  int Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto hit = it->find(name);
      if (hit != it->end()) {
        return hit->second;
      }
    }
    auto hit = b_->file_scope_.find(name);
    return hit == b_->file_scope_.end() ? -1 : hit->second;
  }

  int DeclareSymbol(const CToken& tok, CSymKind kind) {
    CSymbol s;
    s.name = tok.text;
    s.kind = kind;
    s.file = tok.file;
    s.line = tok.line;
    s.col = tok.col;
    s.func = current_func_;
    int id = b_->Intern(s);
    b_->RecordUse(id, tok.file, tok.line, tok.col, /*is_decl=*/true);
    if (kind == CSymKind::kParam || kind == CSymKind::kLocal) {
      Bind(tok.text, id);
    } else if (kind != CSymKind::kField) {
      b_->file_scope_[tok.text] = id;
    }
    return id;
  }

  void RecordIdentUse(const CToken& tok) {
    int id = Lookup(tok.text);
    if (id < 0) {
      // Implicit extern (strlen, print, ...): declare lazily at first use so
      // later references unify.
      CSymbol s;
      s.name = tok.text;
      s.kind = CSymKind::kImplicit;
      s.file = tok.file;
      s.line = tok.line;
      s.col = tok.col;
      id = b_->Intern(s);
      b_->file_scope_[tok.text] = id;
    }
    b_->RecordUse(id, tok.file, tok.line, tok.col, /*is_decl=*/false);
  }

  // --- grammar ---

  void ParseTopLevel() {
    if (IsPunct(";")) {
      Next();
      return;
    }
    if (IsKw("typedef")) {
      Next();
      ParseDeclSpecifiers();
      while (!AtEof() && !IsPunct(";")) {
        Declarator d = ParseDeclarator(/*in_params=*/false);
        if (!d.name.empty()) {
          b_->typedefs_.insert(d.name);
          DeclareSymbol(d.name_tok, CSymKind::kTypedef);
        }
        if (IsPunct(",")) {
          Next();
          continue;
        }
        break;
      }
      SkipTo(";");
      return;
    }
    if (!AtTypeStart()) {
      // Not a declaration we understand (stray macro call, etc.): skip the
      // statement conservatively.
      SkipTo(";");
      return;
    }
    ParseDeclSpecifiers();
    if (IsPunct(";")) {  // pure struct/enum definition
      Next();
      return;
    }
    while (!AtEof()) {
      Declarator d = ParseDeclarator(/*in_params=*/false);
      if (d.is_func && IsPunct("{")) {
        CSymbol s;
        s.name = d.name;
        s.kind = CSymKind::kFunc;
        s.file = d.name_tok.file;
        s.line = d.name_tok.line;
        s.col = d.name_tok.col;
        s.is_definition = true;
        int id = b_->Intern(s);
        b_->RecordUse(id, s.file, s.line, s.col, /*is_decl=*/true);
        b_->file_scope_[d.name] = id;
        ParseFunctionBody(id, d.params);
        return;
      }
      if (!d.name.empty()) {
        DeclareSymbol(d.name_tok, d.is_func ? CSymKind::kFunc : CSymKind::kGlobalVar);
      }
      if (IsPunct("=")) {
        Next();
        ScanInitializer();
      }
      if (IsPunct(",")) {
        Next();
        continue;
      }
      break;
    }
    SkipTo(";");
  }

  // Consumes declaration specifiers, handling struct/union/enum bodies.
  void ParseDeclSpecifiers() {
    while (!AtEof()) {
      if (Cur().kind == CTok::kKeyword && IsSpecifierKeyword(Cur().text)) {
        bool aggregate = Cur().text == "struct" || Cur().text == "union";
        bool is_enum = Cur().text == "enum";
        Next();
        if (aggregate || is_enum) {
          if (Cur().kind == CTok::kIdent) {
            // Tag: declaration if a body follows, use otherwise.
            const CToken tag = Cur();
            Next();
            if (IsPunct("{")) {
              DeclareTag(tag);
            } else {
              int id = Lookup("struct " + tag.text);
              if (id >= 0) {
                b_->RecordUse(id, tag.file, tag.line, tag.col, false);
              }
            }
          }
          if (IsPunct("{")) {
            if (is_enum) {
              ParseEnumBody();
            } else {
              ParseStructBody();
            }
          }
        }
        continue;
      }
      if (Cur().kind == CTok::kIdent && b_->typedefs_.count(Cur().text) != 0 &&
          !type_seen_guard_) {
        // Typedef name as base type; record the use of the typedef.
        int id = Lookup(Cur().text);
        if (id >= 0) {
          b_->RecordUse(id, Cur().file, Cur().line, Cur().col, false);
        }
        Next();
        type_seen_guard_ = true;
        continue;
      }
      break;
    }
    type_seen_guard_ = false;
  }

  void DeclareTag(const CToken& tag) {
    CSymbol s;
    s.name = "struct " + tag.text;
    s.kind = CSymKind::kStructTag;
    s.file = tag.file;
    s.line = tag.line;
    s.col = tag.col;
    int id = b_->Intern(s);
    b_->RecordUse(id, tag.file, tag.line, tag.col, true);
    b_->file_scope_[s.name] = id;
  }

  void ParseStructBody() {
    // At '{'. Fields are declarations; nested aggregates recurse.
    Next();
    while (!AtEof() && !IsPunct("}")) {
      if (IsPunct(";")) {
        Next();
        continue;
      }
      size_t before = pos_;
      ParseDeclSpecifiers();
      while (!AtEof() && !IsPunct(";") && !IsPunct("}")) {
        Declarator d = ParseDeclarator(/*in_params=*/false);
        if (!d.name.empty()) {
          DeclareSymbol(d.name_tok, CSymKind::kField);
        }
        if (IsPunct(":")) {  // bitfield width
          Next();
          if (!AtEof()) {
            Next();
          }
        }
        if (IsPunct(",")) {
          Next();
          continue;
        }
        break;
      }
      if (IsPunct(";")) {
        Next();
      } else if (pos_ == before) {
        Next();  // junk token: never stall
      }
    }
    if (IsPunct("}")) {
      Next();
    }
  }

  void ParseEnumBody() {
    Next();  // '{'
    while (!AtEof() && !IsPunct("}")) {
      if (Cur().kind == CTok::kIdent) {
        DeclareSymbol(Cur(), CSymKind::kEnumConst);
        Next();
        if (IsPunct("=")) {
          Next();
          while (!AtEof() && !IsPunct(",") && !IsPunct("}")) {
            if (Cur().kind == CTok::kIdent) {
              RecordIdentUse(Cur());
            }
            Next();
          }
        }
      }
      if (IsPunct(",")) {
        Next();
      } else if (!IsPunct("}")) {
        Next();
      }
    }
    if (IsPunct("}")) {
      Next();
    }
  }

  struct Declarator {
    std::string name;
    CToken name_tok;
    bool is_func = false;
    std::vector<CToken> params;  // parameter name tokens, in order
  };

  // Parses one declarator: pointers, parenthesized declarators, the declared
  // identifier, then ()/[] suffixes. With in_params, an abstract declarator
  // (no name) is allowed.
  Declarator ParseDeclarator(bool in_params) {
    Declarator d;
    while (IsPunct("*") || IsKw("const") || IsKw("volatile")) {
      Next();
    }
    if (IsPunct("(")) {
      Next();
      d = ParseDeclarator(in_params);
      if (IsPunct(")")) {
        Next();
      }
    } else if (Cur().kind == CTok::kIdent) {
      // In a parameter list, a typedef name here is a type, not the declared
      // identifier ("int f(Page)" is abstract).
      if (!(in_params && b_->typedefs_.count(Cur().text) != 0 &&
            (Ahead(1).kind != CTok::kIdent))) {
        d.name = Cur().text;
        d.name_tok = Cur();
        Next();
      }
    }
    // Suffixes.
    while (!AtEof()) {
      if (IsPunct("(")) {
        d.is_func = true;
        Next();
        ParseParams(&d);
        continue;
      }
      if (IsPunct("[")) {
        Next();
        int depth = 1;
        while (!AtEof() && depth > 0) {
          if (IsPunct("[")) {
            depth++;
          } else if (IsPunct("]")) {
            depth--;
          } else if (Cur().kind == CTok::kIdent && depth > 0) {
            RecordIdentUse(Cur());
          }
          Next();
        }
        continue;
      }
      break;
    }
    return d;
  }

  // At the token after '('. Collects parameter name tokens until ')'.
  void ParseParams(Declarator* d) {
    std::vector<CToken> chunk_idents;
    int depth = 1;
    bool chunk_has_type = false;
    auto flush = [&]() {
      // The declared parameter name is the last identifier in the chunk,
      // provided the chunk has a type before it (so "int" alone or "void"
      // declares nothing) or the identifier is not a known type name
      // (K&R-ish "f(x)" identifier lists).
      if (chunk_idents.empty()) {
        chunk_has_type = false;
        return;
      }
      const CToken& last = chunk_idents.back();
      bool last_is_type = b_->typedefs_.count(last.text) != 0;
      if ((chunk_has_type || chunk_idents.size() > 1) && !last_is_type) {
        d->params.push_back(last);
      } else if (!chunk_has_type && !last_is_type && chunk_idents.size() == 1) {
        d->params.push_back(last);  // identifier-list style
      }
      chunk_idents.clear();
      chunk_has_type = false;
    };
    while (!AtEof() && depth > 0) {
      if (IsPunct("(")) {
        depth++;
      } else if (IsPunct(")")) {
        depth--;
        if (depth == 0) {
          flush();
          Next();
          return;
        }
      } else if (IsPunct(",") && depth == 1) {
        flush();
      } else if (Cur().kind == CTok::kIdent) {
        if (b_->typedefs_.count(Cur().text) != 0) {
          chunk_has_type = true;
        }
        chunk_idents.push_back(Cur());
      } else if (Cur().kind == CTok::kKeyword && IsSpecifierKeyword(Cur().text)) {
        chunk_has_type = true;
      }
      Next();
    }
  }

  void ParseFunctionBody(int func_sym, const std::vector<CToken>& params) {
    int saved_func = current_func_;
    current_func_ = func_sym;
    PushScope();
    for (const CToken& p : params) {
      DeclareSymbol(p, CSymKind::kParam);
    }
    // At '{'.
    Next();
    PushScope();
    int depth = 1;
    bool stmt_start = true;
    while (!AtEof() && depth > 0) {
      if (IsPunct("{")) {
        depth++;
        PushScope();
        stmt_start = true;
        Next();
        continue;
      }
      if (IsPunct("}")) {
        depth--;
        PopScope();
        stmt_start = true;
        Next();
        continue;
      }
      if (IsPunct(";")) {
        stmt_start = true;
        Next();
        continue;
      }
      if (IsKw("case")) {
        Next();
        while (!AtEof() && !IsPunct(":")) {
          if (Cur().kind == CTok::kIdent) {
            RecordIdentUse(Cur());
          }
          Next();
        }
        if (IsPunct(":")) {
          Next();
        }
        stmt_start = true;
        continue;
      }
      if (IsKw("default")) {
        Next();
        if (IsPunct(":")) {
          Next();
        }
        stmt_start = true;
        continue;
      }
      if (IsKw("goto")) {
        Next();
        if (Cur().kind == CTok::kIdent) {
          Next();  // label, not a variable use
        }
        continue;
      }
      if (Cur().kind == CTok::kKeyword) {
        if (stmt_start && AtTypeStart()) {
          ParseLocalDeclaration();
          stmt_start = true;
          continue;
        }
        Next();
        continue;
      }
      if (Cur().kind == CTok::kIdent) {
        // Label definition: "name:" at statement start (but not "name ::").
        if (stmt_start && Ahead(1).kind == CTok::kPunct && Ahead(1).text == ":") {
          Next();
          Next();
          stmt_start = true;
          continue;
        }
        if (stmt_start && AtTypeStart()) {
          ParseLocalDeclaration();
          stmt_start = true;
          continue;
        }
        // Struct member after . or -> is a field reference, not a name use.
        bool member = pos_ > 0 && toks_[pos_ - 1].kind == CTok::kPunct &&
                      (toks_[pos_ - 1].text == "." || toks_[pos_ - 1].text == "->");
        if (!member) {
          RecordIdentUse(Cur());
        }
        stmt_start = false;
        Next();
        continue;
      }
      stmt_start = false;
      Next();
    }
    PopScope();  // body
    PopScope();  // params
    current_func_ = saved_func;
  }

  void ParseLocalDeclaration() {
    ParseDeclSpecifiers();
    while (!AtEof() && !IsPunct(";")) {
      Declarator d = ParseDeclarator(/*in_params=*/false);
      if (!d.name.empty()) {
        DeclareSymbol(d.name_tok, CSymKind::kLocal);
      }
      if (IsPunct("=")) {
        Next();
        ScanInitializer();
      }
      if (IsPunct(",")) {
        Next();
        continue;
      }
      break;
    }
    if (IsPunct(";")) {
      Next();
    }
  }

  // Records identifier uses in an initializer, up to an unnested ',' or ';'.
  void ScanInitializer() {
    int depth = 0;
    while (!AtEof()) {
      if (depth == 0 && (IsPunct(",") || IsPunct(";"))) {
        return;
      }
      if (IsPunct("(") || IsPunct("[") || IsPunct("{")) {
        depth++;
      } else if (IsPunct(")") || IsPunct("]") || IsPunct("}")) {
        depth--;
      } else if (Cur().kind == CTok::kIdent) {
        bool member = pos_ > 0 && toks_[pos_ - 1].kind == CTok::kPunct &&
                      (toks_[pos_ - 1].text == "." || toks_[pos_ - 1].text == "->");
        if (!member) {
          RecordIdentUse(Cur());
        }
      }
      Next();
    }
  }

  CBrowser* b_;
  std::vector<CToken> toks_;
  size_t pos_ = 0;
  std::vector<std::map<std::string, int>> scopes_;
  int current_func_ = -1;
  bool type_seen_guard_ = false;
};

// ---------------------------------------------------------------------------
// Browser.

int CBrowser::Intern(const CSymbol& s) {
  // File-scope symbols deduplicate on identity so headers shared by several
  // translation units produce a single symbol.
  bool file_scope = s.kind != CSymKind::kParam && s.kind != CSymKind::kLocal;
  if (file_scope) {
    for (const CSymbol& existing : symbols_) {
      if (existing.name == s.name && existing.kind == s.kind && existing.file == s.file &&
          existing.line == s.line) {
        return existing.id;
      }
    }
    // A global/function seen again (extern declaration vs definition, or an
    // implicit upgraded by a real declaration): unify by name.
    auto hit = file_scope_.find(s.name);
    if (hit != file_scope_.end()) {
      CSymbol& existing = symbols_[static_cast<size_t>(hit->second)];
      if (existing.kind == CSymKind::kImplicit && s.kind != CSymKind::kImplicit) {
        // Promote: the real declaration wins.
        int keep = existing.id;
        existing.kind = s.kind;
        existing.file = s.file;
        existing.line = s.line;
        existing.col = s.col;
        existing.is_definition = s.is_definition;
        return keep;
      }
      if (s.kind == existing.kind ||
          (s.kind == CSymKind::kFunc && existing.kind == CSymKind::kFunc)) {
        if (s.is_definition && !existing.is_definition) {
          existing.file = s.file;
          existing.line = s.line;
          existing.col = s.col;
          existing.is_definition = true;
        }
        return existing.id;
      }
    }
  }
  CSymbol copy = s;
  copy.id = static_cast<int>(symbols_.size());
  symbols_.push_back(copy);
  return copy.id;
}

void CBrowser::RecordUse(int sym, const std::string& file, int line, int col,
                         bool is_decl) {
  std::string key = StrFormat("%d@%s:%d:%d", sym, file.c_str(), line, col);
  if (!use_keys_.insert(key).second) {
    return;
  }
  uses_.push_back({sym, file, line, col, is_decl});
}

Status CBrowser::AddTranslationUnit(std::string_view text, std::string_view filename) {
  auto toks = CLex(text, filename);
  if (!toks.ok()) {
    return toks.status();
  }
  CParser parser(this, toks.take());
  return parser.Parse();
}

Status CBrowser::AddFile(const Vfs& vfs, std::string_view path) {
  auto pp = Preprocess(vfs, path);
  if (!pp.ok()) {
    return pp.status();
  }
  return AddTranslationUnit(pp.value(), path);
}

const CSymbol* CBrowser::ResolveAt(std::string_view name, std::string_view file,
                                   int line) const {
  const CUse* best = nullptr;
  int best_dist = -1;
  for (const CUse& u : uses_) {
    const CSymbol& s = symbols_[static_cast<size_t>(u.sym)];
    if (s.name != name || u.file != file) {
      continue;
    }
    int dist = std::abs(u.line - line);
    if (best == nullptr || dist < best_dist) {
      best = &u;
      best_dist = dist;
    }
  }
  if (best == nullptr) {
    // Fall back to a file-scope symbol with that name.
    return FindGlobal(name);
  }
  return &symbols_[static_cast<size_t>(best->sym)];
}

std::vector<CUse> CBrowser::UsesOf(int id) const {
  std::vector<CUse> out;
  for (const CUse& u : uses_) {
    if (u.sym == id) {
      out.push_back(u);
    }
  }
  std::sort(out.begin(), out.end(), [](const CUse& a, const CUse& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.col < b.col;
  });
  return out;
}

const CSymbol* CBrowser::FindFunc(std::string_view name) const {
  const CSymbol* decl = nullptr;
  for (const CSymbol& s : symbols_) {
    if (s.kind == CSymKind::kFunc && s.name == name) {
      if (s.is_definition) {
        return &s;
      }
      decl = &s;
    }
  }
  return decl;
}

const CSymbol* CBrowser::FindGlobal(std::string_view name) const {
  auto it = file_scope_.find(std::string(name));
  return it == file_scope_.end() ? nullptr : &symbols_[static_cast<size_t>(it->second)];
}

}  // namespace help
