// Preprocessor-lite: inlines #include "file" (relative to the including
// file, then /sys/include) and #include <file> (/sys/include only), with
// include-once semantics per translation unit, emitting `#line N "file"`
// markers so the lexer keeps exact source coordinates. All other lines pass
// through untouched; the lexer skips remaining directives.
#ifndef SRC_CC_CPP_H_
#define SRC_CC_CPP_H_

#include <string>

#include "src/base/status.h"
#include "src/fs/vfs.h"

namespace help {

// Preprocesses `path` from `vfs`. Unresolvable <system> includes are skipped
// silently (the browser treats their symbols as implicit externs);
// unresolvable "local" includes are an error.
Result<std::string> Preprocess(const Vfs& vfs, std::string_view path);

}  // namespace help

#endif  // SRC_CC_CPP_H_
