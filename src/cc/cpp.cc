#include "src/cc/cpp.h"

#include <set>

#include "src/base/strings.h"

namespace help {

namespace {

constexpr char kSysInclude[] = "/sys/include";

struct CppState {
  const Vfs* vfs;
  std::set<std::string> visited;  // include-once per translation unit
};

Status Expand(CppState* st, const std::string& path, std::string* out, int depth) {
  if (depth > 32) {
    return Status::Error("cpp: include nesting too deep at " + path);
  }
  auto data = st->vfs->ReadFile(path);
  if (!data.ok()) {
    return data.status();
  }
  st->visited.insert(path);
  *out += StrFormat("#line 1 \"%s\"\n", path.c_str());
  int lineno = 0;
  for (const std::string& line : Split(data.value(), '\n')) {
    lineno++;
    std::string_view trimmed = TrimSpace(line);
    if (!HasPrefix(trimmed, "#include")) {
      *out += line;
      *out += '\n';
      continue;
    }
    std::string_view rest = TrimSpace(trimmed.substr(8));
    bool local;
    char close;
    if (!rest.empty() && rest[0] == '"') {
      local = true;
      close = '"';
    } else if (!rest.empty() && rest[0] == '<') {
      local = false;
      close = '>';
    } else {
      *out += line;
      *out += '\n';
      continue;
    }
    size_t end = rest.find(close, 1);
    if (end == std::string_view::npos) {
      return Status::Error(StrFormat("%s:%d: bad #include", path.c_str(), lineno));
    }
    std::string name(rest.substr(1, end - 1));
    std::string resolved;
    if (local) {
      std::string rel = JoinPath(DirPath(path), name);
      if (st->vfs->Walk(rel).ok()) {
        resolved = rel;
      } else {
        std::string sys = JoinPath(kSysInclude, name);
        if (st->vfs->Walk(sys).ok()) {
          resolved = sys;
        } else {
          return Status::Error(
              StrFormat("%s:%d: include file %s not found", path.c_str(), lineno,
                        name.c_str()));
        }
      }
    } else {
      std::string sys = JoinPath(kSysInclude, name);
      if (st->vfs->Walk(sys).ok()) {
        resolved = sys;
      } else {
        // Unmodelled system header: skip, leaving a breadcrumb comment.
        *out += StrFormat("/* cpp: skipped <%s> */\n", name.c_str());
        continue;
      }
    }
    if (st->visited.count(resolved) != 0) {
      *out += '\n';  // keep line numbers stable for the rest of this file
      continue;
    }
    Status s = Expand(st, resolved, out, depth + 1);
    if (!s.ok()) {
      return s;
    }
    *out += StrFormat("#line %d \"%s\"\n", lineno + 1, path.c_str());
  }
  return Status::Ok();
}

}  // namespace

Result<std::string> Preprocess(const Vfs& vfs, std::string_view path) {
  CppState st;
  st.vfs = &vfs;
  std::string out;
  Status s = Expand(&st, CleanPath(path), &out, 0);
  if (!s.ok()) {
    return s;
  }
  return out;
}

}  // namespace help
