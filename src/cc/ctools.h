// Compiler-family native commands:
//   cpp       — the preprocessor (include inliner with #line markers)
//   help/rcc  — the code-generator-less compiler behind the C browser
//   vc, vl    — the pretend MIPS compiler/loader that mk drives (they
//               syntax-check with the real lexer and stamp .v objects /
//               executables into the VFS, so out-of-date logic is real)
#ifndef SRC_CC_CTOOLS_H_
#define SRC_CC_CTOOLS_H_

#include "src/shell/shell.h"

namespace help {

void RegisterCompilerTools(Vfs* vfs, CommandRegistry* registry);

}  // namespace help

#endif  // SRC_CC_CTOOLS_H_
