// C lexer for the browser tool. This is the front third of "rcc", the paper's
// compiler with the code generator stripped out: it tokenizes 1991-vintage
// ANSI C, tracks source coordinates through `#line N "file"` markers (which
// our cpp emits when inlining includes), and skips comments and other
// preprocessor lines.
#ifndef SRC_CC_CLEX_H_
#define SRC_CC_CLEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace help {

enum class CTok {
  kEof,
  kIdent,
  kKeyword,
  kNumber,
  kString,
  kCharConst,
  kPunct,  // operators and punctuation, text holds the spelling
};

struct CToken {
  CTok kind = CTok::kEof;
  std::string text;
  std::string file;  // coordinate after #line adjustment
  int line = 0;
  int col = 0;
};

// True for C89 keywords (plus a few Plan 9 idioms: uchar/ulong/... are NOT
// keywords — they are typedefs the parser learns from headers).
bool IsCKeyword(std::string_view s);

// Tokenizes `src`, whose first line is attributed to `filename`:1. Honors
// `#line N "file"` directives; other preprocessor lines are skipped (the
// parser never sees them). Unterminated strings/comments are an error.
Result<std::vector<CToken>> CLex(std::string_view src, std::string_view filename);

}  // namespace help

#endif  // SRC_CC_CLEX_H_
