#include "src/cc/clex.h"

#include <cctype>
#include <set>

#include "src/base/strings.h"

namespace help {

bool IsCKeyword(std::string_view s) {
  static const std::set<std::string, std::less<>> kKeywords = {
      "auto",     "break",  "case",    "char",   "const",    "continue", "default",
      "do",       "double", "else",    "enum",   "extern",   "float",    "for",
      "goto",     "if",     "int",     "long",   "register", "return",   "short",
      "signed",   "sizeof", "static",  "struct", "switch",   "typedef",  "union",
      "unsigned", "void",   "volatile", "while"};
  return kKeywords.count(s) != 0;
}

namespace {

bool IsIdentStart(char c) {
  return isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators, longest first within each lead character.
const char* kPunct3[] = {"<<=", ">>=", "...", nullptr};
const char* kPunct2[] = {"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
                         "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "^=",
                         "|=", nullptr};

}  // namespace

Result<std::vector<CToken>> CLex(std::string_view src, std::string_view filename) {
  std::vector<CToken> out;
  std::string file(filename);
  int line = 1;
  int col = 1;
  size_t i = 0;
  size_t n = src.size();

  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k; j++) {
      if (src[i + j] == '\n') {
        line++;
        col = 1;
      } else {
        col++;
      }
    }
    i += k;
  };

  while (i < n) {
    char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t start_line = static_cast<size_t>(line);
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        advance(1);
      }
      if (i + 1 >= n) {
        return Status::Error(StrFormat("%s:%zu: unterminated comment", file.c_str(),
                                       start_line));
      }
      advance(2);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {  // tolerate // too
      while (i < n && src[i] != '\n') {
        advance(1);
      }
      continue;
    }
    // Preprocessor lines: honor #line, skip the rest.
    if (c == '#' && col == 1) {
      size_t eol = src.find('\n', i);
      std::string_view dline = src.substr(i, eol == std::string_view::npos ? n - i : eol - i);
      std::vector<std::string> parts = Tokenize(dline);
      // Accept both "#line N file" and "# N file".
      size_t argbase = 0;
      if (parts.size() >= 2 && (parts[0] == "#line" || parts[0] == "#")) {
        argbase = 1;
      } else if (parts.size() >= 2 && parts[0] == "#" + std::string("line")) {
        argbase = 1;
      }
      if (argbase == 1) {
        long newline_no = ParseInt(parts[1]);
        if (newline_no >= 0) {
          if (parts.size() >= 3) {
            std::string f = parts[2];
            if (f.size() >= 2 && f.front() == '"' && f.back() == '"') {
              f = f.substr(1, f.size() - 2);
            }
            file = f;
          }
          // Skip to end of line, then apply the new coordinate.
          while (i < n && src[i] != '\n') {
            i++;
          }
          if (i < n) {
            i++;
          }
          line = static_cast<int>(newline_no);
          col = 1;
          continue;
        }
      }
      // Other directive: skip the (possibly continued) line.
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') {
          advance(1);
          break;
        }
        advance(1);
      }
      continue;
    }
    CToken tok;
    tok.file = file;
    tok.line = line;
    tok.col = col;
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) {
        advance(1);
      }
      tok.text = std::string(src.substr(start, i - start));
      tok.kind = IsCKeyword(tok.text) ? CTok::kKeyword : CTok::kIdent;
      out.push_back(std::move(tok));
      continue;
    }
    // Number (ints, floats, hex; exact grammar is irrelevant to browsing).
    if (isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      size_t start = i;
      while (i < n && (isalnum(static_cast<unsigned char>(src[i])) != 0 || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        advance(1);
      }
      tok.text = std::string(src.substr(start, i - start));
      tok.kind = CTok::kNumber;
      out.push_back(std::move(tok));
      continue;
    }
    // String / char constants.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i;
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          advance(2);
        } else if (src[i] == '\n') {
          return Status::Error(StrFormat("%s:%d: newline in %s constant", file.c_str(),
                                         tok.line, quote == '"' ? "string" : "char"));
        } else {
          advance(1);
        }
      }
      if (i >= n) {
        return Status::Error(StrFormat("%s:%d: unterminated %s constant", file.c_str(),
                                       tok.line, quote == '"' ? "string" : "char"));
      }
      advance(1);
      tok.text = std::string(src.substr(start, i - start));
      tok.kind = quote == '"' ? CTok::kString : CTok::kCharConst;
      out.push_back(std::move(tok));
      continue;
    }
    // Punctuation.
    for (const char** p = kPunct3; *p != nullptr; p++) {
      if (src.substr(i, 3) == *p) {
        tok.text = *p;
        break;
      }
    }
    if (tok.text.empty()) {
      for (const char** p = kPunct2; *p != nullptr; p++) {
        if (src.substr(i, 2) == *p) {
          tok.text = *p;
          break;
        }
      }
    }
    if (tok.text.empty()) {
      tok.text = std::string(1, c);
    }
    tok.kind = CTok::kPunct;
    advance(tok.text.size());
    out.push_back(std::move(tok));
  }
  CToken eof;
  eof.kind = CTok::kEof;
  eof.file = file;
  eof.line = line;
  eof.col = col;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace help
