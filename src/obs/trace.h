// Process-wide observability: named counters, log2 latency histograms, and a
// lock-free bounded ring buffer of trace events (spans, instants, counter
// samples). The design goal is the paper's: the system's own internals should
// be as visible as any window — everything here is exported as plain text
// through synthetic files under /mnt/help (metrics, trace, tracectl), so a
// shell script — or a help window — can profile the system with cat.
//
// Cost model, so the instrumentation can stay compiled in everywhere:
//   - a Span whose tracer is disabled costs one relaxed atomic load;
//   - an OBS_COUNT costs one relaxed fetch_add (reserved for rare events);
//   - an OBS_INSTANT is a relaxed load + branch when capture is off.
// Events are stamped with a monotonic sequence number (the ordering key — see
// below), a steady-clock nanosecond time, and the deterministic logical Clock
// tick when a Clock is bound. The logical tick and the steady clock can
// disagree about order (ticks are assigned under locks the emitters don't
// share), which is why readers must sort by seq, never by timestamp.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/clock.h"

namespace help {
namespace obs {

// --- Metrics: named counters and histograms ---------------------------------

// A monotonically named counter (or gauge, via Sub). All operations are
// relaxed atomics; handles returned by the Registry are valid for the life of
// the process, so instrumentation sites cache them in function-local statics.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(uint64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  void Store(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

// Log2-bucketed histogram: bucket i holds samples with floor(log2(v)) == i-1,
// bucket 0 holds zero-valued samples. Identical bucketing and percentile math
// to PR 1's NinepMetrics, which is now a view over these.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const;
  // Approximate percentile (0 < p <= 100): the upper bound of the bucket
  // holding the p-th sample. Returns 0 when empty.
  uint64_t Percentile(double p) const;
  std::array<uint64_t, kBuckets> Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

  static size_t BucketOf(uint64_t v);
  static uint64_t PercentileOf(const std::array<uint64_t, kBuckets>& h, double p);

 private:
  std::string name_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

// The process-wide registry. GetCounter/GetHistogram return stable pointers
// (creation is mutex-guarded; the hot path never touches the registry —
// instrumentation sites look a handle up once and cache it).
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // The /mnt/help/metrics payload: every counter as "name value\n" (sorted),
  // then every histogram with samples as "name count p50 p99\n".
  std::string RenderText() const;

  // Zeroes every counter and histogram (entries stay registered; cached
  // handles remain valid). Test hook — production readers never reset.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// --- Trace events and the ring buffer ----------------------------------------

// kComplete is a retroactive span: emitted once at phase end with the start
// time in `ns` and the duration in `arg`, so a phase that begins on one
// thread (a frame arriving on the event loop) and ends on another (a worker
// picking it up) still renders as a single slice in Chrome tracing.
enum class EventKind : uint8_t { kBegin, kEnd, kInstant, kCounter, kComplete };

struct TraceEvent {
  uint64_t seq;     // global emit order — THE ordering key
  uint64_t ns;      // steady-clock ns since tracer construction
                    // (kComplete: phase START, not emit time)
  uint64_t tick;    // logical Clock tick at emit (0 if no clock bound)
  uint64_t arg;     // kEnd/kComplete: duration ns; otherwise event-specific
  uint64_t rid;     // request trace id (0 = not request-scoped)
  uint32_t tid;     // small per-thread id (first-emit order)
  EventKind kind;
  const char* name;  // string literal owned by the instrumentation site
};

// A fixed-capacity multi-producer ring of trace events. Writers claim a slot
// with one fetch_add and publish it seqlock-style: the slot's seq field is
// stored with a "busy" bit before the payload is written and with the real
// sequence number after, both with release ordering, so a reader that sees
// seq == expected (acquire) before *and* after copying the payload got a
// consistent event. All slot fields are individual relaxed atomics — there is
// no non-atomic shared state, so concurrent writers and readers are data-race
// free (TSan-clean) by construction. When the ring wraps, the oldest events
// are overwritten and the trace.dropped counter advances.
class Tracer {
 public:
  static constexpr size_t kCapacity = 8192;  // power of two
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  // Discards all buffered events (emitted/dropped totals keep counting up).
  void Clear();

  // Binds the logical clock whose tick stamps events. Help binds its Vfs
  // clock on construction; Unbind is a no-op unless `c` is still the one
  // bound (so destroying an older Help doesn't unbind a newer one's clock).
  void BindClock(const Clock* c) { clock_.store(c, std::memory_order_release); }
  void UnbindClock(const Clock* c);

  // Appends one event if capture is enabled. `name` must be a string literal
  // (or otherwise immortal): the ring stores the pointer, not the bytes.
  void Emit(EventKind kind, const char* name, uint64_t arg = 0);
  // Full-control variant: stamps the request trace id and an explicit
  // timestamp (NowNs domain). kComplete events pass the phase start here and
  // the duration in `arg`; every other kind passes NowNs().
  void EmitAt(EventKind kind, const char* name, uint64_t arg, uint64_t rid,
              uint64_t ns);

  // Names the calling thread in Chrome trace output ("net.loop",
  // "net.worker0"). Idempotent; later calls for the same thread win.
  void SetThreadName(std::string name);
  std::map<uint32_t, std::string> ThreadNames() const;

  // All currently-readable events, ascending by seq.
  std::vector<TraceEvent> Snapshot() const;

  uint64_t emitted() const { return next_.load(std::memory_order_acquire); }
  uint64_t dropped() const;

  // The /mnt/help/trace payload: "seq ns tick tid kind name arg", one line
  // per event, ordered by seq.
  std::string RenderText() const;
  // Chrome trace-event JSON (chrome://tracing, Perfetto).
  std::string RenderChromeJson() const;
  // The /mnt/help/tracectl status payload.
  std::string RenderStatus() const;

  uint64_t NowNs() const;
  static uint32_t ThreadId();

 private:
  Tracer();

  struct Slot {
    // ~0 = never written; bit 63 set = mid-write. Valid seqs stay below 2^63.
    std::atomic<uint64_t> seq{~0ull};
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> tick{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint64_t> rid{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint8_t> kind{0};
  };
  static constexpr uint64_t kBusyBit = 1ull << 63;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_{0};
  std::atomic<const Clock*> clock_{nullptr};
  Counter* emitted_counter_;  // trace.events
  Counter* dropped_counter_;  // trace.dropped
  uint64_t epoch_ns_;         // steady-clock origin
  std::unique_ptr<Slot[]> slots_;
  mutable std::mutex names_mu_;
  std::map<uint32_t, std::string> thread_names_;
};

// --- Spans -------------------------------------------------------------------

// One static per instrumentation site: the span name and its duration
// histogram ("<name>.ns" in the registry), resolved once.
struct SpanSite {
  explicit SpanSite(const char* site_name);
  const char* name;
  Histogram* hist;
};

// RAII span. When tracing is disabled the constructor is a single relaxed
// load and the destructor a null check; when enabled it emits paired
// kBegin/kEnd events and records the duration histogram.
class Span {
 public:
  explicit Span(SpanSite& site) : site_(nullptr) {
    if (Tracer::Global().enabled()) {
      site_ = &site;
      Begin();
    }
  }
  ~Span() {
    if (site_ != nullptr) {
      End();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Begin();
  void End();
  SpanSite* site_;
  uint64_t start_ns_ = 0;
};

#define HELP_OBS_CONCAT2(a, b) a##b
#define HELP_OBS_CONCAT(a, b) HELP_OBS_CONCAT2(a, b)

// Traces the rest of the enclosing scope as a span named `name` (a literal).
#define OBS_SPAN(name)                                                     \
  static ::help::obs::SpanSite HELP_OBS_CONCAT(obs_site_, __LINE__){name}; \
  ::help::obs::Span HELP_OBS_CONCAT(obs_span_, __LINE__)(                  \
      HELP_OBS_CONCAT(obs_site_, __LINE__))

// Emits an instant event when capture is on; a load + branch when off.
#define OBS_INSTANT(name, arg)                                            \
  do {                                                                    \
    if (::help::obs::Tracer::Global().enabled()) {                        \
      ::help::obs::Tracer::Global().Emit(::help::obs::EventKind::kInstant, \
                                         name, static_cast<uint64_t>(arg)); \
    }                                                                     \
  } while (0)

// Bumps a registry counter unconditionally (one relaxed fetch_add). Use for
// events rare enough that the counter is interesting even with tracing off.
#define OBS_COUNT(name, n)                                              \
  do {                                                                  \
    static ::help::obs::Counter* HELP_OBS_CONCAT(obs_ctr_, __LINE__) =  \
        ::help::obs::Registry::Global().GetCounter(name);               \
    HELP_OBS_CONCAT(obs_ctr_, __LINE__)->Add(static_cast<uint64_t>(n)); \
  } while (0)

}  // namespace obs
}  // namespace help

#endif  // SRC_OBS_TRACE_H_
