#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>

namespace help {
namespace obs {

// --- Histogram ---------------------------------------------------------------

size_t Histogram::BucketOf(uint64_t v) {
  size_t b = 0;
  while (v > 0 && b < kBuckets - 1) {
    v >>= 1;
    b++;
  }
  return b;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::Snapshot() const {
  std::array<uint64_t, kBuckets> out{};
  for (size_t i = 0; i < kBuckets; i++) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::PercentileOf(const std::array<uint64_t, kBuckets>& h, double p) {
  uint64_t total = 0;
  for (uint64_t c : h) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) {
    rank = total - 1;
  }
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; b++) {
    seen += h[b];
    if (seen > rank) {
      return b == 0 ? 0 : (1ull << b) - 1;  // bucket upper bound
    }
  }
  return (1ull << (kBuckets - 1)) - 1;
}

uint64_t Histogram::Percentile(double p) const {
  return PercentileOf(Snapshot(), p);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* r = new Registry;
  return *r;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

std::string Registry::RenderText() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char line[192];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    uint64_t n = h->count();
    if (n == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "%s %llu %llu %llu\n", name.c_str(),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(h->Percentile(50)),
                  static_cast<unsigned long long>(h->Percentile(99)));
    out += line;
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) {
    c->Store(0);
  }
  for (const auto& [name, h] : histograms_) {
    h->Reset();
  }
}

// --- Tracer ------------------------------------------------------------------

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer;
  return *t;
}

Tracer::Tracer()
    : emitted_counter_(Registry::Global().GetCounter("trace.events")),
      dropped_counter_(Registry::Global().GetCounter("trace.dropped")),
      epoch_ns_(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())),
      slots_(std::make_unique<Slot[]>(kCapacity)) {
  static_assert((kCapacity & (kCapacity - 1)) == 0, "capacity must be a power of two");
}

uint64_t Tracer::NowNs() const {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_;
}

uint32_t Tracer::ThreadId() {
  static std::atomic<uint32_t> next_tid{0};
  thread_local uint32_t tid = next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

void Tracer::UnbindClock(const Clock* c) {
  const Clock* expected = c;
  clock_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

uint64_t Tracer::dropped() const { return dropped_counter_->value(); }

void Tracer::Emit(EventKind kind, const char* name, uint64_t arg) {
  EmitAt(kind, name, arg, 0, NowNs());
}

void Tracer::SetThreadName(std::string name) {
  std::lock_guard<std::mutex> lk(names_mu_);
  thread_names_[ThreadId()] = std::move(name);
}

std::map<uint32_t, std::string> Tracer::ThreadNames() const {
  std::lock_guard<std::mutex> lk(names_mu_);
  return thread_names_;
}

void Tracer::EmitAt(EventKind kind, const char* name, uint64_t arg,
                    uint64_t rid, uint64_t ns) {
  if (!enabled()) {
    return;
  }
  uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[seq & (kCapacity - 1)];
  // Claim the slot by CAS rather than a blind store: a writer that stalled
  // after reserving seq can be lapped by one holding seq + kCapacity (same
  // slot, one ring revolution later). The lapped writer must yield — if it
  // stored last it would leave the older event in the slot forever. The CAS
  // also doubles as the mid-write mark so readers reject torn payloads.
  uint64_t cur = s.seq.load(std::memory_order_acquire);
  for (;;) {
    if (cur != ~0ull) {
      if ((cur & ~kBusyBit) > seq) {
        // Lapped: the slot already carries (or is being given) a newer
        // event. Ours is by definition the oldest live event, so drop it.
        // Accounting stays "one drop per emit past capacity": the lapping
        // writer's emit already paid for the displacement.
        emitted_counter_->Add();
        if (seq >= kCapacity) {
          dropped_counter_->Add();
        }
        return;
      }
      if ((cur & kBusyBit) != 0) {
        // An older writer is mid-publish. Claiming now would interleave two
        // payloads and let its final store resurrect the older seq, so wait
        // for its release store (a handful of instructions away).
        cur = s.seq.load(std::memory_order_acquire);
        continue;
      }
    }
    if (s.seq.compare_exchange_weak(cur, seq | kBusyBit,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      break;
    }
  }
  const Clock* c = clock_.load(std::memory_order_acquire);
  s.ns.store(ns, std::memory_order_relaxed);
  s.tick.store(c != nullptr ? c->Now() : 0, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.rid.store(rid, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.tid.store(ThreadId(), std::memory_order_relaxed);
  s.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
  emitted_counter_->Add();
  if (seq >= kCapacity) {
    dropped_counter_->Add();  // this write overwrote event seq - kCapacity
  }
}

void Tracer::Clear() {
  // Invalidate every quiescent slot. A slot whose writer is mid-publish is
  // left alone — its event postdates the clear anyway, and blanking it would
  // let a second writer claim the slot while the first is still storing,
  // reintroducing the interleaved-payload race the claim CAS exists to
  // prevent. Likewise, if a writer claims between our load and CAS, the CAS
  // fails and we keep its fresh event.
  for (size_t i = 0; i < kCapacity; i++) {
    uint64_t cur = slots_[i].seq.load(std::memory_order_acquire);
    if (cur == ~0ull || (cur & kBusyBit) != 0) {
      continue;
    }
    slots_[i].seq.compare_exchange_strong(cur, ~0ull, std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  uint64_t end = next_.load(std::memory_order_acquire);
  uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t q = begin; q < end; q++) {
    const Slot& s = slots_[q & (kCapacity - 1)];
    if (s.seq.load(std::memory_order_acquire) != q) {
      continue;  // overwritten, cleared, or mid-write
    }
    TraceEvent e;
    e.seq = q;
    e.ns = s.ns.load(std::memory_order_relaxed);
    e.tick = s.tick.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    e.rid = s.rid.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
    e.name = s.name.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != q) {
      continue;  // a writer raced us; the payload may be torn — drop it
    }
    out.push_back(e);
  }
  return out;  // ascending by construction: q only increases
}

namespace {

char KindChar(EventKind k) {
  switch (k) {
    case EventKind::kBegin:
      return 'B';
    case EventKind::kEnd:
      return 'E';
    case EventKind::kInstant:
      return 'I';
    case EventKind::kCounter:
      return 'C';
    case EventKind::kComplete:
      return 'X';
  }
  return '?';
}

const char* KindPh(EventKind k) {
  switch (k) {
    case EventKind::kBegin:
      return "B";
    case EventKind::kEnd:
      return "E";
    case EventKind::kInstant:
      return "i";
    case EventKind::kCounter:
      return "C";
    case EventKind::kComplete:
      return "X";
  }
  return "i";
}

}  // namespace

std::string Tracer::RenderText() const {
  std::string out;
  char line[224];
  for (const TraceEvent& e : Snapshot()) {
    // Request-scoped events carry one extra trailing column, the trace id in
    // hex; plain events keep the PR 3 seven-column format.
    if (e.rid != 0) {
      std::snprintf(line, sizeof(line), "%llu %llu %llu %u %c %s %llu 0x%llx\n",
                    static_cast<unsigned long long>(e.seq),
                    static_cast<unsigned long long>(e.ns),
                    static_cast<unsigned long long>(e.tick), e.tid,
                    KindChar(e.kind), e.name != nullptr ? e.name : "?",
                    static_cast<unsigned long long>(e.arg),
                    static_cast<unsigned long long>(e.rid));
    } else {
      std::snprintf(line, sizeof(line), "%llu %llu %llu %u %c %s %llu\n",
                    static_cast<unsigned long long>(e.seq),
                    static_cast<unsigned long long>(e.ns),
                    static_cast<unsigned long long>(e.tick), e.tid,
                    KindChar(e.kind), e.name != nullptr ? e.name : "?",
                    static_cast<unsigned long long>(e.arg));
    }
    out += line;
  }
  return out;
}

std::string Tracer::RenderChromeJson() const {
  // Chrome trace-event format (the JSON Array Format wrapped in an object),
  // loadable in chrome://tracing and Perfetto. Event names are C string
  // literals from instrumentation sites — no JSON escaping is required for
  // them; thread names come from SetThreadName callers and are plain
  // identifiers by convention.
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[320];
  bool first = true;
  // Metadata first: name the process and every registered thread so loop vs.
  // worker lanes are readable.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                "\"args\":{\"name\":\"help\"}}");
  out += buf;
  first = false;
  for (const auto& [tid, name] : ThreadNames()) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  tid, name.c_str());
    out += buf;
  }
  // Request trace ids become flow events: the first sighting of a rid opens
  // the flow ("s"), every later phase continues it ("t"), so one request
  // renders as a connected arrow chain across the loop and worker lanes.
  std::map<uint64_t, bool> seen_rid;
  for (const TraceEvent& e : Snapshot()) {
    double ts_us = static_cast<double>(e.ns) / 1000.0;
    const char* extra = e.kind == EventKind::kInstant ? ",\"s\":\"t\"" : "";
    char dur[48] = "";
    if (e.kind == EventKind::kComplete) {
      std::snprintf(dur, sizeof(dur), ",\"dur\":%.3f",
                    static_cast<double>(e.arg) / 1000.0);
    }
    char rid[48] = "";
    if (e.rid != 0) {
      std::snprintf(rid, sizeof(rid), ",\"rid\":\"0x%llx\"",
                    static_cast<unsigned long long>(e.rid));
    }
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"help\",\"ph\":\"%s\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%.3f%s%s,\"args\":{\"seq\":%llu,"
                  "\"tick\":%llu,\"arg\":%llu%s}}",
                  first ? "" : ",", e.name != nullptr ? e.name : "?", KindPh(e.kind),
                  e.tid, ts_us, extra, dur, static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.tick),
                  static_cast<unsigned long long>(e.arg), rid);
    out += buf;
    first = false;
    if (e.rid != 0 && e.kind != EventKind::kCounter) {
      bool& opened = seen_rid[e.rid];
      std::snprintf(buf, sizeof(buf),
                    ",{\"name\":\"req\",\"cat\":\"help\",\"ph\":\"%s\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":%.3f,\"id\":\"0x%llx\"%s}",
                    opened ? "t" : "s", e.tid, ts_us,
                    static_cast<unsigned long long>(e.rid),
                    opened ? ",\"bp\":\"e\"" : "");
      out += buf;
      opened = true;
    }
  }
  out += "]}\n";
  return out;
}

std::string Tracer::RenderStatus() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "tracing %s\nevents %llu\ndropped %llu\ncapacity %zu\n",
                enabled() ? "on" : "off",
                static_cast<unsigned long long>(emitted()),
                static_cast<unsigned long long>(dropped()), kCapacity);
  return buf;
}

// --- Spans -------------------------------------------------------------------

SpanSite::SpanSite(const char* site_name)
    : name(site_name),
      hist(Registry::Global().GetHistogram(std::string(site_name) + ".ns")) {}

void Span::Begin() {
  Tracer& t = Tracer::Global();
  start_ns_ = t.NowNs();
  t.Emit(EventKind::kBegin, site_->name, 0);
}

void Span::End() {
  Tracer& t = Tracer::Global();
  uint64_t dur = t.NowNs() - start_ns_;
  t.Emit(EventKind::kEnd, site_->name, dur);
  site_->hist->Record(dur);
}

}  // namespace obs
}  // namespace help
