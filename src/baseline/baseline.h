// The comparison baseline: a gesture-cost model of the interfaces the paper
// argues against — a click-to-type window system with pop-up menus plus a
// typing shell ("a session with X windows sometimes feels like a telephone
// conversation by satellite").
//
// Help's side of every comparison is *measured* by driving the real
// implementation and reading its gesture counters; this model supplies the
// conventional side. Its primitives follow the paper's own accounting:
// click-to-type costs a wasted click, a pop-up menu costs a press plus the
// traversal gesture, and anything not on a menu must be typed.
#ifndef SRC_BASELINE_BASELINE_H_
#define SRC_BASELINE_BASELINE_H_

#include <string>
#include <vector>

namespace help {

struct GestureCost {
  int button_presses = 0;
  int keystrokes = 0;

  GestureCost& operator+=(const GestureCost& o) {
    button_presses += o.button_presses;
    keystrokes += o.keystrokes;
    return *this;
  }
};

class ConventionalUI {
 public:
  // --- primitives --------------------------------------------------------
  // Click-to-type: merely giving a window the focus costs a click that does
  // nothing else (the paper's canonical wasted gesture).
  void FocusWindow(std::string_view which);
  // Press to pop the menu up, drag to the item, release: one press.
  void PopupMenu(std::string_view item);
  // Select text with the mouse: one press.
  void SelectText(std::string_view what);
  // Typing, one keystroke per character; `enter` adds the newline.
  void TypeText(std::string_view text, bool enter = true);

  // --- canned tasks mirroring the paper's demo ----------------------------
  // Open a file whose name is visible on screen (the editor cannot use it;
  // the name must be retyped into an open dialog or a shell command).
  void OpenVisibleFile(std::string_view path);
  // Cut the current selection via the edit menu.
  void CutSelection();
  // Paste via the edit menu.
  void PasteClipboard();
  // Get a stack trace of a broken process from a shell with adb.
  void DebuggerStack(int pid, std::string_view binary);
  // Find uses of an identifier: type a grep over the sources.
  void GrepUses(std::string_view ident, std::string_view glob);
  // Save the current file via the menu.
  void SaveFile();
  // Rebuild: focus the shell and type make.
  void Rebuild(std::string_view command);
  // Read a mail message with a curses mailer: focus + type the number.
  void ReadMail(int msgno);

  const GestureCost& cost() const { return cost_; }
  const std::vector<std::string>& log() const { return log_; }
  void Reset() {
    cost_ = GestureCost();
    log_.clear();
  }

 private:
  void Log(std::string entry);

  GestureCost cost_;
  std::vector<std::string> log_;
};

}  // namespace help

#endif  // SRC_BASELINE_BASELINE_H_
