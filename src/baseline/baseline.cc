#include "src/baseline/baseline.h"

#include "src/base/strings.h"

namespace help {

void ConventionalUI::Log(std::string entry) { log_.push_back(std::move(entry)); }

void ConventionalUI::FocusWindow(std::string_view which) {
  cost_.button_presses += 1;
  Log(StrFormat("click-to-type: focus %s (1 press)", std::string(which).c_str()));
}

void ConventionalUI::PopupMenu(std::string_view item) {
  cost_.button_presses += 1;
  Log(StrFormat("pop-up menu: %s (1 press + traversal)", std::string(item).c_str()));
}

void ConventionalUI::SelectText(std::string_view what) {
  cost_.button_presses += 1;
  Log(StrFormat("select: %s (1 press)", std::string(what).c_str()));
}

void ConventionalUI::TypeText(std::string_view text, bool enter) {
  int n = static_cast<int>(text.size()) + (enter ? 1 : 0);
  cost_.keystrokes += n;
  Log(StrFormat("type: \"%s\"%s (%d keys)", std::string(text).c_str(),
                enter ? " + Enter" : "", n));
}

void ConventionalUI::OpenVisibleFile(std::string_view path) {
  FocusWindow("editor");
  PopupMenu("File > Open...");
  TypeText(path);  // no way to point at the name: it must be retyped
}

void ConventionalUI::CutSelection() {
  PopupMenu("Edit > Cut");
}

void ConventionalUI::PasteClipboard() {
  PopupMenu("Edit > Paste");
}

void ConventionalUI::DebuggerStack(int pid, std::string_view binary) {
  FocusWindow("shell");
  TypeText(StrFormat("adb %s /proc/%d", std::string(binary).c_str(), pid));
  TypeText("$c");  // adb's stack-trace incantation
}

void ConventionalUI::GrepUses(std::string_view ident, std::string_view glob) {
  FocusWindow("shell");
  TypeText(StrFormat("grep -n '%s' %s", std::string(ident).c_str(),
                     std::string(glob).c_str()));
}

void ConventionalUI::SaveFile() {
  PopupMenu("File > Save");
}

void ConventionalUI::Rebuild(std::string_view command) {
  FocusWindow("shell");
  TypeText(command);
}

void ConventionalUI::ReadMail(int msgno) {
  FocusWindow("mailer");
  TypeText(StrFormat("%d", msgno));
}

}  // namespace help
