#include "src/regexp/regexp.h"

#include <array>

namespace help {

bool Regexp::CharClass::Contains(Rune r) const {
  bool in = false;
  for (const ClassRange& cr : ranges) {
    if (r >= cr.lo && r <= cr.hi) {
      in = true;
      break;
    }
  }
  return negated ? !in : in;
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent to a small AST, then code generation into the
// NFA program. The AST is transient; only the bytecode is retained.

namespace {

struct Node {
  enum class Kind { kLit, kAny, kClass, kBol, kEol, kCat, kAlt, kStar, kPlus, kQuest, kGroup };
  Kind kind;
  Rune r = 0;
  int class_id = 0;
  int group = 0;
  std::unique_ptr<Node> a;
  std::unique_ptr<Node> b;
};

using NodePtr = std::unique_ptr<Node>;

NodePtr MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

}  // namespace

class Regexp::Parser {
 public:
  Parser(RuneStringView pat, Regexp* re) : pat_(pat), re_(re) {}

  Result<NodePtr> Parse() {
    auto r = ParseAlt();
    if (!r.ok()) {
      return r;
    }
    if (pos_ != pat_.size()) {
      return Status::Error("regexp: unmatched ')'");
    }
    return r;
  }

 private:
  bool AtEnd() const { return pos_ >= pat_.size(); }
  Rune Peek() const { return pat_[pos_]; }

  Result<NodePtr> ParseAlt() {
    auto left = ParseCat();
    if (!left.ok()) {
      return left;
    }
    NodePtr node = left.take();
    while (!AtEnd() && Peek() == '|') {
      pos_++;
      auto right = ParseCat();
      if (!right.ok()) {
        return right;
      }
      auto alt = MakeNode(Node::Kind::kAlt);
      alt->a = std::move(node);
      alt->b = right.take();
      node = std::move(alt);
    }
    return node;
  }

  Result<NodePtr> ParseCat() {
    NodePtr node;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto atom = ParseRep();
      if (!atom.ok()) {
        return atom;
      }
      if (!node) {
        node = atom.take();
      } else {
        auto cat = MakeNode(Node::Kind::kCat);
        cat->a = std::move(node);
        cat->b = atom.take();
        node = std::move(cat);
      }
    }
    if (!node) {
      // Empty alternative: matches the empty string (a childless,
      // non-capturing group emits no instructions).
      node = MakeNode(Node::Kind::kGroup);
      node->group = -1;
    }
    return node;
  }

  Result<NodePtr> ParseRep() {
    auto atom = ParseAtom();
    if (!atom.ok()) {
      return atom;
    }
    NodePtr node = atom.take();
    while (!AtEnd()) {
      Rune c = Peek();
      Node::Kind k;
      if (c == '*') {
        k = Node::Kind::kStar;
      } else if (c == '+') {
        k = Node::Kind::kPlus;
      } else if (c == '?') {
        k = Node::Kind::kQuest;
      } else {
        break;
      }
      pos_++;
      auto rep = MakeNode(k);
      rep->a = std::move(node);
      node = std::move(rep);
    }
    return node;
  }

  Result<NodePtr> ParseAtom() {
    if (AtEnd()) {
      return Status::Error("regexp: missing operand");
    }
    Rune c = pat_[pos_++];
    switch (c) {
      case '(': {
        int group = -1;
        if (re_->ngroups_ < kMaxGroups) {
          group = re_->ngroups_++;
        }
        auto inner = ParseAlt();
        if (!inner.ok()) {
          return inner;
        }
        if (AtEnd() || pat_[pos_] != ')') {
          return Status::Error("regexp: missing ')'");
        }
        pos_++;
        auto g = MakeNode(Node::Kind::kGroup);
        g->group = group;
        g->a = inner.take();
        return NodePtr(std::move(g));
      }
      case '[':
        return ParseClass();
      case '.':
        return NodePtr(MakeNode(Node::Kind::kAny));
      case '^':
        return NodePtr(MakeNode(Node::Kind::kBol));
      case '$':
        return NodePtr(MakeNode(Node::Kind::kEol));
      case '*':
      case '+':
      case '?':
        return Status::Error("regexp: repetition with no operand");
      case '\\': {
        if (AtEnd()) {
          return Status::Error("regexp: trailing backslash");
        }
        Rune e = pat_[pos_++];
        auto lit = MakeNode(Node::Kind::kLit);
        switch (e) {
          case 'n':
            lit->r = '\n';
            break;
          case 't':
            lit->r = '\t';
            break;
          case 'r':
            lit->r = '\r';
            break;
          default:
            lit->r = e;
        }
        return NodePtr(std::move(lit));
      }
      default: {
        auto lit = MakeNode(Node::Kind::kLit);
        lit->r = c;
        return NodePtr(std::move(lit));
      }
    }
  }

  Result<NodePtr> ParseClass() {
    CharClass cc;
    if (!AtEnd() && Peek() == '^') {
      cc.negated = true;
      pos_++;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) {
        return Status::Error("regexp: missing ']'");
      }
      Rune c = pat_[pos_++];
      if (c == ']' && !first) {
        break;
      }
      first = false;
      if (c == '\\' && !AtEnd()) {
        Rune e = pat_[pos_++];
        c = e == 'n' ? '\n' : e == 't' ? '\t' : e;
      }
      Rune lo = c;
      Rune hi = c;
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pat_.size() && pat_[pos_ + 1] != ']') {
        pos_++;  // '-'
        hi = pat_[pos_++];
        if (hi == '\\' && !AtEnd()) {
          Rune e = pat_[pos_++];
          hi = e == 'n' ? '\n' : e == 't' ? '\t' : e;
        }
        if (hi < lo) {
          return Status::Error("regexp: inverted range in class");
        }
      }
      cc.ranges.push_back({lo, hi});
    }
    re_->classes_.push_back(std::move(cc));
    auto node = MakeNode(Node::Kind::kClass);
    node->class_id = static_cast<int>(re_->classes_.size()) - 1;
    return NodePtr(std::move(node));
  }

  RuneStringView pat_;
  Regexp* re_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Code generation.

Result<Regexp> Regexp::Compile(std::string_view pattern) {
  Regexp re;
  re.pattern_ = std::string(pattern);
  RuneString pat = RunesFromUtf8(pattern);
  Parser parser(pat, &re);
  auto ast = parser.Parse();
  if (!ast.ok()) {
    return ast.status();
  }

  // Recursive emitter.
  struct Emitter {
    std::vector<Inst>* prog;
    void Emit(const Node* n) {
      switch (n->kind) {
        case Node::Kind::kLit:
          prog->push_back({Op::kChar, n->r, 0, 0, 0});
          break;
        case Node::Kind::kAny:
          prog->push_back({Op::kAny, 0, 0, 0, 0});
          break;
        case Node::Kind::kClass:
          prog->push_back({Op::kClass, 0, 0, 0, n->class_id});
          break;
        case Node::Kind::kBol:
          prog->push_back({Op::kBol, 0, 0, 0, 0});
          break;
        case Node::Kind::kEol:
          prog->push_back({Op::kEol, 0, 0, 0, 0});
          break;
        case Node::Kind::kCat:
          Emit(n->a.get());
          Emit(n->b.get());
          break;
        case Node::Kind::kAlt: {
          int split = Here();
          prog->push_back({Op::kSplit, 0, 0, 0, 0});
          (*prog)[split].x = Here();
          Emit(n->a.get());
          int jmp = Here();
          prog->push_back({Op::kJmp, 0, 0, 0, 0});
          (*prog)[split].y = Here();
          Emit(n->b.get());
          (*prog)[jmp].x = Here();
          break;
        }
        case Node::Kind::kStar: {
          int split = Here();
          prog->push_back({Op::kSplit, 0, 0, 0, 0});
          (*prog)[split].x = Here();  // greedy: prefer the loop body
          Emit(n->a.get());
          prog->push_back({Op::kJmp, 0, split, 0, 0});
          (*prog)[split].y = Here();
          break;
        }
        case Node::Kind::kPlus: {
          int body = Here();
          Emit(n->a.get());
          int split = Here();
          prog->push_back({Op::kSplit, 0, body, 0, 0});
          (*prog)[split].y = Here();
          break;
        }
        case Node::Kind::kQuest: {
          int split = Here();
          prog->push_back({Op::kSplit, 0, 0, 0, 0});
          (*prog)[split].x = Here();
          Emit(n->a.get());
          (*prog)[split].y = Here();
          break;
        }
        case Node::Kind::kGroup: {
          if (n->group < 0) {
            if (n->a) {
              Emit(n->a.get());
            }
            break;
          }
          prog->push_back({Op::kSave, 0, 2 * n->group, 0, 0});
          Emit(n->a.get());
          prog->push_back({Op::kSave, 0, 2 * n->group + 1, 0, 0});
          break;
        }
      }
    }
    int Here() const { return static_cast<int>(prog->size()); }
  };

  re.prog_.push_back({Op::kSave, 0, 0, 0, 0});  // whole-match begin
  Emitter emitter{&re.prog_};
  emitter.Emit(ast.value().get());
  re.prog_.push_back({Op::kSave, 0, 1, 0, 0});  // whole-match end
  re.prog_.push_back({Op::kMatch, 0, 0, 0, 0});
  return re;
}

// ---------------------------------------------------------------------------
// Pike VM execution.

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

}  // namespace

std::optional<Regexp::MatchResult> Regexp::Run(RuneStringView text, size_t start,
                                               bool anchored) const {
  const size_t nslots = 2 * static_cast<size_t>(ngroups_);
  struct Thread {
    int pc;
    std::vector<size_t> saves;
  };
  std::vector<Thread> clist;
  std::vector<Thread> nlist;
  std::vector<int> mark(prog_.size(), -1);
  int gen = 0;

  std::optional<std::vector<size_t>> matched;

  // Adds thread `pc` to `list`, following epsilon instructions.
  auto add = [&](std::vector<Thread>* list, int pc, size_t pos, std::vector<size_t> saves,
                 auto&& self) -> void {
    if (mark[pc] == gen) {
      return;
    }
    mark[pc] = gen;
    const Inst& inst = prog_[pc];
    switch (inst.op) {
      case Op::kJmp:
        self(list, inst.x, pos, std::move(saves), self);
        break;
      case Op::kSplit: {
        std::vector<size_t> copy = saves;
        self(list, inst.x, pos, std::move(copy), self);
        self(list, inst.y, pos, std::move(saves), self);
        break;
      }
      case Op::kSave: {
        size_t old = saves[inst.x];
        saves[inst.x] = pos;
        self(list, pc + 1, pos, std::move(saves), self);
        (void)old;
        break;
      }
      case Op::kBol:
        if (pos == 0 || text[pos - 1] == '\n') {
          self(list, pc + 1, pos, std::move(saves), self);
        }
        break;
      case Op::kEol:
        if (pos == text.size() || text[pos] == '\n') {
          self(list, pc + 1, pos, std::move(saves), self);
        }
        break;
      default:
        list->push_back({pc, std::move(saves)});
        break;
    }
  };

  for (size_t pos = start;; pos++) {
    gen++;
    // Inject a new start thread (lowest priority) unless anchored past start
    // or a match has already been found (leftmost semantics).
    if (!matched && (!anchored || pos == start)) {
      std::vector<size_t> saves(nslots, kNpos);
      add(&clist, 0, pos, std::move(saves), add);
    }
    if (clist.empty() && (matched || anchored)) {
      break;  // no live thread can extend; new starts are no longer injected
    }
    gen++;
    nlist.clear();
    bool cut = false;
    for (size_t ti = 0; ti < clist.size() && !cut; ti++) {
      Thread& t = clist[ti];
      const Inst& inst = prog_[t.pc];
      switch (inst.op) {
        case Op::kChar:
          if (pos < text.size() && text[pos] == inst.r) {
            add(&nlist, t.pc + 1, pos + 1, std::move(t.saves), add);
          }
          break;
        case Op::kAny:
          if (pos < text.size() && text[pos] != '\n') {
            add(&nlist, t.pc + 1, pos + 1, std::move(t.saves), add);
          }
          break;
        case Op::kClass:
          if (pos < text.size() && classes_[inst.class_id].Contains(text[pos])) {
            add(&nlist, t.pc + 1, pos + 1, std::move(t.saves), add);
          }
          break;
        case Op::kMatch:
          matched = std::move(t.saves);
          cut = true;  // lower-priority threads cannot beat this match
          break;
        default:
          break;  // epsilon ops never reach the run list
      }
    }
    clist.swap(nlist);
    if (pos >= text.size()) {
      break;
    }
  }

  if (!matched) {
    return std::nullopt;
  }
  MatchResult result;
  result.begin = (*matched)[0];
  result.end = (*matched)[1];
  for (int g = 1; g < ngroups_; g++) {
    result.groups.emplace_back((*matched)[2 * g], (*matched)[2 * g + 1]);
  }
  return result;
}

std::optional<Regexp::MatchResult> Regexp::Search(RuneStringView text, size_t start) const {
  return Run(text, start, /*anchored=*/false);
}

std::optional<Regexp::MatchResult> Regexp::MatchAt(RuneStringView text, size_t pos) const {
  return Run(text, pos, /*anchored=*/true);
}

std::optional<Regexp::MatchResult> Regexp::SearchUtf8(std::string_view text) const {
  RuneString runes = RunesFromUtf8(text);
  return Search(runes, 0);
}

}  // namespace help
