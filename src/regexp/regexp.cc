#include "src/regexp/regexp.h"

#include <array>
#include <atomic>

#include "src/obs/trace.h"

namespace help {

namespace {
// Test/bench switch for the literal-prefix skip loop (see
// SetLiteralFastPathEnabled). Relaxed: flipped only by tests and benches.
std::atomic<bool> g_literal_fastpath{true};
}  // namespace

void Regexp::SetLiteralFastPathEnabled(bool on) {
  g_literal_fastpath.store(on, std::memory_order_relaxed);
}

bool Regexp::CharClass::Contains(Rune r) const {
  bool in = false;
  for (const ClassRange& cr : ranges) {
    if (r >= cr.lo && r <= cr.hi) {
      in = true;
      break;
    }
  }
  return negated ? !in : in;
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent to a small AST, then code generation into the
// NFA program. The AST is transient; only the bytecode is retained.

namespace {

struct Node {
  enum class Kind { kLit, kAny, kClass, kBol, kEol, kCat, kAlt, kStar, kPlus, kQuest, kGroup };
  Kind kind;
  Rune r = 0;
  int class_id = 0;
  int group = 0;
  std::unique_ptr<Node> a;
  std::unique_ptr<Node> b;
};

using NodePtr = std::unique_ptr<Node>;

NodePtr MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

}  // namespace

class Regexp::Parser {
 public:
  Parser(RuneStringView pat, Regexp* re) : pat_(pat), re_(re) {}

  Result<NodePtr> Parse() {
    auto r = ParseAlt();
    if (!r.ok()) {
      return r;
    }
    if (pos_ != pat_.size()) {
      return Status::Error("regexp: unmatched ')'");
    }
    return r;
  }

 private:
  bool AtEnd() const { return pos_ >= pat_.size(); }
  Rune Peek() const { return pat_[pos_]; }

  Result<NodePtr> ParseAlt() {
    auto left = ParseCat();
    if (!left.ok()) {
      return left;
    }
    NodePtr node = left.take();
    while (!AtEnd() && Peek() == '|') {
      pos_++;
      auto right = ParseCat();
      if (!right.ok()) {
        return right;
      }
      auto alt = MakeNode(Node::Kind::kAlt);
      alt->a = std::move(node);
      alt->b = right.take();
      node = std::move(alt);
    }
    return node;
  }

  Result<NodePtr> ParseCat() {
    NodePtr node;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto atom = ParseRep();
      if (!atom.ok()) {
        return atom;
      }
      if (!node) {
        node = atom.take();
      } else {
        auto cat = MakeNode(Node::Kind::kCat);
        cat->a = std::move(node);
        cat->b = atom.take();
        node = std::move(cat);
      }
    }
    if (!node) {
      // Empty alternative: matches the empty string (a childless,
      // non-capturing group emits no instructions).
      node = MakeNode(Node::Kind::kGroup);
      node->group = -1;
    }
    return node;
  }

  Result<NodePtr> ParseRep() {
    auto atom = ParseAtom();
    if (!atom.ok()) {
      return atom;
    }
    NodePtr node = atom.take();
    while (!AtEnd()) {
      Rune c = Peek();
      Node::Kind k;
      if (c == '*') {
        k = Node::Kind::kStar;
      } else if (c == '+') {
        k = Node::Kind::kPlus;
      } else if (c == '?') {
        k = Node::Kind::kQuest;
      } else {
        break;
      }
      pos_++;
      auto rep = MakeNode(k);
      rep->a = std::move(node);
      node = std::move(rep);
    }
    return node;
  }

  Result<NodePtr> ParseAtom() {
    if (AtEnd()) {
      return Status::Error("regexp: missing operand");
    }
    Rune c = pat_[pos_++];
    switch (c) {
      case '(': {
        int group = -1;
        if (re_->ngroups_ < kMaxGroups) {
          group = re_->ngroups_++;
        }
        auto inner = ParseAlt();
        if (!inner.ok()) {
          return inner;
        }
        if (AtEnd() || pat_[pos_] != ')') {
          return Status::Error("regexp: missing ')'");
        }
        pos_++;
        auto g = MakeNode(Node::Kind::kGroup);
        g->group = group;
        g->a = inner.take();
        return NodePtr(std::move(g));
      }
      case '[':
        return ParseClass();
      case '.':
        return NodePtr(MakeNode(Node::Kind::kAny));
      case '^':
        return NodePtr(MakeNode(Node::Kind::kBol));
      case '$':
        return NodePtr(MakeNode(Node::Kind::kEol));
      case '*':
      case '+':
      case '?':
        return Status::Error("regexp: repetition with no operand");
      case '\\': {
        if (AtEnd()) {
          return Status::Error("regexp: trailing backslash");
        }
        Rune e = pat_[pos_++];
        auto lit = MakeNode(Node::Kind::kLit);
        switch (e) {
          case 'n':
            lit->r = '\n';
            break;
          case 't':
            lit->r = '\t';
            break;
          case 'r':
            lit->r = '\r';
            break;
          default:
            lit->r = e;
        }
        return NodePtr(std::move(lit));
      }
      default: {
        auto lit = MakeNode(Node::Kind::kLit);
        lit->r = c;
        return NodePtr(std::move(lit));
      }
    }
  }

  Result<NodePtr> ParseClass() {
    CharClass cc;
    if (!AtEnd() && Peek() == '^') {
      cc.negated = true;
      pos_++;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) {
        return Status::Error("regexp: missing ']'");
      }
      Rune c = pat_[pos_++];
      if (c == ']' && !first) {
        break;
      }
      first = false;
      if (c == '\\' && !AtEnd()) {
        Rune e = pat_[pos_++];
        c = e == 'n' ? '\n' : e == 't' ? '\t' : e;
      }
      Rune lo = c;
      Rune hi = c;
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pat_.size() && pat_[pos_ + 1] != ']') {
        pos_++;  // '-'
        hi = pat_[pos_++];
        if (hi == '\\' && !AtEnd()) {
          Rune e = pat_[pos_++];
          hi = e == 'n' ? '\n' : e == 't' ? '\t' : e;
        }
        if (hi < lo) {
          return Status::Error("regexp: inverted range in class");
        }
      }
      cc.ranges.push_back({lo, hi});
    }
    re_->classes_.push_back(std::move(cc));
    auto node = MakeNode(Node::Kind::kClass);
    node->class_id = static_cast<int>(re_->classes_.size()) - 1;
    return NodePtr(std::move(node));
  }

  RuneStringView pat_;
  Regexp* re_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Code generation.

Result<Regexp> Regexp::Compile(std::string_view pattern) {
  Regexp re;
  re.pattern_ = std::string(pattern);
  RuneString pat = RunesFromUtf8(pattern);
  Parser parser(pat, &re);
  auto ast = parser.Parse();
  if (!ast.ok()) {
    return ast.status();
  }

  // Recursive emitter.
  struct Emitter {
    std::vector<Inst>* prog;
    void Emit(const Node* n) {
      switch (n->kind) {
        case Node::Kind::kLit:
          prog->push_back({Op::kChar, n->r, 0, 0, 0});
          break;
        case Node::Kind::kAny:
          prog->push_back({Op::kAny, 0, 0, 0, 0});
          break;
        case Node::Kind::kClass:
          prog->push_back({Op::kClass, 0, 0, 0, n->class_id});
          break;
        case Node::Kind::kBol:
          prog->push_back({Op::kBol, 0, 0, 0, 0});
          break;
        case Node::Kind::kEol:
          prog->push_back({Op::kEol, 0, 0, 0, 0});
          break;
        case Node::Kind::kCat:
          Emit(n->a.get());
          Emit(n->b.get());
          break;
        case Node::Kind::kAlt: {
          int split = Here();
          prog->push_back({Op::kSplit, 0, 0, 0, 0});
          (*prog)[split].x = Here();
          Emit(n->a.get());
          int jmp = Here();
          prog->push_back({Op::kJmp, 0, 0, 0, 0});
          (*prog)[split].y = Here();
          Emit(n->b.get());
          (*prog)[jmp].x = Here();
          break;
        }
        case Node::Kind::kStar: {
          int split = Here();
          prog->push_back({Op::kSplit, 0, 0, 0, 0});
          (*prog)[split].x = Here();  // greedy: prefer the loop body
          Emit(n->a.get());
          prog->push_back({Op::kJmp, 0, split, 0, 0});
          (*prog)[split].y = Here();
          break;
        }
        case Node::Kind::kPlus: {
          int body = Here();
          Emit(n->a.get());
          int split = Here();
          prog->push_back({Op::kSplit, 0, body, 0, 0});
          (*prog)[split].y = Here();
          break;
        }
        case Node::Kind::kQuest: {
          int split = Here();
          prog->push_back({Op::kSplit, 0, 0, 0, 0});
          (*prog)[split].x = Here();
          Emit(n->a.get());
          (*prog)[split].y = Here();
          break;
        }
        case Node::Kind::kGroup: {
          if (n->group < 0) {
            if (n->a) {
              Emit(n->a.get());
            }
            break;
          }
          prog->push_back({Op::kSave, 0, 2 * n->group, 0, 0});
          Emit(n->a.get());
          prog->push_back({Op::kSave, 0, 2 * n->group + 1, 0, 0});
          break;
        }
      }
    }
    int Here() const { return static_cast<int>(prog->size()); }
  };

  re.prog_.push_back({Op::kSave, 0, 0, 0, 0});  // whole-match begin
  Emitter emitter{&re.prog_};
  emitter.Emit(ast.value().get());
  re.prog_.push_back({Op::kSave, 0, 1, 0, 0});  // whole-match end
  re.prog_.push_back({Op::kMatch, 0, 0, 0, 0});
  re.ExtractLiteral();
  return re;
}

// Walks the program head to find the runes every match must begin with. Any
// accepting path executes the leading straight-line prefix — kSave markers
// and consecutive kChar ops, optionally after one kBol — before the first
// branch, so those chars are a required literal prefix. The searcher skips to
// candidate occurrences with Boyer-Moore-Horspool and only then pays for the
// VM; when the program is nothing but the literal (and has no capture
// groups), the candidate *is* the match and the VM never runs.
void Regexp::ExtractLiteral() {
  literal_.clear();
  literal_whole_ = false;
  bol_anchored_ = false;
  size_t pc = 0;
  while (pc < prog_.size() && prog_[pc].op == Op::kSave) {
    pc++;
  }
  if (pc < prog_.size() && prog_[pc].op == Op::kBol) {
    bol_anchored_ = true;
    pc++;
  }
  while (pc < prog_.size()) {
    if (prog_[pc].op == Op::kSave) {
      pc++;
    } else if (prog_[pc].op == Op::kChar) {
      literal_.push_back(prog_[pc].r);
      pc++;
    } else {
      break;
    }
  }
  literal_whole_ = pc < prog_.size() && prog_[pc].op == Op::kMatch &&
                   ngroups_ == 1 && !literal_.empty();
}

// ---------------------------------------------------------------------------
// Pike VM execution.

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

}  // namespace

std::optional<Regexp::MatchResult> Regexp::Run(const RuneSpans& text, size_t start,
                                               bool anchored) const {
  const size_t nslots = 2 * static_cast<size_t>(ngroups_);
  struct Thread {
    int pc;
    std::vector<size_t> saves;
  };
  std::vector<Thread> clist;
  std::vector<Thread> nlist;
  std::vector<int> mark(prog_.size(), -1);
  int gen = 0;

  std::optional<std::vector<size_t>> matched;

  // Adds thread `pc` to `list`, following epsilon instructions.
  auto add = [&](std::vector<Thread>* list, int pc, size_t pos, std::vector<size_t> saves,
                 auto&& self) -> void {
    if (mark[pc] == gen) {
      return;
    }
    mark[pc] = gen;
    const Inst& inst = prog_[pc];
    switch (inst.op) {
      case Op::kJmp:
        self(list, inst.x, pos, std::move(saves), self);
        break;
      case Op::kSplit: {
        std::vector<size_t> copy = saves;
        self(list, inst.x, pos, std::move(copy), self);
        self(list, inst.y, pos, std::move(saves), self);
        break;
      }
      case Op::kSave: {
        size_t old = saves[inst.x];
        saves[inst.x] = pos;
        self(list, pc + 1, pos, std::move(saves), self);
        (void)old;
        break;
      }
      case Op::kBol:
        if (pos == 0 || text[pos - 1] == '\n') {
          self(list, pc + 1, pos, std::move(saves), self);
        }
        break;
      case Op::kEol:
        if (pos == text.size() || text[pos] == '\n') {
          self(list, pc + 1, pos, std::move(saves), self);
        }
        break;
      default:
        list->push_back({pc, std::move(saves)});
        break;
    }
  };

  size_t pos = start;
  for (;; pos++) {
    gen++;
    // Inject a new start thread (lowest priority) unless anchored past start
    // or a match has already been found (leftmost semantics).
    if (!matched && (!anchored || pos == start)) {
      std::vector<size_t> saves(nslots, kNpos);
      add(&clist, 0, pos, std::move(saves), add);
    }
    if (clist.empty() && (matched || anchored)) {
      break;  // no live thread can extend; new starts are no longer injected
    }
    gen++;
    nlist.clear();
    bool cut = false;
    for (size_t ti = 0; ti < clist.size() && !cut; ti++) {
      Thread& t = clist[ti];
      const Inst& inst = prog_[t.pc];
      switch (inst.op) {
        case Op::kChar:
          if (pos < text.size() && text[pos] == inst.r) {
            add(&nlist, t.pc + 1, pos + 1, std::move(t.saves), add);
          }
          break;
        case Op::kAny:
          if (pos < text.size() && text[pos] != '\n') {
            add(&nlist, t.pc + 1, pos + 1, std::move(t.saves), add);
          }
          break;
        case Op::kClass:
          if (pos < text.size() && classes_[inst.class_id].Contains(text[pos])) {
            add(&nlist, t.pc + 1, pos + 1, std::move(t.saves), add);
          }
          break;
        case Op::kMatch:
          matched = std::move(t.saves);
          cut = true;  // lower-priority threads cannot beat this match
          break;
        default:
          break;  // epsilon ops never reach the run list
      }
    }
    clist.swap(nlist);
    if (pos >= text.size()) {
      break;
    }
  }
  // The streaming scan's footprint: runes the VM actually advanced over.
  OBS_COUNT("search.bytes_scanned",
            (std::min(pos, text.size()) - std::min(start, text.size()) + 1) *
                sizeof(Rune));

  if (!matched) {
    return std::nullopt;
  }
  MatchResult result;
  result.begin = (*matched)[0];
  result.end = (*matched)[1];
  for (int g = 1; g < ngroups_; g++) {
    result.groups.emplace_back((*matched)[2 * g], (*matched)[2 * g + 1]);
  }
  return result;
}

std::optional<Regexp::MatchResult> Regexp::Search(const RuneSpans& text,
                                                  size_t start) const {
  if (!literal_.empty() && !bol_anchored_ &&
      g_literal_fastpath.load(std::memory_order_relaxed)) {
    size_t pos = start;
    while (true) {
      size_t cand = FindRunes(text, literal_, pos);
      if (cand == RuneSpans::npos) {
        OBS_COUNT("search.literal_fastpath", 1);
        OBS_COUNT("search.bytes_scanned",
                  (text.size() - std::min(start, text.size())) * sizeof(Rune));
        return std::nullopt;
      }
      if (literal_whole_) {
        OBS_COUNT("search.literal_fastpath", 1);
        OBS_COUNT("search.bytes_scanned",
                  (cand + literal_.size() - start) * sizeof(Rune));
        MatchResult result;
        result.begin = cand;
        result.end = cand + literal_.size();
        return result;
      }
      auto m = Run(text, cand, /*anchored=*/true);
      if (m) {
        OBS_COUNT("search.literal_fastpath", 1);
        return m;
      }
      pos = cand + 1;
    }
  }
  return Run(text, start, /*anchored=*/false);
}

std::optional<Regexp::MatchResult> Regexp::MatchAt(const RuneSpans& text,
                                                   size_t pos) const {
  // Cheap negative filter: every match starts with the required literal (and
  // at a line start when '^'-anchored), so most candidates die without a VM
  // thread ever being built.
  if (!literal_.empty() && g_literal_fastpath.load(std::memory_order_relaxed)) {
    if (pos + literal_.size() > text.size()) {
      return std::nullopt;
    }
    if (bol_anchored_ && pos != 0 && text[pos - 1] != '\n') {
      return std::nullopt;
    }
    for (size_t i = 0; i < literal_.size(); i++) {
      if (text[pos + i] != literal_[i]) {
        return std::nullopt;
      }
    }
    if (literal_whole_) {  // bol (if any) was verified above
      MatchResult result;
      result.begin = pos;
      result.end = pos + literal_.size();
      return result;
    }
  }
  return Run(text, pos, /*anchored=*/true);
}

std::optional<Regexp::MatchResult> Regexp::SearchBackward(const RuneSpans& text,
                                                          size_t limit) const {
  OBS_COUNT("search.backward", 1);
  // Stream forward keeping the last qualifying match: the candidates are the
  // (greedy) matches at each successful start position, and the winner is the
  // one with the largest begin whose end stays at or before `limit`. No copy
  // of the document is ever made; the literal fast path skips between
  // candidate starts.
  std::optional<MatchResult> best;
  size_t pos = 0;
  while (pos <= text.size()) {
    auto m = Search(text, pos);
    if (!m || m->begin > limit) {
      break;
    }
    if (m->end <= limit) {
      best = *m;
    }
    pos = m->begin + 1;
  }
  return best;
}

std::optional<Regexp::MatchResult> Regexp::SearchUtf8(std::string_view text) const {
  RuneString runes = RunesFromUtf8(text);
  return Search(runes, 0);
}

}  // namespace help
