#include "src/regexp/cache.h"

#include "src/obs/trace.h"

namespace help {

RegexpCache& RegexpCache::Global() {
  static RegexpCache* cache = new RegexpCache();
  return *cache;
}

Result<std::shared_ptr<const Regexp>> RegexpCache::Get(std::string_view pattern) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(pattern);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
      OBS_COUNT("search.regexp_cache_hit", 1);
      return it->second->second;
    }
  }
  // Compile outside the lock: parsing is the expensive part, and two threads
  // racing to compile the same pattern just means one redundant compile.
  auto re = Regexp::Compile(pattern);
  if (!re.ok()) {
    return re.status();
  }
  auto compiled = std::make_shared<const Regexp>(re.take());
  OBS_COUNT("search.regexp_cache_miss", 1);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(pattern);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // a racer beat us to it
    return it->second->second;
  }
  lru_.emplace_front(std::string(pattern), compiled);
  index_[lru_.front().first] = lru_.begin();
  while (lru_.size() > kCapacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return compiled;
}

void RegexpCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t RegexpCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace help
