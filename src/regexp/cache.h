// A process-wide LRU cache of compiled regexps keyed by pattern text. The
// interaction model re-executes the same handful of patterns constantly —
// every Look click, every plumbed `name:/re/` address, every cycle of a
// polling script — so compilation (parse + codegen) would otherwise run on
// each gesture. Entries are shared_ptr<const Regexp>: a caller's handle stays
// valid even if the entry is evicted mid-use.
#ifndef SRC_REGEXP_CACHE_H_
#define SRC_REGEXP_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "src/base/status.h"
#include "src/regexp/regexp.h"

namespace help {

class RegexpCache {
 public:
  static constexpr size_t kCapacity = 64;

  static RegexpCache& Global();

  // Returns the compiled regexp for `pattern`, compiling and caching on a
  // miss. Compile errors are returned but never cached (they are rare and
  // retrying is cheap relative to remembering every typo).
  Result<std::shared_ptr<const Regexp>> Get(std::string_view pattern);

  void Clear();
  size_t size() const;

 private:
  // MRU at the front. The map holds iterators into the list; both are only
  // touched under mu_ (searches run on the UI thread and on shell/9P
  // dispatch, so the cache must be thread-safe).
  using Entry = std::pair<std::string, std::shared_ptr<const Regexp>>;
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_;
};

}  // namespace help

#endif  // SRC_REGEXP_CACHE_H_
