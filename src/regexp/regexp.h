// A small regular-expression engine over runes, in the spirit of Plan 9's
// libregexp (which help linked against: see the paper's Figure 12 link line,
// `-lregexp`). Supports literals, '.', character classes, anchors, grouping,
// alternation, and the *, +, ? repetitions, with submatch capture.
//
// The implementation compiles to NFA bytecode executed by a Pike VM (thread
// lists with capture slots), so matching is O(len(text) * len(program)) with
// no pathological backtracking — important because Pattern searches run on
// every window body.
#ifndef SRC_REGEXP_REGEXP_H_
#define SRC_REGEXP_REGEXP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/rune.h"
#include "src/base/status.h"

namespace help {

class Regexp {
 public:
  static constexpr int kMaxGroups = 10;  // \0 (whole match) through \9

  struct MatchResult {
    size_t begin = 0;  // rune offset of match start
    size_t end = 0;    // rune offset one past match end
    // Capture groups 1..9; groups[i] is {begin,end} or {npos,npos} if unset.
    std::vector<std::pair<size_t, size_t>> groups;
  };

  // Compiles `pattern` (UTF-8). Returns an error status on syntax errors.
  static Result<Regexp> Compile(std::string_view pattern);

  // Finds the leftmost match at or after rune offset `start`. `text` is the
  // whole document so that ^ and $ see true line boundaries. The two-span
  // form streams directly over gap-buffer storage — no copy is ever made.
  // When the pattern begins with a required literal, the scan skips with a
  // Boyer-Moore-Horspool loop and enters the VM only at candidate positions.
  std::optional<MatchResult> Search(const RuneSpans& text, size_t start = 0) const;
  std::optional<MatchResult> Search(RuneStringView text, size_t start = 0) const {
    return Search(RuneSpans(text), start);
  }

  // True iff the pattern matches starting exactly at `pos`.
  std::optional<MatchResult> MatchAt(const RuneSpans& text, size_t pos) const;
  std::optional<MatchResult> MatchAt(RuneStringView text, size_t pos) const {
    return MatchAt(RuneSpans(text), pos);
  }

  // The last match whose end is at or before rune offset `limit` (the -/re/
  // address). Streams forward over the spans without materializing; the
  // literal fast path applies between candidate matches.
  std::optional<MatchResult> SearchBackward(const RuneSpans& text, size_t limit) const;

  // Convenience for UTF-8 haystacks (offsets in the result are rune offsets).
  std::optional<MatchResult> SearchUtf8(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  // The literal rune prefix every match must begin with (empty when the
  // pattern has no required leading literal), and whether the whole pattern
  // is exactly that literal (no VM run needed at a candidate).
  RuneStringView required_prefix() const { return literal_; }
  bool literal_only() const { return literal_whole_; }
  // True when every match must begin at a line start (leading '^'): the
  // streaming layer then enumerates line starts instead of scanning runes.
  bool line_anchored() const { return bol_anchored_; }

  // Test/bench hook: disables the literal-prefix skip loop so the A/B
  // benchmarks and the differential property suite can run the plain VM.
  static void SetLiteralFastPathEnabled(bool on);

  Regexp(Regexp&&) = default;
  Regexp& operator=(Regexp&&) = default;
  Regexp(const Regexp&) = default;
  Regexp& operator=(const Regexp&) = default;

 private:
  // NFA instructions.
  enum class Op { kChar, kAny, kClass, kBol, kEol, kSave, kSplit, kJmp, kMatch };
  struct ClassRange {
    Rune lo;
    Rune hi;
  };
  struct Inst {
    Op op;
    Rune r = 0;        // kChar
    int x = 0;         // kSplit/kJmp target; kSave slot
    int y = 0;         // kSplit second target
    int class_id = 0;  // kClass
  };
  struct CharClass {
    bool negated = false;
    std::vector<ClassRange> ranges;
    bool Contains(Rune r) const;
  };

  class Parser;

  Regexp() = default;

  std::optional<MatchResult> Run(const RuneSpans& text, size_t start, bool anchored) const;
  // Derives literal_/literal_whole_/bol_anchored_ from the compiled program.
  void ExtractLiteral();

  std::string pattern_;
  std::vector<Inst> prog_;
  std::vector<CharClass> classes_;
  int ngroups_ = 1;
  RuneString literal_;         // required leading literal (possibly empty)
  bool literal_whole_ = false; // the program is exactly the literal
  bool bol_anchored_ = false;  // leading '^'
};

}  // namespace help

#endif  // SRC_REGEXP_REGEXP_H_
