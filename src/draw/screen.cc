#include "src/draw/screen.h"

namespace help {

Screen::Screen(int width, int height)
    : width_(width), height_(height),
      cells_(static_cast<size_t>(width) * static_cast<size_t>(height)) {}

void Screen::Clear() {
  std::fill(cells_.begin(), cells_.end(), Cell{});
}

void Screen::Fill(const Rect& r, Rune ch, Style style) {
  Rect c = r.Intersect(bounds());
  for (int y = c.y0; y < c.y1; y++) {
    for (int x = c.x0; x < c.x1; x++) {
      At(x, y) = {ch, style};
    }
  }
}

int Screen::DrawRunes(int x, int y, RuneStringView s, Style style, const Rect& clip) {
  Rect c = clip.Intersect(bounds());
  if (y < c.y0 || y >= c.y1) {
    return 0;
  }
  int drawn = 0;
  for (Rune r : s) {
    if (x >= c.x1) {
      break;
    }
    if (x >= c.x0) {
      At(x, y) = {r, style};
      drawn++;
    }
    x++;
  }
  return drawn;
}

std::string Screen::Row(int y) const {
  RuneString runes;
  for (int x = 0; x < width_; x++) {
    runes.push_back(At(x, y).ch);
  }
  return Utf8FromRunes(runes);
}

std::string Screen::Render() const {
  std::string out;
  for (int y = 0; y < height_; y++) {
    std::string row = Row(y);
    size_t end = row.find_last_not_of(' ');
    out += end == std::string::npos ? "" : row.substr(0, end + 1);
    out += '\n';
  }
  return out;
}

std::string Screen::RenderAnnotated() const {
  std::string out;
  for (int y = 0; y < height_; y++) {
    std::string row;
    Style prev = Style::kNormal;
    for (int x = 0; x < width_; x++) {
      const Cell& cell = At(x, y);
      Style cur = cell.style;
      // Only selection-ish styles get brackets; structural styles render as
      // their glyphs.
      auto opener = [](Style s) -> const char* {
        switch (s) {
          case Style::kReverse:
            return "\xC2\xAB";  // «
          case Style::kOutline:
            return "\xE2\x80\xB9";  // ‹
          case Style::kExec:
            return "_";
          default:
            return "";
        }
      };
      auto closer = [](Style s) -> const char* {
        switch (s) {
          case Style::kReverse:
            return "\xC2\xBB";  // »
          case Style::kOutline:
            return "\xE2\x80\xBA";  // ›
          case Style::kExec:
            return "_";
          default:
            return "";
        }
      };
      if (cur != prev) {
        row += closer(prev);
        row += opener(cur);
        prev = cur;
      }
      std::string ch;
      EncodeRune(cell.ch == 0 ? ' ' : cell.ch, &ch);
      row += ch;
    }
    row += [&] {
      switch (prev) {
        case Style::kReverse:
          return "\xC2\xBB";
        case Style::kOutline:
          return "\xE2\x80\xBA";
        case Style::kExec:
          return "_";
        default:
          return "";
      }
    }();
    size_t end = row.find_last_not_of(' ');
    out += end == std::string::npos ? "" : row.substr(0, end + 1);
    out += '\n';
  }
  return out;
}

}  // namespace help
