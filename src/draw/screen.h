// The display substrate: a character-cell screen standing in for the paper's
// bitmap display. Help "operates only on text", so a cell grid captures
// everything the figures show — tags, tab towers, reverse-video and outlined
// selections, covered windows — while letting tests assert on exact screens.
#ifndef SRC_DRAW_SCREEN_H_
#define SRC_DRAW_SCREEN_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rune.h"

namespace help {

struct Point {
  int x = 0;
  int y = 0;
  bool operator==(const Point&) const = default;
};

struct Rect {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;  // exclusive
  int y1 = 0;  // exclusive

  int width() const { return x1 - x0; }
  int height() const { return y1 - y0; }
  bool empty() const { return x0 >= x1 || y0 >= y1; }
  bool Contains(Point p) const { return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1; }
  Rect Intersect(const Rect& o) const {
    Rect r{std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1), std::min(y1, o.y1)};
    if (r.empty()) {
      return Rect{0, 0, 0, 0};
    }
    return r;
  }
  bool operator==(const Rect&) const = default;
};

// Cell styles. kReverse is the current selection ("reverse video"); kOutline
// is a selection in a non-current subwindow; kCaret marks a null selection.
enum class Style : uint8_t {
  kNormal,
  kReverse,
  kOutline,
  kCaret,
  kTag,      // tag-line background
  kTab,      // the little black squares
  kBorder,
  kExec,     // text being swept with button 2 (underlined in Figure 2)
};

struct Cell {
  Rune ch = ' ';
  Style style = Style::kNormal;
};

class Screen {
 public:
  Screen(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  Rect bounds() const { return {0, 0, width_, height_}; }

  Cell& At(int x, int y) { return cells_[static_cast<size_t>(y * width_ + x)]; }
  const Cell& At(int x, int y) const { return cells_[static_cast<size_t>(y * width_ + x)]; }

  void Clear();
  void Fill(const Rect& r, Rune ch, Style style);
  // Writes runes starting at (x, y), clipped to `clip`; returns runes drawn.
  int DrawRunes(int x, int y, RuneStringView s, Style style, const Rect& clip);

  // Plain-text rendering (one line per row, trailing blanks trimmed).
  std::string Render() const;
  // Rendering with style annotations: reverse-video cells wrapped in «»,
  // outlined in ‹›, executed-sweep underlined with combining marks omitted —
  // used by figure benches to show selections like the paper's screenshots.
  std::string RenderAnnotated() const;

  // The full row as a string (for tests).
  std::string Row(int y) const;

 private:
  int width_;
  int height_;
  std::vector<Cell> cells_;
};

}  // namespace help

#endif  // SRC_DRAW_SCREEN_H_
