// Frame: text layout into a rectangle, after Plan 9's libframe (which help
// linked against — see the -lframe in Figure 12's link line). A frame shows
// a Text from rune offset `origin`, wrapping long lines and expanding tabs,
// and provides the two mappings everything else is built on: screen point →
// rune offset (mouse clicks) and rune offset → screen point (showing an
// addressed line, drawing selections).
#ifndef SRC_DRAW_FRAME_H_
#define SRC_DRAW_FRAME_H_

#include <optional>
#include <vector>

#include "src/draw/screen.h"
#include "src/text/text.h"

namespace help {

inline constexpr int kTabStop = 8;

class Frame {
 public:
  void SetRect(const Rect& r) { rect_ = r; }
  const Rect& rect() const { return rect_; }

  // Lays out `t` from rune offset `origin`. Call again after any edit or
  // geometry change (cheap: proportional to the visible region).
  void Fill(const Text& t, size_t origin);

  size_t origin() const { return origin_; }
  // One past the offset of the last rune displayed (== where scrolling
  // forward would continue).
  size_t end() const { return end_; }
  // Number of display rows actually used.
  int lines_used() const { return static_cast<int>(rows_.size()); }
  bool Visible(size_t off) const { return off >= origin_ && off < end_; }

  // Maps a screen point (absolute coordinates) to the rune offset of the
  // character at or nearest that cell. Points below the laid text map to
  // end(); points past a line's end map to that line's newline.
  size_t PointToOffset(Point p) const;

  // Maps a visible rune offset to its screen cell; nullopt if not displayed.
  std::optional<Point> OffsetToPoint(size_t off) const;

  // Draws the laid-out text. `sel` draws in kReverse when `current`, in
  // kOutline otherwise; a null selection draws a kCaret cell. `exec_sel`
  // (if non-null) underlines an in-progress button-2 sweep.
  void Draw(Screen* screen, const Selection& sel, bool current, Style base,
            const Selection* exec_sel = nullptr) const;

 private:
  struct PlacedRune {
    Rune r;
    size_t off;
    int x;  // absolute column (tabs make x jump)
    int width;
  };
  struct Row {
    std::vector<PlacedRune> runes;
    size_t start_off = 0;  // offset of first rune logically on this row
    size_t end_off = 0;    // one past last rune on this row (incl. newline)
  };

  Style StyleFor(size_t off, const Selection& sel, bool current,
                 const Selection* exec_sel, Style base) const;

  Rect rect_;
  size_t origin_ = 0;
  size_t end_ = 0;
  std::vector<Row> rows_;
};

}  // namespace help

#endif  // SRC_DRAW_FRAME_H_
