#include "src/draw/frame.h"

namespace help {

void Frame::Fill(const Text& t, size_t origin) {
  origin_ = std::min(origin, t.size());
  rows_.clear();
  end_ = origin_;
  if (rect_.empty()) {
    return;
  }
  int maxrows = rect_.height();
  int width = rect_.width();
  size_t pos = origin_;
  size_t n = t.size();
  // One bulk read covers everything the frame can consume: every rune takes
  // at least one cell except the newline ending a row, so maxrows rows use at
  // most maxrows * (width + 1) runes. This keeps layout cost proportional to
  // the window, not the document, and avoids a gap-buffer branch per rune.
  size_t window =
      static_cast<size_t>(maxrows) * (static_cast<size_t>(width) + 1) + 1;
  RuneString visible = t.Read(origin_, window);
  Row row;
  row.start_off = pos;
  int x = 0;
  auto flush = [&](size_t row_end) {
    row.end_off = row_end;
    rows_.push_back(std::move(row));
    row = Row{};
    row.start_off = row_end;
    x = 0;
  };
  while (pos < n && static_cast<int>(rows_.size()) < maxrows) {
    Rune r = visible[pos - origin_];
    if (r == '\n') {
      flush(pos + 1);
      pos++;
      continue;
    }
    int w = 1;
    if (r == '\t') {
      w = kTabStop - (x % kTabStop);
    }
    if (x + w > width && x > 0) {
      // Wrap before this rune.
      flush(pos);
      continue;
    }
    row.runes.push_back({r, pos, x, w});
    x += w;
    pos++;
    if (x >= width) {
      flush(pos);
    }
  }
  if (static_cast<int>(rows_.size()) < maxrows) {
    flush(pos);  // final (possibly empty) row — gives the caret a home
  }
  end_ = rows_.empty() ? origin_ : rows_.back().end_off;
}

size_t Frame::PointToOffset(Point p) const {
  if (rows_.empty()) {
    return origin_;
  }
  int rel = p.y - rect_.y0;
  if (rel < 0) {
    rel = 0;
  }
  if (rel >= static_cast<int>(rows_.size())) {
    rel = static_cast<int>(rows_.size()) - 1;
  }
  const Row& row = rows_[static_cast<size_t>(rel)];
  int col = p.x - rect_.x0;
  for (const PlacedRune& pr : row.runes) {
    if (col < pr.x + pr.width) {
      return pr.off;
    }
  }
  // Past the end of the row: the newline (or the row's end).
  if (row.end_off > row.start_off + row.runes.size()) {
    return row.end_off - 1;  // the newline itself
  }
  return row.end_off;
}

std::optional<Point> Frame::OffsetToPoint(size_t off) const {
  for (size_t yi = 0; yi < rows_.size(); yi++) {
    const Row& row = rows_[yi];
    if (off < row.start_off || off > row.end_off) {
      continue;
    }
    for (const PlacedRune& pr : row.runes) {
      if (pr.off == off) {
        return Point{rect_.x0 + pr.x, rect_.y0 + static_cast<int>(yi)};
      }
    }
    // Offset is the newline / end of this row.
    if (off == row.end_off - 1 && row.end_off > row.start_off + row.runes.size()) {
      int x = row.runes.empty() ? 0 : row.runes.back().x + row.runes.back().width;
      return Point{rect_.x0 + x, rect_.y0 + static_cast<int>(yi)};
    }
    if (off == row.end_off && yi + 1 == rows_.size()) {
      int x = row.runes.empty() ? 0 : row.runes.back().x + row.runes.back().width;
      return Point{rect_.x0 + x, rect_.y0 + static_cast<int>(yi)};
    }
  }
  return std::nullopt;
}

Style Frame::StyleFor(size_t off, const Selection& sel, bool current,
                      const Selection* exec_sel, Style base) const {
  if (exec_sel != nullptr && off >= exec_sel->q0 && off < exec_sel->q1) {
    return Style::kExec;
  }
  if (!sel.null() && off >= sel.q0 && off < sel.q1) {
    return current ? Style::kReverse : Style::kOutline;
  }
  return base;
}

void Frame::Draw(Screen* screen, const Selection& sel, bool current, Style base,
                 const Selection* exec_sel) const {
  Rect clip = rect_.Intersect(screen->bounds());
  screen->Fill(clip, ' ', base);
  for (size_t yi = 0; yi < rows_.size(); yi++) {
    int y = rect_.y0 + static_cast<int>(yi);
    if (y < clip.y0 || y >= clip.y1) {
      continue;
    }
    for (const PlacedRune& pr : rows_[yi].runes) {
      int x = rect_.x0 + pr.x;
      Style st = StyleFor(pr.off, sel, current, exec_sel, base);
      if (pr.r == '\t') {
        for (int k = 0; k < pr.width && x + k < clip.x1; k++) {
          if (x + k >= clip.x0) {
            screen->At(x + k, y) = {' ', st};
          }
        }
      } else if (x >= clip.x0 && x < clip.x1) {
        screen->At(x, y) = {pr.r, st};
      }
    }
  }
  // Null selection caret.
  if (sel.null() && current) {
    auto p = OffsetToPoint(sel.q0);
    if (p.has_value() && clip.Contains(*p)) {
      Cell& c = screen->At(p->x, p->y);
      c.style = Style::kCaret;
    }
  }
}

}  // namespace help
