#include <algorithm>

#include "src/base/strings.h"
#include "src/fs/path.h"
#include "src/wm/wm.h"

namespace help {

void Subwindow::ShowOffset(size_t off) {
  if (frame.Visible(off) || frame.rect().empty()) {
    return;
  }
  // Scroll so `off`'s line sits about a third of the way down.
  size_t line = text->LineAt(off);
  int back = std::max(1, frame.rect().height() / 3);
  size_t top_line = line > static_cast<size_t>(back) ? line - static_cast<size_t>(back) : 1;
  origin = text->LineStart(top_line);
  Relayout();
  // Long wrapped lines may still hide it; fall forward until visible.
  int guard = 0;
  while (!frame.Visible(off) && origin < text->size() && guard++ < 4096) {
    origin = frame.end() > origin ? frame.end() : origin + 1;
    Relayout();
  }
}

Window::Window(int id, std::shared_ptr<Text> tag, std::shared_ptr<Text> body) : id_(id) {
  tag_.text = std::move(tag);
  tag_.is_tag = true;
  tag_.window = this;
  body_.text = std::move(body);
  body_.window = this;
}

void Window::SetRect(const Rect& r) {
  rect_ = r;
  if (!r.empty()) {
    desired_y0_ = r.y0;
    desired_height_ = r.height();
  }
  Relayout();
}

void Window::Hide() {
  rect_ = {0, 0, 0, 0};
  Relayout();
}

void Window::Relayout() {
  if (rect_.empty()) {
    tag_.frame.SetRect({0, 0, 0, 0});
    body_.frame.SetRect({0, 0, 0, 0});
    return;
  }
  tag_.frame.SetRect({rect_.x0, rect_.y0, rect_.x1, rect_.y0 + 1});
  // The leftmost body column is the scroll bar.
  body_.frame.SetRect({rect_.x0 + 1, rect_.y0 + 1, rect_.x1, rect_.y1});
  tag_.Relayout();
  body_.Relayout();
}

Rect Window::ScrollbarRect() const {
  if (hidden() || rect_.height() < 2) {
    return {0, 0, 0, 0};
  }
  return {rect_.x0, rect_.y0 + 1, rect_.x0 + 1, rect_.y1};
}

void Window::ScrollLines(int lines) {
  Text& t = *body_.text;
  long line = static_cast<long>(t.LineAt(body_.origin)) + lines;
  long last = static_cast<long>(t.LineCount());
  line = std::clamp(line, 1L, last);
  body_.origin = t.LineStart(static_cast<size_t>(line));
  body_.Relayout();
}

void Window::ScrollTo(double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  Text& t = *body_.text;
  size_t line = 1 + static_cast<size_t>(fraction * static_cast<double>(t.LineCount()));
  body_.origin = t.LineStart(line);
  body_.Relayout();
}

std::string Window::TagFilename() const {
  std::vector<std::string> fields = Tokenize(tag_.text->Utf8());
  return fields.empty() ? std::string() : fields[0];
}

std::string Window::ContextDir() const {
  std::string name = TagFilename();
  if (name.empty()) {
    return "/";
  }
  if (HasSuffix(name, "/")) {  // directory windows carry a final slash
    return CleanPath(name);
  }
  return DirPath(name);
}

int Window::UsedBottom() const {
  if (hidden()) {
    return rect_.y0;
  }
  // Tag row plus the body rows that actually hold text.
  int rows = body_.frame.lines_used();
  // The frame always keeps one (possibly empty) trailing row for the caret;
  // don't count it as "visible text" unless it holds runes.
  if (rows > 0) {
    size_t end = body_.frame.end();
    size_t origin = body_.frame.origin();
    if (end == origin) {
      rows = 0;
    } else if (body_.text->size() > 0 && end > 0 && body_.text->At(end - 1) == '\n') {
      // Trailing newline leaves an empty last row.
      rows--;
    }
  }
  int bottom = rect_.y0 + 1 + rows;
  return std::min(bottom, rect_.y1);
}

void Window::Draw(Screen* screen, const Subwindow* current, const Selection* exec_sel,
                  const Subwindow* exec_sub) const {
  if (hidden()) {
    return;
  }
  const Selection* tag_exec = exec_sub == &tag_ ? exec_sel : nullptr;
  const Selection* body_exec = exec_sub == &body_ ? exec_sel : nullptr;
  tag_.frame.Draw(screen, tag_.sel, current == &tag_, Style::kTag, tag_exec);
  body_.frame.Draw(screen, body_.sel, current == &body_, Style::kNormal, body_exec);
  // Scroll bar: light track with a solid thumb spanning the visible part.
  Rect sb = ScrollbarRect();
  if (!sb.empty()) {
    size_t total = std::max<size_t>(1, body_.text->size());
    double top = static_cast<double>(body_.frame.origin()) / static_cast<double>(total);
    double bottom = static_cast<double>(body_.frame.end()) / static_cast<double>(total);
    int h = sb.height();
    int t0 = sb.y0 + static_cast<int>(top * h);
    int t1 = std::max(sb.y0 + static_cast<int>(bottom * h), t0 + 1);
    for (int y = sb.y0; y < sb.y1; y++) {
      bool thumb = y >= t0 && y < t1;
      if (sb.x0 >= 0 && sb.x0 < screen->width() && y >= 0 && y < screen->height()) {
        screen->At(sb.x0, y) = {thumb ? static_cast<Rune>(0x2588)    // █
                                      : static_cast<Rune>(0x2502),   // │
                                Style::kBorder};
      }
    }
  }
}

}  // namespace help
