#include <algorithm>

#include "src/obs/trace.h"
#include "src/wm/wm.h"

namespace help {

namespace {
// A new window is "too little visible" below this many rows (tag + 3 lines).
constexpr int kMinUseful = 4;
}  // namespace

bool Column::Contains(const Window* w) const {
  return std::find(wins_.begin(), wins_.end(), w) != wins_.end();
}

int Column::LowestVisibleText() const {
  int low = ContentRect().y0;
  for (const Window* w : wins_) {
    if (!w->hidden()) {
      low = std::max(low, w->UsedBottom());
    }
  }
  return low;
}

Window* Column::LowestVisibleWindow() const {
  Window* lowest = nullptr;
  for (Window* w : wins_) {
    if (!w->hidden() && (lowest == nullptr || w->rect().y0 > lowest->rect().y0)) {
      lowest = w;
    }
  }
  return lowest;
}

void Column::SortByDesiredY() {
  std::stable_sort(wins_.begin(), wins_.end(), [](const Window* a, const Window* b) {
    return a->desired_y0() < b->desired_y0();
  });
}

void Column::Place(Window* w) {
  // Which of the paper's three placement rules fires is itself an
  // experimental result — counted so /mnt/help/metrics reports the mix.
  OBS_SPAN("wm.place");
  Rect content = ContentRect();
  if (!Contains(w)) {
    wins_.push_back(w);
  }
  // Rule 1: immediately below the lowest visible text already in the column.
  int y0 = LowestVisibleText();
  if (content.y1 - y0 >= kMinUseful) {
    OBS_COUNT("wm.place.below_text", 1);
    // Truncate any window whose rect extends below the text it shows — the
    // new window takes over that blank space.
    for (Window* v : wins_) {
      if (v != w && !v->hidden() && v->rect().y1 > y0 && v->rect().y0 < y0) {
        v->SetRect({content.x0, v->rect().y0, content.x1, y0});
      }
    }
    w->SetRect({content.x0, y0, content.x1, content.y1});
    Normalize();
    return;
  }
  // Rule 2: cover the bottom half of the lowest window.
  Window* lowest = LowestVisibleWindow();
  if (lowest != nullptr && lowest != w && lowest->rect().height() / 2 >= kMinUseful) {
    OBS_COUNT("wm.place.split_lowest", 1);
    int mid = lowest->rect().y0 + lowest->rect().height() / 2;
    lowest->SetRect({content.x0, lowest->rect().y0, content.x1, mid});
    w->SetRect({content.x0, mid, content.x1, content.y1});
    Normalize();
    return;
  }
  // Rule 3: the bottom 25% of the column, hiding what it covers entirely.
  OBS_COUNT("wm.place.bottom", 1);
  int h = std::max(kMinUseful, content.height() / 4);
  y0 = std::max(content.y0, content.y1 - h);
  for (Window* v : wins_) {
    if (v == w || v->hidden()) {
      continue;
    }
    if (v->rect().y0 >= y0) {
      v->Hide();
    } else if (v->rect().y1 > y0) {
      v->SetRect({content.x0, v->rect().y0, content.x1, y0});
    }
  }
  w->SetRect({content.x0, y0, content.x1, content.y1});
  Normalize();
}

void Column::AddAt(Window* w, int y) {
  Rect content = ContentRect();
  if (!Contains(w)) {
    wins_.push_back(w);
  }
  y = std::clamp(y, content.y0, content.y1 - 1);
  int h = w->desired_height() > 0 ? w->desired_height() : content.height() / 3;
  int y1 = std::min(content.y1, y + std::max(h, 2));
  // Local rearrangement: windows under the drop lose the overlapped rows.
  for (Window* v : wins_) {
    if (v == w || v->hidden()) {
      continue;
    }
    Rect r = v->rect();
    if (r.y0 >= y && r.y0 < y1) {
      // Its tag would be covered; push the window below the drop if there is
      // room for at least its tag, else cover it completely.
      if (content.y1 - y1 >= 1) {
        int bottom = std::max(y1 + 1, std::min(content.y1, y1 + r.height()));
        v->SetRect({content.x0, y1, content.x1, bottom});
      } else {
        v->Hide();
      }
    } else if (r.y1 > y && r.y0 < y) {
      v->SetRect({content.x0, r.y0, content.x1, y});
    }
  }
  w->SetRect({content.x0, y, content.x1, y1});
  Normalize();
}

void Column::MakeVisible(Window* w) {
  if (!Contains(w)) {
    wins_.push_back(w);
  }
  Rect content = ContentRect();
  int y0 = std::clamp(w->desired_y0(), content.y0, content.y1 - 1);
  // "fully visible, from the tag to the bottom of the column it is in"
  for (Window* v : wins_) {
    if (v == w || v->hidden()) {
      continue;
    }
    if (v->rect().y0 >= y0) {
      v->Hide();
    } else if (v->rect().y1 > y0) {
      v->SetRect({content.x0, v->rect().y0, content.x1, y0});
    }
  }
  w->SetRect({content.x0, y0, content.x1, content.y1});
  Normalize();
}

void Column::Remove(Window* w) {
  auto it = std::find(wins_.begin(), wins_.end(), w);
  if (it == wins_.end()) {
    return;
  }
  // Give the freed rows to the window above (or below, if it was first).
  Rect freed = w->rect();
  wins_.erase(it);
  w->Hide();
  if (!freed.empty()) {
    Window* above = nullptr;
    for (Window* v : wins_) {
      if (!v->hidden() && v->rect().y1 <= freed.y0 &&
          (above == nullptr || v->rect().y1 > above->rect().y1)) {
        above = v;
      }
    }
    if (above != nullptr) {
      above->SetRect({freed.x0, above->rect().y0, freed.x1, freed.y1});
    } else {
      Window* below = nullptr;
      for (Window* v : wins_) {
        if (!v->hidden() && v->rect().y0 >= freed.y1 &&
            (below == nullptr || v->rect().y0 < below->rect().y0)) {
          below = v;
        }
      }
      if (below != nullptr) {
        below->SetRect({freed.x0, freed.y0, freed.x1, below->rect().y1});
      }
    }
  }
  Normalize();
}

void Column::Normalize() {
  SortByDesiredY();
  Rect content = ContentRect();
  // Walk top to bottom, keeping rects inside the column and non-overlapping;
  // a window that cannot keep even its tag row is covered completely.
  int cursor = content.y0;
  std::vector<Window*> visible;
  for (Window* w : wins_) {
    if (!w->hidden()) {
      visible.push_back(w);
    }
  }
  std::sort(visible.begin(), visible.end(),
            [](const Window* a, const Window* b) { return a->rect().y0 < b->rect().y0; });
  for (size_t i = 0; i < visible.size(); i++) {
    Window* w = visible[i];
    int y0 = std::max(w->rect().y0, cursor);
    int y1 = std::min(w->rect().y1, content.y1);
    if (i + 1 < visible.size()) {
      y1 = std::min(y1, std::max(visible[i + 1]->rect().y0, y0));
    }
    if (y1 - y0 < 1 || y0 >= content.y1) {
      w->Hide();
      continue;
    }
    w->SetRect({content.x0, y0, content.x1, y1});
    cursor = y1;
  }
  // The bottom-most visible window keeps the rest of the column; dangling
  // blank space at the column bottom is what rule 1 fills on placement.
}

void Column::DrawTabs(Screen* screen) const {
  // One black square per window, top to bottom, at the column's left edge.
  int y = rect_.y0;
  for (const Window* w : wins_) {
    if (y >= rect_.y1) {
      break;
    }
    Rune square = 0x25A0;  // ■
    Style style = w->hidden() ? Style::kBorder : Style::kTab;
    screen->At(rect_.x0, y) = {square, style};
    y++;
  }
}

int Column::TabIndexAt(Point p) const {
  if (p.x != rect_.x0) {
    return -1;
  }
  int idx = p.y - rect_.y0;
  if (idx < 0 || idx >= static_cast<int>(wins_.size())) {
    return -1;
  }
  return idx;
}

}  // namespace help
