#include <algorithm>

#include "src/obs/trace.h"
#include "src/wm/wm.h"

namespace help {

Page::Page(int width, int height, int ncols) : screen_(width, height) {
  cols_.resize(static_cast<size_t>(std::max(1, ncols)));
  LayoutColumns();
}

void Page::LayoutColumns() {
  int w = screen_.width();
  int h = screen_.height();
  int n = static_cast<int>(cols_.size());
  // Row 0 is the column-expansion tab row; columns occupy the rest.
  int y0 = 1;
  std::vector<int> widths(static_cast<size_t>(n), w / n);
  if (expanded_ >= 0 && n > 1) {
    int wide = w * 3 / 4;
    int rest = (w - wide) / (n - 1);
    for (int i = 0; i < n; i++) {
      widths[static_cast<size_t>(i)] = i == expanded_ ? wide : rest;
    }
  }
  int x = 0;
  for (int i = 0; i < n; i++) {
    int cw = i == n - 1 ? w - x : widths[static_cast<size_t>(i)];
    cols_[static_cast<size_t>(i)].SetRect({x, y0, x + cw, h});
    x += cw;
  }
  for (auto& col : cols_) {
    col.Normalize();
    for (Window* win : col.windows()) {
      if (!win->hidden()) {
        Rect content = col.ContentRect();
        win->SetRect({content.x0, win->rect().y0, content.x1,
                      std::min(win->rect().y1, content.y1)});
      }
    }
  }
}

Window* Page::Create(int id, std::shared_ptr<Text> tag, std::shared_ptr<Text> body,
                     int col_index, const Window* near) {
  OBS_COUNT("wm.windows_created", 1);
  auto w = std::make_unique<Window>(id, std::move(tag), std::move(body));
  Window* raw = w.get();
  windows_.push_back(std::move(w));
  int ci = col_index;
  if (ci < 0 && near != nullptr) {
    ci = ColumnOf(near);
  }
  if (ci < 0 || ci >= ncols()) {
    ci = 0;
  }
  cols_[static_cast<size_t>(ci)].Place(raw);
  return raw;
}

Window* Page::FindById(int id) {
  for (const auto& w : windows_) {
    if (w->id() == id) {
      return w.get();
    }
  }
  return nullptr;
}

void Page::Remove(Window* w) {
  for (auto& col : cols_) {
    col.Remove(w);
  }
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [w](const std::unique_ptr<Window>& p) { return p.get() == w; }),
                 windows_.end());
}

int Page::ColumnOf(const Window* w) const {
  for (size_t i = 0; i < cols_.size(); i++) {
    if (cols_[i].Contains(w)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Page::Hit Page::HitTest(Point p) {
  Hit hit;
  if (p.y == 0) {
    // Column-expansion tab row.
    for (size_t i = 0; i < cols_.size(); i++) {
      if (p.x >= cols_[i].rect().x0 && p.x < cols_[i].rect().x1) {
        hit.column = static_cast<int>(i);
        hit.on_column_tab = true;
        return hit;
      }
    }
    return hit;
  }
  for (size_t i = 0; i < cols_.size(); i++) {
    Column& col = cols_[i];
    if (!col.rect().Contains(p)) {
      continue;
    }
    hit.column = static_cast<int>(i);
    hit.tab_index = col.TabIndexAt(p);
    if (hit.tab_index >= 0) {
      return hit;
    }
    // Topmost (last-normalized) window containing the point; rects are
    // disjoint after Normalize, so any hit is unique.
    for (Window* w : col.windows()) {
      if (w->hidden() || !w->rect().Contains(p)) {
        continue;
      }
      hit.window = w;
      if (p.y == w->rect().y0) {
        hit.sub = &w->tag();
      } else if (w->ScrollbarRect().Contains(p)) {
        hit.on_scrollbar = true;
      } else {
        hit.sub = &w->body();
      }
      return hit;
    }
    return hit;
  }
  return hit;
}

void Page::Drag(Window* w, Point dest) {
  int target = 0;
  for (size_t i = 0; i < cols_.size(); i++) {
    if (dest.x >= cols_[i].rect().x0 && dest.x < cols_[i].rect().x1) {
      target = static_cast<int>(i);
      break;
    }
  }
  int from = ColumnOf(w);
  if (from >= 0) {
    // Detach without redistributing space yet; AddAt re-tiles the target.
    cols_[static_cast<size_t>(from)].Remove(w);
  }
  cols_[static_cast<size_t>(target)].AddAt(w, dest.y);
}

void Page::ToggleExpand(int i) {
  expanded_ = expanded_ == i ? -1 : i;
  LayoutColumns();
}

void Page::Draw(const Subwindow* current, const Selection* exec_sel,
                const Subwindow* exec_sub) {
  screen_.Clear();
  // Column-expansion tabs.
  for (size_t i = 0; i < cols_.size(); i++) {
    screen_.At(cols_[i].rect().x0, 0) = {0x25A0, Style::kTab};
  }
  for (auto& col : cols_) {
    col.DrawTabs(&screen_);
    for (Window* w : col.windows()) {
      w->Draw(&screen_, current, exec_sel, exec_sub);
    }
  }
}

}  // namespace help
