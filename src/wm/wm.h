// The window system: a screen tiled with columns of windows, each window a
// tag line above a body of editable text. Geometry follows the paper:
//
//  - a tower of small black squares at each column's left edge, one per
//    window (visible or invisible), clickable to reveal a window;
//  - a similar row across the top for expanding columns;
//  - automatic placement ("the rule of automation"): the Discussion
//    section's three-step heuristic, implemented verbatim in Column::Place;
//  - dragging by the tag with button 3, with local rearrangement;
//  - "help attempts to make at least the tag of a window fully visible; if
//    this is impossible, it covers the window completely."
//
// Bodies may be shared between windows (multiple windows per file). The
// *current* subwindow — whose selection shows in reverse video — is owned by
// the core and passed in at draw time.
#ifndef SRC_WM_WM_H_
#define SRC_WM_WM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/draw/frame.h"
#include "src/draw/screen.h"
#include "src/text/text.h"

namespace help {

class Window;

// One editable region (a tag or a body): text + layout + its own selection.
struct Subwindow {
  std::shared_ptr<Text> text;
  Frame frame;
  Selection sel;
  size_t origin = 0;  // first displayed rune
  bool is_tag = false;
  Window* window = nullptr;

  void Relayout() { frame.Fill(*text, origin); }
  // Scrolls so that `off` is displayed (origin moves to the start of a line
  // a third of the window above `off` when out of view).
  void ShowOffset(size_t off);
};

class Window {
 public:
  Window(int id, std::shared_ptr<Text> tag, std::shared_ptr<Text> body);

  int id() const { return id_; }
  Subwindow& tag() { return tag_; }
  Subwindow& body() { return body_; }
  const Subwindow& tag() const { return tag_; }
  const Subwindow& body() const { return body_; }

  bool hidden() const { return rect_.empty(); }
  const Rect& rect() const { return rect_; }
  // Assigns screen space (tag = first row, scrollbar = leftmost cell below
  // it, body = the rest) and lays out.
  void SetRect(const Rect& r);
  void Hide();

  // The one-cell-wide scroll bar at the body's left edge. Empty when hidden
  // or when the window has no body rows.
  Rect ScrollbarRect() const;
  // Scrolls the body by `lines` (negative = backward/up), clamped.
  void ScrollLines(int lines);
  // Scrolls so the body starts at `fraction` (0..1) of the text (the
  // absolute jump bound to button 2 in the scroll bar).
  void ScrollTo(double fraction);

  // Where this window would like its top edge (persists while hidden).
  int desired_y0() const { return desired_y0_; }
  void set_desired_y0(int y) { desired_y0_ = y; }
  int desired_height() const { return desired_height_; }

  // First token of the tag: the file name this window is "on".
  std::string TagFilename() const;
  // The directory context commands executed in this window run in.
  std::string ContextDir() const;

  // Row just below the lowest visible text (tag row + used body rows).
  int UsedBottom() const;

  void Relayout();
  void Draw(Screen* screen, const Subwindow* current,
            const Selection* exec_sel = nullptr,
            const Subwindow* exec_sub = nullptr) const;

 private:
  int id_;
  Subwindow tag_;
  Subwindow body_;
  Rect rect_;  // empty when hidden
  int desired_y0_ = 0;
  int desired_height_ = 0;
};

class Column {
 public:
  // `r` includes the 2-cell tab gutter on the left.
  void SetRect(const Rect& r) { rect_ = r; }
  const Rect& rect() const { return rect_; }
  // Where window content lives (to the right of the tab tower).
  Rect ContentRect() const { return {rect_.x0 + 2, rect_.y0, rect_.x1, rect_.y1}; }

  const std::vector<Window*>& windows() const { return wins_; }
  bool Contains(const Window* w) const;

  // The paper's placement heuristic. Adds `w` to this column:
  //  1. tag immediately below the lowest visible text in the column;
  //  2. else cover the bottom half of the lowest window;
  //  3. else cover the bottom 25% of the column (hiding what it covers).
  void Place(Window* w);

  // Adds at an explicit position (drag-and-drop); performs the local
  // rearrangement drop requires.
  void AddAt(Window* w, int y);

  // Tab click: reveal `w` "from the tag to the bottom of the column".
  void MakeVisible(Window* w);

  void Remove(Window* w);

  // Re-tiles: clamps rects into the column, keeps y-order, enforces
  // tag-visible-or-hidden, and lets the last window keep the bottom.
  void Normalize();

  void DrawTabs(Screen* screen) const;

  // Tab index at screen point, -1 if none.
  int TabIndexAt(Point p) const;

 private:
  int LowestVisibleText() const;
  Window* LowestVisibleWindow() const;
  void SortByDesiredY();

  Rect rect_;
  std::vector<Window*> wins_;  // top-to-bottom order (tab order)
};

// The whole screen: a row of column-expansion tabs on top, then columns.
class Page {
 public:
  Page(int width = 100, int height = 40, int ncols = 2);

  Screen& screen() { return screen_; }
  int ncols() const { return static_cast<int>(cols_.size()); }
  Column& col(int i) { return cols_[static_cast<size_t>(i)]; }

  // Creates a window; `col_index` -1 means "the column of `near`", falling
  // back to column 0. The window id is supplied by the caller (help's file
  // server numbers windows).
  Window* Create(int id, std::shared_ptr<Text> tag, std::shared_ptr<Text> body,
                 int col_index, const Window* near = nullptr);

  Window* FindById(int id);
  const std::vector<std::unique_ptr<Window>>& windows() const { return windows_; }
  void Remove(Window* w);

  int ColumnOf(const Window* w) const;  // -1 if not in any column

  struct Hit {
    Window* window = nullptr;
    Subwindow* sub = nullptr;    // tag or body
    int column = -1;             // column under the point
    int tab_index = -1;          // window-tab index in that column
    bool on_column_tab = false;  // top-row expansion tab
    bool on_scrollbar = false;   // the body's left-edge scroll bar
  };
  Hit HitTest(Point p);

  // Drag a window (grabbed by its tag) to `dest`.
  void Drag(Window* w, Point dest);

  // Column-expansion tab: widen column `i` to 3/4 of the screen (click
  // again to restore the even split).
  void ToggleExpand(int i);

  void Draw(const Subwindow* current, const Selection* exec_sel = nullptr,
            const Subwindow* exec_sub = nullptr);

 private:
  void LayoutColumns();

  Screen screen_;
  std::vector<Column> cols_;
  std::vector<std::unique_ptr<Window>> windows_;
  int expanded_ = -1;
};

}  // namespace help

#endif  // SRC_WM_WM_H_
