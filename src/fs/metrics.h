// Observability for the 9P service: per-op counters, error counts, byte
// totals, an in-flight gauge, and log2-bucketed latency histograms. All
// counters are atomics so worker threads record without taking the dispatch
// lock; Render() produces the text served by the paper's own mechanism —
// the synthetic /mnt/help/stats file, readable with cat.
#ifndef SRC_FS_METRICS_H_
#define SRC_FS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace help {

enum class MsgType : uint8_t;

// The operations the service counts. kBad collects undecodable packets and
// non-T messages.
enum class NinepOp : uint8_t {
  kVersion,
  kAttach,
  kFlush,
  kWalk,
  kOpen,
  kCreate,
  kRead,
  kWrite,
  kClunk,
  kRemove,
  kStat,
  kBad,
};
inline constexpr size_t kNinepOpCount = static_cast<size_t>(NinepOp::kBad) + 1;

NinepOp OpOfMsgType(MsgType t);
const char* NinepOpName(NinepOp op);

class NinepMetrics {
 public:
  // Latency buckets: bucket i holds samples with floor(log2(us)) == i-1,
  // bucket 0 holds sub-microsecond samples. 2^31 us ≈ 36 min caps the top.
  static constexpr size_t kBuckets = 32;

  void RecordOp(NinepOp op, uint64_t latency_us, bool error);
  void AddBytesIn(uint64_t n) { bytes_in_ += n; }
  void AddBytesOut(uint64_t n) { bytes_out_ += n; }
  void BeginRequest() { in_flight_++; }
  void EndRequest() { in_flight_--; }
  void RecordFlushCancel() { flush_cancels_++; }

  uint64_t count(NinepOp op) const { return ops_[Idx(op)].count.load(); }
  uint64_t errors(NinepOp op) const { return ops_[Idx(op)].errors.load(); }
  uint64_t bytes_in() const { return bytes_in_.load(); }
  uint64_t bytes_out() const { return bytes_out_.load(); }
  uint64_t in_flight() const { return in_flight_.load(); }
  uint64_t flush_cancels() const { return flush_cancels_.load(); }
  uint64_t total_ops() const;

  // Approximate percentile (0 < p <= 100) of one op's latency, in
  // microseconds: the upper bound of the bucket holding the p-th sample.
  // Returns 0 when the op has no samples.
  uint64_t LatencyPercentileUs(NinepOp op, double p) const;
  // Percentile over all ops combined (used by the benchmarks).
  uint64_t OverallPercentileUs(double p) const;

  // The /mnt/help/stats payload: one "op count errs p50us p99us" line per
  // op that has traffic, then the scalar totals.
  std::string Render() const;

  void Reset();

 private:
  struct PerOp {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    std::array<std::atomic<uint64_t>, kBuckets> latency{};
  };

  static size_t Idx(NinepOp op) { return static_cast<size_t>(op); }
  static size_t BucketOf(uint64_t latency_us);

  std::array<PerOp, kNinepOpCount> ops_{};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> flush_cancels_{0};
};

}  // namespace help

#endif  // SRC_FS_METRICS_H_
