// Observability for the 9P service: per-op counters, error counts, byte
// totals, an in-flight gauge, and log2-bucketed latency histograms. Since
// PR 3 this is a *view* over the process-wide obs::Registry (src/obs/trace.h)
// — the values live in named registry entries ("ninep.walk.count",
// "ninep.walk.latency_us", "ninep.bytes_in", ...) so /mnt/help/metrics sees
// the same numbers — but the public API and the byte format Render() produces
// for /mnt/help/stats are unchanged from PR 1.
#ifndef SRC_FS_METRICS_H_
#define SRC_FS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/obs/trace.h"

namespace help {

enum class MsgType : uint8_t;

// The operations the service counts. kBad collects undecodable packets and
// non-T messages.
enum class NinepOp : uint8_t {
  kVersion,
  kAttach,
  kFlush,
  kWalk,
  kOpen,
  kCreate,
  kRead,
  kWrite,
  kClunk,
  kRemove,
  kStat,
  kBad,
};
inline constexpr size_t kNinepOpCount = static_cast<size_t>(NinepOp::kBad) + 1;

NinepOp OpOfMsgType(MsgType t);
const char* NinepOpName(NinepOp op);

class NinepMetrics {
 public:
  // Latency buckets: bucket i holds samples with floor(log2(us)) == i-1,
  // bucket 0 holds sub-microsecond samples. 2^31 us ≈ 36 min caps the top.
  static constexpr size_t kBuckets = obs::Histogram::kBuckets;

  NinepMetrics();

  void RecordOp(NinepOp op, uint64_t latency_us, bool error);
  void AddBytesIn(uint64_t n) { bytes_in_->Add(n); }
  void AddBytesOut(uint64_t n) { bytes_out_->Add(n); }
  void BeginRequest() { in_flight_->Add(); }
  void EndRequest() { in_flight_->Sub(); }
  void RecordFlushCancel() { flush_cancels_->Add(); }
  // PR 4 read-path concurrency: a dispatch that ran under the shared lock, a
  // shared read re-run exclusively after seqlock validation failed, and the
  // time any dispatch spent waiting for the dispatch lock.
  void RecordSharedRead() { shared_reads_->Add(); }
  void RecordReadRetry() { read_retries_->Add(); }
  void RecordLockWait(uint64_t wait_us) { lock_wait_->Record(wait_us); }
  // PR 7 socket transport: connection-layer counters ("net.*" in the
  // registry), recorded by NinepListener. bytes here are raw wire bytes —
  // ninep.bytes_{in,out} keep counting framed protocol bytes, so the two
  // pairs agree only when every byte frames cleanly.
  void RecordAccept() {
    net_accepts_->Add();
    net_active_->Add();
  }
  void RecordDisconnect() { net_active_->Sub(); }
  void RecordReap() { net_reaped_->Add(); }
  void RecordBackpressureStall() { net_stalls_->Add(); }
  void RecordFrameError() { net_frame_errors_->Add(); }
  void AddNetBytesIn(uint64_t n) { net_bytes_in_->Add(n); }
  void AddNetBytesOut(uint64_t n) { net_bytes_out_->Add(n); }
  // PR 8 request tracing: time a frame sat in a connection's inbox before a
  // worker picked it up ("net.queue_wait_us" — the registry/metrics view;
  // per-connection copies live in ConnInfo).
  void RecordNetQueueWait(uint64_t us) { net_queue_wait_->Record(us); }
  // PR 9 pipelined dispatch + zero-copy reads: a request that completed
  // while an earlier-arrived request from the same connection was still
  // mid-dispatch (counted by the listener from arrival seqs); the
  // Rread payload bytes that reached the wire frame via the gather path vs.
  // staged through an intermediate string; bodyapp writes that rode a
  // coalesced batch; and writev() calls draining listener outboxes.
  void RecordOooCompletion() { ooo_completions_->Add(); }
  void AddBytesZeroCopy(uint64_t n) { bytes_zero_copy_->Add(n); }
  void AddBytesStaged(uint64_t n) { bytes_staged_->Add(n); }
  void RecordBodyappCoalesced(uint64_t n) { bodyapp_coalesced_->Add(n); }
  void RecordWritev() { net_writev_calls_->Add(); }
  // PR 10 sharded dispatch: a dispatch that took a per-window shard (reader
  // or writer side), an exclusive acquisition of the namespace epoch lock
  // (structural ops and LockDispatch), and the time spent waiting for a
  // window shard.
  void RecordWindowAcquire() { lock_window_acquires_->Add(); }
  void RecordEpochExclusive() { lock_epoch_exclusive_->Add(); }
  void RecordShardWait(uint64_t wait_us) { shard_wait_->Record(wait_us); }

  uint64_t count(NinepOp op) const { return ops_[Idx(op)].count->value(); }
  uint64_t errors(NinepOp op) const { return ops_[Idx(op)].errors->value(); }
  uint64_t bytes_in() const { return bytes_in_->value(); }
  uint64_t bytes_out() const { return bytes_out_->value(); }
  uint64_t in_flight() const { return in_flight_->value(); }
  uint64_t flush_cancels() const { return flush_cancels_->value(); }
  uint64_t shared_reads() const { return shared_reads_->value(); }
  uint64_t read_retries() const { return read_retries_->value(); }
  uint64_t net_accepts() const { return net_accepts_->value(); }
  uint64_t net_active_conns() const { return net_active_->value(); }
  uint64_t net_reaped() const { return net_reaped_->value(); }
  uint64_t net_backpressure_stalls() const { return net_stalls_->value(); }
  uint64_t net_frame_errors() const { return net_frame_errors_->value(); }
  uint64_t net_bytes_in() const { return net_bytes_in_->value(); }
  uint64_t net_bytes_out() const { return net_bytes_out_->value(); }
  uint64_t ooo_completions() const { return ooo_completions_->value(); }
  uint64_t bytes_zero_copy() const { return bytes_zero_copy_->value(); }
  uint64_t bytes_staged() const { return bytes_staged_->value(); }
  uint64_t bodyapp_coalesced() const { return bodyapp_coalesced_->value(); }
  uint64_t net_writev_calls() const { return net_writev_calls_->value(); }
  uint64_t lock_window_acquires() const { return lock_window_acquires_->value(); }
  uint64_t lock_epoch_exclusive() const { return lock_epoch_exclusive_->value(); }
  uint64_t lock_shard_wait_p99us() const { return shard_wait_->Percentile(99); }
  uint64_t total_ops() const;

  // Approximate percentile (0 < p <= 100) of one op's latency, in
  // microseconds: the upper bound of the bucket holding the p-th sample.
  // Returns 0 when the op has no samples.
  uint64_t LatencyPercentileUs(NinepOp op, double p) const;
  // Percentile over all ops combined (used by the benchmarks).
  uint64_t OverallPercentileUs(double p) const;

  // The /mnt/help/stats payload: one "op count errs p50us p99us" line per
  // op that has traffic, then the scalar totals. Byte-compatible with PR 1.
  std::string Render() const;

  void Reset();

 private:
  struct PerOp {
    obs::Counter* count = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };

  static size_t Idx(NinepOp op) { return static_cast<size_t>(op); }

  std::array<PerOp, kNinepOpCount> ops_{};
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* in_flight_;
  obs::Counter* flush_cancels_;
  obs::Counter* shared_reads_;
  obs::Counter* read_retries_;
  obs::Histogram* lock_wait_;
  obs::Counter* net_accepts_;
  obs::Counter* net_active_;
  obs::Counter* net_reaped_;
  obs::Counter* net_stalls_;
  obs::Counter* net_frame_errors_;
  obs::Counter* net_bytes_in_;
  obs::Counter* net_bytes_out_;
  obs::Histogram* net_queue_wait_;
  obs::Counter* ooo_completions_;
  obs::Counter* bytes_zero_copy_;
  obs::Counter* bytes_staged_;
  obs::Counter* bodyapp_coalesced_;
  obs::Counter* net_writev_calls_;
  obs::Counter* lock_window_acquires_;
  obs::Counter* lock_epoch_exclusive_;
  obs::Histogram* shard_wait_;
};

}  // namespace help

#endif  // SRC_FS_METRICS_H_
