// The in-memory virtual file system: the Plan 9 namespace that substitutes
// for the paper's kernel. Regular files hold bytes; synthetic files delegate
// to a FileHandler, which is how help's /mnt/help window interface (and the
// simulated /proc) are implemented — "the standard currency in Plan 9: files
// and file servers".
//
// The VFS is the single source of truth. The shell's coreutils call it
// directly; external clients go through the 9P-style protocol in ninep.h,
// which serves this same tree.
//
// Threading: the VFS carries no locks of its own — nodes, handlers, and the
// clock are unsynchronized. Concurrent 9P clients are safe because
// NinepServer (src/fs/server.h) guards every tree-touching dispatch with a
// two-level lock hierarchy (DESIGN.md §17): a namespace epoch lock held
// shared by window-scoped and read-only operations and exclusively by
// structural mutations (create/remove, window lifecycle, ctl writes), plus
// per-window shards (WindowShard below) that serialize mutations of one
// window against each other and against that window's readers. Anything
// else that shares a Vfs with a live NinepServer must serialize through
// NinepServer::LockDispatch(), which takes the epoch lock's exclusive side.
#ifndef SRC_FS_VFS_H_
#define SRC_FS_VFS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/rune.h"
#include "src/base/status.h"
#include "src/fs/path.h"

namespace help {

// Open modes (values match Plan 9's so protocol encoding is natural).
enum OpenMode : uint8_t {
  kOread = 0,
  kOwrite = 1,
  kOrdwr = 2,
  kOtrunc = 0x10,  // or'ed in
};

struct Qid {
  uint64_t path = 0;  // unique id
  uint32_t vers = 0;  // bumped on modification
  bool dir = false;
};

struct StatInfo {
  std::string name;
  Qid qid;
  uint64_t length = 0;
  uint64_t mtime = 0;
  bool dir = false;
};

class Node;
using NodePtr = std::shared_ptr<Node>;

class OpenFile;

// A scatter-gather read: the file's bytes for one read request, described
// without staging them through an intermediate string. The middle is either
// borrowed rune spans (`runes`, gap-buffer storage — one UTF-8 transcode away
// from the wire) or a borrowed byte view (`raw`, regular-file payloads);
// prefix/suffix carry owned fringe bytes where a byte range splits a rune's
// encoding. Borrowed views alias live storage: they are valid only while the
// dispatch context that produced them pins the data — under the exclusive
// dispatch lock unconditionally, or in shared mode until Validate() says a
// concurrent edit intervened (seqlock discipline: the producer records the
// edit sequence it read under; consumers encode, then call Validate() and
// throw the bytes away on mismatch).
struct GatherView {
  std::string prefix;    // owned bytes before the spans (may be empty)
  RuneSpans runes;       // borrowed rune middle (empty when raw is set)
  std::string suffix;    // owned bytes after the spans (may be empty)
  std::string_view raw;  // borrowed byte middle (regular files)
  uint64_t bytes = 0;    // total payload size in bytes

  // Seqlock validation token. Null seq_source means the view is stable for
  // the current dispatch (exclusive lock held, or nothing borrowed).
  const std::atomic<uint64_t>* seq_source = nullptr;
  uint64_t seq_expected = 0;
  bool Validate() const {
    return seq_source == nullptr ||
           seq_source->load(std::memory_order_acquire) == seq_expected;
  }
};

// The per-window mutation lock. Windows are the unit of sharding in the
// dispatch-lock hierarchy (DESIGN.md §17): every file of one window — and of
// every clone sharing its body Text — reports the same shard, so mutations of
// *different* windows run concurrently while mutations of the *same* window
// (or its clones) serialize. Readers of a window's files take the shard
// shared; writers take it exclusive. `domain` is the owning window's id
// (nonzero — window ids start at 1), used by the listener scheduler to fence
// only same-window frames.
struct WindowShard {
  std::shared_mutex mu;
  uint64_t domain = 0;
};
using WindowShardPtr = std::shared_ptr<WindowShard>;

// Behaviour hook for synthetic files. One handler instance may serve many
// nodes; per-open state lives in the OpenFile. Handlers receive the OpenFile
// so that e.g. /mnt/help/new/ctl can create a window at Open time and answer
// subsequent reads with the new window's name.
class FileHandler {
 public:
  virtual ~FileHandler() = default;
  // Called when a client opens the file. Default: accept.
  virtual Status Open(OpenFile& f, uint8_t mode) { return Status::Ok(); }
  // Read up to `count` bytes at `offset`.
  virtual Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) = 0;
  // Zero-copy read: describe the bytes as a GatherView instead of staging
  // them. Returns false when the handler has no gather path (callers fall
  // back to Read). Implementations populate *out with borrowed views and the
  // validation token; they must not allocate a middle copy — that is the
  // whole point. Wrappers must delegate.
  virtual bool Gather(OpenFile& f, uint64_t offset, uint32_t count,
                      GatherView* out) {
    return false;
  }
  // Write `data` at `offset`; returns bytes accepted.
  virtual Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) = 0;
  // Called when the last reference to the open file goes away.
  virtual void Clunk(OpenFile& f) {}
  // Length reported by stat (synthetic files often report 0).
  virtual uint64_t Length(const Node& n) const { return 0; }
  // True when Open has side effects even for a read-only open (e.g.
  // /mnt/help/new/ctl creates a window). The 9P dispatch classification uses
  // this to route such opens through the exclusive lock; handlers whose Open
  // only computes a snapshot keep the default and stay on the shared path.
  // Wrappers must delegate to the handler they wrap.
  virtual bool OpenNeedsExclusive() const { return false; }
  // The window shard this file's mutations are confined to, or nullptr when
  // the file is not window-scoped (regular files, ctl files, stats — anything
  // whose writes can touch state outside one window). The 9P dispatch
  // classification resolves this once at fid-bind time (Walk/Attach/Create)
  // so the lock target is known before any lock is taken. The returned
  // pointer must be immutable for the handler's lifetime. Wrappers must
  // delegate to the handler they wrap.
  virtual WindowShardPtr window_shard() const { return nullptr; }
};

// Synthesizes a directory's children on demand — the Plan 9 /net and /proc
// idiom, where a listing reflects live objects (one numbered directory per
// connection) instead of nodes something had to create and destroy. A
// directory with a DirSynth answers Child() and ListDir() from the synth
// after its static children. Lookups run under the 9P dispatch lock in
// either mode and from the UI thread, so implementations must be internally
// thread-safe and must never acquire the dispatch lock.
class DirSynth {
 public:
  virtual ~DirSynth() = default;
  // Resolves one name; nullptr when it doesn't (or no longer) exists.
  virtual NodePtr Lookup(std::string_view name) = 0;
  // All currently live synthesized children.
  virtual std::vector<NodePtr> List() = 0;
};

class Node : public std::enable_shared_from_this<Node> {
 public:
  Node(std::string name, bool dir, uint64_t qid_path);

  const std::string& name() const { return name_; }
  bool dir() const { return qid_.dir; }
  // vers and mtime are stored in relaxed atomics: a shard-holding writer may
  // Touch a window file's node while another session Twalks past it or
  // Ropens it under the shared epoch lock, and those readers only need *a*
  // consistent value, not ordering. qid() therefore returns by value.
  Qid qid() const {
    Qid q = qid_;
    q.vers = vers_.load(std::memory_order_relaxed);
    return q;
  }
  uint64_t mtime() const { return mtime_.load(std::memory_order_relaxed); }
  void set_mtime(uint64_t t) { mtime_.store(t, std::memory_order_relaxed); }
  void Touch(uint64_t t) {
    mtime_.store(t, std::memory_order_relaxed);
    vers_.fetch_add(1, std::memory_order_relaxed);
  }

  // Regular file payload (ignored when handler_ is set).
  std::string& data() { return data_; }
  const std::string& data() const { return data_; }

  FileHandler* handler() const { return handler_.get(); }
  void set_handler(std::shared_ptr<FileHandler> h) { handler_ = std::move(h); }

  // Directory contents, sorted by name (help lists directories in order).
  // Child() and Vfs::ListDir also consult the DirSynth, if one is set;
  // children() is the static map only.
  const std::map<std::string, NodePtr>& children() const { return children_; }
  NodePtr Child(std::string_view name) const;
  void AddChild(NodePtr child);
  void RemoveChild(std::string_view name);
  Node* parent() const { return parent_; }
  // For synthesized subtrees: gives a node built outside AddChild a parent so
  // FullPath resolves. The parent must outlive the child.
  void set_parent(Node* p) { parent_ = p; }

  DirSynth* dir_synth() const { return dir_synth_.get(); }
  void set_dir_synth(std::shared_ptr<DirSynth> s) { dir_synth_ = std::move(s); }

  uint64_t length() const;

 private:
  std::string name_;
  Qid qid_;  // vers_ is authoritative for qid_.vers; qid_ holds path/dir
  std::atomic<uint32_t> vers_{0};
  std::atomic<uint64_t> mtime_{0};
  std::string data_;
  std::shared_ptr<FileHandler> handler_;
  std::shared_ptr<DirSynth> dir_synth_;
  std::map<std::string, NodePtr> children_;
  Node* parent_ = nullptr;
};

// An open-file session: node + mode + per-open handler state.
class OpenFile {
 public:
  OpenFile(NodePtr node, uint8_t mode, Clock* clock)
      : node_(std::move(node)), mode_(mode), clock_(clock) {}
  ~OpenFile();

  Result<std::string> Read(uint64_t offset, uint32_t count);
  // Zero-copy variant: false when no gather path exists for this file (the
  // caller falls back to Read). Regular files gather as a borrowed byte view
  // of the node's payload; handler files delegate to FileHandler::Gather.
  bool Gather(uint64_t offset, uint32_t count, GatherView* out);
  Result<uint32_t> Write(uint64_t offset, std::string_view data);

  Node& node() { return *node_; }
  const NodePtr& node_ptr() const { return node_; }
  uint8_t mode() const { return mode_; }

  // Opaque per-open state for handlers.
  std::string state;
  int64_t state_int = 0;

 private:
  NodePtr node_;
  uint8_t mode_;
  Clock* clock_;
};

using OpenFilePtr = std::shared_ptr<OpenFile>;

class Vfs {
 public:
  Vfs();

  Clock* clock() { return &clock_; }
  const NodePtr& root() const { return root_; }

  // Process-unique instance id. Qid paths and the logical clock are both
  // per-instance and deterministic, so two namespaces can produce identical
  // (path, qid, mtime) triples for different contents; caches that key on a
  // file's identity (the shell's compiled-script cache) include this id to
  // keep entries from aliasing across namespaces.
  uint64_t id() const { return id_; }

  // --- Namespace operations -------------------------------------------------
  Result<NodePtr> Walk(std::string_view path) const;
  Result<NodePtr> Create(std::string_view path, bool dir);
  Status MkdirAll(std::string_view path);
  Status Remove(std::string_view path);
  Result<StatInfo> Stat(std::string_view path) const;
  Result<std::vector<StatInfo>> ReadDir(std::string_view path) const;

  // --- File I/O ---------------------------------------------------------------
  Result<OpenFilePtr> Open(std::string_view path, uint8_t mode);

  // Convenience whole-file operations used pervasively by the shell and core.
  Result<std::string> ReadFile(std::string_view path) const;
  Status WriteFile(std::string_view path, std::string_view data);   // create/truncate
  Status AppendFile(std::string_view path, std::string_view data);  // create/append

  // Installs a synthetic file (creates the node if absent).
  Status AttachHandler(std::string_view path, std::shared_ptr<FileHandler> handler);

  // Full path of a node (walks parent links).
  static std::string FullPath(const Node& n);

  static StatInfo StatOf(const Node& n);

  // Consistent point-in-time listing of a directory node: the stats of all
  // children, in name order. Callers (e.g. a 9P session's directory-read
  // buffer) take this snapshot once and serve reads from it, so a listing
  // never tears while entries are created or removed.
  static std::vector<StatInfo> ListDir(const Node& n);

 private:
  Result<NodePtr> WalkParent(std::string_view path, std::string* base) const;

  NodePtr root_;
  Clock clock_;
  uint64_t id_ = 0;
  uint64_t next_qid_ = 1;

  uint64_t NextQid() { return next_qid_++; }
};

}  // namespace help

#endif  // SRC_FS_VFS_H_
