// The wire level of the 9P service: length-prefixed T/R frames over real
// sockets. Everything below NinepServer::HandleBytes already speaks complete
// packets; this module is what turns a byte *stream* (TCP or Unix-domain)
// into those packets and back.
//
//   * FrameReader — an incremental deframer. 9P messages carry their own
//     size[4] prefix, so framing is: buffer bytes, expose one complete
//     message at a time. The reader treats the wire as hostile: a size field
//     below the 7-byte minimum (size+type+tag) or above the frame cap —
//     msize is negotiated downward from kDefaultMsize, so no honest peer
//     ever sends more — poisons the stream permanently; the connection
//     layer's only correct response is to hang up.
//   * Dial/Listen helpers — thin fd-returning wrappers over the BSD socket
//     calls, Plan 9-style error strings, SIGPIPE suppressed (MSG_NOSIGNAL).
//   * SocketTransport — the synchronous client side: a NinepClient::Transport
//     that writes one framed T-message and blocks for the matching R-message,
//     so the same client code runs in-process or over the wire. Transport
//     failures are surfaced as a synthesized Rerror carrying the request's
//     own tag (the Transport signature has no side channel for errors).
//
// The server side — the epoll event loop multiplexing thousands of these
// connections — lives in src/fs/listener.h.
#ifndef SRC_FS_TRANSPORT_H_
#define SRC_FS_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/fs/ninep.h"

namespace help {

// Smallest well-formed frame: size[4] type[1] tag[2].
inline constexpr uint32_t kMinFrameSize = 7;
// Hard inbound frame cap. The server never negotiates msize above
// kDefaultMsize, so a frame claiming more is a protocol violation, not a big
// message.
inline constexpr uint32_t kMaxFrameSize = kDefaultMsize;

// Incremental deframer for a length-prefixed 9P byte stream. Feed() raw
// bytes as they arrive; Pop() yields complete frames in order. Once a frame
// header lies (size out of [kMinFrameSize, max_frame]) the stream is
// poisoned: every further Pop() returns kError and the caller must close the
// connection — there is no way to resynchronize a framed stream after a bad
// length.
class FrameReader {
 public:
  enum class Next { kFrame, kNeedMore, kError };

  explicit FrameReader(uint32_t max_frame = kMaxFrameSize)
      : max_frame_(max_frame) {}

  void Feed(std::string_view bytes);

  // Extracts the next complete frame (including its size prefix).
  Next Pop(std::string* frame);

  bool poisoned() const { return poisoned_; }
  const std::string& error() const { return error_; }
  // Bytes buffered but not yet popped (bounded by max_frame once a header is
  // visible; the connection layer stops reading on backpressure anyway).
  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  uint32_t max_frame_;
  bool poisoned_ = false;
  std::string error_;
};

// The 9P tag of a complete frame (size[4] type[1] tag[2] — bytes 5..6,
// little-endian). The listener stamps request trace ids with this before any
// decode happens. Returns kNoTag for impossibly short frames (the deframer
// never yields one, but hostile-input paths shouldn't trust that).
uint16_t FrameTag(std::string_view frame);

// Human-readable peer of a connected socket: "ip:port" for TCP, "unix" for
// Unix-domain, "?" when getpeername fails. For /mnt/help/net status files.
std::string PeerString(int fd);

// --- fd-level socket helpers -------------------------------------------------

// All return a connected/listening fd (CLOEXEC) or a Plan 9-style error.
// Listeners bind+listen; port 0 picks an ephemeral port (read it back with
// LocalPort). Unix listeners unlink a stale socket file first.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog = 512);
Result<int> ListenUnix(const std::string& path, int backlog = 512);
Result<int> DialTcp(const std::string& host, uint16_t port);
Result<int> DialUnix(const std::string& path);

// The port a listening TCP fd actually bound (for port 0 = ephemeral).
Result<uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);

// Blocking write of the whole buffer / read of exactly n bytes. ReadFull
// returns the bytes read (short only at EOF-with-error). Both retry EINTR
// and suppress SIGPIPE.
Status WriteFull(int fd, std::string_view data);
Result<std::string> ReadFull(int fd, size_t n);

// Best-effort RLIMIT_NOFILE raise for C10K-scale drivers (bench, soak
// tests): lifts the soft limit toward min(want, hard). Never fails hard.
void RaiseFdLimit(uint64_t want);

// --- Client side -------------------------------------------------------------

// A socket-backed transport for NinepClient: framed T-messages out, framed
// R-messages back. Usable synchronously (Rpc: one out, one back, blocking)
// or pipelined (Send N packets, then RecvReply N times). Not thread-safe —
// one SocketTransport per client connection, which is also the protocol's
// assumption (one logical client per connection).
class SocketTransport {
 public:
  static Result<std::unique_ptr<SocketTransport>> ConnectTcp(
      const std::string& host, uint16_t port);
  static Result<std::unique_ptr<SocketTransport>> ConnectUnix(
      const std::string& path);

  ~SocketTransport() { Close(); }
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // The full round trip. On any transport failure (send error, connection
  // closed, unframeable reply) returns an encoded Rerror carrying the
  // request's tag, so NinepClient surfaces it as an ordinary error Status.
  // Equivalent to Send + RecvReply; requires no other requests in flight.
  std::string Rpc(std::string_view packet);

  // Pipelined half-calls. Send frames the T-message onto the wire and
  // remembers its tag; RecvReply blocks for the next R-message. When the
  // transport dies mid-stream, each RecvReply synthesizes an Rerror for the
  // *oldest* tag still in flight — with several requests outstanding the
  // failure belongs to the reply the server would have sent next, not to
  // whichever packet happened to be written last. Every Send is eventually
  // answered by exactly one RecvReply, real or synthesized.
  Status Send(std::string_view packet);
  std::string RecvReply();
  size_t inflight() const { return inflight_.size(); }

  // Adapter for NinepClient's std::function transport. The returned callable
  // borrows `this`; keep the SocketTransport alive for the client's life.
  NinepClient::Transport AsTransport() {
    return [this](std::string_view packet) { return Rpc(packet); };
  }

  // Adapter for NinepClient's pipelined send/recv pair (ReadFidPipelined).
  // Borrows `this` the same way.
  NinepClient::PipeIo AsPipeIo();

  void Close();
  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  int fd_ = -1;
  // First send failure's message; later synthesized replies carry it so the
  // root cause isn't masked by "transport closed".
  std::string send_error_;
  // Tags of sent-but-unanswered requests, oldest first. Rerror synthesis on
  // transport failure pops from the front so errors pair with requests in
  // FIFO order (the server answers a dead connection's requests never; the
  // client sees them fail oldest-first, matching its collect loop).
  std::deque<uint16_t> inflight_;
};

}  // namespace help

#endif  // SRC_FS_TRANSPORT_H_
