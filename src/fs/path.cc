#include "src/fs/path.h"

namespace help {

std::string CleanPath(std::string_view path) {
  bool abs = IsAbsPath(path);
  std::vector<std::string_view> stack;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      i++;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      i++;
    }
    std::string_view elem = path.substr(start, i - start);
    if (elem.empty() || elem == ".") {
      continue;
    }
    if (elem == "..") {
      if (!stack.empty() && stack.back() != "..") {
        stack.pop_back();
      } else if (!abs) {
        stack.push_back(elem);  // relative paths keep leading ..
      }
      continue;
    }
    stack.push_back(elem);
  }
  std::string out;
  if (abs) {
    out = "/";
  }
  for (size_t k = 0; k < stack.size(); k++) {
    if (k > 0) {
      out += '/';
    }
    out += stack[k];
  }
  if (out.empty()) {
    out = abs ? "/" : ".";
  }
  return out;
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  if (IsAbsPath(name) || dir.empty()) {
    return CleanPath(name);
  }
  std::string joined(dir);
  joined += '/';
  joined += name;
  return CleanPath(joined);
}

std::string BasePath(std::string_view path) {
  std::string clean = CleanPath(path);
  size_t slash = clean.rfind('/');
  if (slash == std::string::npos) {
    return clean;
  }
  if (clean == "/") {
    return "/";
  }
  return clean.substr(slash + 1);
}

std::string DirPath(std::string_view path) {
  std::string clean = CleanPath(path);
  size_t slash = clean.rfind('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return clean.substr(0, slash);
}

bool IsAbsPath(std::string_view path) { return !path.empty() && path[0] == '/'; }

std::vector<std::string> PathElements(std::string_view path) {
  std::string clean = CleanPath(path);
  std::vector<std::string> out;
  size_t i = 0;
  while (i < clean.size()) {
    while (i < clean.size() && clean[i] == '/') {
      i++;
    }
    size_t start = i;
    while (i < clean.size() && clean[i] != '/') {
      i++;
    }
    if (i > start) {
      out.emplace_back(clean.substr(start, i - start));
    }
  }
  return out;
}

}  // namespace help
