#include "src/fs/netinfo.h"

#include <algorithm>
#include <cstdio>

#include "src/base/strings.h"
#include "src/fs/server.h"

namespace help {

// --- FlightRecorder ----------------------------------------------------------

void FlightRecorder::Record(const RequestRecord& r) {
  seen_.fetch_add(1, std::memory_order_relaxed);
  if (r.total_ns < threshold_ns_.load(std::memory_order_relaxed)) {
    return;
  }
  if (r.total_ns <= floor_ns_.load(std::memory_order_relaxed)) {
    return;  // ring is full and everything kept is at least this slow
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (slots_.size() < kSlots) {
    slots_.push_back(r);
  } else {
    auto min_it = std::min_element(
        slots_.begin(), slots_.end(),
        [](const RequestRecord& a, const RequestRecord& b) {
          return a.total_ns < b.total_ns;
        });
    if (r.total_ns <= min_it->total_ns) {
      return;  // raced another writer that raised the floor
    }
    *min_it = r;
  }
  if (slots_.size() == kSlots) {
    uint64_t floor = ~0ull;
    for (const RequestRecord& s : slots_) {
      floor = std::min(floor, s.total_ns);
    }
    floor_ns_.store(floor, std::memory_order_relaxed);
  }
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  slots_.clear();
  floor_ns_.store(0, std::memory_order_relaxed);
}

size_t FlightRecorder::kept() const {
  std::lock_guard<std::mutex> lk(mu_);
  return slots_.size();
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  std::vector<RequestRecord> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = slots_;
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

std::string FlightRecorder::RenderText() const {
  std::string out =
      "rid cid tag op total_us queue_us lock_us handler_us encode_us outbox_us\n";
  char line[224];
  for (const RequestRecord& r : Snapshot()) {
    std::snprintf(line, sizeof(line),
                  "0x%llx %llu %u %s %llu %llu %llu %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.rid),
                  static_cast<unsigned long long>(r.cid), r.tag,
                  NinepOpName(r.op),
                  static_cast<unsigned long long>(r.total_ns / 1000),
                  static_cast<unsigned long long>(r.queue_ns / 1000),
                  static_cast<unsigned long long>(r.lock_ns / 1000),
                  static_cast<unsigned long long>(r.handler_ns / 1000),
                  static_cast<unsigned long long>(r.encode_ns / 1000),
                  static_cast<unsigned long long>(r.outbox_ns / 1000));
    out += line;
  }
  return out;
}

std::string FlightRecorder::RenderCtl() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "threshold_us %llu\nkept %zu\nseen %llu\ncapacity %zu\n",
                static_cast<unsigned long long>(threshold_us()), kept(),
                static_cast<unsigned long long>(seen()), kSlots);
  return buf;
}

// --- ConnInfo ----------------------------------------------------------------

const char* ConnStateName(ConnState s) {
  switch (s) {
    case ConnState::kActive:
      return "active";
    case ConnState::kStalled:
      return "stalled";
    case ConnState::kClosing:
      return "closing";
  }
  return "?";
}

ConnInfo::ConnInfo(NinepServer* srv, uint64_t cid, std::string peer)
    : srv_(srv), cid_(cid), peer_(std::move(peer)) {}

void ConnInfo::RecordOp(NinepOp op, uint64_t latency_us, bool error) {
  op_counts_[static_cast<size_t>(op)].fetch_add(1, std::memory_order_relaxed);
  if (error) {
    op_errors_[static_cast<size_t>(op)].fetch_add(1, std::memory_order_relaxed);
  }
  latency_us_.Record(latency_us);
  replies_out_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ConnInfo::total_ops() const {
  uint64_t total = 0;
  for (const auto& c : op_counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

std::string ConnInfo::RenderStatus() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "peer %s\nstate %s\nmsize %u\nfids %zu\nframes_in %llu\n"
                "replies_out %llu\nbytes_in %llu\nbytes_out %llu\n",
                peer_.c_str(), ConnStateName(state()),
                srv_->session_msize(cid_), srv_->open_fids(cid_),
                static_cast<unsigned long long>(frames_in()),
                static_cast<unsigned long long>(replies_out()),
                static_cast<unsigned long long>(bytes_in()),
                static_cast<unsigned long long>(bytes_out()));
  return buf;
}

std::string ConnInfo::RenderStats() const {
  // Same table shape as the global /mnt/help/stats so the same scripts parse
  // both, then the connection-wide histograms.
  char line[160];
  std::string out = "op count errs p50us p99us\n";
  for (size_t i = 0; i < kNinepOpCount; i++) {
    NinepOp op = static_cast<NinepOp>(i);
    uint64_t n = op_count(op);
    if (n == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "%s %llu %llu %llu %llu\n",
                  NinepOpName(op), static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(op_errors(op)),
                  static_cast<unsigned long long>(latency_us_.Percentile(50)),
                  static_cast<unsigned long long>(latency_us_.Percentile(99)));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total_ops %llu\nlatency_us %llu %llu %llu\n"
                "queue_wait_us %llu %llu %llu\n",
                static_cast<unsigned long long>(total_ops()),
                static_cast<unsigned long long>(latency_us_.count()),
                static_cast<unsigned long long>(latency_us_.Percentile(50)),
                static_cast<unsigned long long>(latency_us_.Percentile(99)),
                static_cast<unsigned long long>(queue_wait_us_.count()),
                static_cast<unsigned long long>(queue_wait_us_.Percentile(50)),
                static_cast<unsigned long long>(queue_wait_us_.Percentile(99)));
  out += line;
  // PR 9 zero-copy read path, appended so older consumers keep parsing.
  std::snprintf(line, sizeof(line), "writev_calls %llu\nbytes_zero_copy %llu\n",
                static_cast<unsigned long long>(writev_calls()),
                static_cast<unsigned long long>(bytes_zero_copy()));
  out += line;
  return out;
}

std::string ConnInfo::RenderClientLine() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf), "%llu %s %s %u %zu %llu %llu %llu\n",
                static_cast<unsigned long long>(cid_), peer_.c_str(),
                ConnStateName(state()), srv_->session_msize(cid_),
                srv_->open_fids(cid_),
                static_cast<unsigned long long>(frames_in()),
                static_cast<unsigned long long>(bytes_in()),
                static_cast<unsigned long long>(bytes_out()));
  return buf;
}

// --- NetState ----------------------------------------------------------------

std::shared_ptr<ConnInfo> NetState::Register(uint64_t cid, std::string peer) {
  auto info = std::make_shared<ConnInfo>(srv_, cid, std::move(peer));
  std::lock_guard<std::mutex> lk(mu_);
  conns_[cid] = info;
  return info;
}

void NetState::Deregister(uint64_t cid) {
  std::lock_guard<std::mutex> lk(mu_);
  conns_.erase(cid);
}

std::shared_ptr<ConnInfo> NetState::Find(uint64_t cid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = conns_.find(cid);
  return it == conns_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<ConnInfo>> NetState::List() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<ConnInfo>> out;
  out.reserve(conns_.size());
  for (const auto& [cid, info] : conns_) {
    out.push_back(info);
  }
  return out;
}

size_t NetState::conn_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return conns_.size();
}

std::string NetState::RenderClients() const {
  std::string out = "id peer state msize fids frames_in bytes_in bytes_out\n";
  for (const auto& info : List()) {
    out += info->RenderClientLine();
  }
  return out;
}

}  // namespace help
