// The multi-client 9P service front end. A NinepServer accepts any number of
// transports — each client connection is a Session (see ninep.h) — and may be
// driven from many threads at once: workers decode T-messages and encode
// replies in parallel, and dispatch itself runs under a two-level lock
// hierarchy (PR 4 added the reader–writer epoch lock, PR 10 the per-window
// shards; DESIGN.md §17): read-only operations hold the namespace epoch lock
// in shared mode and run in parallel across sessions; window-scoped
// operations additionally take their window's shard (shared for reads,
// exclusive for writes), so mutations of *different* windows run
// concurrently; structural operations (create, remove, window lifecycle, ctl
// writes) take the epoch exclusively and still see the single-threaded tree
// the Vfs and Help's synthetic-file handlers were built around.
//
//   client thread:  bytes in ─ decode ─┐            ┌─ Tread ────┐ (epoch shared,
//   client thread:  bytes in ─ decode ─┼─ classify ─┼─ Twrite w1 ┤  parallel across
//   client thread:  bytes in ─ decode ─┼────────────┼─ Twrite w2 ┤  windows)
//   client thread:  bytes in ─ decode ─┘            └─ Tcreate ──┘ (epoch exclusive)
//                                        encode + bytes out (parallel again)
//
// Read-path consistency is seqlock-style, the same discipline as the obs
// trace ring: every Text carries a monotonically increasing edit sequence
// (odd while a mutation is in progress), readers snapshot it, copy, and
// revalidate; a reader that observes a concurrent edit answers with the
// kSharedReadRaced sentinel and the server re-runs the request under the
// exclusive lock (counted as ninep.read.retry).
//
// Tflush and duplicate-tag rejection happen against the session's in-flight
// tag table before any dispatch lock, so a client can cancel a queued request
// even while another request holds the dispatch path. Per-op counters and
// latency histograms — plus the shared-read / retry counters and the
// lock-wait histogram — are recorded into a NinepMetrics (a view over the
// process-wide obs::Registry) which /mnt/help/stats serves.
//
// Lock order (acquire strictly downward — enforced in debug builds by
// src/fs/lockorder.h when HELP_LOCK_ASSERT is on; leaves may be taken under
// anything above them but never hold anything themselves):
//   1. dispatch_mu_          the namespace *epoch* lock (shared or exclusive;
//                            never upgraded while held). Shared by read-only
//                            and window-scoped dispatches, exclusive for
//                            structural ops and LockDispatch.
//   2. WindowShard::mu       the per-window mutation lock (src/fs/vfs.h),
//                            owned by the fileserver's window file handlers;
//                            shared by window reads, exclusive by window
//                            writes. Never taken by structural dispatches.
//   3. Session::dispatch_mu_ per-session ordering of Dispatch (reader–writer
//                            since PR 9: read-only requests — and since PR 10
//                            window writes — hold it shared and complete out
//                            of order, fences exclusively)
//   leaf: Session::fid_mu_   per-session fid-table bookkeeping; held only
//                            around map lookups/mutations, never across a
//                            handler call
//   leaf: state_mu_          the session table; held briefly, nothing else
//                            is ever acquired under it
//   leaf: Session::tag_mu_   tag bookkeeping, taken from outside the
//                            dispatch path too (Tflush must never wait
//                            behind a dispatch)
// A thread never takes dispatch_mu_ twice: re-entry (a /mnt/help handler
// invoked from a dispatch that already holds the lock) is detected with a
// thread-local holder check and becomes a no-op, which is what replaced the
// PR 1 recursive_mutex. The no-op inherits the outer mode, so classification
// must route any op that can reach a handler that mutates beyond its own
// window to the structural (epoch-exclusive) path.
#ifndef SRC_FS_SERVER_H_
#define SRC_FS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "src/fs/metrics.h"
#include "src/fs/netinfo.h"
#include "src/fs/ninep.h"

namespace help {

// Per-request observability context the socket listener threads through
// HandleBytes: the request trace id goes in, the phase breakdown comes out
// (for the flight recorder). The in-process transports pass nullptr and pay
// nothing. Phase trace events are additionally emitted — stamped with `rid`
// — when the tracer is enabled.
struct RequestObs {
  uint64_t rid = 0;                // in: trace id (0 = unscoped)
  NinepOp op = NinepOp::kBad;      // out: decoded op
  bool error = false;              // out: reply was Rerror
  uint64_t lock_wait_ns = 0;       // out: dispatch-lock wait, summed over retries
  uint64_t handler_ns = 0;         // out: Session::Dispatch, summed over retries
  uint64_t encode_ns = 0;          // out: reply encode
};

// Error string a shared-mode read handler returns when its seqlock
// validation observed a concurrent edit; never reaches a client — the server
// consumes it and retries the request under the exclusive dispatch lock.
inline constexpr std::string_view kSharedReadRaced = "help: shared read raced an edit";

// One complete reply packet plus how its payload got there, so the listener
// can splice large zero-copy Rreads into its outbox as owned segments (moved,
// never re-copied) and the metrics layer can attribute the bytes.
struct ReplyFrame {
  std::string bytes;           // the full reply packet
  bool zero_copy = false;      // Rread payload encoded via the gather path
  uint64_t payload_bytes = 0;  // Rread count; 0 for every other reply
};

class NinepServer {
 public:
  using SessionId = uint64_t;

  // How a dispatch (or a /mnt/help handler invocation) holds the lock.
  enum class LockMode : uint8_t { kNone, kShared, kExclusive };

  // RAII ownership of one acquisition of the dispatch lock. A
  // default-constructed (or re-entrant) guard owns nothing.
  class DispatchGuard {
   public:
    DispatchGuard() = default;
    DispatchGuard(DispatchGuard&& o) noexcept
        : srv_(o.srv_),
          mode_(o.mode_),
          prev_srv_(o.prev_srv_),
          prev_mode_(o.prev_mode_) {
      o.srv_ = nullptr;
      o.mode_ = LockMode::kNone;
      o.prev_srv_ = nullptr;
      o.prev_mode_ = LockMode::kNone;
    }
    DispatchGuard& operator=(DispatchGuard&& o) noexcept {
      if (this != &o) {
        Release();
        srv_ = o.srv_;
        mode_ = o.mode_;
        prev_srv_ = o.prev_srv_;
        prev_mode_ = o.prev_mode_;
        o.srv_ = nullptr;
        o.mode_ = LockMode::kNone;
        o.prev_srv_ = nullptr;
        o.prev_mode_ = LockMode::kNone;
      }
      return *this;
    }
    ~DispatchGuard() { Release(); }
    DispatchGuard(const DispatchGuard&) = delete;
    DispatchGuard& operator=(const DispatchGuard&) = delete;

   private:
    friend class NinepServer;
    DispatchGuard(NinepServer* srv, LockMode mode, const NinepServer* prev_srv,
                  LockMode prev_mode)
        : srv_(srv), mode_(mode), prev_srv_(prev_srv), prev_mode_(prev_mode) {}
    void Release();

    NinepServer* srv_ = nullptr;       // nullptr: owns no lock
    LockMode mode_ = LockMode::kNone;  // the mode this guard owns
    // The thread's dispatch-holder state to restore on release. Normally
    // empty; non-null when this guard nested inside a different server's
    // dispatch (a handler serializing against Help's own server while the
    // request arrived through another NinepServer over the same Vfs).
    const NinepServer* prev_srv_ = nullptr;
    LockMode prev_mode_ = LockMode::kNone;
  };

  explicit NinepServer(Vfs* vfs);
  ~NinepServer();

  NinepServer(const NinepServer&) = delete;
  NinepServer& operator=(const NinepServer&) = delete;

  // --- Sessions (one per client connection/transport) -----------------------
  SessionId OpenSession();
  void CloseSession(SessionId id);
  size_t session_count() const;

  // Full byte path for one client: decode, dispatch (shared or exclusive per
  // the op classification), encode. Thread-safe; any thread may drive any
  // session. One session's requests are serialized against each other (the
  // protocol assumes one logical client per connection); different sessions'
  // read-only requests run in parallel.
  std::string HandleBytes(SessionId id, std::string_view packet);
  // As above, with a request-observability context (see RequestObs). The
  // listener's workers pass one per frame; `obs` may be null.
  std::string HandleBytes(SessionId id, std::string_view packet, RequestObs* obs);
  // The primary form the other two wrap: fills a ReplyFrame so callers can
  // see how the payload was produced. File Treads encode their reply packet
  // inside the dispatch (zero-copy from gatherable files); everything else
  // encodes from the Fcall as before — the bytes are identical either way.
  void HandleBytes(SessionId id, std::string_view packet, RequestObs* obs,
                   ReplyFrame* out);

  // Dispatches a run of same-session requests (the listener batches
  // consecutive Twrites on one fid) under a single exclusive dispatch-lock +
  // session-lock acquisition. Per-request tag bookkeeping, flush checks,
  // metrics, and phase events still happen individually; riders after the
  // first get zero-duration req.lock events so every rid keeps the full
  // phase chain. `obs` entries may be null; `obs.size()` must equal
  // `packets.size()`. Coalesced riders are counted in
  // ninep.bodyapp_coalesced by the caller (which knows what it batched).
  void HandleWriteBatch(SessionId id,
                        const std::vector<std::string_view>& packets,
                        const std::vector<RequestObs*>& obs,
                        std::vector<ReplyFrame>* replies);

  // Raw-frame dispatch classification for the listener's scheduler: peeks
  // the fixed-offset type/fid fields (no full decode) and asks the session.
  // kReorderable requests may run concurrently with each other and complete
  // out of order; kWrite requests (Twrite only — write_fid carries the fid)
  // may coalesce into one HandleWriteBatch; everything else is a kFence: it
  // must run alone, after every earlier request from the session completed.
  // Undecodable or unknown frames classify as fences.
  //
  // `domain` is the window the frame is confined to (0 = none): for a
  // kReorderable frame the window it *reads*, for a kWrite frame the window
  // it *writes*. A kWrite with a nonzero domain need not fence the whole
  // connection — the listener only orders it against in-flight frames of the
  // same domain, which is what lets one connection's writes to different
  // windows run in parallel. With sharding disabled, domains are always 0.
  enum class FrameClass : uint8_t { kReorderable, kWrite, kFence };
  struct FrameVerdict {
    FrameClass cls = FrameClass::kFence;
    uint32_t write_fid = kNoFid;  // kWrite only: the target fid
    uint64_t domain = 0;          // nonzero: confined to this window
  };
  FrameVerdict ClassifyFrame(SessionId id, std::string_view frame) const;

  // A Transport for NinepClient bound to one session of this server.
  NinepClient::Transport TransportFor(SessionId id);

  // --- Single-session convenience (the original in-process transport) ------
  // These drive an implicit default session, so `NinepServer server(&vfs);
  // NinepClient client(server.Transport());` keeps working.
  std::string HandleBytes(std::string_view packet);
  NinepClient::Transport Transport();
  Fcall Dispatch(const Fcall& t);
  size_t open_fids() const;

  // Per-session fid count (0 for unknown sessions).
  size_t open_fids(SessionId id) const;

  // The msize a session negotiated via Tversion (kDefaultMsize before, 0 for
  // unknown sessions). Leaf locks + one relaxed load — safe from the
  // /mnt/help/net status handlers, which must not touch the dispatch lock.
  uint32_t session_msize(SessionId id) const;

  // Serializes arbitrary work with protocol dispatch: acquires the dispatch
  // lock exclusively, or — when this thread already holds it in either mode
  // (a /mnt/help handler invoked from a dispatch) — returns a no-op guard
  // instead of deadlocking. The /mnt/help handlers take this so UI-thread
  // file access and 9P workers cannot interleave inside Help.
  DispatchGuard LockDispatch();

  // True iff the calling thread currently holds the dispatch lock in shared
  // mode. Read handlers use this to decide whether they must seqlock-validate
  // (shared: concurrent readers, validation required) or are fully serialized
  // (exclusive: plain read).
  bool SharedDispatchOnThisThread() const;

  // Test/bench hook: classify every operation exclusive, restoring PR 1's
  // fully serialized dispatch. The perf_ninep --serialized baseline.
  void set_force_exclusive(bool on) { force_exclusive_ = on; }

  // Escape hatch and differential oracle: disable per-window sharding,
  // restoring PR 4's two-mode classification (window writes become
  // structural, window reads fall back to the plain shared/exclusive split)
  // and whole-connection write fencing in the listener. The perf_ninep
  // --shard baseline.
  void set_disable_sharding(bool on) { disable_sharding_ = on; }

  // Bench hook: stage every Rread payload through an intermediate string
  // (the pre-PR 9 encode path) instead of gathering into the wire frame.
  // The perf_ninep zero-copy-vs-staged baseline.
  void set_disable_zero_copy(bool on) { disable_zero_copy_ = on; }

  NinepMetrics& metrics() { return metrics_; }
  const NinepMetrics& metrics() const { return metrics_; }

  // This server's live-connection table and slow-request flight recorder
  // (populated by NinepListener, served by /mnt/help/net/).
  NetState& net() { return net_; }
  const NetState& net() const { return net_; }

  // Test hook: is `tag` currently in flight on `id`?
  bool TagInFlight(SessionId id, uint16_t tag) const;

 private:
  std::shared_ptr<Session> FindSession(SessionId id) const;
  SessionId EnsureDefaultSession();
  Fcall Process(SessionId id, const Fcall& t, ReadSink* sink = nullptr);
  // One locked dispatch attempt chain: classify, acquire the epoch lock (and
  // the window shard, for window-scoped verdicts), validate the verdict
  // against the live fid table (VerdictStale — one lookup, not a
  // reclassification), run, and retry on the structural path if the verdict
  // went stale or a shared read raced an edit. The session lock is held
  // shared for ReorderOk requests and sharded window writes (out-of-order
  // completion between fences), exclusive otherwise.
  Fcall DispatchUnderLock(const std::shared_ptr<Session>& s, SessionId id,
                          const Fcall& t, ReadSink* sink = nullptr);
  // Acquires the epoch lock in `mode` (no-op guard on re-entry), timing the
  // wait into ninep.lock.wait and counting exclusive acquisitions.
  DispatchGuard Acquire(LockMode mode);
  // Maps a verdict back to the PR 4 two-mode classification when sharding is
  // disabled (the escape hatch / differential oracle).
  static void Deshard(const Fcall& t, Session::Verdict* v);
  // Runs a decoded write batch under locks already held by HandleWriteBatch
  // (epoch + optional window shard + session lock).
  void DispatchBatchLocked(const std::shared_ptr<Session>& s, bool session_ok,
                           const std::vector<std::string_view>& packets,
                           const std::vector<Fcall>& ts,
                           const std::vector<bool>& bad,
                           const std::vector<RequestObs*>& obs,
                           std::vector<ReplyFrame>* replies);

  Vfs* vfs_;
  NinepMetrics metrics_;
  NetState net_{this};
  std::atomic<bool> force_exclusive_{false};
  std::atomic<bool> disable_zero_copy_{false};
  std::atomic<bool> disable_sharding_{false};

  // state_mu_ guards the session table only; per-session bookkeeping lives
  // behind each Session's own locks (see ninep.h), so sessions never contend
  // with each other on fid or tag bookkeeping.
  mutable std::mutex state_mu_;
  std::shared_mutex dispatch_mu_;
  std::map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_session_ = 1;
  SessionId default_session_ = 0;  // 0 = not yet created
};

}  // namespace help

#endif  // SRC_FS_SERVER_H_
