// The multi-client 9P service front end. A NinepServer accepts any number of
// transports — each client connection is a Session (see ninep.h) — and may be
// driven from many threads at once: workers decode T-messages and encode
// replies in parallel, while every tree-touching dispatch is funnelled
// through one serialized dispatch lock. That keeps the Vfs and Help's
// synthetic-file handlers on their single-threaded invariants without giving
// up concurrent clients.
//
//   client thread:  bytes in ─ decode ─┐
//   client thread:  bytes in ─ decode ─┼─ [dispatch lock] ─ Session::Dispatch
//   client thread:  bytes in ─ decode ─┘        │
//                                        encode + bytes out (parallel again)
//
// Tflush and duplicate-tag rejection happen before the lock, against the
// session's in-flight tag table, so a client can cancel a queued request even
// while another request holds the dispatch lock. Per-op counters and latency
// histograms are recorded into a NinepMetrics — since PR 3 a view over the
// process-wide obs::Registry — which /mnt/help/stats serves; decode, dispatch
// and encode are also traced as obs spans visible in /mnt/help/trace.
#ifndef SRC_FS_SERVER_H_
#define SRC_FS_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include "src/fs/metrics.h"
#include "src/fs/ninep.h"

namespace help {

class NinepServer {
 public:
  using SessionId = uint64_t;

  explicit NinepServer(Vfs* vfs);
  ~NinepServer();

  NinepServer(const NinepServer&) = delete;
  NinepServer& operator=(const NinepServer&) = delete;

  // --- Sessions (one per client connection/transport) -----------------------
  SessionId OpenSession();
  void CloseSession(SessionId id);
  size_t session_count() const;

  // Full byte path for one client: decode, dispatch (serialized), encode.
  // Thread-safe; any thread may drive any session, but one session's
  // requests should come from one logical client.
  std::string HandleBytes(SessionId id, std::string_view packet);

  // A Transport for NinepClient bound to one session of this server.
  NinepClient::Transport TransportFor(SessionId id);

  // --- Single-session convenience (the original in-process transport) ------
  // These drive an implicit default session, so `NinepServer server(&vfs);
  // NinepClient client(server.Transport());` keeps working.
  std::string HandleBytes(std::string_view packet);
  NinepClient::Transport Transport();
  Fcall Dispatch(const Fcall& t);
  size_t open_fids() const;

  // Per-session fid count (0 for unknown sessions).
  size_t open_fids(SessionId id) const;

  // Serializes arbitrary work with protocol dispatch. The /mnt/help handlers
  // take this lock so UI-thread file access and 9P workers cannot interleave
  // inside Help. Recursive: a handler invoked from a dispatch already holding
  // the lock re-enters without deadlock.
  std::unique_lock<std::recursive_mutex> LockDispatch();

  NinepMetrics& metrics() { return metrics_; }
  const NinepMetrics& metrics() const { return metrics_; }

  // Test hook: is `tag` currently in flight on `id`?
  bool TagInFlight(SessionId id, uint16_t tag) const;

 private:
  Session* Find(SessionId id);                // state_mu_ must be held
  const Session* Find(SessionId id) const;    // state_mu_ must be held
  SessionId EnsureDefaultSession();
  Fcall Process(SessionId id, const Fcall& t);

  Vfs* vfs_;
  NinepMetrics metrics_;

  // state_mu_ guards the session table and each session's tag bookkeeping;
  // dispatch_mu_ is the serialized dispatch queue. Lock order: a thread never
  // acquires state_mu_ while holding dispatch_mu_ waiting for new state —
  // tag bookkeeping under state_mu_ happens strictly before/after dispatch.
  mutable std::mutex state_mu_;
  std::recursive_mutex dispatch_mu_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  SessionId next_session_ = 1;
  SessionId default_session_ = 0;  // 0 = not yet created
};

}  // namespace help

#endif  // SRC_FS_SERVER_H_
