// Path algebra for the Plan 9-style namespace: absolute, slash-separated,
// case-sensitive paths. Cleaning resolves "." and ".." lexically (the VFS has
// no symlinks, so lexical resolution is exact).
#ifndef SRC_FS_PATH_H_
#define SRC_FS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace help {

// Lexically canonicalizes: collapses //, resolves . and .., strips trailing
// slash (except for "/"). A cleaned relative path stays relative.
std::string CleanPath(std::string_view path);

// Joins and cleans. If `name` is absolute it wins outright — this is exactly
// help's context rule: relative names get the window's directory prepended,
// absolute names are taken literally.
std::string JoinPath(std::string_view dir, std::string_view name);

// Final element ("base name") of a cleaned path.
std::string BasePath(std::string_view path);

// Everything but the final element; "/" for top-level names. This is the
// "directory from the tag" used for command and file-name context.
std::string DirPath(std::string_view path);

bool IsAbsPath(std::string_view path);

// Splits a cleaned path into elements ("/a/b" -> {"a","b"}; "/" -> {}).
std::vector<std::string> PathElements(std::string_view path);

}  // namespace help

#endif  // SRC_FS_PATH_H_
