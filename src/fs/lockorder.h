// Debug-build lock-order checking for the dispatch-lock hierarchy
// (DESIGN.md §17). The hierarchy is strict:
//
//   level 10  epoch lock        (NinepServer::dispatch_mu_)
//   level 20  window shard      (WindowShard::mu)
//   level 30  session lock      (Session::dispatch_mu_)
//   level 40  leaf locks        (fid_mu_, tag_mu_, state_mu_, Conn::mu, ...)
//
// A thread may only acquire a lock whose level is strictly greater than the
// highest level it already holds; leaves (level 40) never nest with each
// other. Violations deadlock in production but are timing-dependent and can
// hide for months — so debug builds (cmake -DHELP_LOCK_ASSERT=ON, wired into
// the CI sanitizer matrix) record a thread-local stack of held levels and
// abort on the first out-of-order acquisition instead.
//
// The hierarchy is per NinepServer INSTANCE. A handler dispatched by one
// server may serialize against a different server over the same Vfs (the
// SerializedHandler wrappers take Help's own server's LockDispatch even when
// the bytes arrived through a test- or tool-owned NinepServer). That nested
// acquire starts a fresh *frame*: ordering is enforced within a frame, and a
// frame boundary resets the comparison point, because locks from different
// server instances are different hierarchies. Frames are opened explicitly
// by the one caller that can tell (NinepServer::Acquire sees a foreign
// server's dispatch already on this thread).
//
// Usage: declare a LockOrderScope on the stack immediately after (or while)
// taking the lock it describes. When HELP_LOCK_ASSERT is not defined the
// type is an empty no-op and costs nothing.
#ifndef SRC_FS_LOCKORDER_H_
#define SRC_FS_LOCKORDER_H_

#ifdef HELP_LOCK_ASSERT
#include <cstdio>
#include <cstdlib>
#endif

namespace help {

// Levels in the dispatch-lock hierarchy, in required acquisition order.
enum LockLevel : int {
  kLockLevelEpoch = 10,
  kLockLevelShard = 20,
  kLockLevelSession = 30,
  kLockLevelLeaf = 40,
};

#ifdef HELP_LOCK_ASSERT

namespace lockorder_internal {
// The per-thread stack of held lock levels. Depth 16 covers two full nested
// frames with slack; overflowing it is itself a bug. A negative entry marks
// a frame base: it holds -level, and ordering is only checked against
// entries above the most recent base.
struct HeldStack {
  int levels[16];
  int depth = 0;
};
inline thread_local HeldStack tls_held;

[[noreturn]] inline void LockOrderViolation(int held, int acquiring) {
  std::fprintf(stderr,
               "help: lock-order violation: acquiring level %d while holding "
               "level %d (required order: epoch=10 < shard=20 < session=30 < "
               "leaf=40, strictly increasing)\n",
               acquiring, held);
  std::abort();
}
}  // namespace lockorder_internal

// Record an acquisition/release directly — for locks whose hold outlives a
// lexical scope (NinepServer::DispatchGuard). Releases must stay LIFO per
// thread, which every caller in this codebase satisfies by construction.
// `new_frame` marks the acquisition as entering a different server
// instance's hierarchy (see the header comment): it is exempt from the
// ordering check and becomes the floor for subsequent checks until released.
inline void LockOrderAcquired(int level, bool new_frame = false) {
  auto& held = lockorder_internal::tls_held;
  if (!new_frame && held.depth > 0) {
    int top = held.levels[held.depth - 1];
    if (top > 0 && level <= top) {
      lockorder_internal::LockOrderViolation(top, level);
    }
  }
  if (held.depth < 16) held.levels[held.depth] = new_frame ? -level : level;
  held.depth++;
}
inline void LockOrderReleased() { lockorder_internal::tls_held.depth--; }

// RAII witness that this thread holds a lock of the given level. Push-time
// checks enforce the strictly-increasing rule; leaves additionally may not
// nest with other leaves.
class LockOrderScope {
 public:
  explicit LockOrderScope(int level) { LockOrderAcquired(level); }
  ~LockOrderScope() { LockOrderReleased(); }
  LockOrderScope(const LockOrderScope&) = delete;
  LockOrderScope& operator=(const LockOrderScope&) = delete;
};

#else  // !HELP_LOCK_ASSERT

inline void LockOrderAcquired(int, bool = false) {}
inline void LockOrderReleased() {}

class LockOrderScope {
 public:
  explicit LockOrderScope(int) {}
  LockOrderScope(const LockOrderScope&) = delete;
  LockOrderScope& operator=(const LockOrderScope&) = delete;
};

#endif  // HELP_LOCK_ASSERT

}  // namespace help

#endif  // SRC_FS_LOCKORDER_H_
