#include "src/fs/metrics.h"

#include <cstdio>

#include "src/base/strings.h"
#include "src/fs/ninep.h"

namespace help {

NinepOp OpOfMsgType(MsgType t) {
  switch (t) {
    case MsgType::kTversion:
      return NinepOp::kVersion;
    case MsgType::kTattach:
      return NinepOp::kAttach;
    case MsgType::kTflush:
      return NinepOp::kFlush;
    case MsgType::kTwalk:
      return NinepOp::kWalk;
    case MsgType::kTopen:
      return NinepOp::kOpen;
    case MsgType::kTcreate:
      return NinepOp::kCreate;
    case MsgType::kTread:
      return NinepOp::kRead;
    case MsgType::kTwrite:
      return NinepOp::kWrite;
    case MsgType::kTclunk:
      return NinepOp::kClunk;
    case MsgType::kTremove:
      return NinepOp::kRemove;
    case MsgType::kTstat:
      return NinepOp::kStat;
    default:
      return NinepOp::kBad;
  }
}

const char* NinepOpName(NinepOp op) {
  switch (op) {
    case NinepOp::kVersion:
      return "version";
    case NinepOp::kAttach:
      return "attach";
    case NinepOp::kFlush:
      return "flush";
    case NinepOp::kWalk:
      return "walk";
    case NinepOp::kOpen:
      return "open";
    case NinepOp::kCreate:
      return "create";
    case NinepOp::kRead:
      return "read";
    case NinepOp::kWrite:
      return "write";
    case NinepOp::kClunk:
      return "clunk";
    case NinepOp::kRemove:
      return "remove";
    case NinepOp::kStat:
      return "stat";
    case NinepOp::kBad:
      return "bad";
  }
  return "?";
}

NinepMetrics::NinepMetrics() {
  // All NinepServer instances in a process share the registry entries:
  // /mnt/help/metrics and /mnt/help/stats agree by construction, and the
  // counters survive server teardown (they describe the process, not one
  // server). Handles are cached once here so the hot path never takes the
  // registry lock.
  obs::Registry& reg = obs::Registry::Global();
  for (size_t i = 0; i < kNinepOpCount; i++) {
    const char* op = NinepOpName(static_cast<NinepOp>(i));
    ops_[i].count = reg.GetCounter(StrFormat("ninep.%s.count", op));
    ops_[i].errors = reg.GetCounter(StrFormat("ninep.%s.errors", op));
    ops_[i].latency = reg.GetHistogram(StrFormat("ninep.%s.latency_us", op));
  }
  bytes_in_ = reg.GetCounter("ninep.bytes_in");
  bytes_out_ = reg.GetCounter("ninep.bytes_out");
  in_flight_ = reg.GetCounter("ninep.in_flight");
  flush_cancels_ = reg.GetCounter("ninep.flush_cancels");
  shared_reads_ = reg.GetCounter("ninep.read.shared");
  read_retries_ = reg.GetCounter("ninep.read.retry");
  lock_wait_ = reg.GetHistogram("ninep.lock.wait_us");
  net_accepts_ = reg.GetCounter("net.accepts");
  net_active_ = reg.GetCounter("net.active_conns");
  net_reaped_ = reg.GetCounter("net.reaped");
  net_stalls_ = reg.GetCounter("net.backpressure_stalls");
  net_frame_errors_ = reg.GetCounter("net.frame_errors");
  net_bytes_in_ = reg.GetCounter("net.bytes_in");
  net_bytes_out_ = reg.GetCounter("net.bytes_out");
  net_queue_wait_ = reg.GetHistogram("net.queue_wait_us");
  ooo_completions_ = reg.GetCounter("ninep.ooo_completions");
  bytes_zero_copy_ = reg.GetCounter("ninep.bytes_zero_copy");
  bytes_staged_ = reg.GetCounter("ninep.bytes_staged");
  bodyapp_coalesced_ = reg.GetCounter("ninep.bodyapp_coalesced");
  net_writev_calls_ = reg.GetCounter("net.writev_calls");
  lock_window_acquires_ = reg.GetCounter("ninep.lock.window_acquires");
  lock_epoch_exclusive_ = reg.GetCounter("ninep.lock.epoch_exclusive");
  shard_wait_ = reg.GetHistogram("ninep.lock.shard_wait_us");
}

void NinepMetrics::RecordOp(NinepOp op, uint64_t latency_us, bool error) {
  PerOp& p = ops_[Idx(op)];
  p.count->Add();
  if (error) {
    p.errors->Add();
  }
  p.latency->Record(latency_us);
}

uint64_t NinepMetrics::total_ops() const {
  uint64_t total = 0;
  for (const PerOp& p : ops_) {
    total += p.count->value();
  }
  return total;
}

uint64_t NinepMetrics::LatencyPercentileUs(NinepOp op, double p) const {
  return ops_[Idx(op)].latency->Percentile(p);
}

uint64_t NinepMetrics::OverallPercentileUs(double p) const {
  std::array<uint64_t, kBuckets> h{};
  for (const PerOp& per : ops_) {
    std::array<uint64_t, kBuckets> s = per.latency->Snapshot();
    for (size_t b = 0; b < kBuckets; b++) {
      h[b] += s[b];
    }
  }
  return obs::Histogram::PercentileOf(h, p);
}

std::string NinepMetrics::Render() const {
  char line[160];
  std::string out = "op count errs p50us p99us\n";
  for (size_t i = 0; i < kNinepOpCount; i++) {
    NinepOp op = static_cast<NinepOp>(i);
    uint64_t n = count(op);
    if (n == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "%s %llu %llu %llu %llu\n", NinepOpName(op),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(errors(op)),
                  static_cast<unsigned long long>(LatencyPercentileUs(op, 50)),
                  static_cast<unsigned long long>(LatencyPercentileUs(op, 99)));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "bytes_in %llu\nbytes_out %llu\nin_flight %llu\nflush_cancels %llu\n",
                static_cast<unsigned long long>(bytes_in()),
                static_cast<unsigned long long>(bytes_out()),
                static_cast<unsigned long long>(in_flight()),
                static_cast<unsigned long long>(flush_cancels()));
  out += line;
  // PR 4 read-path concurrency counters, appended after the PR 1 block so
  // existing consumers that parse from the top keep working.
  std::snprintf(line, sizeof(line),
                "shared_reads %llu\nread_retries %llu\nlock_wait_p99us %llu\n",
                static_cast<unsigned long long>(shared_reads()),
                static_cast<unsigned long long>(read_retries()),
                static_cast<unsigned long long>(lock_wait_->Percentile(99)));
  out += line;
  // PR 7 socket transport: the connection layer's own counters, again
  // appended so byte-format consumers of the older blocks keep working.
  std::snprintf(line, sizeof(line),
                "net_accepts %llu\nnet_active_conns %llu\nnet_reaped %llu\n",
                static_cast<unsigned long long>(net_accepts()),
                static_cast<unsigned long long>(net_active_conns()),
                static_cast<unsigned long long>(net_reaped()));
  out += line;
  std::snprintf(line, sizeof(line),
                "net_backpressure_stalls %llu\nnet_frame_errors %llu\n"
                "net_bytes_in %llu\nnet_bytes_out %llu\n",
                static_cast<unsigned long long>(net_backpressure_stalls()),
                static_cast<unsigned long long>(net_frame_errors()),
                static_cast<unsigned long long>(net_bytes_in()),
                static_cast<unsigned long long>(net_bytes_out()));
  out += line;
  // PR 9 pipelined dispatch + zero-copy reads, appended last for the same
  // reason.
  std::snprintf(line, sizeof(line),
                "ooo_completions %llu\nbytes_zero_copy %llu\n"
                "bytes_staged %llu\nbodyapp_coalesced %llu\n"
                "net_writev_calls %llu\n",
                static_cast<unsigned long long>(ooo_completions()),
                static_cast<unsigned long long>(bytes_zero_copy()),
                static_cast<unsigned long long>(bytes_staged()),
                static_cast<unsigned long long>(bodyapp_coalesced()),
                static_cast<unsigned long long>(net_writev_calls()));
  out += line;
  // PR 10 sharded dispatch-lock counters, appended last for the same reason.
  std::snprintf(line, sizeof(line),
                "lock_window_acquires %llu\nlock_epoch_exclusive %llu\n"
                "lock_shard_wait_p99us %llu\n",
                static_cast<unsigned long long>(lock_window_acquires()),
                static_cast<unsigned long long>(lock_epoch_exclusive()),
                static_cast<unsigned long long>(lock_shard_wait_p99us()));
  out += line;
  return out;
}

void NinepMetrics::Reset() {
  for (PerOp& p : ops_) {
    p.count->Store(0);
    p.errors->Store(0);
    p.latency->Reset();
  }
  bytes_in_->Store(0);
  bytes_out_->Store(0);
  flush_cancels_->Store(0);
  shared_reads_->Store(0);
  read_retries_->Store(0);
  lock_wait_->Reset();
  net_accepts_->Store(0);
  net_reaped_->Store(0);
  net_stalls_->Store(0);
  net_frame_errors_->Store(0);
  net_bytes_in_->Store(0);
  net_bytes_out_->Store(0);
  net_queue_wait_->Reset();
  ooo_completions_->Store(0);
  bytes_zero_copy_->Store(0);
  bytes_staged_->Store(0);
  bodyapp_coalesced_->Store(0);
  net_writev_calls_->Store(0);
  lock_window_acquires_->Store(0);
  lock_epoch_exclusive_->Store(0);
  shard_wait_->Reset();
  // in_flight_ and net_active_ are live gauges; leave them alone.
}

}  // namespace help
