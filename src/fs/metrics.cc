#include "src/fs/metrics.h"

#include <cstdio>

#include "src/fs/ninep.h"

namespace help {

NinepOp OpOfMsgType(MsgType t) {
  switch (t) {
    case MsgType::kTversion:
      return NinepOp::kVersion;
    case MsgType::kTattach:
      return NinepOp::kAttach;
    case MsgType::kTflush:
      return NinepOp::kFlush;
    case MsgType::kTwalk:
      return NinepOp::kWalk;
    case MsgType::kTopen:
      return NinepOp::kOpen;
    case MsgType::kTcreate:
      return NinepOp::kCreate;
    case MsgType::kTread:
      return NinepOp::kRead;
    case MsgType::kTwrite:
      return NinepOp::kWrite;
    case MsgType::kTclunk:
      return NinepOp::kClunk;
    case MsgType::kTremove:
      return NinepOp::kRemove;
    case MsgType::kTstat:
      return NinepOp::kStat;
    default:
      return NinepOp::kBad;
  }
}

const char* NinepOpName(NinepOp op) {
  switch (op) {
    case NinepOp::kVersion:
      return "version";
    case NinepOp::kAttach:
      return "attach";
    case NinepOp::kFlush:
      return "flush";
    case NinepOp::kWalk:
      return "walk";
    case NinepOp::kOpen:
      return "open";
    case NinepOp::kCreate:
      return "create";
    case NinepOp::kRead:
      return "read";
    case NinepOp::kWrite:
      return "write";
    case NinepOp::kClunk:
      return "clunk";
    case NinepOp::kRemove:
      return "remove";
    case NinepOp::kStat:
      return "stat";
    case NinepOp::kBad:
      return "bad";
  }
  return "?";
}

size_t NinepMetrics::BucketOf(uint64_t latency_us) {
  size_t b = 0;
  while (latency_us > 0 && b < kBuckets - 1) {
    latency_us >>= 1;
    b++;
  }
  return b;
}

void NinepMetrics::RecordOp(NinepOp op, uint64_t latency_us, bool error) {
  PerOp& p = ops_[Idx(op)];
  p.count++;
  if (error) {
    p.errors++;
  }
  p.latency[BucketOf(latency_us)]++;
}

uint64_t NinepMetrics::total_ops() const {
  uint64_t total = 0;
  for (const PerOp& p : ops_) {
    total += p.count.load();
  }
  return total;
}

namespace {

// The p-th sample's bucket upper bound, given a bucket histogram.
uint64_t PercentileOf(const std::array<uint64_t, NinepMetrics::kBuckets>& h, double p) {
  uint64_t total = 0;
  for (uint64_t c : h) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) {
    rank = total - 1;
  }
  uint64_t seen = 0;
  for (size_t b = 0; b < NinepMetrics::kBuckets; b++) {
    seen += h[b];
    if (seen > rank) {
      return b == 0 ? 0 : (1ull << b) - 1;  // bucket upper bound in us
    }
  }
  return (1ull << (NinepMetrics::kBuckets - 1)) - 1;
}

}  // namespace

uint64_t NinepMetrics::LatencyPercentileUs(NinepOp op, double p) const {
  std::array<uint64_t, kBuckets> h{};
  for (size_t b = 0; b < kBuckets; b++) {
    h[b] = ops_[Idx(op)].latency[b].load();
  }
  return PercentileOf(h, p);
}

uint64_t NinepMetrics::OverallPercentileUs(double p) const {
  std::array<uint64_t, kBuckets> h{};
  for (const PerOp& per : ops_) {
    for (size_t b = 0; b < kBuckets; b++) {
      h[b] += per.latency[b].load();
    }
  }
  return PercentileOf(h, p);
}

std::string NinepMetrics::Render() const {
  char line[160];
  std::string out = "op count errs p50us p99us\n";
  for (size_t i = 0; i < kNinepOpCount; i++) {
    NinepOp op = static_cast<NinepOp>(i);
    uint64_t n = count(op);
    if (n == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "%s %llu %llu %llu %llu\n", NinepOpName(op),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(errors(op)),
                  static_cast<unsigned long long>(LatencyPercentileUs(op, 50)),
                  static_cast<unsigned long long>(LatencyPercentileUs(op, 99)));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "bytes_in %llu\nbytes_out %llu\nin_flight %llu\nflush_cancels %llu\n",
                static_cast<unsigned long long>(bytes_in()),
                static_cast<unsigned long long>(bytes_out()),
                static_cast<unsigned long long>(in_flight()),
                static_cast<unsigned long long>(flush_cancels()));
  out += line;
  return out;
}

void NinepMetrics::Reset() {
  for (PerOp& p : ops_) {
    p.count = 0;
    p.errors = 0;
    for (auto& b : p.latency) {
      b = 0;
    }
  }
  bytes_in_ = 0;
  bytes_out_ = 0;
  flush_cancels_ = 0;
  // in_flight_ is a live gauge; leave it alone.
}

}  // namespace help
