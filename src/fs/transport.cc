#include "src/fs/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

#include "src/base/strings.h"

namespace help {

namespace {

uint32_t PeekU32(const std::string& b, size_t at) {
  return static_cast<uint32_t>(static_cast<uint8_t>(b[at])) |
         static_cast<uint32_t>(static_cast<uint8_t>(b[at + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(b[at + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(b[at + 3])) << 24;
}

Status Errno(std::string_view what) {
  return Status::Error(std::string(what) + ": " + strerror(errno));
}

int CloexecSocket(int domain) {
  return socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

}  // namespace

void FrameReader::Feed(std::string_view bytes) {
  if (poisoned_) {
    return;  // stream is dead; don't grow the buffer for a doomed peer
  }
  buf_.append(bytes);
}

FrameReader::Next FrameReader::Pop(std::string* frame) {
  if (poisoned_) {
    return Next::kError;
  }
  if (buf_.size() < 4) {
    return Next::kNeedMore;
  }
  uint32_t size = PeekU32(buf_, 0);
  if (size < kMinFrameSize || size > max_frame_) {
    poisoned_ = true;
    error_ = StrFormat("ninep: bad frame size %u", size);
    return Next::kError;
  }
  if (buf_.size() < size) {
    return Next::kNeedMore;
  }
  frame->assign(buf_, 0, size);
  buf_.erase(0, size);
  return Next::kFrame;
}

uint16_t FrameTag(std::string_view frame) {
  if (frame.size() < kMinFrameSize) {
    return kNoTag;
  }
  return static_cast<uint16_t>(static_cast<uint8_t>(frame[5])) |
         static_cast<uint16_t>(static_cast<uint8_t>(frame[6])) << 8;
}

std::string PeerString(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&ss), &len) < 0) {
    return "?";
  }
  if (ss.ss_family == AF_UNIX) {
    return "unix";
  }
  if (ss.ss_family == AF_INET) {
    const auto* in = reinterpret_cast<const sockaddr_in*>(&ss);
    char ip[INET_ADDRSTRLEN] = "?";
    inet_ntop(AF_INET, &in->sin_addr, ip, sizeof(ip));
    return StrFormat("%s:%u", ip, ntohs(in->sin_port));
  }
  if (ss.ss_family == AF_INET6) {
    const auto* in6 = reinterpret_cast<const sockaddr_in6*>(&ss);
    char ip[INET6_ADDRSTRLEN] = "?";
    inet_ntop(AF_INET6, &in6->sin6_addr, ip, sizeof(ip));
    return StrFormat("%s:%u", ip, ntohs(in6->sin6_port));
  }
  return "?";
}

// --- fd-level helpers --------------------------------------------------------

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl");
  }
  return Status::Ok();
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  int fd = CloexecSocket(AF_INET);
  if (fd < 0) {
    return Errno("socket");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Error(host + ": bad address");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind " + host);
    close(fd);
    return s;
  }
  if (listen(fd, backlog) < 0) {
    Status s = Errno("listen");
    close(fd);
    return s;
  }
  return fd;
}

Result<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::Error(path + ": socket path too long");
  }
  int fd = CloexecSocket(AF_UNIX);
  if (fd < 0) {
    return Errno("socket");
  }
  unlink(path.c_str());  // a stale socket file from a previous run
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind " + path);
    close(fd);
    return s;
  }
  if (listen(fd, backlog) < 0) {
    Status s = Errno("listen");
    close(fd);
    return s;
  }
  return fd;
}

Result<int> DialTcp(const std::string& host, uint16_t port) {
  int fd = CloexecSocket(AF_INET);
  if (fd < 0) {
    return Errno("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Error(host + ": bad address");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect " + host);
    close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> DialUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::Error(path + ": socket path too long");
  }
  int fd = CloexecSocket(AF_UNIX);
  if (fd < 0) {
    return Errno("socket");
  }
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect " + path);
    close(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status WriteFull(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ReadFull(int fd, size_t n) {
  std::string out;
  out.resize(n);
  size_t off = 0;
  while (off < n) {
    ssize_t r = recv(fd, out.data() + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("recv");
    }
    if (r == 0) {
      return Status::Error("connection closed");
    }
    off += static_cast<size_t>(r);
  }
  return out;
}

void RaiseFdLimit(uint64_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0 || rl.rlim_cur >= want) {
    return;
  }
  rl.rlim_cur = std::min<rlim_t>(want, rl.rlim_max);
  setrlimit(RLIMIT_NOFILE, &rl);  // best effort
}

// --- SocketTransport ---------------------------------------------------------

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectTcp(
    const std::string& host, uint16_t port) {
  auto fd = DialTcp(host, port);
  if (!fd.ok()) {
    return fd.status();
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd.value()));
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectUnix(
    const std::string& path) {
  auto fd = DialUnix(path);
  if (!fd.ok()) {
    return fd.status();
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd.value()));
}

void SocketTransport::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

std::string SocketTransport::Rpc(std::string_view packet) {
  // A failed Send still records the tag, so RecvReply pairs the synthesized
  // error with this request.
  (void)Send(packet);
  return RecvReply();
}

Status SocketTransport::Send(std::string_view packet) {
  // Remember the T-message's own tag (size[4] type[1] tag[2]) before
  // touching the wire: even a failed send gets a synthesized reply, and that
  // reply must carry this request's tag for NinepClient's tag check.
  uint16_t tag = kNoTag;
  if (packet.size() >= kMinFrameSize) {
    tag = static_cast<uint16_t>(static_cast<uint8_t>(packet[5])) |
          static_cast<uint16_t>(static_cast<uint8_t>(packet[6])) << 8;
  }
  inflight_.push_back(tag);
  if (fd_ < 0) {
    return Status::Error("ninep: transport closed");
  }
  Status w = WriteFull(fd_, packet);
  if (!w.ok()) {
    send_error_ = w.message();
    Close();
    return w;
  }
  return Status::Ok();
}

std::string SocketTransport::RecvReply() {
  // On failure the synthesized Rerror answers the OLDEST outstanding
  // request. Replies arrive in some server order, but once the stream is
  // dead no reply is coming for *any* of them, and the caller collects
  // failures in the order it sent — front-of-queue is the only pairing that
  // gives every in-flight request exactly one reply with its own tag.
  auto fail = [&](std::string_view why) {
    uint16_t tag = inflight_.empty() ? kNoTag : inflight_.front();
    if (!inflight_.empty()) {
      inflight_.pop_front();
    }
    Close();
    return EncodeFcall(ErrorFcall(tag, why));
  };
  if (fd_ < 0) {
    return fail(send_error_.empty() ? std::string("ninep: transport closed")
                                    : send_error_);
  }
  auto hdr = ReadFull(fd_, 4);
  if (!hdr.ok()) {
    return fail(hdr.message());
  }
  uint32_t size = PeekU32(hdr.value(), 0);
  if (size < kMinFrameSize || size > kMaxFrameSize) {
    return fail(StrFormat("ninep: bad reply frame size %u", size));
  }
  auto rest = ReadFull(fd_, size - 4);
  if (!rest.ok()) {
    return fail(rest.message());
  }
  std::string reply = hdr.take() + rest.take();
  // A real reply retires its own tag wherever it sits in the queue (the
  // server may answer out of order since the dispatch layer pipelines).
  uint16_t rtag = FrameTag(reply);
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if (*it == rtag) {
      inflight_.erase(it);
      break;
    }
  }
  return reply;
}

NinepClient::PipeIo SocketTransport::AsPipeIo() {
  NinepClient::PipeIo io;
  io.send = [this](std::string_view packet) { return Send(packet); };
  io.recv = [this]() -> Result<std::string> { return RecvReply(); };
  return io;
}

}  // namespace help
