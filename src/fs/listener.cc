#include "src/fs/listener.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <set>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include "src/obs/trace.h"

namespace help {

namespace {

bool WouldBlock() { return errno == EAGAIN || errno == EWOULDBLOCK; }

}  // namespace

// --- Pollers -----------------------------------------------------------------

#if defined(__linux__)
class EpollPoller : public Poller {
 public:
  EpollPoller() : ep_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (ep_ >= 0) {
      close(ep_);
    }
  }

  bool ok() const { return ep_ >= 0; }

  Status Add(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }
  Status Mod(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  void Del(int fd) override {
    epoll_event ev{};
    epoll_ctl(ep_, EPOLL_CTL_DEL, fd, &ev);
  }

  int Wait(std::vector<Event>* out, int timeout_ms) override {
    epoll_event evs[256];
    int n = epoll_wait(ep_, evs, 256, timeout_ms);
    if (n < 0) {
      return errno == EINTR ? 0 : -1;
    }
    for (int i = 0; i < n; i++) {
      out->push_back(Event{evs[i].data.fd, (evs[i].events & EPOLLIN) != 0,
                           (evs[i].events & EPOLLOUT) != 0,
                           (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0});
    }
    return n;
  }

 private:
  Status Ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(ep_, op, fd, &ev) < 0) {
      return Status::Error(std::string("epoll_ctl: ") + strerror(errno));
    }
    return Status::Ok();
  }

  int ep_;
};
#endif  // __linux__

// poll(2) fallback: interest is a map rebuilt into a pollfd vector per Wait.
// O(conns) per wait, which is exactly why epoll is the default on Linux —
// but the semantics are identical, including ERR/HUP being reported even for
// fds with no requested events (how a stalled, read-parked connection's
// hangup is still noticed).
class PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    return Mod(fd, want_read, want_write);
  }
  Status Mod(int fd, bool want_read, bool want_write) override {
    interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                       (want_write ? POLLOUT : 0));
    return Status::Ok();
  }
  void Del(int fd) override { interest_.erase(fd); }

  int Wait(std::vector<Event>* out, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, ev] : interest_) {
      fds_.push_back(pollfd{fd, ev, 0});
    }
    int n = poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      return errno == EINTR ? 0 : -1;
    }
    int emitted = 0;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) {
        continue;
      }
      out->push_back(Event{p.fd, (p.revents & POLLIN) != 0,
                           (p.revents & POLLOUT) != 0,
                           (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0});
      emitted++;
    }
    return emitted;
  }

 private:
  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

std::unique_ptr<Poller> MakePoller(PollerKind kind) {
#if defined(__linux__)
  if (kind != PollerKind::kPoll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->ok()) {
      return ep;
    }
  }
#else
  (void)kind;
#endif
  return std::make_unique<PollPoller>();
}

// --- Connection state --------------------------------------------------------

// One inbound frame plus its request context, minted on the loop thread the
// moment the FrameReader yields it: the trace id that stamps every phase
// event of this request, and the arrival time the queue-wait phase starts
// from.
struct InFrame {
  std::string bytes;
  uint64_t rid = 0;
  uint16_t tag = 0;
  uint64_t arrive_ns = 0;
};

// A dispatched reply whose bytes are in (or entering) the outbox but not yet
// on the wire. end_total is the connection's outbox_appended watermark after
// this reply; once outbox_written reaches it, the reply — and therefore the
// request — is complete: the outbox-drain phase event fires and the record
// goes to the flight recorder.
struct PendingReply {
  uint64_t rid = 0;
  uint16_t tag = 0;
  NinepOp op = NinepOp::kBad;
  uint64_t arrive_ns = 0;
  uint64_t queue_ns = 0;
  uint64_t lock_ns = 0;
  uint64_t handler_ns = 0;
  uint64_t encode_ns = 0;
  uint64_t append_ns = 0;  // when the reply entered the outbox
  uint64_t end_total = 0;
};

// One segment of a connection's outbound queue. Replies at least kSealBytes
// long enter the deque as their own segment via move — a zero-copy Rread's
// payload is never copied again after encode — while small replies append
// onto the tail segment so one writev drains many of them.
struct OutSeg {
  std::string bytes;
  size_t off = 0;  // already-written prefix
};

inline constexpr size_t kSealBytes = 1024;
// Longest run of consecutive same-fid Twrites popped as one batch.
inline constexpr size_t kMaxWriteBatch = 8;
// iovec fan-in per sendmsg call.
inline constexpr size_t kMaxIov = 64;

struct NinepListener::Conn {
  explicit Conn(uint32_t max_frame) : reader(max_frame) {}

  // Loop-only fields: all socket I/O and epoll interest live on the loop
  // thread, so these need no lock.
  int fd = -1;
  FrameReader reader;
  uint64_t last_active_ms = 0;
  bool want_read = true;    // interest currently registered
  bool want_write = false;
  uint64_t next_req_seq = 1;  // per-conn rid sequence; 1 so rid is never 0

  NinepServer::SessionId sid = 0;  // written once before the conn is shared
  std::shared_ptr<ConnInfo> info;  // ditto; registered in the server's NetState

  // Shared state (worker pool + loop), guarded by mu.
  std::mutex mu;
  std::deque<InFrame> inbox;      // complete frames awaiting dispatch
  std::deque<OutSeg> outbox;      // encoded replies awaiting the wire
  size_t outbox_pending = 0;      // unwritten bytes across all segments
  uint64_t outbox_appended = 0;   // lifetime bytes ever appended
  uint64_t outbox_written = 0;    // lifetime bytes ever sent
  std::deque<PendingReply> pending;  // appended, not yet fully written
  // PR 9 scheduler state (see the header comment): how many workers hold a
  // claim on this conn, how many frames are out being dispatched right now,
  // and whether one of them is a fence (mutation or write batch).
  int workers_active = 0;
  int dispatching = 0;
  bool fence_inflight = false;
  // Per-window ordering domains (PR 10): in-flight dispatches that read
  // (shared) or write (exclusive) each nonzero domain. A window-confined
  // write waits only for in-flight frames of its own domain instead of
  // fencing the whole connection. Entries are erased when both counts drop
  // to zero, so the map stays as small as the number of windows in flight.
  struct DomainUse {
    int readers = 0;
    int writers = 0;
  };
  std::map<uint64_t, DomainUse> domains_inflight;

  // Caller holds mu. Whether a frame with this verdict could begin
  // dispatching right now alongside the connection's in-flight frames.
  bool CanStartLocked(const NinepServer::FrameVerdict& fv) const {
    if (fence_inflight) {
      return false;
    }
    if (fv.cls == NinepServer::FrameClass::kReorderable) {
      if (fv.domain == 0) {
        return true;
      }
      auto it = domains_inflight.find(fv.domain);
      return it == domains_inflight.end() || it->second.writers == 0;
    }
    if (fv.cls == NinepServer::FrameClass::kWrite && fv.domain != 0) {
      auto it = domains_inflight.find(fv.domain);
      return it == domains_inflight.end() ||
             (it->second.readers == 0 && it->second.writers == 0);
    }
    // Fences — including domain-0 writes — wait for the whole connection's
    // in-flight dispatches to drain.
    return dispatching == 0;
  }
  // Arrival-order bookkeeping for ninep.ooo_completions: each popped frame
  // gets the next seq; a frame whose completion leaves a SMALLER seq still
  // in flight finished before an earlier-arrived request did.
  uint64_t next_dispatch_seq = 0;
  std::set<uint64_t> inflight_seqs;
  bool stalled = false;           // backpressure: dispatch and reads parked
  bool closing = false;           // loop tore the socket down
  bool session_closed = false;    // CloseSession already ran

  size_t outbox_bytes() const { return outbox_pending; }

  // Caller holds mu. Appends one encoded reply to the outbox, sealing large
  // payloads as their own moved segment.
  void AppendReplyLocked(std::string&& bytes) {
    outbox_pending += bytes.size();
    outbox_appended += bytes.size();
    if (bytes.size() >= kSealBytes || outbox.empty()) {
      outbox.push_back(OutSeg{std::move(bytes), 0});
    } else {
      outbox.back().bytes += bytes;
    }
  }
};

// --- NinepListener -----------------------------------------------------------

NinepListener::NinepListener(NinepServer* srv, Options opt)
    : srv_(srv), opt_(opt) {
  if (opt_.workers < 1) {
    opt_.workers = 1;
  }
}

NinepListener::~NinepListener() { Stop(); }

Status NinepListener::ListenTcp(const std::string& host, uint16_t port) {
  auto fd = help::ListenTcp(host, port);
  if (!fd.ok()) {
    return fd.status();
  }
  Status nb = SetNonBlocking(fd.value());
  if (!nb.ok()) {
    close(fd.value());
    return nb;
  }
  auto p = LocalPort(fd.value());
  if (p.ok()) {
    port_ = p.value();
  }
  listen_fds_.push_back(fd.value());
  return Status::Ok();
}

Status NinepListener::ListenUnix(const std::string& path) {
  auto fd = help::ListenUnix(path);
  if (!fd.ok()) {
    return fd.status();
  }
  Status nb = SetNonBlocking(fd.value());
  if (!nb.ok()) {
    close(fd.value());
    return nb;
  }
  unix_path_ = path;
  listen_fds_.push_back(fd.value());
  return Status::Ok();
}

Status NinepListener::Start() {
  if (running_.load()) {
    return Status::Error("listener already running");
  }
  if (listen_fds_.empty()) {
    return Status::Error("listener has no endpoints");
  }
  poller_ = MakePoller(opt_.poller);
  int pfd[2];
  if (pipe(pfd) < 0) {
    return Status::Error(std::string("pipe: ") + strerror(errno));
  }
  wake_rd_ = pfd[0];
  wake_wr_ = pfd[1];
  SetNonBlocking(wake_rd_);
  SetNonBlocking(wake_wr_);
  fcntl(wake_rd_, F_SETFD, FD_CLOEXEC);
  fcntl(wake_wr_, F_SETFD, FD_CLOEXEC);
  Status s = poller_->Add(wake_rd_, /*want_read=*/true, /*want_write=*/false);
  if (!s.ok()) {
    return s;
  }
  for (int fd : listen_fds_) {
    s = poller_->Add(fd, /*want_read=*/true, /*want_write=*/false);
    if (!s.ok()) {
      return s;
    }
  }
  stop_.store(false);
  running_.store(true);
  loop_ = std::thread(&NinepListener::LoopMain, this);
  workers_.reserve(static_cast<size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; i++) {
    workers_.emplace_back(&NinepListener::WorkerMain, this, i);
  }
  return Status::Ok();
}

void NinepListener::Stop() {
  if (!running_.load()) {
    return;
  }
  stop_.store(true);
  WakeLoop();
  loop_.join();
  // Let the workers drain every already-queued dispatch and teardown, then
  // stop them with one sentinel each.
  {
    std::lock_guard<std::mutex> lk(ready_mu_);
    for (size_t i = 0; i < workers_.size(); i++) {
      ready_.push_back(nullptr);
    }
  }
  ready_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
  workers_.clear();
  // Single-threaded from here: tear down whatever survived.
  for (int fd : listen_fds_) {
    close(fd);
  }
  listen_fds_.clear();
  std::map<int, ConnPtr> leftover;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    leftover.swap(conns_);
  }
  for (auto& [fd, c] : leftover) {
    close(fd);
    c->info->set_state(ConnState::kClosing);
    srv_->net().Deregister(c->sid);
    srv_->metrics().RecordDisconnect();
    if (!c->session_closed) {
      c->session_closed = true;
      srv_->CloseSession(c->sid);
    }
  }
  for (int fd : deferred_close_) {
    close(fd);
  }
  deferred_close_.clear();
  close(wake_rd_);
  close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  poller_.reset();
  if (!unix_path_.empty()) {
    unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  running_.store(false);
}

size_t NinepListener::active_conns() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  return conns_.size();
}

uint64_t NinepListener::NowMs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void NinepListener::WakeLoop() {
  char b = 0;
  // A full pipe already guarantees a wakeup; EAGAIN is success here.
  (void)!write(wake_wr_, &b, 1);
}

void NinepListener::DrainWakePipe() {
  char buf[256];
  while (read(wake_rd_, buf, sizeof(buf)) > 0) {
  }
}

void NinepListener::EnqueueReady(const ConnPtr& c) {
  {
    std::lock_guard<std::mutex> lk(ready_mu_);
    ready_.push_back(c);
  }
  ready_cv_.notify_one();
}

// --- Event loop --------------------------------------------------------------

void NinepListener::LoopMain() {
  obs::Tracer::Global().SetThreadName("net.loop");
  std::vector<Poller::Event> events;
  uint64_t next_reap_ms = 0;  // 0 or overdue: scan on the next pass
  while (!stop_.load()) {
    events.clear();
    int reap_cadence = opt_.reap_tick_ms > 0
                           ? std::min(opt_.reap_tick_ms, opt_.idle_timeout_ms)
                           : opt_.idle_timeout_ms;
    int timeout = opt_.idle_timeout_ms > 0
                      ? std::min(opt_.tick_ms, reap_cadence)
                      : opt_.tick_ms;
    poller_->Wait(&events, timeout);
    if (stop_.load()) {
      break;
    }
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_rd_) {
        DrainWakePipe();
        continue;
      }
      if (std::find(listen_fds_.begin(), listen_fds_.end(), ev.fd) !=
          listen_fds_.end()) {
        HandleAccept(ev.fd);
        continue;
      }
      ConnPtr c;
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        auto it = conns_.find(ev.fd);
        if (it != conns_.end()) {
          c = it->second;
        }
      }
      if (c == nullptr) {
        continue;  // closed earlier in this batch (fd close is deferred)
      }
      if (ev.error) {
        CloseConn(c, /*reaped=*/false);
        continue;
      }
      if (ev.readable) {
        HandleReadable(c);
      }
      if (ev.writable) {
        FlushConn(c);
      }
    }
    // Worker notifications: replies to flush, stalls to re-arm.
    std::deque<ConnPtr> pending;
    {
      std::lock_guard<std::mutex> lk(notify_mu_);
      pending.swap(notify_);
    }
    for (const ConnPtr& c : pending) {
      FlushConn(c);
    }
    // Idle reaping, on its own cadence: reap_tick_ms > 0 scans at that
    // deadline-driven interval (prompt with a short tick, amortized with a
    // long one on busy listeners whose events keep the loop spinning);
    // reap_tick_ms == 0 keeps the historical scan-every-wakeup behavior.
    if (opt_.idle_timeout_ms > 0 && NowMs() >= next_reap_ms) {
      uint64_t now = NowMs();
      if (opt_.reap_tick_ms > 0) {
        next_reap_ms = now + static_cast<uint64_t>(opt_.reap_tick_ms);
      }
      std::vector<ConnPtr> idle;
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (const auto& [fd, c] : conns_) {
          if (now - c->last_active_ms >=
              static_cast<uint64_t>(opt_.idle_timeout_ms)) {
            idle.push_back(c);
          }
        }
      }
      for (const ConnPtr& c : idle) {
        OBS_INSTANT("net.reap", c->sid);
        CloseConn(c, /*reaped=*/true);
      }
    }
    // Deferred closes: only after the whole batch, so a reused fd number
    // cannot alias a stale event from this batch.
    for (int fd : deferred_close_) {
      close(fd);
    }
    deferred_close_.clear();
  }
}

void NinepListener::HandleAccept(int listen_fd) {
  for (int i = 0; i < 64; i++) {  // cap per event; level-trigger re-fires
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or transient (EMFILE etc.): try again next event
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    fcntl(fd, F_SETFD, FD_CLOEXEC);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op on unix
    auto c = std::make_shared<Conn>(opt_.max_frame);
    c->fd = fd;
    c->sid = srv_->OpenSession();
    c->info = srv_->net().Register(c->sid, PeerString(fd));
    c->last_active_ms = NowMs();
    if (!poller_->Add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
      close(fd);
      srv_->net().Deregister(c->sid);
      srv_->CloseSession(c->sid);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_[fd] = c;
    }
    srv_->metrics().RecordAccept();
    OBS_INSTANT("net.accept", c->sid);
  }
}

void NinepListener::HandleReadable(const ConnPtr& c) {
  char buf[64 * 1024];
  std::vector<InFrame> frames;
  bool frame_error = false;
  bool peer_gone = false;
  obs::Tracer& tr = obs::Tracer::Global();
  for (int i = 0; i < 4; i++) {  // fairness cap; level-trigger re-fires
    ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (!WouldBlock()) {
        peer_gone = true;
      }
      break;
    }
    if (n == 0) {
      peer_gone = true;  // EOF: pending replies are discarded by policy
      break;
    }
    c->last_active_ms = NowMs();
    srv_->metrics().AddNetBytesIn(static_cast<uint64_t>(n));
    c->info->AddBytesIn(static_cast<uint64_t>(n));
    c->reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    std::string frame;
    FrameReader::Next next;
    while ((next = c->reader.Pop(&frame)) == FrameReader::Next::kFrame) {
      // The request context is born here, on the loop thread, before any
      // decode: cid + the frame's own tag bytes + a per-conn sequence.
      InFrame inf;
      inf.tag = FrameTag(frame);
      inf.rid = MakeRequestId(c->sid, inf.tag, c->next_req_seq++);
      inf.arrive_ns = tr.NowNs();
      inf.bytes = std::move(frame);
      c->info->AddFrameIn();
      if (tr.enabled()) {
        tr.EmitAt(obs::EventKind::kInstant, "req.frame", inf.bytes.size(),
                  inf.rid, inf.arrive_ns);
      }
      frames.push_back(std::move(inf));
    }
    if (next == FrameReader::Next::kError) {
      frame_error = true;
      break;
    }
    if (static_cast<size_t>(n) < sizeof(buf)) {
      break;  // drained the socket buffer
    }
  }
  if (!frames.empty()) {
    std::lock_guard<std::mutex> lk(c->mu);
    for (InFrame& f : frames) {
      c->inbox.push_back(std::move(f));
    }
    MaybeSpawnWorkerLocked(c);
  }
  if (frame_error) {
    srv_->metrics().RecordFrameError();
    OBS_INSTANT("net.frame_error", c->sid);
    CloseConn(c, /*reaped=*/false);
  } else if (peer_gone) {
    CloseConn(c, /*reaped=*/false);
  }
}

void NinepListener::FlushConn(const ConnPtr& c) {
  bool broken = false;
  {
    std::lock_guard<std::mutex> lk(c->mu);
    if (c->closing) {
      return;
    }
    while (c->outbox_pending > 0) {
      // Scatter-gather drain: one sendmsg covers up to kMaxIov segments, so
      // a batch of small replies — or a sealed zero-copy payload sandwiched
      // between them — leaves in one syscall.
      struct iovec iov[kMaxIov];
      size_t niov = 0;
      for (const OutSeg& s : c->outbox) {
        if (niov == kMaxIov) {
          break;
        }
        iov[niov].iov_base = const_cast<char*>(s.bytes.data() + s.off);
        iov[niov].iov_len = s.bytes.size() - s.off;
        niov++;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = niov;
      ssize_t n = sendmsg(c->fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (!WouldBlock()) {
          broken = true;
        }
        break;
      }
      srv_->metrics().RecordWritev();
      c->info->RecordWritev();
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        OutSeg& s = c->outbox.front();
        size_t take = std::min(s.bytes.size() - s.off, left);
        s.off += take;
        left -= take;
        if (s.off == s.bytes.size()) {
          c->outbox.pop_front();
        }
      }
      c->outbox_pending -= static_cast<size_t>(n);
      c->outbox_written += static_cast<uint64_t>(n);
      c->last_active_ms = NowMs();
      srv_->metrics().AddNetBytesOut(static_cast<uint64_t>(n));
      c->info->AddBytesOut(static_cast<uint64_t>(n));
    }
    // Requests whose reply bytes have now fully entered the kernel socket
    // buffer are complete: close their outbox-drain phase and offer them to
    // the flight recorder. pending is FIFO in append order and end_total is
    // monotonic, so a prefix scan is exact.
    obs::Tracer& tr = obs::Tracer::Global();
    while (!c->pending.empty() &&
           c->pending.front().end_total <= c->outbox_written) {
      PendingReply p = c->pending.front();
      c->pending.pop_front();
      uint64_t now = tr.NowNs();
      uint64_t outbox_ns = now - p.append_ns;
      if (tr.enabled() && p.rid != 0) {
        tr.EmitAt(obs::EventKind::kComplete, "req.outbox", outbox_ns, p.rid,
                  p.append_ns);
      }
      RequestRecord rec;
      rec.rid = p.rid;
      rec.cid = c->sid;
      rec.tag = p.tag;
      rec.op = p.op;
      rec.total_ns = now - p.arrive_ns;
      rec.queue_ns = p.queue_ns;
      rec.lock_ns = p.lock_ns;
      rec.handler_ns = p.handler_ns;
      rec.encode_ns = p.encode_ns;
      rec.outbox_ns = outbox_ns;
      srv_->net().recorder().Record(rec);
    }
    if (!broken) {
      // Backpressure release: half the bound, so a stream of replies can't
      // flap the stall on and off per frame.
      if (c->stalled && c->outbox_bytes() <= opt_.max_outbox_bytes / 2) {
        c->stalled = false;
        c->info->set_state(ConnState::kActive);
        OBS_INSTANT("net.unstall", c->sid);
        MaybeSpawnWorkerLocked(c);
      }
      UpdateInterest(c);
    }
  }
  if (broken) {
    CloseConn(c, /*reaped=*/false);
  }
}

void NinepListener::UpdateInterest(const ConnPtr& c) {
  bool want_read = !c->stalled;
  bool want_write = c->outbox_bytes() > 0;
  if (want_read != c->want_read || want_write != c->want_write) {
    c->want_read = want_read;
    c->want_write = want_write;
    poller_->Mod(c->fd, want_read, want_write);
  }
}

void NinepListener::CloseConn(const ConnPtr& c, bool reaped) {
  {
    std::lock_guard<std::mutex> lk(c->mu);
    if (c->closing) {
      return;
    }
    c->closing = true;
  }
  poller_->Del(c->fd);
  deferred_close_.push_back(c->fd);
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(c->fd);
  }
  c->info->set_state(ConnState::kClosing);
  srv_->net().Deregister(c->sid);
  srv_->metrics().RecordDisconnect();
  if (reaped) {
    srv_->metrics().RecordReap();
  }
  // Session teardown happens on a worker: CloseSession waits for the
  // exclusive dispatch lock (draining any request this connection still has
  // mid-dispatch), and the loop must never block on that. If workers are
  // already active on this conn, the next one to loop observes `closing` and
  // claims the teardown instead.
  {
    std::lock_guard<std::mutex> lk(c->mu);
    MaybeSpawnWorkerLocked(c);
  }
}

// --- Worker pool -------------------------------------------------------------

int NinepListener::ConnWorkerCap() const {
  if (opt_.max_conn_workers <= 0) {
    return opt_.workers;
  }
  return std::min(opt_.max_conn_workers, opt_.workers);
}

void NinepListener::MaybeSpawnWorkerLocked(const ConnPtr& c) {
  if (c->workers_active >= ConnWorkerCap()) {
    return;
  }
  if (c->closing) {
    // Teardown needs exactly one worker; if any is active it will observe
    // `closing` on its next loop and claim the job.
    if (c->session_closed || c->workers_active > 0) {
      return;
    }
  } else {
    if (c->stalled || c->inbox.empty() || c->fence_inflight) {
      return;
    }
    // Beyond the first worker, only spawn when the front frame could
    // actually start concurrently — a whole-conn fence waits for
    // dispatching == 0 regardless, so an extra worker would wake just to go
    // back to sleep.
    if (c->workers_active > 0) {
      NinepServer::FrameVerdict fv =
          srv_->ClassifyFrame(c->sid, c->inbox.front().bytes);
      bool concurrent =
          fv.cls == NinepServer::FrameClass::kReorderable ||
          (fv.cls == NinepServer::FrameClass::kWrite && fv.domain != 0);
      if (!concurrent || !c->CanStartLocked(fv)) {
        return;
      }
    }
  }
  c->workers_active++;
  EnqueueReady(c);
}

void NinepListener::WorkerMain(int idx) {
  {
    char name[32];
    snprintf(name, sizeof(name), "net.worker%d", idx);
    obs::Tracer::Global().SetThreadName(name);
  }
  while (true) {
    ConnPtr c;
    {
      std::unique_lock<std::mutex> lk(ready_mu_);
      ready_cv_.wait(lk, [&] { return !ready_.empty(); });
      c = std::move(ready_.front());
      ready_.pop_front();
    }
    if (c == nullptr) {
      return;  // shutdown sentinel
    }
    DrainConn(c);
  }
}

// One worker's visit: pop whatever the ordering model lets this conn start —
// a reorderable frame (concurrently with other workers on the same conn), a
// fence once every in-flight dispatch drains, or a run of consecutive
// same-fid Twrites as one batch — dispatch it outside c->mu, append the
// replies, repeat. Returns when nothing is poppable; whichever worker
// finishes the blocking dispatch resumes the queue, so no frame is stranded.
void NinepListener::DrainConn(const ConnPtr& c) {
  obs::Tracer& tr = obs::Tracer::Global();
  bool teardown = false;
  while (true) {
    std::vector<InFrame> batch;  // one frame, or a coalesced Twrite run
    std::vector<uint64_t> seqs;  // arrival seq of each frame in `batch`
    bool is_fence = false;
    uint64_t batch_domain = 0;   // nonzero: this batch holds a domain slot
    bool batch_is_write = false;  // which DomainUse count the slot is
    {
      std::lock_guard<std::mutex> lk(c->mu);
      if (c->closing) {
        teardown = !c->session_closed;
        c->session_closed = true;
        c->workers_active--;
        break;
      }
      if (c->outbox_bytes() > opt_.max_outbox_bytes) {
        // Slow reader: park dispatch with the inbox intact. The loop
        // drops read interest and requeues once the outbox drains.
        if (!c->stalled) {
          c->stalled = true;
          c->info->set_state(ConnState::kStalled);
          srv_->metrics().RecordBackpressureStall();
          OBS_INSTANT("net.backpressure_stall", c->sid);
        }
        c->workers_active--;
        break;
      }
      if (c->inbox.empty()) {
        c->workers_active--;
        break;
      }
      NinepServer::FrameVerdict fv =
          srv_->ClassifyFrame(c->sid, c->inbox.front().bytes);
      if (!c->CanStartLocked(fv)) {
        // Whichever dispatch is blocking us loops back here when it
        // completes.
        c->workers_active--;
        break;
      }
      auto pop_front = [&] {
        batch.push_back(std::move(c->inbox.front()));
        c->inbox.pop_front();
        seqs.push_back(c->next_dispatch_seq++);
        c->inflight_seqs.insert(seqs.back());
        c->dispatching++;
      };
      // Coalesce the run of consecutive writes to the same fid; they
      // dispatch under one lock acquisition in HandleWriteBatch.
      auto coalesce_writes = [&](uint32_t wfid) {
        while (batch.size() < kMaxWriteBatch && !c->inbox.empty()) {
          NinepServer::FrameVerdict nv =
              srv_->ClassifyFrame(c->sid, c->inbox.front().bytes);
          if (nv.cls != NinepServer::FrameClass::kWrite ||
              nv.write_fid != wfid) {
            break;
          }
          pop_front();
        }
      };
      if (fv.cls == NinepServer::FrameClass::kReorderable) {
        pop_front();
        if (fv.domain != 0) {
          batch_domain = fv.domain;
          c->domains_inflight[fv.domain].readers++;
        }
        // Fan out: if the next frame can also start, wake another worker to
        // run it while we dispatch this one.
        MaybeSpawnWorkerLocked(c);
      } else if (fv.cls == NinepServer::FrameClass::kWrite &&
                 fv.domain != 0) {
        // A window-confined write run is not a fence: the domain slot it
        // holds orders it against same-window frames only, so writes to
        // different windows — and reads of other windows — keep flowing.
        batch_domain = fv.domain;
        batch_is_write = true;
        c->domains_inflight[fv.domain].writers++;
        pop_front();
        coalesce_writes(fv.write_fid);  // same fid ⇒ same domain
        MaybeSpawnWorkerLocked(c);
      } else {
        is_fence = true;
        c->fence_inflight = true;
        pop_front();
        if (fv.cls == NinepServer::FrameClass::kWrite) {
          coalesce_writes(fv.write_fid);
        }
      }
    }
    // Dispatch outside c->mu.
    uint64_t pickup = tr.NowNs();
    std::vector<RequestObs> obsv(batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
      obsv[i].rid = batch[i].rid;
      if (tr.enabled() && batch[i].rid != 0) {
        tr.EmitAt(obs::EventKind::kComplete, "req.queue",
                  pickup - batch[i].arrive_ns, batch[i].rid,
                  batch[i].arrive_ns);
      }
    }
    std::vector<ReplyFrame> replies;
    if (batch.size() == 1) {
      replies.resize(1);
      srv_->HandleBytes(c->sid, batch[0].bytes, &obsv[0], &replies[0]);
    } else {
      std::vector<std::string_view> views;
      std::vector<RequestObs*> obsp;
      views.reserve(batch.size());
      obsp.reserve(batch.size());
      for (size_t i = 0; i < batch.size(); i++) {
        views.push_back(batch[i].bytes);
        obsp.push_back(&obsv[i]);
      }
      srv_->HandleWriteBatch(c->sid, views, obsp, &replies);
      srv_->metrics().RecordBodyappCoalesced(batch.size() - 1);
    }
    uint64_t done = tr.NowNs();
    for (size_t i = 0; i < batch.size(); i++) {
      uint64_t queue_ns = pickup - batch[i].arrive_ns;
      c->info->RecordOp(obsv[i].op, (done - pickup) / 1000, obsv[i].error);
      c->info->RecordQueueWait(queue_ns / 1000);
      srv_->metrics().RecordNetQueueWait(queue_ns / 1000);
      if (replies[i].zero_copy) {
        c->info->AddBytesZeroCopy(replies[i].payload_bytes);
      }
    }
    bool notify;
    {
      std::lock_guard<std::mutex> lk(c->mu);
      notify = c->outbox_bytes() == 0;  // loop has nothing armed for us
      for (size_t i = 0; i < batch.size(); i++) {
        PendingReply p;
        p.rid = batch[i].rid;
        p.tag = batch[i].tag;
        p.op = obsv[i].op;
        p.arrive_ns = batch[i].arrive_ns;
        p.queue_ns = pickup - batch[i].arrive_ns;
        p.lock_ns = obsv[i].lock_wait_ns;
        p.handler_ns = obsv[i].handler_ns;
        p.encode_ns = obsv[i].encode_ns;
        p.append_ns = done;
        c->AppendReplyLocked(std::move(replies[i].bytes));
        p.end_total = c->outbox_appended;
        c->pending.push_back(p);
        // Completing while an earlier-arrived request is still in flight is
        // an out-of-order completion. (A whole-conn fence batch never
        // records one: it only popped once dispatching hit zero, so the set
        // holds nothing older than itself. Domain-confined batches can —
        // they run alongside other domains' frames.)
        c->inflight_seqs.erase(seqs[i]);
        if (!c->inflight_seqs.empty() &&
            *c->inflight_seqs.begin() < seqs[i]) {
          srv_->metrics().RecordOooCompletion();
        }
      }
      c->dispatching -= static_cast<int>(batch.size());
      if (is_fence) {
        c->fence_inflight = false;
      }
      if (batch_domain != 0) {
        auto it = c->domains_inflight.find(batch_domain);
        if (batch_is_write) {
          it->second.writers--;
        } else {
          it->second.readers--;
        }
        if (it->second.readers == 0 && it->second.writers == 0) {
          c->domains_inflight.erase(it);
        }
      }
    }
    if (notify) {
      {
        std::lock_guard<std::mutex> lk(notify_mu_);
        notify_.push_back(c);
      }
      WakeLoop();
    }
  }
  if (teardown) {
    // Outside c->mu: CloseSession blocks on the exclusive dispatch lock
    // (draining this connection's mid-flight requests, if any), and the
    // loop must stay free to lock c->mu meanwhile.
    srv_->CloseSession(c->sid);
  }
  // A stall or teardown decision above may have raced a FlushConn; one
  // extra notification is cheap and keeps interest fresh.
  {
    std::lock_guard<std::mutex> lk(notify_mu_);
    notify_.push_back(c);
  }
  WakeLoop();
}

}  // namespace help
