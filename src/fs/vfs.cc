#include "src/fs/vfs.h"

#include <algorithm>
#include <atomic>

namespace help {

Node::Node(std::string name, bool dir, uint64_t qid_path) : name_(std::move(name)) {
  qid_.path = qid_path;
  qid_.dir = dir;
}

NodePtr Node::Child(std::string_view name) const {
  auto it = children_.find(std::string(name));
  if (it != children_.end()) {
    return it->second;
  }
  if (dir_synth_ != nullptr) {
    return dir_synth_->Lookup(name);
  }
  return nullptr;
}

void Node::AddChild(NodePtr child) {
  child->parent_ = this;
  children_[child->name_] = std::move(child);
}

void Node::RemoveChild(std::string_view name) { children_.erase(std::string(name)); }

uint64_t Node::length() const {
  if (qid_.dir) {
    return 0;
  }
  if (handler_ != nullptr) {
    return handler_->Length(*this);
  }
  return data_.size();
}

OpenFile::~OpenFile() {
  if (node_ != nullptr && node_->handler() != nullptr) {
    node_->handler()->Clunk(*this);
  }
}

Result<std::string> OpenFile::Read(uint64_t offset, uint32_t count) {
  if ((mode_ & 3) == kOwrite) {
    return ErrPerm(node_->name());
  }
  if (node_->handler() != nullptr) {
    return node_->handler()->Read(*this, offset, count);
  }
  const std::string& data = node_->data();
  if (offset >= data.size()) {
    return std::string();
  }
  size_t n = std::min<uint64_t>(count, data.size() - offset);
  return data.substr(offset, n);
}

bool OpenFile::Gather(uint64_t offset, uint32_t count, GatherView* out) {
  if ((mode_ & 3) == kOwrite) {
    return false;  // permission error surfaces through the Read fallback
  }
  if (node_->handler() != nullptr) {
    return node_->handler()->Gather(*this, offset, count, out);
  }
  // Regular file: borrow the node's payload directly. The view is stable for
  // the dispatch because tree mutations run under the exclusive lock.
  const std::string& data = node_->data();
  *out = GatherView();
  if (offset < data.size()) {
    size_t n = std::min<uint64_t>(count, data.size() - offset);
    out->raw = std::string_view(data).substr(offset, n);
    out->bytes = n;
  }
  return true;
}

Result<uint32_t> OpenFile::Write(uint64_t offset, std::string_view data) {
  if ((mode_ & 3) == kOread) {
    return ErrPerm(node_->name());
  }
  if (node_->handler() != nullptr) {
    auto r = node_->handler()->Write(*this, offset, data);
    if (r.ok()) {
      node_->Touch(clock_->Tick());
    }
    return r;
  }
  std::string& dst = node_->data();
  if (offset > dst.size()) {
    dst.resize(offset, 0);  // sparse writes zero-fill, like a real fs
  }
  if (offset + data.size() > dst.size()) {
    dst.resize(offset + data.size());
  }
  std::copy(data.begin(), data.end(), dst.begin() + static_cast<long>(offset));
  node_->Touch(clock_->Tick());
  return static_cast<uint32_t>(data.size());
}

Vfs::Vfs() {
  static std::atomic<uint64_t> next_vfs_id{1};
  id_ = next_vfs_id.fetch_add(1, std::memory_order_relaxed);
  root_ = std::make_shared<Node>("/", /*dir=*/true, NextQid());
}

Result<NodePtr> Vfs::Walk(std::string_view path) const {
  NodePtr cur = root_;
  for (const std::string& elem : PathElements(path)) {
    if (!cur->dir()) {
      return ErrNotDir(FullPath(*cur));
    }
    NodePtr next = cur->Child(elem);
    if (next == nullptr) {
      return ErrNotExist(CleanPath(path));
    }
    cur = next;
  }
  return cur;
}

Result<NodePtr> Vfs::WalkParent(std::string_view path, std::string* base) const {
  std::string clean = CleanPath(path);
  *base = BasePath(clean);
  if (*base == "/" || base->empty()) {
    return Status::Error("cannot operate on root");
  }
  return Walk(DirPath(clean));
}

Result<NodePtr> Vfs::Create(std::string_view path, bool dir) {
  std::string base;
  auto parent = WalkParent(path, &base);
  if (!parent.ok()) {
    return parent;
  }
  if (!parent.value()->dir()) {
    return ErrNotDir(DirPath(path));
  }
  if (parent.value()->Child(base) != nullptr) {
    return ErrExists(CleanPath(path));
  }
  auto node = std::make_shared<Node>(base, dir, NextQid());
  node->set_mtime(clock_.Tick());
  parent.value()->AddChild(node);
  parent.value()->Touch(clock_.Now());
  return node;
}

Status Vfs::MkdirAll(std::string_view path) {
  NodePtr cur = root_;
  for (const std::string& elem : PathElements(path)) {
    NodePtr next = cur->Child(elem);
    if (next == nullptr) {
      next = std::make_shared<Node>(elem, /*dir=*/true, NextQid());
      next->set_mtime(clock_.Tick());
      cur->AddChild(next);
      cur->Touch(clock_.Now());
    } else if (!next->dir()) {
      return ErrNotDir(elem);
    }
    cur = next;
  }
  return Status::Ok();
}

Status Vfs::Remove(std::string_view path) {
  std::string base;
  auto parent = WalkParent(path, &base);
  if (!parent.ok()) {
    return parent.status();
  }
  NodePtr victim = parent.value()->Child(base);
  if (victim == nullptr) {
    return ErrNotExist(CleanPath(path));
  }
  if (victim->dir() && !victim->children().empty()) {
    return Status::Error(CleanPath(path) + ": directory not empty");
  }
  parent.value()->RemoveChild(base);
  parent.value()->Touch(clock_.Tick());
  return Status::Ok();
}

StatInfo Vfs::StatOf(const Node& n) {
  StatInfo s;
  s.name = n.name();
  s.qid = n.qid();
  s.length = n.length();
  s.mtime = n.mtime();
  s.dir = n.dir();
  return s;
}

Result<StatInfo> Vfs::Stat(std::string_view path) const {
  auto node = Walk(path);
  if (!node.ok()) {
    return node.status();
  }
  return StatOf(*node.value());
}

std::vector<StatInfo> Vfs::ListDir(const Node& n) {
  std::vector<StatInfo> out;
  for (const auto& [name, child] : n.children()) {
    out.push_back(StatOf(*child));
  }
  if (n.dir_synth() != nullptr) {
    // Synthesized entries merge after the static ones; the whole listing is
    // re-sorted so it stays in name order (static names win a collision via
    // Child(), but a sane synth never shadows a static child).
    for (const NodePtr& child : n.dir_synth()->List()) {
      out.push_back(StatOf(*child));
    }
    std::sort(out.begin(), out.end(),
              [](const StatInfo& a, const StatInfo& b) { return a.name < b.name; });
  }
  return out;
}

Result<std::vector<StatInfo>> Vfs::ReadDir(std::string_view path) const {
  auto node = Walk(path);
  if (!node.ok()) {
    return node.status();
  }
  if (!node.value()->dir()) {
    return ErrNotDir(CleanPath(path));
  }
  return ListDir(*node.value());
}

Result<OpenFilePtr> Vfs::Open(std::string_view path, uint8_t mode) {
  auto node = Walk(path);
  NodePtr n;
  if (!node.ok()) {
    // Opening for write creates the file, which keeps shell redirection and
    // WriteFile simple (Plan 9 create-on-open semantics via the shell).
    if ((mode & 3) == kOread) {
      return node.status();
    }
    auto created = Create(path, /*dir=*/false);
    if (!created.ok()) {
      return created.status();
    }
    n = created.take();
  } else {
    n = node.take();
  }
  if (n->dir() && (mode & 3) != kOread) {
    return ErrIsDir(CleanPath(path));
  }
  auto f = std::make_shared<OpenFile>(n, mode, &clock_);
  if (n->handler() != nullptr) {
    Status s = n->handler()->Open(*f, mode);
    if (!s.ok()) {
      return s;
    }
  } else if ((mode & kOtrunc) != 0) {
    n->data().clear();
    n->Touch(clock_.Tick());
  }
  return f;
}

Result<std::string> Vfs::ReadFile(std::string_view path) const {
  auto node = Walk(path);
  if (!node.ok()) {
    return node.status();
  }
  NodePtr n = node.take();
  if (n->dir()) {
    return ErrIsDir(CleanPath(path));
  }
  if (n->handler() != nullptr) {
    // Whole-file read through a transient open.
    auto f = const_cast<Vfs*>(this)->Open(path, kOread);
    if (!f.ok()) {
      return f.status();
    }
    std::string out;
    uint64_t off = 0;
    while (true) {
      auto chunk = f.value()->Read(off, 65536);
      if (!chunk.ok()) {
        return chunk.status();
      }
      if (chunk.value().empty()) {
        break;
      }
      off += chunk.value().size();
      out += chunk.take();
    }
    return out;
  }
  return n->data();
}

Status Vfs::WriteFile(std::string_view path, std::string_view data) {
  auto f = Open(path, kOwrite | kOtrunc);
  if (!f.ok()) {
    return f.status();
  }
  auto w = f.value()->Write(0, data);
  return w.status();
}

Status Vfs::AppendFile(std::string_view path, std::string_view data) {
  auto f = Open(path, kOwrite);
  if (!f.ok()) {
    return f.status();
  }
  uint64_t off = f.value()->node().length();
  auto w = f.value()->Write(off, data);
  return w.status();
}

Status Vfs::AttachHandler(std::string_view path, std::shared_ptr<FileHandler> handler) {
  auto node = Walk(path);
  NodePtr n;
  if (node.ok()) {
    n = node.take();
  } else {
    Status s = MkdirAll(DirPath(path));
    if (!s.ok()) {
      return s;
    }
    auto created = Create(path, /*dir=*/false);
    if (!created.ok()) {
      return created.status();
    }
    n = created.take();
  }
  n->set_handler(std::move(handler));
  return Status::Ok();
}

std::string Vfs::FullPath(const Node& n) {
  if (n.parent() == nullptr) {
    return "/";
  }
  std::vector<std::string_view> parts;
  const Node* cur = &n;
  while (cur->parent() != nullptr) {
    parts.push_back(cur->name());
    cur = cur->parent();
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += '/';
    out += *it;
  }
  return out;
}

}  // namespace help
