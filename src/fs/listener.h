// The C10K front end of the 9P service: one event-loop thread multiplexes
// every accepted connection with epoll (poll on non-Linux, or on request),
// and a small worker pool runs the actual protocol dispatch against the
// NinepServer. One connection == one Session, so fid tables, msize, and tag
// bookkeeping isolate exactly as they do in-process.
//
// Division of labor (see DESIGN.md §14):
//
//   loop thread    accept, read, write, epoll interest, timers, close —
//                  ALL fd I/O. Never dispatches, never takes the 9P
//                  dispatch lock, so a slow handler can't stall the wire.
//   worker pool    pops a ready connection, drains its inbox one frame at a
//                  time through NinepServer::HandleBytes (the existing
//                  shared/exclusive dispatch machinery), appends replies to
//                  the outbox, and wakes the loop to flush. Also runs
//                  session teardown (CloseSession blocks on the exclusive
//                  dispatch lock — not the loop's job).
//
// Per-connection ordering (PR 9, DESIGN.md §16; domains PR 10, §17): frames
// are *picked up* in arrival order, but read-only requests (Tread on a
// read-only fid, Tstat, fid-minting Twalk) may dispatch on several workers
// at once and complete out of order between mutation barriers. A mutation
// (ctl writes, Tclunk, attach/open/...) is a fence: it waits for every
// in-flight dispatch on the connection to finish and excludes new pickups
// while it runs, so a read issued after a write always sees that write.
// Window-confined frames carry a nonzero *domain* (the window id from
// ClassifyFrame): a Twrite to a window file is NOT a whole-conn fence — it
// only waits for in-flight frames of its own domain, and blocks only
// same-domain pickups, so one connection's writes to different windows (and
// reads of other windows) overlap. The dispatch locks make this safe; the
// domain accounting preserves per-window read-your-writes ordering on the
// connection. The scheduler encodes all of this with per-conn fields
// (dispatching count, fence_inflight flag, per-domain reader/writer counts,
// workers_active fan-out count) and asks NinepServer::ClassifyFrame — a
// bytes-level peek, no decode — about the frame at the front of the inbox.
// Runs of consecutive Twrites to one fid are popped together and dispatched
// through HandleWriteBatch under a single lock acquisition
// (ninep.bodyapp_coalesced counts the riders). Different connections'
// requests run concurrently as before.
//
// Backpressure: each connection's outbound queue is bounded. When appending
// a reply would exceed max_outbox_bytes the worker parks the connection
// (stalled): dispatch stops with frames still in the inbox, the loop drops
// read interest so the kernel socket buffer — and eventually the peer —
// absorbs the pressure. When the loop drains the outbox below half the
// bound it unstalls, re-arms reads, and requeues pending frames. Counted in
// net.backpressure_stalls.
//
// Idle reaping: a connection with no traffic for idle_timeout_ms is closed
// and its session torn down — CloseSession clunks every open fid through the
// normal handler path, so an abandoned client cannot pin windows or leak
// sessions. Counted in net.reaped.
//
// Hostile-wire policy: a frame header that lies (size < 7 or > max_frame)
// poisons the stream — the connection is closed immediately, counted in
// net.frame_errors. There is no resynchronizing a framed stream after a bad
// length. Disconnects with requests mid-dispatch are safe by construction:
// the session outlives the socket until a worker's CloseSession completes,
// and replies to a dead connection are discarded with it.
#ifndef SRC_FS_LISTENER_H_
#define SRC_FS_LISTENER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"

namespace help {

// Readiness-notification backend: epoll on Linux, poll(2) everywhere (and on
// Linux when forced, so the fallback stays tested on CI hardware that has
// epoll).
class Poller {
 public:
  struct Event {
    int fd;
    bool readable;
    bool writable;
    bool error;  // EPOLLERR/EPOLLHUP (POLLERR/POLLHUP/POLLNVAL)
  };

  virtual ~Poller() = default;
  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  virtual Status Mod(int fd, bool want_read, bool want_write) = 0;
  virtual void Del(int fd) = 0;
  // Blocks up to timeout_ms; appends ready fds to *out. Returns the event
  // count (0 on timeout), -1 on hard failure.
  virtual int Wait(std::vector<Event>* out, int timeout_ms) = 0;
};

// kAuto picks epoll on Linux, poll elsewhere.
enum class PollerKind : uint8_t { kAuto, kEpoll, kPoll };
std::unique_ptr<Poller> MakePoller(PollerKind kind);

// Namespace-scope (not nested) so `NinepListener(&srv, {.workers = 4})` and
// the defaulted-argument constructor both work — a nested aggregate's default
// member initializers are not usable until the enclosing class is complete.
struct ListenerOptions {
  int workers = 2;                     // dispatch worker threads
  uint32_t max_frame = kMaxFrameSize;  // inbound frame cap (protocol limit)
  size_t max_outbox_bytes = 1 << 20;   // backpressure high-water per conn
  int idle_timeout_ms = 0;             // 0 = never reap idle connections
  int tick_ms = 50;                    // loop wakeup granularity
  // Cadence of the idle-reap scan. 0 scans on every loop wakeup (bounded by
  // tick_ms / idle_timeout_ms, the historical behavior); a short tick makes
  // reaping prompt even when tick_ms is long, a long one amortizes the scan
  // on busy listeners.
  int reap_tick_ms = 0;
  PollerKind poller = PollerKind::kAuto;
  // Cap on workers dispatching ONE connection's frames concurrently. 0 means
  // "no per-conn cap" (bounded by `workers`); 1 restores the pre-PR 9
  // strictly-in-order dispatch, which the benchmarks use as a baseline.
  int max_conn_workers = 0;
};

class NinepListener {
 public:
  using Options = ListenerOptions;

  explicit NinepListener(NinepServer* srv, Options opt = {});
  ~NinepListener();

  NinepListener(const NinepListener&) = delete;
  NinepListener& operator=(const NinepListener&) = delete;

  // Bind endpoints (either or both, before Start). TCP port 0 binds an
  // ephemeral port; read it back with port().
  Status ListenTcp(const std::string& host, uint16_t port);
  Status ListenUnix(const std::string& path);
  uint16_t port() const { return port_; }

  // Spawns the event loop and the worker pool. Stop() (or the destructor)
  // closes every connection, tears down every session, and joins.
  Status Start();
  void Stop();

  // Live connection count (the net.active_conns gauge reads the same).
  size_t active_conns() const;

 private:
  struct Conn;
  using ConnPtr = std::shared_ptr<Conn>;

  void LoopMain();
  void WorkerMain(int idx);
  void HandleAccept(int listen_fd);
  void HandleReadable(const ConnPtr& c);
  // Flushes c->outbox as far as the socket allows (scatter-gather over the
  // segment deque); updates interest.
  void FlushConn(const ConnPtr& c);
  // One worker's visit to a connection: pop/dispatch until nothing poppable.
  void DrainConn(const ConnPtr& c);
  // Caller holds c->mu: claims a fan-out slot and enqueues the connection if
  // work is available and the per-conn worker cap allows another.
  void MaybeSpawnWorkerLocked(const ConnPtr& c);
  int ConnWorkerCap() const;
  void UpdateInterest(const ConnPtr& c);
  // Loop-side teardown: deregister + schedule close(fd) after this event
  // batch, erase from the table, hand session teardown to a worker.
  void CloseConn(const ConnPtr& c, bool reaped);
  void EnqueueReady(const ConnPtr& c);  // caller holds c->mu
  void WakeLoop();
  void DrainWakePipe();
  uint64_t NowMs() const;

  NinepServer* srv_;
  Options opt_;
  std::unique_ptr<Poller> poller_;
  std::vector<int> listen_fds_;
  std::string unix_path_;  // unlinked on Stop
  uint16_t port_ = 0;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::thread loop_;
  std::vector<std::thread> workers_;

  // The connection table. Only the loop inserts/erases; the mutex makes
  // active_conns() and Stop()'s final sweep safe from other threads.
  mutable std::mutex conns_mu_;
  std::map<int, ConnPtr> conns_;

  // Work queue: connections with frames to dispatch or sessions to tear
  // down. A null entry is the shutdown sentinel.
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::deque<ConnPtr> ready_;

  // Loop-notification queue: connections whose outbox/stall state changed
  // under a worker and need the loop to flush or re-arm interest.
  std::mutex notify_mu_;
  std::deque<ConnPtr> notify_;

  // fds whose close(2) is deferred to the end of the current event batch, so
  // a just-closed fd cannot be reused by an accept earlier in the same batch
  // and alias a stale event.
  std::vector<int> deferred_close_;
};

}  // namespace help

#endif  // SRC_FS_LISTENER_H_
