#include "src/fs/ninep.h"

#include <algorithm>
#include <cassert>

#include "src/base/strings.h"
#include "src/fs/lockorder.h"

namespace help {

namespace {

// --- Little-endian packing helpers ------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }
void PutU16(std::string* out, uint16_t v) {
  PutU8(out, v & 0xFF);
  PutU8(out, v >> 8);
}
void PutU32(std::string* out, uint32_t v) {
  PutU16(out, v & 0xFFFF);
  PutU16(out, v >> 16);
}
void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}
void PutStr(std::string* out, std::string_view s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}
void PutQid(std::string* out, const Qid& q) {
  PutU8(out, q.dir ? 0x80 : 0x00);
  PutU32(out, q.vers);
  PutU64(out, q.path);
}

// Appends a complete Rread header (size, type, tag, count) for a payload of
// `count` bytes; the caller appends the payload itself. Must stay bit-
// identical to EncodeFcall's Rread layout — ninep_test pins that.
void AppendRreadHeader(uint16_t tag, uint32_t count, std::string* out) {
  PutU32(out, 4 + 1 + 2 + 4 + count);
  PutU8(out, static_cast<uint8_t>(MsgType::kRread));
  PutU16(out, tag);
  PutU32(out, count);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  uint8_t U8() {
    if (pos_ + 1 > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint16_t U16() {
    uint16_t lo = U8();
    uint16_t hi = U8();
    return static_cast<uint16_t>(lo | (hi << 8));
  }
  uint32_t U32() {
    uint32_t lo = U16();
    uint32_t hi = U16();
    return lo | (hi << 16);
  }
  uint64_t U64() {
    uint64_t lo = U32();
    uint64_t hi = U32();
    return lo | (hi << 32);
  }
  std::string Str() {
    uint16_t n = U16();
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::string Bytes(uint32_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  Qid ReadQid() {
    Qid q;
    uint8_t t = U8();
    q.dir = (t & 0x80) != 0;
    q.vers = U32();
    q.path = U64();
    return q;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string EncodeFcall(const Fcall& f) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(f.type));
  PutU16(&body, f.tag);
  switch (f.type) {
    case MsgType::kTversion:
    case MsgType::kRversion:
      PutU32(&body, f.msize);
      PutStr(&body, f.version);
      break;
    case MsgType::kTattach:
      PutU32(&body, f.fid);
      PutStr(&body, f.uname);
      PutStr(&body, f.aname);
      break;
    case MsgType::kRattach:
      PutQid(&body, f.qid);
      break;
    case MsgType::kRerror:
      PutStr(&body, f.ename);
      break;
    case MsgType::kTflush:
      PutU16(&body, f.oldtag);
      break;
    case MsgType::kRflush:
      break;
    case MsgType::kTwalk:
      PutU32(&body, f.fid);
      PutU32(&body, f.newfid);
      PutU16(&body, static_cast<uint16_t>(f.wname.size()));
      for (const std::string& n : f.wname) {
        PutStr(&body, n);
      }
      break;
    case MsgType::kRwalk:
      PutU16(&body, static_cast<uint16_t>(f.wqid.size()));
      for (const Qid& q : f.wqid) {
        PutQid(&body, q);
      }
      break;
    case MsgType::kTopen:
      PutU32(&body, f.fid);
      PutU8(&body, f.mode);
      break;
    case MsgType::kRopen:
    case MsgType::kRcreate:
      PutQid(&body, f.qid);
      PutU32(&body, f.iounit);
      break;
    case MsgType::kTcreate:
      PutU32(&body, f.fid);
      PutStr(&body, f.name);
      PutU32(&body, f.perm);
      PutU8(&body, f.mode);
      break;
    case MsgType::kTread:
      PutU32(&body, f.fid);
      PutU64(&body, f.offset);
      PutU32(&body, f.count);
      break;
    case MsgType::kRread:
      PutU32(&body, static_cast<uint32_t>(f.data.size()));
      body.append(f.data);
      break;
    case MsgType::kTwrite:
      PutU32(&body, f.fid);
      PutU64(&body, f.offset);
      PutU32(&body, static_cast<uint32_t>(f.data.size()));
      body.append(f.data);
      break;
    case MsgType::kRwrite:
      PutU32(&body, f.count);
      break;
    case MsgType::kTclunk:
    case MsgType::kTremove:
    case MsgType::kTstat:
      PutU32(&body, f.fid);
      break;
    case MsgType::kRclunk:
    case MsgType::kRremove:
      break;
    case MsgType::kRstat: {
      std::string st = EncodeDirEntry(f.stat);
      PutU16(&body, static_cast<uint16_t>(st.size()));
      body.append(st);
      break;
    }
  }
  std::string out;
  PutU32(&out, static_cast<uint32_t>(body.size()) + 4);
  out += body;
  return out;
}

Result<Fcall> DecodeFcall(std::string_view bytes) {
  Reader r(bytes);
  uint32_t size = r.U32();
  if (!r.ok() || size != bytes.size()) {
    return Status::Error("ninep: bad message size");
  }
  Fcall f;
  f.type = static_cast<MsgType>(r.U8());
  f.tag = r.U16();
  switch (f.type) {
    case MsgType::kTversion:
    case MsgType::kRversion:
      f.msize = r.U32();
      f.version = r.Str();
      break;
    case MsgType::kTattach:
      f.fid = r.U32();
      f.uname = r.Str();
      f.aname = r.Str();
      break;
    case MsgType::kRattach:
      f.qid = r.ReadQid();
      break;
    case MsgType::kRerror:
      f.ename = r.Str();
      break;
    case MsgType::kTflush:
      f.oldtag = r.U16();
      break;
    case MsgType::kRflush:
      break;
    case MsgType::kTwalk: {
      f.fid = r.U32();
      f.newfid = r.U32();
      uint16_t n = r.U16();
      for (uint16_t i = 0; i < n; i++) {
        f.wname.push_back(r.Str());
      }
      break;
    }
    case MsgType::kRwalk: {
      uint16_t n = r.U16();
      for (uint16_t i = 0; i < n; i++) {
        f.wqid.push_back(r.ReadQid());
      }
      break;
    }
    case MsgType::kTopen:
      f.fid = r.U32();
      f.mode = r.U8();
      break;
    case MsgType::kRopen:
    case MsgType::kRcreate:
      f.qid = r.ReadQid();
      f.iounit = r.U32();
      break;
    case MsgType::kTcreate:
      f.fid = r.U32();
      f.name = r.Str();
      f.perm = r.U32();
      f.mode = r.U8();
      break;
    case MsgType::kTread:
      f.fid = r.U32();
      f.offset = r.U64();
      f.count = r.U32();
      break;
    case MsgType::kRread: {
      uint32_t n = r.U32();
      f.data = r.Bytes(n);
      break;
    }
    case MsgType::kTwrite: {
      f.fid = r.U32();
      f.offset = r.U64();
      uint32_t n = r.U32();
      f.data = r.Bytes(n);
      break;
    }
    case MsgType::kRwrite:
      f.count = r.U32();
      break;
    case MsgType::kTclunk:
    case MsgType::kTremove:
    case MsgType::kTstat:
      f.fid = r.U32();
      break;
    case MsgType::kRclunk:
    case MsgType::kRremove:
      break;
    case MsgType::kRstat: {
      uint16_t n = r.U16();
      std::string blob = r.Bytes(n);
      auto entries = DecodeDirEntries(blob);
      if (!entries.ok() || entries.value().size() != 1) {
        return Status::Error("ninep: bad stat payload");
      }
      f.stat = entries.value()[0];
      break;
    }
    default:
      return Status::Error("ninep: unknown message type");
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::Error("ninep: truncated or overlong message");
  }
  return f;
}

std::string EncodeDirEntry(const StatInfo& s) {
  std::string out;
  PutQid(&out, s.qid);
  PutU64(&out, s.length);
  PutU64(&out, s.mtime);
  PutU8(&out, s.dir ? 1 : 0);
  PutStr(&out, s.name);
  return out;
}

Result<std::vector<StatInfo>> DecodeDirEntries(std::string_view data) {
  Reader r(data);
  std::vector<StatInfo> out;
  while (!r.AtEnd()) {
    StatInfo s;
    s.qid = r.ReadQid();
    s.length = r.U64();
    s.mtime = r.U64();
    s.dir = r.U8() != 0;
    s.name = r.Str();
    if (!r.ok()) {
      return Status::Error("ninep: bad directory entry");
    }
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Session.

Fcall ErrorFcall(uint16_t tag, std::string_view msg) {
  Fcall r;
  r.type = MsgType::kRerror;
  r.tag = tag;
  r.ename = std::string(msg);
  return r;
}

namespace {
Fcall Error(uint16_t tag, std::string_view msg) { return ErrorFcall(tag, msg); }
}  // namespace

bool Session::BeginTag(uint16_t tag) {
  if (tag == kNoTag) {
    return true;  // kNoTag is never tracked (Tversion convention)
  }
  std::lock_guard<std::mutex> lk(tag_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  return inflight_.insert(tag).second;
}

void Session::EndTag(uint16_t tag) {
  std::lock_guard<std::mutex> lk(tag_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  inflight_.erase(tag);
  flushed_.erase(tag);
}

bool Session::TagInFlight(uint16_t tag) const {
  std::lock_guard<std::mutex> lk(tag_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  return inflight_.count(tag) != 0;
}

bool Session::FlushTag(uint16_t oldtag) {
  std::lock_guard<std::mutex> lk(tag_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  if (inflight_.count(oldtag) == 0) {
    return false;  // already completed (or never sent): flush is a no-op
  }
  flushed_.insert(oldtag);
  return true;
}

bool Session::ConsumeFlushed(uint16_t tag) {
  std::lock_guard<std::mutex> lk(tag_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  return flushed_.erase(tag) != 0;
}

size_t Session::open_fids() const {
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  return fids_.size();
}

Session::FidState* Session::FindFid(uint32_t fid) {
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  auto it = fids_.find(fid);
  return it == fids_.end() ? nullptr : &it->second;
}

const Session::FidState* Session::FindFid(uint32_t fid) const {
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  auto it = fids_.find(fid);
  return it == fids_.end() ? nullptr : &it->second;
}

namespace {
// The window shard a node's handler reports; null for plain files,
// directories, and non-window handlers. A pure getter — callable under
// fid_mu_.
WindowShardPtr ShardOf(const NodePtr& n) {
  FileHandler* h = n == nullptr ? nullptr : n->handler();
  return h == nullptr ? nullptr : h->window_shard();
}
}  // namespace

void Session::CacheFidLocked(uint32_t fid, Verdict* v) const {
  v->fid = fid;
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return;
  }
  v->present = true;
  v->node = it->second.node;
  v->open = it->second.open != nullptr;
  v->read_only = it->second.read_only;
  v->shard = it->second.shard;
}

Session::Verdict Session::Classify(const Fcall& t) const {
  // Unlike FindFid, classification may race this session's in-flight
  // dispatch, so every field a case needs is read inside one fid_mu_ hold
  // (CacheFidLocked) — and cached in the verdict, so the server's under-lock
  // re-validation (VerdictStale) is one lookup, not a reclassification.
  Verdict v;
  switch (t.type) {
    case MsgType::kTversion:  // resets per-session state only; fid teardown
    case MsgType::kTattach:   // runs handler Clunks, which never mutate
    case MsgType::kTwalk:
    case MsgType::kTclunk:
      v.cls = OpClass::kReadOnly;
      return v;

    case MsgType::kTstat: {
      std::lock_guard<std::mutex> lk(fid_mu_);
      LockOrderScope lo(kLockLevelLeaf);
      CacheFidLocked(t.fid, &v);
      // Stat reads the node's qid version, mtime, and handler length —
      // state a same-window writer mutates — so window-backed fids stat
      // under the shard's reader side.
      v.cls = v.shard != nullptr ? OpClass::kWindowRead : OpClass::kReadOnly;
      return v;
    }

    case MsgType::kTread: {
      std::lock_guard<std::mutex> lk(fid_mu_);
      LockOrderScope lo(kLockLevelLeaf);
      CacheFidLocked(t.fid, &v);
      if (!v.present) {
        v.cls = OpClass::kReadOnly;  // will answer "unknown fid" — read-only
      } else if (v.node->dir()) {
        // Directory reads lazily build this fid's dirbuf snapshot — per-fid
        // state owned by this session's serialized dispatches; the tree
        // itself is only read.
        v.cls = OpClass::kReadOnly;
      } else if (v.shard != nullptr) {
        // Window file: read under the shard's reader side, which holds off
        // same-window writers even when this fid was opened writable.
        v.cls = OpClass::kWindowRead;
      } else {
        v.cls = v.read_only ? OpClass::kReadOnly : OpClass::kStructural;
      }
      return v;
    }

    case MsgType::kTopen: {
      std::lock_guard<std::mutex> lk(fid_mu_);
      LockOrderScope lo(kLockLevelLeaf);
      CacheFidLocked(t.fid, &v);
      bool writes = (t.mode & 3) != kOread || (t.mode & kOtrunc) != 0;
      if (!v.present || v.node->dir()) {
        // Unknown fid or directory: the dispatch answers an error (or a
        // read-only dir open); a writable mode still runs structurally, as
        // it always did — the error path is rare and never contended.
        v.cls = writes ? OpClass::kStructural : OpClass::kReadOnly;
        return v;
      }
      FileHandler* h = v.node->handler();
      if (h != nullptr && h->OpenNeedsExclusive()) {
        v.cls = OpClass::kStructural;  // e.g. new/ctl: Open creates a window
        return v;
      }
      if (v.shard != nullptr) {
        // A truncating or writable open of a window file mutates only that
        // window (kOtrunc runs the handler's truncate at Open time); a
        // read-only open still answers the node's qid, which a same-window
        // writer may be bumping.
        v.cls = writes ? OpClass::kWindowWrite : OpClass::kWindowRead;
        return v;
      }
      v.cls = writes ? OpClass::kStructural : OpClass::kReadOnly;
      return v;
    }

    case MsgType::kTwrite: {
      std::lock_guard<std::mutex> lk(fid_mu_);
      LockOrderScope lo(kLockLevelLeaf);
      CacheFidLocked(t.fid, &v);
      // Writes to an open window file are confined to that window's shard;
      // everything else (regular files, ctl files, error replies) may reach
      // past one window and stays structural.
      v.cls = v.present && v.open && v.shard != nullptr
                  ? OpClass::kWindowWrite
                  : OpClass::kStructural;
      return v;
    }

    default:
      // Tcreate/Tremove, and anything unrecognized, mutate the namespace.
      v.cls = OpClass::kStructural;
      return v;
  }
}

bool Session::VerdictStale(const Verdict& v) const {
  if (v.fid == kNoFid) {
    return false;  // classification depended on no fid state
  }
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  auto it = fids_.find(v.fid);
  if (it == fids_.end()) {
    return v.present;
  }
  const FidState& st = it->second;
  return !v.present || st.node != v.node || (st.open != nullptr) != v.open ||
         st.read_only != v.read_only;
}

uint64_t Session::FidDomain(uint32_t fid) const {
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  auto it = fids_.find(fid);
  return it == fids_.end() || it->second.shard == nullptr
             ? 0
             : it->second.shard->domain;
}

bool Session::ReorderableRead(uint32_t fid) const {
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return true;  // "unknown fid" error reply; touches nothing
  }
  if (it->second.node->dir()) {
    return false;  // dir reads lazily rebuild dirbuf scratch under no lock
  }
  if (it->second.open == nullptr) {
    return true;  // "fid not open" error reply
  }
  return it->second.read_only;
}

bool Session::FidAbsent(uint32_t fid) const {
  std::lock_guard<std::mutex> lk(fid_mu_);
  LockOrderScope lo(kLockLevelLeaf);
  return fids_.count(fid) == 0;
}

bool Session::ReorderOk(const Fcall& t) const {
  switch (t.type) {
    case MsgType::kTstat:
      return true;
    case MsgType::kTread:
      return ReorderableRead(t.fid);
    case MsgType::kTwalk:
      // Only walks that would insert a fresh fid; a rebind (newfid == fid or
      // newfid already bound) destroys the old state — a mutation. A racing
      // reorderable walk on the same newfid is caught at dispatch: the
      // check-and-insert is atomic under fid_mu_, the loser errors out.
      return t.newfid != t.fid && FidAbsent(t.newfid);
    default:
      return false;
  }
}

// fid_mu_ discipline inside Dispatch: the map structure and the fields
// Classify reads (node, open, read_only) are only touched under fid_mu_, and
// fid_mu_ is never held across a Vfs or handler call (those can re-enter the
// server's dispatch lock). Per-fid scratch state Classify never looks at
// (dirbuf) needs no lock: same-session dispatches are serialized.
Fcall Session::Dispatch(const Fcall& t, ReadSink* sink) {
  Fcall r;
  r.tag = t.tag;
  switch (t.type) {
    case MsgType::kTversion: {
      r.type = MsgType::kRversion;
      msize_.store(std::min(std::max(t.msize, kIoHeader + 1), kDefaultMsize),
                   std::memory_order_relaxed);
      r.msize = msize();
      r.version = "9P.help";
      std::map<uint32_t, FidState> doomed;  // version resets the session
      {
        std::lock_guard<std::mutex> lk(fid_mu_);
        LockOrderScope lo(kLockLevelLeaf);
        doomed.swap(fids_);
      }
      attached_ = false;
      // doomed's open files are destroyed on return, after fid_mu_ dropped:
      // their handler Clunks may re-enter the dispatch lock.
      return r;
    }

    case MsgType::kTflush:
      // Normally answered by the server front end without entering the
      // serialized dispatch path; kept here so a bare Session is complete.
      r.type = MsgType::kRflush;
      return r;

    case MsgType::kTattach: {
      std::lock_guard<std::mutex> lk(fid_mu_);
      LockOrderScope lo(kLockLevelLeaf);
      if (fids_.count(t.fid) != 0) {
        return Error(t.tag, "fid in use");
      }
      FidState st;
      st.node = vfs_->root();
      st.shard = ShardOf(st.node);
      fids_[t.fid] = st;
      attached_ = true;
      uname_ = t.uname;
      r.type = MsgType::kRattach;
      r.qid = vfs_->root()->qid();
      return r;
    }

    case MsgType::kTwalk: {
      // When newfid == fid the walk rebinds the fid; the old state (possibly
      // an open file whose Clunk re-enters the dispatch lock) is moved here
      // and destroyed only after fid_mu_ drops.
      FidState replaced;
      // The whole walk runs under fid_mu_: it only reads the tree (no Vfs or
      // handler calls that could re-enter the dispatch lock).
      std::lock_guard<std::mutex> lk(fid_mu_);
      LockOrderScope lo(kLockLevelLeaf);
      auto it = fids_.find(t.fid);
      if (it == fids_.end()) {
        return Error(t.tag, "unknown fid");
      }
      if (t.newfid != t.fid && fids_.count(t.newfid) != 0) {
        return Error(t.tag, "newfid in use");
      }
      NodePtr cur = it->second.node;
      r.type = MsgType::kRwalk;
      for (const std::string& name : t.wname) {
        NodePtr next;
        if (name == "..") {
          next = cur->parent() != nullptr ? cur->parent()->shared_from_this() : cur;
        } else {
          if (!cur->dir()) {
            break;
          }
          next = cur->Child(name);
        }
        if (next == nullptr) {
          break;
        }
        cur = next;
        r.wqid.push_back(cur->qid());
      }
      if (r.wqid.size() != t.wname.size()) {
        if (r.wqid.empty() && !t.wname.empty()) {
          return Error(t.tag, t.wname[0] + ": file does not exist");
        }
        return r;  // partial walk; newfid not created
      }
      FidState st;
      st.node = cur;
      // Route the window id out of the walk: resolving the shard here, at
      // fid-bind time, is what lets the dispatch layer know its lock target
      // before taking any lock.
      st.shard = ShardOf(cur);
      auto nit = fids_.find(t.newfid);
      if (nit != fids_.end()) {
        replaced = std::move(nit->second);  // newfid == fid: rebind
        nit->second = st;
      } else {
        fids_[t.newfid] = st;
      }
      return r;
    }

    case MsgType::kTopen: {
      FidState* st = FindFid(t.fid);
      if (st == nullptr) {
        return Error(t.tag, "unknown fid");
      }
      if (st->open != nullptr) {
        return Error(t.tag, "fid already open");
      }
      if (st->node->dir()) {
        if ((t.mode & 3) != kOread) {
          return Error(t.tag, st->node->name() + ": is a directory");
        }
      } else {
        // Vfs::Open runs the handler's Open, which may re-enter the dispatch
        // lock — so it runs outside fid_mu_.
        auto f = vfs_->Open(Vfs::FullPath(*st->node), t.mode);
        if (!f.ok()) {
          return Error(t.tag, f.message());
        }
        std::lock_guard<std::mutex> lk(fid_mu_);
        LockOrderScope lo(kLockLevelLeaf);
        st->open = f.take();
        st->read_only = (t.mode & 3) == kOread && (t.mode & kOtrunc) == 0;
      }
      r.type = MsgType::kRopen;
      r.qid = st->node->qid();
      r.iounit = msize() - kIoHeader;
      return r;
    }

    case MsgType::kTcreate: {
      FidState* st = FindFid(t.fid);
      if (st == nullptr) {
        return Error(t.tag, "unknown fid");
      }
      if (!st->node->dir()) {
        return Error(t.tag, "create in non-directory");
      }
      bool dir = (t.perm & kDirPerm) != 0;
      std::string path = JoinPath(Vfs::FullPath(*st->node), t.name);
      auto created = vfs_->Create(path, dir);
      if (!created.ok()) {
        return Error(t.tag, created.message());
      }
      {
        std::lock_guard<std::mutex> lk(fid_mu_);
        LockOrderScope lo(kLockLevelLeaf);
        st->node = created.value();
        st->shard = ShardOf(st->node);
        st->read_only = false;
      }
      if (!dir) {
        auto f = vfs_->Open(path, t.mode);
        if (!f.ok()) {
          return Error(t.tag, f.message());
        }
        std::lock_guard<std::mutex> lk(fid_mu_);
        LockOrderScope lo(kLockLevelLeaf);
        st->open = f.take();
      }
      r.type = MsgType::kRcreate;
      r.qid = st->node->qid();
      r.iounit = msize() - kIoHeader;
      return r;
    }

    case MsgType::kTread: {
      FidState* stp = FindFid(t.fid);
      if (stp == nullptr) {
        return Error(t.tag, "unknown fid");
      }
      FidState& st = *stp;
      uint32_t count = std::min(t.count, msize() - kIoHeader);
      if (st.node->dir()) {
        if (!st.dirbuf_valid) {
          st.dirbuf.clear();
          for (const StatInfo& s : Vfs::ListDir(*st.node)) {
            st.dirbuf += EncodeDirEntry(s);
          }
          st.dirbuf_valid = true;
        }
        r.type = MsgType::kRread;
        if (t.offset < st.dirbuf.size()) {
          // Clamp to whole entries would be proper 9P; our decoder tolerates
          // any split because reads are sequential and clients reassemble.
          r.data = st.dirbuf.substr(t.offset, count);
        }
        return r;
      }
      if (st.open == nullptr) {
        return Error(t.tag, "fid not open");
      }
      if (sink != nullptr) {
        GatherView gv;
        if (st.open->Gather(t.offset, count, &gv)) {
          // Encode the reply packet straight from the borrowed views: header,
          // then one transcode/copy of the payload into the wire bytes. The
          // spans alias live storage, so validate after consuming them; a
          // failed validation discards the frame and falls through to the
          // staged path (whose own validation escalates persistent races to
          // the exclusive retry).
          AppendRreadHeader(t.tag, static_cast<uint32_t>(gv.bytes),
                            &sink->frame);
          sink->frame += gv.prefix;
          if (!gv.raw.empty()) {
            sink->frame.append(gv.raw);
          } else {
            AppendUtf8FromRunes(gv.runes, &sink->frame);
          }
          sink->frame += gv.suffix;
          if (gv.Validate()) {
            sink->used = true;
            sink->zero_copy = true;
            sink->payload_bytes = gv.bytes;
            r.type = MsgType::kRread;
            return r;
          }
          sink->frame.clear();
        }
        auto data = st.open->Read(t.offset, count);
        if (!data.ok()) {
          return Error(t.tag, data.message());
        }
        AppendRreadHeader(t.tag, static_cast<uint32_t>(data.value().size()),
                          &sink->frame);
        sink->frame += data.value();
        sink->used = true;
        sink->payload_bytes = data.value().size();
        r.type = MsgType::kRread;
        return r;
      }
      auto data = st.open->Read(t.offset, count);
      if (!data.ok()) {
        return Error(t.tag, data.message());
      }
      r.type = MsgType::kRread;
      r.data = data.take();
      return r;
    }

    case MsgType::kTwrite: {
      FidState* st = FindFid(t.fid);
      if (st == nullptr) {
        return Error(t.tag, "unknown fid");
      }
      if (st->open == nullptr) {
        return Error(t.tag, "fid not open");
      }
      auto n = st->open->Write(t.offset, t.data);
      if (!n.ok()) {
        return Error(t.tag, n.message());
      }
      r.type = MsgType::kRwrite;
      r.count = n.value();
      return r;
    }

    case MsgType::kTclunk: {
      FidState doomed;
      {
        std::lock_guard<std::mutex> lk(fid_mu_);
        LockOrderScope lo(kLockLevelLeaf);
        auto it = fids_.find(t.fid);
        if (it == fids_.end()) {
          return Error(t.tag, "unknown fid");
        }
        doomed = std::move(it->second);
        fids_.erase(it);
      }
      r.type = MsgType::kRclunk;
      // doomed's open file (if any) is destroyed on return, outside fid_mu_:
      // its handler Clunk may re-enter the dispatch lock.
      return r;
    }

    case MsgType::kTremove: {
      FidState doomed;  // remove always clunks
      {
        std::lock_guard<std::mutex> lk(fid_mu_);
        LockOrderScope lo(kLockLevelLeaf);
        auto it = fids_.find(t.fid);
        if (it == fids_.end()) {
          return Error(t.tag, "unknown fid");
        }
        doomed = std::move(it->second);
        fids_.erase(it);
      }
      std::string path = Vfs::FullPath(*doomed.node);
      Status s = vfs_->Remove(path);
      if (!s.ok()) {
        return Error(t.tag, s.message());
      }
      r.type = MsgType::kRremove;
      return r;
    }

    case MsgType::kTstat: {
      const FidState* st = FindFid(t.fid);
      if (st == nullptr) {
        return Error(t.tag, "unknown fid");
      }
      r.type = MsgType::kRstat;
      r.stat = Vfs::StatOf(*st->node);
      return r;
    }

    default:
      return Error(t.tag, "ninep: not a T-message");
  }
}

// ---------------------------------------------------------------------------
// Client.

Result<Fcall> NinepClient::Rpc(Fcall t) {
  t.tag = next_tag_++;
  if (next_tag_ == kNoTag) {
    next_tag_ = 1;
  }
  rpcs_++;
  std::string reply = transport_(EncodeFcall(t));
  auto r = DecodeFcall(reply);
  if (!r.ok()) {
    return r.status();
  }
  // The reply must answer the request just issued. The in-process transport
  // echoes the tag by construction, but a socket peer can send anything —
  // accepting a stray R-message here would hand one request another's data.
  if (r.value().tag != t.tag) {
    return Status::Error(
        StrFormat("ninep: reply tag %u was never issued", r.value().tag));
  }
  if (r.value().type == MsgType::kRerror) {
    return Status::Error(r.value().ename);
  }
  return r;
}

Status NinepClient::Connect(std::string_view uname) {
  Fcall tv;
  tv.type = MsgType::kTversion;
  tv.msize = kDefaultMsize;
  tv.version = "9P.help";
  auto rv = Rpc(tv);
  if (!rv.ok()) {
    return rv.status();
  }
  Fcall ta;
  ta.type = MsgType::kTattach;
  ta.fid = 0;
  ta.uname = std::string(uname);
  auto ra = Rpc(ta);
  if (!ra.ok()) {
    return ra.status();
  }
  root_fid_ = 0;
  next_fid_ = 1;
  return Status::Ok();
}

Result<uint32_t> NinepClient::WalkFid(std::string_view path) {
  Fcall t;
  t.type = MsgType::kTwalk;
  t.fid = root_fid_;
  t.newfid = NextFid();
  t.wname = PathElements(path);
  auto r = Rpc(t);
  if (!r.ok()) {
    return r.status();
  }
  if (r.value().wqid.size() != t.wname.size()) {
    return ErrNotExist(path);
  }
  return t.newfid;
}

Status NinepClient::OpenFid(uint32_t fid, uint8_t mode) {
  Fcall t;
  t.type = MsgType::kTopen;
  t.fid = fid;
  t.mode = mode;
  return Rpc(t).status();
}

Result<std::string> NinepClient::ReadFid(uint32_t fid, uint64_t offset, uint32_t count) {
  Fcall t;
  t.type = MsgType::kTread;
  t.fid = fid;
  t.offset = offset;
  t.count = count;
  auto r = Rpc(t);
  if (!r.ok()) {
    return r.status();
  }
  return r.value().data;
}

Result<uint32_t> NinepClient::WriteFid(uint32_t fid, uint64_t offset, std::string_view data) {
  Fcall t;
  t.type = MsgType::kTwrite;
  t.fid = fid;
  t.offset = offset;
  t.data = std::string(data);
  auto r = Rpc(t);
  if (!r.ok()) {
    return r.status();
  }
  return r.value().count;
}

Status NinepClient::Clunk(uint32_t fid) {
  Fcall t;
  t.type = MsgType::kTclunk;
  t.fid = fid;
  return Rpc(t).status();
}

Status NinepClient::Flush(uint16_t oldtag) {
  Fcall t;
  t.type = MsgType::kTflush;
  t.oldtag = oldtag;
  return Rpc(t).status();
}

Result<std::vector<std::string>> NinepClient::ReadFidPipelined(
    uint32_t fid, const std::vector<ReadRange>& ranges, int window) {
  std::vector<std::string> out(ranges.size());
  if (!pipe_.send || !pipe_.recv) {
    for (size_t i = 0; i < ranges.size(); i++) {
      auto r = ReadFid(fid, ranges[i].offset, ranges[i].count);
      if (!r.ok()) {
        return r.status();
      }
      out[i] = r.take();
    }
    return out;
  }
  if (window < 1) {
    window = 1;
  }
  std::map<uint16_t, size_t> pending;  // in-flight tag -> result slot
  size_t next = 0;
  while (next < ranges.size() || !pending.empty()) {
    while (next < ranges.size() && pending.size() < static_cast<size_t>(window)) {
      Fcall t;
      t.type = MsgType::kTread;
      t.fid = fid;
      t.offset = ranges[next].offset;
      t.count = ranges[next].count;
      t.tag = next_tag_++;
      if (next_tag_ == kNoTag) {
        next_tag_ = 1;
      }
      rpcs_++;
      Status s = pipe_.send(EncodeFcall(t));
      if (!s.ok()) {
        return s;
      }
      pending[t.tag] = next++;
    }
    auto packet = pipe_.recv();
    if (!packet.ok()) {
      return packet.status();
    }
    auto rr = DecodeFcall(packet.value());
    if (!rr.ok()) {
      return rr.status();
    }
    Fcall rc = rr.take();
    auto it = pending.find(rc.tag);
    if (it == pending.end()) {
      // Same hostile-peer check as the lockstep Rpc: an unknown (or
      // double-answered) tag means the peer is off the rails.
      return Status::Error(
          StrFormat("ninep: reply tag %u was never issued", rc.tag));
    }
    size_t slot = it->second;
    pending.erase(it);
    if (rc.type == MsgType::kRerror) {
      return Status::Error(rc.ename);
    }
    if (rc.type != MsgType::kRread) {
      return Status::Error("ninep: Tread answered by a non-Rread");
    }
    out[slot] = std::move(rc.data);
  }
  return out;
}

Status NinepClient::RemoveFid(uint32_t fid) {
  Fcall t;
  t.type = MsgType::kTremove;
  t.fid = fid;
  return Rpc(t).status();
}

Result<StatInfo> NinepClient::StatFid(uint32_t fid) {
  Fcall t;
  t.type = MsgType::kTstat;
  t.fid = fid;
  auto r = Rpc(t);
  if (!r.ok()) {
    return r.status();
  }
  return r.value().stat;
}

Result<std::string> NinepClient::ReadFile(std::string_view path) {
  auto fid = WalkFid(path);
  if (!fid.ok()) {
    return fid.status();
  }
  Status s = OpenFid(fid.value(), kOread);
  if (!s.ok()) {
    Clunk(fid.value());
    return s;
  }
  std::string out;
  uint64_t off = 0;
  while (true) {
    auto chunk = ReadFid(fid.value(), off, kDefaultMsize - 24);
    if (!chunk.ok()) {
      Clunk(fid.value());
      return chunk.status();
    }
    if (chunk.value().empty()) {
      break;
    }
    off += chunk.value().size();
    out += chunk.take();
  }
  Clunk(fid.value());
  return out;
}

Status NinepClient::WriteFile(std::string_view path, std::string_view data) {
  auto fid = WalkFid(path);
  if (!fid.ok()) {
    // Create it.
    Status cs = Create(path, /*dir=*/false);
    if (!cs.ok()) {
      return cs;
    }
    fid = WalkFid(path);
    if (!fid.ok()) {
      return fid.status();
    }
  }
  Status s = OpenFid(fid.value(), kOwrite | kOtrunc);
  if (!s.ok()) {
    Clunk(fid.value());
    return s;
  }
  uint64_t off = 0;
  while (off < data.size()) {
    uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(data.size() - off, kDefaultMsize - 24));
    auto w = WriteFid(fid.value(), off, data.substr(off, n));
    if (!w.ok()) {
      Clunk(fid.value());
      return w.status();
    }
    off += w.value();
  }
  return Clunk(fid.value());
}

Status NinepClient::AppendFile(std::string_view path, std::string_view data) {
  auto fid = WalkFid(path);
  if (!fid.ok()) {
    return WriteFile(path, data);
  }
  auto st = StatFid(fid.value());
  if (!st.ok()) {
    Clunk(fid.value());
    return st.status();
  }
  Status s = OpenFid(fid.value(), kOwrite);
  if (!s.ok()) {
    Clunk(fid.value());
    return s;
  }
  auto w = WriteFid(fid.value(), st.value().length, data);
  Status ws = w.status();
  Status cs = Clunk(fid.value());
  return ws.ok() ? cs : ws;
}

Result<std::vector<StatInfo>> NinepClient::ReadDir(std::string_view path) {
  auto fid = WalkFid(path);
  if (!fid.ok()) {
    return fid.status();
  }
  Status s = OpenFid(fid.value(), kOread);
  if (!s.ok()) {
    Clunk(fid.value());
    return s;
  }
  std::string blob;
  uint64_t off = 0;
  while (true) {
    auto chunk = ReadFid(fid.value(), off, kDefaultMsize - 24);
    if (!chunk.ok()) {
      Clunk(fid.value());
      return chunk.status();
    }
    if (chunk.value().empty()) {
      break;
    }
    off += chunk.value().size();
    blob += chunk.take();
  }
  Clunk(fid.value());
  return DecodeDirEntries(blob);
}

Status NinepClient::Create(std::string_view path, bool dir) {
  auto fid = WalkFid(DirPath(path));
  if (!fid.ok()) {
    return fid.status();
  }
  Fcall t;
  t.type = MsgType::kTcreate;
  t.fid = fid.value();
  t.name = BasePath(path);
  t.perm = dir ? kDirPerm : 0;
  t.mode = dir ? kOread : kOwrite;
  auto r = Rpc(t);
  Status rs = r.status();
  Status cs = Clunk(fid.value());
  return rs.ok() ? cs : rs;
}

Status NinepClient::Remove(std::string_view path) {
  auto fid = WalkFid(path);
  if (!fid.ok()) {
    return fid.status();
  }
  return RemoveFid(fid.value());
}

Result<StatInfo> NinepClient::Stat(std::string_view path) {
  auto fid = WalkFid(path);
  if (!fid.ok()) {
    return fid.status();
  }
  auto st = StatFid(fid.value());
  Clunk(fid.value());
  return st;
}

}  // namespace help
