#include "src/fs/server.h"

#include <chrono>
#include <optional>

#include "src/fs/lockorder.h"
#include "src/obs/trace.h"

namespace help {

namespace {

// Which server the calling thread currently holds the dispatch lock of, and
// in which mode. One entry suffices even when a handler serializes against a
// *different* server mid-dispatch (SerializedHandler taking Help's own
// server's LockDispatch while the bytes arrived through another NinepServer
// over the same Vfs): the inner guard saves the outer holder and restores it
// on release.
struct TlsHolder {
  const NinepServer* srv = nullptr;
  NinepServer::LockMode mode = NinepServer::LockMode::kNone;
};
thread_local TlsHolder tls_holder;

// The RequestObs of the request this thread is currently dispatching, set by
// HandleBytes around Process so Acquire and DispatchUnderLock can attribute
// lock-wait and handler time to it without threading a parameter through the
// dispatch chain. Null on the in-process transports and the UI thread.
thread_local RequestObs* tls_req_obs = nullptr;

}  // namespace

NinepServer::NinepServer(Vfs* vfs) : vfs_(vfs) {}

NinepServer::~NinepServer() = default;

std::shared_ptr<Session> NinepServer::FindSession(SessionId id) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

NinepServer::SessionId NinepServer::OpenSession() {
  std::lock_guard<std::mutex> lk(state_mu_);
  SessionId id = next_session_++;
  sessions_[id] = std::make_shared<Session>(vfs_, id);
  return id;
}

void NinepServer::CloseSession(SessionId id) {
  // Take the dispatch lock exclusively so a session is never erased while a
  // worker is mid-dispatch on it (every dispatch holds at least shared mode).
  DispatchGuard dl = Acquire(LockMode::kExclusive);
  std::shared_ptr<Session> doomed;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      doomed = std::move(it->second);
      sessions_.erase(it);
    }
    if (default_session_ == id) {
      default_session_ = 0;
    }
  }
  // doomed dies here — outside state_mu_ but still under the exclusive
  // dispatch lock, so handler Clunks for its open fids re-enter cleanly.
  doomed.reset();
}

size_t NinepServer::session_count() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return sessions_.size();
}

size_t NinepServer::open_fids(SessionId id) const {
  std::shared_ptr<Session> s = FindSession(id);
  return s == nullptr ? 0 : s->open_fids();
}

uint32_t NinepServer::session_msize(SessionId id) const {
  std::shared_ptr<Session> s = FindSession(id);
  return s == nullptr ? 0 : s->msize();
}

size_t NinepServer::open_fids() const {
  SessionId id;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    id = default_session_;
  }
  return open_fids(id);
}

bool NinepServer::TagInFlight(SessionId id, uint16_t tag) const {
  std::shared_ptr<Session> s = FindSession(id);
  return s != nullptr && s->TagInFlight(tag);
}

void NinepServer::DispatchGuard::Release() {
  if (srv_ == nullptr) {
    return;
  }
  tls_holder = TlsHolder{prev_srv_, prev_mode_};
  LockOrderReleased();
  if (mode_ == LockMode::kExclusive) {
    srv_->dispatch_mu_.unlock();
  } else {
    srv_->dispatch_mu_.unlock_shared();
  }
  srv_ = nullptr;
  mode_ = LockMode::kNone;
  prev_srv_ = nullptr;
  prev_mode_ = LockMode::kNone;
}

NinepServer::DispatchGuard NinepServer::Acquire(LockMode mode) {
  if (tls_holder.srv == this) {
    // Re-entry: a handler invoked from a dispatch already holding the lock.
    // Nothing to acquire — and nothing to release when the guard dies. The
    // classification layer guarantees a mutating handler is never reached
    // from a shared-mode dispatch, so inheriting the outer mode is sound.
    return DispatchGuard();
  }
  // Entering a different server's hierarchy mid-dispatch starts a new
  // lock-order frame (lockorder.h): the two servers' locks are independent
  // hierarchies, and the outer holder is restored when this guard releases.
  const TlsHolder prev = tls_holder;
  const bool nested = prev.srv != nullptr;
  auto start = std::chrono::steady_clock::now();
  if (mode == LockMode::kExclusive) {
    dispatch_mu_.lock();
    metrics_.RecordEpochExclusive();
  } else {
    dispatch_mu_.lock_shared();
  }
  LockOrderAcquired(kLockLevelEpoch, nested);
  auto wait_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  metrics_.RecordLockWait(wait_ns / 1000);
  if (tls_req_obs != nullptr) {
    tls_req_obs->lock_wait_ns += wait_ns;
    obs::Tracer& tr = obs::Tracer::Global();
    if (tls_req_obs->rid != 0 && tr.enabled()) {
      tr.EmitAt(obs::EventKind::kComplete, "req.lock", wait_ns,
                tls_req_obs->rid, tr.NowNs() - wait_ns);
    }
  }
  tls_holder = TlsHolder{this, mode};
  return DispatchGuard(this, mode, prev.srv, prev.mode);
}

NinepServer::DispatchGuard NinepServer::LockDispatch() {
  return Acquire(LockMode::kExclusive);
}

bool NinepServer::SharedDispatchOnThisThread() const {
  return tls_holder.srv == this && tls_holder.mode == LockMode::kShared;
}

void NinepServer::Deshard(const Fcall& t, Session::Verdict* v) {
  using OpClass = Session::OpClass;
  if (v->cls == OpClass::kWindowWrite) {
    v->cls = OpClass::kStructural;
  } else if (v->cls == OpClass::kWindowRead) {
    // PR 4 ran reads of writable fids exclusively; stats and read-only-fid
    // reads shared.
    v->cls = t.type == MsgType::kTread && !v->read_only ? OpClass::kStructural
                                                        : OpClass::kReadOnly;
  }
  v->shard.reset();
}

Fcall NinepServer::DispatchUnderLock(const std::shared_ptr<Session>& s,
                                     SessionId id, const Fcall& t,
                                     ReadSink* sink) {
  using OpClass = Session::OpClass;
  bool force = force_exclusive_.load(std::memory_order_relaxed);
  Session::Verdict v;  // defaults to kStructural — what force wants
  if (!force) {
    v = s->Classify(t);
    if (disable_sharding_.load(std::memory_order_relaxed)) {
      Deshard(t, &v);
    }
  }
  // Whether this request may hold the session lock shared and complete out
  // of order with its same-session neighbors (fences hold it exclusively).
  bool reorder = !force && v.cls != OpClass::kStructural && s->ReorderOk(t);
  while (true) {
    Fcall r;
    bool stale = false;
    {
      LockMode mode = v.cls == OpClass::kStructural ? LockMode::kExclusive
                                                    : LockMode::kShared;
      DispatchGuard dl = Acquire(mode);
      // The session may have been closed while this request waited; the
      // membership check is stable for the rest of the dispatch because
      // CloseSession needs the exclusive lock and we hold at least shared.
      if (FindSession(id) == nullptr) {
        return ErrorFcall(t.tag, "unknown session");
      }
      // The window shard: reader side for window reads, writer side for
      // window writes. The wait is the shard-contention signal
      // (lock.shard_wait_us); structural dispatches never get here.
      std::shared_lock<std::shared_mutex> shard_r;
      std::unique_lock<std::shared_mutex> shard_w;
      std::optional<LockOrderScope> lo_shard;
      if (v.cls == OpClass::kWindowRead || v.cls == OpClass::kWindowWrite) {
        // Fast path: an uncontended shard costs one try_lock, no clock reads.
        // Only a blocked acquire is timed — the wait IS the contention signal.
        uint64_t wait_us = 0;
        if (v.cls == OpClass::kWindowRead) {
          if (v.shard->mu.try_lock_shared()) {
            shard_r = std::shared_lock<std::shared_mutex>(v.shard->mu,
                                                          std::adopt_lock);
          } else {
            auto w0 = std::chrono::steady_clock::now();
            shard_r = std::shared_lock<std::shared_mutex>(v.shard->mu);
            wait_us = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - w0)
                    .count());
          }
        } else {
          if (v.shard->mu.try_lock()) {
            shard_w = std::unique_lock<std::shared_mutex>(v.shard->mu,
                                                          std::adopt_lock);
          } else {
            auto w0 = std::chrono::steady_clock::now();
            shard_w = std::unique_lock<std::shared_mutex>(v.shard->mu);
            wait_us = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - w0)
                    .count());
          }
        }
        lo_shard.emplace(kLockLevelShard);
        metrics_.RecordWindowAcquire();
        metrics_.RecordShardWait(wait_us);
      }
      // Order against this session's other in-flight requests: shared for
      // reorderable read-only requests and sharded window writes (the shard
      // already serializes same-window writes, and cross-window write
      // parallelism within one connection is the point of sharding),
      // exclusive for fences. The flush check sits under this lock — the
      // blocking point — so a Tflush issued while we queued here still
      // cancels us.
      bool shared_session =
          reorder ||
          (v.cls == OpClass::kWindowWrite && t.type == MsgType::kTwrite);
      std::shared_lock<std::shared_mutex> ssl(s->dispatch_mu(),
                                              std::defer_lock);
      std::unique_lock<std::shared_mutex> usl(s->dispatch_mu(),
                                              std::defer_lock);
      if (shared_session) {
        ssl.lock();
      } else {
        usl.lock();
      }
      LockOrderScope lo_session(kLockLevelSession);
      if (s->ConsumeFlushed(t.tag)) {
        metrics_.RecordFlushCancel();
        OBS_INSTANT("ninep.flush_cancel", t.tag);
        return ErrorFcall(t.tag, "interrupted");
      }
      // Classification ran before this session's earlier in-flight requests
      // finished, so it may be stale (e.g. a pipelined Twalk + Topen of
      // new/ctl: the fid didn't exist at classification time). One cheap
      // fid-table lookup against the verdict's cached parse decides — no
      // reclassification walk; fid mutators are fences, so the answer is
      // stable while we hold the session lock. A stale verdict re-runs on
      // the structural path rather than mutating under the wrong lock.
      if (v.cls != OpClass::kStructural && s->VerdictStale(v)) {
        stale = true;
      } else {
        OBS_SPAN("ninep.dispatch");
        if (tls_req_obs != nullptr) {
          obs::Tracer& tr = obs::Tracer::Global();
          uint64_t h0 = tr.NowNs();
          r = s->Dispatch(t, sink);
          uint64_t dur = tr.NowNs() - h0;
          tls_req_obs->handler_ns += dur;
          if (tls_req_obs->rid != 0 && tr.enabled()) {
            tr.EmitAt(obs::EventKind::kComplete, "req.handler", dur,
                      tls_req_obs->rid, h0);
          }
        } else {
          r = s->Dispatch(t, sink);
        }
      }
    }
    if (stale) {
      v = Session::Verdict();  // escalate: structural is always sufficient
      reorder = false;
      continue;
    }
    if (v.cls == OpClass::kReadOnly || v.cls == OpClass::kWindowRead) {
      metrics_.RecordSharedRead();
      if (r.type == MsgType::kRerror && r.ename == kSharedReadRaced) {
        // A shared-mode read observed a concurrent edit (seqlock mismatch).
        // With window reads holding their shard this cannot happen through
        // the 9P path — the validation stays as defense-in-depth against
        // writers that bypass the lock discipline. Re-run fully serialized;
        // the sentinel never reaches the client.
        metrics_.RecordReadRetry();
        OBS_INSTANT("ninep.read.retry", t.tag);
        v = Session::Verdict();
        reorder = false;
        continue;
      }
    }
    return r;
  }
}

Fcall NinepServer::Process(SessionId id, const Fcall& t, ReadSink* sink) {
  // Tag bookkeeping and Tflush run against the session's tag table only —
  // never under any dispatch lock — so a client can cancel or be rejected
  // while another request is executing.
  std::shared_ptr<Session> s = FindSession(id);
  if (s == nullptr) {
    return ErrorFcall(t.tag, "unknown session");
  }
  if (t.type == MsgType::kTflush) {
    s->FlushTag(t.oldtag);
    Fcall r;
    r.type = MsgType::kRflush;
    r.tag = t.tag;
    return r;
  }
  if (!s->BeginTag(t.tag)) {
    return ErrorFcall(t.tag, "duplicate tag");
  }
  Fcall r = DispatchUnderLock(s, id, t, sink);
  s->EndTag(t.tag);
  return r;
}

NinepServer::SessionId NinepServer::EnsureDefaultSession() {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (default_session_ == 0) {
    default_session_ = next_session_++;
    sessions_[default_session_] =
        std::make_shared<Session>(vfs_, default_session_);
  }
  return default_session_;
}

Fcall NinepServer::Dispatch(const Fcall& t) {
  SessionId id = EnsureDefaultSession();
  metrics_.BeginRequest();
  auto start = std::chrono::steady_clock::now();
  Fcall r = Process(id, t);
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  metrics_.RecordOp(OpOfMsgType(t.type), static_cast<uint64_t>(us),
                    r.type == MsgType::kRerror);
  metrics_.EndRequest();
  return r;
}

std::string NinepServer::HandleBytes(SessionId id, std::string_view packet) {
  return HandleBytes(id, packet, nullptr);
}

std::string NinepServer::HandleBytes(SessionId id, std::string_view packet,
                                     RequestObs* obs) {
  ReplyFrame rf;
  HandleBytes(id, packet, obs, &rf);
  return std::move(rf.bytes);
}

void NinepServer::HandleBytes(SessionId id, std::string_view packet,
                              RequestObs* obs, ReplyFrame* out) {
  metrics_.AddBytesIn(packet.size());
  metrics_.BeginRequest();
  auto start = std::chrono::steady_clock::now();
  Fcall r;
  NinepOp op = NinepOp::kBad;
  ReadSink sink;
  ReadSink* sp =
      disable_zero_copy_.load(std::memory_order_relaxed) ? nullptr : &sink;
  auto t = [&] {
    OBS_SPAN("ninep.decode");
    return DecodeFcall(packet);
  }();
  if (!t.ok()) {
    r = ErrorFcall(kNoTag, t.message());
  } else {
    op = OpOfMsgType(t.value().type);
    if (obs != nullptr) {
      obs->op = op;
      tls_req_obs = obs;
    }
    r = Process(id, t.value(), sp);
    tls_req_obs = nullptr;
  }
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  metrics_.RecordOp(op, static_cast<uint64_t>(us), r.type == MsgType::kRerror);
  metrics_.EndRequest();
  if (obs != nullptr) {
    obs->error = r.type == MsgType::kRerror;
  }
  // Encode phase. A used sink already holds the complete reply packet — its
  // payload was written once, inside the dispatch, straight from the file's
  // storage — so "encode" is just adoption; the phase event still fires to
  // keep every rid's chain complete.
  obs::Tracer& tr = obs::Tracer::Global();
  uint64_t e0 = (obs != nullptr) ? tr.NowNs() : 0;
  if (sink.used) {
    out->bytes = std::move(sink.frame);
    out->zero_copy = sink.zero_copy;
    out->payload_bytes = sink.payload_bytes;
    if (sink.zero_copy) {
      metrics_.AddBytesZeroCopy(sink.payload_bytes);
    } else {
      metrics_.AddBytesStaged(sink.payload_bytes);
    }
  } else {
    OBS_SPAN("ninep.encode");
    out->bytes = EncodeFcall(r);
    out->zero_copy = false;
    out->payload_bytes = r.type == MsgType::kRread ? r.data.size() : 0;
    if (r.type == MsgType::kRread) {
      metrics_.AddBytesStaged(r.data.size());
    }
  }
  if (obs != nullptr) {
    obs->encode_ns = tr.NowNs() - e0;
    if (obs->rid != 0 && tr.enabled()) {
      tr.EmitAt(obs::EventKind::kComplete, "req.encode", obs->encode_ns,
                obs->rid, e0);
    }
  }
  metrics_.AddBytesOut(out->bytes.size());
}

std::string NinepServer::HandleBytes(std::string_view packet) {
  return HandleBytes(EnsureDefaultSession(), packet);
}

void NinepServer::HandleWriteBatch(SessionId id,
                                   const std::vector<std::string_view>& packets,
                                   const std::vector<RequestObs*>& obs,
                                   std::vector<ReplyFrame>* replies) {
  replies->clear();
  replies->resize(packets.size());
  std::shared_ptr<Session> s = FindSession(id);
  // Decode outside the locks; undecodable packets answer immediately.
  std::vector<Fcall> ts(packets.size());
  std::vector<bool> bad(packets.size(), false);
  for (size_t i = 0; i < packets.size(); i++) {
    metrics_.AddBytesIn(packets[i].size());
    auto d = [&] {
      OBS_SPAN("ninep.decode");
      return DecodeFcall(packets[i]);
    }();
    if (!d.ok()) {
      bad[i] = true;
      (*replies)[i].bytes = EncodeFcall(ErrorFcall(kNoTag, d.message()));
      metrics_.RecordOp(NinepOp::kBad, 0, true);
      metrics_.AddBytesOut((*replies)[i].bytes.size());
      if (obs[i] != nullptr) {
        obs[i]->error = true;
      }
    } else {
      ts[i] = d.take();
    }
  }
  // One lock acquisition for the run. The listener only coalesces same-fid
  // write runs, so the first decodable request's verdict covers every rider:
  // a window write takes the epoch lock shared + that window's shard
  // exclusive + the session lock shared, letting batches aimed at different
  // windows flow in parallel. Anything else keeps the serialized path —
  // epoch and session both exclusive. The first request owns the real lock
  // wait (Acquire attributes it through tls_req_obs); riders get
  // zero-duration req.lock events below so each rid's phase chain stays
  // complete.
  Session::Verdict v;  // defaults to kStructural
  if (s != nullptr && !force_exclusive_.load(std::memory_order_relaxed) &&
      !disable_sharding_.load(std::memory_order_relaxed)) {
    for (size_t i = 0; i < packets.size(); i++) {
      if (!bad[i]) {
        Session::Verdict first = s->Classify(ts[i]);
        if (first.cls == Session::OpClass::kWindowWrite) {
          v = first;
        }
        break;
      }
    }
  }
  while (true) {
    const bool windowed = v.cls == Session::OpClass::kWindowWrite;
    tls_req_obs = obs.empty() ? nullptr : obs[0];
    DispatchGuard dl =
        Acquire(windowed ? LockMode::kShared : LockMode::kExclusive);
    tls_req_obs = nullptr;
    const bool session_ok = s != nullptr && FindSession(id) != nullptr;
    std::unique_lock<std::shared_mutex> shard_w;
    std::optional<LockOrderScope> lo_shard;
    if (windowed) {
      // Same uncontended fast path as DispatchUnderLock: time the acquire
      // only when it actually blocks.
      uint64_t wait_us = 0;
      if (v.shard->mu.try_lock()) {
        shard_w =
            std::unique_lock<std::shared_mutex>(v.shard->mu, std::adopt_lock);
      } else {
        auto w0 = std::chrono::steady_clock::now();
        shard_w = std::unique_lock<std::shared_mutex>(v.shard->mu);
        wait_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - w0)
                .count());
      }
      lo_shard.emplace(kLockLevelShard);
      metrics_.RecordWindowAcquire();
      metrics_.RecordShardWait(wait_us);
    }
    std::shared_lock<std::shared_mutex> ssl;
    std::unique_lock<std::shared_mutex> usl;
    std::optional<LockOrderScope> lo_session;
    if (session_ok) {
      if (windowed) {
        ssl = std::shared_lock<std::shared_mutex>(s->dispatch_mu());
      } else {
        usl = std::unique_lock<std::shared_mutex>(s->dispatch_mu());
      }
      lo_session.emplace(kLockLevelSession);
    }
    // The verdict was resolved before earlier in-flight requests finished;
    // if the fid's binding changed since, re-run the whole batch on the
    // structural path (always sufficient). No replies have been written yet
    // for good packets, so the retry is invisible to the client.
    if (windowed && session_ok && s->VerdictStale(v)) {
      v = Session::Verdict();
      continue;
    }
    DispatchBatchLocked(s, session_ok, packets, ts, bad, obs, replies);
    return;
  }
}

void NinepServer::DispatchBatchLocked(
    const std::shared_ptr<Session>& s, bool session_ok,
    const std::vector<std::string_view>& packets, const std::vector<Fcall>& ts,
    const std::vector<bool>& bad, const std::vector<RequestObs*>& obs,
    std::vector<ReplyFrame>* replies) {
  obs::Tracer& tr = obs::Tracer::Global();
  for (size_t i = 0; i < packets.size(); i++) {
    if (bad[i]) {
      continue;
    }
    const Fcall& t = ts[i];
    RequestObs* ro = obs[i];
    metrics_.BeginRequest();
    auto start = std::chrono::steady_clock::now();
    Fcall r;
    if (!session_ok) {
      r = ErrorFcall(t.tag, "unknown session");
    } else if (t.type == MsgType::kTflush) {
      s->FlushTag(t.oldtag);
      r.type = MsgType::kRflush;
      r.tag = t.tag;
    } else if (!s->BeginTag(t.tag)) {
      r = ErrorFcall(t.tag, "duplicate tag");
    } else {
      if (s->ConsumeFlushed(t.tag)) {
        metrics_.RecordFlushCancel();
        OBS_INSTANT("ninep.flush_cancel", t.tag);
        r = ErrorFcall(t.tag, "interrupted");
      } else {
        if (ro != nullptr && i > 0 && ro->rid != 0 && tr.enabled()) {
          tr.EmitAt(obs::EventKind::kComplete, "req.lock", 0, ro->rid,
                    tr.NowNs());
        }
        OBS_SPAN("ninep.dispatch");
        uint64_t h0 = tr.NowNs();
        r = s->Dispatch(t);
        uint64_t dur = tr.NowNs() - h0;
        if (ro != nullptr) {
          ro->handler_ns += dur;
          if (ro->rid != 0 && tr.enabled()) {
            tr.EmitAt(obs::EventKind::kComplete, "req.handler", dur, ro->rid,
                      h0);
          }
        }
      }
      s->EndTag(t.tag);
    }
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    metrics_.RecordOp(OpOfMsgType(t.type), static_cast<uint64_t>(us),
                      r.type == MsgType::kRerror);
    metrics_.EndRequest();
    uint64_t e0 = tr.NowNs();
    {
      OBS_SPAN("ninep.encode");
      (*replies)[i].bytes = EncodeFcall(r);
    }
    if (ro != nullptr) {
      ro->op = OpOfMsgType(t.type);
      ro->error = r.type == MsgType::kRerror;
      ro->encode_ns = tr.NowNs() - e0;
      if (ro->rid != 0 && tr.enabled()) {
        tr.EmitAt(obs::EventKind::kComplete, "req.encode", ro->encode_ns,
                  ro->rid, e0);
      }
    }
    metrics_.AddBytesOut((*replies)[i].bytes.size());
  }
}

NinepServer::FrameVerdict NinepServer::ClassifyFrame(
    SessionId id, std::string_view frame) const {
  FrameVerdict fv;  // defaults to kFence, domain 0
  if (frame.size() < 7 || force_exclusive_.load(std::memory_order_relaxed)) {
    return fv;
  }
  auto u32at = [&frame](size_t off) {
    return static_cast<uint32_t>(static_cast<uint8_t>(frame[off])) |
           static_cast<uint32_t>(static_cast<uint8_t>(frame[off + 1])) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(frame[off + 2])) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(frame[off + 3])) << 24;
  };
  std::shared_ptr<Session> s = FindSession(id);
  if (s == nullptr) {
    return fv;
  }
  // With sharding disabled every frame reports domain 0, which restores the
  // PR 9 whole-connection write fences in the listener.
  const bool sharded = !disable_sharding_.load(std::memory_order_relaxed);
  switch (static_cast<MsgType>(static_cast<uint8_t>(frame[4]))) {
    case MsgType::kTstat:
      if (frame.size() < 11) {
        return fv;
      }
      fv.cls = FrameClass::kReorderable;
      if (sharded) {
        fv.domain = s->FidDomain(u32at(7));
      }
      return fv;
    case MsgType::kTflush:
      // Answered from the tag table without any dispatch lock; letting it
      // overtake queued requests is the point — that is what makes a flush
      // able to cancel them.
      fv.cls = FrameClass::kReorderable;
      return fv;
    case MsgType::kTread: {
      if (frame.size() < 11) {
        return fv;
      }
      uint32_t fid = u32at(7);
      if (!s->ReorderableRead(fid)) {
        return fv;
      }
      fv.cls = FrameClass::kReorderable;
      if (sharded) {
        fv.domain = s->FidDomain(fid);
      }
      return fv;
    }
    case MsgType::kTwalk: {
      if (frame.size() < 15) {
        return fv;
      }
      uint32_t fid = u32at(7);
      uint32_t newfid = u32at(11);
      if (newfid != fid && s->FidAbsent(newfid)) {
        fv.cls = FrameClass::kReorderable;
      }
      return fv;
    }
    case MsgType::kTwrite:
      if (frame.size() < 11) {
        return fv;
      }
      fv.write_fid = u32at(7);
      fv.cls = FrameClass::kWrite;
      if (sharded) {
        fv.domain = s->FidDomain(fv.write_fid);
      }
      return fv;
    default:
      return fv;
  }
}

NinepClient::Transport NinepServer::TransportFor(SessionId id) {
  return [this, id](std::string_view bytes) { return HandleBytes(id, bytes); };
}

NinepClient::Transport NinepServer::Transport() {
  return [this](std::string_view bytes) { return HandleBytes(bytes); };
}

}  // namespace help
