#include "src/fs/server.h"

#include <chrono>

#include "src/obs/trace.h"

namespace help {

NinepServer::NinepServer(Vfs* vfs) : vfs_(vfs) {}

NinepServer::~NinepServer() = default;

Session* NinepServer::Find(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const Session* NinepServer::Find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

NinepServer::SessionId NinepServer::OpenSession() {
  std::lock_guard<std::mutex> lk(state_mu_);
  SessionId id = next_session_++;
  sessions_[id] = std::make_unique<Session>(vfs_, id);
  return id;
}

void NinepServer::CloseSession(SessionId id) {
  // Take the dispatch lock so a session is never destroyed while a worker
  // is mid-dispatch on it (workers hold dispatch_mu_ around Dispatch).
  std::lock_guard<std::recursive_mutex> dl(dispatch_mu_);
  std::lock_guard<std::mutex> lk(state_mu_);
  sessions_.erase(id);
  if (default_session_ == id) {
    default_session_ = 0;
  }
}

size_t NinepServer::session_count() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return sessions_.size();
}

size_t NinepServer::open_fids(SessionId id) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  const Session* s = Find(id);
  return s == nullptr ? 0 : s->open_fids();
}

size_t NinepServer::open_fids() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  const Session* s = Find(default_session_);
  return s == nullptr ? 0 : s->open_fids();
}

bool NinepServer::TagInFlight(SessionId id, uint16_t tag) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  const Session* s = Find(id);
  return s != nullptr && s->TagInFlight(tag);
}

std::unique_lock<std::recursive_mutex> NinepServer::LockDispatch() {
  return std::unique_lock<std::recursive_mutex>(dispatch_mu_);
}

Fcall NinepServer::Process(SessionId id, const Fcall& t) {
  // Tag bookkeeping and Tflush run against the session state only — never
  // under the dispatch lock — so a client can cancel or be rejected while
  // another request is executing.
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    Session* s = Find(id);
    if (s == nullptr) {
      return ErrorFcall(t.tag, "unknown session");
    }
    if (t.type == MsgType::kTflush) {
      s->FlushTag(t.oldtag);
      Fcall r;
      r.type = MsgType::kRflush;
      r.tag = t.tag;
      return r;
    }
    if (!s->BeginTag(t.tag)) {
      return ErrorFcall(t.tag, "duplicate tag");
    }
  }

  Fcall r;
  {
    std::unique_lock<std::recursive_mutex> dl(dispatch_mu_);
    Session* s;
    bool flushed;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      s = Find(id);  // may have been closed while queued
      flushed = s != nullptr && s->ConsumeFlushed(t.tag);
    }
    if (s == nullptr) {
      return ErrorFcall(t.tag, "unknown session");
    }
    if (flushed) {
      metrics_.RecordFlushCancel();
      OBS_INSTANT("ninep.flush_cancel", t.tag);
      r = ErrorFcall(t.tag, "interrupted");
    } else {
      OBS_SPAN("ninep.dispatch");
      r = s->Dispatch(t);
    }
  }

  {
    std::lock_guard<std::mutex> lk(state_mu_);
    Session* s = Find(id);
    if (s != nullptr) {
      s->EndTag(t.tag);
    }
  }
  return r;
}

NinepServer::SessionId NinepServer::EnsureDefaultSession() {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (default_session_ == 0) {
    default_session_ = next_session_++;
    sessions_[default_session_] = std::make_unique<Session>(vfs_, default_session_);
  }
  return default_session_;
}

Fcall NinepServer::Dispatch(const Fcall& t) {
  SessionId id = EnsureDefaultSession();
  metrics_.BeginRequest();
  auto start = std::chrono::steady_clock::now();
  Fcall r = Process(id, t);
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  metrics_.RecordOp(OpOfMsgType(t.type), static_cast<uint64_t>(us),
                    r.type == MsgType::kRerror);
  metrics_.EndRequest();
  return r;
}

std::string NinepServer::HandleBytes(SessionId id, std::string_view packet) {
  metrics_.AddBytesIn(packet.size());
  metrics_.BeginRequest();
  auto start = std::chrono::steady_clock::now();
  Fcall r;
  NinepOp op = NinepOp::kBad;
  auto t = [&] {
    OBS_SPAN("ninep.decode");
    return DecodeFcall(packet);
  }();
  if (!t.ok()) {
    r = ErrorFcall(kNoTag, t.message());
  } else {
    op = OpOfMsgType(t.value().type);
    r = Process(id, t.value());
  }
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  metrics_.RecordOp(op, static_cast<uint64_t>(us), r.type == MsgType::kRerror);
  metrics_.EndRequest();
  std::string out = [&] {
    OBS_SPAN("ninep.encode");
    return EncodeFcall(r);
  }();
  metrics_.AddBytesOut(out.size());
  return out;
}

std::string NinepServer::HandleBytes(std::string_view packet) {
  return HandleBytes(EnsureDefaultSession(), packet);
}

NinepClient::Transport NinepServer::TransportFor(SessionId id) {
  return [this, id](std::string_view bytes) { return HandleBytes(id, bytes); };
}

NinepClient::Transport NinepServer::Transport() {
  return [this](std::string_view bytes) { return HandleBytes(bytes); };
}

}  // namespace help
