// Per-connection introspection state and the slow-request flight recorder,
// following the Plan 9 /net idiom: every live connection is a numbered
// directory under /mnt/help/net/ with `status` and `stats` files, and the N
// slowest completed requests are a file (`net/slow`) instead of a profiler
// session. Everything here is updated with relaxed atomics from the listener
// loop and worker threads and read by synthetic-file handlers WITHOUT the
// dispatch lock — a stalled dispatch can always be diagnosed from the very
// files that would deadlock if they serialized behind it.
#ifndef SRC_FS_NETINFO_H_
#define SRC_FS_NETINFO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/fs/metrics.h"
#include "src/obs/trace.h"

namespace help {

class NinepServer;

// The request trace id that stamps every phase event of one request:
// connection id (24 bits) | 9P tag (16 bits) | per-connection monotonic
// frame seq (24 bits). seq starts at 1 so a valid rid is never 0 (0 means
// "not request-scoped" throughout the tracer).
inline uint64_t MakeRequestId(uint64_t cid, uint16_t tag, uint64_t seq) {
  return ((cid & 0xFFFFFFull) << 40) | (static_cast<uint64_t>(tag) << 24) |
         (seq & 0xFFFFFFull);
}

// One completed request's phase breakdown in nanoseconds. total_ns runs from
// the FrameReader yielding the frame to the last reply byte entering the
// kernel socket buffer; the phases cover the interesting interior but do not
// sum to total (scheduling gaps between phases are real time too).
struct RequestRecord {
  uint64_t rid = 0;
  uint64_t cid = 0;
  uint16_t tag = 0;
  NinepOp op = NinepOp::kBad;
  uint64_t total_ns = 0;
  uint64_t queue_ns = 0;    // inbox wait: frame yield → worker pickup
  uint64_t lock_ns = 0;     // dispatch-lock wait, summed over raced-read retries
  uint64_t handler_ns = 0;  // Session::Dispatch (the handler proper)
  uint64_t encode_ns = 0;   // reply encode
  uint64_t outbox_ns = 0;   // outbox append → wire write completed
};

// Keeps the kSlots slowest completed requests (by total_ns) at or above an
// optional threshold. Record() is called once per completed request on the
// listener loop thread; the common case — faster than everything already
// kept — is two relaxed loads and no lock.
class FlightRecorder {
 public:
  static constexpr size_t kSlots = 64;

  // Considers one completed request for the ring.
  void Record(const RequestRecord& r);
  void Clear();

  // Minimum total latency (µs) a request must reach to be considered at all.
  void set_threshold_us(uint64_t us) {
    threshold_ns_.store(us * 1000, std::memory_order_relaxed);
  }
  uint64_t threshold_us() const {
    return threshold_ns_.load(std::memory_order_relaxed) / 1000;
  }
  uint64_t seen() const { return seen_.load(std::memory_order_relaxed); }
  size_t kept() const;

  // Current entries, slowest first.
  std::vector<RequestRecord> Snapshot() const;
  // /mnt/help/net/slow: header + one line per kept request, slowest first.
  std::string RenderText() const;
  // /mnt/help/net/slowctl status payload.
  std::string RenderCtl() const;

 private:
  std::atomic<uint64_t> threshold_ns_{0};
  // Fast reject: once the ring is full, the smallest kept total. A request
  // below it can't displace anything, so Record returns without the lock.
  std::atomic<uint64_t> floor_ns_{0};
  std::atomic<uint64_t> seen_{0};
  mutable std::mutex mu_;
  std::vector<RequestRecord> slots_;
};

enum class ConnState : uint8_t { kActive, kStalled, kClosing };

const char* ConnStateName(ConnState s);

// Live counters for one socket connection. Writers are the listener loop
// thread (bytes, frames, state) and whichever worker dispatched the request
// (op counts, latencies); readers are the /mnt/help/net/<cid>/{status,stats}
// handlers. All fields are relaxed atomics or set-once — no lock anywhere.
class ConnInfo {
 public:
  ConnInfo(NinepServer* srv, uint64_t cid, std::string peer);

  uint64_t cid() const { return cid_; }
  const std::string& peer() const { return peer_; }

  void set_state(ConnState s) {
    state_.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
  }
  ConnState state() const {
    return static_cast<ConnState>(state_.load(std::memory_order_relaxed));
  }

  void AddBytesIn(uint64_t n) { bytes_in_.fetch_add(n, std::memory_order_relaxed); }
  void AddBytesOut(uint64_t n) { bytes_out_.fetch_add(n, std::memory_order_relaxed); }
  void AddFrameIn() { frames_in_.fetch_add(1, std::memory_order_relaxed); }
  void RecordOp(NinepOp op, uint64_t latency_us, bool error);
  void RecordQueueWait(uint64_t us) { queue_wait_us_.Record(us); }
  // PR 9: scatter-gather drains of this connection's outbox, and Rread
  // payload bytes that reached its wire frames without a staging copy.
  void RecordWritev() { writev_calls_.fetch_add(1, std::memory_order_relaxed); }
  void AddBytesZeroCopy(uint64_t n) {
    bytes_zero_copy_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t bytes_in() const { return bytes_in_.load(std::memory_order_relaxed); }
  uint64_t bytes_out() const { return bytes_out_.load(std::memory_order_relaxed); }
  uint64_t frames_in() const { return frames_in_.load(std::memory_order_relaxed); }
  uint64_t replies_out() const { return replies_out_.load(std::memory_order_relaxed); }
  uint64_t writev_calls() const {
    return writev_calls_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_zero_copy() const {
    return bytes_zero_copy_.load(std::memory_order_relaxed);
  }
  uint64_t op_count(NinepOp op) const {
    return op_counts_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }
  uint64_t op_errors(NinepOp op) const {
    return op_errors_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }
  uint64_t total_ops() const;
  const obs::Histogram& latency_us() const { return latency_us_; }
  const obs::Histogram& queue_wait_us() const { return queue_wait_us_; }

  // /mnt/help/net/<cid>/status: peer, state, negotiated msize, live fid
  // count, frame/byte totals. Queries the owning server's session table
  // (leaf locks only — never the dispatch lock).
  std::string RenderStatus() const;
  // /mnt/help/net/<cid>/stats: per-connection op table + latency and
  // queue-wait histograms, same shape as the global /mnt/help/stats table.
  std::string RenderStats() const;
  // One roll-up line for /mnt/help/net/clients.
  std::string RenderClientLine() const;

 private:
  NinepServer* srv_;
  uint64_t cid_;
  std::string peer_;
  std::atomic<uint8_t> state_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> replies_out_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> bytes_zero_copy_{0};
  std::array<std::atomic<uint64_t>, kNinepOpCount> op_counts_{};
  std::array<std::atomic<uint64_t>, kNinepOpCount> op_errors_{};
  obs::Histogram latency_us_{"latency_us"};
  obs::Histogram queue_wait_us_{"queue_wait_us"};
};

// One server's connection table plus its flight recorder. Owned by
// NinepServer so lifetimes are trivial: the listener registers a connection
// at accept and deregisters it at close, and every ConnInfo's back-pointer is
// to the server that owns this NetState.
class NetState {
 public:
  explicit NetState(NinepServer* srv) : srv_(srv) {}

  NetState(const NetState&) = delete;
  NetState& operator=(const NetState&) = delete;

  std::shared_ptr<ConnInfo> Register(uint64_t cid, std::string peer);
  void Deregister(uint64_t cid);
  std::shared_ptr<ConnInfo> Find(uint64_t cid) const;
  // All live connections, ascending by cid.
  std::vector<std::shared_ptr<ConnInfo>> List() const;
  size_t conn_count() const;

  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  // /mnt/help/net/clients: header + one line per live connection.
  std::string RenderClients() const;

 private:
  NinepServer* srv_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<ConnInfo>> conns_;
  FlightRecorder recorder_;
};

}  // namespace help

#endif  // SRC_FS_NETINFO_H_
