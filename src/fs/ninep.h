// A 9P-style file protocol. Help "provides its client processes access to
// its structure by presenting a file service"; this module is the wire level
// of that service. Messages are length-prefixed little-endian packets —
// T-messages from clients, R-messages from the server — covering version,
// attach, flush, walk, open, create, read, write, clunk, remove, and stat,
// with Rerror carrying Plan 9-style error strings.
//
// The transport is pluggable; tests and examples use the in-process byte
// transport, which still exercises the full encode → dispatch → decode path.
//
// Concurrency model (see also DESIGN.md §11):
//   * This header holds the codec, the per-connection Session, and the
//     synchronous NinepClient. The multi-client front end lives in
//     src/fs/server.h (NinepServer).
//   * A Session owns one connection's protocol state: its fid table, its
//     negotiated msize, and its attach identity. N concurrent clients each
//     hold an independent Session against the same Vfs tree, so fid 7 in one
//     session and fid 7 in another never collide. Per-session bookkeeping is
//     guarded by the session's own fine-grained locks, so sessions never
//     contend with each other on fid or tag state.
//   * Dispatch classification: every T-message is classified read-only
//     (cannot mutate anything), window-read / window-write (confined to one
//     window's shard — see Session::OpClass), or structural (may mutate
//     beyond one window). NinepServer maps the classes onto its two-level
//     lock hierarchy (DESIGN.md §17): read-only and window-scoped dispatches
//     share the namespace epoch lock and window writes serialize only on
//     their window's shard, so mutations of different windows run
//     concurrently; structural ops take the epoch exclusively and run alone.
//     One session's dispatches are additionally serialized against each
//     other, per the protocol's one-logical-client-per-connection
//     assumption.
//   * Tflush lets a client cancel an in-flight tagged request: a request
//     still waiting for the dispatch path when its tag is flushed is answered
//     with Rerror "interrupted" instead of running (the byte transport is
//     one-reply-per-request, so a cancelled request still gets a reply).
//     Duplicate in-flight tags on one session are rejected, per the protocol.
#ifndef SRC_FS_NINEP_H_
#define SRC_FS_NINEP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/vfs.h"

namespace help {

enum class MsgType : uint8_t {
  kTversion = 100,
  kRversion = 101,
  kTattach = 104,
  kRattach = 105,
  kRerror = 107,
  kTflush = 108,
  kRflush = 109,
  kTwalk = 110,
  kRwalk = 111,
  kTopen = 112,
  kRopen = 113,
  kTcreate = 114,
  kRcreate = 115,
  kTread = 116,
  kRread = 117,
  kTwrite = 118,
  kRwrite = 119,
  kTclunk = 120,
  kRclunk = 121,
  kTremove = 122,
  kRremove = 123,
  kTstat = 124,
  kRstat = 125,
};

inline constexpr uint16_t kNoTag = 0xFFFF;
inline constexpr uint32_t kNoFid = 0xFFFFFFFF;
inline constexpr uint32_t kDefaultMsize = 64 * 1024;
// Per-message overhead reserved out of msize for read/write payloads.
inline constexpr uint32_t kIoHeader = 24;

// One protocol message, T or R; unused fields are ignored per type.
struct Fcall {
  MsgType type = MsgType::kRerror;
  uint16_t tag = kNoTag;
  uint32_t fid = kNoFid;
  uint32_t newfid = kNoFid;   // Twalk
  uint16_t oldtag = kNoTag;   // Tflush
  uint32_t msize = 0;         // Tversion/Rversion
  std::string version;        // Tversion/Rversion
  std::string uname;          // Tattach
  std::string aname;          // Tattach
  std::vector<std::string> wname;  // Twalk
  std::vector<Qid> wqid;           // Rwalk
  Qid qid;                    // Rattach/Ropen/Rcreate
  uint8_t mode = 0;           // Topen/Tcreate
  std::string name;           // Tcreate
  uint32_t perm = 0;          // Tcreate (bit 31 = directory)
  uint64_t offset = 0;        // Tread/Twrite
  uint32_t count = 0;         // Tread/Rwrite
  std::string data;           // Rread/Twrite
  uint32_t iounit = 0;        // Ropen/Rcreate
  StatInfo stat;              // Rstat
  std::string ename;          // Rerror
};

inline constexpr uint32_t kDirPerm = 0x80000000;  // Tcreate perm bit for directories

// Serializes `f` into a complete packet (including the leading size field).
std::string EncodeFcall(const Fcall& f);

// Parses one packet. `bytes` must contain exactly one complete message.
Result<Fcall> DecodeFcall(std::string_view bytes);

// Directory payloads in Rread: a sequence of encoded stat entries.
std::string EncodeDirEntry(const StatInfo& s);
Result<std::vector<StatInfo>> DecodeDirEntries(std::string_view data);

// Makes an Rerror reply for `tag`.
Fcall ErrorFcall(uint16_t tag, std::string_view msg);

// Out-of-band reply channel for the zero-copy read path. When a caller hands
// Dispatch a sink and the request is a successful file Tread, the complete
// Rread packet is encoded directly into `frame` — for gatherable files
// straight from the gap buffer's borrowed spans (one transcode into the wire
// bytes, no staging string) — and `used` is set; the returned Fcall then
// carries only type/tag for bookkeeping. Directory reads, non-read requests,
// and error replies leave the sink untouched and answer through the Fcall.
struct ReadSink {
  std::string frame;            // complete Rread packet, ready for the wire
  bool used = false;            // frame holds the reply
  bool zero_copy = false;       // payload arrived via FileHandler::Gather
  uint64_t payload_bytes = 0;   // Rread count
};

// ---------------------------------------------------------------------------

// One client connection's protocol state: fid table, negotiated msize,
// auth/attach identity, and in-flight tag bookkeeping. One session's
// Dispatch calls are serialized by NinepServer through dispatch_mu(); the
// fid table additionally carries its own lock so the lock-free-of-dispatch
// classification path (Classify) can inspect it while a dispatch is in
// flight, and the tag methods lock internally so Tflush never waits behind
// a dispatch.
class Session {
 public:
  // How an operation fits the dispatch-lock hierarchy (DESIGN.md §17):
  //   kReadOnly    cannot mutate anything — epoch lock shared, no shard.
  //   kWindowRead  reads state a same-window writer may be mutating (window
  //                file bytes, the node's qid/length) — epoch shared, window
  //                shard shared.
  //   kWindowWrite mutates exactly one window (a clone group counts as one) —
  //                epoch shared, window shard exclusive.
  //   kStructural  may mutate beyond one window (create/remove, ctl writes,
  //                window lifecycle, regular-file writes) — epoch exclusive.
  enum class OpClass : uint8_t {
    kReadOnly,
    kWindowRead,
    kWindowWrite,
    kStructural,
  };

  // A classification plus the parsed target it was derived from. The cached
  // fid state lets the server re-validate the verdict under the locks with
  // one map lookup (VerdictStale) instead of recomputing the full
  // classification — and hands it the shard to lock before dispatch.
  struct Verdict {
    OpClass cls = OpClass::kStructural;
    WindowShardPtr shard;    // lock target for the window classes
    uint32_t fid = kNoFid;   // fid whose state the verdict depends on
    NodePtr node;            // that fid's node at classification time
    bool present = false;    // cached fid-table parse, compared by
    bool open = false;       //   VerdictStale against the live entry
    bool read_only = false;
  };

  Session(Vfs* vfs, uint64_t id) : vfs_(vfs), id_(id) {}

  // Handles one T-message (everything except Tflush, which the server
  // answers without entering the dispatch path). Callers must hold
  // dispatch_mu() — NinepServer does; shared for ReorderOk requests,
  // exclusive otherwise — and the dispatch lock of the server in the mode
  // Classify(t) demands. With a non-null `sink`, successful file Treads
  // encode their complete reply packet into it (see ReadSink).
  Fcall Dispatch(const Fcall& t, ReadSink* sink = nullptr);

  // Classifies `t` without dispatching it: version/attach/walk/clunk are
  // always read-only; Tstat and Tread of a window-backed fid are window
  // reads (shard shared); Twrite and truncating/writable Topen of a
  // window-backed fid are window writes (shard exclusive); everything that
  // can mutate beyond one window — other writes, creates, removes, opens
  // that reach a mutating handler — is structural. Classification is
  // advisory concurrency control, not correctness: it may race this
  // session's own in-flight ops (fid tables only change under
  // dispatch_mu()), and a misprediction is caught by VerdictStale under the
  // locks and costs one retry on the structural path, never a torn read —
  // the seqlock validation in the read handlers backstops even that.
  Verdict Classify(const Fcall& t) const;

  // One fid_mu_ lookup comparing the live fid entry against the state the
  // verdict cached: true when the entry changed (fid bound/unbound, node
  // rebound, opened, or its read-only mark flipped) and the verdict must not
  // be trusted. Called by the server under the locks the verdict asked for;
  // fid mutators hold the session lock exclusively, so the answer is stable
  // for the rest of the dispatch. Verdicts that depend on no fid state
  // (fid == kNoFid) are never stale.
  bool VerdictStale(const Verdict& v) const;

  // --- Out-of-order dispatch classification (fid_mu_ only) -----------------
  // True when `t` may dispatch under this session's dispatch_mu() in shared
  // mode, out of order with its neighbors: Tstat always; Tread when the fid
  // is absent, unopened (both error replies that touch nothing), or an open
  // read-only file — directory reads lazily rebuild per-fid dirbuf scratch,
  // so they fence; Twalk when it would insert a fresh fid (rebinding an
  // existing newfid destroys its open file — a mutation). Everything else
  // fences. Like Classify this is advisory: fid state it reads can only be
  // changed by fences, which never run concurrently with reorderable ops,
  // and concurrent reorderable Twalks keep their check-and-insert atomic
  // under fid_mu_ (the loser gets "newfid in use").
  bool ReorderOk(const Fcall& t) const;
  bool ReorderableRead(uint32_t fid) const;
  bool FidAbsent(uint32_t fid) const;
  // The window domain (shard id) `fid` resolves to, 0 when the fid is
  // absent or not window-backed. The listener's scheduler uses this to fence
  // only same-window frames instead of the whole connection.
  uint64_t FidDomain(uint32_t fid) const;

  uint64_t id() const { return id_; }
  // Relaxed load: read by /mnt/help/net status handlers on other threads
  // while Tversion may be renegotiating. Any stale value is a value the
  // session legitimately had.
  uint32_t msize() const { return msize_.load(std::memory_order_relaxed); }
  bool attached() const { return attached_; }
  const std::string& uname() const { return uname_; }
  size_t open_fids() const;

  // Orders this session's dispatches (held by NinepServer around every
  // Dispatch call, after the server-wide dispatch lock): shared for
  // ReorderOk requests — which therefore complete out of order between
  // fences — exclusive for everything else.
  std::shared_mutex& dispatch_mu() { return dispatch_mu_; }

  // --- In-flight tag bookkeeping (thread-safe; tag_mu_ is a leaf lock) -----
  // Registers `tag` as in flight; false if that tag is already in flight
  // (the protocol forbids duplicate in-flight tags per connection).
  bool BeginTag(uint16_t tag);
  void EndTag(uint16_t tag);
  bool TagInFlight(uint16_t tag) const;
  // Tflush(oldtag): marks a still-queued request cancelled. Returns whether
  // the tag was in flight at all (Rflush is sent either way).
  bool FlushTag(uint16_t oldtag);
  // A queued request checks (and clears) its cancellation mark right before
  // dispatching; true means it was flushed and must not run.
  bool ConsumeFlushed(uint16_t tag);

 private:
  struct FidState {
    NodePtr node;
    OpenFilePtr open;
    // The window shard the node's handler reported when the fid was bound
    // (attach/walk/create) — "the window-id routed out of Walk", so the
    // dispatch layer knows its lock target before taking any lock. Null for
    // non-window files.
    WindowShardPtr shard;
    std::string dirbuf;     // snapshot of directory listing for reads
    bool dirbuf_valid = false;
    bool read_only = false;  // opened with kOread and no kOtrunc
  };

  // Looks up a fid under fid_mu_. The returned pointer stays valid after the
  // lock drops: only this session's own dispatches mutate the map, and they
  // are serialized by dispatch_mu_ (std::map never relocates nodes anyway).
  FidState* FindFid(uint32_t fid);
  const FidState* FindFid(uint32_t fid) const;
  // Copies `fid`'s classification-relevant state into `v`. Caller holds
  // fid_mu_.
  void CacheFidLocked(uint32_t fid, Verdict* v) const;

  Vfs* vfs_;
  uint64_t id_;
  std::string uname_;
  bool attached_ = false;
  std::map<uint32_t, FidState> fids_;
  std::atomic<uint32_t> msize_{kDefaultMsize};
  std::set<uint16_t> inflight_;
  std::set<uint16_t> flushed_;

  // Orders Dispatch calls (guards msize_, attached_, per-fid dirbuf — all
  // only touched by exclusive holders). Reorderable read-only requests hold
  // it shared and rely on fid_mu_ for the map.
  std::shared_mutex dispatch_mu_;
  mutable std::mutex fid_mu_;   // guards the fids_ map structure
  mutable std::mutex tag_mu_;   // guards inflight_/flushed_; leaf
};

// ---------------------------------------------------------------------------

// Client API over a byte transport (typically a NinepServer session; see
// server.h for the convenience constructor wiring).
class NinepClient {
 public:
  using Transport = std::function<std::string(std::string_view)>;

  // Pipelined half of a full-duplex transport: send one framed T-message
  // without waiting for its reply, receive the next complete R-message
  // (whichever request it answers). The lockstep Transport cannot express N
  // requests in flight; socket transports provide this pair
  // (SocketTransport::AsPipeIo).
  struct PipeIo {
    std::function<Status(std::string_view)> send;
    std::function<Result<std::string>()> recv;
  };

  explicit NinepClient(Transport transport) : transport_(std::move(transport)) {}

  Status Connect(std::string_view uname = "user");

  // Enables pipelined helpers; without it they fall back to lockstep RPCs.
  void set_pipe_io(PipeIo io) { pipe_ = std::move(io); }

  // Low-level operations; fids are allocated by the client.
  Result<uint32_t> WalkFid(std::string_view path);           // returns new fid
  Status OpenFid(uint32_t fid, uint8_t mode);
  Result<std::string> ReadFid(uint32_t fid, uint64_t offset, uint32_t count);
  Result<uint32_t> WriteFid(uint32_t fid, uint64_t offset, std::string_view data);
  Status Clunk(uint32_t fid);
  Status RemoveFid(uint32_t fid);
  Result<StatInfo> StatFid(uint32_t fid);
  // Cancels the in-flight request carrying `oldtag` (no-op if it already
  // completed). The synchronous client never has its own request in flight;
  // this exists for callers sharing a session across threads.
  Status Flush(uint16_t oldtag);

  // Issues one Tread per range on `fid`, keeping up to `window` requests in
  // flight, and returns the replies in issue order. Replies may arrive in
  // any order — the server completes read-only requests out of order — and
  // are matched by tag; a reply carrying a tag that was never issued (or
  // already answered) fails the whole call, the same hostile-peer check the
  // lockstep Rpc applies. Without PipeIo, degrades to sequential ReadFid.
  struct ReadRange {
    uint64_t offset = 0;
    uint32_t count = 0;
  };
  Result<std::vector<std::string>> ReadFidPipelined(
      uint32_t fid, const std::vector<ReadRange>& ranges, int window = 8);

  // High-level conveniences (walk + open + transfer + clunk).
  Result<std::string> ReadFile(std::string_view path);
  Status WriteFile(std::string_view path, std::string_view data);
  Status AppendFile(std::string_view path, std::string_view data);
  Result<std::vector<StatInfo>> ReadDir(std::string_view path);
  Status Create(std::string_view path, bool dir);
  Status Remove(std::string_view path);
  Result<StatInfo> Stat(std::string_view path);

  uint64_t rpcs() const { return rpcs_; }

 private:
  Result<Fcall> Rpc(Fcall t);
  uint32_t NextFid() { return next_fid_++; }

  Transport transport_;
  PipeIo pipe_;
  uint32_t root_fid_ = kNoFid;
  uint32_t next_fid_ = 1;
  uint16_t next_tag_ = 1;
  uint64_t rpcs_ = 0;
};

}  // namespace help

#endif  // SRC_FS_NINEP_H_
