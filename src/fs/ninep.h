// A 9P-style file protocol. Help "provides its client processes access to
// its structure by presenting a file service"; this module is the wire level
// of that service. Messages are length-prefixed little-endian packets —
// T-messages from clients, R-messages from the server — covering version,
// attach, walk, open, create, read, write, clunk, remove, and stat, with
// Rerror carrying Plan 9-style error strings.
//
// The transport is pluggable; tests and examples use the in-process byte
// transport, which still exercises the full encode → dispatch → decode path.
#ifndef SRC_FS_NINEP_H_
#define SRC_FS_NINEP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/vfs.h"

namespace help {

enum class MsgType : uint8_t {
  kTversion = 100,
  kRversion = 101,
  kTattach = 104,
  kRattach = 105,
  kRerror = 107,
  kTwalk = 110,
  kRwalk = 111,
  kTopen = 112,
  kRopen = 113,
  kTcreate = 114,
  kRcreate = 115,
  kTread = 116,
  kRread = 117,
  kTwrite = 118,
  kRwrite = 119,
  kTclunk = 120,
  kRclunk = 121,
  kTremove = 122,
  kRremove = 123,
  kTstat = 124,
  kRstat = 125,
};

inline constexpr uint16_t kNoTag = 0xFFFF;
inline constexpr uint32_t kNoFid = 0xFFFFFFFF;
inline constexpr uint32_t kDefaultMsize = 64 * 1024;

// One protocol message, T or R; unused fields are ignored per type.
struct Fcall {
  MsgType type = MsgType::kRerror;
  uint16_t tag = kNoTag;
  uint32_t fid = kNoFid;
  uint32_t newfid = kNoFid;   // Twalk
  uint32_t msize = 0;         // Tversion/Rversion
  std::string version;        // Tversion/Rversion
  std::string uname;          // Tattach
  std::string aname;          // Tattach
  std::vector<std::string> wname;  // Twalk
  std::vector<Qid> wqid;           // Rwalk
  Qid qid;                    // Rattach/Ropen/Rcreate
  uint8_t mode = 0;           // Topen/Tcreate
  std::string name;           // Tcreate
  uint32_t perm = 0;          // Tcreate (bit 31 = directory)
  uint64_t offset = 0;        // Tread/Twrite
  uint32_t count = 0;         // Tread/Rwrite
  std::string data;           // Rread/Twrite
  uint32_t iounit = 0;        // Ropen/Rcreate
  StatInfo stat;              // Rstat
  std::string ename;          // Rerror
};

inline constexpr uint32_t kDirPerm = 0x80000000;  // Tcreate perm bit for directories

// Serializes `f` into a complete packet (including the leading size field).
std::string EncodeFcall(const Fcall& f);

// Parses one packet. `bytes` must contain exactly one complete message.
Result<Fcall> DecodeFcall(std::string_view bytes);

// Directory payloads in Rread: a sequence of encoded stat entries.
std::string EncodeDirEntry(const StatInfo& s);
Result<std::vector<StatInfo>> DecodeDirEntries(std::string_view data);

// ---------------------------------------------------------------------------

// Serves a Vfs over the protocol. Byte-in, byte-out; one message per call.
class NinepServer {
 public:
  explicit NinepServer(Vfs* vfs) : vfs_(vfs) {}

  // Full byte path: decode, dispatch, encode.
  std::string HandleBytes(std::string_view packet);

  // Structured dispatch (used by HandleBytes; also directly testable).
  Fcall Dispatch(const Fcall& t);

  size_t open_fids() const { return fids_.size(); }

 private:
  struct FidState {
    NodePtr node;
    OpenFilePtr open;
    std::string dirbuf;     // snapshot of directory listing for reads
    bool dirbuf_valid = false;
  };

  Fcall Error(uint16_t tag, std::string_view msg) const;

  Vfs* vfs_;
  std::map<uint32_t, FidState> fids_;
  uint32_t msize_ = kDefaultMsize;
};

// Client API over a byte transport (defaults to an in-process server).
class NinepClient {
 public:
  using Transport = std::function<std::string(std::string_view)>;

  explicit NinepClient(Transport transport) : transport_(std::move(transport)) {}
  // Convenience: client wired straight to a server instance.
  explicit NinepClient(NinepServer* server)
      : transport_([server](std::string_view b) { return server->HandleBytes(b); }) {}

  Status Connect(std::string_view uname = "user");

  // Low-level operations; fids are allocated by the client.
  Result<uint32_t> WalkFid(std::string_view path);           // returns new fid
  Status OpenFid(uint32_t fid, uint8_t mode);
  Result<std::string> ReadFid(uint32_t fid, uint64_t offset, uint32_t count);
  Result<uint32_t> WriteFid(uint32_t fid, uint64_t offset, std::string_view data);
  Status Clunk(uint32_t fid);
  Status RemoveFid(uint32_t fid);
  Result<StatInfo> StatFid(uint32_t fid);

  // High-level conveniences (walk + open + transfer + clunk).
  Result<std::string> ReadFile(std::string_view path);
  Status WriteFile(std::string_view path, std::string_view data);
  Status AppendFile(std::string_view path, std::string_view data);
  Result<std::vector<StatInfo>> ReadDir(std::string_view path);
  Status Create(std::string_view path, bool dir);
  Status Remove(std::string_view path);
  Result<StatInfo> Stat(std::string_view path);

  uint64_t rpcs() const { return rpcs_; }

 private:
  Result<Fcall> Rpc(Fcall t);
  uint32_t NextFid() { return next_fid_++; }

  Transport transport_;
  uint32_t root_fid_ = kNoFid;
  uint32_t next_fid_ = 1;
  uint16_t next_tag_ = 1;
  uint64_t rpcs_ = 0;
};

}  // namespace help

#endif  // SRC_FS_NINEP_H_
