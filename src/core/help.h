// Help: the combined editor / window system / shell / user interface — the
// paper's primary contribution. One Help instance owns the whole world: the
// virtual file system (with /mnt/help mounted), the command registry and
// shell, the process table, and the tiled screen.
//
// The user interface is exactly the paper's:
//   button 1  selects text (each subwindow has its own selection; the most
//             recent one is "the current selection", drawn reverse-video)
//   button 2  executes the swept text — a click anywhere in a word executes
//             the whole word; a null sweep expands by context
//   button 3  rearranges windows (drag by the tag) and reveals them (tabs)
//   chords    B1 held + B2 = Cut, B1 held + B3 = Paste, B2 then B3 = snarf
//   typing    replaces the selection in the subwindow under the mouse;
//             newline is just a character — typing never executes
//
// Built-in commands are capitalized words bound to actions wherever they
// appear (Cut, Paste, Snarf, Open, New, Write, Pattern, Text, Exit, and the
// extensions Undo/Redo); commands ending in '!' are window operations that
// take no arguments and apply to the window they are executed in (Close!,
// Put!, Get!). Anything else is an external command run by the shell in the
// directory derived from the window's tag, with output appended to the
// Errors window.
#ifndef SRC_CORE_HELP_H_
#define SRC_CORE_HELP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/ninep.h"
#include "src/fs/vfs.h"
#include "src/proc/env.h"
#include "src/proc/proc.h"
#include "src/shell/shell.h"
#include "src/wm/wm.h"

namespace help {

class NinepServer;

class Help {
 public:
  struct Options {
    int width = 100;
    int height = 40;
    bool install_userland = true;  // coreutils + compiler tools + mk
  };

  Help() : Help(Options{}) {}
  explicit Help(const Options& options);
  ~Help();

  Help(const Help&) = delete;
  Help& operator=(const Help&) = delete;

  // --- the world --------------------------------------------------------------
  Vfs& vfs() { return vfs_; }
  // The 9P service for this instance's tree. External clients open sessions
  // here; the /mnt/help handlers serialize through its dispatch lock, and
  // /mnt/help/stats renders its metrics.
  NinepServer& ninep() { return *ninep_; }
  Shell& shell() { return *shell_; }
  CommandRegistry& registry() { return registry_; }
  ProcTable& procs() { return procs_; }
  Env& env() { return env_; }
  Page& page() { return *page_; }

  // --- user gestures (these are what the interaction counters count) ----------

  // Button 1: select from `from` to `to` (same point = click, null selection).
  void MouseSelect(Point from, Point to);
  void MouseClick(Point p) { MouseSelect(p, p); }

  // Button 2: execute. A click (from == to) executes the whole word under
  // the point; a sweep executes exactly the swept text.
  void MouseExec(Point from, Point to);
  void MouseExecWord(Point p) { MouseExec(p, p); }

  // Chords while button 1 is held after a selection.
  void ChordCut();
  void ChordPaste();
  // B2 then B3 while B1 held: remember in cut buffer, then put it back —
  // a copy with no net edit.
  void ChordSnarf();

  // Button 3 on a tag: drag the window.
  void MouseDrag(Point from, Point to);
  // Button 1 on a window tab (the black squares) or a column tab.
  void ClickWindowTab(int column, int index);
  void ClickColumnTab(int column);

  // Keyboard: typed text replaces the selection in the subwindow under the
  // mouse (the last place the mouse touched).
  void Type(std::string_view utf8);

  // --- programmatic interface (used by built-ins, the file server, tests) -----

  // Opens a file or directory. `name` may carry an address suffix
  // (help.c:27). Relative names resolve against `context_dir`. Creates a
  // window (placed automatically, in `col_hint` if non-negative) or reveals
  // an existing one.
  Result<Window*> OpenFile(std::string_view name, std::string_view context_dir,
                           Window* near, int col_hint = -1);

  // Executes command text as if swept with button 2 in `window`.
  Status ExecuteText(std::string_view text, Window* window);

  // Creates an empty window near the current selection (the file-server
  // new/ctl path and the New command).
  Window* CreateWindow(std::string_view tagline, int col_hint = -1);

  // Closes a window (Close!, or a ctl message).
  void CloseWindow(Window* w);

  // Clone! — a second window on the same body (multiple windows per file).
  Status CloneWindow(Window* w);

  // Writes a window's body back to its tag file (Put!). Clears the dirty
  // marker on every window sharing the body.
  Status PutWindow(Window* w);
  // Reloads the body from the tag file (Get!).
  Status GetWindow(Window* w);

  Window* WindowForFile(std::string_view fullpath);
  Window* errors_window() { return errors_; }
  // Appends to the Errors window, creating it on first need.
  void AppendErrors(std::string_view text);

  const std::string& snarf() const { return snarf_; }
  void set_snarf(std::string s) { snarf_ = std::move(s); }

  Subwindow* current_sub() { return current_; }
  void SetCurrent(Subwindow* sub) { current_ = sub; }
  Window* WindowOf(Subwindow* sub) { return sub == nullptr ? nullptr : sub->window; }

  bool exited() const { return exited_; }

  // --- rendering & inspection --------------------------------------------------

  // Redraws every window into the page screen and returns the rendering.
  // With show_last_exec, the most recent button-2 sweep is underlined (the
  // way Figure 2 shows an execution in progress).
  std::string Render(bool annotated = false, bool show_last_exec = false);
  // Searches the rendered screen for `needle`; returns the position of its
  // first character. occurrence selects among multiple hits (top-to-bottom).
  // Returns {-1,-1} if absent.
  Point FindOnScreen(std::string_view needle, int occurrence = 0);
  // Like FindOnScreen but restricted to one window's rectangle.
  Point FindInWindow(const Window* w, std::string_view needle, int occurrence = 0);

  struct Counters {
    int button_presses = 0;   // every mouse button press (clicks and sweeps)
    int keystrokes = 0;       // runes typed
    int commands_executed = 0;
    int windows_created = 0;
  };
  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters(); }

  // All live windows, in id order.
  std::vector<Window*> AllWindows();

  // Marks `w`'s tag dirty/clean (adds/removes the Put! word). Public so the
  // ctl file handler can invoke it.
  void UpdateDirtyTag(Window* w);

  // --- file-server surface (the /mnt/help handlers call these) ----------------

  // Handles a write to a window's ctl file: newline-separated messages.
  //   tag <text>         set the tag line
  //   show <addr>        reveal the window and select the address
  //   select <q0> <q1>   set the body selection
  //   insert <q> <text>  insert text (rest of line) at rune offset q
  //   delete <q0> <q1>   delete a rune range
  //   clean              clear the dirty marker
  Status HandleCtl(Window* w, std::string_view commands);
  // Byte-level writes from clients (window body/tag files).
  Status SetBodyBytes(Window* w, uint64_t offset, std::string_view data, bool truncate);
  Status AppendBody(Window* w, std::string_view data);
  Status SetTagBytes(Window* w, uint64_t offset, std::string_view data, bool truncate);

 private:
  friend class HelpFsInstaller;

  struct WinState {
    Window* window = nullptr;
    std::string filename;  // full path, empty for unnamed windows
    // The window's mutation shard (DESIGN.md §17): held by the 9P dispatch
    // for every window-scoped operation. Windows that share a body text
    // (clones, same-file opens) share one shard, so an edit through any of
    // them excludes reads through all of them.
    WindowShardPtr shard;
  };

  // Gesture plumbing.
  Subwindow* SubAt(Point p);
  Selection SweepIn(Subwindow* sub, Point from, Point to);

  // Execution.
  Status ExecBuiltin(const std::string& cmd, const std::vector<std::string>& args,
                     Window* exec_win);
  Status ExecExternal(std::string_view text, Window* exec_win);
  bool IsBuiltin(std::string_view word) const;

  // Built-ins.
  Status CmdOpen(const std::vector<std::string>& args, Window* exec_win);
  Status CmdCut();
  Status CmdPaste();
  Status CmdSnarf();
  Status CmdNew(const std::vector<std::string>& args);
  Status CmdWrite(const std::vector<std::string>& args);
  Status CmdSearch(const std::vector<std::string>& args, bool literal, Window* exec_win);
  Status CmdUndo(bool redo);
  Status CmdSend(Window* exec_win);

  // Context helpers.
  std::string ContextDirForSelection(Window* fallback);
  std::string DefaultFileArg();
  void SetHelpselEnv(Env* env);
  void SelectAddress(Window* w, std::string_view addr);

  int NextWindowId() { return next_id_++; }
  void RegisterWindowFiles(Window* w);
  void UnregisterWindowFiles(Window* w);
  void TouchBody(Window* w);  // post-edit bookkeeping (dirty tags, relayout)

  std::shared_ptr<Text> BodyForFile(const std::string& fullpath);

  Vfs vfs_;
  std::unique_ptr<NinepServer> ninep_;
  CommandRegistry registry_;
  ProcTable procs_;
  Env env_;
  std::unique_ptr<Shell> shell_;
  std::unique_ptr<Page> page_;

  std::map<int, WinState> wins_;
  // filename -> shared body text (multiple windows per file).
  std::map<std::string, std::weak_ptr<Text>> bodies_;

  Subwindow* current_ = nullptr;
  Window* errors_ = nullptr;
  std::string snarf_;
  bool exited_ = false;
  int next_id_ = 1;
  Counters counters_;

  // Where the last B2 sweep happened (for tag '!' commands and drawing).
  Window* last_exec_win_ = nullptr;
  Selection last_exec_sel_;
  Subwindow* last_exec_sub_ = nullptr;
};

}  // namespace help

#endif  // SRC_CORE_HELP_H_
