#include "src/core/help.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/cc/ctools.h"
#include "src/core/fileserver.h"
#include "src/fs/server.h"
#include "src/obs/trace.h"
#include "src/regexp/cache.h"
#include "src/regexp/regexp.h"
#include "src/shell/coreutils.h"
#include "src/shell/mk.h"
#include "src/text/address.h"
#include "src/text/search.h"

namespace help {

Help::Help(const Options& options) {
  ninep_ = std::make_unique<NinepServer>(&vfs_);
  shell_ = std::make_unique<Shell>(&vfs_, &registry_, &procs_);
  page_ = std::make_unique<Page>(options.width, options.height, 2);
  vfs_.MkdirAll("/mnt/help");
  vfs_.MkdirAll("/tmp");
  if (options.install_userland) {
    RegisterCoreutils(&vfs_, &registry_);
    RegisterCompilerTools(&vfs_, &registry_);
    RegisterMk(&vfs_, &registry_);
  }
  InstallHelpFs(this);
  // Trace events carry the logical tick of this instance's clock; the last
  // Help constructed wins (tests build several; only one is ever "the" UI).
  obs::Tracer::Global().BindClock(vfs_.clock());
}

Help::~Help() { obs::Tracer::Global().UnbindClock(vfs_.clock()); }

// ---------------------------------------------------------------------------
// Gesture plumbing.

Subwindow* Help::SubAt(Point p) {
  Page::Hit hit = page_->HitTest(p);
  return hit.sub;
}

Selection Help::SweepIn(Subwindow* sub, Point from, Point to) {
  size_t q0 = sub->frame.PointToOffset(from);
  size_t q1 = sub->frame.PointToOffset(to);
  if (q1 < q0) {
    std::swap(q0, q1);
  }
  return {q0, q1};
}

void Help::MouseSelect(Point from, Point to) {
  counters_.button_presses++;
  Page::Hit hit = page_->HitTest(from);
  if (hit.tab_index >= 0) {
    // Button 1 on a window tab reveals the window.
    Column& col = page_->col(hit.column);
    Window* w = col.windows()[static_cast<size_t>(hit.tab_index)];
    col.MakeVisible(w);
    return;
  }
  if (hit.on_column_tab) {
    page_->ToggleExpand(hit.column);
    return;
  }
  if (hit.on_scrollbar) {
    // Button 1 in the scroll bar scrolls backward, proportionally to how far
    // down the bar the click landed (the 8½ convention).
    int lines = from.y - hit.window->ScrollbarRect().y0 + 1;
    hit.window->ScrollLines(-lines);
    return;
  }
  if (hit.sub == nullptr) {
    return;
  }
  hit.sub->sel = SweepIn(hit.sub, from, to);
  current_ = hit.sub;
}

void Help::MouseExec(Point from, Point to) {
  counters_.button_presses++;
  Page::Hit hit = page_->HitTest(from);
  if (hit.on_scrollbar) {
    // Button 2 in the scroll bar jumps to the absolute position.
    Rect sb = hit.window->ScrollbarRect();
    hit.window->ScrollTo(static_cast<double>(from.y - sb.y0) /
                         static_cast<double>(std::max(1, sb.height())));
    return;
  }
  if (hit.sub == nullptr) {
    return;
  }
  Selection sel = SweepIn(hit.sub, from, to);
  if (sel.null()) {
    // A click anywhere in a word executes the whole word (rule of defaults).
    sel = hit.sub->text->ExpandWord(sel.q0);
  }
  if (sel.null()) {
    return;
  }
  std::string text = hit.sub->text->Utf8Range(sel.q0, sel.q1);
  last_exec_win_ = hit.window;
  last_exec_sel_ = sel;
  last_exec_sub_ = hit.sub;
  counters_.commands_executed++;
  Status s = ExecuteText(text, hit.window);
  if (!s.ok()) {
    AppendErrors(s.message() + "\n");
  }
}

void Help::ChordCut() {
  counters_.button_presses++;
  Status s = CmdCut();
  if (!s.ok()) {
    AppendErrors(s.message() + "\n");
  }
}

void Help::ChordPaste() {
  counters_.button_presses++;
  Status s = CmdPaste();
  if (!s.ok()) {
    AppendErrors(s.message() + "\n");
  }
}

void Help::ChordSnarf() {
  counters_.button_presses++;
  CmdSnarf();
}

void Help::MouseDrag(Point from, Point to) {
  counters_.button_presses++;
  Page::Hit hit = page_->HitTest(from);
  if (hit.window == nullptr) {
    return;
  }
  if (hit.on_scrollbar) {
    // Button 3 in the scroll bar scrolls forward.
    int lines = from.y - hit.window->ScrollbarRect().y0 + 1;
    hit.window->ScrollLines(lines);
    return;
  }
  if (hit.sub != &hit.window->tag()) {
    return;  // only tags are drag handles
  }
  page_->Drag(hit.window, to);
}

void Help::ClickWindowTab(int column, int index) {
  counters_.button_presses++;
  if (column < 0 || column >= page_->ncols()) {
    return;
  }
  Column& col = page_->col(column);
  if (index < 0 || index >= static_cast<int>(col.windows().size())) {
    return;
  }
  col.MakeVisible(col.windows()[static_cast<size_t>(index)]);
}

void Help::ClickColumnTab(int column) {
  counters_.button_presses++;
  page_->ToggleExpand(column);
}

void Help::Type(std::string_view utf8) {
  RuneString runes = RunesFromUtf8(utf8);
  counters_.keystrokes += static_cast<int>(runes.size());
  OBS_INSTANT("events.type", runes.size());
  Subwindow* sub = current_;
  if (sub == nullptr) {
    return;
  }
  Text& t = *sub->text;
  t.BeginChange();
  t.Replace(sub->sel.q0, sub->sel.q1, runes);
  sub->sel = {sub->sel.q0 + runes.size(), sub->sel.q0 + runes.size()};
  current_ = sub;
  if (sub->window != nullptr && !sub->is_tag) {
    TouchBody(sub->window);
  } else if (sub->window != nullptr) {
    sub->Relayout();
  }
}

// ---------------------------------------------------------------------------
// Execution.

bool Help::IsBuiltin(std::string_view word) const {
  static const char* kBuiltins[] = {"Open",    "Cut",  "Paste", "Snarf", "New",
                                    "Write",   "Pattern", "Text", "Exit", "Undo",
                                    "Redo",    "Send"};
  for (const char* b : kBuiltins) {
    if (word == b) {
      return true;
    }
  }
  return false;
}

Status Help::ExecuteText(std::string_view text, Window* window) {
  OBS_SPAN("help.exec");
  std::vector<std::string> words = Tokenize(text);
  if (words.empty()) {
    return Status::Ok();
  }
  const std::string& cmd = words[0];
  if (IsBuiltin(cmd)) {
    OBS_COUNT("help.exec.builtin", 1);
    std::vector<std::string> args(words.begin() + 1, words.end());
    return ExecBuiltin(cmd, args, window);
  }
  if (HasSuffix(cmd, "!")) {
    OBS_COUNT("help.exec.window_op", 1);
    // Window operations: no arguments, apply to the window they are
    // executed in.
    if (window == nullptr) {
      return Status::Error(cmd + ": no window");
    }
    if (cmd == "Close!") {
      CloseWindow(window);
      return Status::Ok();
    }
    if (cmd == "Put!") {
      return PutWindow(window);
    }
    if (cmd == "Get!") {
      return GetWindow(window);
    }
    if (cmd == "Clone!") {
      // Extension ("multiple windows per file"): another window on the very
      // same body. Edits appear in both; Put! cleans every tag.
      return CloneWindow(window);
    }
    return Status::Error(cmd + ": unknown window command");
  }
  OBS_COUNT("help.exec.external", 1);
  return ExecExternal(text, window);
}

Status Help::ExecBuiltin(const std::string& cmd, const std::vector<std::string>& args,
                         Window* exec_win) {
  if (cmd == "Open") {
    return CmdOpen(args, exec_win);
  }
  if (cmd == "Cut") {
    return CmdCut();
  }
  if (cmd == "Paste") {
    return CmdPaste();
  }
  if (cmd == "Snarf") {
    return CmdSnarf();
  }
  if (cmd == "New") {
    return CmdNew(args);
  }
  if (cmd == "Write") {
    return CmdWrite(args);
  }
  if (cmd == "Pattern") {
    return CmdSearch(args, /*literal=*/false, exec_win);
  }
  if (cmd == "Text") {
    return CmdSearch(args, /*literal=*/true, exec_win);
  }
  if (cmd == "Exit") {
    exited_ = true;
    return Status::Ok();
  }
  if (cmd == "Undo") {
    return CmdUndo(false);
  }
  if (cmd == "Redo") {
    return CmdUndo(true);
  }
  if (cmd == "Send") {
    return CmdSend(exec_win);
  }
  return Status::Error(cmd + ": unknown builtin");
}

Status Help::ExecExternal(std::string_view text, Window* exec_win) {
  OBS_SPAN("help.exec.external");
  // The directory context comes from the tag of the window the command was
  // executed in; commands with no leading slash resolve there first, then in
  // /bin (the shell implements that search order).
  std::string cwd = exec_win != nullptr ? exec_win->ContextDir() : "/";
  Env child = env_.Clone();
  SetHelpselEnv(&child);
  std::string out;
  std::string err;
  Io io;
  io.out = &out;
  io.err = &err;
  auto r = shell_->Run(text, &child, cwd, {}, io);
  if (!r.ok()) {
    AppendErrors(r.message() + "\n");
    return Status::Ok();
  }
  // Standard and error output go to the Errors window.
  if (!out.empty()) {
    AppendErrors(out);
  }
  if (!err.empty()) {
    AppendErrors(err);
  }
  return Status::Ok();
}

void Help::SetHelpselEnv(Env* env) {
  if (current_ != nullptr && current_->window != nullptr) {
    env->SetString("helpsel", StrFormat("%d %zu %zu", current_->window->id(),
                                        current_->sel.q0, current_->sel.q1));
  }
}

// ---------------------------------------------------------------------------
// Built-in commands.

std::string Help::ContextDirForSelection(Window* fallback) {
  Window* w = current_ != nullptr ? current_->window : nullptr;
  if (w == nullptr) {
    w = fallback;
  }
  return w != nullptr ? w->ContextDir() : "/";
}

std::string Help::DefaultFileArg() {
  if (current_ == nullptr) {
    return std::string();
  }
  if (!current_->sel.null()) {
    // A non-null selection disables automatic expansion: taken literally.
    return current_->text->Utf8Range(current_->sel.q0, current_->sel.q1);
  }
  Selection fn = current_->text->ExpandFilename(current_->sel.q0);
  return current_->text->Utf8Range(fn.q0, fn.q1);
}

Status Help::CmdOpen(const std::vector<std::string>& args, Window* exec_win) {
  std::vector<std::string> targets = args;
  if (targets.empty()) {
    std::string def = DefaultFileArg();
    if (def.empty()) {
      return Status::Error("Open: no file name");
    }
    targets.push_back(def);
  }
  std::string context = ContextDirForSelection(exec_win);
  Window* near = current_ != nullptr ? current_->window : exec_win;
  Status last = Status::Ok();
  for (const std::string& t : targets) {
    auto r = OpenFile(t, context, near);
    if (!r.ok()) {
      last = r.status();
    }
  }
  return last;
}

Status Help::CmdCut() {
  if (current_ == nullptr || current_->sel.null()) {
    return Status::Ok();
  }
  Text& t = *current_->text;
  snarf_ = t.Utf8Range(current_->sel.q0, current_->sel.q1);
  t.BeginChange();
  t.Delete(current_->sel.q0, current_->sel.len());
  current_->sel = {current_->sel.q0, current_->sel.q0};
  if (current_->window != nullptr) {
    if (current_->is_tag) {
      current_->Relayout();
    } else {
      TouchBody(current_->window);
    }
  }
  return Status::Ok();
}

Status Help::CmdSnarf() {
  if (current_ == nullptr || current_->sel.null()) {
    return Status::Ok();
  }
  snarf_ = current_->text->Utf8Range(current_->sel.q0, current_->sel.q1);
  return Status::Ok();
}

Status Help::CmdPaste() {
  if (current_ == nullptr) {
    return Status::Ok();
  }
  Text& t = *current_->text;
  RuneString runes = RunesFromUtf8(snarf_);
  t.BeginChange();
  t.Replace(current_->sel.q0, current_->sel.q1, runes);
  current_->sel = {current_->sel.q0, current_->sel.q0 + runes.size()};
  if (current_->window != nullptr) {
    if (current_->is_tag) {
      current_->Relayout();
    } else {
      TouchBody(current_->window);
    }
  }
  return Status::Ok();
}

Status Help::CmdNew(const std::vector<std::string>& args) {
  std::string tagline = Join(args, " ");
  CreateWindow(tagline);
  return Status::Ok();
}

Status Help::CmdWrite(const std::vector<std::string>& args) {
  Window* w = current_ != nullptr ? current_->window : nullptr;
  if (w == nullptr) {
    return Status::Error("Write: no window");
  }
  if (args.empty()) {
    return PutWindow(w);
  }
  std::string path = JoinPath(w->ContextDir(), args[0]);
  Status s = vfs_.WriteFile(path, w->body().text->Utf8());
  if (!s.ok()) {
    return s;
  }
  return Status::Ok();
}

Status Help::CmdSearch(const std::vector<std::string>& args, bool literal,
                       Window* exec_win) {
  Window* w = current_ != nullptr ? current_->window : exec_win;
  if (w == nullptr) {
    return Status::Error("Pattern: no window");
  }
  std::string pattern = args.empty() ? snarf_ : Join(args, " ");
  if (pattern.empty()) {
    return Status::Error("Pattern: no pattern");
  }
  Subwindow& body = w->body();
  const Text& t = *body.text;
  size_t start = body.sel.q1;
  Selection found;
  bool ok = false;
  if (literal) {
    // Streaming Boyer-Moore-Horspool over the gap-buffer spans: no document
    // copy, no O(n·m) RuneString::find.
    RuneString needle = RunesFromUtf8(pattern);
    size_t pos = StreamFindLiteral(t, needle, start);
    if (pos == RuneString::npos && start > 0) {
      pos = StreamFindLiteral(t, needle, 0);  // wrap around
    }
    if (pos != RuneString::npos) {
      found = {pos, pos + needle.size()};
      ok = true;
    }
  } else {
    auto re = RegexpCache::Global().Get(pattern);
    if (!re.ok()) {
      return re.status();
    }
    auto m = StreamSearchWrap(t, *re.value(), start);
    if (m) {
      found = {m->begin, m->end};
      ok = true;
    }
  }
  if (!ok) {
    return Status::Error((literal ? "Text: " : "Pattern: ") + pattern + ": not found");
  }
  body.sel = found;
  current_ = &body;
  body.ShowOffset(found.q0);
  return Status::Ok();
}

Status Help::CmdUndo(bool redo) {
  Window* w = current_ != nullptr ? current_->window : nullptr;
  if (w == nullptr) {
    return Status::Ok();
  }
  size_t touched = 0;
  bool did = redo ? w->body().text->Redo(&touched) : w->body().text->Undo(&touched);
  if (did) {
    TouchBody(w);
    w->body().sel = {std::min(touched, w->body().text->size()),
                     std::min(touched, w->body().text->size())};
  }
  return Status::Ok();
}

// Send: the "traditional shell window" extension the paper lists as future
// work. Takes the current selection (or its whole line when null), runs it
// as a shell command in the window's directory context, and appends the
// output to the same window — so a New window plus typed commands behaves
// like a typescript.
Status Help::CmdSend(Window* exec_win) {
  Window* w = current_ != nullptr ? current_->window : exec_win;
  if (w == nullptr || current_ == nullptr) {
    return Status::Error("Send: no selection");
  }
  Text& body = *current_->text;
  std::string command;
  if (!current_->sel.null()) {
    command = body.Utf8Range(current_->sel.q0, current_->sel.q1);
  } else {
    Selection line = body.LineRange(body.LineAt(current_->sel.q0));
    command = body.Utf8Range(line.q0, line.q1);
  }
  std::string_view trimmed = TrimSpace(command);
  if (trimmed.empty()) {
    return Status::Error("Send: empty command");
  }
  Env child = env_.Clone();
  SetHelpselEnv(&child);
  std::string out;
  std::string err;
  Io io;
  io.out = &out;
  io.err = &err;
  auto r = shell_->Run(trimmed, &child, w->ContextDir(), {}, io);
  std::string result = out + err;
  if (!r.ok()) {
    result += r.message() + "\n";
  }
  Text& target = *w->body().text;
  if (target.size() > 0 && target.At(target.size() - 1) != '\n') {
    target.InsertNoUndo(target.size(), U"\n");
  }
  target.InsertNoUndo(target.size(), RunesFromUtf8(result));
  w->body().sel = {target.size(), target.size()};
  current_ = &w->body();
  w->body().ShowOffset(target.size() > 0 ? target.size() - 1 : 0);
  TouchBody(w);
  return Status::Ok();
}

Status Help::CloneWindow(Window* w) {
  int id = NextWindowId();
  auto tag = std::make_shared<Text>(w->tag().text->Utf8());
  Window* clone = page_->Create(id, tag, w->body().text, -1, w);
  wins_[id] = {clone,
               wins_.count(w->id()) != 0 ? wins_[w->id()].filename
                                         : std::string(),
               nullptr};
  counters_.windows_created++;
  RegisterWindowFiles(clone);
  UpdateDirtyTag(clone);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Windows and files.

std::shared_ptr<Text> Help::BodyForFile(const std::string& fullpath) {
  auto it = bodies_.find(fullpath);
  if (it != bodies_.end()) {
    if (auto live = it->second.lock()) {
      return live;
    }
    bodies_.erase(it);
  }
  auto body = std::make_shared<Text>();
  auto data = vfs_.ReadFile(fullpath);
  if (data.ok()) {
    body->SetAll(data.value());
  }
  bodies_[fullpath] = body;
  return body;
}

Window* Help::WindowForFile(std::string_view fullpath) {
  for (auto& [id, st] : wins_) {
    if (st.filename == fullpath) {
      return st.window;
    }
  }
  return nullptr;
}

Result<Window*> Help::OpenFile(std::string_view name, std::string_view context_dir,
                               Window* near, int col_hint) {
  OBS_SPAN("help.open");
  FileAddress fa = SplitFileAddress(name);
  if (fa.file.empty()) {
    return Status::Error("Open: empty file name");
  }
  std::string full = JoinPath(context_dir, fa.file);
  auto node = vfs_.Walk(full);
  if (!node.ok()) {
    return node.status();
  }
  bool is_dir = node.value()->dir();
  std::string key = is_dir && full != "/" ? full + "/" : full;

  if (Window* existing = WindowForFile(key)) {
    // "the command just guarantees that its window is visible"
    int col = page_->ColumnOf(existing);
    if (col >= 0) {
      page_->col(col).MakeVisible(existing);
    }
    if (!fa.addr.empty()) {
      SelectAddress(existing, fa.addr);
    } else {
      current_ = &existing->body();
    }
    return existing;
  }

  std::shared_ptr<Text> body;
  std::string display = key;
  if (is_dir) {
    // "help puts its name, including a final slash, in the tag and just
    // lists the contents in the body"
    body = std::make_shared<Text>();
    auto entries = vfs_.ReadDir(full);
    std::string listing;
    if (entries.ok()) {
      for (const StatInfo& e : entries.value()) {
        listing += e.name + (e.dir ? "/" : "") + "\n";
      }
    }
    body->SetAll(listing);
  } else {
    body = BodyForFile(full);
  }
  int id = NextWindowId();
  auto tag = std::make_shared<Text>(display + " Close! Get!");
  Window* w = page_->Create(id, tag, body, col_hint, near);
  wins_[id] = {w, key, nullptr};
  counters_.windows_created++;
  RegisterWindowFiles(w);
  if (!fa.addr.empty()) {
    SelectAddress(w, fa.addr);
  } else {
    current_ = &w->body();
    w->body().sel = {0, 0};
  }
  return w;
}

void Help::SelectAddress(Window* w, std::string_view addr) {
  OBS_SPAN("help.address");
  OBS_COUNT("help.address.resolves", 1);
  auto sel = EvalAddress(*w->body().text, addr);
  if (!sel.ok()) {
    AppendErrors(sel.message() + "\n");
    return;
  }
  w->body().sel = sel.value();
  current_ = &w->body();
  w->body().ShowOffset(sel.value().q0);
}

Window* Help::CreateWindow(std::string_view tagline, int col_hint) {
  int id = NextWindowId();
  std::string tagtext(tagline);
  if (tagtext.empty()) {
    tagtext = "Close!";
  }
  auto tag = std::make_shared<Text>(tagtext);
  auto body = std::make_shared<Text>();
  Window* near = current_ != nullptr ? current_->window : nullptr;
  Window* w = page_->Create(id, tag, body, col_hint, near);
  wins_[id] = {w, std::string(), nullptr};
  counters_.windows_created++;
  RegisterWindowFiles(w);
  return w;
}

void Help::CloseWindow(Window* w) {
  if (w == nullptr) {
    return;
  }
  UnregisterWindowFiles(w);
  if (errors_ == w) {
    errors_ = nullptr;
  }
  if (current_ == &w->tag() || current_ == &w->body()) {
    current_ = nullptr;
  }
  if (last_exec_win_ == w) {
    last_exec_win_ = nullptr;
    last_exec_sub_ = nullptr;
  }
  wins_.erase(w->id());
  page_->Remove(w);  // destroys the Window
}

Status Help::PutWindow(Window* w) {
  std::string name = w->TagFilename();
  if (name.empty() || HasSuffix(name, "/")) {
    return Status::Error("Put!: no file name in tag");
  }
  Status s = vfs_.WriteFile(name, w->body().text->Utf8());
  if (!s.ok()) {
    return s;
  }
  w->body().text->set_dirty(false);
  // Every window on this body becomes clean.
  for (auto& [id, st] : wins_) {
    if (st.window->body().text == w->body().text) {
      UpdateDirtyTag(st.window);
    }
  }
  return Status::Ok();
}

Status Help::GetWindow(Window* w) {
  std::string name = w->TagFilename();
  if (name.empty()) {
    return Status::Error("Get!: no file name in tag");
  }
  if (HasSuffix(name, "/")) {
    // Re-list the directory.
    auto entries = vfs_.ReadDir(CleanPath(name));
    if (!entries.ok()) {
      return entries.status();
    }
    std::string listing;
    for (const StatInfo& e : entries.value()) {
      listing += e.name + (e.dir ? "/" : "") + "\n";
    }
    w->body().text->SetAll(listing);
  } else {
    auto data = vfs_.ReadFile(name);
    if (!data.ok()) {
      return data.status();
    }
    w->body().text->SetAll(data.value());
  }
  TouchBody(w);
  return Status::Ok();
}

void Help::AppendErrors(std::string_view text) {
  if (text.empty()) {
    return;
  }
  OBS_COUNT("help.errors.appends", 1);
  if (errors_ == nullptr) {
    int id = NextWindowId();
    auto tag = std::make_shared<Text>("Errors Close!");
    auto body = std::make_shared<Text>();
    Window* near = current_ != nullptr ? current_->window : nullptr;
    errors_ = page_->Create(id, tag, body, -1, near);
    wins_[id] = {errors_, std::string(), nullptr};
    counters_.windows_created++;
    RegisterWindowFiles(errors_);
  }
  Text& body = *errors_->body().text;
  body.InsertNoUndo(body.size(), RunesFromUtf8(text));
  errors_->body().ShowOffset(body.size() > 0 ? body.size() - 1 : 0);
  errors_->Relayout();
}

void Help::UpdateDirtyTag(Window* w) {
  std::string name = w->TagFilename();
  bool should = w->body().text->dirty() && !name.empty() && !HasSuffix(name, "/") &&
                name != "Errors";
  Text& tag = *w->tag().text;
  std::string cur = tag.Utf8();
  bool has = cur.find("Put!") != std::string::npos;
  if (should && !has) {
    tag.InsertNoUndo(tag.size(), RunesFromUtf8(" Put!"));
  } else if (!should && has) {
    size_t pos = cur.find(" Put!");
    size_t len = 5;
    if (pos == std::string::npos) {
      pos = cur.find("Put!");
      len = 4;
    }
    // Tag text is ASCII here, so byte offsets equal rune offsets.
    tag.DeleteNoUndo(pos, len);
  }
  w->tag().Relayout();
}

void Help::TouchBody(Window* w) {
  for (auto& [id, st] : wins_) {
    Window* v = st.window;
    if (v->body().text != w->body().text) {
      continue;
    }
    size_t n = v->body().text->size();
    v->body().sel.q0 = std::min(v->body().sel.q0, n);
    v->body().sel.q1 = std::min(v->body().sel.q1, n);
    UpdateDirtyTag(v);
    v->Relayout();
  }
}

std::vector<Window*> Help::AllWindows() {
  std::vector<Window*> out;
  for (auto& [id, st] : wins_) {
    out.push_back(st.window);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rendering & inspection.

std::string Help::Render(bool annotated, bool show_last_exec) {
  if (show_last_exec && last_exec_sub_ != nullptr) {
    page_->Draw(current_, &last_exec_sel_, last_exec_sub_);
  } else {
    page_->Draw(current_);
  }
  return annotated ? page_->screen().RenderAnnotated() : page_->screen().Render();
}

Point Help::FindOnScreen(std::string_view needle, int occurrence) {
  page_->Draw(current_);
  int seen = 0;
  for (int y = 0; y < page_->screen().height(); y++) {
    std::string row = page_->screen().Row(y);
    size_t pos = 0;
    while ((pos = row.find(needle, pos)) != std::string::npos) {
      if (seen == occurrence) {
        // Byte offset == column only for ASCII rows; count runes up to pos.
        int x = static_cast<int>(RuneLen(std::string_view(row).substr(0, pos)));
        return {x, y};
      }
      seen++;
      pos++;
    }
  }
  return {-1, -1};
}

Point Help::FindInWindow(const Window* w, std::string_view needle, int occurrence) {
  page_->Draw(current_);
  if (w == nullptr || w->hidden()) {
    return {-1, -1};
  }
  int seen = 0;
  const Rect& r = w->rect();
  for (int y = r.y0; y < r.y1; y++) {
    std::string row = page_->screen().Row(y);
    RuneString runes = RunesFromUtf8(row);
    RuneString sub(runes.begin() + std::min<size_t>(static_cast<size_t>(r.x0), runes.size()),
                   runes.begin() + std::min<size_t>(static_cast<size_t>(r.x1), runes.size()));
    std::string segment = Utf8FromRunes(sub);
    size_t pos = 0;
    while ((pos = segment.find(needle, pos)) != std::string::npos) {
      if (seen == occurrence) {
        int x = r.x0 + static_cast<int>(RuneLen(std::string_view(segment).substr(0, pos)));
        return {x, y};
      }
      seen++;
      pos++;
    }
  }
  return {-1, -1};
}

}  // namespace help
