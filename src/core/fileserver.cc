#include "src/core/fileserver.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/server.h"
#include "src/obs/trace.h"
#include "src/text/address.h"

namespace help {

namespace {

// Every /mnt/help handler is wrapped in this decorator: each operation runs
// under the Help instance's 9P dispatch lock, so handlers keep their
// single-threaded invariants no matter which thread calls — a 9P worker
// (which already holds the lock in shared or exclusive mode; re-entry is a
// detected no-op that inherits the outer mode) or the UI/shell thread
// touching the same files directly through the Vfs, which acquires it
// exclusively here. In particular, index and new/ctl snapshot their contents
// at Open time *under this lock*, so a listing never tears against
// concurrent window creation.
class SerializedHandler : public FileHandler {
 public:
  SerializedHandler(Help* h, std::shared_ptr<FileHandler> inner)
      : h_(h), inner_(std::move(inner)) {}

  Status Open(OpenFile& f, uint8_t mode) override {
    auto lock = h_->ninep().LockDispatch();
    return inner_->Open(f, mode);
  }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    auto lock = h_->ninep().LockDispatch();
    return inner_->Read(f, offset, count);
  }
  bool Gather(OpenFile& f, uint64_t offset, uint32_t count,
              GatherView* out) override {
    auto lock = h_->ninep().LockDispatch();
    return inner_->Gather(f, offset, count, out);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    auto lock = h_->ninep().LockDispatch();
    return inner_->Write(f, offset, data);
  }
  void Clunk(OpenFile& f) override {
    auto lock = h_->ninep().LockDispatch();
    inner_->Clunk(f);
  }
  uint64_t Length(const Node& n) const override {
    auto lock = h_->ninep().LockDispatch();
    return inner_->Length(n);
  }
  // The dispatch classification asks the outermost handler, so the wrapper
  // must answer for what it wraps. Pure getters — no LockDispatch: they are
  // called from classification before any lock is decided on.
  bool OpenNeedsExclusive() const override {
    return inner_->OpenNeedsExclusive();
  }
  WindowShardPtr window_shard() const override {
    return inner_->window_shard();
  }

 private:
  Help* h_;
  std::shared_ptr<FileHandler> inner_;
};

std::shared_ptr<FileHandler> Serialized(Help* h, std::shared_ptr<FileHandler> inner) {
  return std::make_shared<SerializedHandler>(h, std::move(inner));
}

// Serves a snapshot string computed at open time.
class SnapshotHandler : public FileHandler {
 public:
  using Producer = std::function<std::string()>;
  explicit SnapshotHandler(Producer p) : producer_(std::move(p)) {}

  Status Open(OpenFile& f, uint8_t mode) override {
    f.state = producer_();
    return Status::Ok();
  }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset >= f.state.size()) {
      return std::string();
    }
    return f.state.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return ErrPerm("read-only file");
  }

 private:
  Producer producer_;
};

class NewCtlHandler : public FileHandler {
 public:
  explicit NewCtlHandler(Help* h) : h_(h) {}

  Status Open(OpenFile& f, uint8_t mode) override {
    Window* w = h_->CreateWindow("");
    f.state_int = w->id();
    f.state = StrFormat("%d\n", w->id());
    return Status::Ok();
  }
  // Open creates a window even when the mode is read-only, so a Topen of
  // new/ctl must never run under the shared dispatch lock.
  bool OpenNeedsExclusive() const override { return true; }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset >= f.state.size()) {
      return std::string();
    }
    return f.state.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    Window* w = nullptr;
    for (Window* cand : h_->AllWindows()) {
      if (cand->id() == f.state_int) {
        w = cand;
        break;
      }
    }
    if (w == nullptr) {
      return Status::Error("window is gone");
    }
    Status s = h_->HandleCtl(w, data);
    if (!s.ok()) {
      return s;
    }
    return static_cast<uint32_t>(data.size());
  }

 private:
  Help* h_;
};

class SnarfHandler : public FileHandler {
 public:
  explicit SnarfHandler(Help* h) : h_(h) {}

  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    const std::string& s = h_->snarf();
    if (offset >= s.size()) {
      return std::string();
    }
    return s.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    if (offset == 0) {
      h_->set_snarf(std::string(data));
    } else {
      std::string s = h_->snarf();
      s.resize(std::max<size_t>(s.size(), offset), ' ');
      s.replace(offset, data.size(), data);
      h_->set_snarf(std::move(s));
    }
    return static_cast<uint32_t>(data.size());
  }
  uint64_t Length(const Node& n) const override { return h_->snarf().size(); }

 private:
  Help* h_;
};

// Seqlock-validated Text read for the 9P shared-read path. Under the
// reader–writer discipline no writer can hold the dispatch lock while a
// shared reader does, so the first attempt virtually always validates; the
// sequence check is defense in depth against lock-discipline violations
// (e.g. a thread mutating a Text without LockDispatch). On persistent
// mismatch the kSharedReadRaced sentinel tells the server to re-run the
// request under the exclusive lock — it never reaches a client.
Result<std::string> SeqValidatedSubstr(Help* h, const Text& t, uint64_t offset,
                                       uint32_t count) {
  if (!h->ninep().SharedDispatchOnThisThread()) {
    return t.Utf8Substr(offset, count);  // fully serialized: plain read
  }
  for (int attempt = 0; attempt < 3; attempt++) {
    uint64_t seq = t.edit_seq();
    if ((seq & 1) != 0) {
      continue;  // an edit is mid-flight; re-snapshot
    }
    std::string data = t.Utf8Substr(offset, count);
    if (t.edit_seq() == seq) {
      return data;
    }
  }
  return Status::Error(std::string(kSharedReadRaced));
}

// Same validation for the O(1) stat length. Length has no error channel, so
// after bounded retries the last read wins — stat is advisory anyway.
uint64_t SeqValidatedBytes(Help* h, const Text& t) {
  if (!h->ninep().SharedDispatchOnThisThread()) {
    return t.Utf8Bytes();
  }
  for (int attempt = 0; attempt < 3; attempt++) {
    uint64_t seq = t.edit_seq();
    if ((seq & 1) != 0) {
      continue;
    }
    uint64_t n = t.Utf8Bytes();
    if (t.edit_seq() == seq) {
      return n;
    }
  }
  return t.Utf8Bytes();
}

// Handlers for one window's files. They hold the window id, not the pointer,
// and look it up per operation so a closed window yields a clean error.
class WindowFileHandler : public FileHandler {
 public:
  enum class Kind { kTag, kBody, kBodyApp, kCtl };

  WindowFileHandler(Help* h, int id, Kind kind, WindowShardPtr shard)
      : h_(h), id_(id), kind_(kind), shard_(std::move(shard)) {}

  // tag/body/bodyapp writes only touch this window's texts, so they may run
  // under the shard. ctl writes reach global Help state (layout, the current
  // window) and must stay structural — no shard, so classification falls
  // through to the epoch-exclusive path.
  WindowShardPtr window_shard() const override {
    return kind_ == Kind::kCtl ? nullptr : shard_;
  }

  Status Open(OpenFile& f, uint8_t mode) override {
    Window* w = Win();
    if (w == nullptr) {
      return Status::Error("window is gone");
    }
    if ((mode & kOtrunc) != 0) {
      if (kind_ == Kind::kBody) {
        return h_->SetBodyBytes(w, 0, "", /*truncate=*/true);
      }
      if (kind_ == Kind::kTag) {
        return h_->SetTagBytes(w, 0, "", /*truncate=*/true);
      }
    }
    return Status::Ok();
  }

  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    Window* w = Win();
    if (w == nullptr) {
      return Status::Error("window is gone");
    }
    switch (kind_) {
      case Kind::kTag:
        // Indexed range read: a client paging through a big body costs
        // O(log n + count) per read, not a full UTF-8 encode per packet.
        return SeqValidatedSubstr(h_, *w->tag().text, offset, count);
      case Kind::kBody:
        return SeqValidatedSubstr(h_, *w->body().text, offset, count);
      case Kind::kBodyApp:
        return std::string();  // write-only
      case Kind::kCtl: {
        std::string data = StrFormat("%d\n", id_);
        if (offset >= data.size()) {
          return std::string();
        }
        return data.substr(offset, count);
      }
    }
    return std::string();
  }

  // Zero-copy body/tag reads: resolve the byte range to the gap buffer's two
  // rune spans plus owned fringe bytes, with the same seqlock discipline as
  // SeqValidatedSubstr — in shared mode the view carries a validation token
  // the server re-checks after encoding; any mismatch falls back to the
  // staged path (which re-runs validation and, on persistent racing, routes
  // the request through the exclusive lock). kBodyApp (always empty) and
  // kCtl (a few bytes) keep the staged path.
  bool Gather(OpenFile& f, uint64_t offset, uint32_t count,
              GatherView* out) override {
    Window* w = Win();
    if (w == nullptr) {
      return false;  // the Read fallback produces the error
    }
    const Text* t = nullptr;
    switch (kind_) {
      case Kind::kTag:
        t = w->tag().text.get();
        break;
      case Kind::kBody:
        t = w->body().text.get();
        break;
      case Kind::kBodyApp:
      case Kind::kCtl:
        return false;
    }
    const bool shared = h_->ninep().SharedDispatchOnThisThread();
    uint64_t seq = 0;
    if (shared) {
      for (int attempt = 0;; attempt++) {
        seq = t->edit_seq();
        if ((seq & 1) == 0) {
          break;
        }
        if (attempt >= 2) {
          return false;  // edit mid-flight: staged fallback handles retries
        }
      }
    }
    Text::GatherResult g = t->GatherUtf8(offset, count);
    *out = GatherView();
    out->prefix = std::move(g.prefix);
    out->runes = g.runes;
    out->suffix = std::move(g.suffix);
    out->bytes = g.bytes;
    if (shared) {
      out->seq_source = t->edit_seq_cell();
      out->seq_expected = seq;
      if (!out->Validate()) {
        return false;  // raced during resolve; staged fallback re-runs
      }
    }
    return true;
  }

  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    Window* w = Win();
    if (w == nullptr) {
      return Status::Error("window is gone");
    }
    Status s;
    switch (kind_) {
      case Kind::kTag:
        s = h_->SetTagBytes(w, offset, data, /*truncate=*/false);
        break;
      case Kind::kBody:
        s = h_->SetBodyBytes(w, offset, data, /*truncate=*/false);
        break;
      case Kind::kBodyApp:
        s = h_->AppendBody(w, data);
        break;
      case Kind::kCtl:
        s = h_->HandleCtl(w, data);
        break;
    }
    if (!s.ok()) {
      return s;
    }
    return static_cast<uint32_t>(data.size());
  }

  uint64_t Length(const Node& n) const override {
    Window* w = Win();
    if (w == nullptr) {
      return 0;
    }
    switch (kind_) {
      case Kind::kTag:
        // O(1): stat never encodes the body.
        return SeqValidatedBytes(h_, *w->tag().text);
      case Kind::kBody:
        return SeqValidatedBytes(h_, *w->body().text);
      default:
        return 0;
    }
  }

 private:
  Window* Win() const {
    for (Window* w : h_->AllWindows()) {
      if (w->id() == id_) {
        return w;
      }
    }
    return nullptr;
  }

  Help* h_;
  int id_;
  Kind kind_;
  WindowShardPtr shard_;
};

// Extension: writing "<dir> <name[:addr]>" to /mnt/help/open opens a file
// exactly as the Open command would. This is what lets `decl` close the loop
// ("a future change to help will be to close this loop so the Open operation
// also happens automatically") from a shell script.
class OpenRequestHandler : public FileHandler {
 public:
  explicit OpenRequestHandler(Help* h) : h_(h) {}

  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    return std::string();
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    for (const std::string& line : Split(data, '\n')) {
      std::vector<std::string> words = Tokenize(line);
      if (words.empty()) {
        continue;
      }
      if (words.size() < 2) {
        return Status::Error("open: want 'dir name'");
      }
      auto r = h_->OpenFile(words[1], words[0], nullptr);
      if (!r.ok()) {
        return r.status();
      }
    }
    return static_cast<uint32_t>(data.size());
  }

 private:
  Help* h_;
};

// Control file for the global tracer. Writes accept newline-separated
// commands: on / off / clear / json / text. Reads snapshot at open time:
// normally a short status, or — after a `json` write — the whole ring as
// Chrome trace-event JSON (loadable in chrome://tracing or Perfetto);
// `text` switches the read payload back. Deliberately *not* serialized
// through the dispatch lock: the tracer and registry are internally
// thread-safe, so the trace stays readable even while a dispatch is stuck.
class TraceCtlHandler : public FileHandler {
 public:
  Status Open(OpenFile& f, uint8_t mode) override {
    obs::Tracer& t = obs::Tracer::Global();
    f.state = json_mode_.load(std::memory_order_relaxed) ? t.RenderChromeJson()
                                                         : t.RenderStatus();
    return Status::Ok();
  }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset >= f.state.size()) {
      return std::string();
    }
    return f.state.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    obs::Tracer& t = obs::Tracer::Global();
    for (const std::string& line : Split(data, '\n')) {
      std::string_view cmd = TrimSpace(line);
      if (cmd.empty()) {
        continue;
      }
      if (cmd == "on") {
        t.Enable();
      } else if (cmd == "off") {
        t.Disable();
      } else if (cmd == "clear") {
        t.Clear();
      } else if (cmd == "json") {
        json_mode_.store(true, std::memory_order_relaxed);
      } else if (cmd == "text") {
        json_mode_.store(false, std::memory_order_relaxed);
      } else {
        return Status::Error("tracectl: unknown command '" + std::string(cmd) + "'");
      }
    }
    return static_cast<uint32_t>(data.size());
  }

 private:
  std::atomic<bool> json_mode_{false};
};

// One live connection's status or stats file under /mnt/help/net/<cid>/.
// Holds the cid, not the ConnInfo: the connection may die while the file is
// open (or between Walk and Topen), and a re-lookup per open answers
// "connection is gone" exactly like a window file whose window was deleted.
// Like the other observability files, not Serialized — ConnInfo is all
// relaxed atomics and the server queries are leaf-locked, so these stay
// readable while a dispatch is stuck.
class ConnFileHandler : public FileHandler {
 public:
  enum class Kind : uint8_t { kStatus, kStats };

  ConnFileHandler(NinepServer* srv, uint64_t cid, Kind kind)
      : srv_(srv), cid_(cid), kind_(kind) {}

  Status Open(OpenFile& f, uint8_t mode) override {
    std::shared_ptr<ConnInfo> info = srv_->net().Find(cid_);
    if (info == nullptr) {
      return Status::Error("connection is gone");
    }
    f.state = kind_ == Kind::kStatus ? info->RenderStatus() : info->RenderStats();
    return Status::Ok();
  }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset >= f.state.size()) {
      return std::string();
    }
    return f.state.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return ErrPerm("read-only file");
  }

 private:
  NinepServer* srv_;
  uint64_t cid_;
  Kind kind_;
};

// Synthesizes /mnt/help/net/<cid>/ — one numbered directory per live
// connection, the Plan 9 /net idiom. Nothing creates or destroys Vfs nodes
// at accept/close time (the listener loop must never touch the tree);
// instead lookups and listings consult the server's NetState and lazily
// build a small cached subtree per connection, pruned when the connection
// dies. Runs under the dispatch lock in *either* mode, so it carries its own
// mutex. Qids live in a high range so they can't collide with the Vfs's
// sequential ids.
class NetDirSynth : public DirSynth {
 public:
  static constexpr uint64_t kQidBase = 1ull << 48;

  NetDirSynth(NinepServer* srv, Node* parent) : srv_(srv), parent_(parent) {}

  NodePtr Lookup(std::string_view name) override {
    uint64_t cid = 0;
    if (name.empty() || name.size() > 8) {
      return nullptr;
    }
    for (char ch : name) {
      if (ch < '0' || ch > '9') {
        return nullptr;
      }
      cid = cid * 10 + static_cast<uint64_t>(ch - '0');
    }
    std::lock_guard<std::mutex> lk(mu_);
    return DirForLocked(cid);
  }

  std::vector<NodePtr> List() override {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<NodePtr> out;
    std::vector<std::shared_ptr<ConnInfo>> live = srv_->net().List();
    for (const auto& info : live) {
      NodePtr d = DirForLocked(info->cid());
      if (d != nullptr) {
        out.push_back(d);
      }
    }
    // Prune directories of connections that have since closed.
    for (auto it = cache_.begin(); it != cache_.end();) {
      bool alive = false;
      for (const auto& info : live) {
        if (info->cid() == it->first) {
          alive = true;
          break;
        }
      }
      it = alive ? std::next(it) : cache_.erase(it);
    }
    return out;
  }

 private:
  NodePtr DirForLocked(uint64_t cid) {
    if (srv_->net().Find(cid) == nullptr) {
      cache_.erase(cid);
      return nullptr;
    }
    auto it = cache_.find(cid);
    if (it != cache_.end()) {
      return it->second;
    }
    auto dir = std::make_shared<Node>(std::to_string(cid), /*dir=*/true,
                                      kQidBase + cid * 4);
    dir->set_parent(parent_);
    auto status = std::make_shared<Node>("status", /*dir=*/false,
                                         kQidBase + cid * 4 + 1);
    status->set_handler(std::make_shared<ConnFileHandler>(
        srv_, cid, ConnFileHandler::Kind::kStatus));
    auto stats = std::make_shared<Node>("stats", /*dir=*/false,
                                        kQidBase + cid * 4 + 2);
    stats->set_handler(std::make_shared<ConnFileHandler>(
        srv_, cid, ConnFileHandler::Kind::kStats));
    dir->AddChild(std::move(status));
    dir->AddChild(std::move(stats));
    cache_[cid] = dir;
    return dir;
  }

  NinepServer* srv_;
  Node* parent_;
  std::mutex mu_;
  std::map<uint64_t, NodePtr> cache_;
};

// /mnt/help/net/slowctl: reads show the flight recorder's settings; writes
// accept "threshold <us>" and "clear".
class SlowCtlHandler : public FileHandler {
 public:
  explicit SlowCtlHandler(NinepServer* srv) : srv_(srv) {}

  Status Open(OpenFile& f, uint8_t mode) override {
    f.state = srv_->net().recorder().RenderCtl();
    return Status::Ok();
  }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset >= f.state.size()) {
      return std::string();
    }
    return f.state.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    FlightRecorder& rec = srv_->net().recorder();
    for (const std::string& line : Split(data, '\n')) {
      std::vector<std::string> words = Tokenize(line);
      if (words.empty()) {
        continue;
      }
      if (words[0] == "clear" && words.size() == 1) {
        rec.Clear();
      } else if (words[0] == "threshold" && words.size() == 2) {
        long us = ParseInt(words[1]);
        if (us < 0) {
          return Status::Error("slowctl: bad threshold '" + words[1] + "'");
        }
        rec.set_threshold_us(static_cast<uint64_t>(us));
      } else {
        return Status::Error("slowctl: unknown command '" + words[0] + "'");
      }
    }
    return static_cast<uint32_t>(data.size());
  }

 private:
  NinepServer* srv_;
};

// /mnt/help/statsctl: "clear" zeroes the ninep.*/net.* counters and
// histograms (the /mnt/help/stats view), so a bench can measure steady-state
// percentiles without a process restart. Gauges (in_flight, active_conns)
// are left alone.
class StatsCtlHandler : public FileHandler {
 public:
  explicit StatsCtlHandler(NinepServer* srv) : srv_(srv) {}

  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    return std::string();
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    for (const std::string& line : Split(data, '\n')) {
      std::string_view cmd = TrimSpace(line);
      if (cmd.empty()) {
        continue;
      }
      if (cmd == "clear") {
        srv_->metrics().Reset();
      } else {
        return Status::Error("statsctl: unknown command '" + std::string(cmd) + "'");
      }
    }
    return static_cast<uint32_t>(data.size());
  }

 private:
  NinepServer* srv_;
};

}  // namespace

void InstallHelpFs(Help* h) {
  Vfs& vfs = h->vfs();
  vfs.MkdirAll("/mnt/help/new");
  vfs.AttachHandler("/mnt/help/index",
                    Serialized(h, std::make_shared<SnapshotHandler>([h] {
                      std::string out;
                      for (Window* w : h->AllWindows()) {
                        std::string tagline = w->tag().text->Utf8();
                        size_t nl = tagline.find('\n');
                        if (nl != std::string::npos) {
                          tagline = tagline.substr(0, nl);
                        }
                        out += StrFormat("%d\t%s\n", w->id(), tagline.c_str());
                      }
                      return out;
                    })));
  vfs.AttachHandler("/mnt/help/new/ctl", Serialized(h, std::make_shared<NewCtlHandler>(h)));
  vfs.AttachHandler("/mnt/help/snarf", Serialized(h, std::make_shared<SnarfHandler>(h)));
  vfs.AttachHandler("/mnt/help/open",
                    Serialized(h, std::make_shared<OpenRequestHandler>(h)));
  // The observability surface, served the paper's own way: as files you can
  // cat. stats keeps PR 1's 9P-only byte format; metrics is every counter and
  // histogram in the process-wide registry; trace/tracectl expose the event
  // ring. The new three skip the dispatch lock — the tracer and registry are
  // internally thread-safe, so they stay readable under load (or deadlock).
  vfs.AttachHandler("/mnt/help/stats",
                    Serialized(h, std::make_shared<SnapshotHandler>(
                                      [h] { return h->ninep().metrics().Render(); })));
  vfs.AttachHandler("/mnt/help/metrics", std::make_shared<SnapshotHandler>([] {
                      return obs::Registry::Global().RenderText();
                    }));
  vfs.AttachHandler("/mnt/help/trace", std::make_shared<SnapshotHandler>([] {
                      return obs::Tracer::Global().RenderText();
                    }));
  vfs.AttachHandler("/mnt/help/tracectl", std::make_shared<TraceCtlHandler>());
  vfs.AttachHandler("/mnt/help/statsctl",
                    std::make_shared<StatsCtlHandler>(&h->ninep()));
  // The network introspection tree. None of these are Serialized: the whole
  // point of /mnt/help/net is to stay readable while dispatch is wedged, and
  // NetState/ConnInfo/FlightRecorder never touch the dispatch lock.
  vfs.MkdirAll("/mnt/help/net");
  vfs.AttachHandler("/mnt/help/net/clients",
                    std::make_shared<SnapshotHandler>(
                        [h] { return h->ninep().net().RenderClients(); }));
  vfs.AttachHandler("/mnt/help/net/slow",
                    std::make_shared<SnapshotHandler>([h] {
                      return h->ninep().net().recorder().RenderText();
                    }));
  vfs.AttachHandler("/mnt/help/net/slowctl",
                    std::make_shared<SlowCtlHandler>(&h->ninep()));
  auto net = vfs.Walk("/mnt/help/net");
  if (net.ok()) {
    net.value()->set_dir_synth(
        std::make_shared<NetDirSynth>(&h->ninep(), net.value().get()));
  }
}

// --- Help member functions that form the file-server surface ----------------

void Help::RegisterWindowFiles(Window* w) {
  // Find or create the window's mutation shard. Windows sharing a body text
  // (clones, same-file opens) must share a shard — an edit through one is
  // visible through all, so they are one lock domain; the domain id is the
  // id of the first window that minted the shard.
  WindowShardPtr shard;
  for (const auto& [id, st] : wins_) {
    if (id != w->id() && st.shard != nullptr && st.window != nullptr &&
        st.window->body().text == w->body().text) {
      shard = st.shard;
      break;
    }
  }
  if (shard == nullptr) {
    shard = std::make_shared<WindowShard>();
    shard->domain = static_cast<uint64_t>(w->id());
  }
  wins_[w->id()].shard = shard;
  std::string dir = StrFormat("/mnt/help/%d", w->id());
  vfs_.MkdirAll(dir);
  using K = WindowFileHandler::Kind;
  vfs_.AttachHandler(
      dir + "/tag",
      Serialized(this, std::make_shared<WindowFileHandler>(this, w->id(), K::kTag,
                                                           shard)));
  vfs_.AttachHandler(
      dir + "/body",
      Serialized(this, std::make_shared<WindowFileHandler>(this, w->id(), K::kBody,
                                                           shard)));
  vfs_.AttachHandler(
      dir + "/bodyapp",
      Serialized(this, std::make_shared<WindowFileHandler>(
                           this, w->id(), K::kBodyApp, shard)));
  vfs_.AttachHandler(
      dir + "/ctl",
      Serialized(this, std::make_shared<WindowFileHandler>(this, w->id(), K::kCtl,
                                                           shard)));
}

void Help::UnregisterWindowFiles(Window* w) {
  std::string dir = StrFormat("/mnt/help/%d", w->id());
  for (const char* f : {"tag", "body", "bodyapp", "ctl"}) {
    vfs_.Remove(dir + "/" + f);
  }
  vfs_.Remove(dir);
}

namespace {

// Byte-level patch of a Text (program writes arrive as bytes). Writes that
// land exactly at the end — the overwhelmingly common shape: loggers and
// typescript-style clients stream sequential writes — append incrementally
// instead of re-encoding and re-decoding the whole document. Stored text is
// always whole runes, so an append can never complete a partial encoding
// left by earlier bytes; decoding the new data alone is byte-equivalent to
// the rewrite path.
void PatchText(Text* t, uint64_t offset, std::string_view data, bool truncate) {
  if (!truncate && offset == t->Utf8Bytes()) {
    t->InsertNoUndo(t->size(), RunesFromUtf8(data));
    return;
  }
  std::string cur = truncate ? std::string() : t->Utf8();
  if (offset > cur.size()) {
    cur.resize(offset, ' ');
  }
  if (offset + data.size() >= cur.size()) {
    cur.resize(offset + data.size());
  }
  cur.replace(static_cast<size_t>(offset), data.size(), data);
  bool was_dirty = t->dirty();
  t->SetAll(cur);
  t->set_dirty(was_dirty);
}

}  // namespace

Status Help::SetBodyBytes(Window* w, uint64_t offset, std::string_view data,
                          bool truncate) {
  PatchText(w->body().text.get(), offset, data, truncate);
  TouchBody(w);
  return Status::Ok();
}

Status Help::AppendBody(Window* w, std::string_view data) {
  Text& t = *w->body().text;
  t.InsertNoUndo(t.size(), RunesFromUtf8(data));
  TouchBody(w);
  return Status::Ok();
}

Status Help::SetTagBytes(Window* w, uint64_t offset, std::string_view data, bool truncate) {
  PatchText(w->tag().text.get(), offset, data, truncate);
  w->tag().Relayout();
  return Status::Ok();
}

Status Help::HandleCtl(Window* w, std::string_view commands) {
  for (const std::string& line : Split(commands, '\n')) {
    std::string_view trimmed = TrimSpace(line);
    if (trimmed.empty()) {
      continue;
    }
    std::vector<std::string> words = Tokenize(trimmed);
    const std::string& cmd = words[0];
    if (cmd == "tag") {
      size_t pos = trimmed.find("tag");
      std::string text(TrimSpace(trimmed.substr(pos + 3)));
      w->tag().text->SetAll(text);
      w->tag().Relayout();
    } else if (cmd == "show") {
      if (words.size() < 2) {
        return Status::Error("ctl: show needs an address");
      }
      int col = page_->ColumnOf(w);
      if (col >= 0) {
        page_->col(col).MakeVisible(w);
      }
      SelectAddress(w, words[1]);
    } else if (cmd == "select") {
      if (words.size() < 3) {
        return Status::Error("ctl: select needs q0 q1");
      }
      long q0 = ParseInt(words[1]);
      long q1 = ParseInt(words[2]);
      if (q0 < 0 || q1 < 0) {
        return Status::Error("ctl: bad select offsets");
      }
      size_t n = w->body().text->size();
      Selection sel{static_cast<size_t>(q0), static_cast<size_t>(q1)};
      sel.q0 = std::min(sel.q0, n);
      sel.q1 = std::min(std::max(sel.q1, sel.q0), n);
      w->body().sel = sel;
      current_ = &w->body();
      w->body().ShowOffset(sel.q0);
    } else if (cmd == "insert") {
      if (words.size() < 2) {
        return Status::Error("ctl: insert needs an offset");
      }
      long q = ParseInt(words[1]);
      if (q < 0) {
        return Status::Error("ctl: bad insert offset");
      }
      // The text is everything after the offset word, untrimmed (trailing
      // spaces are part of the payload).
      std::string_view raw = line;
      size_t text_at = raw.find(words[1], raw.find("insert") + 6) + words[1].size();
      std::string_view text = raw.substr(std::min(raw.size(), text_at));
      if (!text.empty() && text[0] == ' ') {
        text.remove_prefix(1);
      }
      Text& t = *w->body().text;
      t.InsertNoUndo(std::min(static_cast<size_t>(q), t.size()), RunesFromUtf8(text));
      TouchBody(w);
    } else if (cmd == "delete") {
      if (words.size() < 3) {
        return Status::Error("ctl: delete needs q0 q1");
      }
      long q0 = ParseInt(words[1]);
      long q1 = ParseInt(words[2]);
      if (q0 < 0 || q1 < q0) {
        return Status::Error("ctl: bad delete range");
      }
      w->body().text->DeleteNoUndo(static_cast<size_t>(q0), static_cast<size_t>(q1 - q0));
      TouchBody(w);
    } else if (cmd == "clean") {
      w->body().text->set_dirty(false);
      UpdateDirtyTag(w);
    } else {
      return Status::Error("ctl: unknown message '" + cmd + "'");
    }
  }
  return Status::Ok();
}

}  // namespace help
