// The raw input layer: a mouse/keyboard event state machine that turns
// press/move/release streams into help's gestures, including the chords the
// paper describes:
//
//   "While the left button is still held down after a selection, clicking
//    the middle button executes Cut; clicking the right button executes
//    Paste... One may even click the middle and then right buttons, while
//    holding the left down, to execute a cut-and-paste, that is, to remember
//    the text in the cut buffer for later pasting."
//
// The high-level Help gesture methods (MouseSelect, MouseExec, ChordCut, …)
// remain the scripted interface; MouseMachine is what a real device loop
// would feed. Events are delivered one at a time; the machine tracks which
// buttons are down and where the sweep started, and fires the appropriate
// gesture on the appropriate transition:
//
//   B1 press … release                  -> MouseSelect(start, end)
//   B1 press … B2 click … B1 release    -> select, then ChordCut
//   B1 press … B3 click … B1 release    -> select, then ChordPaste
//   B1 press … B2 click, B3 click …     -> select, Cut, then Paste (snarf)
//   B2 press … release                  -> MouseExec(start, end)
//   B3 press … release (same point, tag)    -> window drag handled by Help
//   B3 press … release (moved)              -> MouseDrag(start, end)
#ifndef SRC_CORE_EVENTS_H_
#define SRC_CORE_EVENTS_H_

#include "src/core/help.h"

namespace help {

enum class Button { kLeft = 1, kMiddle = 2, kRight = 3 };

struct MouseEvent {
  enum class Kind { kPress, kMove, kRelease };
  Kind kind;
  Button button = Button::kLeft;  // ignored for kMove
  Point p;
};

class MouseMachine {
 public:
  explicit MouseMachine(Help* h) : h_(h) {}

  // Feeds one event; fires gestures on the transitions described above.
  void Feed(const MouseEvent& e);

  // Keyboard goes straight through (typing has no modal state).
  void Key(Rune r) { h_->Type(Utf8FromRunes(RuneString(1, r))); }

  bool left_down() const { return left_down_; }

 private:
  void Press(Button b, Point p);
  void Release(Button b, Point p);

  Help* h_;
  bool left_down_ = false;
  bool middle_down_ = false;
  bool right_down_ = false;
  bool chorded_ = false;      // a chord fired during this B1 hold
  bool chord_cut_seen_ = false;
  Point press_at_{0, 0};      // where the primary button went down
  Point last_{0, 0};          // latest pointer position
  Button primary_ = Button::kLeft;  // the button that started the gesture
  bool gesture_active_ = false;
};

}  // namespace help

#endif  // SRC_CORE_EVENTS_H_
