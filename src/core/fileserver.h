// The /mnt/help file service — "the interface seen by programs". Every
// window is a numbered directory of files:
//
//   /mnt/help/index      window number, tab, first line of the tag
//   /mnt/help/new/ctl    opening it creates a window (placed automatically
//                        near the current selection); reading it back yields
//                        the new window's number
//   /mnt/help/snarf      the cut buffer (what help/buf prints)
//   /mnt/help/stats      9P service metrics: per-op counters and latency
//                        percentiles, bytes in/out, in-flight depth, the
//                        shared-read path counters, and the socket
//                        connection layer's net_* block (accepts, live
//                        conns, reaps, backpressure stalls, frame errors,
//                        wire bytes — see src/fs/listener.h)
//   /mnt/help/open       write "<dir> <name[:addr]>" to open a file
//   /mnt/help/N/tag      the tag line
//   /mnt/help/N/body     the body text (writes replace; reads see UTF-8)
//   /mnt/help/N/bodyapp  append-only view of the body
//   /mnt/help/N/ctl      control messages (see Help::HandleCtl)
//
// Because these are ordinary VFS files, shell scripts get the entire GUI
// with cat/echo redirection — the paper's decl browser is ten lines of rc.
//
// Every handler installed here runs under the owning Help instance's 9P
// dispatch lock (NinepServer::LockDispatch), so concurrent protocol workers
// and the UI thread cannot interleave inside Help; index and new/ctl
// snapshot their contents at Open time under that lock.
#ifndef SRC_CORE_FILESERVER_H_
#define SRC_CORE_FILESERVER_H_

#include <string_view>

namespace help {

class Help;
class Window;

// Installs /mnt/help/{index,new/ctl,snarf,open,stats}. Called from Help's
// constructor.
void InstallHelpFs(Help* h);

}  // namespace help

#endif  // SRC_CORE_FILESERVER_H_
