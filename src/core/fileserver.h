// The /mnt/help file service — "the interface seen by programs". Every
// window is a numbered directory of files:
//
//   /mnt/help/index      window number, tab, first line of the tag
//   /mnt/help/new/ctl    opening it creates a window (placed automatically
//                        near the current selection); reading it back yields
//                        the new window's number
//   /mnt/help/snarf      the cut buffer (what help/buf prints)
//   /mnt/help/N/tag      the tag line
//   /mnt/help/N/body     the body text (writes replace; reads see UTF-8)
//   /mnt/help/N/bodyapp  append-only view of the body
//   /mnt/help/N/ctl      control messages (see Help::HandleCtl)
//
// Because these are ordinary VFS files, shell scripts get the entire GUI
// with cat/echo redirection — the paper's decl browser is ten lines of rc.
#ifndef SRC_CORE_FILESERVER_H_
#define SRC_CORE_FILESERVER_H_

#include <string_view>

namespace help {

class Help;
class Window;

// Installs /mnt/help/{index,new/ctl,snarf}. Called from Help's constructor.
void InstallHelpFs(Help* h);

}  // namespace help

#endif  // SRC_CORE_FILESERVER_H_
