#include "src/core/events.h"

#include "src/obs/trace.h"

namespace help {

void MouseMachine::Feed(const MouseEvent& e) {
  // Event delivery: a span per raw event (press/move/release), so a trace
  // shows the gesture machine's time against the commands it triggers.
  OBS_SPAN("events.mouse");
  OBS_INSTANT("events.mouse.kind", static_cast<int>(e.kind) * 10 + static_cast<int>(e.button));
  switch (e.kind) {
    case MouseEvent::Kind::kPress:
      Press(e.button, e.p);
      break;
    case MouseEvent::Kind::kMove:
      last_ = e.p;
      break;
    case MouseEvent::Kind::kRelease:
      Release(e.button, e.p);
      break;
  }
}

void MouseMachine::Press(Button b, Point p) {
  last_ = p;
  switch (b) {
    case Button::kLeft:
      left_down_ = true;
      if (!gesture_active_) {
        gesture_active_ = true;
        primary_ = b;
        press_at_ = p;
        chorded_ = false;
        chord_cut_seen_ = false;
      }
      break;
    case Button::kMiddle:
      middle_down_ = true;
      if (left_down_ && primary_ == Button::kLeft) {
        // Chord: commit the selection swept so far, then Cut. The selection
        // must exist before the chord fires (the paper's "after a
        // selection").
        h_->MouseSelect(press_at_, p);
        h_->ChordCut();
        chorded_ = true;
        chord_cut_seen_ = true;
      } else if (!gesture_active_) {
        gesture_active_ = true;
        primary_ = b;
        press_at_ = p;
      }
      break;
    case Button::kRight:
      right_down_ = true;
      if (left_down_ && primary_ == Button::kLeft) {
        if (!chorded_) {
          h_->MouseSelect(press_at_, p);
        }
        // B2 then B3 during the same hold = snarf (cut already put the text
        // in the buffer; pasting it back makes the pair a copy).
        h_->ChordPaste();
        chorded_ = true;
      } else if (!gesture_active_) {
        gesture_active_ = true;
        primary_ = b;
        press_at_ = p;
      }
      break;
  }
}

void MouseMachine::Release(Button b, Point p) {
  last_ = p;
  switch (b) {
    case Button::kLeft:
      left_down_ = false;
      break;
    case Button::kMiddle:
      middle_down_ = false;
      break;
    case Button::kRight:
      right_down_ = false;
      break;
  }
  if (!gesture_active_ || b != primary_) {
    return;  // chord buttons release without ending the gesture
  }
  gesture_active_ = false;
  switch (b) {
    case Button::kLeft:
      if (!chorded_) {
        h_->MouseSelect(press_at_, p);
      }
      break;
    case Button::kMiddle:
      OBS_COUNT("events.exec_gestures", 1);
      h_->MouseExec(press_at_, p);
      break;
    case Button::kRight:
      h_->MouseDrag(press_at_, p);
      break;
  }
}

}  // namespace help
