// BuildPaperWorld: the file tree and process state the paper's figures show.
// Every source coordinate a figure cites is placed on its exact line:
//   dat.h:136        uchar *n;                      (the declaration)
//   help.c:35        n = (uchar*)"a test string";   (the initialization)
//   exec.c:101       call through the command table (lookup -> Xdie2)
//   exec.c:207       execute calls lookup
//   exec.c:213       Xdie1 clears n                 (the bug)
//   exec.c:252       Xdie2 passes n to errs
//   errs.c:34        errs calls textinsert
//   text.c:32        textinsert calls strlen
//   ctrl.c:320,331   control's loop and its call to execute
//   /sys/src/libc/mips/strchr.s:34   the faulting MOVW
//   /sys/src/libc/port/strlen.c:7    strlen's body
#include "src/base/strings.h"
#include "src/tools/tools.h"

namespace help {

namespace {

// Builds a file line by line; At(n, s) pads with blank lines so `s` lands on
// 1-based line n exactly.
class Src {
 public:
  Src& L(std::string_view line) {
    out_ += line;
    out_ += '\n';
    line_++;
    return *this;
  }
  Src& At(int lineno, std::string_view line) {
    while (line_ < lineno) {
      L("");
    }
    if (line_ != lineno) {
      // A miscounted layout is a bug in the corpus itself.
      out_ += StrFormat("#error line mismatch: want %d have %d\n", lineno, line_);
    }
    return L(line);
  }
  int next_line() const { return line_; }
  std::string Build() { return std::move(out_); }

 private:
  std::string out_;
  int line_ = 1;  // the line L() will write next
};

void W(Vfs& vfs, std::string_view path, std::string_view content) {
  vfs.MkdirAll(DirPath(path));
  vfs.WriteFile(path, content);
}

void SysHeaders(Vfs& vfs) {
  W(vfs, "/sys/include/u.h",
    "typedef unsigned char uchar;\n"
    "typedef unsigned short ushort;\n"
    "typedef unsigned int uint;\n"
    "typedef unsigned long ulong;\n"
    "typedef unsigned long long uvlong;\n");
  W(vfs, "/sys/include/libc.h",
    "typedef struct Dir Dir;\n"
    "struct Dir\n"
    "{\n"
    "\tchar name[28];\n"
    "\tlong length;\n"
    "\tlong mtime;\n"
    "};\n"
    "extern char *strchr(char*, int);\n"
    "extern long strlen(char*);\n"
    "extern int strcmp(char*, char*);\n"
    "extern int access(char*, int);\n"
    "extern void exits(char*);\n"
    "extern int fprint(int, char*, ...);\n"
    "extern int print(char*, ...);\n");
  W(vfs, "/sys/include/libg.h",
    "typedef struct Point Point;\n"
    "typedef struct Rectangle Rectangle;\n"
    "struct Point\n"
    "{\n"
    "\tint x;\n"
    "\tint y;\n"
    "};\n"
    "struct Rectangle\n"
    "{\n"
    "\tPoint min;\n"
    "\tPoint max;\n"
    "};\n");
  W(vfs, "/sys/include/libframe.h",
    "typedef struct Frame Frame;\n"
    "struct Frame\n"
    "{\n"
    "\tint nlines;\n"
    "\tint maxlines;\n"
    "};\n"
    "extern void frinsert(Text*, uchar**, long);\n");
}

std::string DatH() {
  Src s;
  s.L("typedef struct Addr Addr;");
  s.L("typedef struct Client Client;");
  s.L("typedef struct Page Page;");
  s.L("typedef struct Proc Proc;");
  s.L("typedef struct String String;");
  s.L("typedef struct Text Text;");
  s.L("");
  s.L("struct Addr");
  s.L("{");
  s.L("\tText *t;");
  s.L("\tlong q0;");
  s.L("\tlong q1;");
  s.L("};");
  s.L("");
  s.L("struct String");
  s.L("{");
  s.L("\tuchar *s;");
  s.L("\tint len;");
  s.L("};");
  s.L("");
  s.L("struct Text");
  s.L("{");
  s.L("\tlong org;");
  s.L("\tlong nchars;");
  s.L("\tlong q0;");
  s.L("\tlong q1;");
  s.L("\tText *next;");
  s.L("\tPage *page;");
  s.L("};");
  s.L("");
  s.L("struct Page");
  s.L("{");
  s.L("\tText *text;");
  s.L("\tPage *link;");
  s.L("\tint nwin;");
  s.L("};");
  s.L("");
  s.L("struct Client");
  s.L("{");
  s.L("\tint fd;");
  s.L("\tPage *p;");
  s.L("};");
  s.L("");
  s.L("struct Proc");
  s.L("{");
  s.L("\tint pid;");
  s.L("\tchar *cmd;");
  s.L("};");
  s.L("");
  s.L("/*");
  s.L(" * globals");
  s.L(" */");
  s.At(136, "uchar *n;");
  s.At(137, "int fn;");
  s.L("Page *page;");
  s.L("Text *curt;");
  s.L("int ncmd;");
  return s.Build();
}

std::string FnsH() {
  return
      "void\tcontrol(void);\n"
      "void\terrs(uchar*);\n"
      "void\texecute(Text*, long, long);\n"
      "Page*\tfindopen1(Page*, char*);\n"
      "int\tlookup(String*);\n"
      "Text*\tnewtext(void);\n"
      "void\tnewsel(Text*);\n"
      "String*\tgetsel(Text*, long, long);\n"
      "void\tstrinsert(Text*, uchar*, int, long);\n"
      "void\ttextinsert(int, Text*, uchar*, long, int);\n"
      "int\twaitevent(void);\n"
      "void\tXdie1(int, char**, Page*, Text*);\n"
      "void\tXdie2(int, char**, Page*, Text*);\n";
}

std::string Includes() {
  return
      "#include <u.h>\n"
      "#include <libc.h>\n"
      "#include <libg.h>\n"
      "#include <libframe.h>\n"
      "#include \"dat.h\"\n"
      "#include \"fns.h\"\n";
}

std::string HelpC() {
  Src s;
  s.L("#include <u.h>");
  s.L("#include <libc.h>");
  s.L("#include <libg.h>");
  s.L("#include <libframe.h>");
  s.L("#include \"dat.h\"");
  s.L("#include \"fns.h\"");
  s.L("");
  s.L("int\tmouseslave;");
  s.L("int\tkbdslave;");
  s.L("");
  s.L("/*");
  s.L(" * help: a combined editor, window system and shell.");
  s.L(" * main() checks for a running instance, loads the tools,");
  s.L(" * and hands control to the event loop.");
  s.L(" */");
  s.At(25, "void");
  s.L("main(int argc, char *argv[])");
  s.L("{");
  s.L("\tint i;");
  s.L("\tchar *s;");
  s.L("");
  s.L("\ti = 0;");
  s.L("\ts = 0;");
  s.At(33, "\tDir d;");
  s.L("\tRectangle r;");
  s.At(35, "\tn = (uchar*)\"a test string\";");
  s.L("\tif(access(\"/mnt/help/new\", 0) == 0){");
  s.L("\t\tfprint(2, \"help: already running\\n\");");
  s.L("\t\texits(\"running\");");
  s.L("\t}");
  s.At(40, "\tfn = 0;");
  s.L("\tswitch(argc){");
  s.L("\tcase 'f':");
  s.L("\t\ti = 1;");
  s.L("\t\tbreak;");
  s.L("\t}");
  s.L("\tcontrol();");
  s.L("\texits(s);");
  s.L("}");
  return s.Build();
}

std::string ExecC() {
  Src s;
  std::string inc = Includes();
  s.L("#include <u.h>");
  s.L("#include <libc.h>");
  s.L("#include <libg.h>");
  s.L("#include <libframe.h>");
  s.L("#include \"dat.h\"");
  s.L("#include \"fns.h\"");
  s.L("");
  s.L("typedef struct Cmd Cmd;");
  s.L("struct Cmd");
  s.L("{");
  s.L("\tchar *name;");
  s.L("\tvoid (*f)(int, char**, Page*, Text*);");
  s.L("};");
  s.L("");
  s.L("static Cmd cmdtab[] = {");
  s.L("\t{\"die1\", Xdie1},");
  s.L("\t{\"die2\", Xdie2},");
  s.L("\t{0, 0},");
  s.L("};");
  s.L("");
  s.L("/*");
  s.L(" * Look a command name up in the table and run it.");
  s.L(" */");
  s.At(90, "int");
  s.L("lookup(String *cs)");
  s.L("{");
  s.L("\tint i;");
  s.L("\tCmd *c;");
  s.L("");
  s.L("\tfor(i = 0; i < ncmd; i++){");
  s.L("\t\tc = &cmdtab[i];");
  s.L("\t\tif(strcmp(c->name, (char*)cs->s) == 0){");
  s.L("\t\t\tif(c->f == 0)");
  s.At(100, "\t\t\t\treturn 0;");
  s.At(101, "\t\t\t(*c->f)(0, 0, page, curt);");
  s.L("\t\t\treturn 1;");
  s.L("\t\t}");
  s.L("\t}");
  s.L("\treturn 0;");
  s.L("}");
  s.L("");
  s.At(199, "void");
  s.At(200, "execute(Text *t, long p0, long p1)");
  s.L("{");
  s.L("\tString *cs;");
  s.L("");
  s.L("\tcs = getsel(t, p0, p1);");
  s.L("\tif(cs == 0)");
  s.L("\t\treturn;");
  s.At(207, "\tlookup(cs);");
  s.L("}");
  s.L("");
  s.At(210, "void");
  s.At(211, "Xdie1(int argc, char *argv[], Page *page, Text *curt)");
  s.L("{");
  s.At(213, "\tn = 0;");
  s.L("}");
  s.L("");
  s.At(249, "void");
  s.At(250, "Xdie2(int argc, char *argv[], Page *page, Text *curt)");
  s.L("{");
  s.At(252, "\terrs((uchar*)n);");
  s.L("}");
  s.L("");
  s.L("/*");
  s.L(" * Exact match");
  s.L(" */");
  s.At(258, "Page*");
  s.At(259, "findopen1(Page *p, char *name)");
  s.L("{");
  s.L("\tchar *s;");
  s.At(262, "\tint n;");
  s.L("\tPage *q;");
  s.L("");
  s.At(265, "Again:");
  s.L("\tif(p == 0)");
  s.L("\t\treturn p;");
  s.L("\ts = strchr(name, '/');");
  s.At(269, "\tn = 0;");
  s.L("\tif(s)");
  s.At(271, "\t\tn = s - name;");
  s.L("\tq = p->link;");
  s.L("\tp = q;");
  s.L("\tgoto Again;");
  s.L("}");
  (void)inc;
  return s.Build();
}

std::string ErrsC() {
  Src s;
  s.L("#include <u.h>");
  s.L("#include <libc.h>");
  s.L("#include <libg.h>");
  s.L("#include <libframe.h>");
  s.L("#include \"dat.h\"");
  s.L("#include \"fns.h\"");
  s.L("");
  s.L("static Text *errtext;");
  s.L("");
  s.L("/*");
  s.L(" * Append diagnostics to the Errors window, creating it if needed.");
  s.L(" */");
  s.At(25, "void");
  s.L("errs(uchar *es)");
  s.L("{");
  s.L("\tint n;");
  s.L("");
  s.L("\tif(errtext == 0)");
  s.L("\t\terrtext = newtext();");
  s.At(32, "\tn = 0;");
  s.L("\tif(es)");
  s.At(34, "\t\ttextinsert(1, errtext, es, n, 1);");
  s.L("}");
  return s.Build();
}

std::string TextC() {
  Src s;
  s.L("#include <u.h>");
  s.L("#include <libc.h>");
  s.L("#include <libg.h>");
  s.L("#include <libframe.h>");
  s.L("#include \"dat.h\"");
  s.L("#include \"fns.h\"");
  s.L("");
  s.L("/*");
  s.L(" * Insert text into a window body at q0, updating the frame.");
  s.L(" */");
  s.At(25, "void");
  s.L("textinsert(int sel, Text *t, uchar *s, long q0, int full)");
  s.L("{");
  s.L("\tint n;");
  s.L("\tlong p0;");
  s.At(30, "\tif(sel)");
  s.At(31, "\t\tnewsel(t);");
  s.At(32, "\tn = strlen((char*)s);");
  s.At(33, "\tstrinsert(t, s, n, q0);");
  s.L("\tp0 = q0 - t->org;");
  s.L("\tif(p0 < 0)");
  s.L("\t\tt->org += n;");
  s.L("\telse if(p0 <= t->nchars)");
  s.L("\t\tfrinsert(t, &s, p0);");
  s.L("\tt->q0 = q0;");
  s.L("\tif(!full)");
  s.L("\t\treturn;");
  s.L("\tscrollto(t, t->org);");
  s.L("}");
  return s.Build();
}

std::string CtrlC() {
  Src s;
  s.L("#include <u.h>");
  s.L("#include <libc.h>");
  s.L("#include <libg.h>");
  s.L("#include <libframe.h>");
  s.L("#include \"dat.h\"");
  s.L("#include \"fns.h\"");
  s.L("");
  s.L("/*");
  s.L(" * The main event loop: wait for mouse and keyboard events and");
  s.L(" * dispatch them. Button 2 sweeps end up in execute().");
  s.L(" */");
  s.At(315, "void");
  s.At(316, "control(void)");
  s.L("{");
  s.L("\tText *t;");
  s.L("\tint op, n, p, dclick, p0, obut;");
  s.At(320, "\tfor(;;){");
  s.L("\t\top = waitevent();");
  s.L("\t\tn = 0;");
  s.L("\t\tp = 0;");
  s.L("\t\tdclick = 0;");
  s.L("\t\tobut = 0;");
  s.L("\t\tp0 = op + n + p + dclick + obut;");
  s.L("\t\tt = curt;");
  s.L("\t\tif(t == 0)");
  s.L("\t\t\tcontinue;");
  s.L("\t\tif(op == 2)");
  s.At(331, "\t\t\texecute(t, p0, p0);");
  s.L("\t}");
  s.L("}");
  return s.Build();
}

// The remaining help sources: small but real, so `uses *.c` parses a full
// program and the directory listing matches Figure 1's.
std::string ClikC() {
  return Includes() +
         "\n"
         "/*\n"
         " * Double-click detection.\n"
         " */\n"
         "static long lastclick;\n"
         "\n"
         "int\n"
         "dclick(long msec)\n"
         "{\n"
         "\tint hit;\n"
         "\n"
         "\thit = msec - lastclick < 500;\n"
         "\tlastclick = msec;\n"
         "\treturn hit;\n"
         "}\n";
}

std::string FileC() {
  return Includes() +
         "\n"
         "/*\n"
         " * string routines\n"
         " */\n"
         "\n"
         "void\n"
         "strinsert(Text *t, uchar *s, int len, long q0)\n"
         "{\n"
         "\tlong i;\n"
         "\n"
         "\tfor(i = 0; i < len; i++)\n"
         "\t\tt->nchars++;\n"
         "\tt->q0 = q0 + len;\n"
         "}\n"
         "\n"
         "String*\n"
         "getsel(Text *t, long p0, long p1)\n"
         "{\n"
         "\tstatic String str;\n"
         "\n"
         "\tif(p1 < p0)\n"
         "\t\treturn 0;\n"
         "\tstr.len = p1 - p0;\n"
         "\treturn &str;\n"
         "}\n";
}

std::string PageC() {
  return Includes() +
         "\n"
         "/*\n"
         " * Window placement within a column.\n"
         " */\n"
         "Page*\n"
         "newpage(Page *link)\n"
         "{\n"
         "\tstatic Page pool[64];\n"
         "\tstatic int npool;\n"
         "\tPage *p;\n"
         "\n"
         "\tp = &pool[npool++];\n"
         "\tp->link = link;\n"
         "\tp->nwin = 0;\n"
         "\treturn p;\n"
         "}\n";
}

std::string PickC() {
  return Includes() +
         "\n"
         "/*\n"
         " * Map a mouse point to the window under it.\n"
         " */\n"
         "Page*\n"
         "pick(Page *p, int x, int y)\n"
         "{\n"
         "\twhile(p){\n"
         "\t\tif(p->nwin > 0)\n"
         "\t\t\treturn p;\n"
         "\t\tp = p->link;\n"
         "\t}\n"
         "\treturn 0;\n"
         "}\n";
}

std::string ProcC() {
  return Includes() +
         "\n"
         "/*\n"
         " * Slave processes for mouse and keyboard.\n"
         " */\n"
         "int\n"
         "startslave(char *cmd)\n"
         "{\n"
         "\tProc pr;\n"
         "\n"
         "\tpr.pid = 0;\n"
         "\tpr.cmd = cmd;\n"
         "\treturn pr.pid;\n"
         "}\n"
         "\n"
         "int\n"
         "waitevent(void)\n"
         "{\n"
         "\treturn 0;\n"
         "}\n";
}

std::string ScrlC() {
  return Includes() +
         "\n"
         "/*\n"
         " * Scrolling.\n"
         " */\n"
         "void\n"
         "scrollto(Text *t, long org)\n"
         "{\n"
         "\tif(org < 0)\n"
         "\t\torg = 0;\n"
         "\tif(org > t->nchars)\n"
         "\t\torg = t->nchars;\n"
         "\tt->org = org;\n"
         "}\n";
}

std::string UtilC() {
  return Includes() +
         "\n"
         "Text*\n"
         "newtext(void)\n"
         "{\n"
         "\tstatic Text pool[128];\n"
         "\tstatic int npool;\n"
         "\n"
         "\treturn &pool[npool++];\n"
         "}\n"
         "\n"
         "void\n"
         "newsel(Text *t)\n"
         "{\n"
         "\tt->q0 = 0;\n"
         "\tt->q1 = 0;\n"
         "}\n";
}

std::string XtrnC() {
  return Includes() +
         "\n"
         "/*\n"
         " * External command execution: connect output to the Errors window.\n"
         " */\n"
         "int\n"
         "xtrn(char *cmd)\n"
         "{\n"
         "\tif(cmd == 0)\n"
         "\t\treturn -1;\n"
         "\treturn 0;\n"
         "}\n";
}

std::string Mkfile() {
  std::string objs;
  static const char* kStems[] = {"clik", "ctrl", "errs", "exec", "file", "help",
                                 "page", "pick", "proc", "scrl", "text", "util", "xtrn"};
  for (const char* stem : kStems) {
    objs += std::string(stem) + ".v ";
  }
  std::string mk = "OBJ=" + objs + "\n\n";
  mk += "help: $OBJ\n\tvl -o help $OBJ -l9 -lregexp -ldmalloc\n\n";
  for (const char* stem : kStems) {
    mk += std::string(stem) + ".v: " + stem + ".c dat.h fns.h\n\tvc -w " + stem + ".c\n\n";
  }
  return mk;
}

void LibcSources(Vfs& vfs) {
  Src strchr_s;
  strchr_s.L("/*");
  strchr_s.L(" * strchr(s, c) - find first occurrence of c in s");
  strchr_s.L(" */");
  strchr_s.L("");
  strchr_s.L("TEXT\tstrchr(SB), $0");
  strchr_s.L("\tMOVW\ts+0(FP), R3");
  strchr_s.L("\tMOVB\tc+4(FP), R4");
  strchr_s.At(33, "loop:");
  strchr_s.At(34, "\tMOVW\t0(R3), R5");
  strchr_s.L("\tBNE\tR5, loop");
  strchr_s.L("\tRET");
  W(vfs, "/sys/src/libc/mips/strchr.s", strchr_s.Build());

  Src strlen_c;
  strlen_c.L("#include <u.h>");
  strlen_c.L("#include <libc.h>");
  strlen_c.L("");
  strlen_c.L("long");
  strlen_c.L("strlen(char *s)");
  strlen_c.L("{");
  strlen_c.At(7, "\treturn strchr(s, 0) - s;");
  strlen_c.L("}");
  W(vfs, "/sys/src/libc/port/strlen.c", strlen_c.Build());
}

void Mailbox(Vfs& vfs) {
  std::string mbox;
  mbox +=
      "From chk@alias.com Tue Apr 16 19:30:23 EDT 1991\n"
      "\n"
      "Rob,\n"
      "The UKUUG are collecting old-time verses about UNIX before they\n"
      "disappear from the minds of those who remember them.\n"
      "Subject: UNIX in song & verse\n"
      "\n";
  mbox +=
      "From sean Tue Apr 16 19:26:14 EDT 1991\n"
      "\n"
      "i tried your new help and got this:\n"
      "help 176153: user TLB miss (load or fetch) badvaddr=0x0\n"
      "help 176153: status=0xfb0c pc=0x18df4 sp=0x3f4e8\n"
      "\n";
  mbox +=
      "From attunix!rrg Tue Apr 16 19:03:11 EDT 1991\n"
      "\n"
      "ping\n"
      "\n";
  mbox +=
      "From knight%MRCO.CARLETON.CA@mitvma.mit.edu Tue Apr 16 19:01:45 EDT 1991\n"
      "\n"
      "request for reprints\n"
      "\n";
  mbox +=
      "From deutsch%PARCPLACE.COM@mitvma.mit.edu Tue Apr 16 18:54:02 EDT 1991\n"
      "\n"
      "about your window system paper\n"
      "\n";
  mbox +=
      "From howard Tue Apr 16 15:02:57 EDT 1991\n"
      "\n"
      "lunch?\n"
      "\n";
  mbox +=
      "From deutsch%PARCPLACE.COM@mitvma.mit.edu Tue Apr 16 12:52:30 EDT 1991\n"
      "\n"
      "earlier note\n"
      "\n";
  W(vfs, "/mail/box/rob/mbox", mbox);
}

}  // namespace

void BuildPaperWorld(Help* h) {
  Vfs& vfs = h->vfs();
  SysHeaders(vfs);

  const std::string dir = "/usr/rob/src/help";
  W(vfs, dir + "/dat.h", DatH());
  W(vfs, dir + "/fns.h", FnsH());
  W(vfs, dir + "/help.c", HelpC());
  W(vfs, dir + "/exec.c", ExecC());
  W(vfs, dir + "/errs.c", ErrsC());
  W(vfs, dir + "/text.c", TextC());
  W(vfs, dir + "/ctrl.c", CtrlC());
  W(vfs, dir + "/clik.c", ClikC());
  W(vfs, dir + "/file.c", FileC());
  W(vfs, dir + "/page.c", PageC());
  W(vfs, dir + "/pick.c", PickC());
  W(vfs, dir + "/proc.c", ProcC());
  W(vfs, dir + "/scrl.c", ScrlC());
  W(vfs, dir + "/util.c", UtilC());
  W(vfs, dir + "/xtrn.c", XtrnC());
  W(vfs, dir + "/mkfile", Mkfile());

  W(vfs, "/usr/rob/lib/profile",
    "bind -c $home/tmp /tmp\n"
    "bind -a $home/bin/rc /bin\n"
    "bind -a $home/bin/$cputype /bin\n"
    "fn x { if(! ~ $#* 0) $* }\n"
    "switch($service){\n"
    "case terminal\n"
    "\tbind 'Ik' /net/dk\n"
    "\tprompt=('% ' '')\n"
    "\tsite=plan9\n"
    "case cpu\n"
    "\tbind -b /mnt/term/mnt/8.5 /dev\n"
    "\tnews\n"
    "}\n"
    "fortune\n");

  W(vfs, "/lib/news",
    "The UKUUG are collecting old-time verses about UNIX before they\n"
    "disappear from the minds of those who remember them.\n");

  LibcSources(vfs);
  Mailbox(vfs);

  // The sources are also installed under /sys/src/cmd/help — the path the
  // paper's grep example uses: grep '^main' /sys/src/cmd/help/*.c
  for (const char* f : {"dat.h", "fns.h", "help.c", "exec.c", "errs.c", "text.c",
                        "ctrl.c", "clik.c", "file.c", "page.c", "pick.c", "proc.c",
                        "scrl.c", "util.c", "xtrn.c", "mkfile"}) {
    auto data = vfs.ReadFile(dir + "/" + f);
    if (data.ok()) {
      W(vfs, std::string("/sys/src/cmd/help/") + f, data.value());
    }
  }

  // The crashed help, pid 176153, waiting to be examined.
  h->procs().Add(MakePaperCrashImage(), &vfs);

  // Build the program once so the object files exist and mk is a no-op until
  // a source changes (Figure 12 then rebuilds exactly one object).
  Env env;
  Io io;
  std::string out;
  std::string err;
  io.out = &out;
  io.err = &err;
  h->shell().Run("cd /usr/rob/src/help; mk", &env, "/", {}, io);
}

}  // namespace help
