// The mail backend (written, per the acknowledgements, by Sean Dorward —
// "Sean Dorward wrote the mail tools"). A native help/mail does the mbox
// parsing; the /help/mail scripts connect it to the screen.
//
//   help/mail -h mbox       numbered header lines ("2 sean Tue Apr 16 ...")
//   help/mail -m N mbox     full text of message N
//   help/mail -s N mbox     sender of message N
//   help/mail -d N mbox     delete message N (rewrites the mbox)
//   help/mail -send mbox    append a message from the cut buffer (simulated)
#include "src/base/strings.h"
#include "src/shell/coreutils.h"
#include "src/shell/shell.h"

namespace help {

namespace {

struct MboxMessage {
  std::string sender;
  std::string date;
  std::string text;  // complete text including the From line
};

std::vector<MboxMessage> ParseMbox(std::string_view data) {
  std::vector<MboxMessage> out;
  MboxMessage cur;
  bool in_msg = false;
  for (const std::string& line : Split(data, '\n')) {
    if (HasPrefix(line, "From ")) {
      if (in_msg) {
        out.push_back(cur);
      }
      cur = MboxMessage();
      in_msg = true;
      std::vector<std::string> fields = Tokenize(line);
      if (fields.size() >= 2) {
        cur.sender = fields[1];
      }
      for (size_t i = 2; i < fields.size(); i++) {
        if (i > 2) {
          cur.date += ' ';
        }
        cur.date += fields[i];
      }
    }
    if (in_msg) {
      cur.text += line + "\n";
    }
  }
  if (in_msg) {
    out.push_back(cur);
  }
  return out;
}

std::string JoinMbox(const std::vector<MboxMessage>& msgs) {
  std::string out;
  for (const MboxMessage& m : msgs) {
    out += m.text;
  }
  return out;
}

int MailCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  if (argv.size() < 3) {
    *io.err += "usage: help/mail -h|-send mbox | -m|-s|-d N mbox\n";
    return 1;
  }
  const std::string& flag = argv[1];
  std::string mbox_path = JoinPath(ctx.cwd, argv.back());
  auto data = ctx.vfs->ReadFile(mbox_path);
  if (!data.ok()) {
    *io.err += "help/mail: " + data.message() + "\n";
    return 1;
  }
  std::vector<MboxMessage> msgs = ParseMbox(data.value());

  if (flag == "-h") {
    for (size_t i = 0; i < msgs.size(); i++) {
      *io.out += StrFormat("%zu %s %s\n", i + 1, msgs[i].sender.c_str(),
                           msgs[i].date.c_str());
    }
    return 0;
  }
  if (flag == "-send") {
    auto buf = ctx.vfs->ReadFile("/mnt/help/snarf");
    std::string body = buf.ok() ? buf.value() : std::string();
    std::string msg = "From rob " + FormatDate(ctx.vfs->clock()->Now()) + "\n\n" + body;
    if (!HasSuffix(msg, "\n")) {
      msg += "\n";
    }
    Status s = ctx.vfs->AppendFile(mbox_path, msg);
    if (!s.ok()) {
      *io.err += "help/mail: " + s.message() + "\n";
      return 1;
    }
    *io.out += "message queued\n";
    return 0;
  }
  if (argv.size() < 4) {
    *io.err += "usage: help/mail -m|-s|-d N mbox\n";
    return 1;
  }
  long n = ParseInt(argv[2]);
  if (n < 1 || static_cast<size_t>(n) > msgs.size()) {
    *io.err += "help/mail: no message " + argv[2] + "\n";
    return 1;
  }
  const MboxMessage& m = msgs[static_cast<size_t>(n - 1)];
  if (flag == "-m") {
    *io.out += m.text;
    return 0;
  }
  if (flag == "-s") {
    *io.out += m.sender + "\n";
    return 0;
  }
  if (flag == "-d") {
    msgs.erase(msgs.begin() + (n - 1));
    Status s = ctx.vfs->WriteFile(mbox_path, JoinMbox(msgs));
    if (!s.ok()) {
      *io.err += "help/mail: " + s.message() + "\n";
      return 1;
    }
    return 0;
  }
  *io.err += "help/mail: bad flag " + flag + "\n";
  return 1;
}

}  // namespace

void RegisterMailTool(Vfs* vfs, CommandRegistry* registry) {
  registry->Register(vfs, "/bin/help/mail", MailCmd);
}

}  // namespace help
