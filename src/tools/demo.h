// PaperDemo: the paper's debugging walkthrough (Figures 4 through 12),
// scripted against the real system — every step is performed with the same
// mouse gestures the paper describes, and the gesture counters record what
// they cost. "Through this entire demo I haven't yet touched the keyboard."
#ifndef SRC_TOOLS_DEMO_H_
#define SRC_TOOLS_DEMO_H_

#include <string>
#include <vector>

#include "src/tools/tools.h"

namespace help {

class PaperDemo {
 public:
  struct StepStats {
    std::string name;
    int presses = 0;    // mouse button presses this step
    int keystrokes = 0; // keystrokes this step
  };

  // A roomier screen than the default so the walkthrough matches the paper's
  // window arrangement (the figures show a full workstation display).
  explicit PaperDemo(int width = 112, int height = 56);

  Help& help() { return help_; }

  // Steps, in walkthrough order. Each returns the rendered screen after the
  // step (annotated: «current selection», ‹other selections›).
  std::string Fig04_Boot();
  std::string Fig05_Headers();
  std::string Fig06_Messages();
  std::string Fig07_Stack();
  std::string Fig08_OpenTextC();
  std::string Fig09_CloseAndOpenExecC();
  std::string Fig10_Uses();
  std::string Fig11_OpenHelpCAndExec213();
  std::string Fig12_CutPutMk();

  // Runs everything; returns per-step stats.
  const std::vector<StepStats>& RunAll();

  const std::vector<StepStats>& stats() const { return stats_; }

  // --- helpers shared with tests/benches --------------------------------

  // Window whose tag contains `substr` (latest match wins), or null.
  Window* FindWindowTagged(std::string_view substr);
  // Makes `w` visible by clicking its tab if it is hidden/covered.
  void Reveal(Window* w);
  // Locates `needle` on screen within `w`, revealing the window if needed.
  Point Locate(Window* w, std::string_view needle, int occurrence = 0);

 private:
  void BeginStep(const char* name);
  std::string EndStep();

  Help help_;
  std::vector<StepStats> stats_;
  Help::Counters mark_;
  const char* step_name_ = "";
};

}  // namespace help

#endif  // SRC_TOOLS_DEMO_H_
