// help/parse and help/buf: the two native helpers the tool scripts build on.
//
// help passes an application "the file and character offset of the mouse
// position" through $helpsel ("<window-id> <q0> <q1>"); help/parse turns
// that into useful pieces:
//
//   -c   rc assignments: file=... dir=... id=... line=...  (for `eval`)
//   -w   the word under the selection (or the selection text if non-null)
//   -n   the first field of the line containing the selection
//   -d   the directory context of the selection's window
//   -f   the file name from the selection window's tag
//   -l   the 1-based line number of the selection
//
// help/buf prints the cut buffer (/mnt/help/snarf).
#include "src/base/strings.h"
#include "src/shell/shell.h"
#include "src/text/text.h"

namespace help {

namespace {

struct SelContext {
  int id = -1;
  Text body;
  std::string tagfile;  // first token of the tag
  std::string dir;
  Selection sel;
};

Result<SelContext> LoadSelContext(ExecContext& ctx) {
  std::vector<std::string> parts = Tokenize(ctx.env->GetString("helpsel"));
  if (parts.size() != 3) {
    return Status::Error("help/parse: no selection ($helpsel unset)");
  }
  SelContext sc;
  sc.id = static_cast<int>(ParseInt(parts[0]));
  sc.sel.q0 = static_cast<size_t>(ParseInt(parts[1]));
  sc.sel.q1 = static_cast<size_t>(ParseInt(parts[2]));
  std::string base = StrFormat("/mnt/help/%d", sc.id);
  auto body = ctx.vfs->ReadFile(base + "/body");
  if (!body.ok()) {
    return body.status();
  }
  sc.body.SetAll(body.value());
  auto tag = ctx.vfs->ReadFile(base + "/tag");
  if (!tag.ok()) {
    return tag.status();
  }
  std::vector<std::string> tagwords = Tokenize(tag.value());
  if (!tagwords.empty()) {
    sc.tagfile = tagwords[0];
  }
  sc.dir = HasSuffix(sc.tagfile, "/") ? CleanPath(sc.tagfile) : DirPath(sc.tagfile);
  sc.sel.q0 = std::min(sc.sel.q0, sc.body.size());
  sc.sel.q1 = std::min(std::max(sc.sel.q1, sc.sel.q0), sc.body.size());
  return sc;
}

std::string WordAt(const SelContext& sc) {
  if (!sc.sel.null()) {
    return sc.body.Utf8Range(sc.sel.q0, sc.sel.q1);
  }
  Selection w = sc.body.ExpandWord(sc.sel.q0);
  return sc.body.Utf8Range(w.q0, w.q1);
}

int ParseCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  auto sc = LoadSelContext(ctx);
  if (!sc.ok()) {
    *io.err += sc.message() + "\n";
    return 1;
  }
  const SelContext& s = sc.value();
  std::string flag = argv.size() > 1 ? argv[1] : "-c";
  if (flag == "-c") {
    *io.out += StrFormat("file=%s dir=%s id=%s line=%zu\n", s.tagfile.c_str(),
                         s.dir.c_str(), WordAt(s).c_str(), s.body.LineAt(s.sel.q0));
    return 0;
  }
  if (flag == "-w") {
    *io.out += WordAt(s) + "\n";
    return 0;
  }
  if (flag == "-n") {
    Selection line = s.body.LineRange(s.body.LineAt(s.sel.q0));
    std::vector<std::string> fields = Tokenize(s.body.Utf8Range(line.q0, line.q1));
    *io.out += (fields.empty() ? std::string() : fields[0]) + "\n";
    return 0;
  }
  if (flag == "-d") {
    *io.out += s.dir + "\n";
    return 0;
  }
  if (flag == "-f") {
    *io.out += s.tagfile + "\n";
    return 0;
  }
  if (flag == "-l") {
    *io.out += StrFormat("%zu\n", s.body.LineAt(s.sel.q0));
    return 0;
  }
  *io.err += "usage: help/parse [-c|-w|-n|-d|-f|-l]\n";
  return 1;
}

int BufCmd(ExecContext& ctx, const std::vector<std::string>& argv, Io& io) {
  auto data = ctx.vfs->ReadFile("/mnt/help/snarf");
  if (data.ok()) {
    *io.out += data.value();
  }
  return 0;
}

}  // namespace

void RegisterParseBuf(Vfs* vfs, CommandRegistry* registry) {
  registry->Register(vfs, "/bin/help/parse", ParseCmd);
  registry->Register(vfs, "/bin/help/buf", BufCmd);
}

}  // namespace help
