#include "src/tools/demo.h"

namespace help {

PaperDemo::PaperDemo(int width, int height) : help_([&] {
        Help::Options o;
        o.width = width;
        o.height = height;
        return o;
      }()) {
  InstallTools(&help_);
  BuildPaperWorld(&help_);
  Boot(&help_);
}

Window* PaperDemo::FindWindowTagged(std::string_view substr) {
  Window* found = nullptr;
  for (Window* w : help_.AllWindows()) {
    if (w->tag().text->Utf8().find(substr) != std::string::npos) {
      found = w;
    }
  }
  return found;
}

void PaperDemo::Reveal(Window* w) {
  int col = help_.page().ColumnOf(w);
  if (col < 0) {
    return;
  }
  const auto& wins = help_.page().col(col).windows();
  for (size_t i = 0; i < wins.size(); i++) {
    if (wins[i] == w) {
      help_.ClickWindowTab(col, static_cast<int>(i));
      return;
    }
  }
}

Point PaperDemo::Locate(Window* w, std::string_view needle, int occurrence) {
  Point p = help_.FindInWindow(w, needle, occurrence);
  if (p.x < 0) {
    Reveal(w);
    p = help_.FindInWindow(w, needle, occurrence);
  }
  // Off-screen in the body: scroll the way a user would (every press
  // counted) — button 2 at the top of the bar jumps to the start, then
  // button 3 pages forward.
  if (p.x < 0 && !w->ScrollbarRect().empty()) {
    Rect sb = w->ScrollbarRect();
    if (w->body().frame.origin() != 0) {
      help_.MouseExec({sb.x0, sb.y0}, {sb.x0, sb.y0});
      p = help_.FindInWindow(w, needle, occurrence);
    }
    int guard = 0;
    while (p.x < 0 && guard++ < 64) {
      size_t before = w->body().frame.origin();
      Point bottom{sb.x0, sb.y1 - 1};
      help_.MouseDrag(bottom, bottom);
      if (w->body().frame.origin() == before) {
        break;
      }
      p = help_.FindInWindow(w, needle, occurrence);
    }
  }
  return p;
}

void PaperDemo::BeginStep(const char* name) {
  step_name_ = name;
  mark_ = help_.counters();
}

std::string PaperDemo::EndStep() {
  StepStats st;
  st.name = step_name_;
  st.presses = help_.counters().button_presses - mark_.button_presses;
  st.keystrokes = help_.counters().keystrokes - mark_.keystrokes;
  stats_.push_back(st);
  return help_.Render(/*annotated=*/true);
}

std::string PaperDemo::Fig04_Boot() {
  BeginStep("fig4: screen after booting");
  return EndStep();
}

std::string PaperDemo::Fig05_Headers() {
  BeginStep("fig5: execute mail/headers");
  // "I click the middle mouse button on the word headers in the window
  // containing the file /help/mail/stf."
  Window* mail_stf = FindWindowTagged("/help/mail/stf");
  help_.MouseExecWord(Locate(mail_stf, "headers"));
  return EndStep();
}

std::string PaperDemo::Fig06_Messages() {
  BeginStep("fig6: messages on Sean's header");
  // "just pointing with the left button anywhere in the header line will do"
  Window* headers = FindWindowTagged("/mail/box/rob/mbox");
  help_.MouseClick(Locate(headers, "2 sean"));
  Window* mail_stf = FindWindowTagged("/help/mail/stf");
  help_.MouseExecWord(Locate(mail_stf, "messages"));
  return EndStep();
}

std::string PaperDemo::Fig07_Stack() {
  BeginStep("fig7: db/stack on the broken process");
  // "I point at the process number (I certainly shouldn't have to type it)
  // and execute stack in the debugger tool."
  Window* msg = FindWindowTagged("From sean");
  help_.MouseClick(Locate(msg, "176153"));
  Window* db_stf = FindWindowTagged("/help/db/stf");
  help_.MouseExecWord(Locate(db_stf, "stack"));
  return EndStep();
}

std::string PaperDemo::Fig08_OpenTextC() {
  BeginStep("fig8: Open text.c:32 from the trace");
  // "I point at the identifying text in the stack window and execute Open."
  Window* stack = FindWindowTagged("176153 stack");
  help_.MouseClick(Locate(stack, "text.c"));
  Window* edit_stf = FindWindowTagged("/help/edit/stf");
  help_.MouseExecWord(Locate(edit_stf, "Open"));
  return EndStep();
}

std::string PaperDemo::Fig09_CloseAndOpenExecC() {
  BeginStep("fig9: Close! text.c, Open exec.c:252");
  // "I close the window on text.c by hitting Close! in the tag."
  Window* textc = help_.WindowForFile("/usr/rob/src/help/text.c");
  if (textc != nullptr) {
    help_.MouseExecWord(Locate(textc, "Close!"));
  }
  Window* stack = FindWindowTagged("176153 stack");
  help_.MouseClick(Locate(stack, "exec.c:252"));
  Window* edit_stf = FindWindowTagged("/help/edit/stf");
  help_.MouseExecWord(Locate(edit_stf, "Open"));
  return EndStep();
}

std::string PaperDemo::Fig10_Uses() {
  BeginStep("fig10: uses *.c on the variable n");
  // "pointing at the variable in the source text and executing uses *.c by
  // sweeping both 'words' with the middle button"
  Window* execc = help_.WindowForFile("/usr/rob/src/help/exec.c");
  Point cast = Locate(execc, "(uchar*)n");
  help_.MouseClick({cast.x + 8, cast.y});  // the n itself
  Window* cbr_stf = FindWindowTagged("/help/cbr/stf");
  Point u = Locate(cbr_stf, "uses *.c");
  help_.MouseExec(u, {u.x + 8, u.y});
  return EndStep();
}

std::string PaperDemo::Fig11_OpenHelpCAndExec213() {
  BeginStep("fig11: Open help.c:35, then exec.c:213");
  Window* uses = FindWindowTagged(" uses Close!");
  Window* edit_stf = FindWindowTagged("/help/edit/stf");
  // "I Open help.c to that line and see that the variable is indeed
  // initialized."
  help_.MouseClick(Locate(uses, "help.c:35"));
  help_.MouseExecWord(Locate(edit_stf, "Open"));
  // "So I point to exec.c:213 and execute Open."
  help_.MouseClick(Locate(uses, "exec.c:213"));
  help_.MouseExecWord(Locate(edit_stf, "Open"));
  return EndStep();
}

std::string PaperDemo::Fig12_CutPutMk() {
  BeginStep("fig12: Cut the line, Put!, mk");
  Window* execc = help_.WindowForFile("/usr/rob/src/help/exec.c");
  // Opening exec.c:213 left the offending line selected; "I use Cut to
  // remove the offending line" — one middle click on Cut.
  Window* edit_stf = FindWindowTagged("/help/edit/stf");
  help_.MouseExecWord(Locate(edit_stf, "Cut"));
  // "...write the file back out (the word Put! appears in the tag of a
  // modified window)"
  help_.MouseExecWord(Locate(execc, "Put!"));
  // "...and then execute mk in /help/cbr to compile the program (a total of
  // three clicks of the middle button)."
  Window* cbr_stf = FindWindowTagged("/help/cbr/stf");
  help_.MouseExecWord(Locate(cbr_stf, "mk"));
  return EndStep();
}

const std::vector<PaperDemo::StepStats>& PaperDemo::RunAll() {
  Fig04_Boot();
  Fig05_Headers();
  Fig06_Messages();
  Fig07_Stack();
  Fig08_OpenTextC();
  Fig09_CloseAndOpenExecC();
  Fig10_Uses();
  Fig11_OpenHelpCAndExec213();
  Fig12_CutPutMk();
  return stats_;
}

}  // namespace help
