// The tool suites and world setup.
//
// "When help starts it loads a set of 'tools'... These are files with names
// like /help/edit/stf... Each is a plain text file that lists the names of
// the commands available as parts of the tool, collected in the appropriate
// directory."
//
// InstallTools writes the /help tree: the stf menu files and the rc scripts
// (decl, uses, stack, headers, ...) that connect ordinary programs to the
// user interface through /mnt/help — "we would not need to write any user
// interface software". It also registers the two native helpers the scripts
// lean on (help/parse, help/buf) and the mail backend (help/mail).
//
// BuildPaperWorld populates the file system with the paper's corpus: the
// help sources in /usr/rob/src/help (with every coordinate the figures cite
// on its exact line), the system headers, Rob's profile and mailbox, the
// libc sources the crash walks through, and the broken process 176153.
//
// Boot creates the initial screen: the help/Boot window on the left and the
// four tool windows loaded into the right-hand column (Figure 4).
#ifndef SRC_TOOLS_TOOLS_H_
#define SRC_TOOLS_TOOLS_H_

#include "src/core/help.h"

namespace help {

void InstallTools(Help* h);
void BuildPaperWorld(Help* h);
void Boot(Help* h);

// Convenience: a Help with userland + tools + paper world + booted screen.
// (Used by tests, figure benches and the examples.)
struct PaperSession {
  PaperSession();
  Help help;
};

}  // namespace help

#endif  // SRC_TOOLS_TOOLS_H_
