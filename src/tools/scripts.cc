// The /help tool tree: plain files and small rc scripts. "A help window on
// such a file behaves much like a menu, but is really just a window on a
// plain file."
#include "src/tools/tools.h"

namespace help {

void RegisterParseBuf(Vfs* vfs, CommandRegistry* registry);   // parsebuf.cc
void RegisterMailTool(Vfs* vfs, CommandRegistry* registry);   // mail.cc

namespace {

void W(Vfs& vfs, std::string_view path, std::string_view content) {
  vfs.MkdirAll(DirPath(path));
  vfs.WriteFile(path, content);
}

void InstallEditTool(Vfs& vfs) {
  W(vfs, "/help/edit/stf",
    "Open\n"
    "Pattern ''\n"
    "Text ''\n"
    "Cut\tPaste\tSnarf\n"
    "Write\tNew\n"
    "Undo\tRedo\n");
}

void InstallCbrTool(Vfs& vfs) {
  W(vfs, "/help/cbr/stf", "Open\tmk\tsrc\tdecl\tdecl.o\tuses *.c\n");

  // The paper's decl script, adapted only in spelling: parse the selection
  // context, make a window, label it, and run the code-generator-less
  // compiler over the preprocessed source.
  W(vfs, "/help/cbr/decl",
    "eval `{help/parse -c}\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag $dir/^' decl Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "cpp $cppflags $file |\n"
    "help/rcc -w -g -i$id -n$line -f$file |\n"
    "sed 1q > /mnt/help/$x/bodyapp\n");

  // Extension ("a future change to help will be to close this loop"):
  // decl.o also opens the declaration's window automatically.
  W(vfs, "/help/cbr/decl.o",
    "eval `{help/parse -c}\n"
    "loc=`{cpp $cppflags $file | help/rcc -w -g -i$id -n$line -f$file | sed 1q}\n"
    "echo $dir $loc > /mnt/help/open\n");

  W(vfs, "/help/cbr/uses",
    "eval `{help/parse -c}\n"
    "cd $dir\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag $dir/^' uses Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "help/rcc -u -i$id -n$line -f$file $* > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/cbr/src",
    "eval `{help/parse -c}\n"
    "cd $dir\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag $dir/^' src Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "help/rcc -s$id -f$file *.c > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/cbr/mk",
    "dir=`{help/parse -d}\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag $dir/mk 'Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "cd $dir\n"
    "mk > /mnt/help/$x/bodyapp\n");
}

void InstallDbTool(Vfs& vfs) {
  W(vfs, "/help/db/stf",
    "ps\tpc\tregs\tbroke\n"
    "stack\tkstack\tnextkstack\n");

  // Each script is a dozen lines that "package the most important functions
  // of adb as easy-to-use operations ... while hiding the rebarbative
  // syntax".
  W(vfs, "/help/db/stack",
    "pid=`{help/parse -w}\n"
    "dir=`{adb $pid srcdir}\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag $dir/ $pid stack 'Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "adb $pid stack > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/db/regs",
    "pid=`{help/parse -w}\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "echo tag $pid regs 'Close!' > /mnt/help/$x/ctl\n"
    "adb $pid regs > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/db/pc",
    "pid=`{help/parse -w}\n"
    "adb $pid pc\n");

  W(vfs, "/help/db/broke",
    "x=`{cat /mnt/help/new/ctl}\n"
    "echo tag broke 'Close!' > /mnt/help/$x/ctl\n"
    "adb broke > /mnt/help/$x/bodyapp\n");

  // /bin/ps is named explicitly: a bare `ps` would resolve to this very
  // script (the shell searches the script's directory first).
  W(vfs, "/help/db/ps",
    "x=`{cat /mnt/help/new/ctl}\n"
    "echo tag ps 'Close!' > /mnt/help/$x/ctl\n"
    "/bin/ps > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/db/kstack",
    "pid=`{help/parse -w}\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "echo tag $pid kstack 'Close!' > /mnt/help/$x/ctl\n"
    "adb $pid kstack > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/db/nextkstack",
    "pid=`{help/parse -w}\n"
    "adb $pid kstack | tail -n 1\n");
}

void InstallMailToolScripts(Vfs& vfs) {
  W(vfs, "/help/mail/stf", "headers\tmessages\tdelete\treread\tsend\n");

  W(vfs, "/help/mail/headers",
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag /mail/box/rob/mbox /bin/help/mail 'Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "help/mail -h /mail/box/rob/mbox > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/mail/messages",
    "n=`{help/parse -n}\n"
    "who=`{help/mail -s $n /mail/box/rob/mbox}\n"
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag From $who 'Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "help/mail -m $n /mail/box/rob/mbox > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/mail/delete",
    "n=`{help/parse -n}\n"
    "help/mail -d $n /mail/box/rob/mbox\n");

  W(vfs, "/help/mail/reread",
    "x=`{cat /mnt/help/new/ctl}\n"
    "{\n"
    "echo tag /mail/box/rob/mbox /bin/help/mail 'Close!'\n"
    "} > /mnt/help/$x/ctl\n"
    "help/mail -h /mail/box/rob/mbox > /mnt/help/$x/bodyapp\n");

  W(vfs, "/help/mail/send",
    "help/mail -send /mail/box/rob/mbox\n");
}

}  // namespace

void InstallTools(Help* h) {
  Vfs& vfs = h->vfs();
  RegisterParseBuf(&vfs, &h->registry());
  RegisterMailTool(&vfs, &h->registry());
  InstallEditTool(vfs);
  InstallCbrTool(vfs);
  InstallDbTool(vfs);
  InstallMailToolScripts(vfs);
}

void Boot(Help* h) {
  // The left column gets the Boot window; the right column loads the tools.
  h->CreateWindow("help/Boot Exit", /*col_hint=*/0);
  for (const char* stf :
       {"/help/edit/stf", "/help/cbr/stf", "/help/db/stf", "/help/mail/stf"}) {
    h->OpenFile(stf, "/", nullptr, /*col_hint=*/1);
  }
  h->SetCurrent(nullptr);
  h->ResetCounters();
}

PaperSession::PaperSession() {
  InstallTools(&help);
  BuildPaperWorld(&help);
  Boot(&help);
}

}  // namespace help
