#include "src/text/address.h"

#include <cctype>

#include "src/base/strings.h"
#include "src/regexp/cache.h"
#include "src/regexp/regexp.h"
#include "src/text/search.h"

namespace help {

FileAddress SplitFileAddress(std::string_view s) {
  for (size_t i = 0; i + 1 < s.size(); i++) {
    if (s[i] != ':') {
      continue;
    }
    char next = s[i + 1];
    if (isdigit(static_cast<unsigned char>(next)) || next == '#' || next == '/' ||
        next == '$' || (next == '-' && i + 2 < s.size() && s[i + 2] == '/')) {
      return {std::string(s.substr(0, i)), std::string(s.substr(i + 1))};
    }
  }
  return {std::string(s), std::string()};
}

namespace {

// Consumes a /-delimited pattern (the leading '/' already consumed) from
// (*addr), honoring \/ escapes.
std::string TakePattern(std::string_view* addr) {
  std::string pattern;
  while (!addr->empty() && (*addr)[0] != '/') {
    if ((*addr)[0] == '\\' && addr->size() > 1 && (*addr)[1] == '/') {
      pattern += '/';
      addr->remove_prefix(2);
      continue;
    }
    pattern += (*addr)[0];
    addr->remove_prefix(1);
  }
  if (!addr->empty()) {
    addr->remove_prefix(1);  // closing '/'
  }
  return pattern;
}

// /re/ and -/re/: compile through the process-wide LRU (the same patterns
// re-resolve on every Look click and plumbing cycle) and stream over the gap
// buffer — no document copy.
Result<Selection> EvalPattern(const Text& t, std::string_view* addr, bool backward) {
  std::string pattern = TakePattern(addr);
  if (pattern.empty()) {
    // sam's bare // repeats the previous pattern; with no such memory an
    // empty pattern is an error rather than a match-everything.
    return Status::Error("address: empty regexp");
  }
  auto re = RegexpCache::Global().Get(pattern);
  if (!re.ok()) {
    return re.status();
  }
  auto m = backward ? StreamSearchBackward(t, *re.value(), t.size())
                    : StreamSearch(t, *re.value());
  if (!m) {
    return Status::Error("address: no match for " + std::string(backward ? "-" : "") +
                         "/" + pattern + "/");
  }
  return Selection{m->begin, m->end};
}

// Evaluates one simple address starting at (*addr); consumes what it parses.
Result<Selection> EvalSimple(const Text& t, std::string_view* addr) {
  if (addr->empty()) {
    return Status::Error("address: empty");
  }
  char c = (*addr)[0];
  if (isdigit(static_cast<unsigned char>(c))) {
    size_t i = 0;
    while (i < addr->size() && isdigit(static_cast<unsigned char>((*addr)[i]))) {
      i++;
    }
    long line = ParseInt(addr->substr(0, i));
    addr->remove_prefix(i);
    if (line <= 0) {
      return Status::Error("address: bad line number");
    }
    return t.LineRange(static_cast<size_t>(line));
  }
  if (c == '#') {
    addr->remove_prefix(1);
    size_t i = 0;
    while (i < addr->size() && isdigit(static_cast<unsigned char>((*addr)[i]))) {
      i++;
    }
    long off = ParseInt(addr->substr(0, i));
    addr->remove_prefix(i);
    if (off < 0) {
      return Status::Error("address: bad character offset");
    }
    size_t pos = std::min(static_cast<size_t>(off), t.size());
    return Selection{pos, pos};
  }
  if (c == '$') {
    addr->remove_prefix(1);
    return Selection{t.size(), t.size()};
  }
  if (c == '/') {
    addr->remove_prefix(1);
    return EvalPattern(t, addr, /*backward=*/false);
  }
  if (c == '-' && addr->size() > 1 && (*addr)[1] == '/') {
    addr->remove_prefix(2);
    return EvalPattern(t, addr, /*backward=*/true);
  }
  return Status::Error("address: bad syntax");
}

}  // namespace

Result<Selection> EvalAddress(const Text& t, std::string_view addr) {
  auto first = EvalSimple(t, &addr);
  if (!first.ok()) {
    return first;
  }
  if (!addr.empty() && addr[0] == ',') {
    addr.remove_prefix(1);
    auto second = EvalSimple(t, &addr);
    if (!second.ok()) {
      return second;
    }
    if (!addr.empty()) {
      return Status::Error("address: trailing junk");
    }
    if (second.value().q1 < first.value().q0) {
      return Status::Error("address: range out of order");
    }
    return Selection{first.value().q0, second.value().q1};
  }
  if (!addr.empty()) {
    return Status::Error("address: trailing junk");
  }
  return first;
}

}  // namespace help
