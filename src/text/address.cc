#include "src/text/address.h"

#include <cctype>

#include "src/base/strings.h"
#include "src/regexp/regexp.h"

namespace help {

FileAddress SplitFileAddress(std::string_view s) {
  for (size_t i = 0; i + 1 < s.size(); i++) {
    if (s[i] != ':') {
      continue;
    }
    char next = s[i + 1];
    if (isdigit(static_cast<unsigned char>(next)) || next == '#' || next == '/' ||
        next == '$') {
      return {std::string(s.substr(0, i)), std::string(s.substr(i + 1))};
    }
  }
  return {std::string(s), std::string()};
}

namespace {

// Evaluates one simple address starting at (*addr); consumes what it parses.
Result<Selection> EvalSimple(const Text& t, std::string_view* addr) {
  if (addr->empty()) {
    return Status::Error("address: empty");
  }
  char c = (*addr)[0];
  if (isdigit(static_cast<unsigned char>(c))) {
    size_t i = 0;
    while (i < addr->size() && isdigit(static_cast<unsigned char>((*addr)[i]))) {
      i++;
    }
    long line = ParseInt(addr->substr(0, i));
    addr->remove_prefix(i);
    if (line <= 0) {
      return Status::Error("address: bad line number");
    }
    return t.LineRange(static_cast<size_t>(line));
  }
  if (c == '#') {
    addr->remove_prefix(1);
    size_t i = 0;
    while (i < addr->size() && isdigit(static_cast<unsigned char>((*addr)[i]))) {
      i++;
    }
    long off = ParseInt(addr->substr(0, i));
    addr->remove_prefix(i);
    if (off < 0) {
      return Status::Error("address: bad character offset");
    }
    size_t pos = std::min(static_cast<size_t>(off), t.size());
    return Selection{pos, pos};
  }
  if (c == '$') {
    addr->remove_prefix(1);
    return Selection{t.size(), t.size()};
  }
  if (c == '/') {
    addr->remove_prefix(1);
    std::string pattern;
    while (!addr->empty() && (*addr)[0] != '/') {
      if ((*addr)[0] == '\\' && addr->size() > 1 && (*addr)[1] == '/') {
        pattern += '/';
        addr->remove_prefix(2);
        continue;
      }
      pattern += (*addr)[0];
      addr->remove_prefix(1);
    }
    if (!addr->empty()) {
      addr->remove_prefix(1);  // closing '/'
    }
    if (pattern.empty()) {
      // sam's bare // repeats the previous pattern; with no such memory an
      // empty pattern is an error rather than a match-everything.
      return Status::Error("address: empty regexp");
    }
    auto re = Regexp::Compile(pattern);
    if (!re.ok()) {
      return re.status();
    }
    RuneString all = t.ReadAll();
    auto m = re.value().Search(all);
    if (!m) {
      return Status::Error("address: no match for /" + pattern + "/");
    }
    return Selection{m->begin, m->end};
  }
  return Status::Error("address: bad syntax");
}

}  // namespace

Result<Selection> EvalAddress(const Text& t, std::string_view addr) {
  auto first = EvalSimple(t, &addr);
  if (!first.ok()) {
    return first;
  }
  if (!addr.empty() && addr[0] == ',') {
    addr.remove_prefix(1);
    auto second = EvalSimple(t, &addr);
    if (!second.ok()) {
      return second;
    }
    if (!addr.empty()) {
      return Status::Error("address: trailing junk");
    }
    if (second.value().q1 < first.value().q0) {
      return Status::Error("address: range out of order");
    }
    return Selection{first.value().q0, second.value().q1};
  }
  if (!addr.empty()) {
    return Status::Error("address: trailing junk");
  }
  return first;
}

}  // namespace help
