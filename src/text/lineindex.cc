#include "src/text/lineindex.h"

#include "src/obs/trace.h"

#include <algorithm>
#include <bit>

namespace help {

LineIndex::Counts LineIndex::CountsOf(RuneStringView s) {
  Counts c;
  c.runes = s.size();
  for (Rune r : s) {
    if (r == '\n') {
      c.lines++;
    }
    c.bytes += Utf8RuneLen(r);
  }
  return c;
}

void LineIndex::Reset(const GapBuffer& buf) {
  OBS_COUNT("text.lineindex.resets", 1);
  chunks_.clear();
  size_t n = buf.size();
  for (size_t start = 0; start < n; start += kTargetChunkRunes) {
    size_t span = std::min(kTargetChunkRunes, n - start);
    Counts c;
    c.runes = span;
    for (size_t p = start; p < start + span; p++) {
      Rune r = buf.At(p);
      if (r == '\n') {
        c.lines++;
      }
      c.bytes += Utf8RuneLen(r);
    }
    chunks_.push_back(c);
  }
  RebuildFenwick();
}

void LineIndex::RebuildFenwick() {
  // Structural events are rare (amortized over kTargetChunkRunes edits), so
  // an always-on counter is affordable and /mnt/help/metrics can report how
  // often the index reshapes under load.
  OBS_COUNT("text.lineindex.rebuilds", 1);
  size_t m = chunks_.size();
  fen_.assign(m + 1, Counts{});
  total_ = Counts{};
  for (size_t i = 1; i <= m; i++) {
    fen_[i].Add(chunks_[i - 1]);
    total_.Add(chunks_[i - 1]);
    size_t j = i + (i & (~i + 1));
    if (j <= m) {
      fen_[j].Add(fen_[i]);
    }
  }
}

void LineIndex::FenAdd(size_t i, const Counts& delta) {
  for (size_t j = i + 1; j < fen_.size(); j += j & (~j + 1)) {
    fen_[j].Add(delta);
  }
}

size_t LineIndex::DescendRunes(uint64_t target, Counts* before) const {
  size_t m = chunks_.size();
  size_t idx = 0;
  Counts acc;
  for (size_t step = std::bit_floor(m); step > 0; step >>= 1) {
    size_t next = idx + step;
    if (next <= m && acc.runes + fen_[next].runes <= target) {
      idx = next;
      acc.Add(fen_[next]);
    }
  }
  *before = acc;
  return idx;
}

size_t LineIndex::DescendLines(uint64_t target, Counts* before) const {
  size_t m = chunks_.size();
  size_t idx = 0;
  Counts acc;
  for (size_t step = std::bit_floor(m); step > 0; step >>= 1) {
    size_t next = idx + step;
    if (next <= m && acc.lines + fen_[next].lines <= target) {
      idx = next;
      acc.Add(fen_[next]);
    }
  }
  *before = acc;
  return idx;
}

size_t LineIndex::DescendBytes(uint64_t target, Counts* before) const {
  size_t m = chunks_.size();
  size_t idx = 0;
  Counts acc;
  for (size_t step = std::bit_floor(m); step > 0; step >>= 1) {
    size_t next = idx + step;
    if (next <= m && acc.bytes + fen_[next].bytes <= target) {
      idx = next;
      acc.Add(fen_[next]);
    }
  }
  *before = acc;
  return idx;
}

void LineIndex::SplitChunk(const GapBuffer& buf, size_t i, size_t start) {
  OBS_COUNT("text.lineindex.splits", 1);
  size_t n = static_cast<size_t>(chunks_[i].runes);
  size_t pieces = (n + kTargetChunkRunes - 1) / kTargetChunkRunes;
  std::vector<Counts> out;
  out.reserve(pieces);
  // Spread the runes evenly so no piece sits right at a boundary.
  for (size_t p = 0; p < pieces; p++) {
    size_t lo = n * p / pieces;
    size_t hi = n * (p + 1) / pieces;
    Counts c;
    c.runes = hi - lo;
    for (size_t q = start + lo; q < start + hi; q++) {
      Rune r = buf.At(q);
      if (r == '\n') {
        c.lines++;
      }
      c.bytes += Utf8RuneLen(r);
    }
    out.push_back(c);
  }
  chunks_.erase(chunks_.begin() + static_cast<long>(i));
  chunks_.insert(chunks_.begin() + static_cast<long>(i), out.begin(), out.end());
  RebuildFenwick();
}

void LineIndex::OnInsert(const GapBuffer& buf, size_t pos, RuneStringView s) {
  if (s.empty()) {
    return;
  }
  if (chunks_.empty()) {
    Reset(buf);
    return;
  }
  Counts add = CountsOf(s);
  Counts before;
  size_t i = DescendRunes(pos, &before);
  if (i == chunks_.size()) {
    // Appending at the very end extends the last chunk.
    i--;
    before.Sub(chunks_[i]);
  }
  chunks_[i].Add(add);
  total_.Add(add);
  if (chunks_[i].runes > kMaxChunkRunes) {
    SplitChunk(buf, i, static_cast<size_t>(before.runes));
  } else {
    FenAdd(i, add);
  }
}

void LineIndex::OnDelete(size_t pos, RuneStringView removed) {
  if (removed.empty()) {
    return;
  }
  Counts before;
  size_t first = DescendRunes(pos, &before);
  size_t off = pos - static_cast<size_t>(before.runes);
  size_t consumed = 0;
  size_t i = first;
  size_t touched = 0;
  Counts deltas[2];     // per-chunk subtraction for the surviving-chunk case
  size_t delta_at[2] = {0, 0};
  bool structural = false;
  while (consumed < removed.size()) {
    size_t take = std::min(removed.size() - consumed,
                           static_cast<size_t>(chunks_[i].runes) - off);
    Counts sub = CountsOf(removed.substr(consumed, take));
    chunks_[i].Sub(sub);
    if (chunks_[i].runes == 0) {
      structural = true;
    } else if (touched < 2) {
      deltas[touched] = sub;
      delta_at[touched] = i;
      touched++;
    } else {
      structural = true;  // >2 surviving partial chunks cannot happen, but be safe
    }
    consumed += take;
    off = 0;
    i++;
  }
  total_.Sub(CountsOf(removed));

  // Drop emptied chunks.
  size_t w = first;
  for (size_t r = first; r < i; r++) {
    if (chunks_[r].runes != 0) {
      if (w != r) {
        chunks_[w] = chunks_[r];
      }
      w++;
    }
  }
  if (w != i) {
    chunks_.erase(chunks_.begin() + static_cast<long>(w),
                  chunks_.begin() + static_cast<long>(i));
  }

  // Merge an undersized survivor into a neighbor when the result still fits,
  // so scattered deletes cannot bloat the chunk count with slivers.
  if (first < chunks_.size() && chunks_[first].runes < kMinChunkRunes) {
    if (first + 1 < chunks_.size() &&
        chunks_[first].runes + chunks_[first + 1].runes <= kMaxChunkRunes) {
      chunks_[first].Add(chunks_[first + 1]);
      chunks_.erase(chunks_.begin() + static_cast<long>(first) + 1);
      structural = true;
    } else if (first > 0 &&
               chunks_[first - 1].runes + chunks_[first].runes <= kMaxChunkRunes) {
      chunks_[first - 1].Add(chunks_[first]);
      chunks_.erase(chunks_.begin() + static_cast<long>(first));
      structural = true;
    }
  }

  if (structural) {
    RebuildFenwick();
    return;
  }
  for (size_t d = 0; d < touched; d++) {
    Counts neg;
    neg.Sub(deltas[d]);  // wrap-around negative delta
    FenAdd(delta_at[d], neg);
  }
}

size_t LineIndex::NewlinesBefore(const GapBuffer& buf, size_t pos) const {
  if (pos >= total_.runes) {
    return static_cast<size_t>(total_.lines);
  }
  Counts before;
  size_t i = DescendRunes(pos, &before);
  (void)i;
  size_t n = static_cast<size_t>(before.lines);
  for (size_t p = static_cast<size_t>(before.runes); p < pos; p++) {
    if (buf.At(p) == '\n') {
      n++;
    }
  }
  return n;
}

size_t LineIndex::PosAfterNewline(const GapBuffer& buf, size_t k) const {
  k = std::min<uint64_t>(k, total_.lines);
  if (k == 0) {
    return 0;
  }
  Counts before;
  size_t i = DescendLines(k - 1, &before);
  uint64_t rem = k - before.lines;
  size_t p = static_cast<size_t>(before.runes);
  size_t end = p + static_cast<size_t>(chunks_[i].runes);
  for (; p < end; p++) {
    if (buf.At(p) == '\n' && --rem == 0) {
      return p + 1;
    }
  }
  return static_cast<size_t>(total_.runes);  // unreachable if counts are consistent
}

size_t LineIndex::NextNewline(const GapBuffer& buf, size_t pos) const {
  size_t k = NewlinesBefore(buf, pos) + 1;
  if (k > total_.lines) {
    return static_cast<size_t>(total_.runes);
  }
  return PosAfterNewline(buf, k) - 1;
}

std::string LineIndex::Utf8Substr(const GapBuffer& buf, uint64_t byte_off,
                                  size_t count) const {
  if (count == 0 || byte_off >= total_.bytes) {
    return std::string();
  }
  Counts before;
  size_t i = DescendBytes(byte_off, &before);
  (void)i;
  // Advance within the chunk to the rune whose encoding covers byte_off.
  size_t p = static_cast<size_t>(before.runes);
  uint64_t b = before.bytes;
  size_t n = buf.size();
  while (p < n) {
    uint64_t len = Utf8RuneLen(buf.At(p));
    if (b + len > byte_off) {
      break;
    }
    b += len;
    p++;
  }
  size_t skip = static_cast<size_t>(byte_off - b);  // partial-rune lead bytes to drop
  std::string out;
  out.reserve(count + 4);
  while (p < n && out.size() < count + skip) {
    EncodeRune(buf.At(p), &out);
    p++;
  }
  if (skip > 0) {
    out.erase(0, skip);
  }
  if (out.size() > count) {
    out.resize(count);
  }
  return out;
}

LineIndex::Utf8Slice LineIndex::Utf8Resolve(const GapBuffer& buf,
                                            uint64_t byte_off,
                                            size_t count) const {
  Utf8Slice out;
  if (count == 0 || byte_off >= total_.bytes) {
    return out;
  }
  const uint64_t end =
      std::min<uint64_t>(byte_off + count, total_.bytes);
  Counts before;
  size_t i = DescendBytes(byte_off, &before);
  (void)i;
  // Advance within the chunk to the rune whose encoding covers byte_off.
  size_t p = static_cast<size_t>(before.runes);
  uint64_t b = before.bytes;
  size_t n = buf.size();
  while (p < n) {
    uint64_t len = Utf8RuneLen(buf.At(p));
    if (b + len > byte_off) {
      break;
    }
    b += len;
    p++;
  }
  if (b < byte_off && p < n) {
    // The rune at p straddles the start: keep the tail of its encoding (and
    // only up to `end` — the whole range may land inside one rune).
    std::string enc;
    EncodeRune(buf.At(p), &enc);
    size_t skip = static_cast<size_t>(byte_off - b);
    out.prefix = enc.substr(skip, static_cast<size_t>(end - byte_off));
    b += enc.size();
    p++;
  }
  out.rune_begin = p;
  while (p < n) {
    uint64_t len = Utf8RuneLen(buf.At(p));
    if (b + len > end) {
      break;
    }
    b += len;
    p++;
  }
  out.rune_end = p;
  if (b < end && p < n) {
    // The rune at p straddles the end: keep the head of its encoding.
    std::string enc;
    EncodeRune(buf.At(p), &enc);
    out.suffix = enc.substr(0, static_cast<size_t>(end - b));
  }
  out.bytes = end - byte_off;
  return out;
}

bool LineIndex::CheckConsistent(const GapBuffer& buf) const {
  Counts sum;
  size_t start = 0;
  for (size_t i = 0; i < chunks_.size(); i++) {
    if (chunks_[i].runes == 0) {
      return false;  // empty chunks must be erased
    }
    Counts c;
    c.runes = chunks_[i].runes;
    for (size_t p = start; p < start + static_cast<size_t>(chunks_[i].runes); p++) {
      Rune r = buf.At(p);
      if (r == '\n') {
        c.lines++;
      }
      c.bytes += Utf8RuneLen(r);
    }
    if (c.lines != chunks_[i].lines || c.bytes != chunks_[i].bytes) {
      return false;
    }
    start += static_cast<size_t>(chunks_[i].runes);
    sum.Add(chunks_[i]);
    Counts prefix;
    size_t idx = DescendRunes(sum.runes == 0 ? 0 : sum.runes - 1, &prefix);
    if (idx != i || prefix.runes + chunks_[i].runes != sum.runes ||
        prefix.lines + chunks_[i].lines != sum.lines ||
        prefix.bytes + chunks_[i].bytes != sum.bytes) {
      return false;
    }
  }
  return start == buf.size() && sum.runes == total_.runes &&
         sum.lines == total_.lines && sum.bytes == total_.bytes;
}

}  // namespace help
