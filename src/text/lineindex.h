// LineIndex: incremental line and byte bookkeeping over a GapBuffer. The
// buffer stays the storage engine (help's edits are strongly localized); this
// index sits beside it so structural queries — "which line is offset q on?",
// "where does line 27 start?", "give me bytes [off, off+count) of the UTF-8
// encoding" — cost O(log n + C) instead of a full O(n) rune scan, where C is
// the fixed chunk span.
//
// Structure: a chunk array over fixed-span rune blocks. Chunk i covers a
// contiguous run of runes and records three counts: runes, newlines, and
// UTF-8 bytes. Fenwick (binary indexed) trees over the chunk array give
// O(log n) prefix sums and prefix-search descent for all three components.
// Edits update only the touched chunks: an insert adds the counts of the
// inserted runes to one chunk (splitting it when it outgrows the span), a
// delete subtracts per-chunk slices of the removed runes (erasing emptied
// chunks, merging undersized survivors). Counts come from the edit's own
// runes — the buffer is never rescanned except when a chunk splits, which is
// amortized over the kTargetChunkRunes runes that caused the growth.
#ifndef SRC_TEXT_LINEINDEX_H_
#define SRC_TEXT_LINEINDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rune.h"
#include "src/text/gapbuffer.h"

namespace help {

// UTF-8 encoded length of one rune, mirroring EncodeRune (invalid runes
// encode as the 3-byte replacement character).
inline uint64_t Utf8RuneLen(Rune r) {
  if (r > kRuneMax || (r >= 0xD800 && r <= 0xDFFF)) {
    return 3;  // encodes as U+FFFD
  }
  if (r < 0x80) {
    return 1;
  }
  if (r < 0x800) {
    return 2;
  }
  return r < 0x10000 ? 3 : 4;
}

class LineIndex {
 public:
  // Chunks aim for kTargetChunkRunes and split past kMaxChunkRunes; a chunk
  // that shrinks below kMinChunkRunes merges with a neighbor when the result
  // fits. Queries scan at most one chunk, so kMaxChunkRunes bounds C.
  static constexpr size_t kTargetChunkRunes = 4096;
  static constexpr size_t kMaxChunkRunes = 2 * kTargetChunkRunes;
  static constexpr size_t kMinChunkRunes = kTargetChunkRunes / 8;

  // Full O(n) rebuild from the buffer (document load / SetAll).
  void Reset(const GapBuffer& buf);

  // Edit notifications. Both are called AFTER the buffer mutation, with the
  // clamped position and the exact runes inserted/removed, so the index's
  // counts always derive from what actually changed.
  void OnInsert(const GapBuffer& buf, size_t pos, RuneStringView s);
  void OnDelete(size_t pos, RuneStringView removed);

  // --- O(1) totals -----------------------------------------------------------
  size_t runes() const { return static_cast<size_t>(total_.runes); }
  size_t newlines() const { return static_cast<size_t>(total_.lines); }
  uint64_t utf8_bytes() const { return total_.bytes; }

  // --- O(log n + C) structural queries ---------------------------------------

  // Number of '\n' runes in [0, pos). pos > size clamps to size.
  size_t NewlinesBefore(const GapBuffer& buf, size_t pos) const;
  // Rune offset one past the k-th newline, 1-based; requires 1 <= k and
  // clamps k to newlines() (0 newlines => 0).
  size_t PosAfterNewline(const GapBuffer& buf, size_t k) const;
  // Offset of the first '\n' at or after pos, or size() if there is none.
  size_t NextNewline(const GapBuffer& buf, size_t pos) const;
  // Bytes [byte_off, byte_off+count) of the document's UTF-8 encoding,
  // without materializing the rest (the file-server read path). Byte offsets
  // may land mid-rune; the slice is byte-exact.
  std::string Utf8Substr(const GapBuffer& buf, uint64_t byte_off, size_t count) const;

  // Structural form of Utf8Substr for the zero-copy read path: instead of
  // materializing the bytes, resolves the byte range to the rune range whose
  // encodings lie fully inside it, plus owned fringe bytes where the range
  // boundaries land mid-rune. The caller encodes runes [rune_begin, rune_end)
  // straight from the buffer's spans; prefix/suffix cover at most one
  // partially-included rune each. bytes == prefix + middle + suffix total.
  struct Utf8Slice {
    std::string prefix;     // trailing bytes of the rune straddling the start
    std::string suffix;     // leading bytes of the rune straddling the end
    size_t rune_begin = 0;  // whole runes fully inside the byte range
    size_t rune_end = 0;
    uint64_t bytes = 0;     // total slice size in bytes (clamped to document)
  };
  Utf8Slice Utf8Resolve(const GapBuffer& buf, uint64_t byte_off,
                        size_t count) const;

  // Test hook: recount every chunk from the buffer and verify chunk counts,
  // Fenwick sums, and totals. O(n); used by the differential property suite.
  bool CheckConsistent(const GapBuffer& buf) const;

 private:
  // Per-chunk counts. Deltas are applied with unsigned wrap-around, which is
  // well-defined and cancels exactly because every subtraction undoes counts
  // that were previously added.
  struct Counts {
    uint64_t runes = 0;
    uint64_t lines = 0;
    uint64_t bytes = 0;
    void Add(const Counts& o) {
      runes += o.runes;
      lines += o.lines;
      bytes += o.bytes;
    }
    void Sub(const Counts& o) {
      runes -= o.runes;
      lines -= o.lines;
      bytes -= o.bytes;
    }
  };

  static Counts CountsOf(RuneStringView s);

  void RebuildFenwick();
  // Point-update: add (possibly wrapped-negative) delta to chunk i.
  void FenAdd(size_t i, const Counts& delta);
  // Fenwick descent: largest chunk index idx with prefix-sum(component) <=
  // target; *before receives the full prefix counts of chunks [0, idx).
  size_t DescendRunes(uint64_t target, Counts* before) const;
  size_t DescendLines(uint64_t target, Counts* before) const;
  size_t DescendBytes(uint64_t target, Counts* before) const;

  // Replaces an oversized chunk with ~kTargetChunkRunes pieces, recounting
  // from the buffer (the only rescan in the structure). start is the chunk's
  // first rune offset.
  void SplitChunk(const GapBuffer& buf, size_t i, size_t start);

  std::vector<Counts> chunks_;
  std::vector<Counts> fen_;  // 1-based Fenwick over chunks_
  Counts total_;
};

}  // namespace help

#endif  // SRC_TEXT_LINEINDEX_H_
