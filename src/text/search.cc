#include "src/text/search.h"

#include "src/obs/trace.h"

namespace help {

std::optional<Regexp::MatchResult> StreamSearch(const Text& t, const Regexp& re,
                                                size_t start) {
  OBS_SPAN("search.stream");
  RuneSpans doc = t.Spans();
  if (start > doc.size()) {
    return std::nullopt;
  }
  if (!re.line_anchored()) {
    return re.Search(doc, start);
  }
  // '^…': every match begins at a line start, so enumerate those instead of
  // feeding every rune through the VM. The first candidate comes from the
  // Fenwick line index (O(log n)); subsequent ones from the span-level
  // newline scan. MatchAt rejects most candidates on its literal-prefix
  // precheck without building a VM thread.
  OBS_COUNT("search.anchored_linescan", 1);
  size_t p = 0;
  if (start > 0) {
    size_t line = t.LineAt(start);
    if (t.LineStart(line) == start) {
      p = start;
    } else {
      // Start of the next line, if one exists. LineStart clamps overlong line
      // numbers back to the final line's start, which can only land at or
      // before `start` — a genuine next start is always past it.
      size_t next = t.LineStart(line + 1);
      if (next <= start) {
        return std::nullopt;
      }
      p = next;
    }
  }
  while (true) {
    auto m = re.MatchAt(doc, p);
    if (m) {
      return m;
    }
    size_t nl = doc.Find('\n', p);
    if (nl == RuneSpans::npos) {
      return std::nullopt;
    }
    p = nl + 1;
  }
}

std::optional<Regexp::MatchResult> StreamSearchWrap(const Text& t, const Regexp& re,
                                                    size_t start) {
  auto m = StreamSearch(t, re, start);
  if (!m && start > 0) {
    m = StreamSearch(t, re, 0);
  }
  return m;
}

std::optional<Regexp::MatchResult> StreamSearchBackward(const Text& t,
                                                        const Regexp& re,
                                                        size_t limit) {
  OBS_SPAN("search.stream");
  return re.SearchBackward(t.Spans(), std::min(limit, t.size()));
}

size_t StreamFindLiteral(const Text& t, RuneStringView needle, size_t start) {
  OBS_SPAN("search.stream");
  size_t pos = FindRunes(t.Spans(), needle, start);
  OBS_COUNT("search.literal_fastpath", 1);
  OBS_COUNT("search.bytes_scanned",
            ((pos == RuneSpans::npos ? t.size() : pos + needle.size()) -
             std::min(start, t.size())) *
                sizeof(Rune));
  return pos == RuneSpans::npos ? RuneString::npos : pos;
}

}  // namespace help
