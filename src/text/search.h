// Streaming search over a Text: every entry point here runs directly over the
// gap buffer's two spans (Text::Spans()) and never materializes a document
// copy — the paper's interaction model makes search a per-gesture hot path
// (every Look, every /pattern/ address, every name:27 context jump), so a 1M-
// line log window must not cost megabytes of allocation per click.
//
// Division of labor: the Regexp engine owns the rune-level scan (Pike VM,
// literal-prefix Boyer-Moore-Horspool skip); this layer owns what needs the
// Text's structure — '^'-anchored patterns enumerate line starts (located
// through the Fenwick line index rather than a rune-by-rune scan), wrap-
// around search mirrors the Pattern command, and backward search serves the
// -/re/ address.
#ifndef SRC_TEXT_SEARCH_H_
#define SRC_TEXT_SEARCH_H_

#include <optional>

#include "src/regexp/regexp.h"
#include "src/text/text.h"

namespace help {

// Leftmost match at or after rune offset `start`.
std::optional<Regexp::MatchResult> StreamSearch(const Text& t, const Regexp& re,
                                                size_t start = 0);

// Like StreamSearch, but wraps to the top when nothing matches at or after
// `start` (the Pattern/Look gesture's semantics).
std::optional<Regexp::MatchResult> StreamSearchWrap(const Text& t, const Regexp& re,
                                                    size_t start);

// The last match whose end is at or before `limit` (the -/re/ address).
std::optional<Regexp::MatchResult> StreamSearchBackward(const Text& t,
                                                        const Regexp& re,
                                                        size_t limit);

// First occurrence of `needle` at or after `start`, or RuneString::npos.
// Boyer-Moore-Horspool over the spans (the Text command / help literal path).
size_t StreamFindLiteral(const Text& t, RuneStringView needle, size_t start = 0);

}  // namespace help

#endif  // SRC_TEXT_SEARCH_H_
