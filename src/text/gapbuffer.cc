#include "src/text/gapbuffer.h"

#include <algorithm>
#include <cassert>

namespace help {

namespace {
constexpr size_t kInitialGap = 64;
}  // namespace

GapBuffer::GapBuffer() : buf_(kInitialGap, 0), gap_start_(0), gap_end_(kInitialGap) {}

GapBuffer::GapBuffer(RuneStringView initial) : GapBuffer() { Insert(0, initial); }

Rune GapBuffer::At(size_t pos) const {
  assert(pos < size());
  return pos < gap_start_ ? buf_[pos] : buf_[pos + GapLen()];
}

RuneString GapBuffer::Read(size_t pos, size_t n) const {
  if (pos >= size()) {
    return {};
  }
  n = std::min(n, size() - pos);
  RuneString out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    size_t p = pos + i;
    out.push_back(p < gap_start_ ? buf_[p] : buf_[p + GapLen()]);
  }
  return out;
}

void GapBuffer::MoveGap(size_t pos) {
  assert(pos <= size());
  if (pos == gap_start_) {
    return;
  }
  if (pos < gap_start_) {
    // Shift [pos, gap_start_) right to close up against gap_end_.
    size_t n = gap_start_ - pos;
    std::copy_backward(buf_.begin() + static_cast<long>(pos),
                       buf_.begin() + static_cast<long>(gap_start_),
                       buf_.begin() + static_cast<long>(gap_end_));
    gap_start_ = pos;
    gap_end_ -= n;
  } else {
    // Shift [gap_end_, gap_end_ + (pos - gap_start_)) left.
    size_t n = pos - gap_start_;
    std::copy(buf_.begin() + static_cast<long>(gap_end_),
              buf_.begin() + static_cast<long>(gap_end_ + n),
              buf_.begin() + static_cast<long>(gap_start_));
    gap_start_ = pos;
    gap_end_ += n;
  }
}

void GapBuffer::GrowGap(size_t need) {
  if (GapLen() >= need) {
    return;
  }
  size_t new_gap = std::max(need, buf_.size() + kInitialGap);
  RuneString nbuf;
  nbuf.reserve(buf_.size() + new_gap);
  nbuf.append(buf_, 0, gap_start_);
  nbuf.append(new_gap, 0);
  nbuf.append(buf_, gap_end_, buf_.size() - gap_end_);
  gap_end_ = gap_start_ + new_gap;
  buf_ = std::move(nbuf);
}

void GapBuffer::Insert(size_t pos, RuneStringView s) {
  assert(pos <= size());
  if (s.empty()) {
    return;
  }
  MoveGap(pos);
  GrowGap(s.size());
  std::copy(s.begin(), s.end(), buf_.begin() + static_cast<long>(gap_start_));
  gap_start_ += s.size();
}

RuneString GapBuffer::Delete(size_t pos, size_t n) {
  if (pos >= size()) {
    return {};
  }
  n = std::min(n, size() - pos);
  RuneString removed = Read(pos, n);
  MoveGap(pos);
  gap_end_ += n;  // absorb the deleted runes into the gap
  return removed;
}

}  // namespace help
