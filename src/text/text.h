// Text: a document with line bookkeeping and an undo/redo log. Every tag and
// every body is a Text; bodies may be shared between windows (the paper's
// "multiple windows per file" future-work item, implemented here), so
// selections live with the view (draw::Frame / wm::Subwindow), not here.
#ifndef SRC_TEXT_TEXT_H_
#define SRC_TEXT_TEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rune.h"
#include "src/text/gapbuffer.h"
#include "src/text/lineindex.h"

namespace help {

// A selection is a half-open rune range [q0, q1). q0 == q1 is a null
// selection (a caret), which is what triggers help's automatic expansion.
struct Selection {
  size_t q0 = 0;
  size_t q1 = 0;
  bool null() const { return q0 == q1; }
  size_t len() const { return q1 - q0; }
  bool operator==(const Selection&) const = default;
};

class Text {
 public:
  Text() = default;
  explicit Text(std::string_view utf8) { InsertNoUndo(0, RunesFromUtf8(utf8)); }

  // Movable (the atomic edit sequence travels by value): moving a Text is
  // inherently exclusive — no reader may validate against it concurrently.
  Text(Text&& o) noexcept
      : buf_(std::move(o.buf_)),
        lines_(std::move(o.lines_)),
        undo_(std::move(o.undo_)),
        redo_(std::move(o.redo_)),
        change_id_(o.change_id_),
        version_(o.version_),
        edit_seq_(o.edit_seq_.load(std::memory_order_relaxed)),
        dirty_(o.dirty_) {}
  Text& operator=(Text&& o) noexcept {
    buf_ = std::move(o.buf_);
    lines_ = std::move(o.lines_);
    undo_ = std::move(o.undo_);
    redo_ = std::move(o.redo_);
    change_id_ = o.change_id_;
    version_ = o.version_;
    edit_seq_.store(o.edit_seq_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    dirty_ = o.dirty_;
    return *this;
  }

  size_t size() const { return buf_.size(); }
  Rune At(size_t pos) const { return buf_.At(pos); }
  RuneString Read(size_t pos, size_t n) const { return buf_.Read(pos, n); }
  RuneString ReadAll() const { return buf_.ReadAll(); }
  // Zero-copy two-span view of the document (valid until the next mutation);
  // the streaming search layer (src/text/search.h) runs over this.
  RuneSpans Spans() const { return buf_.Spans(); }
  // Whole-document UTF-8 via the line index's byte-exact range reader — one
  // output allocation, no intermediate full rune copy.
  std::string Utf8() const {
    return lines_.Utf8Substr(buf_, 0, static_cast<size_t>(lines_.utf8_bytes()));
  }
  std::string Utf8Range(size_t q0, size_t q1) const {
    return q1 > q0 ? Utf8FromRunes(buf_.Spans().Slice(q0, q1 - q0)) : std::string();
  }

  // --- Byte-offset views (the file-server read path) ------------------------

  // Total UTF-8 encoded size, O(1) from the line index (a 9P stat never
  // encodes the document).
  uint64_t Utf8Bytes() const { return lines_.utf8_bytes(); }
  // Bytes [byte_off, byte_off+count) of the UTF-8 encoding, O(log n + count);
  // byte-exact even when the window splits a multi-byte rune.
  std::string Utf8Substr(uint64_t byte_off, size_t count) const {
    return lines_.Utf8Substr(buf_, byte_off, count);
  }

  // Scatter-gather form of Utf8Substr: resolves the byte range to borrowed
  // gap-buffer spans plus owned fringe bytes where the range splits a rune.
  // The spans alias buf_ and are valid only until the next mutation — callers
  // must hold the exclusive dispatch lock, or bracket use with edit_seq()
  // validation (snapshot before, compare after the spans are consumed).
  struct GatherResult {
    std::string prefix;  // owned tail bytes of a rune split by the range start
    RuneSpans runes;     // whole runes fully inside the range (borrowed)
    std::string suffix;  // owned head bytes of a rune split by the range end
    uint64_t bytes = 0;  // total slice size: prefix + encoded runes + suffix
  };
  GatherResult GatherUtf8(uint64_t byte_off, size_t count) const {
    LineIndex::Utf8Slice s = lines_.Utf8Resolve(buf_, byte_off, count);
    GatherResult g;
    g.prefix = std::move(s.prefix);
    g.suffix = std::move(s.suffix);
    g.runes = buf_.Spans().Slice(s.rune_begin, s.rune_end - s.rune_begin);
    g.bytes = s.bytes;
    return g;
  }

  // --- Editing (undoable) ---------------------------------------------------

  // Starts a new undo group; all edits until the next BeginChange undo as one.
  void BeginChange() { change_id_++; }
  void Insert(size_t pos, RuneStringView s);
  void Delete(size_t pos, size_t n);
  // Replace is the primitive behind "typed text replaces the selection".
  void Replace(size_t q0, size_t q1, RuneStringView s);

  // Non-undoable edits, for loading files and program-driven appends where
  // undo history would be meaningless.
  void InsertNoUndo(size_t pos, RuneStringView s);
  void DeleteNoUndo(size_t pos, size_t n);
  void SetAll(std::string_view utf8);

  // Undoes / redoes one change group. Returns false if there is nothing to
  // undo/redo. On success, *touched is set to the lowest rune offset the
  // operation modified (views use it to re-layout).
  bool Undo(size_t* touched);
  bool Redo(size_t* touched);
  bool CanUndo() const { return !undo_.empty(); }
  bool CanRedo() const { return !redo_.empty(); }

  // --- Line bookkeeping ------------------------------------------------------
  //
  // All of these answer from the incremental LineIndex in O(log n + C) where
  // C is the fixed chunk span — never a document scan.

  // Number of lines; an empty text has 1 (empty) line, and a trailing
  // newline does not start a new countable line.
  size_t LineCount() const;
  // Rune offset of the start of 1-based line `line`, clamped to the last line.
  size_t LineStart(size_t line) const;
  // Offset one past the last rune of the line containing `pos` (excludes the
  // newline itself).
  size_t LineEndAt(size_t pos) const;
  // 1-based line number containing rune offset `pos`.
  size_t LineAt(size_t pos) const;
  // Full [start,end) range of 1-based line `line` (excluding newline).
  Selection LineRange(size_t line) const;

  // --- Word / file-name expansion (rules of automation & defaults) ----------

  // Expands a null selection at `pos` to the surrounding word (middle-button
  // click semantics). Non-null input selections are returned untouched.
  Selection ExpandWord(size_t pos) const;
  // Expands to the surrounding file name (includes '/', ':' so that
  // "help.c:27" and absolute paths come out whole).
  Selection ExpandFilename(size_t pos) const;

  // --- Dirty / version -------------------------------------------------------

  bool dirty() const { return dirty_; }
  void set_dirty(bool d) { dirty_ = d; }
  // Monotonic counter bumped on every mutation; views compare it to decide
  // whether to re-layout.
  uint64_t version() const { return version_; }

  // Seqlock edit sequence (the 9P shared-read validation; same discipline as
  // the obs trace ring): even while quiescent, odd while a mutation is in
  // progress. Shared-mode 9P readers snapshot it, perform the
  // Utf8Substr/Utf8Bytes read, and revalidate; any change means a concurrent
  // edit and the read is re-run under the exclusive dispatch lock. Mutations
  // themselves happen under that exclusive lock (or on the single UI
  // thread), so a validation failure marks a lock-discipline violation being
  // caught, not a normal mode of operation.
  uint64_t edit_seq() const { return edit_seq_.load(std::memory_order_acquire); }
  // Address of the sequence cell, for validation tokens that outlive the call
  // frame (the zero-copy gather path re-validates after encoding).
  const std::atomic<uint64_t>* edit_seq_cell() const { return &edit_seq_; }

  // Test hook: verifies the line index against a full recount of the buffer.
  // O(n); the differential property suite calls it periodically.
  bool CheckLineIndex() const { return lines_.CheckConsistent(buf_); }

 private:
  struct Change {
    bool insert;  // true: `s` was inserted at pos; false: `s` was deleted from pos
    size_t pos;
    RuneString s;
    uint64_t group;
  };

  void Apply(const Change& c, size_t* touched);
  Change Invert(const Change& c) const;

  // Every mutation funnels through these two so the line index can never
  // drift from the buffer.
  void DoInsert(size_t pos, RuneStringView s);
  RuneString DoDelete(size_t pos, size_t n);

  GapBuffer buf_;
  LineIndex lines_;
  std::vector<Change> undo_;
  std::vector<Change> redo_;
  uint64_t change_id_ = 0;
  uint64_t version_ = 0;
  std::atomic<uint64_t> edit_seq_{0};
  bool dirty_ = false;
};

}  // namespace help

#endif  // SRC_TEXT_TEXT_H_
