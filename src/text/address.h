// Address syntax: `Open help.c:27` positions a window at a location. The
// paper notes the syntax "permits specifying general locations, although only
// line numbers will be used"; we implement the general form, a subset of
// sam's addresses:
//
//   27          line 27 (the whole line becomes the selection)
//   #512        the null selection at rune offset 512
//   /regexp/    the first match of regexp
//   -/regexp/   the last match of regexp (backward search from the end)
//   $           the end of the file
//   a1,a2       from the start of a1 through the end of a2
//
// Pattern addresses stream over the document's gap-buffer spans (see
// src/text/search.h): resolving one never copies the body.
#ifndef SRC_TEXT_ADDRESS_H_
#define SRC_TEXT_ADDRESS_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/text/text.h"

namespace help {

struct FileAddress {
  std::string file;  // may be relative; context rules resolve it
  std::string addr;  // empty when no address was given
};

// Splits "name:addr" into its parts. The colon must be followed by a valid
// address lead-in (digit, '#', '/', '$', "-/"); otherwise the whole string is
// a file name (so DOS-style or odd names don't mis-split).
FileAddress SplitFileAddress(std::string_view s);

// Evaluates `addr` against `t`, returning the selection it denotes.
Result<Selection> EvalAddress(const Text& t, std::string_view addr);

}  // namespace help

#endif  // SRC_TEXT_ADDRESS_H_
