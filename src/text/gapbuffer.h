// Gap buffer of runes: the storage engine under every tag and body. Edits in
// help are strongly localized (typing replaces the selection under the
// mouse), which is exactly the access pattern a gap buffer optimizes.
#ifndef SRC_TEXT_GAPBUFFER_H_
#define SRC_TEXT_GAPBUFFER_H_

#include <cstddef>

#include "src/base/rune.h"

namespace help {

class GapBuffer {
 public:
  GapBuffer();
  explicit GapBuffer(RuneStringView initial);

  size_t size() const { return buf_.size() - GapLen(); }
  bool empty() const { return size() == 0; }

  // Rune at position `pos` (pos < size()).
  Rune At(size_t pos) const;

  // Copies [pos, pos+n) into a fresh string, clamped to the buffer end.
  RuneString Read(size_t pos, size_t n) const;
  RuneString ReadAll() const { return Read(0, size()); }

  // Zero-copy view of the whole buffer as its two physical spans (before and
  // after the gap). Valid until the next mutation; the streaming search layer
  // runs entirely over this view.
  RuneSpans Spans() const {
    RuneStringView phys(buf_);
    return RuneSpans(phys.substr(0, gap_start_), phys.substr(gap_end_));
  }

  // Inserts `s` before position `pos` (pos <= size()).
  void Insert(size_t pos, RuneStringView s);

  // Deletes up to `n` runes starting at `pos`. Returns the runes removed so
  // that callers (the undo log) can invert the operation.
  RuneString Delete(size_t pos, size_t n);

 private:
  size_t GapLen() const { return gap_end_ - gap_start_; }
  // Moves the gap so it begins at logical position `pos`.
  void MoveGap(size_t pos);
  void GrowGap(size_t need);

  RuneString buf_;    // physical storage: [0,gap_start_) + gap + [gap_end_, buf_.size())
  size_t gap_start_;  // physical index of the first gap slot
  size_t gap_end_;    // physical index one past the last gap slot
};

}  // namespace help

#endif  // SRC_TEXT_GAPBUFFER_H_
