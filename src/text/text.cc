#include "src/text/text.h"

#include <algorithm>

namespace help {

void Text::Insert(size_t pos, RuneStringView s) {
  if (s.empty()) {
    return;
  }
  pos = std::min(pos, size());
  buf_.Insert(pos, s);
  undo_.push_back({true, pos, RuneString(s), change_id_});
  redo_.clear();
  dirty_ = true;
  version_++;
}

void Text::Delete(size_t pos, size_t n) {
  if (n == 0 || pos >= size()) {
    return;
  }
  RuneString removed = buf_.Delete(pos, n);
  if (removed.empty()) {
    return;
  }
  undo_.push_back({false, pos, std::move(removed), change_id_});
  redo_.clear();
  dirty_ = true;
  version_++;
}

void Text::Replace(size_t q0, size_t q1, RuneStringView s) {
  if (q1 > q0) {
    Delete(q0, q1 - q0);
  }
  Insert(q0, s);
}

void Text::InsertNoUndo(size_t pos, RuneStringView s) {
  if (s.empty()) {
    return;
  }
  buf_.Insert(std::min(pos, size()), s);
  version_++;
}

void Text::DeleteNoUndo(size_t pos, size_t n) {
  buf_.Delete(pos, n);
  version_++;
}

void Text::SetAll(std::string_view utf8) {
  buf_.Delete(0, size());
  buf_.Insert(0, RunesFromUtf8(utf8));
  undo_.clear();
  redo_.clear();
  dirty_ = false;
  version_++;
}

Text::Change Text::Invert(const Change& c) const {
  return {!c.insert, c.pos, c.s, c.group};
}

void Text::Apply(const Change& c, size_t* touched) {
  if (c.insert) {
    buf_.Insert(c.pos, c.s);
  } else {
    buf_.Delete(c.pos, c.s.size());
  }
  if (touched != nullptr) {
    *touched = std::min(*touched, c.pos);
  }
  version_++;
}

bool Text::Undo(size_t* touched) {
  if (undo_.empty()) {
    return false;
  }
  size_t low = size();
  uint64_t group = undo_.back().group;
  while (!undo_.empty() && undo_.back().group == group) {
    Change c = std::move(undo_.back());
    undo_.pop_back();
    Apply(Invert(c), &low);
    redo_.push_back(std::move(c));
  }
  if (touched != nullptr) {
    *touched = low;
  }
  dirty_ = true;
  return true;
}

bool Text::Redo(size_t* touched) {
  if (redo_.empty()) {
    return false;
  }
  size_t low = size();
  uint64_t group = redo_.back().group;
  while (!redo_.empty() && redo_.back().group == group) {
    Change c = std::move(redo_.back());
    redo_.pop_back();
    Apply(c, &low);
    undo_.push_back(std::move(c));
  }
  if (touched != nullptr) {
    *touched = low;
  }
  dirty_ = true;
  return true;
}

size_t Text::LineCount() const {
  size_t n = 1;
  size_t sz = size();
  for (size_t i = 0; i < sz; i++) {
    if (buf_.At(i) == '\n' && i + 1 < sz) {
      n++;
    }
  }
  return n;
}

size_t Text::LineStart(size_t line) const {
  if (line <= 1) {
    return 0;
  }
  size_t sz = size();
  size_t cur = 1;
  for (size_t i = 0; i < sz; i++) {
    if (buf_.At(i) == '\n') {
      cur++;
      if (cur == line) {
        return i + 1;
      }
    }
  }
  // Past the last line: clamp to the start of the final line.
  size_t i = sz;
  while (i > 0 && buf_.At(i - 1) != '\n') {
    i--;
  }
  return i;
}

size_t Text::LineEndAt(size_t pos) const {
  size_t sz = size();
  pos = std::min(pos, sz);
  while (pos < sz && buf_.At(pos) != '\n') {
    pos++;
  }
  return pos;
}

size_t Text::LineAt(size_t pos) const {
  size_t sz = size();
  pos = std::min(pos, sz);
  size_t line = 1;
  for (size_t i = 0; i < pos; i++) {
    if (buf_.At(i) == '\n') {
      line++;
    }
  }
  return line;
}

Selection Text::LineRange(size_t line) const {
  size_t start = LineStart(line);
  size_t end = LineEndAt(start);
  if (end < size()) {
    end++;  // sam semantics: a line address includes its newline
  }
  return {start, end};
}

Selection Text::ExpandWord(size_t pos) const {
  size_t sz = size();
  pos = std::min(pos, sz);
  size_t q0 = pos;
  size_t q1 = pos;
  while (q0 > 0 && IsWordRune(buf_.At(q0 - 1))) {
    q0--;
  }
  while (q1 < sz && IsWordRune(buf_.At(q1))) {
    q1++;
  }
  return {q0, q1};
}

Selection Text::ExpandFilename(size_t pos) const {
  size_t sz = size();
  pos = std::min(pos, sz);
  size_t q0 = pos;
  size_t q1 = pos;
  while (q0 > 0 && IsFilenameRune(buf_.At(q0 - 1))) {
    q0--;
  }
  while (q1 < sz && IsFilenameRune(buf_.At(q1))) {
    q1++;
  }
  return {q0, q1};
}

}  // namespace help
