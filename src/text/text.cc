#include "src/text/text.h"

#include <algorithm>

#include "src/obs/trace.h"

namespace help {

// Every edit funnels through DoInsert/DoDelete, the editor's hottest path:
// instrumentation here is capture-gated instants only (a relaxed load and a
// branch when tracing is off), never unconditional counters.
void Text::DoInsert(size_t pos, RuneStringView s) {
  OBS_INSTANT("text.insert", s.size());
  edit_seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: edit in progress
  buf_.Insert(pos, s);
  lines_.OnInsert(buf_, pos, s);
  edit_seq_.fetch_add(1, std::memory_order_release);  // even: quiescent
}

RuneString Text::DoDelete(size_t pos, size_t n) {
  OBS_INSTANT("text.delete", n);
  edit_seq_.fetch_add(1, std::memory_order_acq_rel);
  RuneString removed = buf_.Delete(pos, n);
  lines_.OnDelete(pos, removed);
  edit_seq_.fetch_add(1, std::memory_order_release);
  return removed;
}

void Text::Insert(size_t pos, RuneStringView s) {
  if (s.empty()) {
    return;
  }
  pos = std::min(pos, size());
  DoInsert(pos, s);
  undo_.push_back({true, pos, RuneString(s), change_id_});
  redo_.clear();
  dirty_ = true;
  version_++;
}

void Text::Delete(size_t pos, size_t n) {
  if (n == 0 || pos >= size()) {
    return;
  }
  RuneString removed = DoDelete(pos, n);
  if (removed.empty()) {
    return;
  }
  undo_.push_back({false, pos, std::move(removed), change_id_});
  redo_.clear();
  dirty_ = true;
  version_++;
}

void Text::Replace(size_t q0, size_t q1, RuneStringView s) {
  if (q1 > q0) {
    Delete(q0, q1 - q0);
  }
  Insert(q0, s);
}

void Text::InsertNoUndo(size_t pos, RuneStringView s) {
  if (s.empty()) {
    return;
  }
  DoInsert(std::min(pos, size()), s);
  version_++;
}

void Text::DeleteNoUndo(size_t pos, size_t n) {
  DoDelete(pos, n);
  version_++;
}

void Text::SetAll(std::string_view utf8) {
  OBS_SPAN("text.setall");
  edit_seq_.fetch_add(1, std::memory_order_acq_rel);  // mutates buf_ directly
  buf_.Delete(0, size());
  buf_.Insert(0, RunesFromUtf8(utf8));
  lines_.Reset(buf_);  // wholesale replacement: rebuild instead of two diffs
  edit_seq_.fetch_add(1, std::memory_order_release);
  undo_.clear();
  redo_.clear();
  dirty_ = false;
  version_++;
}

Text::Change Text::Invert(const Change& c) const {
  return {!c.insert, c.pos, c.s, c.group};
}

void Text::Apply(const Change& c, size_t* touched) {
  if (c.insert) {
    DoInsert(c.pos, c.s);
  } else {
    DoDelete(c.pos, c.s.size());
  }
  if (touched != nullptr) {
    *touched = std::min(*touched, c.pos);
  }
  version_++;
}

bool Text::Undo(size_t* touched) {
  if (undo_.empty()) {
    return false;
  }
  size_t low = size();
  uint64_t group = undo_.back().group;
  while (!undo_.empty() && undo_.back().group == group) {
    Change c = std::move(undo_.back());
    undo_.pop_back();
    Apply(Invert(c), &low);
    redo_.push_back(std::move(c));
  }
  if (touched != nullptr) {
    *touched = low;
  }
  dirty_ = true;
  return true;
}

bool Text::Redo(size_t* touched) {
  if (redo_.empty()) {
    return false;
  }
  size_t low = size();
  uint64_t group = redo_.back().group;
  while (!redo_.empty() && redo_.back().group == group) {
    Change c = std::move(redo_.back());
    redo_.pop_back();
    Apply(c, &low);
    undo_.push_back(std::move(c));
  }
  if (touched != nullptr) {
    *touched = low;
  }
  dirty_ = true;
  return true;
}

// --- Line bookkeeping, answered by the index ---------------------------------
//
// The invariants these preserve (and the property suite locks in):
//   LineCount("") == 1; a trailing newline does not start a countable line
//   (LineCount("a\n") == 1).
//   LineStart(line) == offset just past the (line-1)th newline, clamped to
//   the start of the final physical line (the position after the last
//   newline) when line runs past the end.

size_t Text::LineCount() const {
  size_t sz = size();
  if (sz == 0) {
    return 1;
  }
  size_t n = 1 + lines_.newlines();
  if (buf_.At(sz - 1) == '\n') {
    n--;  // trailing newline ends the last line rather than starting one
  }
  return n;
}

size_t Text::LineStart(size_t line) const {
  if (line <= 1) {
    return 0;
  }
  // Past the last line: clamp to the start of the final line.
  size_t k = std::min(line - 1, lines_.newlines());
  return lines_.PosAfterNewline(buf_, k);
}

size_t Text::LineEndAt(size_t pos) const {
  return lines_.NextNewline(buf_, std::min(pos, size()));
}

size_t Text::LineAt(size_t pos) const {
  return 1 + lines_.NewlinesBefore(buf_, std::min(pos, size()));
}

Selection Text::LineRange(size_t line) const {
  size_t start = LineStart(line);
  size_t end = LineEndAt(start);
  if (end < size()) {
    end++;  // sam semantics: a line address includes its newline
  }
  return {start, end};
}

Selection Text::ExpandWord(size_t pos) const {
  size_t sz = size();
  pos = std::min(pos, sz);
  size_t q0 = pos;
  size_t q1 = pos;
  while (q0 > 0 && IsWordRune(buf_.At(q0 - 1))) {
    q0--;
  }
  while (q1 < sz && IsWordRune(buf_.At(q1))) {
    q1++;
  }
  return {q0, q1};
}

Selection Text::ExpandFilename(size_t pos) const {
  size_t sz = size();
  pos = std::min(pos, sz);
  size_t q0 = pos;
  size_t q1 = pos;
  while (q0 > 0 && IsFilenameRune(buf_.At(q0 - 1))) {
    q0--;
  }
  while (q1 < sz && IsFilenameRune(buf_.At(q1))) {
    q1++;
  }
  return {q0, q1};
}

}  // namespace help
