// Gap buffer, Text (undo/redo, lines, expansion) and address tests.
#include <gtest/gtest.h>

#include "src/text/address.h"
#include "src/text/gapbuffer.h"
#include "src/text/text.h"

namespace help {
namespace {

// --- GapBuffer ---------------------------------------------------------------

TEST(GapBuffer, InsertReadDelete) {
  GapBuffer g;
  g.Insert(0, U"hello");
  EXPECT_EQ(g.size(), 5u);
  g.Insert(5, U" world");
  EXPECT_EQ(Utf8FromRunes(g.ReadAll()), "hello world");
  RuneString removed = g.Delete(5, 6);
  EXPECT_EQ(Utf8FromRunes(removed), " world");
  EXPECT_EQ(Utf8FromRunes(g.ReadAll()), "hello");
}

TEST(GapBuffer, InsertInMiddleMovesGap) {
  GapBuffer g(U"ad");
  g.Insert(1, U"bc");
  EXPECT_EQ(Utf8FromRunes(g.ReadAll()), "abcd");
  g.Insert(0, U"_");
  EXPECT_EQ(Utf8FromRunes(g.ReadAll()), "_abcd");
  g.Insert(5, U"!");
  EXPECT_EQ(Utf8FromRunes(g.ReadAll()), "_abcd!");
}

TEST(GapBuffer, DeleteClampsAtEnd) {
  GapBuffer g(U"abc");
  EXPECT_EQ(g.Delete(1, 100), RuneString(U"bc"));
  EXPECT_EQ(g.Delete(5, 1), RuneString());
  EXPECT_EQ(g.size(), 1u);
}

TEST(GapBuffer, ReadWindow) {
  GapBuffer g(U"0123456789");
  EXPECT_EQ(g.Read(3, 4), RuneString(U"3456"));
  EXPECT_EQ(g.Read(8, 10), RuneString(U"89"));
  EXPECT_EQ(g.Read(100, 1), RuneString());
}

// Property: a random edit script agrees with the std::u32string model.
class GapBufferProperty : public ::testing::TestWithParam<int> {};

TEST_P(GapBufferProperty, AgreesWithReferenceModel) {
  uint32_t seed = static_cast<uint32_t>(GetParam()) * 2654435761u;
  auto next = [&seed] {
    seed = seed * 1664525 + 1013904223;
    return seed >> 8;
  };
  GapBuffer g;
  std::u32string model;
  for (int step = 0; step < 400; step++) {
    if (model.empty() || next() % 2 == 0) {
      size_t pos = model.empty() ? 0 : next() % (model.size() + 1);
      size_t len = next() % 8;
      RuneString s;
      for (size_t i = 0; i < len; i++) {
        s.push_back('a' + next() % 26);
      }
      g.Insert(pos, s);
      model.insert(pos, s);
    } else {
      size_t pos = next() % (model.size() + 1);
      size_t len = next() % 8;
      g.Delete(pos, len);
      if (pos < model.size()) {
        model.erase(pos, len);
      }
    }
    ASSERT_EQ(g.size(), model.size());
  }
  EXPECT_EQ(g.ReadAll(), RuneString(model));
  // Spot-check At() across the final buffer.
  for (size_t i = 0; i < model.size(); i += 7) {
    EXPECT_EQ(g.At(i), model[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapBufferProperty, ::testing::Range(1, 17));

// --- Text: undo/redo ----------------------------------------------------------

TEST(Text, UndoRedoSingleGroup) {
  Text t("hello");
  t.BeginChange();
  t.Insert(5, U" world");
  EXPECT_EQ(t.Utf8(), "hello world");
  EXPECT_TRUE(t.Undo(nullptr));
  EXPECT_EQ(t.Utf8(), "hello");
  EXPECT_TRUE(t.Redo(nullptr));
  EXPECT_EQ(t.Utf8(), "hello world");
}

TEST(Text, UndoGroupsMultipleEdits) {
  Text t("abcdef");
  t.BeginChange();
  t.Delete(0, 3);   // "def"
  t.Insert(0, U"XY");  // "XYdef"
  EXPECT_EQ(t.Utf8(), "XYdef");
  EXPECT_TRUE(t.Undo(nullptr));
  EXPECT_EQ(t.Utf8(), "abcdef");  // both edits undone as one group
}

TEST(Text, RedoClearedByNewEdit) {
  Text t("a");
  t.BeginChange();
  t.Insert(1, U"b");
  t.Undo(nullptr);
  EXPECT_TRUE(t.CanRedo());
  t.BeginChange();
  t.Insert(1, U"c");
  EXPECT_FALSE(t.CanRedo());
  EXPECT_EQ(t.Utf8(), "ac");
}

TEST(Text, ReplaceIsUndoableAsOneGroup) {
  Text t("typed text replaces the selection");
  t.BeginChange();
  t.Replace(0, 5, U"TYPED");
  EXPECT_EQ(t.Utf8().substr(0, 5), "TYPED");
  t.Undo(nullptr);
  EXPECT_EQ(t.Utf8(), "typed text replaces the selection");
}

TEST(Text, UndoReportsTouchedOffset) {
  Text t("0123456789");
  t.BeginChange();
  t.Delete(4, 2);
  size_t touched = 999;
  t.Undo(&touched);
  EXPECT_EQ(touched, 4u);
}

TEST(Text, UndoStackDepth) {
  Text t;
  for (int i = 0; i < 50; i++) {
    t.BeginChange();
    t.Insert(t.size(), U"x");
  }
  int undone = 0;
  while (t.Undo(nullptr)) {
    undone++;
  }
  EXPECT_EQ(undone, 50);
  EXPECT_EQ(t.size(), 0u);
  int redone = 0;
  while (t.Redo(nullptr)) {
    redone++;
  }
  EXPECT_EQ(redone, 50);
  EXPECT_EQ(t.Utf8(), std::string(50, 'x'));
}

TEST(Text, NoUndoEditsBypassHistory) {
  Text t;
  t.InsertNoUndo(0, U"program output");
  EXPECT_FALSE(t.CanUndo());
  EXPECT_FALSE(t.dirty());
}

// --- Text: lines ---------------------------------------------------------------

TEST(Text, LineBookkeeping) {
  Text t("one\ntwo\nthree");
  EXPECT_EQ(t.LineCount(), 3u);
  EXPECT_EQ(t.LineStart(1), 0u);
  EXPECT_EQ(t.LineStart(2), 4u);
  EXPECT_EQ(t.LineStart(3), 8u);
  EXPECT_EQ(t.LineAt(0), 1u);
  EXPECT_EQ(t.LineAt(4), 2u);
  EXPECT_EQ(t.LineAt(t.size()), 3u);
  EXPECT_EQ(t.LineEndAt(5), 7u);
}

// The trailing-newline invariant the line index must reproduce exactly: a
// trailing newline ends the last line, it does not start a countable one
// (text.h's header comment). Locked in before and across edits.
TEST(Text, TrailingNewlineDoesNotAddLine) {
  Text t("a\nb\n");
  EXPECT_EQ(t.LineCount(), 2u);
}

TEST(Text, TrailingNewlineInvariant) {
  EXPECT_EQ(Text("a\n").LineCount(), 1u);
  EXPECT_EQ(Text("").LineCount(), 1u);
  EXPECT_EQ(Text("\n").LineCount(), 1u);
  EXPECT_EQ(Text("a\n\n").LineCount(), 2u);  // empty middle line counts
  EXPECT_EQ(Text("a").LineCount(), 1u);
  // The invariant holds across incremental edits, not just construction.
  Text t("a");
  t.InsertNoUndo(1, U"\n");
  EXPECT_EQ(t.LineCount(), 1u);
  t.InsertNoUndo(2, U"b");
  EXPECT_EQ(t.LineCount(), 2u);
  t.DeleteNoUndo(2, 1);
  EXPECT_EQ(t.LineCount(), 1u);
}

TEST(Text, LineRangeIncludesNewline) {
  Text t("aa\nbb\ncc");
  Selection s = t.LineRange(2);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "bb\n");
  // Last line has no newline to include.
  s = t.LineRange(3);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "cc");
}

TEST(Text, LineStartClampsPastEnd) {
  Text t("one\ntwo");
  EXPECT_EQ(t.LineStart(99), 4u);  // start of final line
}

// --- Text: expansion -----------------------------------------------------------

TEST(Text, ExpandWordMidWord) {
  Text t("run textinsert now");
  Selection s = t.ExpandWord(8);  // inside "textinsert"
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "textinsert");
}

TEST(Text, ExpandWordIncludesBangAndDots) {
  Text t("x Close! y help.c z");
  Selection s = t.ExpandWord(4);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "Close!");
  s = t.ExpandWord(12);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "help.c");
}

TEST(Text, ExpandWordAtBoundary) {
  Text t("ab cd");
  Selection s = t.ExpandWord(2);  // on the space, touching "ab"
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "ab");
  s = t.ExpandWord(0);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "ab");
}

TEST(Text, ExpandWordOnWhitespaceIsEmpty) {
  Text t("a  b");
  Selection s = t.ExpandWord(2);
  EXPECT_TRUE(s.null());
}

TEST(Text, ExpandFilenameGrabsAddress) {
  Text t("see help.c:27 for details");
  Selection s = t.ExpandFilename(6);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "help.c:27");
}

TEST(Text, ExpandFilenameGrabsFullPath) {
  Text t("at /usr/rob/src/help/dat.h line");
  Selection s = t.ExpandFilename(10);
  EXPECT_EQ(t.Utf8Range(s.q0, s.q1), "/usr/rob/src/help/dat.h");
}

// --- Addresses -----------------------------------------------------------------

TEST(Address, SplitFileAddress) {
  FileAddress fa = SplitFileAddress("help.c:27");
  EXPECT_EQ(fa.file, "help.c");
  EXPECT_EQ(fa.addr, "27");
  fa = SplitFileAddress("plain.c");
  EXPECT_EQ(fa.file, "plain.c");
  EXPECT_EQ(fa.addr, "");
  fa = SplitFileAddress("f:/re/");
  EXPECT_EQ(fa.addr, "/re/");
  fa = SplitFileAddress("f:$");
  EXPECT_EQ(fa.addr, "$");
  fa = SplitFileAddress("f:#12");
  EXPECT_EQ(fa.addr, "#12");
  // A colon not followed by an address lead-in stays in the name.
  fa = SplitFileAddress("weird:name");
  EXPECT_EQ(fa.file, "weird:name");
}

TEST(Address, LineNumber) {
  Text t("aa\nbb\ncc\n");
  auto s = EvalAddress(t, "2");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(t.Utf8Range(s.value().q0, s.value().q1), "bb\n");
}

TEST(Address, CharOffsetAndEnd) {
  Text t("hello");
  auto s = EvalAddress(t, "#3");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{3, 3}));
  s = EvalAddress(t, "$");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{5, 5}));
  s = EvalAddress(t, "#99");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{5, 5}));  // clamped
}

TEST(Address, RegexpAddress) {
  Text t("int n;\nn = 0;\n");
  auto s = EvalAddress(t, "/n = 0/");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(t.Utf8Range(s.value().q0, s.value().q1), "n = 0");
}

TEST(Address, BackwardRegexpAddress) {
  Text t("get(a);\nset(b);\nget(c);\n");
  auto s = EvalAddress(t, "-/get/");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{16, 19}));  // the last "get", not the first
  s = EvalAddress(t, "/get/");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{0, 3}));
  EXPECT_FALSE(EvalAddress(t, "-/nomatch/").ok());
  EXPECT_FALSE(EvalAddress(t, "-//").ok());
}

TEST(Address, SplitBackwardLeadIn) {
  auto fa = SplitFileAddress("f.c:-/main/");
  EXPECT_EQ(fa.file, "f.c");
  EXPECT_EQ(fa.addr, "-/main/");
  // "-" not followed by "/" is not an address lead-in.
  fa = SplitFileAddress("odd:-name");
  EXPECT_EQ(fa.file, "odd:-name");
}

TEST(Address, Range) {
  Text t("aa\nbb\ncc\ndd\n");
  auto s = EvalAddress(t, "2,3");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(t.Utf8Range(s.value().q0, s.value().q1), "bb\ncc\n");
}

TEST(Address, Errors) {
  Text t("abc");
  EXPECT_FALSE(EvalAddress(t, "").ok());
  EXPECT_FALSE(EvalAddress(t, "x").ok());
  EXPECT_FALSE(EvalAddress(t, "1junk").ok());
  EXPECT_FALSE(EvalAddress(t, "/nomatch/").ok());
  EXPECT_FALSE(EvalAddress(t, "0").ok());
}

// Edge-case clamping semantics, locked in so the index rewrite cannot drift.

TEST(Address, ZeroLineIsAnError) {
  Text t("aa\nbb\n");
  auto s = EvalAddress(t, "0");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad line number"), std::string::npos);
}

TEST(Address, LinePastEofClampsToLastLine) {
  // Without a trailing newline the last line has content: select it whole.
  Text t("aa\nbb\ncc");
  auto s = EvalAddress(t, "99");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(t.Utf8Range(s.value().q0, s.value().q1), "cc");
  // With a trailing newline the clamp lands after it: a caret at EOF.
  Text nl("aa\nbb\n");
  s = EvalAddress(nl, "99");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{6, 6}));
}

TEST(Address, DollarIsEndOfBody) {
  Text t("aa\nbb\n");
  auto s = EvalAddress(t, "$");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{6, 6}));
}

TEST(Address, EmptyBody) {
  Text t;
  auto s = EvalAddress(t, "1");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{0, 0}));
  s = EvalAddress(t, "5");  // any line clamps to the single empty line
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{0, 0}));
  s = EvalAddress(t, "$");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), (Selection{0, 0}));
  EXPECT_FALSE(EvalAddress(t, "/x/").ok());
}

// --- Byte-offset views ---------------------------------------------------------

TEST(Text, Utf8BytesTracksEncodedSize) {
  Text t;
  EXPECT_EQ(t.Utf8Bytes(), 0u);
  t.InsertNoUndo(0, U"abc");
  EXPECT_EQ(t.Utf8Bytes(), 3u);
  t.InsertNoUndo(3, RunesFromUtf8("é你😀"));  // 2 + 3 + 4 bytes
  EXPECT_EQ(t.Utf8Bytes(), t.Utf8().size());
  EXPECT_EQ(t.Utf8Bytes(), 12u);
  t.DeleteNoUndo(3, 1);  // é
  EXPECT_EQ(t.Utf8Bytes(), 10u);
}

TEST(Text, Utf8SubstrMatchesFullEncode) {
  Text t("héllo wörld\nsecond line\n");
  std::string full = t.Utf8();
  for (size_t off = 0; off <= full.size() + 1; off++) {
    EXPECT_EQ(t.Utf8Substr(off, 5), off < full.size() ? full.substr(off, 5) : "")
        << "off " << off;
  }
  // A window that splits a multi-byte rune is still byte-exact.
  size_t e_acute = full.find("h") + 1;
  EXPECT_EQ(t.Utf8Substr(e_acute + 1, 3), full.substr(e_acute + 1, 3));
}

// Reassembling a GatherResult (prefix + encoded rune spans + suffix) must be
// byte-identical to Utf8Substr for every window, including ones that split a
// multi-byte rune at either or both edges. This is the zero-copy Rread path's
// correctness core: the server encodes exactly these three pieces.
TEST(Text, GatherUtf8ReassemblesEveryWindow) {
  Text t("naïve 你好 😀 plain ascii tail\nsecond ünicode line\n");
  std::string full = t.Utf8();
  for (size_t off = 0; off <= full.size() + 2; off++) {
    for (size_t count : {0u, 1u, 2u, 3u, 5u, 17u, 4096u}) {
      Text::GatherResult g = t.GatherUtf8(off, count);
      std::string got = g.prefix;
      got += Utf8FromRunes(g.runes);
      got += g.suffix;
      std::string want = off < full.size() ? full.substr(off, count) : "";
      ASSERT_EQ(got, want) << "off " << off << " count " << count;
      ASSERT_EQ(g.bytes, want.size()) << "off " << off << " count " << count;
    }
  }
}

// The borrowed middle really borrows: for a window of whole ASCII runes the
// prefix and suffix are empty and the spans cover exactly count runes.
TEST(Text, GatherUtf8MiddleIsBorrowedSpans) {
  Text t("0123456789");
  Text::GatherResult g = t.GatherUtf8(2, 5);
  EXPECT_TRUE(g.prefix.empty());
  EXPECT_TRUE(g.suffix.empty());
  EXPECT_EQ(g.runes.size(), 5u);
  EXPECT_EQ(g.bytes, 5u);
  EXPECT_EQ(Utf8FromRunes(g.runes), "23456");
}

}  // namespace
}  // namespace help
