// Raw-event state machine: press/move/release streams become selections,
// executions, drags, and the chords of the paper.
#include <gtest/gtest.h>

#include "src/core/events.h"

namespace help {
namespace {

class EventsTest : public ::testing::Test {
 protected:
  EventsTest() : m_(&h_) {
    h_.vfs().WriteFile("/doc", "pick a word and Exit here\n");
    auto w = h_.OpenFile("/doc", "/", nullptr);
    w_ = w.value();
    body_x_ = w_->rect().x0 + 1;  // body text starts right of the scroll bar
    body_y_ = w_->rect().y0 + 1;
  }

  void Press(Button b, int x, int y) {
    m_.Feed({MouseEvent::Kind::kPress, b, {x, y}});
  }
  void Move(int x, int y) {
    m_.Feed({MouseEvent::Kind::kMove, Button::kLeft, {x, y}});
  }
  void Release(Button b, int x, int y) {
    m_.Feed({MouseEvent::Kind::kRelease, b, {x, y}});
  }

  Help h_;
  MouseMachine m_;
  Window* w_ = nullptr;
  int body_x_ = 0;
  int body_y_ = 0;
};

TEST_F(EventsTest, SweepSelects) {
  Press(Button::kLeft, body_x_, body_y_);
  Move(body_x_ + 4, body_y_);
  Release(Button::kLeft, body_x_ + 4, body_y_);
  EXPECT_EQ(w_->body().sel, (Selection{0, 4}));
  EXPECT_EQ(h_.current_sub(), &w_->body());
  EXPECT_FALSE(m_.left_down());
}

TEST_F(EventsTest, ClickMakesNullSelection) {
  Press(Button::kLeft, body_x_ + 2, body_y_);
  Release(Button::kLeft, body_x_ + 2, body_y_);
  EXPECT_TRUE(w_->body().sel.null());
  EXPECT_EQ(w_->body().sel.q0, 2u);
}

TEST_F(EventsTest, MiddleSweepExecutes) {
  // Sweep "Exit" (columns 16..20 of the body) with button 2.
  Press(Button::kMiddle, body_x_ + 16, body_y_);
  Release(Button::kMiddle, body_x_ + 20, body_y_);
  EXPECT_TRUE(h_.exited());
}

TEST_F(EventsTest, MiddleClickExecutesWholeWord) {
  Press(Button::kMiddle, body_x_ + 17, body_y_);  // inside "Exit"
  Release(Button::kMiddle, body_x_ + 17, body_y_);
  EXPECT_TRUE(h_.exited());
}

TEST_F(EventsTest, ChordCutWhileLeftHeld) {
  Press(Button::kLeft, body_x_, body_y_);
  Move(body_x_ + 4, body_y_);
  // Middle click while left is still down: Cut the swept selection.
  Press(Button::kMiddle, body_x_ + 4, body_y_);
  Release(Button::kMiddle, body_x_ + 4, body_y_);
  Release(Button::kLeft, body_x_ + 4, body_y_);
  EXPECT_EQ(h_.snarf(), "pick");
  EXPECT_EQ(w_->body().text->Utf8().substr(0, 3), " a ");
}

TEST_F(EventsTest, ChordPasteWhileLeftHeld) {
  h_.set_snarf("REPLACEMENT");
  Press(Button::kLeft, body_x_, body_y_);
  Move(body_x_ + 4, body_y_);
  Press(Button::kRight, body_x_ + 4, body_y_);
  Release(Button::kRight, body_x_ + 4, body_y_);
  Release(Button::kLeft, body_x_ + 4, body_y_);
  EXPECT_EQ(w_->body().text->Utf8().substr(0, 11), "REPLACEMENT");
}

TEST_F(EventsTest, ChordCutThenPasteIsSnarf) {
  // "remember the text in the cut buffer for later pasting" — no net edit.
  std::string before = w_->body().text->Utf8();
  Press(Button::kLeft, body_x_, body_y_);
  Move(body_x_ + 4, body_y_);
  Press(Button::kMiddle, body_x_ + 4, body_y_);
  Release(Button::kMiddle, body_x_ + 4, body_y_);
  Press(Button::kRight, body_x_ + 4, body_y_);
  Release(Button::kRight, body_x_ + 4, body_y_);
  Release(Button::kLeft, body_x_ + 4, body_y_);
  EXPECT_EQ(w_->body().text->Utf8(), before);
  EXPECT_EQ(h_.snarf(), "pick");
}

TEST_F(EventsTest, ChordSuppressesThePlainSelectRelease) {
  // After a chord, releasing B1 must not re-select (which would clobber the
  // caret position the chord left behind).
  Press(Button::kLeft, body_x_, body_y_);
  Move(body_x_ + 4, body_y_);
  Press(Button::kMiddle, body_x_ + 4, body_y_);
  Release(Button::kMiddle, body_x_ + 4, body_y_);
  Selection after_cut = w_->body().sel;
  Release(Button::kLeft, body_x_ + 9, body_y_);  // pointer drifted
  EXPECT_EQ(w_->body().sel, after_cut);
}

TEST_F(EventsTest, RightDragMovesWindow) {
  h_.vfs().WriteFile("/doc2", "second\n");
  auto w2 = h_.OpenFile("/doc2", "/", nullptr);
  // Grab w2 by its tag and drag it to the right column.
  Point tag{w2.value()->rect().x0 + 2, w2.value()->rect().y0};
  int right_col_x = h_.page().col(1).ContentRect().x0 + 2;
  Press(Button::kRight, tag.x, tag.y);
  Move(right_col_x, 10);
  Release(Button::kRight, right_col_x, 10);
  EXPECT_EQ(h_.page().ColumnOf(w2.value()), 1);
}

TEST_F(EventsTest, KeyFeedsTyping) {
  Press(Button::kLeft, body_x_, body_y_);
  Release(Button::kLeft, body_x_, body_y_);
  m_.Key('X');
  m_.Key('\n');
  EXPECT_EQ(w_->body().text->Utf8().substr(0, 2), "X\n");
  EXPECT_EQ(h_.counters().keystrokes, 2);
}

}  // namespace
}  // namespace help
