// Property test for PR 9's ordering model (DESIGN.md §16): randomized mixes
// of pipelined reads and mutation barriers over a real socket, checked
// against a byte-exact oracle. The invariant under test: a read's Rread
// payload equals the body as of the last mutation barrier that preceded it
// in arrival order — no matter how the scheduler interleaves completions.
//
// Two phases:
//   1. Client-level: ReadFidPipelined batches between AppendFile barriers.
//   2. Wire-level: hand-built bursts of [reads][Twrite][reads] in ONE send,
//      where the pre-write reads must see the pre-write body and the
//      post-write reads the post-write body, replies matched by tag.
#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"

namespace help {
namespace {

std::string SockPath(const char* name) {
  return StrFormat("%s.%d.sock", name, getpid());
}

// Deterministic chunk content mixing ASCII with multi-byte runes so gathered
// windows straddle rune boundaries in both directions.
std::string Chunk(std::mt19937& rng, int round) {
  static const char* kRunes[] = {"a", "b", "ö", "—", "你", "😀", "\n"};
  std::uniform_int_distribution<int> pick(0, 6);
  std::uniform_int_distribution<int> len(8, 64);
  std::string out = StrFormat("[r%03d]", round);
  int n = len(rng);
  for (int i = 0; i < n; i++) {
    out += kRunes[pick(rng)];
  }
  out += '\n';
  return out;
}

std::string RecvFrame(int fd) {
  auto hdr = ReadFull(fd, 4);
  if (!hdr.ok()) {
    return {};
  }
  uint32_t size = 0;
  for (int i = 3; i >= 0; i--) {
    size = size << 8 | static_cast<uint8_t>(hdr.value()[i]);
  }
  if (size < kMinFrameSize || size > kMaxFrameSize) {
    return {};
  }
  auto rest = ReadFull(fd, size - 4);
  if (!rest.ok()) {
    return {};
  }
  return hdr.value() + rest.value();
}

Result<Fcall> RawRpc(int fd, const Fcall& t) {
  auto w = WriteFull(fd, EncodeFcall(t));
  if (!w.ok()) {
    return w;
  }
  return DecodeFcall(RecvFrame(fd));
}

// Phase 1: pipelined read batches between client-level mutation barriers.
TEST(NinepPipelineProperty, PipelinedReadsMatchOracleAcrossBarriers) {
  Help::Options hopt;
  hopt.install_userland = false;
  Help h(hopt);
  NinepServer& srv = h.ninep();
  ListenerOptions lopt;
  lopt.workers = 4;
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("prop1");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok());
  NinepClient client(tr.value()->AsTransport());
  client.set_pipe_io(tr.value()->AsPipeIo());
  ASSERT_TRUE(client.Connect("prop").ok());

  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  auto fid = client.WalkFid(base + "/body");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(client.OpenFid(fid.value(), kOread).ok());

  std::mt19937 rng(0x9F);  // fixed seed: failures must reproduce
  std::string mirror;
  for (int round = 0; round < 60; round++) {
    // Mutation barrier: append a chunk, advancing the oracle.
    std::string chunk = Chunk(rng, round);
    ASSERT_TRUE(client.WriteFile(base + "/bodyapp", chunk).ok());
    mirror += chunk;

    // A batch of random reads, pipelined with out-of-order completion
    // allowed server-side. Every byte must match the post-barrier oracle.
    std::uniform_int_distribution<uint64_t> offd(0, mirror.size());
    std::uniform_int_distribution<uint32_t> cntd(1, 512);
    std::vector<NinepClient::ReadRange> ranges;
    for (int i = 0; i < 12; i++) {
      ranges.push_back({offd(rng), cntd(rng)});
    }
    auto got = client.ReadFidPipelined(fid.value(), ranges, /*window=*/8);
    ASSERT_TRUE(got.ok()) << "round " << round << ": "
                          << got.status().message();
    ASSERT_EQ(got.value().size(), ranges.size());
    for (size_t i = 0; i < ranges.size(); i++) {
      ASSERT_EQ(got.value()[i],
                mirror.substr(ranges[i].offset, ranges[i].count))
          << "round " << round << " range " << i << " off "
          << ranges[i].offset << " count " << ranges[i].count;
    }
  }
  EXPECT_GT(srv.metrics().bytes_zero_copy(), 0u);
  lis.Stop();
  ::unlink(path.c_str());
}

// Phase 2: reads and a write pipelined in ONE wire burst. Reads that arrive
// before the Twrite must see the pre-write body; reads after it, the
// post-write body. Replies are matched by tag, so completion order is free.
TEST(NinepPipelineProperty, WireBurstsRespectMutationBarriers) {
  Help::Options hopt;
  hopt.install_userland = false;
  Help h(hopt);
  NinepServer& srv = h.ninep();
  ListenerOptions lopt;
  lopt.workers = 4;
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("prop2");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto fd = DialUnix(path);
  ASSERT_TRUE(fd.ok());
  Fcall tv;
  tv.type = MsgType::kTversion;
  tv.tag = kNoTag;
  tv.msize = kDefaultMsize;
  tv.version = "9P.help";
  ASSERT_TRUE(RawRpc(fd.value(), tv).ok());
  Fcall ta;
  ta.type = MsgType::kTattach;
  ta.tag = 1;
  ta.fid = 0;
  ta.uname = "prop2";
  ASSERT_TRUE(RawRpc(fd.value(), ta).ok());

  // Create a window via new/ctl and learn its id.
  uint32_t ctlfid = 1;
  Fcall tw;
  tw.type = MsgType::kTwalk;
  tw.tag = 2;
  tw.fid = 0;
  tw.newfid = ctlfid;
  tw.wname = {"mnt", "help", "new", "ctl"};
  ASSERT_EQ(RawRpc(fd.value(), tw).value().wqid.size(), 4u);
  Fcall to;
  to.type = MsgType::kTopen;
  to.tag = 2;
  to.fid = ctlfid;
  to.mode = kOread;
  ASSERT_EQ(RawRpc(fd.value(), to).value().type, MsgType::kRopen);
  Fcall trd;
  trd.type = MsgType::kTread;
  trd.tag = 2;
  trd.fid = ctlfid;
  trd.offset = 0;
  trd.count = 64;
  auto rid = RawRpc(fd.value(), trd);
  ASSERT_TRUE(rid.ok());
  std::string wid(TrimSpace(rid.value().data));
  ASSERT_FALSE(wid.empty());

  auto open_fid = [&](const std::string& leaf, uint32_t newfid,
                      uint8_t mode) {
    Fcall w;
    w.type = MsgType::kTwalk;
    w.tag = 2;
    w.fid = 0;
    w.newfid = newfid;
    w.wname = {"mnt", "help", wid, leaf};
    ASSERT_EQ(RawRpc(fd.value(), w).value().wqid.size(), 4u) << leaf;
    Fcall o;
    o.type = MsgType::kTopen;
    o.tag = 2;
    o.fid = newfid;
    o.mode = mode;
    ASSERT_EQ(RawRpc(fd.value(), o).value().type, MsgType::kRopen) << leaf;
  };
  uint32_t body = 3, app = 4;
  open_fid("body", body, kOread);
  open_fid("bodyapp", app, kOwrite);

  std::mt19937 rng(0x9F2);
  std::string mirror;
  for (int round = 0; round < 40; round++) {
    std::string chunk = Chunk(rng, round);
    std::string next = mirror + chunk;

    // Build one burst: pre-write reads, the write, post-write reads.
    std::map<uint16_t, std::string> expect;  // tag -> exact Rread payload
    std::string burst;
    uint16_t tag = 10;
    auto add_read = [&](const std::string& oracle) {
      std::uniform_int_distribution<uint64_t> offd(0, oracle.size());
      std::uniform_int_distribution<uint32_t> cntd(1, 256);
      Fcall t;
      t.type = MsgType::kTread;
      t.tag = tag++;
      t.fid = body;
      t.offset = offd(rng);
      t.count = cntd(rng);
      expect[t.tag] = oracle.substr(t.offset, t.count);
      burst += EncodeFcall(t);
    };
    std::uniform_int_distribution<int> nd(1, 5);
    int pre = nd(rng), post = nd(rng);
    for (int i = 0; i < pre; i++) {
      add_read(mirror);
    }
    Fcall w;
    w.type = MsgType::kTwrite;
    w.tag = tag++;
    w.fid = app;
    w.offset = 0;
    w.data = chunk;
    uint16_t wtag = w.tag;
    burst += EncodeFcall(w);
    for (int i = 0; i < post; i++) {
      add_read(next);
    }
    ASSERT_TRUE(WriteFull(fd.value(), burst).ok());

    for (int i = 0; i < pre + post + 1; i++) {
      auto r = DecodeFcall(RecvFrame(fd.value()));
      ASSERT_TRUE(r.ok()) << "round " << round;
      if (r.value().tag == wtag) {
        ASSERT_EQ(r.value().type, MsgType::kRwrite) << r.value().ename;
        continue;
      }
      ASSERT_EQ(r.value().type, MsgType::kRread)
          << "round " << round << " tag " << r.value().tag << ": "
          << r.value().ename;
      auto it = expect.find(r.value().tag);
      ASSERT_NE(it, expect.end()) << "unexpected tag " << r.value().tag;
      ASSERT_EQ(r.value().data, it->second)
          << "round " << round << " tag " << r.value().tag;
      expect.erase(it);
    }
    ASSERT_TRUE(expect.empty());
    mirror = std::move(next);
  }
  close(fd.value());
  lis.Stop();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace help
