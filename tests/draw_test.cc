// Screen and Frame tests: layout, wrapping, tabs, the point<->offset maps,
// and selection drawing.
#include <gtest/gtest.h>

#include "src/draw/frame.h"
#include "src/draw/screen.h"

namespace help {
namespace {

TEST(Rect, Geometry) {
  Rect r{2, 3, 10, 8};
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.height(), 5);
  EXPECT_TRUE(r.Contains({2, 3}));
  EXPECT_FALSE(r.Contains({10, 3}));
  EXPECT_TRUE((Rect{0, 0, 0, 0}).empty());
  Rect i = r.Intersect({5, 0, 20, 5});
  EXPECT_EQ(i, (Rect{5, 3, 10, 5}));
  EXPECT_TRUE(r.Intersect({100, 100, 101, 101}).empty());
}

TEST(Screen, FillAndRender) {
  Screen s(10, 3);
  s.Fill({0, 0, 10, 3}, '.', Style::kNormal);
  s.DrawRunes(2, 1, U"abc", Style::kNormal, s.bounds());
  EXPECT_EQ(s.Row(1), "..abc.....");
  std::string r = s.Render();
  EXPECT_EQ(r, "..........\n..abc.....\n..........\n");
}

TEST(Screen, DrawClips) {
  Screen s(5, 2);
  int drawn = s.DrawRunes(3, 0, U"abcdef", Style::kNormal, s.bounds());
  EXPECT_EQ(drawn, 2);
  EXPECT_EQ(s.Row(0), "   ab");
  EXPECT_EQ(s.DrawRunes(0, 5, U"x", Style::kNormal, s.bounds()), 0);
}

TEST(Screen, AnnotatedRenderMarksStyles) {
  Screen s(6, 1);
  s.DrawRunes(0, 0, U"ab", Style::kNormal, s.bounds());
  s.DrawRunes(2, 0, U"cd", Style::kReverse, s.bounds());
  s.DrawRunes(4, 0, U"ef", Style::kOutline, s.bounds());
  std::string r = s.RenderAnnotated();
  EXPECT_NE(r.find("\xC2\xAB"), std::string::npos);      // «
  EXPECT_NE(r.find("\xE2\x80\xB9"), std::string::npos);  // ‹
}

class FrameTest : public ::testing::Test {
 protected:
  Frame f_;
};

TEST_F(FrameTest, SimpleLayout) {
  Text t("one\ntwo\nthree");
  f_.SetRect({0, 0, 10, 5});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.origin(), 0u);
  EXPECT_EQ(f_.end(), t.size());
  EXPECT_EQ(f_.lines_used(), 3);
}

TEST_F(FrameTest, WrapsLongLines) {
  Text t("abcdefghij");  // width 4 -> 3 rows
  f_.SetRect({0, 0, 4, 5});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.lines_used(), 3);
  EXPECT_EQ(f_.PointToOffset({0, 1}), 4u);
  EXPECT_EQ(f_.PointToOffset({1, 2}), 9u);
}

TEST_F(FrameTest, StopsAtHeight) {
  Text t("a\nb\nc\nd\ne\nf\n");
  f_.SetRect({0, 0, 10, 3});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.lines_used(), 3);
  EXPECT_EQ(f_.end(), 6u);  // "a\nb\nc\n"
  EXPECT_FALSE(f_.Visible(7));
  EXPECT_TRUE(f_.Visible(2));
}

TEST_F(FrameTest, TabsExpandToStops) {
  Text t("\tx");
  f_.SetRect({0, 0, 20, 2});
  f_.Fill(t, 0);
  auto p = f_.OffsetToPoint(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->x, kTabStop);
}

TEST_F(FrameTest, OriginOffsetsLayout) {
  Text t("0123\n5678\nabcd");
  f_.SetRect({0, 0, 10, 2});
  f_.Fill(t, 5);
  EXPECT_EQ(f_.origin(), 5u);
  EXPECT_EQ(f_.PointToOffset({0, 0}), 5u);
  EXPECT_EQ(f_.PointToOffset({2, 1}), 12u);
}

TEST_F(FrameTest, PointPastLineEndMapsToNewline) {
  Text t("ab\nlonger line");
  f_.SetRect({0, 0, 20, 3});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.PointToOffset({10, 0}), 2u);  // the newline after "ab"
}

TEST_F(FrameTest, PointBelowTextMapsToEnd) {
  Text t("ab");
  f_.SetRect({0, 0, 10, 4});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.PointToOffset({5, 3}), 2u);
}

TEST_F(FrameTest, AbsoluteCoordinates) {
  Text t("hello");
  f_.SetRect({7, 3, 20, 6});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.PointToOffset({9, 3}), 2u);
  auto p = f_.OffsetToPoint(2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Point{9, 3}));
}

// Property: for every visible offset, OffsetToPoint∘PointToOffset is identity.
class FrameRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FrameRoundTrip, PointOffsetInverse) {
  uint32_t seed = static_cast<uint32_t>(GetParam()) * 40503u;
  auto next = [&seed] {
    seed = seed * 1664525 + 1013904223;
    return seed >> 10;
  };
  std::string content;
  for (int i = 0; i < 300; i++) {
    int c = static_cast<int>(next() % 12);
    if (c == 0) {
      content += '\n';
    } else if (c == 1) {
      content += '\t';
    } else {
      content += static_cast<char>('a' + c);
    }
  }
  Text t(content);
  Frame f;
  f.SetRect({3, 2, 3 + 17, 2 + 9});
  f.Fill(t, next() % 50);
  for (size_t off = f.origin(); off < f.end(); off++) {
    auto p = f.OffsetToPoint(off);
    ASSERT_TRUE(p.has_value()) << off;
    EXPECT_EQ(f.PointToOffset(*p), off) << "at offset " << off;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameRoundTrip, ::testing::Range(1, 13));

TEST_F(FrameTest, DrawSelectionStyles) {
  Text t("select me");
  f_.SetRect({0, 0, 12, 2});
  f_.Fill(t, 0);
  Screen s(12, 2);
  f_.Draw(&s, {0, 6}, /*current=*/true, Style::kNormal);
  EXPECT_EQ(s.At(0, 0).style, Style::kReverse);
  EXPECT_EQ(s.At(5, 0).style, Style::kReverse);
  EXPECT_EQ(s.At(6, 0).style, Style::kNormal);
  // Non-current: outline.
  f_.Draw(&s, {0, 6}, /*current=*/false, Style::kNormal);
  EXPECT_EQ(s.At(0, 0).style, Style::kOutline);
}

TEST_F(FrameTest, DrawCaretForNullSelection) {
  Text t("abc");
  f_.SetRect({0, 0, 6, 1});
  f_.Fill(t, 0);
  Screen s(6, 1);
  f_.Draw(&s, {1, 1}, /*current=*/true, Style::kNormal);
  EXPECT_EQ(s.At(1, 0).style, Style::kCaret);
}

TEST_F(FrameTest, DrawExecUnderline) {
  Text t("run uses now");
  f_.SetRect({0, 0, 15, 1});
  f_.Fill(t, 0);
  Screen s(15, 1);
  Selection exec{4, 8};
  f_.Draw(&s, {0, 0}, true, Style::kNormal, &exec);
  EXPECT_EQ(s.At(4, 0).style, Style::kExec);
  EXPECT_EQ(s.At(7, 0).style, Style::kExec);
  EXPECT_EQ(s.At(8, 0).style, Style::kNormal);
}

TEST_F(FrameTest, EmptyRect) {
  Text t("anything");
  f_.SetRect({0, 0, 0, 0});
  f_.Fill(t, 0);
  EXPECT_EQ(f_.lines_used(), 0);
  EXPECT_EQ(f_.end(), f_.origin());
}

}  // namespace
}  // namespace help
