// Protocol tests: codec round-trips, server dispatch, client conveniences.
#include <gtest/gtest.h>

#include "src/fs/server.h"

namespace help {
namespace {

Fcall RoundTrip(const Fcall& f) {
  auto decoded = DecodeFcall(EncodeFcall(f));
  EXPECT_TRUE(decoded.ok()) << decoded.message();
  return decoded.ok() ? decoded.value() : Fcall{};
}

TEST(NinepCodec, VersionRoundTrip) {
  Fcall f;
  f.type = MsgType::kTversion;
  f.tag = kNoTag;
  f.msize = 8192;
  f.version = "9P.help";
  Fcall g = RoundTrip(f);
  EXPECT_EQ(g.type, MsgType::kTversion);
  EXPECT_EQ(g.msize, 8192u);
  EXPECT_EQ(g.version, "9P.help");
}

TEST(NinepCodec, WalkRoundTrip) {
  Fcall f;
  f.type = MsgType::kTwalk;
  f.tag = 7;
  f.fid = 1;
  f.newfid = 2;
  f.wname = {"mnt", "help", "3", "body"};
  Fcall g = RoundTrip(f);
  EXPECT_EQ(g.wname, f.wname);
  EXPECT_EQ(g.newfid, 2u);
}

TEST(NinepCodec, RwalkQids) {
  Fcall f;
  f.type = MsgType::kRwalk;
  f.tag = 3;
  f.wqid = {{11, 2, true}, {12, 0, false}};
  Fcall g = RoundTrip(f);
  ASSERT_EQ(g.wqid.size(), 2u);
  EXPECT_TRUE(g.wqid[0].dir);
  EXPECT_EQ(g.wqid[1].path, 12u);
}

TEST(NinepCodec, ReadWriteWithBinaryData) {
  Fcall f;
  f.type = MsgType::kTwrite;
  f.tag = 1;
  f.fid = 9;
  f.offset = 0xDEADBEEFull << 8;
  f.data = std::string("\x00\x01\xFFhello", 8);
  Fcall g = RoundTrip(f);
  EXPECT_EQ(g.offset, f.offset);
  EXPECT_EQ(g.data, f.data);
}

TEST(NinepCodec, FlushRoundTrip) {
  Fcall f;
  f.type = MsgType::kTflush;
  f.tag = 9;
  f.oldtag = 4;
  Fcall g = RoundTrip(f);
  EXPECT_EQ(g.type, MsgType::kTflush);
  EXPECT_EQ(g.oldtag, 4u);
  Fcall r;
  r.type = MsgType::kRflush;
  r.tag = 9;
  EXPECT_EQ(RoundTrip(r).type, MsgType::kRflush);
}

TEST(NinepCodec, ErrorString) {
  Fcall f;
  f.type = MsgType::kRerror;
  f.tag = 5;
  f.ename = "file does not exist";
  EXPECT_EQ(RoundTrip(f).ename, "file does not exist");
}

TEST(NinepCodec, StatRoundTrip) {
  Fcall f;
  f.type = MsgType::kRstat;
  f.tag = 2;
  f.stat.name = "body";
  f.stat.length = 4242;
  f.stat.mtime = 671803200;
  f.stat.dir = false;
  f.stat.qid = {99, 1, false};
  Fcall g = RoundTrip(f);
  EXPECT_EQ(g.stat.name, "body");
  EXPECT_EQ(g.stat.length, 4242u);
  EXPECT_EQ(g.stat.qid.path, 99u);
}

TEST(NinepCodec, RejectsTruncatedAndOversized) {
  Fcall f;
  f.type = MsgType::kTversion;
  f.version = "x";
  std::string bytes = EncodeFcall(f);
  EXPECT_FALSE(DecodeFcall(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(DecodeFcall(bytes + "extra").ok());
  EXPECT_FALSE(DecodeFcall("").ok());
}

TEST(NinepCodec, DirEntries) {
  std::string blob = EncodeDirEntry({"dat.h", {5, 0, false}, 1500, 100, false}) +
                     EncodeDirEntry({"sub", {6, 1, true}, 0, 101, true});
  auto entries = DecodeDirEntries(blob);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  EXPECT_EQ(entries.value()[0].name, "dat.h");
  EXPECT_TRUE(entries.value()[1].dir);
}

// --- Server + client over the byte transport -----------------------------------

class NinepSession : public ::testing::Test {
 protected:
  NinepSession() : server_(&vfs_), client_(server_.Transport()) {
    vfs_.MkdirAll("/usr/rob");
    vfs_.WriteFile("/usr/rob/x", "contents of x");
    EXPECT_TRUE(client_.Connect().ok());
  }
  Vfs vfs_;
  NinepServer server_;
  NinepClient client_;
};

TEST_F(NinepSession, ReadFile) {
  auto data = client_.ReadFile("/usr/rob/x");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "contents of x");
}

TEST_F(NinepSession, ReadMissingFileFails) {
  EXPECT_FALSE(client_.ReadFile("/usr/rob/ghost").ok());
}

TEST_F(NinepSession, WriteThenReadBack) {
  ASSERT_TRUE(client_.WriteFile("/usr/rob/new", "written over 9P").ok());
  EXPECT_EQ(vfs_.ReadFile("/usr/rob/new").value(), "written over 9P");
  EXPECT_EQ(client_.ReadFile("/usr/rob/new").value(), "written over 9P");
}

TEST_F(NinepSession, AppendFile) {
  ASSERT_TRUE(client_.AppendFile("/usr/rob/x", " + more").ok());
  EXPECT_EQ(vfs_.ReadFile("/usr/rob/x").value(), "contents of x + more");
}

TEST_F(NinepSession, CreateAndRemove) {
  ASSERT_TRUE(client_.Create("/usr/rob/dir", true).ok());
  EXPECT_TRUE(vfs_.Walk("/usr/rob/dir").value()->dir());
  ASSERT_TRUE(client_.Create("/usr/rob/dir/f", false).ok());
  ASSERT_TRUE(client_.Remove("/usr/rob/dir/f").ok());
  EXPECT_FALSE(vfs_.Walk("/usr/rob/dir/f").ok());
}

TEST_F(NinepSession, ReadDir) {
  vfs_.WriteFile("/usr/rob/y", "");
  auto entries = client_.ReadDir("/usr/rob");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  EXPECT_EQ(entries.value()[0].name, "x");
  EXPECT_EQ(entries.value()[1].name, "y");
}

TEST_F(NinepSession, Stat) {
  auto st = client_.Stat("/usr/rob/x");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().length, 13u);
  EXPECT_FALSE(st.value().dir);
}

TEST_F(NinepSession, LargeFileChunkedTransfer) {
  std::string big(300 * 1024, 'z');
  ASSERT_TRUE(client_.WriteFile("/usr/rob/big", big).ok());
  auto data = client_.ReadFile("/usr/rob/big");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().size(), big.size());
  EXPECT_EQ(data.value(), big);
}

TEST_F(NinepSession, FidsAreClunked) {
  size_t before = server_.open_fids();
  client_.ReadFile("/usr/rob/x").ok();
  client_.ReadDir("/usr/rob").ok();
  client_.Stat("/usr/rob/x").ok();
  EXPECT_EQ(server_.open_fids(), before);  // no fid leaks
}

TEST_F(NinepSession, PartialWalkFails) {
  auto fid = client_.WalkFid("/usr/rob/nodir/deeper");
  EXPECT_FALSE(fid.ok());
}

TEST_F(NinepSession, ErrorsCarryPlan9Text) {
  auto data = client_.ReadFile("/ghost");
  ASSERT_FALSE(data.ok());
  EXPECT_NE(data.message().find("does not exist"), std::string::npos);
}

// --- Protocol edge cases, each against its own session ------------------------

class NinepEdgeCases : public ::testing::Test {
 protected:
  NinepEdgeCases() : server_(&vfs_) {
    vfs_.MkdirAll("/usr/rob");
    vfs_.WriteFile("/usr/rob/x", "contents of x");
    sid_ = server_.OpenSession();
  }

  // Raw structured round trip through the byte path on this session.
  Fcall Send(const Fcall& t) {
    auto r = DecodeFcall(server_.HandleBytes(sid_, EncodeFcall(t)));
    EXPECT_TRUE(r.ok()) << r.message();
    return r.ok() ? r.value() : Fcall{};
  }

  void Attach() {
    Fcall tv;
    tv.type = MsgType::kTversion;
    tv.msize = kDefaultMsize;
    tv.version = "9P.help";
    EXPECT_EQ(Send(tv).type, MsgType::kRversion);
    Fcall ta;
    ta.type = MsgType::kTattach;
    ta.tag = 1;
    ta.fid = 0;
    ta.uname = "edge";
    EXPECT_EQ(Send(ta).type, MsgType::kRattach);
  }

  Fcall Walk(uint32_t fid, uint32_t newfid, std::vector<std::string> names,
             uint16_t tag = 2) {
    Fcall t;
    t.type = MsgType::kTwalk;
    t.tag = tag;
    t.fid = fid;
    t.newfid = newfid;
    t.wname = std::move(names);
    return Send(t);
  }

  Vfs vfs_;
  NinepServer server_;
  NinepServer::SessionId sid_ = 0;
};

TEST_F(NinepEdgeCases, ZeroElementWalkClonesFid) {
  Attach();
  Fcall r = Walk(0, 7, {});
  ASSERT_EQ(r.type, MsgType::kRwalk);
  EXPECT_TRUE(r.wqid.empty());
  EXPECT_EQ(server_.open_fids(sid_), 2u);  // root fid + its clone
  // The clone is usable: stat it and get the root directory back.
  Fcall ts;
  ts.type = MsgType::kTstat;
  ts.tag = 3;
  ts.fid = 7;
  Fcall rs = Send(ts);
  ASSERT_EQ(rs.type, MsgType::kRstat);
  EXPECT_TRUE(rs.stat.dir);
}

TEST_F(NinepEdgeCases, WalkToMissingComponentIsRerror) {
  Attach();
  Fcall r = Walk(0, 7, {"usr", "rob", "ghost"});
  // The first component resolves, so this is a partial walk: Rwalk with
  // fewer qids than names, and no new fid.
  ASSERT_EQ(r.type, MsgType::kRwalk);
  EXPECT_EQ(r.wqid.size(), 2u);
  EXPECT_EQ(server_.open_fids(sid_), 1u);
  // A walk whose *first* element fails is a flat Rerror.
  Fcall r2 = Walk(0, 8, {"nonesuch"});
  ASSERT_EQ(r2.type, MsgType::kRerror);
  EXPECT_NE(r2.ename.find("does not exist"), std::string::npos);
}

TEST_F(NinepEdgeCases, ReadPastEofReturnsEmptyRread) {
  Attach();
  ASSERT_EQ(Walk(0, 1, {"usr", "rob", "x"}).type, MsgType::kRwalk);
  Fcall to;
  to.type = MsgType::kTopen;
  to.tag = 3;
  to.fid = 1;
  to.mode = kOread;
  ASSERT_EQ(Send(to).type, MsgType::kRopen);
  Fcall tr;
  tr.type = MsgType::kTread;
  tr.tag = 4;
  tr.fid = 1;
  tr.offset = 1 << 20;  // far past EOF
  tr.count = 512;
  Fcall r = Send(tr);
  ASSERT_EQ(r.type, MsgType::kRread);
  EXPECT_TRUE(r.data.empty());
}

TEST_F(NinepEdgeCases, WriteToReadOnlyOpenIsRerror) {
  Attach();
  ASSERT_EQ(Walk(0, 1, {"usr", "rob", "x"}).type, MsgType::kRwalk);
  Fcall to;
  to.type = MsgType::kTopen;
  to.tag = 3;
  to.fid = 1;
  to.mode = kOread;
  ASSERT_EQ(Send(to).type, MsgType::kRopen);
  Fcall tw;
  tw.type = MsgType::kTwrite;
  tw.tag = 4;
  tw.fid = 1;
  tw.offset = 0;
  tw.data = "scribble";
  Fcall r = Send(tw);
  ASSERT_EQ(r.type, MsgType::kRerror);
  EXPECT_NE(r.ename.find("permission denied"), std::string::npos);
  // The file is untouched.
  EXPECT_EQ(vfs_.ReadFile("/usr/rob/x").value(), "contents of x");
}

TEST_F(NinepEdgeCases, ClunkOfUnknownFidIsRerror) {
  Attach();
  Fcall tc;
  tc.type = MsgType::kTclunk;
  tc.tag = 2;
  tc.fid = 4242;
  Fcall r = Send(tc);
  ASSERT_EQ(r.type, MsgType::kRerror);
  EXPECT_EQ(r.ename, "unknown fid");
  // Double clunk: the second one errors too.
  ASSERT_EQ(Walk(0, 1, {"usr"}).type, MsgType::kRwalk);
  tc.fid = 1;
  tc.tag = 3;
  EXPECT_EQ(Send(tc).type, MsgType::kRclunk);
  tc.tag = 4;
  EXPECT_EQ(Send(tc).type, MsgType::kRerror);
}

TEST(NinepServer, DispatchRejectsUnknownFid) {
  Vfs vfs;
  NinepServer server(&vfs);
  Fcall t;
  t.type = MsgType::kTread;
  t.tag = 1;
  t.fid = 999;
  Fcall r = server.Dispatch(t);
  EXPECT_EQ(r.type, MsgType::kRerror);
}

TEST(NinepServer, VersionResetsSession) {
  Vfs vfs;
  NinepServer server(&vfs);
  NinepClient client(server.Transport());
  ASSERT_TRUE(client.Connect().ok());
  auto fid = client.WalkFid("/");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(client.Connect().ok());  // re-version
  EXPECT_EQ(server.open_fids(), 1u);   // only the fresh root attach
}

TEST(NinepServer, GarbageBytesYieldRerror) {
  Vfs vfs;
  NinepServer server(&vfs);
  std::string reply = server.HandleBytes("garbage");
  auto r = DecodeFcall(reply);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().type, MsgType::kRerror);
}

TEST(NinepClientTag, RejectsRepliesWithTagsNeverIssued) {
  // A transport that answers every request with a *valid* R-message carrying
  // a tag the client never sent — what a confused or malicious socket peer
  // could do. The client must reject it rather than hand one request
  // another's data; the in-process transport makes this unreachable, the
  // wire makes it routine.
  Vfs vfs;
  NinepServer server(&vfs);
  auto real = server.Transport();
  int calls = 0;
  NinepClient client([&](std::string_view packet) {
    std::string reply = real(packet);
    if (++calls <= 2) {
      return reply;  // let version + attach through untouched
    }
    auto r = DecodeFcall(reply);
    EXPECT_TRUE(r.ok());
    Fcall forged = r.value();
    forged.tag = static_cast<uint16_t>(forged.tag + 1000);  // never issued
    return EncodeFcall(forged);
  });
  ASSERT_TRUE(client.Connect().ok());
  auto fid = client.WalkFid("/");
  ASSERT_FALSE(fid.ok());
  EXPECT_NE(fid.message().find("never issued"), std::string::npos) << fid.message();
}

}  // namespace
}  // namespace help
