// Window-manager tests: the placement heuristic (the paper's three rules),
// drag/drop rearrangement, tab reveal, and tiling invariants.
#include <gtest/gtest.h>

#include <memory>

#include "src/wm/wm.h"

namespace help {
namespace {

std::shared_ptr<Text> T(std::string_view s) { return std::make_shared<Text>(s); }

// Invariant check: visible windows in a column are disjoint, in-bounds, and
// every visible window keeps at least its tag row.
void CheckColumnInvariants(const Column& col) {
  Rect content = col.ContentRect();
  std::vector<const Window*> visible;
  for (const Window* w : col.windows()) {
    if (w->hidden()) {
      continue;
    }
    visible.push_back(w);
    EXPECT_GE(w->rect().y0, content.y0);
    EXPECT_LE(w->rect().y1, content.y1);
    EXPECT_GE(w->rect().height(), 1) << "window lost its tag";
    EXPECT_EQ(w->rect().x0, content.x0);
    EXPECT_EQ(w->rect().x1, content.x1);
  }
  for (size_t i = 0; i < visible.size(); i++) {
    for (size_t j = i + 1; j < visible.size(); j++) {
      Rect a = visible[i]->rect();
      Rect b = visible[j]->rect();
      EXPECT_TRUE(a.y1 <= b.y0 || b.y1 <= a.y0)
          << "overlap between windows " << visible[i]->id() << " and "
          << visible[j]->id();
    }
  }
}

class WmTest : public ::testing::Test {
 protected:
  WmTest() : page_(80, 40, 2) {}

  Window* Create(std::string_view body, int col = 0) {
    return page_.Create(next_id_++, T("tag Close!"), T(body), col);
  }

  Page page_;
  int next_id_ = 1;
};

TEST_F(WmTest, FirstWindowFillsColumn) {
  Window* w = Create("hello\n");
  Rect content = page_.col(0).ContentRect();
  EXPECT_EQ(w->rect(), content);
}

TEST_F(WmTest, Rule1PlacesBelowLowestVisibleText) {
  Window* a = Create("one\ntwo\nthree\n");
  Window* b = Create("next\n");
  // a shows 1 tag row + 3 text rows from the column top.
  EXPECT_EQ(b->rect().y0, a->rect().y0 + 4);
  EXPECT_EQ(a->rect().y1, b->rect().y0);  // a was truncated to its used space
  EXPECT_EQ(b->rect().y1, page_.col(0).ContentRect().y1);
  CheckColumnInvariants(page_.col(0));
}

TEST_F(WmTest, Rule2CoversHalfOfLowestWindow) {
  // Fill the column with text so rule 1 has no room.
  std::string big(2000, 'x');
  Window* a = Create(big);
  Window* b = Create("peek\n");
  Rect content = page_.col(0).ContentRect();
  // b covers the bottom half of a.
  EXPECT_EQ(b->rect().y1, content.y1);
  EXPECT_EQ(a->rect().y1, b->rect().y0);
  EXPECT_NEAR(b->rect().y0, content.y0 + content.height() / 2, 1);
  CheckColumnInvariants(page_.col(0));
}

TEST_F(WmTest, Rule3TakesBottomQuarterHidingCovered) {
  std::string big(2000, 'x');
  Create(big);
  Create(big);
  Create(big);
  Window* d = Create(big);
  Window* e = Create("last\n");
  Rect content = page_.col(0).ContentRect();
  EXPECT_EQ(e->rect().y1, content.y1);
  EXPECT_GE(e->rect().height(), content.height() / 4);
  // d (the former bottom quarter holder) was covered or truncated, never
  // left overlapping.
  CheckColumnInvariants(page_.col(0));
  (void)d;
}

TEST_F(WmTest, ManyWindowsKeepInvariants) {
  for (int i = 0; i < 12; i++) {
    Create(std::string(static_cast<size_t>(40 * (i % 3 + 1)), 'y'));
    CheckColumnInvariants(page_.col(0));
  }
  // All windows remain in the tab list even when covered.
  EXPECT_EQ(page_.col(0).windows().size(), 12u);
}

TEST_F(WmTest, TabRevealRestoresWindow) {
  std::string big(2000, 'x');
  Window* a = Create(big);
  for (int i = 0; i < 4; i++) {
    Create(big);
  }
  // a may be covered now; reveal it via its tab.
  page_.col(0).MakeVisible(a);
  EXPECT_FALSE(a->hidden());
  EXPECT_EQ(a->rect().y1, page_.col(0).ContentRect().y1);
  CheckColumnInvariants(page_.col(0));
}

TEST_F(WmTest, RemoveGivesSpaceToNeighborAbove) {
  Window* a = Create("aaa\n");
  Window* b = Create("bbb\n");
  int bottom = b->rect().y1;
  page_.col(0).Remove(b);
  page_.Remove(b);
  EXPECT_EQ(a->rect().y1, bottom);
  CheckColumnInvariants(page_.col(0));
}

TEST_F(WmTest, RemoveFirstGivesSpaceToNeighborBelow) {
  Window* a = Create(std::string(2000, 'x'));
  Window* b = Create("bbb\n");
  int top = a->rect().y0;
  page_.col(0).Remove(a);
  page_.Remove(a);
  EXPECT_EQ(b->rect().y0, top);
  CheckColumnInvariants(page_.col(0));
}

TEST_F(WmTest, DragToOtherColumn) {
  Window* a = Create("to move\n", 0);
  Create("right side\n", 1);
  Point dest{page_.col(1).ContentRect().x0 + 2, 12};
  page_.Drag(a, dest);
  EXPECT_EQ(page_.ColumnOf(a), 1);
  EXPECT_FALSE(a->hidden());
  CheckColumnInvariants(page_.col(0));
  CheckColumnInvariants(page_.col(1));
}

TEST_F(WmTest, DragWithinColumnRearranges) {
  Window* a = Create("aaaa\naaaa\n");
  Window* b = Create("bbbb\nbbbb\n");
  // Drag b up to the top; a must be pushed/truncated, tags visible.
  page_.Drag(b, {page_.col(0).ContentRect().x0, page_.col(0).ContentRect().y0});
  EXPECT_EQ(b->rect().y0, page_.col(0).ContentRect().y0);
  CheckColumnInvariants(page_.col(0));
  (void)a;
}

TEST_F(WmTest, HitTestFindsTagAndBody) {
  Window* a = Create("body text\n");
  Page::Hit tag_hit = page_.HitTest({a->rect().x0 + 1, a->rect().y0});
  EXPECT_EQ(tag_hit.window, a);
  EXPECT_EQ(tag_hit.sub, &a->tag());
  Page::Hit body_hit = page_.HitTest({a->rect().x0 + 1, a->rect().y0 + 1});
  EXPECT_EQ(body_hit.sub, &a->body());
}

TEST_F(WmTest, HitTestTabs) {
  Create("x\n");
  Create("y\n");
  int tab_x = page_.col(0).rect().x0;
  Page::Hit hit = page_.HitTest({tab_x, page_.col(0).rect().y0 + 1});
  EXPECT_EQ(hit.tab_index, 1);
  Page::Hit top = page_.HitTest({tab_x, 0});
  EXPECT_TRUE(top.on_column_tab);
  EXPECT_EQ(top.column, 0);
}

TEST_F(WmTest, ColumnExpansion) {
  int w0 = page_.col(0).rect().width();
  page_.ToggleExpand(0);
  EXPECT_GT(page_.col(0).rect().width(), w0);
  EXPECT_EQ(page_.col(0).rect().x1, page_.col(1).rect().x0);
  page_.ToggleExpand(0);
  EXPECT_EQ(page_.col(0).rect().width(), w0);
}

TEST_F(WmTest, WindowLookupAndColumnOf) {
  Window* a = Create("x", 0);
  Window* b = Create("y", 1);
  EXPECT_EQ(page_.FindById(a->id()), a);
  EXPECT_EQ(page_.FindById(999), nullptr);
  EXPECT_EQ(page_.ColumnOf(a), 0);
  EXPECT_EQ(page_.ColumnOf(b), 1);
}

TEST_F(WmTest, TagFilenameAndContextDir) {
  Window* w = page_.Create(50, T("/usr/rob/src/help/errs.c Close! Get!"), T(""), 0);
  EXPECT_EQ(w->TagFilename(), "/usr/rob/src/help/errs.c");
  EXPECT_EQ(w->ContextDir(), "/usr/rob/src/help");
  Window* d = page_.Create(51, T("/usr/rob/src/help/ Close! Get!"), T(""), 0);
  EXPECT_EQ(d->ContextDir(), "/usr/rob/src/help");  // dir windows: the dir itself
  Window* e = page_.Create(52, T(""), T(""), 0);
  EXPECT_EQ(e->ContextDir(), "/");
}

TEST_F(WmTest, SubwindowShowOffsetScrolls) {
  std::string many;
  for (int i = 0; i < 200; i++) {
    many += "line " + std::to_string(i) + "\n";
  }
  Window* w = Create(many);
  size_t target = w->body().text->LineStart(150);
  w->body().ShowOffset(target);
  EXPECT_TRUE(w->body().frame.Visible(target));
  // And the line sits in the upper third, not at the very bottom edge.
  auto p = w->body().frame.OffsetToPoint(target);
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(p->y, w->rect().y0 + 1 + w->body().frame.rect().height() / 2);
}

TEST_F(WmTest, DrawPaintsTagsTabsAndBodies) {
  Window* w = Create("visible body\n");
  w->tag().text->SetAll("mytag Close!");
  w->Relayout();
  page_.Draw(nullptr);
  std::string r = page_.screen().Render();
  EXPECT_NE(r.find("mytag Close!"), std::string::npos);
  EXPECT_NE(r.find("visible body"), std::string::npos);
  EXPECT_NE(r.find("\xE2\x96\xA0"), std::string::npos);  // ■ tabs
}

}  // namespace
}  // namespace help
