// The complete Figure 4-12 walkthrough, asserting the paper's quantified
// claims: screen contents per figure, the gesture counts the text cites, and
// zero keystrokes for the whole session.
#include <gtest/gtest.h>

#include "src/tools/demo.h"

namespace help {
namespace {

class DemoTest : public ::testing::Test {
 protected:
  PaperDemo demo_;
};

TEST_F(DemoTest, FullWalkthrough) {
  std::string fig4 = demo_.Fig04_Boot();
  EXPECT_NE(fig4.find("/help/edit/stf"), std::string::npos);
  EXPECT_NE(fig4.find("headers"), std::string::npos);

  std::string fig5 = demo_.Fig05_Headers();
  EXPECT_NE(fig5.find("/mail/box/rob/mbox"), std::string::npos);
  EXPECT_NE(fig5.find("2 sean Tue Apr 16 19:26:14 EDT 1991"), std::string::npos);

  std::string fig6 = demo_.Fig06_Messages();
  EXPECT_NE(fig6.find("From sean"), std::string::npos);
  EXPECT_NE(fig6.find("i tried your new help and got this:"), std::string::npos);
  EXPECT_NE(fig6.find("176153"), std::string::npos);

  std::string fig7 = demo_.Fig07_Stack();
  EXPECT_NE(fig7.find("176153 stack"), std::string::npos);
  EXPECT_NE(fig7.find("last exception: TLB miss (load or fetch)"), std::string::npos);
  EXPECT_NE(fig7.find("strchr.s:34"), std::string::npos);

  std::string fig8 = demo_.Fig08_OpenTextC();
  EXPECT_NE(fig8.find("/usr/rob/src/help/text.c"), std::string::npos);
  // Line 32 is selected (reverse video) and visible.
  EXPECT_NE(fig8.find("n = strlen((char*)s);"), std::string::npos);
  Window* textc = demo_.help().WindowForFile("/usr/rob/src/help/text.c");
  ASSERT_NE(textc, nullptr);
  Selection sel = textc->body().sel;
  EXPECT_EQ(textc->body().text->Utf8Range(sel.q0, sel.q1), "\tn = strlen((char*)s);\n");

  std::string fig9 = demo_.Fig09_CloseAndOpenExecC();
  EXPECT_EQ(demo_.help().WindowForFile("/usr/rob/src/help/text.c"), nullptr);
  Window* execc = demo_.help().WindowForFile("/usr/rob/src/help/exec.c");
  ASSERT_NE(execc, nullptr);
  sel = execc->body().sel;
  EXPECT_EQ(execc->body().text->Utf8Range(sel.q0, sel.q1), "\terrs((uchar*)n);\n");

  std::string fig10 = demo_.Fig10_Uses();
  EXPECT_NE(fig10.find("./dat.h:136"), std::string::npos) << fig10;
  EXPECT_NE(fig10.find("exec.c:213"), std::string::npos);
  EXPECT_NE(fig10.find("exec.c:252"), std::string::npos);
  // The fourth line may sit below the fold of a small window; the body has
  // the full, exact Figure 10 list.
  Window* uses_win = nullptr;
  for (Window* w : demo_.help().AllWindows()) {
    if (w->tag().text->Utf8().find(" uses Close!") != std::string::npos) {
      uses_win = w;
    }
  }
  ASSERT_NE(uses_win, nullptr);
  EXPECT_EQ(uses_win->body().text->Utf8(),
            "./dat.h:136\nexec.c:213\nexec.c:252\nhelp.c:35\n");

  std::string fig11 = demo_.Fig11_OpenHelpCAndExec213();
  Window* helpc = demo_.help().WindowForFile("/usr/rob/src/help/help.c");
  ASSERT_NE(helpc, nullptr);
  // help.c opened positioned at line 35, the initialization, which Open left
  // selected. (The window itself may be covered again by the later exec.c
  // open — the selection state is what persists.)
  Selection hsel = helpc->body().sel;
  EXPECT_EQ(helpc->body().text->Utf8Range(hsel.q0, hsel.q1),
            "\tn = (uchar*)\"a test string\";\n");
  (void)fig11;
  // exec.c is now positioned at the offending line, selected.
  sel = execc->body().sel;
  EXPECT_EQ(execc->body().text->Utf8Range(sel.q0, sel.q1), "\tn = 0;\n");

  std::string fig12 = demo_.Fig12_CutPutMk();
  // The line is gone from the buffer and from disk; Xdie1 is empty now.
  std::string on_disk = demo_.help().vfs().ReadFile("/usr/rob/src/help/exec.c").value();
  EXPECT_NE(on_disk.find("Xdie1(int argc, char *argv[], Page *page, Text *curt)\n{\n}"),
            std::string::npos);
  // mk recompiled exactly the one object and relinked (Figure 12's window).
  EXPECT_NE(fig12.find("vc -w exec.c"), std::string::npos) << fig12;
  EXPECT_NE(fig12.find("vl -o help"), std::string::npos);
  EXPECT_EQ(fig12.find("vc -w errs.c"), std::string::npos);

  // "Through this entire demo I haven't yet touched the keyboard."
  EXPECT_EQ(demo_.help().counters().keystrokes, 0);
}

TEST_F(DemoTest, GestureCountsMatchPaperClaims) {
  demo_.RunAll();
  ASSERT_EQ(demo_.stats().size(), 9u);
  // fig8: "by pointing at the entry ... and executing Open": two button clicks.
  EXPECT_EQ(demo_.stats()[4].name, "fig8: Open text.c:32 from the trace");
  EXPECT_EQ(demo_.stats()[4].presses, 2);
  // fig12: "a total of three clicks of the middle button".
  EXPECT_EQ(demo_.stats()[8].name, "fig12: Cut the line, Put!, mk");
  EXPECT_EQ(demo_.stats()[8].presses, 3);
  // Zero keystrokes in every step.
  for (const auto& st : demo_.stats()) {
    EXPECT_EQ(st.keystrokes, 0) << st.name;
  }
}

TEST_F(DemoTest, DirtyMarkerAppearsOnlyAfterEdit) {
  demo_.Fig04_Boot();
  demo_.Fig05_Headers();
  demo_.Fig06_Messages();
  demo_.Fig07_Stack();
  demo_.Fig08_OpenTextC();
  demo_.Fig09_CloseAndOpenExecC();
  Window* execc = demo_.help().WindowForFile("/usr/rob/src/help/exec.c");
  EXPECT_EQ(execc->tag().text->Utf8().find("Put!"), std::string::npos);
  demo_.Fig10_Uses();
  demo_.Fig11_OpenHelpCAndExec213();
  // The Cut inside Fig12 makes it dirty; Put! then clears it again.
  demo_.Fig12_CutPutMk();
  EXPECT_EQ(execc->tag().text->Utf8().find("Put!"), std::string::npos);
}

}  // namespace
}  // namespace help
