// Differential property suite: randomized rc scripts run through both the
// bytecode VM and the tree-walking evaluator in freshly built, identical
// worlds, asserting identical stdout, stderr, exit status, error status, the
// final variable bindings, and a full recursive dump of the namespace. The
// generator leans on the features where the two engines are most likely to
// drift: nesting, quoting, ^ concatenation, $-expansion, command
// substitution, redirections, globs, and control flow.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/shell/coreutils.h"
#include "src/shell/shell.h"

namespace help {
namespace {

using Rng = std::mt19937;

size_t Pick(Rng& rng, size_t n) { return rng() % n; }

template <size_t N>
const char* PickOf(Rng& rng, const char* const (&options)[N]) {
  return options[Pick(rng, N)];
}

const char* PickOf(Rng& rng, std::initializer_list<const char*> options) {
  return *(options.begin() + static_cast<long>(Pick(rng, options.size())));
}

// --- Script generator --------------------------------------------------------

constexpr const char* kVars[] = {"x", "y", "z", "s", "i", "j"};
constexpr const char* kLits[] = {"a",  "b",    "ab",    "x1",    "alpha", "one",
                                 "f0", "done", "*",     "?",     "[ab]c", "f?",
                                 "go", "3",    "hello", "beta,"};
constexpr const char* kQuoted[] = {"'sp ace'", "'it''s'", "'*'",  "';|'",
                                   "''",       "'$x'",    "'^'",  "'{'"};

std::string GenScript(Rng& rng, int depth);

std::string GenWord(Rng& rng, int depth) {
  std::string w;
  size_t frags = 1 + Pick(rng, 2);
  for (size_t i = 0; i < frags; i++) {
    if (i > 0) {
      w += "^";
    }
    switch (Pick(rng, depth > 0 ? 5 : 4)) {
      case 0:
      case 1:
        w += PickOf(rng, kLits);
        break;
      case 2:
        w += PickOf(rng, kQuoted);
        break;
      case 3:
        w += (Pick(rng, 4) == 0 ? "$#" : "$") + std::string(PickOf(rng, kVars));
        break;
      default:
        w += "`{" + GenScript(rng, 0) + "}";
        break;
    }
  }
  return w;
}

std::string GenWords(Rng& rng, int depth, size_t max_words) {
  std::string out;
  size_t n = 1 + Pick(rng, max_words);
  for (size_t i = 0; i < n; i++) {
    if (i > 0) {
      out += " ";
    }
    out += GenWord(rng, depth);
  }
  return out;
}

std::string GenRedir(Rng& rng) {
  switch (Pick(rng, 4)) {
    case 0:
      return " > /out/o" + std::to_string(Pick(rng, 3));
    case 1:
      return " >> /out/o" + std::to_string(Pick(rng, 3));
    case 2:
      return " < /data/f" + std::to_string(Pick(rng, 3));
    default:
      return " < /data/missing";  // error path: must fail identically
  }
}

std::string GenSimple(Rng& rng, int depth) {
  std::string cmd;
  // Optional leading assignments (scoped when a command word follows).
  size_t assigns = Pick(rng, 3) == 0 ? 1 + Pick(rng, 2) : 0;
  for (size_t i = 0; i < assigns; i++) {
    cmd += std::string(PickOf(rng, kVars)) + "=" + GenWord(rng, 0) + " ";
  }
  switch (Pick(rng, 12)) {
    case 0:
      cmd += "echo " + GenWords(rng, depth, 3);
      break;
    case 1:
      cmd += "echo -n " + GenWords(rng, depth, 2);
      break;
    case 2:
      cmd += "cat /data/f" + std::to_string(Pick(rng, 3));
      break;
    case 3:
      cmd += "grep " + std::string(PickOf(rng, kLits));
      break;
    case 4:
      cmd += PickOf(rng, {"sort", "uniq", "wc", "head", "tail", "true", "false"});
      break;
    case 5:
      cmd += "~ " + GenWord(rng, 0) + " " + GenWords(rng, 0, 2);
      break;
    case 6:
      cmd += "! " + std::string(PickOf(rng, {"true", "false", "~ a a"}));
      break;
    case 7:
      cmd += PickOf(rng, {"tool0 arg", "tool1", "tool2", "tool0 $x"});
      break;
    case 8:
      cmd += "cd " + std::string(PickOf(rng, {"/", "/data", "/bin", "/out"}));
      break;
    case 9:
      cmd += "touch /out/t" + std::to_string(Pick(rng, 2));
      break;
    case 10:
      cmd += "eval 'echo ev'";
      break;
    default:
      cmd += "echo " + GenWords(rng, depth, 2);
      break;
  }
  if (assigns == 0 && Pick(rng, 4) == 0) {
    cmd += GenRedir(rng);
  }
  return cmd;
}

std::string GenPipeline(Rng& rng, int depth) {
  std::string p = GenSimple(rng, depth);
  size_t stages = Pick(rng, 3);
  for (size_t i = 0; i < stages; i++) {
    p += " | " + std::string(PickOf(rng, {"wc", "sort", "uniq", "grep a", "head", "cat"}));
  }
  return p;
}

std::string GenStatement(Rng& rng, int depth) {
  if (depth <= 0) {
    return GenPipeline(rng, 0);
  }
  switch (Pick(rng, 8)) {
    case 0: {
      std::string s = "if(" + GenPipeline(rng, 0) + "){" + GenScript(rng, depth - 1) + "}";
      if (Pick(rng, 2) == 0) {
        s += " if not {" + GenScript(rng, depth - 1) + "}";
      }
      return s;
    }
    case 1:
      return "for(" + std::string(PickOf(rng, kVars)) + " in " + GenWords(rng, 0, 3) +
             "){" + GenScript(rng, depth - 1) + "}";
    case 2:
      // A latch loop: always terminates, under either engine, in one pass.
      return "s=go; while(! ~ $s done){" + GenScript(rng, depth - 1) + "; s=done}";
    case 3: {
      std::string s = "switch(" + GenWord(rng, 0) + "){";
      size_t clauses = 1 + Pick(rng, 2);
      for (size_t i = 0; i < clauses; i++) {
        s += "\ncase " + GenWords(rng, 0, 2) + "\n" + GenPipeline(rng, 0);
      }
      return s + "\n}";
    }
    case 4:
      // Function names carry the nesting depth, so a body (generated one
      // level down) can only define and call strictly smaller names —
      // unbounded fn recursion would overflow both engines' native stacks.
      return "fn f" + std::to_string(depth) + " {" + GenScript(rng, depth - 1) +
             "}\nf" + std::to_string(depth) + " " + GenWords(rng, 0, 2);
    case 5:
      return "{" + GenScript(rng, depth - 1) + "}" + (Pick(rng, 2) == 0 ? GenRedir(rng) : "");
    default:
      return GenPipeline(rng, depth);
  }
}

std::string GenScript(Rng& rng, int depth) {
  std::string s;
  size_t lines = 1 + Pick(rng, depth > 0 ? 3 : 2);
  for (size_t i = 0; i < lines; i++) {
    if (i > 0) {
      s += Pick(rng, 2) == 0 ? "\n" : "; ";
    }
    s += GenStatement(rng, depth);
  }
  return s;
}

// --- Differential harness ----------------------------------------------------

struct World {
  Vfs vfs;
  CommandRegistry registry;
  ProcTable procs;
  Env env;
  std::string out;
  std::string err;
};

void SetupWorld(World& w) {
  RegisterCoreutils(&w.vfs, &w.registry);
  ASSERT_TRUE(w.vfs.MkdirAll("/out").ok());
  ASSERT_TRUE(w.vfs.MkdirAll("/data").ok());
  ASSERT_TRUE(w.vfs.WriteFile("/data/f0", "alpha\nbeta\ngamma\n").ok());
  ASSERT_TRUE(w.vfs.WriteFile("/data/f1", "one two\nthree\n").ok());
  ASSERT_TRUE(w.vfs.WriteFile("/data/f2", "x\ny\nz\nx\n").ok());
  // Script files so external dispatch (and the VM's file-keyed cache path)
  // gets exercised.
  ASSERT_TRUE(w.vfs.WriteFile("/bin/tool0", "echo tool0 ran $1\n").ok());
  ASSERT_TRUE(w.vfs.WriteFile("/bin/tool1", "cat\n").ok());
  ASSERT_TRUE(w.vfs.WriteFile("/bin/tool2", "grep a\necho t2 $status\n").ok());
  w.env.SetString("home", "/data");
  w.env.Set("z", {"zz", "yy"});
}

void DumpTree(const Node& n, const std::string& path, std::string* out) {
  *out += path;
  if (n.dir()) {
    *out += "/\n";
    for (const auto& [name, child] : n.children()) {
      DumpTree(*child, path + "/" + name, out);
    }
  } else {
    *out += " mtime=" + std::to_string(n.mtime()) + " [" + n.data() + "]\n";
  }
}

std::string RunOneWorld(const std::string& src, bool vm) {
  Shell::SetVmEnabled(vm);
  World w;
  SetupWorld(w);
  if (::testing::Test::HasFatalFailure()) {
    return "setup failed";
  }
  Shell sh(&w.vfs, &w.registry, &w.procs);
  Io io;
  io.out = &w.out;
  io.err = &w.err;
  auto r = sh.Run(src, &w.env, "/", {"p1", "p2"}, io);

  std::string report;
  report += "ok=" + std::string(r.ok() ? "1" : "0");
  report += " msg=[" + r.message() + "]";
  report += " status=" + std::to_string(r.ok() ? r.value() : -1) + "\n";
  report += "out=[" + w.out + "]\nerr=[" + w.err + "]\nvars:";
  for (const char* v : kVars) {
    report += " " + std::string(v) + "=(";
    for (const std::string& e : w.env.Get(v)) {
      report += e + ",";
    }
    report += ")";
  }
  for (const char* v : {"status", "*", "1", "2", "9", "home"}) {
    report += " " + std::string(v) + "=(";
    for (const std::string& e : w.env.Get(v)) {
      report += e + ",";
    }
    report += ")";
  }
  report += "\nns:\n";
  DumpTree(*w.vfs.root(), "", &report);
  return report;
}

void CheckRange(uint32_t first_seed, uint32_t count) {
  for (uint32_t seed = first_seed; seed < first_seed + count; seed++) {
    Rng rng(seed);
    std::string src = GenScript(rng, 2);
    std::string vm = RunOneWorld(src, /*vm=*/true);
    std::string tree = RunOneWorld(src, /*vm=*/false);
    Shell::SetVmEnabled(true);
    ASSERT_EQ(vm, tree) << "seed " << seed << " diverged on script:\n" << src;
  }
  Shell::SetVmEnabled(true);
}

// 10k randomized scripts, split so the shards run in parallel under ctest.
TEST(ShellDifferential, RandomScriptsShard0) { CheckRange(0, 2500); }
TEST(ShellDifferential, RandomScriptsShard1) { CheckRange(2500, 2500); }
TEST(ShellDifferential, RandomScriptsShard2) { CheckRange(5000, 2500); }
TEST(ShellDifferential, RandomScriptsShard3) { CheckRange(7500, 2500); }

// --- Directed quoting and glob edge cases ------------------------------------

class ShellEdgeTest : public ::testing::Test {
 protected:
  // Runs under the VM and asserts both the expected output and agreement
  // with the tree-walker.
  void ExpectOut(const std::string& src, const std::string& want) {
    std::string got[2];
    for (int mode = 0; mode < 2; mode++) {
      Shell::SetVmEnabled(mode == 0);
      World w;
      SetupWorld(w);
      Shell sh(&w.vfs, &w.registry, &w.procs);
      Io io;
      io.out = &w.out;
      io.err = &w.err;
      auto r = sh.Run(src, &w.env, "/data", {}, io);
      ASSERT_TRUE(r.ok()) << r.message() << " running: " << src;
      got[mode] = w.out;
    }
    Shell::SetVmEnabled(true);
    EXPECT_EQ(got[0], want) << src;
    EXPECT_EQ(got[0], got[1]) << "engines diverged on: " << src;
  }
};

TEST_F(ShellEdgeTest, EmptyQuotedWordSurvives) {
  ExpectOut("echo '' end", " end\n");
  ExpectOut("echo a^'' b", "a b\n");
}

TEST_F(ShellEdgeTest, QuotedFragmentSuppressesGlobForWholeWord) {
  ExpectOut("echo f*", "/data/f0 /data/f1 /data/f2\n");
  ExpectOut("echo 'f'^*", "f*\n");  // one quoted frag: the whole word skips glob
  ExpectOut("echo 'f*'", "f*\n");
}

TEST_F(ShellEdgeTest, GlobClasses) {
  ExpectOut("echo f[02]", "/data/f0 /data/f2\n");
  // An unquoted ^ is the concatenation operator even inside a bracket, so
  // f[^0] lexes as f[ ^ 0] and globs as f[0]; negation has to be quoted,
  // where it reaches GlobMatch intact (exercised through ~).
  ExpectOut("echo f[^0]", "/data/f0\n");
  ExpectOut("if(~ fz 'f[^0]'){echo negated}", "negated\n");
  ExpectOut("echo f?", "/data/f0 /data/f1 /data/f2\n");
  ExpectOut("echo q*", "q*\n");  // no match: pattern passes through
}

TEST_F(ShellEdgeTest, UnclosedBracketIsLiteral) {
  ExpectOut("echo [ab", "[ab\n");
}

TEST_F(ShellEdgeTest, ConcatDistribution) {
  ExpectOut("v=(1 2 3); echo a^$v", "a1 a2 a3\n");
  ExpectOut("v=(1 2); w=(x y); echo $v^$w", "1x 2y\n");
  ExpectOut("v=(); echo a^$v b", "a b\n");  // lenient empty side
}

TEST_F(ShellEdgeTest, QuoteEscapes) {
  ExpectOut("echo 'it''s'", "it's\n");
  ExpectOut("echo 'a;b|c'", "a;b|c\n");
  ExpectOut("echo '$x'", "$x\n");
}

TEST_F(ShellEdgeTest, RedirTargetsNeverGlob) {
  // A glob-looking redirection target is taken literally.
  ExpectOut("echo hi > /out/o'*'; cat '/out/o*'", "hi\n");
}

}  // namespace
}  // namespace help
