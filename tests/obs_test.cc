// The observability subsystem: registry math, the lock-free trace ring
// (sequence ordering under concurrent writers, overflow accounting), span
// stamping, Chrome JSON output, and the /mnt/help/stats byte-format pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/fs/metrics.h"
#include "src/obs/trace.h"

namespace help {
namespace {

using obs::EventKind;
using obs::Histogram;
using obs::Registry;
using obs::TraceEvent;
using obs::Tracer;

TEST(ObsRegistry, CountersAccumulateAndRender) {
  Registry& reg = Registry::Global();
  obs::Counter* c = reg.GetCounter("obstest.counter");
  uint64_t before = c->value();
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), before + 42);
  EXPECT_EQ(reg.GetCounter("obstest.counter"), c);  // stable handle
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("obstest.counter "), std::string::npos);
}

TEST(ObsRegistry, HistogramBucketsMatchNinepMetricsMath) {
  // Same log2 bucketing and percentile semantics PR 1 used: bucket 0 holds
  // zeros, bucket i holds floor(log2(v)) == i-1, percentile reports the
  // bucket's upper bound.
  Histogram h("obstest.hist");
  EXPECT_EQ(h.Percentile(50), 0u);  // empty
  h.Record(0);
  EXPECT_EQ(h.Percentile(50), 0u);
  for (int i = 0; i < 99; i++) {
    h.Record(100);  // bucket 7: upper bound 127
  }
  EXPECT_EQ(h.Percentile(99), 127u);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(127), 7u);
  EXPECT_EQ(Histogram::BucketOf(128), 8u);
}

// The satellite fix this PR pins down: the logical Clock tick and the steady
// clock may disagree about order (Set() can move the tick backwards, and
// concurrent emitters capture the two stamps at different instants), so the
// trace must order by its monotonic sequence number and nothing else.
TEST(ObsTracer, OrdersBySequenceEvenWhenTickRunsBackwards) {
  Tracer& t = Tracer::Global();
  Clock clock;
  t.BindClock(&clock);
  t.Clear();
  t.Enable();
  clock.Set(1000);
  t.Emit(EventKind::kInstant, "obstest.late_tick");
  clock.Set(5);  // tick runs backwards; seq must not
  t.Emit(EventKind::kInstant, "obstest.early_tick");
  t.Disable();
  t.UnbindClock(&clock);

  std::vector<TraceEvent> evs = t.Snapshot();
  ASSERT_GE(evs.size(), 2u);
  const TraceEvent& a = evs[evs.size() - 2];
  const TraceEvent& b = evs[evs.size() - 1];
  EXPECT_STREQ(a.name, "obstest.late_tick");
  EXPECT_STREQ(b.name, "obstest.early_tick");
  EXPECT_LT(a.seq, b.seq);       // ordered by seq...
  EXPECT_GT(a.tick, b.tick);     // ...although the tick says otherwise
  EXPECT_EQ(a.tick, 1000u);
  EXPECT_EQ(b.tick, 5u);
}

// Four writer threads race into the ring; the snapshot (and the rendered
// text) must come out strictly seq-ascending with no torn events. Run under
// TSan this is also the data-race-freedom proof for the seqlock publication.
TEST(ObsTracer, ConcurrentWritersProduceStrictSeqOrder) {
  Tracer& t = Tracer::Global();
  t.Clear();
  t.Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;  // 20000 total > kCapacity: exercises wrap
  uint64_t dropped_before = t.dropped();
  uint64_t emitted_before = t.emitted();
  std::vector<std::thread> threads;
  static const char* kNames[kThreads] = {"obstest.w0", "obstest.w1", "obstest.w2",
                                         "obstest.w3"};
  for (int i = 0; i < kThreads; i++) {
    threads.emplace_back([&t, i] {
      for (int n = 0; n < kPerThread; n++) {
        t.Emit(EventKind::kInstant, kNames[i], static_cast<uint64_t>(n));
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  t.Disable();

  EXPECT_EQ(t.emitted() - emitted_before,
            static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<TraceEvent> evs = t.Snapshot();
  // After the writers join, every slot in the live window is published.
  EXPECT_EQ(evs.size(), Tracer::kCapacity);
  uint64_t prev = 0;
  bool first = true;
  std::set<uint32_t> tids;
  for (const TraceEvent& e : evs) {
    if (!first) {
      EXPECT_GT(e.seq, prev);
    }
    first = false;
    prev = e.seq;
    ASSERT_NE(e.name, nullptr);
    EXPECT_EQ(std::string(e.name).rfind("obstest.w", 0), 0u);
    tids.insert(e.tid);
  }
  EXPECT_GE(tids.size(), 2u);  // the survivors span several writer threads
  // Overflow accounting: every emit whose global seq is past the ring's
  // capacity displaced an older event (seqs run across tests, so the window
  // where drops start is relative to the stream, not to this test).
  uint64_t first_dropping = std::max<uint64_t>(emitted_before, Tracer::kCapacity);
  EXPECT_EQ(t.dropped() - dropped_before, t.emitted() - first_dropping);
}

TEST(ObsTracer, OverflowDropsOldestKeepsNewest) {
  Tracer& t = Tracer::Global();
  t.Clear();
  t.Enable();
  uint64_t start = t.emitted();
  constexpr uint64_t kExtra = 10;
  for (uint64_t i = 0; i < Tracer::kCapacity + kExtra; i++) {
    t.Emit(EventKind::kInstant, "obstest.flood", i);
  }
  t.Disable();
  std::vector<TraceEvent> evs = t.Snapshot();
  ASSERT_EQ(evs.size(), Tracer::kCapacity);
  EXPECT_EQ(evs.front().seq, start + kExtra);   // the oldest kExtra are gone
  EXPECT_EQ(evs.front().arg, kExtra);
  EXPECT_EQ(evs.back().arg, Tracer::kCapacity + kExtra - 1);  // newest kept
}

TEST(ObsSpan, DisabledSpansCostNoEventsEnabledSpansPair) {
  Tracer& t = Tracer::Global();
  t.Clear();
  t.Disable();
  { OBS_SPAN("obstest.quiet"); }
  EXPECT_TRUE(t.Snapshot().empty());

  t.Enable();
  { OBS_SPAN("obstest.loud"); }
  t.Disable();
  std::vector<TraceEvent> evs = t.Snapshot();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, EventKind::kBegin);
  EXPECT_EQ(evs[1].kind, EventKind::kEnd);
  EXPECT_STREQ(evs[0].name, "obstest.loud");
  EXPECT_STREQ(evs[1].name, "obstest.loud");
  // The span recorded its duration histogram under "<name>.ns".
  EXPECT_GT(Registry::Global().GetHistogram("obstest.loud.ns")->count(), 0u);
}

// A minimal JSON well-formedness checker: enough to prove the Chrome trace
// dump is loadable (balanced structure, legal scalars, no trailing commas).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}
  bool Valid() {
    Ws();
    if (!Value()) {
      return false;
    }
    Ws();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    char c = s_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    return Number();
  }
  bool Object() {
    pos_++;  // {
    Ws();
    if (Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      Ws();
      if (!String()) {
        return false;
      }
      Ws();
      if (Peek() != ':') {
        return false;
      }
      pos_++;
      Ws();
      if (!Value()) {
        return false;
      }
      Ws();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    pos_++;  // [
    Ws();
    if (Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      Ws();
      if (!Value()) {
        return false;
      }
      Ws();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') {
      return false;
    }
    pos_++;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_++;
      }
      pos_++;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    pos_++;
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      pos_++;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    return pos_ > start;
  }
  void Ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      pos_++;
    }
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  size_t pos_ = 0;
};

TEST(ObsTracer, ChromeJsonIsWellFormed) {
  Tracer& t = Tracer::Global();
  t.Clear();
  t.Enable();
  { OBS_SPAN("obstest.json_span"); }
  t.Emit(EventKind::kInstant, "obstest.json_instant", 7);
  t.Emit(EventKind::kCounter, "obstest.json_counter", 3);
  t.Disable();
  std::string json = t.RenderChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // An empty ring is still a valid document.
  t.Clear();
  EXPECT_TRUE(JsonChecker(t.RenderChromeJson()).Valid());
}

// The /mnt/help/stats byte format, pinned exactly: header line, one
// "op count errs p50us p99us" row per op with traffic (enum order), the
// four PR 1 scalar totals, the PR 4 read-path concurrency lines, then the
// PR 10 dispatch-sharding lines. NinepMetrics is a registry view now; its
// Render() must not drift.
TEST(NinepMetricsCompat, StatsByteFormatPinnedExactly) {
  Registry::Global().Reset();
  NinepMetrics m;
  m.RecordOp(NinepOp::kWalk, 0, false);
  m.RecordOp(NinepOp::kWalk, 100, true);  // bucket 7 → upper bound 127us
  m.RecordOp(NinepOp::kRead, 3, false);   // bucket 2 → upper bound 3us
  m.AddBytesIn(5);
  m.AddBytesOut(7);
  m.RecordFlushCancel();
  m.RecordSharedRead();
  EXPECT_EQ(m.Render(),
            "op count errs p50us p99us\n"
            "walk 2 1 127 127\n"
            "read 1 0 3 3\n"
            "bytes_in 5\n"
            "bytes_out 7\n"
            "in_flight 0\n"
            "flush_cancels 1\n"
            "shared_reads 1\n"
            "read_retries 0\n"
            "lock_wait_p99us 0\n"
            "net_accepts 0\n"
            "net_active_conns 0\n"
            "net_reaped 0\n"
            "net_backpressure_stalls 0\n"
            "net_frame_errors 0\n"
            "net_bytes_in 0\n"
            "net_bytes_out 0\n"
            "ooo_completions 0\n"
            "bytes_zero_copy 0\n"
            "bytes_staged 0\n"
            "bodyapp_coalesced 0\n"
            "net_writev_calls 0\n"
            "lock_window_acquires 0\n"
            "lock_epoch_exclusive 0\n"
            "lock_shard_wait_p99us 0\n");
  // And the same numbers are visible through the registry's own file format.
  std::string metrics = Registry::Global().RenderText();
  EXPECT_NE(metrics.find("ninep.walk.count 2\n"), std::string::npos);
  EXPECT_NE(metrics.find("ninep.walk.errors 1\n"), std::string::npos);
  EXPECT_NE(metrics.find("ninep.bytes_in 5\n"), std::string::npos);
  EXPECT_NE(metrics.find("ninep.walk.latency_us 2 127 127\n"), std::string::npos);
  m.Reset();
  EXPECT_EQ(m.Render(),
            "op count errs p50us p99us\n"
            "bytes_in 0\nbytes_out 0\nin_flight 0\nflush_cancels 0\n"
            "shared_reads 0\nread_retries 0\nlock_wait_p99us 0\n"
            "net_accepts 0\nnet_active_conns 0\nnet_reaped 0\n"
            "net_backpressure_stalls 0\nnet_frame_errors 0\n"
            "net_bytes_in 0\nnet_bytes_out 0\n"
            "ooo_completions 0\nbytes_zero_copy 0\nbytes_staged 0\n"
            "bodyapp_coalesced 0\nnet_writev_calls 0\n"
            "lock_window_acquires 0\nlock_epoch_exclusive 0\n"
            "lock_shard_wait_p99us 0\n");
}

TEST(ObsTracer, RenderTextLinesCarryAllStamps) {
  Tracer& t = Tracer::Global();
  Clock clock;
  clock.Set(671803200);
  t.BindClock(&clock);
  t.Clear();
  t.Enable();
  t.Emit(EventKind::kInstant, "obstest.stamped", 99);
  t.Disable();
  t.UnbindClock(&clock);
  std::string text = t.RenderText();
  // "seq ns tick tid I obstest.stamped 99"
  EXPECT_NE(text.find(" 671803200 "), std::string::npos) << text;
  EXPECT_NE(text.find(" I obstest.stamped 99\n"), std::string::npos) << text;
}

}  // namespace
}  // namespace help
